// Ablation A3: STRATA API design choices.
//
//  (1) fuse() τ-equality vs windowed fuse: matching cost and output volume
//      when sensor clocks are skewed.
//  (2) partition()/detectEvent() parallelism: per-layer processing rate of
//      the cell-analysis stages as instances scale (STRATA's low-latency /
//      high-throughput mechanism, §4).
#include <chrono>
#include <cstdio>

#include "strata/usecase.hpp"

using namespace strata;        // NOLINT
using namespace strata::core;  // NOLINT

namespace {

double MeasureFuse(std::optional<spe::WindowSpec> window, Timestamp skew_us,
                   int layers) {
  Strata strata_rt;
  auto make_source = [&](const char* name, const char* key, Timestamp skew) {
    auto counter = std::make_shared<int>(0);
    return strata_rt.AddSource(
        name, [counter, key, skew, layers]() -> std::optional<spe::Tuple> {
          if (*counter >= layers) return std::nullopt;
          spe::Tuple t;
          t.job = 1;
          t.layer = (*counter)++;
          t.event_time = (t.layer + 1) * 1'000'000 + skew;
          t.payload.Set(key, t.layer);
          return t;
        });
  };
  auto left = make_source("a", "left", 0);
  auto right = make_source("b", "right", skew_us);
  auto fused = strata_rt.Fuse("fuse", left, right, window);
  std::atomic<int> matched{0};
  strata_rt.Deliver("sink", fused, [&](const spe::Tuple&) { ++matched; });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  return static_cast<double>(matched.load()) / layers;
}

double MeasureParallelism(int parallelism) {
  am::MachineParams machine_params;
  machine_params.job = am::MakePaperJob(1, 1000);
  machine_params.layers_limit = 12;
  machine_params.defects.birth_rate = 0.03;

  UseCaseParams params;
  params.cell_px = 4;  // fine cells: the parallel stages dominate
  params.correlate_layers = 10;
  params.partition_parallelism = parallelism;
  params.detect_parallelism = parallelism;

  Strata strata_rt;
  ComputeAndStoreThresholds(&strata_rt, params.machine_id, machine_params.job,
                            2, params.cell_px)
      .OrDie();
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;  // unthrottled

  BuildThermalPipeline(&strata_rt, machine, pacing, params, nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return 12.0 / seconds;  // layers per second
}

}  // namespace

int main() {
  std::printf("== Ablation A3.1: fuse() with and without a time window ==\n");
  std::printf("%-26s %14s %14s\n", "config", "skew", "match rate");
  for (const Timestamp skew : {Timestamp{0}, SecondsToMicros(0.5)}) {
    std::printf("%-26s %11.1f ms %14.2f\n", "tau-equality (no window)",
                MicrosToMillis(skew), MeasureFuse(std::nullopt, skew, 200));
    std::printf("%-26s %11.1f ms %14.2f\n", "windowed (WS = 1 s)",
                MicrosToMillis(skew),
                MeasureFuse(spe::WindowSpec{SecondsToMicros(1.0),
                                            SecondsToMicros(1.0)},
                            skew, 200));
  }
  std::printf(
      "\nExpected: tau-equality drops every pair once clocks skew; the\n"
      "windowed fuse keeps matching (at the cost of a coarser join).\n\n");

  std::printf("== Ablation A3.2: cell-stage parallelism (2x2 mm cells) ==\n");
  std::printf("%12s %16s\n", "parallelism", "layers/s");
  double base = 0.0;
  for (const int p : {1, 2, 4}) {
    const double rate = MeasureParallelism(p);
    if (p == 1) base = rate;
    std::printf("%12d %16.2f   (%.2fx)\n", p, rate, rate / base);
  }
  std::printf(
      "\nExpected: throughput of the partition/detect stages scales with\n"
      "instances until the un-parallelized stages (fuse, correlate)\n"
      "dominate (Amdahl).\n");
  return 0;
}
