// Figure 6 reproduction: latency boxplots when correlateEvents clusters a
// growing number of previous layers, L in {5, 10, 20, 40, 60, 80}
// (0.2 mm .. 3.2 mm of build height at 40 um layers), cell size 10x10.
//
// Expected shape (paper): latency grows with L (larger clustering windows),
// all configurations under the 3 s QoS threshold.
//
// Env knobs: STRATA_FIG6_LAYERS (default 96), STRATA_FIG6_PX (default 2000),
//            STRATA_FIG6_SCALE_MS (default 120).
#include "figure_common.hpp"

using namespace strata;         // NOLINT
using namespace strata::bench;  // NOLINT

int main() {
  const int layers = EnvInt("STRATA_FIG6_LAYERS", 96);
  const int image_px = EnvInt("STRATA_FIG6_PX", 2000);
  const int gap_ms = EnvInt("STRATA_FIG6_SCALE_MS", 120);

  std::printf(
      "== Figure 6: latency vs layers clustered (L) ==\n"
      "12 specimens, %dx%d px OT frames, %d layers, layer gap %d ms, "
      "cell 10x10\n\n",
      image_px, image_px, layers, gap_ms);
  PrintBoxplotHeader();

  for (const std::int64_t history : {5, 10, 20, 40, 60, 80}) {
    TrialConfig config;
    config.machine.job = am::MakePaperJob(1, image_px);
    config.machine.layers_limit = layers;
    config.machine.defects.birth_rate = 0.03;
    config.usecase.cell_px = std::max(1, 10 * image_px / 2000);
    config.usecase.correlate_layers = history;
    config.usecase.partition_parallelism = 2;
    config.usecase.detect_parallelism = 2;
    config.pacing.mode = core::CollectorPacing::Mode::kLive;
    config.pacing.time_scale = gap_ms / 33'000.0;

    const TrialResult result = RunThermalTrial(config);
    char label[64];
    std::snprintf(label, sizeof(label), "L=%lld (%.1fmm)",
                  static_cast<long long>(history),
                  static_cast<double>(history) * 0.04);
    PrintBoxplotRow(label, result);
  }
  return 0;
}
