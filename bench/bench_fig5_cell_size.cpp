// Figure 5 reproduction: latency boxplots of the Algorithm-1 pipeline for
// cell edges from 40x40 down to 2x2 pixels (5 mm^2 .. 0.25 mm^2 at the
// paper's 8 px/mm), live-paced layers, 12-specimen EOS M290 job.
//
// Expected shape (paper): latency grows as the cell shrinks (more cells to
// analyze within and across layers); every configuration stays under the
// 3 s QoS threshold, up to the 2x2 limit case.
//
// Env knobs: STRATA_FIG5_LAYERS (default 24), STRATA_FIG5_PX (default 2000),
//            STRATA_FIG5_SCALE_MS (live layer gap in ms, default 660).
#include "figure_common.hpp"

using namespace strata;         // NOLINT
using namespace strata::bench;  // NOLINT

int main() {
  const int layers = EnvInt("STRATA_FIG5_LAYERS", 24);
  const int image_px = EnvInt("STRATA_FIG5_PX", 2000);
  const int gap_ms = EnvInt("STRATA_FIG5_SCALE_MS", 660);

  std::printf(
      "== Figure 5: latency vs cell size ==\n"
      "12 specimens, %dx%d px OT frames, %d layers, layer gap %d ms, L=20\n\n",
      image_px, image_px, layers, gap_ms);
  PrintBoxplotHeader();

  // Cell edges at the paper's 2000 px scale; scaled when image_px differs.
  const int paper_cells[] = {40, 32, 20, 16, 10, 8, 4, 2};
  for (const int paper_px : paper_cells) {
    const int cell_px = std::max(1, paper_px * image_px / 2000);

    TrialConfig config;
    config.machine.job = am::MakePaperJob(1, image_px);
    config.machine.layers_limit = layers;
    config.machine.defects.birth_rate = 0.03;
    config.usecase.cell_px = cell_px;
    config.usecase.correlate_layers = 20;
    config.usecase.partition_parallelism = 2;
    config.usecase.detect_parallelism = 2;
    config.pacing.mode = core::CollectorPacing::Mode::kLive;
    // time_scale converts the 33 s simulated layer period into gap_ms.
    config.pacing.time_scale = gap_ms / 33'000.0;

    const TrialResult result = RunThermalTrial(config);
    const double mm = paper_px / 8.0;  // paper scale: 8 px/mm
    char label[64];
    std::snprintf(label, sizeof(label), "%dx%d (%.2gmm2)", paper_px, paper_px,
                  mm * mm);
    PrintBoxplotRow(label, result);
  }
  return 0;
}
