// Ablation A2: substrate microbenchmarks (google-benchmark).
//
// Establishes that each substrate is fast enough for the paper's workload:
// the KV store (thresholds, at-rest data), the pub/sub broker (connectors
// moving 1-4 MB OT frames), the SPE operator path (per-tuple overhead that
// bounds cell throughput), the tuple transport codec, and OT generation.
// `--network` runs only the networked broker benchmarks (BM_Net*), which
// put a BrokerServer + TCP loopback between producer and consumer — the
// embedded BM_PubSub* rows are the baseline to compare against.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <atomic>
#include <memory>
#include <thread>

#include "am/machine.hpp"
#include "bench_json.hpp"
#include "net/frame.hpp"
#include "common/fs.hpp"
#include "kvstore/db.hpp"
#include "net/remote.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "pubsub/consumer.hpp"
#include "pubsub/producer.hpp"
#include "repl/manager.hpp"
#include "spe/query.hpp"
#include "spe/replay_source.hpp"
#include "strata/transport.hpp"

using namespace strata;  // NOLINT

// ---------------------------------------------------------------- kvstore

static void BM_KvPut(benchmark::State& state) {
  strata::fs::ScopedTempDir dir("bench-kv");
  auto db = std::move(kv::DB::Open(dir.path())).value();
  const std::string value(static_cast<std::size_t>(state.range(0)), 'v');
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Put("key" + std::to_string(i++ % 10000), value));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KvPut)->Arg(64)->Arg(1024);

static void BM_KvGet(benchmark::State& state) {
  strata::fs::ScopedTempDir dir("bench-kv");
  auto db = std::move(kv::DB::Open(dir.path())).value();
  for (int i = 0; i < 10000; ++i) {
    db->Put("key" + std::to_string(i), "value" + std::to_string(i)).OrDie();
  }
  db->Flush().OrDie();
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get("key" + std::to_string(i++ % 10000)));
  }
}
BENCHMARK(BM_KvGet);

static void BM_KvScan(benchmark::State& state) {
  strata::fs::ScopedTempDir dir("bench-kv");
  auto db = std::move(kv::DB::Open(dir.path())).value();
  for (int i = 0; i < 10000; ++i) {
    db->Put("key" + std::to_string(i), "v").OrDie();
  }
  db->Flush().OrDie();
  for (auto _ : state) {
    auto it = db->NewIterator();
    std::size_t n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_KvScan);

// ----------------------------------------------------------------- pubsub

static void BM_PubSubRoundTrip(benchmark::State& state) {
  ps::Broker broker;
  broker.CreateTopic("bench", {.partitions = 1}).OrDie();
  ps::Producer producer(&broker);
  auto consumer = std::move(ps::Consumer::Create(&broker, "bench")).value();
  const std::string value(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    producer.Send("bench", "", value, 0).status().OrDie();
    auto batch = consumer->Poll(std::chrono::microseconds(1'000'000));
    benchmark::DoNotOptimize(batch);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PubSubRoundTrip)->Arg(1024)->Arg(1 << 20)->Arg(4 << 20);

// ------------------------------------------------------- pubsub over TCP

namespace {

/// Embedded broker behind a BrokerServer on an ephemeral loopback port.
struct NetBench {
  NetBench() : server(&broker) {
    broker.CreateTopic("bench", {.partitions = 1}).OrDie();
    server.Start().OrDie();
  }
  ~NetBench() { server.Stop(); }

  [[nodiscard]] net::RemoteOptions Remote() const {
    net::RemoteOptions remote;
    remote.port = server.port();
    return remote;
  }

  ps::Broker broker;
  net::BrokerServer server;
};

}  // namespace

static void BM_NetProduce(benchmark::State& state) {
  NetBench net;
  net::RemoteProducer producer(net.Remote());
  const std::string value(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    producer.Send("bench", "", value, 0).status().OrDie();
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NetProduce)->Arg(1024)->Arg(1 << 20)->Arg(4 << 20);

static void BM_NetPubSubRoundTrip(benchmark::State& state) {
  NetBench net;
  net::RemoteProducer producer(net.Remote());
  auto consumer =
      std::move(net::RemoteConsumer::Create(net.Remote(), "bench")).value();
  const std::string value(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    producer.Send("bench", "", value, 0).status().OrDie();
    auto batch = consumer->Poll(std::chrono::microseconds(1'000'000));
    batch.status().OrDie();
    benchmark::DoNotOptimize(batch);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NetPubSubRoundTrip)->Arg(1024)->Arg(1 << 20)->Arg(4 << 20);

// Many-connections scenario for the epoll reactor: `clients` idle
// long-polling connections sit parked on a quiet topic (costing the server
// fds and parked-fetch state, not threads) while producer threads and one
// remote consumer push records through a busy topic. Args are
// (clients, broker shards); the shards=1 vs shards=8 rows in BENCH_SPE.json
// are the before/after for the sharded data plane.
static void BM_NetManyClients(benchmark::State& state) {
  const int kClients = static_cast<int>(state.range(0));
  const int kShards = static_cast<int>(state.range(1));
  constexpr int kProducerThreads = 8;
  constexpr int kRecordsPerIteration = 4000;

  ps::BrokerOptions broker_options;
  broker_options.shards = static_cast<std::size_t>(kShards);
  ps::Broker broker(broker_options);
  broker.CreateTopic("bench", {.partitions = 16}).OrDie();
  broker.CreateTopic("idle", {.partitions = 1}).OrDie();

  net::BrokerServerOptions server_options;
  server_options.event_loop_workers = 4;
  server_options.max_fetch_wait = std::chrono::seconds(120);
  net::BrokerServer server(&broker, server_options);
  server.Start().OrDie();

  // Park the idle fleet: one uncorrelated long-poll Fetch per connection on
  // the never-produced-to topic. Nothing ever answers them; they exist to
  // make the server hold ~kClients parked fetches while serving the load.
  net::FetchRequest idle_fetch;
  idle_fetch.entries.push_back({.tp = {"idle", 0}, .offset = 0});
  idle_fetch.max_wait_us = 120'000'000;
  std::string body;
  net::EncodeFetchRequest(idle_fetch, &body);
  std::string park_payload;
  net::EncodeRequest(net::ApiKey::kFetch, body, &park_payload);
  std::vector<net::Socket> idle;
  idle.reserve(static_cast<std::size_t>(kClients));
  for (int i = 0; i < kClients; ++i) {
    auto socket = net::Socket::Connect("127.0.0.1", server.port(),
                                       net::After(std::chrono::seconds(10)));
    socket.status().OrDie();
    net::WriteFrame(&*socket, park_payload,
                    net::After(std::chrono::seconds(10)))
        .OrDie();
    idle.push_back(std::move(*socket));
  }

  net::RemoteOptions remote;
  remote.port = server.port();
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> produced{0};
  std::vector<std::thread> producers;
  const std::string value(1024, 'x');
  for (int t = 0; t < kProducerThreads; ++t) {
    producers.emplace_back([&] {
      net::RemoteProducer producer(remote);
      while (!stop.load(std::memory_order_relaxed)) {
        if (producer.Send("bench", "", value, 0).ok()) {
          produced.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  auto consumer =
      std::move(net::RemoteConsumer::Create(remote, "bench")).value();
  std::int64_t fetched = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::int64_t in_iteration = 0;
    while (in_iteration < kRecordsPerIteration) {
      auto batch = consumer->Poll(std::chrono::microseconds(1'000'000));
      if (!batch.ok()) continue;  // Timeout between produce bursts
      in_iteration += static_cast<std::int64_t>(batch->size());
    }
    fetched += in_iteration;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stop.store(true);
  for (auto& t : producers) t.join();

  const double produce_per_sec =
      static_cast<double>(produced.load()) / seconds;
  const double fetch_per_sec = static_cast<double>(fetched) / seconds;
  state.counters["clients"] = kClients;
  state.counters["shards"] = kShards;
  state.counters["produce_per_sec"] = produce_per_sec;
  state.counters["fetch_per_sec"] = fetch_per_sec;
  state.SetItemsProcessed(fetched);

  strata::bench::JsonLinesWriter out("STRATA_BENCH_JSON", "BENCH_SPE.json");
  out.Line(strata::bench::JsonObject()
               .Str("bench", "bench_substrates")
               .Str("scenario", "net_many_clients")
               .Int("clients", kClients)
               .Int("shards", kShards)
               .Int("event_loop_workers", 4)
               .Int("producer_threads", kProducerThreads)
               .Num("produce_per_sec", produce_per_sec)
               .Num("fetch_per_sec", fetch_per_sec)
               .Num("seconds", seconds));
}
BENCHMARK(BM_NetManyClients)
    ->Args({1024, 1})
    ->Args({1024, 8})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------- replicated acks modes

namespace {

/// Three-broker replicated cluster on loopback (the examples/net_replicated
/// topology): broker 1 leads "bench", brokers 2 and 3 follow.
struct ReplBench {
  struct Node {
    ps::Broker broker;
    std::unique_ptr<repl::ReplicationManager> manager;
    std::unique_ptr<net::BrokerServer> server;
  };

  ReplBench() {
    {
      std::vector<net::ListenSocket> probes;
      for (int i = 0; i < 3; ++i) {
        auto probe = net::ListenSocket::Listen("127.0.0.1", 0);
        probe.status().OrDie();
        endpoints.push_back(repl::BrokerEndpoint{
            static_cast<std::uint32_t>(i + 1), "127.0.0.1", probe->port()});
        probes.push_back(std::move(*probe));
      }
    }
    for (int i = 0; i < 3; ++i) {
      auto node = std::make_unique<Node>();
      repl::ReplicaOptions repl;
      repl.self = endpoints[static_cast<std::size_t>(i)];
      repl.brokers = endpoints;
      repl.fetch_interval = std::chrono::microseconds(200);
      node->manager = std::make_unique<repl::ReplicationManager>(
          &node->broker, repl);
      net::BrokerServerOptions server_options;
      server_options.host = "127.0.0.1";
      server_options.port = endpoints[static_cast<std::size_t>(i)].port;
      server_options.repl = node->manager.get();
      node->server =
          std::make_unique<net::BrokerServer>(&node->broker, server_options);
      node->server->Start().OrDie();
      node->manager->Start().OrDie();
      nodes.push_back(std::move(node));
    }
    for (auto& node : nodes) {
      node->manager->AddTopic("bench", {.partitions = 1}, /*leader=*/1)
          .OrDie();
    }
  }

  ~ReplBench() {
    for (auto& node : nodes) {
      node->manager->Stop();
      node->server->Stop();
      node->broker.Close();
    }
  }

  [[nodiscard]] net::RemoteOptions Remote(net::ProduceAcks acks) const {
    net::RemoteOptions remote;
    for (const repl::BrokerEndpoint& endpoint : endpoints) {
      remote.bootstrap.emplace_back(endpoint.host, endpoint.port);
    }
    remote.acks = acks;
    return remote;
  }

  std::vector<repl::BrokerEndpoint> endpoints;
  std::vector<std::unique_ptr<Node>> nodes;
};

}  // namespace

// acks=leader vs acks=quorum on the same three-broker cluster: the cost of
// holding each produce until a majority of brokers has appended the record.
// Arg 0 = leader acks, Arg 1 = quorum acks.
static void BM_NetReplicatedAcks(benchmark::State& state) {
  const auto acks = state.range(0) == 0 ? net::ProduceAcks::kLeader
                                        : net::ProduceAcks::kQuorum;
  ReplBench cluster;
  net::RemoteProducer producer(cluster.Remote(acks));
  const std::string value(1024, 'x');
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    producer.Send("bench", "", value, 0).status().OrDie();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double per_sec = static_cast<double>(state.iterations()) / seconds;
  state.counters["produce_per_sec"] = per_sec;
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0 ? "acks=leader" : "acks=quorum");

  strata::bench::JsonLinesWriter out("STRATA_BENCH_JSON", "BENCH_SPE.json");
  out.Line(strata::bench::JsonObject()
               .Str("bench", "bench_substrates")
               .Str("scenario", "net_replicated_acks")
               .Str("acks", state.range(0) == 0 ? "leader" : "quorum")
               .Int("brokers", 3)
               .Int("record_bytes", 1024)
               .Num("produce_per_sec", per_sec));
}
BENCHMARK(BM_NetReplicatedAcks)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(2000)  // fixed: one JSON row per acks mode, no re-estimation
    ->Unit(benchmark::kMicrosecond);

// -------------------------------------------------------------------- spe

static void BM_SpePipelineTuples(benchmark::State& state) {
  // Per-tuple cost through source -> map -> filter -> sink.
  const auto tuples = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    spe::Query query;
    auto counter = std::make_shared<std::int64_t>(0);
    auto src = query.AddSource(
        "src", [counter, tuples]() -> std::optional<spe::Tuple> {
          if (*counter >= tuples) return std::nullopt;
          spe::Tuple t;
          t.event_time = (*counter)++;
          t.payload.Set("v", *counter);
          return t;
        });
    auto mapped = query.AddFlatMap("map", src, [](const spe::Tuple& t) {
      return std::vector<spe::Tuple>{t};
    });
    auto filtered =
        query.AddFilter("filter", mapped, [](const spe::Tuple&) { return true; });
    query.AddSink("sink", filtered, [](const spe::Tuple&) {});
    query.Run();
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
BENCHMARK(BM_SpePipelineTuples)->Arg(100000)->Unit(benchmark::kMillisecond);

static void BM_SpeAggregateWindows(benchmark::State& state) {
  const std::int64_t tuples = 100000;
  for (auto _ : state) {
    spe::Query query;
    auto counter = std::make_shared<std::int64_t>(0);
    auto src = query.AddSource(
        "src", [counter]() -> std::optional<spe::Tuple> {
          if (*counter >= tuples) return std::nullopt;
          spe::Tuple t;
          t.event_time = (*counter)++;
          return t;
        });
    spe::AggregateSpec spec;
    spec.window = {1000, 100};
    spec.init = [] { return std::any(std::int64_t{0}); };
    spec.add = [](std::any& a, const spe::Tuple&) {
      ++std::any_cast<std::int64_t&>(a);
    };
    spec.result = [](std::any& a, Timestamp, Timestamp) {
      spe::Tuple t;
      t.payload.Set("n", std::any_cast<std::int64_t>(a));
      return std::vector<spe::Tuple>{t};
    };
    auto agg = query.AddAggregate("agg", src, std::move(spec));
    query.AddSink("sink", agg, [](const spe::Tuple&) {});
    query.Run();
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
BENCHMARK(BM_SpeAggregateWindows)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------- transport

static void BM_TupleCodecScalar(benchmark::State& state) {
  spe::Tuple t;
  t.job = 1;
  t.layer = 2;
  t.payload.Set("cx_mm", 12.5);
  t.payload.Set("cy_mm", 14.5);
  t.payload.Set("mean", 140.0);
  t.payload.Set("label", std::int64_t{2});
  for (auto _ : state) {
    std::string encoded;
    core::EncodeTuple(t, &encoded).OrDie();
    auto decoded = core::DecodeTuple(encoded);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_TupleCodecScalar);

static void BM_TupleCodecImage(benchmark::State& state) {
  spe::Tuple t;
  t.payload.Set(
      "ot_image",
      am::MakeImageValue(am::GrayImage(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(0)))));
  for (auto _ : state) {
    std::string encoded;
    core::EncodeTuple(t, &encoded).OrDie();
    auto decoded = core::DecodeTuple(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_TupleCodecImage)->Arg(1000)->Arg(2000);

// --------------------------------------------------------------------- am

static void BM_OtGenerateLayer(benchmark::State& state) {
  am::BuildJobSpec job = am::MakePaperJob(1, static_cast<int>(state.range(0)));
  am::DefectModelParams defect_params;
  defect_params.birth_rate = 0.03;
  am::DefectSeeder seeder(job, defect_params);
  am::OtImageGenerator generator(job, &seeder);
  int layer = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.GenerateLayer(layer++ % 100));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_OtGenerateLayer)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

static void BM_CellMeans(benchmark::State& state) {
  const am::BuildJobSpec job = am::MakePaperJob(1, 2000);
  am::OtImageGenerator generator(job, nullptr);
  const am::GrayImage image = generator.GenerateLayer(0);
  const int cell = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double sum = 0;
    for (const auto& s : job.specimens) {
      const int x0 = job.plate.MmToPx(s.x_mm);
      const int y0 = job.plate.MmToPx(s.y_mm);
      const int x1 = job.plate.MmToPx(s.x_mm + s.width_mm);
      const int y1 = job.plate.MmToPx(s.y_mm + s.length_mm);
      for (int y = y0; y + cell <= y1; y += cell) {
        for (int x = x0; x + cell <= x1; x += cell) {
          sum += image.RegionMean(x, y, cell, cell);
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CellMeans)->Arg(20)->Arg(10)->Arg(2)->Unit(benchmark::kMillisecond);

// BENCHMARK_MAIN plus the `--network` switch: run only the BM_Net* rows
// (the TCP-loopback broker path) for a quick embedded-vs-networked compare.
int main(int argc, char** argv) {
  // The many-clients scenario holds >2k sockets in one process (both ends
  // of every connection); lift the soft fd limit to the hard one up front.
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &limit);
  }

  std::vector<char*> args(argv, argv + argc);
  std::string filter_arg = "--benchmark_filter=BM_Net";
  for (char*& arg : args) {
    if (std::string_view(arg) == "--network") arg = filter_arg.data();
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
