// Figure 7 reproduction: processing throughput (thousands of cells/s) and
// average latency for an increasing number of OT images/s offered to the
// Algorithm-1 query, for cell sizes 20x20 and 10x10 (at the paper's 8 px/mm
// scale).
//
// As in the paper, input is replayed as fast as the offered rate allows:
// frames are pre-generated once and replayed cyclically with monotonically
// increasing layer numbers, so the pipeline (including both connectors)
// processes a steady stream.
//
// Expected shape (paper): throughput grows linearly with the offered rate
// until the query's capacity, then flattens while latency turns upward; the
// 10x10 curve flattens at ~1/4 of the images/s of the 20x20 curve (each
// 20x20 cell = four 10x10 cells), at a similar cells/s plateau.
//
// Env knobs: STRATA_FIG7_PX (default 1000), STRATA_FIG7_FRAMES (default 24),
//            STRATA_FIG7_MAXRATE (default 256).
//
// `--trace-out <file>` additionally runs one traced trial after the sweep
// (sampling 1/16) and writes a Chrome trace-event JSON for Perfetto, plus a
// per-stage latency breakdown appended to the bench artifact.
#include <cmath>
#include <cstring>
#include <thread>

#include "bench_json.hpp"
#include "figure_common.hpp"
#include "obs/trace.hpp"

using namespace strata;         // NOLINT
using namespace strata::bench;  // NOLINT
using namespace strata::core;   // NOLINT

namespace {

struct FrameCache {
  am::BuildJobSpec job;
  std::vector<am::GrayImage> frames;
  std::vector<Payload> params;
  Timestamp period = SecondsToMicros(33.0);
};

FrameCache BuildCache(int image_px, int frame_count) {
  FrameCache cache;
  cache.job = am::MakePaperJob(1, image_px);
  am::MachineParams machine_params;
  machine_params.job = cache.job;
  machine_params.defects.birth_rate = 0.03;
  machine_params.layers_limit = frame_count;
  am::MachineSimulator machine(machine_params);
  while (auto layer = machine.NextLayer()) {
    cache.frames.push_back(std::move(layer->ot_image));
    cache.params.push_back(std::move(layer->printing_params));
  }
  return cache;
}

/// Replays cached frames cyclically with increasing layer ids at `rate`
/// images/s (<= 0: unthrottled), `count` images total.
spe::SourceFn CachedOtSource(const FrameCache* cache, int count, double rate) {
  auto state = std::make_shared<std::pair<int, Timestamp>>(0, 0);
  return [cache, count, rate, state]() -> std::optional<spe::Tuple> {
    if (state->first >= count) return std::nullopt;
    const int i = state->first++;
    if (rate > 0) {
      const Clock& clock = Clock::System();
      if (state->second == 0) state->second = clock.Now();
      clock.SleepUntil(state->second +
                       static_cast<Timestamp>(i * 1e6 / rate));
    }
    spe::Tuple t;
    t.job = 1;
    t.layer = i;
    t.event_time = static_cast<Timestamp>(i + 1) * cache->period;
    t.payload.Set(kOtImageKey,
                  am::MakeImageValue(
                      cache->frames[static_cast<std::size_t>(i) %
                                    cache->frames.size()]));
    return t;
  };
}

spe::SourceFn CachedPpSource(const FrameCache* cache, int count) {
  auto next = std::make_shared<int>(0);
  return [cache, count, next]() -> std::optional<spe::Tuple> {
    if (*next >= count) return std::nullopt;
    const int i = (*next)++;
    spe::Tuple t;
    t.job = 1;
    t.layer = i;
    t.event_time = static_cast<Timestamp>(i + 1) * cache->period;
    t.payload =
        cache->params[static_cast<std::size_t>(i) % cache->params.size()];
    return t;
  };
}

struct SweepPoint {
  double offered_rate;
  double achieved_images_s;
  double kcells_s;
  double mean_latency_ms;
  double p95_latency_ms;
  double p99_latency_ms;  // tail guard for the batching linger
  double blocked_ms;  // back-pressure: total producer block time (spe.stream)
  std::uint64_t epochs_completed = 0;  // checkpointing trials only
  std::uint64_t epochs_failed = 0;
};

/// Per-stage tuples_out from the metrics registry (parallel shards summed,
/// plumbing operators excluded via the kind label).
void PrintStageMetrics(const obs::MetricsSnapshot& snap) {
  struct Stage {
    const char* op;
    const char* kind;
  };
  constexpr Stage kStages[] = {
      {"fuse.m0", "join"},       {"spec.m0", "flatmap"},
      {"cell.m0", "flatmap"},    {"label.m0", "flatmap"},
      {"cluster.m0", "flatmap"}, {"expert.m0", "sink"},
  };
  std::printf("    stage tuples:");
  for (const Stage& stage : kStages) {
    // Sinks have no outputs; their traffic is what they consumed.
    const bool is_sink = std::string_view(stage.kind) == "sink";
    std::printf(" %s=%.0f", stage.op,
                snap.Sum(is_sink ? "spe.operator.tuples_in"
                                 : "spe.operator.tuples_out",
                         "op", stage.op, {{"kind", stage.kind}}));
  }
  std::printf("\n");
}

SweepPoint RunReplayTrial(const FrameCache& cache, int cell_px, double rate,
                          int images,
                          std::int64_t checkpoint_interval_ms = 0,
                          bool fusion = false, int parallelism = 2) {
  StrataOptions options;
  options.checkpoint_interval_ms = checkpoint_interval_ms;
  options.query.enable_fusion = fusion;
  Strata strata_rt(options);
  UseCaseParams params;
  params.cell_px = cell_px;
  params.correlate_layers = 20;
  params.partition_parallelism = parallelism;
  params.detect_parallelism = parallelism;
  ComputeAndStoreThresholds(&strata_rt, params.machine_id, cache.job,
                            /*history_layers=*/2, cell_px)
      .OrDie();

  auto pp = strata_rt.AddSource("pp.m0", CachedPpSource(&cache, images));
  auto ot = strata_rt.AddSource("ot.m0", CachedOtSource(&cache, images, rate));
  auto fused = strata_rt.Fuse("fuse.m0", ot, pp);
  auto specimens = strata_rt.Partition("spec.m0", fused, IsolateSpecimen());
  auto cells = strata_rt.Partition("cell.m0", specimens, IsolateCell(cell_px),
                                   params.partition_parallelism);
  auto events = strata_rt.DetectEvent("label.m0", cells,
                                      LabelCell(&strata_rt, params.machine_id),
                                      params.detect_parallelism);
  auto reports =
      strata_rt.CorrelateEvents("cluster.m0", events, params.correlate_layers,
                                DbscanCorrelator(params, cache.job.plate.PxPerMm()));
  auto* sink = strata_rt.Deliver("expert.m0", reports, nullptr);

  const Timestamp start = Clock::System().Now();
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  const double wall = MicrosToSeconds(Clock::System().Now() - start);

  // Per-stage counts come from the metrics registry: parallel shards of the
  // cell stage are summed by op-name prefix, with the kind label excluding
  // the router/union plumbing around them.
  const obs::MetricsSnapshot snap = strata_rt.MetricsSnapshot();
  const double cells_out =
      snap.Sum("spe.operator.tuples_out", "op", "cell.m0", {{"kind", "flatmap"}});
  const double blocked_us =
      snap.Sum("spe.stream.blocked_us", "stream", "");
  PrintStageMetrics(snap);
  const Histogram latency = sink->LatencySnapshot();
  SweepPoint point{rate, images / wall,
                   cells_out / wall / 1000.0,
                   MicrosToMillis(static_cast<Timestamp>(latency.mean())),
                   MicrosToMillis(latency.Quantile(0.95)),
                   MicrosToMillis(latency.Quantile(0.99)),
                   blocked_us / 1000.0};
  if (checkpoint_interval_ms > 0) {
    const spe::Checkpointer::Stats stats =
        strata_rt.query().checkpointer()->stats();
    point.epochs_completed = stats.epochs_completed;
    point.epochs_failed = stats.epochs_failed;
  }
  return point;
}

/// Checkpointing on vs off: the same unthrottled replay, once without
/// barriers and once with epoch-barrier checkpoints persisting to the
/// kvstore. The delta is the steady-state cost of effectively-once
/// (barrier alignment, operator snapshots, manifest writes); the
/// acceptance bar is < 10% of fig7 throughput. The epoch cadence is
/// scaled to the off-trial's wall time so every measurement averages
/// over at least kMinEpochs completed epochs instead of a single
/// noise-dominated one.
void RunCheckpointOverhead(const FrameCache& cache, int image_px,
                           JsonLinesWriter* out) {
  constexpr std::uint64_t kMinEpochs = 5;
  const int cell_px = std::max(1, 20 * image_px / 2000);
  const int images = 128;
  SweepPoint off =
      RunReplayTrial(cache, cell_px, /*rate=*/0, images);
  const double off_wall_ms =
      off.achieved_images_s > 0 ? images / off.achieved_images_s * 1000.0
                                : 1000.0;
  std::int64_t interval_ms = static_cast<std::int64_t>(
      std::clamp(off_wall_ms / (kMinEpochs + 3.0), 25.0, 250.0));
  std::printf("--- checkpoint overhead (cell 20x20, unthrottled, %lld ms "
              "interval) ---\n",
              static_cast<long long>(interval_ms));
  SweepPoint on =
      RunReplayTrial(cache, cell_px, /*rate=*/0, images, interval_ms);
  int trial_images = images;
  // Near saturation the epoch rate is limited by barrier traversal of the
  // backlogged pipeline, not by the cadence, so a tighter interval alone
  // does not help: lengthen the run until the mean covers enough epochs,
  // then re-measure the off baseline once at the same length.
  for (int attempt = 0;
       attempt < 2 && on.epochs_completed < kMinEpochs; ++attempt) {
    interval_ms = std::max<std::int64_t>(25, interval_ms / 4);
    trial_images *= 4;
    std::printf("    only %llu epochs; retrying with %d images at %lld ms\n",
                static_cast<unsigned long long>(on.epochs_completed),
                trial_images, static_cast<long long>(interval_ms));
    on = RunReplayTrial(cache, cell_px, /*rate=*/0, trial_images,
                        interval_ms);
  }
  if (trial_images != images) {
    off = RunReplayTrial(cache, cell_px, /*rate=*/0, trial_images);
  }
  const double on_wall_ms =
      on.achieved_images_s > 0 ? trial_images / on.achieved_images_s * 1000.0
                               : 0.0;
  const double epoch_mean_ms =
      on.epochs_completed > 0 ? on_wall_ms / on.epochs_completed : 0.0;
  const double overhead_pct =
      off.kcells_s > 0 ? (off.kcells_s - on.kcells_s) / off.kcells_s * 100.0
                       : 0.0;
  std::printf("    off: %.1f kcells/s   on: %.1f kcells/s   overhead: %.1f%%"
              "   epochs: %llu completed (mean %.1f ms), %llu failed\n",
              off.kcells_s, on.kcells_s, overhead_pct,
              static_cast<unsigned long long>(on.epochs_completed),
              epoch_mean_ms,
              static_cast<unsigned long long>(on.epochs_failed));
  out->Line(JsonObject()
                .Str("bench", "bench_fig7_throughput")
                .Str("kind", "checkpoint_overhead")
                .Int("image_px", image_px)
                .Int("checkpoint_interval_ms", interval_ms)
                .Num("kcells_s_off", off.kcells_s)
                .Num("kcells_s_on", on.kcells_s)
                .Num("overhead_pct", overhead_pct)
                .Int("epochs_completed",
                     static_cast<long long>(on.epochs_completed))
                .Num("epoch_mean_ms", epoch_mean_ms)
                .Int("epochs_failed",
                     static_cast<long long>(on.epochs_failed)));
}

/// Fused vs unfused at saturation: the unthrottled replay at the 10x10
/// paper cell (the cell-bound regime), both runs at parallelism 1 so the
/// spec -> cell -> label stages form one fusable stateless chain. The
/// fused row should saturate higher: three queue hops collapse into one
/// in-loop chain.
void RunFusionComparison(const FrameCache& cache, int image_px,
                         JsonLinesWriter* out) {
  const int cell_px = std::max(1, 10 * image_px / 2000);
  const int images = 128;
  std::printf(
      "--- operator fusion (cell 10x10, unthrottled, parallelism 1) ---\n");
  SweepPoint points[2];
  for (int fusion = 0; fusion < 2; ++fusion) {
    points[fusion] =
        RunReplayTrial(cache, cell_px, /*rate=*/0, images,
                       /*checkpoint_interval_ms=*/0, fusion == 1,
                       /*parallelism=*/1);
    std::printf("    fusion=%d: %.1f img/s, %.1f kcells/s, p95 %.2f ms\n",
                fusion, points[fusion].achieved_images_s,
                points[fusion].kcells_s, points[fusion].p95_latency_ms);
    out->Line(JsonObject()
                  .Str("bench", "bench_fig7_throughput")
                  .Str("kind", "fused")
                  .Int("paper_cell", 10)
                  .Int("image_px", image_px)
                  .Int("fusion", fusion)
                  .Num("achieved_images_s", points[fusion].achieved_images_s)
                  .Num("kcells_s", points[fusion].kcells_s)
                  .Num("p95_latency_ms", points[fusion].p95_latency_ms));
  }
  if (points[0].kcells_s > 0) {
    std::printf("    fusion speedup: %.2fx\n",
                points[1].kcells_s / points[0].kcells_s);
  }
}

/// Keyed-shard scaling on a synthetic CPU-heavy keyed aggregate (the fig7
/// pipeline is cell-bound, not aggregate-bound, so this isolates the
/// router/shard/union path): one source, a keyed aggregate whose add()
/// burns a few microseconds per tuple, shards 1/2/4. The speedup column
/// tracks available cores — on a single-core runner it stays ~1.0x by
/// construction, so the row records hardware_concurrency alongside.
void RunKeyedShardScaling(JsonLinesWriter* out) {
  constexpr std::int64_t kTuples = 40'000;
  constexpr std::int64_t kKeys = 16;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf(
      "--- keyed shard scaling (CPU-heavy keyed aggregate, %u cores) ---\n",
      cores);
  double base_ktuples_s = 0;
  for (const int shards : {1, 2, 4}) {
    spe::Query query;
    auto pos = std::make_shared<std::int64_t>(0);
    auto src = query.AddSource(
        "gen", [pos]() -> std::optional<spe::Tuple> {
          if (*pos >= kTuples) return std::nullopt;
          spe::Tuple t;
          t.event_time = *pos + 1;
          t.stimulus = *pos + 1;
          t.job = *pos % kKeys;
          ++*pos;
          return t;
        });
    spe::AggregateSpec spec;
    spec.window = {kTuples + 1, kTuples + 1};  // one window: state stays hot
    spec.key = [](const spe::Tuple& t) { return std::to_string(t.job); };
    spec.init = [] { return std::any(std::uint64_t{0}); };
    spec.add = [](std::any& acc, const spe::Tuple& t) {
      std::uint64_t x = static_cast<std::uint64_t>(t.event_time);
      for (int i = 0; i < 2000; ++i) {
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      }
      std::any_cast<std::uint64_t&>(acc) += x;
    };
    spec.result = [](std::any& acc, Timestamp /*start*/,
                     Timestamp /*end*/) -> std::vector<spe::Tuple> {
      spe::Tuple t;
      t.payload.Set("digest",
                    static_cast<std::int64_t>(
                        std::any_cast<std::uint64_t>(acc) >> 1));
      return {t};
    };
    auto heavy =
        query.AddAggregate("heavy", std::move(src), std::move(spec), shards);
    query.AddSink("sink", std::move(heavy), [](const spe::Tuple&) {});
    const Timestamp start = Clock::System().Now();
    query.Run();
    const double wall = MicrosToSeconds(Clock::System().Now() - start);
    const double ktuples_s = kTuples / wall / 1000.0;
    if (shards == 1) base_ktuples_s = ktuples_s;
    const double speedup =
        base_ktuples_s > 0 ? ktuples_s / base_ktuples_s : 1.0;
    std::printf("    shards=%d: %8.0f ktuples/s  (%.2fx)\n", shards,
                ktuples_s, speedup);
    out->Line(JsonObject()
                  .Str("bench", "bench_fig7_throughput")
                  .Str("kind", "keyed_shards")
                  .Int("shards", shards)
                  .Int("cores", static_cast<long long>(cores))
                  .Num("ktuples_s", ktuples_s)
                  .Num("speedup", speedup));
  }
}

/// One trial with sampling at 1/16: exports the spans as a Chrome trace for
/// Perfetto and appends the per-stage latency breakdown to the artifact.
/// Runs after the sweep so tracing overhead never touches the headline
/// numbers.
void RunTracedTrial(const FrameCache& cache, int image_px,
                    const char* trace_path, JsonLinesWriter* out) {
  const int cell_px = std::max(1, 20 * image_px / 2000);
  obs::Tracer& tracer = obs::Tracer::Instance();
  tracer.Configure(16);
  tracer.Clear();
  std::printf("--- traced trial (cell 20x20, rate 32, sample 1/16) ---\n");
  const SweepPoint point =
      RunReplayTrial(cache, cell_px, /*rate=*/32, /*images=*/128);
  const std::vector<obs::Span> spans = tracer.CollectSpans();
  tracer.Configure(0);
  tracer.Clear();
  std::printf("    achieved %.1f img/s, %.1f kcells/s, %zu spans\n",
              point.achieved_images_s, point.kcells_s, spans.size());

  if (std::FILE* f = std::fopen(trace_path, "w"); f != nullptr) {
    const std::string json = obs::Tracer::ToChromeTrace(spans);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("    chrome trace -> %s (load in Perfetto)\n", trace_path);
  } else {
    std::printf("    cannot open %s for writing\n", trace_path);
  }

  std::printf("%28s %8s %10s %10s %10s %10s %12s\n", "stage", "spans",
              "exec p50", "exec p95", "exec p99", "queue p50", "total(ms)");
  for (const obs::StageStats& stage : obs::Tracer::Summarize(spans)) {
    const std::string label = stage.category + "/" + stage.name;
    std::printf("%28s %8llu %8lldus %8lldus %8lldus %8lldus %12.1f\n",
                label.c_str(),
                static_cast<unsigned long long>(stage.count),
                static_cast<long long>(stage.exec_p50_us),
                static_cast<long long>(stage.exec_p95_us),
                static_cast<long long>(stage.exec_p99_us),
                static_cast<long long>(stage.queue_p50_us),
                stage.total_exec_us / 1000.0);
    out->Line(JsonObject()
                  .Str("bench", "bench_fig7_throughput")
                  .Str("kind", "stage_breakdown")
                  .Str("category", stage.category)
                  .Str("stage", stage.name)
                  .Int("spans", static_cast<long long>(stage.count))
                  .Int("exec_p50_us", stage.exec_p50_us)
                  .Int("exec_p95_us", stage.exec_p95_us)
                  .Int("exec_p99_us", stage.exec_p99_us)
                  .Int("queue_p50_us", stage.queue_p50_us)
                  .Int("queue_p95_us", stage.queue_p95_us)
                  .Int("total_exec_us", stage.total_exec_us));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_out = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_out = argv[i + 1];
  }
  const int image_px = EnvInt("STRATA_FIG7_PX", 1000);
  const int frame_count = EnvInt("STRATA_FIG7_FRAMES", 24);
  const int max_rate = EnvInt("STRATA_FIG7_MAXRATE", 256);

  std::printf(
      "== Figure 7: throughput / latency vs offered OT images/s ==\n"
      "12 specimens, %dx%d px frames replayed cyclically, L=20\n\n",
      image_px, image_px);

  const FrameCache cache = BuildCache(image_px, frame_count);
  JsonLinesWriter out("STRATA_BENCH_JSON", "BENCH_SPE.json");

  // Cell sizes quoted at the paper's 2000 px (8 px/mm) scale.
  for (const int paper_cell : {20, 10}) {
    const int cell_px = std::max(1, paper_cell * image_px / 2000);
    std::printf("--- cell size %dx%d (paper scale) ---\n", paper_cell,
                paper_cell);
    std::printf("%12s %14s %12s %14s %14s %14s %12s\n", "offered/s",
                "achieved img/s", "kcells/s", "mean lat(ms)", "p95 lat(ms)",
                "p99 lat(ms)", "blocked(ms)");
    for (double rate = 4; rate <= max_rate; rate *= 2) {
      const int images =
          std::clamp(static_cast<int>(rate * 4), 48, 256);
      const SweepPoint point = RunReplayTrial(cache, cell_px, rate, images);
      std::printf("%12.0f %14.1f %12.1f %14.2f %14.2f %14.2f %12.1f\n",
                  point.offered_rate, point.achieved_images_s, point.kcells_s,
                  point.mean_latency_ms, point.p95_latency_ms,
                  point.p99_latency_ms, point.blocked_ms);
      out.Line(JsonObject()
                   .Str("bench", "bench_fig7_throughput")
                   .Int("paper_cell", paper_cell)
                   .Int("image_px", image_px)
                   .Num("offered_rate", point.offered_rate)
                   .Num("achieved_images_s", point.achieved_images_s)
                   .Num("kcells_s", point.kcells_s)
                   .Num("mean_latency_ms", point.mean_latency_ms)
                   .Num("p95_latency_ms", point.p95_latency_ms)
                   .Num("p99_latency_ms", point.p99_latency_ms)
                   .Num("blocked_ms", point.blocked_ms));
    }
    std::printf("\n");
  }

  RunFusionComparison(cache, image_px, &out);
  RunKeyedShardScaling(&out);
  RunCheckpointOverhead(cache, image_px, &out);

  if (trace_out != nullptr) RunTracedTrial(cache, image_px, trace_out, &out);
  return 0;
}
