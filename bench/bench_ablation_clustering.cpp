// Ablation A1: DBSCAN (the paper's choice) vs k-means (the prior-work
// baseline, Snell et al. [29]) on defect-event point clouds.
//
// The paper motivates DBSCAN because (a) the number of clusters is unknown
// in advance, (b) clusters have arbitrary shapes/sizes, and (c) it is
// accurate and efficient. This bench quantifies that on synthetic event
// clouds with seeded ground truth: cluster-recovery quality (ARI/purity,
// noise handling) and runtime, across event densities. It also validates
// the grid index against the brute-force implementation.
#include <chrono>
#include <cstdio>

#include "clustering/dbscan.hpp"
#include "clustering/kmeans.hpp"
#include "clustering/quality.hpp"
#include "common/rng.hpp"

using namespace strata;           // NOLINT
using namespace strata::cluster;  // NOLINT

namespace {

struct Labeled {
  std::vector<Point> points;
  std::vector<int> truth;
  int cluster_count;
};

/// Defect-like ground truth: compact ellipsoidal clusters of events across
/// layers plus uniform noise (threshold-tail false positives).
Labeled MakeDefectCloud(int clusters, int points_per_cluster, int noise,
                        std::uint64_t seed) {
  Labeled data;
  Rng rng(seed);
  data.cluster_count = clusters;
  for (int c = 0; c < clusters; ++c) {
    const double cx = rng.Uniform(10, 240);
    const double cy = rng.Uniform(10, 240);
    const auto base_layer = rng.UniformInt(0, 50);
    for (int i = 0; i < points_per_cluster; ++i) {
      data.points.push_back(Point{cx + rng.Normal(0, 1.2),
                                  cy + rng.Normal(0, 1.2),
                                  base_layer + rng.UniformInt(0, 6), 1.0});
      data.truth.push_back(c);
    }
  }
  for (int i = 0; i < noise; ++i) {
    data.points.push_back(Point{rng.Uniform(0, 250), rng.Uniform(0, 250),
                                rng.UniformInt(0, 60), 1.0});
    data.truth.push_back(kNoise);
  }
  return data;
}

template <typename F>
double TimeMs(F&& fn, int repeats = 3) {
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    best = std::min(best, ms);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("== Ablation A1: DBSCAN vs k-means on defect event clouds ==\n");
  std::printf("%8s %8s | %12s %8s %8s | %12s %8s %8s | %12s\n", "clusters",
              "points", "dbscan(ms)", "ARI", "purity", "kmeans(ms)", "ARI",
              "purity", "brute(ms)");

  for (const auto& [clusters, per_cluster, noise] :
       {std::tuple{4, 40, 40}, std::tuple{8, 60, 120},
        std::tuple{16, 80, 300}, std::tuple{32, 120, 800}}) {
    const Labeled data =
        MakeDefectCloud(clusters, per_cluster, noise,
                        static_cast<std::uint64_t>(clusters) * 7919);

    DbscanParams dbscan_params{CylinderMetric{2.5, 3}, 4};
    DbscanResult dbscan_result;
    const double dbscan_ms =
        TimeMs([&] { dbscan_result = Dbscan(data.points, dbscan_params); });
    const double dbscan_ari =
        AdjustedRandIndex(data.truth, dbscan_result.labels);
    const double dbscan_purity = Purity(data.truth, dbscan_result.labels);

    // k-means gets the TRUE cluster count — an advantage it would not have
    // in production (the paper's point) — and still loses on noise.
    KMeansResult kmeans_result;
    const double kmeans_ms = TimeMs([&] {
      kmeans_result =
          KMeans(data.points, {.k = data.cluster_count + 1,
                               .max_iterations = 50,
                               .layer_scale = 0.8,
                               .seed = 11});
    });
    const double kmeans_ari = AdjustedRandIndex(data.truth, kmeans_result.labels);
    const double kmeans_purity = Purity(data.truth, kmeans_result.labels);

    const double brute_ms = TimeMs(
        [&] { (void)DbscanBruteForce(data.points, dbscan_params); }, 1);

    std::printf("%8d %8zu | %12.2f %8.3f %8.3f | %12.2f %8.3f %8.3f | %12.2f\n",
                clusters, data.points.size(), dbscan_ms, dbscan_ari,
                dbscan_purity, kmeans_ms, kmeans_ari, kmeans_purity, brute_ms);
  }

  std::printf(
      "\nExpected: DBSCAN ARI ~1.0 (recovers count + noise); k-means ARI\n"
      "degraded by noise-to-cluster assignment even when given the true k;\n"
      "grid DBSCAN well under the O(n^2) brute-force time at scale.\n");
  return 0;
}
