// Ablation A4: open-loop vs closed-loop printing.
//
// Quantifies the paper's §1 motivation ("a printing process showing signs
// of defects is re-configured or terminated as soon as possible, saving
// energy, material, time"): the same defective job printed (a) open loop,
// (b) with per-specimen laser adjustment, and (c) with adjustment +
// termination of hopeless jobs. Reported: defect events observed, layers
// printed (material/energy proxy), and defect events after the first
// mitigation.
#include <cstdio>
#include <limits>
#include <mutex>

#include "strata/controller.hpp"

using namespace strata;        // NOLINT
using namespace strata::core;  // NOLINT

namespace {

struct LoopResult {
  std::size_t layers_printed = 0;
  std::size_t total_events = 0;
  std::size_t adjustments = 0;
  bool terminated = false;
};

LoopResult RunLoop(bool adjust, bool terminate, int layers) {
  Strata strata_rt;
  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, 300, 3);
  machine_params.layers_limit = layers;
  machine_params.defects.birth_rate = 0.35;
  machine_params.defects.mean_intensity_delta = 55.0;
  machine_params.defects.mean_radius_mm = 2.5;

  UseCaseParams params;
  params.cell_px = 4;
  params.correlate_layers = 8;
  params.min_report_points = 4;
  ComputeAndStoreThresholds(&strata_rt, params.machine_id, machine_params.job,
                            3, params.cell_px)
      .OrDie();

  auto machine = std::make_shared<am::MachineSimulator>(machine_params);
  std::shared_ptr<FeedbackController> controller;
  if (adjust || terminate) {
    ControllerPolicy policy;
    // Scenario (b): per-specimen adjustment. Scenario (c) models a build
    // where re-parameterization is NOT available (e.g. the fault is the
    // powder batch, not the energy input): the controller's only lever is
    // stopping the job once a specimen's lifetime defect mass crosses a
    // ceiling.
    policy.adjust_cluster_points =
        adjust ? 25 : std::numeric_limits<std::size_t>::max();
    policy.post_adjust_points = 60;
    policy.terminate_specimen_fraction = 2.0;
    policy.hard_terminate_points = terminate ? 400 : 0;
    controller = std::make_shared<FeedbackController>(machine, policy);
  }

  LoopResult result;
  std::mutex mu;
  std::set<std::int64_t> layers_seen;
  // Live pacing (compressed 33 ms/layer): feedback acts within the layer
  // cadence, as on the real machine.
  BuildThermalPipeline(&strata_rt, machine,
                       CollectorPacing{.mode = CollectorPacing::Mode::kLive,
                                       .time_scale = 0.001},
                       params, [&](const ClusterReport& report) {
                         {
                           std::lock_guard lock(mu);
                           layers_seen.insert(report.layer);
                           result.total_events += report.window_events;
                         }
                         if (controller) controller->OnReport(report);
                       });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();

  result.layers_printed = layers_seen.size();
  if (controller) {
    result.adjustments = controller->stats().adjustments_issued;
    result.terminated = controller->stats().terminated;
  }
  return result;
}

}  // namespace

int main() {
  constexpr int kLayers = 60;
  std::printf(
      "== Ablation A4: open-loop vs closed-loop on a defective job ==\n"
      "3 specimens, %d layers, heavy defect seeding\n\n",
      kLayers);
  std::printf("%-24s %10s %12s %12s %12s\n", "mode", "layers", "events",
              "adjusts", "terminated");

  const LoopResult open = RunLoop(false, false, kLayers);
  std::printf("%-24s %10zu %12zu %12zu %12s\n", "open loop",
              open.layers_printed, open.total_events, open.adjustments, "-");

  const LoopResult adjusted = RunLoop(true, false, kLayers);
  std::printf("%-24s %10zu %12zu %12zu %12s\n", "closed loop (adjust)",
              adjusted.layers_printed, adjusted.total_events,
              adjusted.adjustments, "-");

  const LoopResult full = RunLoop(false, true, kLayers);
  std::printf("%-24s %10zu %12zu %12zu %12s\n",
              "closed loop (terminate)", full.layers_printed,
              full.total_events, full.adjustments,
              full.terminated ? "yes" : "no");

  std::printf(
      "\nExpected: adjustment cuts total defect events versus open loop;\n"
      "with termination enabled a hopeless job also stops early, saving\n"
      "the remaining layers' material and energy.\n");
  return 0;
}
