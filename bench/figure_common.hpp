// Shared harness for the figure-reproduction benches: runs the Algorithm-1
// use-case pipeline on a simulated job and reports the sink latency
// distribution + processing counters.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>

#include "strata/usecase.hpp"

namespace strata::bench {

struct TrialResult {
  Histogram latency;           // per-report end-to-end latency (us)
  std::size_t reports = 0;     // (layer, specimen) reports delivered
  std::uint64_t cells = 0;     // cell tuples produced by isolateCell
  std::uint64_t events = 0;    // defect events emitted by labelCell
  double wall_seconds = 0.0;

  [[nodiscard]] double CellsPerSecond() const {
    return wall_seconds > 0 ? static_cast<double>(cells) / wall_seconds : 0.0;
  }
};

struct TrialConfig {
  am::MachineParams machine;
  core::UseCaseParams usecase;
  core::CollectorPacing pacing;
  int threshold_history_layers = 3;
};

inline TrialResult RunThermalTrial(const TrialConfig& config) {
  core::Strata strata_rt;
  core::ComputeAndStoreThresholds(&strata_rt, config.usecase.machine_id,
                                  config.machine.job,
                                  config.threshold_history_layers,
                                  config.usecase.cell_px)
      .OrDie();
  auto machine = std::make_shared<am::MachineSimulator>(config.machine);

  TrialResult result;
  std::mutex mu;
  auto* sink = core::BuildThermalPipeline(
      &strata_rt, machine, config.pacing, config.usecase,
      [&](const core::ClusterReport&) {
        std::lock_guard lock(mu);
        ++result.reports;
      });

  const Timestamp start = Clock::System().Now();
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  result.wall_seconds = MicrosToSeconds(Clock::System().Now() - start);
  result.latency = sink->LatencySnapshot();

  // Per-stage counts from the metrics registry: parallel stages split into
  // "<name>[i]" instances (summed by op prefix) and the kind label excludes
  // the router/union plumbing around them.
  const obs::MetricsSnapshot snap = strata_rt.MetricsSnapshot();
  const std::string cell_op = "cell." + config.usecase.machine_id;
  const std::string label_op = "label." + config.usecase.machine_id;
  result.cells = static_cast<std::uint64_t>(
      snap.Sum("spe.operator.tuples_out", "op", cell_op, {{"kind", "flatmap"}}));
  result.events = static_cast<std::uint64_t>(
      snap.Sum("spe.operator.tuples_out", "op", label_op, {{"kind", "flatmap"}}));
  return result;
}

inline void PrintBoxplotRow(const char* label, const TrialResult& result,
                            double qos_seconds = 3.0) {
  const BoxplotStats box = result.latency.Boxplot();
  std::printf(
      "%-14s %8llu %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f   %s\n", label,
      static_cast<unsigned long long>(box.count), MicrosToMillis(box.min),
      MicrosToMillis(box.p25), MicrosToMillis(box.p50),
      MicrosToMillis(box.p75), MicrosToMillis(box.p95),
      MicrosToMillis(box.max),
      MicrosToSeconds(box.max) <= qos_seconds ? "yes" : "NO");
}

inline void PrintBoxplotHeader() {
  std::printf("%-14s %8s %10s %10s %10s %10s %10s %10s   %s\n", "config",
              "n", "min(ms)", "p25(ms)", "p50(ms)", "p75(ms)", "p95(ms)",
              "max(ms)", "QoS<=3s");
}

/// Environment-tunable integer (benches accept scaling without rebuilds).
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace strata::bench
