// Minimal JSON-lines emitter for machine-readable bench output (BENCH_SPE
// .json and friends): one flat object per line, no dependencies, append
// mode so several benches can share one artifact file. The target path
// comes from an env var (CI points every bench at the same artifact);
// construction with a null/empty fallback and unset env disables output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace strata::bench {

/// Builds one flat JSON object; keys are emitted in call order.
class JsonObject {
 public:
  JsonObject& Str(const char* key, const std::string& value) {
    Key(key);
    buf_ += '"';
    for (const char c : value) {
      if (c == '"' || c == '\\') buf_ += '\\';
      buf_ += c;
    }
    buf_ += '"';
    return *this;
  }

  JsonObject& Num(const char* key, double value) {
    char tmp[64];
    std::snprintf(tmp, sizeof(tmp), "%.6g", value);
    Key(key);
    buf_ += tmp;
    return *this;
  }

  JsonObject& Int(const char* key, long long value) {
    Key(key);
    buf_ += std::to_string(value);
    return *this;
  }

  [[nodiscard]] std::string Finish() const { return buf_ + "}"; }

 private:
  void Key(const char* key) {
    buf_ += buf_.size() == 1 ? "\"" : ",\"";
    buf_ += key;
    buf_ += "\":";
  }

  std::string buf_ = "{";
};

/// Appends JSON lines to the file named by `env_var` (falling back to
/// `fallback_path`); silently inert when neither resolves or open fails.
class JsonLinesWriter {
 public:
  JsonLinesWriter(const char* env_var, const char* fallback_path) {
    const char* path = env_var != nullptr ? std::getenv(env_var) : nullptr;
    if (path == nullptr || *path == '\0') path = fallback_path;
    if (path != nullptr && *path != '\0') {
      file_ = std::fopen(path, "a");
      path_ = path;
    }
  }
  ~JsonLinesWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonLinesWriter(const JsonLinesWriter&) = delete;
  JsonLinesWriter& operator=(const JsonLinesWriter&) = delete;

  void Line(const JsonObject& object) {
    if (file_ == nullptr) return;
    const std::string json = object.Finish();
    std::fputs(json.c_str(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool enabled() const noexcept { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace strata::bench
