// Data-plane microbenchmark: cost of moving tuples across one stream hop
// under the three transports — per-tuple mutex queue (the pre-batch plane),
// batched mutex queue (PushAll/PopAll), and the SPSC ring (per-tuple and
// batched) — plus the 4-producer/4-consumer MPMC case the router/union
// plumbing exercises.
//
// Prints a table and appends machine-readable JSON lines (one per scenario)
// to $STRATA_BENCH_JSON (default BENCH_SPE.json) for CI artifacts.
//
// Env knobs: STRATA_BENCH_TUPLES (default 1000000), STRATA_BENCH_BATCH
// (default 64), STRATA_BENCH_CAPACITY (default 1024).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/queue.hpp"
#include "common/spsc_ring.hpp"
#include "spe/batch.hpp"
#include "spe/tuple.hpp"

using namespace strata;         // NOLINT
using namespace strata::bench;  // NOLINT

namespace {

int EnvCount(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

spe::Tuple MakeTuple(std::size_t i) {
  spe::Tuple t;
  t.event_time = static_cast<Timestamp>(i);
  t.layer = static_cast<std::int64_t>(i);
  return t;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Scenario {
  std::string name;
  int producers = 1;
  int consumers = 1;
  std::size_t batch = 1;  // 1 = per-tuple API
  double tuples_per_sec = 0;
};

// ---- single-producer/single-consumer over the SPSC ring ----

double RunSpsc(std::size_t tuples, std::size_t batch, std::size_t capacity) {
  SpscRing<spe::Tuple> ring(capacity);
  const auto start = std::chrono::steady_clock::now();
  std::thread producer([&] {
    if (batch <= 1) {
      for (std::size_t i = 0; i < tuples; ++i) {
        if (!ring.Push(MakeTuple(i)).ok()) break;
      }
    } else {
      spe::TupleBatch chunk;
      chunk.reserve(batch);
      for (std::size_t i = 0; i < tuples; ++i) {
        chunk.push_back(MakeTuple(i));
        if (chunk.size() == batch) {
          if (!ring.PushAll(&chunk).ok()) break;
          chunk.clear();
        }
      }
      if (!chunk.empty()) (void)ring.PushAll(&chunk);
    }
    ring.Close();
  });
  std::size_t consumed = 0;
  if (batch <= 1) {
    while (ring.Pop().has_value()) ++consumed;
  } else {
    spe::TupleBatch drained;
    while (ring.PopAll(&drained)) {
      consumed += drained.size();
      drained.clear();
    }
  }
  producer.join();
  const double seconds = SecondsSince(start);
  if (consumed != tuples) {
    std::fprintf(stderr, "spsc scenario lost tuples: %zu != %zu\n", consumed,
                 tuples);
    std::exit(1);
  }
  return seconds;
}

// ---- M producers / N consumers over the mutex queue ----

double RunMpmc(std::size_t tuples, std::size_t batch, std::size_t capacity,
               int producers, int consumers) {
  BlockingQueue<spe::Tuple> queue(capacity);
  std::atomic<std::size_t> consumed{0};
  const std::size_t per_producer = tuples / static_cast<std::size_t>(producers);
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  std::atomic<int> live_producers{producers};
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::size_t base = static_cast<std::size_t>(p) * per_producer;
      if (batch <= 1) {
        for (std::size_t i = 0; i < per_producer; ++i) {
          if (!queue.Push(MakeTuple(base + i)).ok()) break;
        }
      } else {
        spe::TupleBatch chunk;
        chunk.reserve(batch);
        for (std::size_t i = 0; i < per_producer; ++i) {
          chunk.push_back(MakeTuple(base + i));
          if (chunk.size() == batch) {
            if (!queue.PushAll(&chunk).ok()) break;
            chunk.clear();
          }
        }
        if (!chunk.empty()) (void)queue.PushAll(&chunk);
      }
      if (live_producers.fetch_sub(1) == 1) queue.Close();
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      std::size_t local = 0;
      if (batch <= 1) {
        while (queue.Pop().has_value()) ++local;
      } else {
        spe::TupleBatch drained;
        while (queue.PopAll(&drained)) {
          local += drained.size();
          drained.clear();
        }
      }
      consumed.fetch_add(local);
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = SecondsSince(start);
  const std::size_t expected =
      per_producer * static_cast<std::size_t>(producers);
  if (consumed.load() != expected) {
    std::fprintf(stderr, "mpmc scenario lost tuples: %zu != %zu\n",
                 consumed.load(), expected);
    std::exit(1);
  }
  return seconds;
}

}  // namespace

int main() {
  const std::size_t tuples =
      static_cast<std::size_t>(EnvCount("STRATA_BENCH_TUPLES", 1000000));
  const std::size_t batch =
      static_cast<std::size_t>(EnvCount("STRATA_BENCH_BATCH", 64));
  const std::size_t capacity =
      static_cast<std::size_t>(EnvCount("STRATA_BENCH_CAPACITY", 1024));

  std::printf(
      "== stream-hop microbenchmark: %zu tuples, batch %zu, capacity %zu ==\n",
      tuples, batch, capacity);
  std::printf("%-24s %10s %10s %14s %10s\n", "scenario", "producers",
              "consumers", "tuples/s", "vs base");

  std::vector<Scenario> scenarios = {
      {"mutex_1p1c_per_tuple", 1, 1, 1},
      {"mutex_1p1c_batched", 1, 1, batch},
      {"spsc_1p1c_per_tuple", 1, 1, 1},
      {"spsc_1p1c_batched", 1, 1, batch},
      {"mutex_4p4c_per_tuple", 4, 4, 1},
      {"mutex_4p4c_batched", 4, 4, batch},
  };

  JsonLinesWriter out("STRATA_BENCH_JSON", "BENCH_SPE.json");
  double baseline = 0;
  for (Scenario& s : scenarios) {
    const bool spsc = s.name.rfind("spsc", 0) == 0;
    const double seconds =
        spsc ? RunSpsc(tuples, s.batch, capacity)
             : RunMpmc(tuples, s.batch, capacity, s.producers, s.consumers);
    // MPMC splits tuples evenly; recompute the actual total moved.
    const std::size_t moved =
        spsc ? tuples
             : (tuples / static_cast<std::size_t>(s.producers)) *
                   static_cast<std::size_t>(s.producers);
    s.tuples_per_sec = static_cast<double>(moved) / seconds;
    if (baseline == 0) baseline = s.tuples_per_sec;
    std::printf("%-24s %10d %10d %14.0f %9.2fx\n", s.name.c_str(),
                s.producers, s.consumers, s.tuples_per_sec,
                s.tuples_per_sec / baseline);
    out.Line(JsonObject()
                 .Str("bench", "bench_queue")
                 .Str("scenario", s.name)
                 .Int("tuples", static_cast<long long>(moved))
                 .Int("batch", static_cast<long long>(s.batch))
                 .Int("capacity", static_cast<long long>(capacity))
                 .Int("producers", s.producers)
                 .Int("consumers", s.consumers)
                 .Num("tuples_per_sec", s.tuples_per_sec));
  }
  if (out.enabled()) {
    std::printf("\nJSON lines appended to %s\n", out.path().c_str());
  }
  return 0;
}
