// Replicated broker cluster demo (DESIGN.md "Replication & failover"): three
// in-process brokers, one topic replicated leader -> followers, a producer
// publishing with acks=quorum, and a mid-run leader kill that the cluster
// absorbs by electing the most-caught-up in-sync follower. The same producer
// and consumer handles ride through the failover: the client library refreshes
// its cached cluster metadata on NotLeader / transport errors and re-routes.
//
//   build/examples/net_replicated [records]
//
// Every record the producer saw acked is read back after the failover — the
// quorum commit rule means an acked record lives on a majority of brokers, so
// losing the leader cannot lose it.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/remote.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "pubsub/broker.hpp"
#include "repl/manager.hpp"

using namespace strata;  // NOLINT
using namespace std::chrono_literals;

namespace {

constexpr int kBrokers = 3;

struct Node {
  std::unique_ptr<ps::Broker> broker;
  std::unique_ptr<repl::ReplicationManager> manager;
  std::unique_ptr<net::BrokerServer> server;
  bool up = false;
};

struct Cluster {
  std::vector<repl::BrokerEndpoint> endpoints;
  std::vector<Node> nodes;

  void StartNode(int i) {
    Node& node = nodes[static_cast<std::size_t>(i)];
    node.broker = std::make_unique<ps::Broker>();
    repl::ReplicaOptions repl;
    repl.self = endpoints[static_cast<std::size_t>(i)];
    repl.brokers = endpoints;
    repl.fetch_interval = 1ms;
    repl.leader_timeout = 200ms;
    repl.isr_timeout = 150ms;
    net::BrokerServerOptions server;
    server.host = "127.0.0.1";
    server.port = endpoints[static_cast<std::size_t>(i)].port;
    node.manager =
        std::make_unique<repl::ReplicationManager>(node.broker.get(), repl);
    server.repl = node.manager.get();
    server.quorum_ack_timeout = 2s;
    node.server =
        std::make_unique<net::BrokerServer>(node.broker.get(), server);
    node.server->Start().OrDie();
    node.manager->Start().OrDie();
    node.up = true;
  }

  void StopNode(int i) {
    Node& node = nodes[static_cast<std::size_t>(i)];
    if (!node.up) return;
    node.up = false;
    node.manager->Stop();
    node.server->Stop();
    node.broker->Close();
  }

  int LeaderOf(const std::string& topic) {
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
      const Node& node = nodes[static_cast<std::size_t>(i)];
      if (node.up && node.manager->IsLeader(topic)) return i;
    }
    return -1;
  }
};

void PrintView(Cluster& cluster, const char* when) {
  const int leader = cluster.LeaderOf("events");
  if (leader < 0) {
    std::printf("[%s] no leader\n", when);
    return;
  }
  const auto view = cluster.nodes[static_cast<std::size_t>(leader)]
                        .manager->View("events");
  if (!view.ok()) return;
  std::string isr;
  for (const std::uint32_t id : view->isr) {
    isr += (isr.empty() ? "" : ",") + std::to_string(id);
  }
  std::printf("[%s] leader=broker%u epoch=%llu isr={%s} log_end=%lld hw=%lld\n",
              when, view->leader,
              static_cast<unsigned long long>(view->epoch), isr.c_str(),
              static_cast<long long>(view->partitions[0].log_end),
              static_cast<long long>(view->partitions[0].high_watermark));
}

}  // namespace

int main(int argc, char** argv) {
  const int records = argc > 1 ? std::atoi(argv[1]) : 20;
  const int pre_kill = records / 2;

  // Reserve three localhost ports, then bring up broker + replication
  // manager + server on each (every manager needs the full peer list).
  Cluster cluster;
  {
    std::vector<net::ListenSocket> probes;
    for (int i = 0; i < kBrokers; ++i) {
      auto probe = net::ListenSocket::Listen("127.0.0.1", 0);
      probe.status().OrDie();
      cluster.endpoints.push_back(repl::BrokerEndpoint{
          static_cast<std::uint32_t>(i + 1), "127.0.0.1", probe->port()});
      probes.push_back(std::move(*probe));
    }
  }
  cluster.nodes.resize(kBrokers);
  for (int i = 0; i < kBrokers; ++i) cluster.StartNode(i);
  for (Node& node : cluster.nodes) {
    node.manager->AddTopic("events", ps::TopicConfig{1}, /*leader=*/1).OrDie();
  }
  std::printf("three brokers up on ports %u %u %u, topic \"events\" led by "
              "broker 1\n",
              cluster.endpoints[0].port, cluster.endpoints[1].port,
              cluster.endpoints[2].port);

  // One producer and one consumer, both configured with the full bootstrap
  // list and quorum acks; both survive the leader kill below.
  net::RemoteOptions remote;
  for (const repl::BrokerEndpoint& endpoint : cluster.endpoints) {
    remote.bootstrap.emplace_back(endpoint.host, endpoint.port);
  }
  remote.acks = net::ProduceAcks::kQuorum;
  remote.request_timeout = 4s;
  remote.max_retries = 2;
  remote.cluster_refresh_rounds = 12;
  remote.cluster_refresh_backoff = 50ms;
  net::RemoteProducer producer(remote);
  auto consumer = net::RemoteConsumer::Create(remote, "events");
  consumer.status().OrDie();

  for (int i = 0; i < pre_kill; ++i) {
    producer.Send("events", "k", "r" + std::to_string(i), 0).status().OrDie();
  }
  std::printf("produced %d records with acks=quorum\n", pre_kill);
  PrintView(cluster, "before kill");

  const int old_leader = cluster.LeaderOf("events");
  std::printf("stopping leader broker %d...\n", old_leader + 1);
  cluster.StopNode(old_leader);

  // The survivors detect the dead leader via missed heartbeats and promote
  // the most-caught-up in-sync follower; the producer's next sends re-route.
  for (int i = pre_kill; i < records; ++i) {
    const auto deadline = std::chrono::steady_clock::now() + 15s;
    while (true) {
      auto sent = producer.Send("events", "k", "r" + std::to_string(i), 0);
      if (sent.ok()) break;
      if (std::chrono::steady_clock::now() > deadline) {
        std::printf("FAILED: produce never recovered: %s\n",
                    sent.status().ToString().c_str());
        return 1;
      }
      std::this_thread::sleep_for(20ms);
    }
  }
  std::printf("produced %d more records through the failover\n",
              records - pre_kill);
  PrintView(cluster, "after failover");

  // Drain with the original consumer handle: every acked record must come
  // back, in order, despite the leader change mid-stream.
  std::vector<std::string> seen;
  const auto drain_deadline = std::chrono::steady_clock::now() + 15s;
  while (static_cast<int>(seen.size()) < records &&
         std::chrono::steady_clock::now() < drain_deadline) {
    auto polled = (*consumer)->Poll(500ms);
    if (!polled.ok()) continue;
    for (const ps::ConsumedRecord& record : *polled) {
      seen.push_back(record.value);
    }
  }
  bool ordered = static_cast<int>(seen.size()) == records;
  for (int i = 0; ordered && i < records; ++i) {
    ordered = seen[static_cast<std::size_t>(i)] == "r" + std::to_string(i);
  }
  std::printf("consumer drained %zu/%d records, order %s\n", seen.size(),
              records, ordered ? "intact" : "BROKEN");

  for (int i = 0; i < kBrokers; ++i) cluster.StopNode(i);
  if (!ordered) {
    std::printf("MISMATCH\n");
    return 1;
  }
  std::printf("OK: no acked record lost across the leader kill\n");
  return 0;
}
