// The paper's full use-case (§5, Algorithm 1): detect specimen portions
// melted with too-low / too-high thermal energy and cluster them with
// DBSCAN within and across layers.
//
// Simulates an EOS M290-class job (12 specimens of 25x50 mm), computes
// thermal thresholds from a defect-free historical job into the KV store,
// runs the pipeline, prints per-layer defect reports, and writes
// Figure-4-style images (OT frame + cluster overlay) as PGM files.
//
//   build/examples/usecase_thermal [output_dir]
#include <cstdio>
#include <mutex>

#include "strata/usecase.hpp"

using namespace strata;          // NOLINT
using namespace strata::core;    // NOLINT

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "usecase_out";
  strata::fs::CreateDirs(out_dir).OrDie();

  // The machine: paper geometry at 1000x1000 px OT resolution (4 px/mm;
  // the real sensor's 2000x2000 also works, just slower to simulate).
  am::MachineParams machine_params;
  machine_params.job = am::MakePaperJob(/*job_id=*/1, /*image_px=*/1000);
  machine_params.layers_limit = 60;
  machine_params.defects.birth_rate = 0.03;
  machine_params.defects.mean_intensity_delta = 45.0;

  UseCaseParams params;
  params.machine_id = "eos-m290";
  params.cell_px = 10;             // 2.5 mm cells
  params.correlate_layers = 20;    // L
  params.partition_parallelism = 2;
  params.detect_parallelism = 2;
  params.render_cluster_images = true;

  Strata strata_rt;
  std::printf("computing thermal thresholds from historical job...\n");
  ComputeAndStoreThresholds(&strata_rt, params.machine_id, machine_params.job,
                            /*history_layers=*/5, params.cell_px)
      .OrDie();

  auto machine = std::make_shared<am::MachineSimulator>(machine_params);

  std::mutex mu;
  std::size_t rendered = 0;
  std::size_t reports = 0;
  std::vector<ClusterReport> all_reports;
  auto* sink = BuildThermalPipeline(
      &strata_rt, machine,
      CollectorPacing{.mode = CollectorPacing::Mode::kLive,
                      .time_scale = 0.002},  // 500x compressed clock
      params, [&](const ClusterReport& report) {
        std::lock_guard lock(mu);
        ++reports;
        all_reports.push_back(report);
        if (!report.clusters.empty()) {
          std::printf(
              "layer %3lld specimen %2lld: %zu defect cluster(s), "
              "largest %zu cells spanning %lld layers\n",
              static_cast<long long>(report.layer),
              static_cast<long long>(report.specimen),
              report.clusters.size(), report.clusters[0].point_count,
              static_cast<long long>(report.clusters[0].layer_span()));
        }
        if (report.rendering && rendered < 8) {
          const auto path =
              out_dir / ("clusters_l" + std::to_string(report.layer) + "_s" +
                         std::to_string(report.specimen) + ".pgm");
          if (report.rendering->SavePgm(path).ok()) ++rendered;
        }
      });

  // Dump the deployed DAG for inspection (GraphViz).
  strata::fs::WriteFile(out_dir / "pipeline.dot", strata_rt.query().ToDot())
      .OrDie();

  std::printf("printing %d layers x %zu specimens...\n",
              machine->total_layers(), machine_params.job.specimens.size());
  // Periodic observability: one status line per second from the metrics
  // registry (cells processed so far, back-pressure, consumer lag).
  strata_rt.StartSampler(
      std::chrono::seconds(1), [](const obs::MetricsSnapshot& snap) {
        std::printf(
            "  [metrics] cells=%.0f events=%.0f reports=%.0f "
            "blocked=%.0fms lag=%.0f\n",
            snap.Sum("spe.operator.tuples_out", "op", "cell.",
                     {{"kind", "flatmap"}}),
            snap.Sum("spe.operator.tuples_out", "op", "label.",
                     {{"kind", "flatmap"}}),
            snap.Sum("spe.operator.tuples_in", "op", "expert.",
                     {{"kind", "sink"}}),
            snap.Sum("spe.stream.blocked_us", "stream", "") / 1000.0,
            snap.Sum("pubsub.group.lag", "group", ""));
      });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  strata_rt.StopSampler();

  // Figure 4 companion: the raw OT frame of one layer.
  am::OtImageGenerator generator(machine_params.job, &machine->seeder());
  generator.GenerateLayer(30).SavePgm(out_dir / "ot_layer30.pgm").OrDie();

  const auto latency = sink->LatencySnapshot();
  std::printf(
      "\n%zu reports; latency p50=%.1f ms p95=%.1f ms max=%.1f ms "
      "(QoS budget 3000 ms)\n",
      reports, MicrosToMillis(latency.Quantile(0.5)),
      MicrosToMillis(latency.Quantile(0.95)), MicrosToMillis(latency.max()));
  std::printf("images written to %s\n", out_dir.c_str());

  // Full end-of-run metrics dump (all layers: SPE, broker, kvstore).
  strata::fs::WriteFile(out_dir / "metrics.txt", strata_rt.DumpMetrics())
      .OrDie();
  std::printf("metrics written to %s\n", (out_dir / "metrics.txt").c_str());

  // XCT preview: which embedded cylinders accumulated defect clusters (to
  // be confirmed by X-ray tomography after the build, paper §5).
  const auto xct = SummarizeDefectsPerCylinder(all_reports,
                                               machine_params.job);
  if (!xct.empty()) {
    std::printf("\nXCT cylinders with in-situ defect observations:\n");
    for (const XctCylinderSummary& entry : xct) {
      std::printf("  specimen %2lld cylinder %d: %zu observation(s), "
                  "weight %.1f\n",
                  static_cast<long long>(entry.specimen), entry.cylinder,
                  entry.cluster_observations, entry.total_weight);
    }
  }
  return 0;
}
