// A manufacturing facility: several PBF-LB machines monitored in parallel
// by one STRATA deployment (the paper's §3 requirement 3 and the Figure 7
// motivation: "processing data from many PBF-LB machines in parallel").
//
// Each machine runs its own Algorithm-1 pipeline; all share the broker, the
// key-value store, and the SPE. Prints a per-machine QoS report.
//
//   build/examples/multi_machine [num_machines] [layers]
#include <cstdio>
#include <mutex>

#include "strata/usecase.hpp"

using namespace strata;        // NOLINT
using namespace strata::core;  // NOLINT

int main(int argc, char** argv) {
  const int machines = argc > 1 ? std::atoi(argv[1]) : 3;
  const int layers = argc > 2 ? std::atoi(argv[2]) : 40;

  Strata strata_rt;
  std::mutex mu;
  struct PerMachine {
    std::size_t reports = 0;
    std::size_t clusters = 0;
    spe::SinkOperator* sink = nullptr;
  };
  std::vector<PerMachine> stats(static_cast<std::size_t>(machines));

  for (int m = 0; m < machines; ++m) {
    UseCaseParams params;
    params.machine_id = "machine-" + std::to_string(m);
    params.cell_px = 8;
    params.correlate_layers = 15;

    am::MachineParams machine_params;
    machine_params.job = am::MakeSmallJob(/*job_id=*/m + 1,
                                          /*image_px=*/500, /*specimens=*/4);
    machine_params.layers_limit = layers;
    machine_params.defects.birth_rate = 0.05;
    // Each machine's defect draw differs (job id seeds the model).

    ComputeAndStoreThresholds(&strata_rt, params.machine_id,
                              machine_params.job, /*history_layers=*/3,
                              params.cell_px)
        .OrDie();

    auto machine = std::make_shared<am::MachineSimulator>(machine_params);
    auto& slot = stats[static_cast<std::size_t>(m)];
    slot.sink = BuildThermalPipeline(
        &strata_rt, machine,
        CollectorPacing{.mode = CollectorPacing::Mode::kLive,
                        .time_scale = 0.003},
        params, [&mu, &slot](const ClusterReport& report) {
          std::lock_guard lock(mu);
          ++slot.reports;
          slot.clusters += report.clusters.size();
        });
  }

  std::printf("monitoring %d machines x %d layers...\n", machines, layers);
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();

  std::printf("\n%-12s %10s %10s %12s %12s %8s\n", "machine", "reports",
              "clusters", "p50 (ms)", "p95 (ms)", "QoS ok");
  for (int m = 0; m < machines; ++m) {
    const auto& slot = stats[static_cast<std::size_t>(m)];
    const Histogram latency = slot.sink->LatencySnapshot();
    const bool qos_ok = latency.max() < SecondsToMicros(3.0);
    std::printf("%-12s %10zu %10zu %12.1f %12.1f %8s\n",
                ("machine-" + std::to_string(m)).c_str(), slot.reports,
                slot.clusters, MicrosToMillis(latency.Quantile(0.5)),
                MicrosToMillis(latency.Quantile(0.95)),
                qos_ok ? "yes" : "NO");
  }

  // Shared-substrate view: per-topic volumes and residual consumer lag show
  // how the one broker served every machine's connectors.
  const obs::MetricsSnapshot snap = strata_rt.MetricsSnapshot();
  std::printf("\nbroker: produced=%.0f records across %.0f topics, "
              "residual lag=%.0f\n",
              snap.Sum("pubsub.topic.produced", "topic", ""),
              snap.Value("pubsub.broker.topics").value_or(0.0),
              snap.Sum("pubsub.group.lag", "group", ""));
  std::printf("kvstore: %.0f gets (%.0f bloom-skipped table probes)\n",
              snap.Value("kv.gets").value_or(0.0),
              snap.Value("kv.bloom_skips").value_or(0.0));
  return 0;
}
