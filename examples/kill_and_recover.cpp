// Kill-and-recover walkthrough: checkpointed queries survive kill -9.
//
// Phase 1 forks a child that runs a monitoring pipeline with epoch-barrier
// checkpointing over a persistent data dir, then SIGKILLs it mid-build —
// no destructors, no flushing, exactly what a host crash looks like.
// Phase 2 rebuilds the same pipeline over the same directory: Deploy()
// restores the latest complete checkpoint, seeks the broker-backed
// connectors back to their replay cursors, and the build resumes from the
// checkpointed layer instead of layer zero.
//
// The replayed stretch is delivered at-least-once; the DeliverDurable sink
// writes each report under a deterministic key exactly once, so the final
// report set is identical to an uninterrupted run — effectively once.
// The demo exits non-zero if any report is missing or duplicated.
//
//   build/examples/kill_and_recover [layers]   (default 200)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "common/codec.hpp"
#include "common/fs.hpp"
#include "strata/strata.hpp"

using strata::Status;
using strata::core::Strata;
using strata::core::StrataOptions;
using strata::spe::Tuple;

namespace {

/// The pipeline both phases deploy. Every 10th layer trips a detection;
/// reports land durably under reports/<layer>. The generator's position is
/// its checkpoint state: snapshot/restore it and a recovered run resumes
/// mid-build.
void BuildPipeline(Strata* strata, int layers, int layer_ms) {
  auto position = std::make_shared<std::int64_t>(0);
  auto stream = strata->AddSource(
      "gen", [position, layers, layer_ms]() -> std::optional<Tuple> {
        if (*position >= layers) return std::nullopt;
        std::this_thread::sleep_for(std::chrono::milliseconds(layer_ms));
        Tuple t;
        t.job = 1;
        t.layer = (*position)++;
        t.event_time = t.layer + 1;
        t.stimulus = t.layer + 1;  // deterministic, not wall-clock
        t.payload.Set("temp", 180.0 + static_cast<double>(t.layer % 10));
        return t;
      });
  auto events = strata->DetectEvent(
      "overheat", std::move(stream), [](const Tuple& t) -> std::vector<Tuple> {
        if (t.layer % 10 != 0) return {};
        Tuple event;
        event.payload.Set("temp", t.payload.Get("temp"));
        return {event};
      });
  strata->DeliverDurable("expert", std::move(events), "reports/",
                         [](const Tuple& t) {
                           return std::to_string(t.layer);
                         });
  strata->query().FindOperator("gen")->SetStateHooks(
      [position](std::uint64_t, std::string* out) {
        strata::codec::PutVarint64(out, static_cast<std::uint64_t>(*position));
        return Status::Ok();
      },
      [position](std::string_view blob) {
        std::uint64_t value = 0;
        if (!strata::codec::GetVarint64(&blob, &value)) {
          return Status::Corruption("gen snapshot");
        }
        *position = static_cast<std::int64_t>(value);
        return Status::Ok();
      });
}

StrataOptions Options(const std::filesystem::path& dir) {
  StrataOptions options;
  options.data_dir = dir;             // checkpoints + topics live here...
  options.persistent_connectors = true;  // ...and survive the process
  options.checkpoint_interval_ms = 100;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const int layers = argc > 1 ? std::atoi(argv[1]) : 200;
  const int layer_ms = 5;
  strata::fs::ScopedTempDir dir("kill-and-recover");

  // ---- phase 1: run in a child, kill -9 it mid-build --------------------
  const pid_t pid = ::fork();
  if (pid == 0) {
    Strata strata(Options(dir.path()));
    BuildPipeline(&strata, layers, layer_ms);
    strata.Deploy();
    strata.WaitForCompletion();
    strata.Shutdown();
    std::_Exit(0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(layers * layer_ms / 2));
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) {
    std::printf("phase 1: killed the query process mid-build (SIGKILL)\n");
  } else {
    std::printf("phase 1: build finished before the kill landed\n");
  }

  // ---- phase 2: same directory, same pipeline, fresh process state ------
  {
    Strata strata(Options(dir.path()));
    BuildPipeline(&strata, layers, layer_ms);
    strata.Deploy();  // restores the checkpoint before starting
    std::printf("phase 2: recovered epoch %llu, resuming the build\n",
                static_cast<unsigned long long>(strata.query().recovered_epoch()));
    strata.WaitForCompletion();
    strata.Shutdown();

    const auto reports = strata.GetByPrefix("reports/");
    reports.status().OrDie();
    std::size_t duplicates = 0;
    for (const auto& sample : strata.MetricsSnapshot().samples) {
      if (sample.name == "strata.deliver_durable.duplicates") {
        duplicates = static_cast<std::size_t>(sample.value);
      }
    }
    const std::size_t expected = static_cast<std::size_t>((layers + 9) / 10);
    std::printf(
        "phase 2: %zu reports (expected %zu), %zu replayed duplicates "
        "suppressed by the durable sink\n",
        reports->size(), expected, duplicates);
    if (reports->size() != expected) {
      std::printf("FAIL: report set does not match an uninterrupted run\n");
      return 1;
    }
  }
  std::printf("OK: kill -9 lost nothing and duplicated nothing\n");
  return 0;
}
