// Quickstart: the smallest useful STRATA pipeline.
//
// A synthetic per-layer temperature source flows through the Raw Data
// Connector; detectEvent flags out-of-band layers against a threshold
// stored in the key-value store; results reach the expert callback.
//
//   build/examples/quickstart
#include <cstdio>

#include "strata/strata.hpp"

using strata::core::Strata;
using strata::spe::Tuple;

int main() {
  Strata strata;

  // Data at rest: a threshold computed from "previous jobs".
  strata.Store("max_temp", "200.0").OrDie();

  // A collector producing one tuple per layer with a synthetic temperature.
  auto next_layer = std::make_shared<int>(0);
  auto source = strata.AddSource(
      "thermo", [next_layer]() -> std::optional<Tuple> {
        if (*next_layer >= 50) return std::nullopt;
        Tuple t;
        t.job = 1;
        t.layer = (*next_layer)++;
        t.event_time = (t.layer + 1) * 1'000'000;
        // Layers 20-24 run hot.
        t.payload.Set("temp",
                      180.0 + (t.layer >= 20 && t.layer < 25 ? 40.0 : 0.0));
        return t;
      });

  // detectEvent: compare each layer against the stored threshold.
  const double max_temp = std::stod(strata.Get("max_temp").value());
  auto events = strata.DetectEvent(
      "overheat", source,
      [max_temp](const Tuple& t) -> std::vector<Tuple> {
        if (t.payload.Get("temp").AsDouble() <= max_temp) return {};
        Tuple event;
        event.payload.Set("temp", t.payload.Get("temp"));
        return {event};
      });

  // Deliver to the expert.
  auto* sink = strata.Deliver("expert", events, [](const Tuple& t) {
    std::printf("layer %3lld OVERHEATED: %.1f C\n",
                static_cast<long long>(t.layer),
                t.payload.Get("temp").AsDouble());
  });

  strata.Deploy();
  strata.WaitForCompletion();

  const auto latency = sink->LatencySnapshot();
  std::printf("\ndelivered %llu events, p50 latency %.2f ms\n",
              static_cast<unsigned long long>(latency.count()),
              strata::MicrosToMillis(latency.Quantile(0.5)));
  return 0;
}
