// Quickstart: the smallest useful STRATA pipeline.
//
// A synthetic per-layer temperature source flows through the Raw Data
// Connector; detectEvent flags out-of-band layers against a threshold
// stored in the key-value store; results reach the expert callback.
//
//   build/examples/quickstart
//
// Env knobs (useful for scraping the admin endpoint while it runs):
//   STRATA_ADMIN_ADDR=127.0.0.1:9464   serve /metrics, /healthz, /tracez
//   STRATA_QUICKSTART_LAYERS=50        build length
//   STRATA_QUICKSTART_PERIOD_MS=0     per-layer pacing (0 = as fast as
//                                      possible; set ~100 to keep the
//                                      pipeline alive long enough to curl)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "strata/strata.hpp"

using strata::core::Strata;
using strata::spe::Tuple;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  const int layers = EnvInt("STRATA_QUICKSTART_LAYERS", 50);
  const int period_ms = EnvInt("STRATA_QUICKSTART_PERIOD_MS", 0);
  Strata strata;

  // Data at rest: a threshold computed from "previous jobs".
  strata.Store("max_temp", "200.0").OrDie();

  // A collector producing one tuple per layer with a synthetic temperature.
  auto next_layer = std::make_shared<int>(0);
  auto source = strata.AddSource(
      "thermo", [next_layer, layers, period_ms]() -> std::optional<Tuple> {
        if (*next_layer >= layers) return std::nullopt;
        if (period_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(period_ms));
        }
        Tuple t;
        t.job = 1;
        t.layer = (*next_layer)++;
        t.event_time = (t.layer + 1) * 1'000'000;
        // Layers 20-24 run hot.
        t.payload.Set("temp",
                      180.0 + (t.layer >= 20 && t.layer < 25 ? 40.0 : 0.0));
        return t;
      });

  // detectEvent: compare each layer against the stored threshold.
  const double max_temp = std::stod(strata.Get("max_temp").value());
  auto events = strata.DetectEvent(
      "overheat", source,
      [max_temp](const Tuple& t) -> std::vector<Tuple> {
        if (t.payload.Get("temp").AsDouble() <= max_temp) return {};
        Tuple event;
        event.payload.Set("temp", t.payload.Get("temp"));
        return {event};
      });

  // Deliver to the expert.
  auto* sink = strata.Deliver("expert", events, [](const Tuple& t) {
    std::printf("layer %3lld OVERHEATED: %.1f C\n",
                static_cast<long long>(t.layer),
                t.payload.Get("temp").AsDouble());
  });

  strata.Deploy();
  if (const std::string admin = strata.admin_addr(); !admin.empty()) {
    std::printf("admin endpoint: http://%s  (/metrics /healthz /tracez /varz)\n",
                admin.c_str());
  }
  strata.WaitForCompletion();

  const auto latency = sink->LatencySnapshot();
  std::printf("\ndelivered %llu events, p50 latency %.2f ms\n",
              static_cast<unsigned long long>(latency.count()),
              strata::MicrosToMillis(latency.Quantile(0.5)));
  return 0;
}
