// Historical data: persistent connectors let finished jobs be re-analyzed.
//
// Phase 1 prints a job with persistent broker topics (raw OT frames are
// retained on disk, like a compacted Kafka topic). Phase 2 re-opens the same
// data directory, replays the raw topic from offset 0 into an ad-hoc
// analysis (recomputing thermal statistics per layer), and refreshes the
// thresholds in the key-value store — the paper's "information from past
// jobs maintained and later shared with other jobs".
//
//   build/examples/historical_replay [layers]
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

#include "am/history.hpp"
#include "strata/collectors.hpp"
#include "strata/strata.hpp"

using namespace strata;        // NOLINT
using namespace strata::core;  // NOLINT

int main(int argc, char** argv) {
  const int layers = argc > 1 ? std::atoi(argv[1]) : 25;
  strata::fs::ScopedTempDir dir("historical-replay");

  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, /*image_px=*/400, /*specimens=*/2);
  machine_params.layers_limit = layers;
  machine_params.defects.birth_rate = 0.05;

  // ---- Phase 1: live job with persistent connectors ----
  {
    StrataOptions options;
    options.data_dir = dir.path();
    options.persistent_connectors = true;
    Strata strata_rt(options);

    auto machine = std::make_shared<am::MachineSimulator>(machine_params);
    auto ot = strata_rt.AddSource(
        "ot", OtImageCollector(
                  machine, CollectorPacing{
                               .mode = CollectorPacing::Mode::kReplay}));
    std::size_t frames = 0;
    strata_rt.Deliver("archive", ot,
                      [&frames](const spe::Tuple&) { ++frames; });
    strata_rt.Deploy();
    strata_rt.WaitForCompletion();
    std::printf("phase 1: archived %zu OT frames to %s\n", frames,
                dir.path().c_str());
  }

  // ---- Phase 2: reopen and replay the archived topic ----
  {
    StrataOptions options;
    options.data_dir = dir.path();
    options.persistent_connectors = true;
    Strata strata_rt(options);
    // Re-declare the topic so the broker reloads its segments.
    strata_rt.broker().CreateTopic("raw.ot", {.partitions = 1}).OrDie();

    auto subscriber = std::move(ConnectorSubscriber::Create(
                                    &strata_rt.broker(), "raw.ot",
                                    "replay-analysis"))
                          .value();
    auto replayed = strata_rt.query().AddSource("replay",
                                                subscriber->AsSourceFn());
    // Ad-hoc analysis: per-layer mean intensity of each frame.
    std::mutex mu;
    std::vector<double> layer_means;
    strata_rt.Deliver("stats", replayed, [&](const spe::Tuple& t) {
      const auto image =
          t.payload.Get(kOtImageKey).AsOpaque<am::ImageValue>();
      std::lock_guard lock(mu);
      layer_means.push_back(image->image().RegionMean(
          0, 0, image->image().width(), image->image().height()));
    });
    strata_rt.Deploy();
    strata_rt.WaitForCompletion();

    std::printf("phase 2: replayed %zu frames from the archive\n",
                layer_means.size());
    if (!layer_means.empty()) {
      std::vector<double> sorted = layer_means;
      std::sort(sorted.begin(), sorted.end());
      const double p05 = sorted[sorted.size() / 20];
      const double p95 = sorted[sorted.size() * 19 / 20];
      am::ThermalThresholds thresholds{p05 * 0.98, p05, p95, p95 * 1.02};
      strata_rt
          .Store(am::ThresholdKey("replayed-machine"), thresholds.Serialize())
          .OrDie();
      std::printf(
          "updated thresholds from history: very_cold=%.1f very_warm=%.1f\n",
          thresholds.very_cold, thresholds.very_warm);
    }
  }
  return 0;
}
