// Recoater-streak monitoring: the second use-case built from the same
// Table-1 API. A machine with a damaged recoater blade produces persistent
// line defects; the pipeline confirms a streak once it spans >= 3 layers
// and reports its position so the operator can service the blade.
//
//   build/examples/streak_monitor [layers]
#include <cstdio>
#include <mutex>

#include "strata/usecase_streak.hpp"

using namespace strata;        // NOLINT
using namespace strata::core;  // NOLINT

int main(int argc, char** argv) {
  const int layers = argc > 1 ? std::atoi(argv[1]) : 50;

  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, /*image_px=*/500, /*specimens=*/3);
  machine_params.layers_limit = layers;
  machine_params.defects.birth_rate = 0.02;  // some thermal noise too
  am::StreakModelParams streak_model;
  streak_model.rate_per_layer = 0.08;
  streak_model.mean_span_layers = 10;
  streak_model.mean_intensity_drop = 28.0;
  machine_params.streaks = streak_model;

  // Streak positions are random across the plate; pick a job whose blade
  // damage actually crosses a specimen within the printed window (a facility
  // monitors many jobs; this example shows an affected one).
  auto crosses_specimen = [&](const am::MachineSimulator& machine) {
    for (const am::Streak& streak : machine.streak_seeder()->streaks()) {
      if (streak.start_layer + 2 >= layers) continue;
      for (const am::SpecimenSpec& s : machine.job().specimens) {
        if (streak.x_mm > s.x_mm && streak.x_mm < s.x_mm + s.width_mm) {
          return true;
        }
      }
    }
    return false;
  };
  std::shared_ptr<am::MachineSimulator> machine;
  for (std::int64_t job_id = 1; job_id <= 50; ++job_id) {
    machine_params.job.job_id = job_id;
    machine = std::make_shared<am::MachineSimulator>(machine_params);
    if (crosses_specimen(*machine)) break;
  }
  std::printf("job %lld: %zu streak(s) seeded\n",
              static_cast<long long>(machine->job().job_id),
              machine->streak_seeder()->streaks().size());

  Strata strata_rt;
  StreakUseCaseParams params;
  params.column_drop = 12.0;
  params.min_span_layers = 3;

  std::mutex mu;
  std::size_t confirmations = 0;
  auto* sink = BuildStreakPipeline(
      &strata_rt, machine,
      CollectorPacing{.mode = CollectorPacing::Mode::kLive,
                      .time_scale = 0.002},
      params, [&](const ClusterReport& report) {
        std::lock_guard lock(mu);
        ++confirmations;
        for (const auto& cluster : report.clusters) {
          std::printf(
              "layer %3lld specimen %lld: streak at x=%.1f mm "
              "(spanning layers %lld-%lld)\n",
              static_cast<long long>(report.layer),
              static_cast<long long>(report.specimen), cluster.centroid_x,
              static_cast<long long>(cluster.min_layer),
              static_cast<long long>(cluster.max_layer));
        }
      });

  strata_rt.Deploy();
  strata_rt.WaitForCompletion();

  const auto latency = sink->LatencySnapshot();
  std::printf("\n%zu streak confirmations; latency p95 = %.1f ms\n",
              confirmations, MicrosToMillis(latency.Quantile(0.95)));
  return 0;
}
