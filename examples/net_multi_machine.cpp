// Networked deployment topology (DESIGN.md "Deployment topologies"): the
// Algorithm-1 thermal pipeline split into two OS processes joined only by a
// TCP broker.
//
//   parent process: ps::Broker + net::BrokerServer, plus the analysis half
//                   (ImportSource -> fuse -> partition -> detect ->
//                    correlate -> deliver)
//   child process:  the machine-side collector half (ExportSource of the
//                   printing-parameter and OT-image streams), re-executing
//                   this binary with --collector
//
// The same job also runs fully embedded first; the example then checks the
// networked deployment delivered the *identical* per-(layer, specimen)
// cluster reports — the transport must not change the analysis.
//
//   build/examples/net_multi_machine [layers]
//
// Tracing: with STRATA_TRACE_SAMPLE=1 STRATA_TRACE_OUT=/tmp/strata_trace
// each process writes its sampled spans to <out>.<role>.json (Chrome
// trace-event format; merge the traceEvents arrays to see one build across
// both processes), and the analysis side prints how many layers — SPE
// operators, pub/sub connectors, net frames, KV store — the deepest trace
// crossed. The child inherits the env, so one command traces both halves.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "net/server.hpp"
#include "obs/trace.hpp"
#include "strata/usecase.hpp"

using namespace strata;        // NOLINT
using namespace strata::core;  // NOLINT

namespace {

constexpr int kJobId = 7;
constexpr int kImagePx = 400;
constexpr int kSpecimens = 3;

am::MachineParams MachineParamsFor(int layers) {
  am::MachineParams params;
  params.job = am::MakeSmallJob(kJobId, kImagePx, kSpecimens);
  params.layers_limit = layers;
  params.defects.birth_rate = 0.08;
  params.defects.mean_intensity_delta = 55.0;
  return params;
}

UseCaseParams AnalysisParamsFor() {
  UseCaseParams params;
  params.machine_id = "net-demo";
  params.cell_px = 8;
  params.correlate_layers = 10;
  return params;
}

/// (layer, specimen) -> (window events, clusters): the comparison key.
using Fingerprint =
    std::map<std::pair<std::int64_t, std::int64_t>,
             std::pair<std::size_t, std::size_t>>;

Fingerprint FingerprintOf(const std::vector<ClusterReport>& reports) {
  Fingerprint fp;
  for (const ClusterReport& r : reports) {
    fp[{r.layer, r.specimen}] = {r.window_events, r.clusters.size()};
  }
  return fp;
}

/// When STRATA_TRACE_OUT is set, dumps this process's sampled spans to
/// `<out>.<role>.json` as a Chrome trace and returns them for summarising.
std::vector<obs::Span> DumpTrace(const char* role) {
  const char* base = std::getenv("STRATA_TRACE_OUT");
  if (base == nullptr || *base == '\0') return {};
  const std::vector<obs::Span> spans = obs::Tracer::Instance().CollectSpans();
  const std::string path = std::string(base) + "." + role + ".json";
  if (std::FILE* f = std::fopen(path.c_str(), "w"); f != nullptr) {
    const std::string json = obs::Tracer::ToChromeTrace(spans);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("[%s] %zu spans -> %s\n", role, spans.size(), path.c_str());
  }
  return spans;
}

/// Per-trace layer coverage: which of spe / pubsub / net / kv a trace id
/// produced spans in. The analysis process hosts the broker server, so its
/// spans alone cover all four layers for traces born at the collector.
void PrintTraceDepth(const std::vector<obs::Span>& spans) {
  std::map<std::uint64_t, std::set<std::string>> layers_by_trace;
  for (const obs::Span& span : spans) {
    std::string layer = span.category;
    if (const std::size_t dot = layer.find('.'); dot != std::string::npos) {
      layer.resize(dot);
    }
    layers_by_trace[span.trace_id].insert(std::move(layer));
  }
  std::size_t deepest = 0;
  std::uint64_t deepest_id = 0;
  std::size_t full_depth = 0;
  for (const auto& [trace_id, layers] : layers_by_trace) {
    if (layers.size() > deepest) {
      deepest = layers.size();
      deepest_id = trace_id;
    }
    if (layers.size() >= 4) ++full_depth;
  }
  if (deepest_id == 0) return;
  std::string joined;
  for (const std::string& layer : layers_by_trace[deepest_id]) {
    joined += (joined.empty() ? "" : ", ") + layer;
  }
  std::printf("[analysis] deepest trace %llx crossed %zu layers (%s); "
              "%zu traces crossed >= 4\n",
              static_cast<unsigned long long>(deepest_id), deepest,
              joined.c_str(), full_depth);
}

/// Child role: the machine-side process. Publishes the raw pp/ot streams to
/// the broker at `port` and exits when the build ends.
int RunCollector(std::uint16_t port, int layers) {
  StrataOptions options;
  net::RemoteOptions remote;
  remote.port = port;
  options.remote_broker = remote;
  Strata strata_rt(std::move(options));

  auto machine =
      std::make_shared<am::MachineSimulator>(MachineParamsFor(layers));
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  const std::string& id = AnalysisParamsFor().machine_id;
  strata_rt.ExportSource("pp." + id,
                         PrintingParameterCollector(machine, pacing));
  strata_rt.ExportSource("ot." + id, OtImageCollector(machine, pacing));
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  DumpTrace("collector");
  std::printf("[collector pid] build finished, %d layers exported\n", layers);
  return 0;
}

std::vector<ClusterReport> RunEmbedded(int layers) {
  Strata strata_rt;
  const UseCaseParams params = AnalysisParamsFor();
  const am::MachineParams machine_params = MachineParamsFor(layers);
  ComputeAndStoreThresholds(&strata_rt, params.machine_id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);

  std::vector<ClusterReport> reports;
  std::mutex mu;
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  BuildThermalPipeline(&strata_rt, machine, pacing, params,
                       [&](const ClusterReport& report) {
                         std::lock_guard lock(mu);
                         reports.push_back(report);
                       });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  return reports;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--collector") {
    const int port = std::atoi(argv[2]);
    const int layers = argc > 3 ? std::atoi(argv[3]) : 20;
    return RunCollector(static_cast<std::uint16_t>(port), layers);
  }
  const int layers = argc > 1 ? std::atoi(argv[1]) : 20;

  std::printf("pass 1: embedded deployment (%d layers)...\n", layers);
  const std::vector<ClusterReport> embedded = RunEmbedded(layers);
  std::printf("  %zu cluster reports\n", embedded.size());

  std::printf("pass 2: networked deployment (collector process | TCP | "
              "analysis process)...\n");
  ps::Broker broker;
  net::BrokerServer server(&broker);
  server.Start().OrDie();
  std::printf("  broker server on %s:%u\n", server.host().c_str(),
              server.port());

  // The collector half runs as a real child process: this binary, re-executed
  // in its machine-side role against the broker's port.
  const std::string command = std::string(argv[0]) + " --collector " +
                              std::to_string(server.port()) + " " +
                              std::to_string(layers);
  int collector_exit = -1;
  std::thread collector(
      [&] { collector_exit = std::system(command.c_str()); });

  // The analysis half: imports the raw streams from the broker and runs
  // Algorithm-1 L3-L7 on them.
  StrataOptions analysis_options;
  net::RemoteOptions remote;
  remote.port = server.port();
  analysis_options.remote_broker = remote;
  Strata analysis(std::move(analysis_options));
  const UseCaseParams params = AnalysisParamsFor();
  const am::MachineParams machine_params = MachineParamsFor(layers);
  ComputeAndStoreThresholds(&analysis, params.machine_id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();

  std::vector<ClusterReport> networked;
  std::mutex mu;
  auto* sink = BuildThermalAnalysis(
      &analysis, analysis.ImportSource("pp." + params.machine_id),
      analysis.ImportSource("ot." + params.machine_id),
      machine_params.job.plate.PxPerMm(), params,
      [&](const ClusterReport& report) {
        // Persist every window verdict: the expert's record of the build,
        // and the hop that takes a sampled trace into the KV layer.
        analysis
            .Store("report/" + std::to_string(report.layer) + "/" +
                       std::to_string(report.specimen),
                   std::to_string(report.clusters.size()) + " clusters, " +
                       std::to_string(report.window_events) + " events")
            .OrDie();
        std::lock_guard lock(mu);
        networked.push_back(report);
      });
  analysis.Deploy();
  analysis.WaitForCompletion();
  collector.join();
  server.Stop();
  PrintTraceDepth(DumpTrace("analysis"));

  const Histogram latency = sink->LatencySnapshot();
  std::printf("  %zu cluster reports, delivery latency p50=%.1f ms "
              "p95=%.1f ms (collector exit %d)\n",
              networked.size(), MicrosToMillis(latency.Quantile(0.5)),
              MicrosToMillis(latency.Quantile(0.95)), collector_exit);

  const Fingerprint a = FingerprintOf(embedded);
  const Fingerprint b = FingerprintOf(networked);
  if (a == b) {
    std::printf("OK: networked reports identical to embedded "
                "(%zu (layer, specimen) windows)\n",
                a.size());
    return 0;
  }
  std::printf("MISMATCH: embedded %zu windows vs networked %zu windows\n",
              a.size(), b.size());
  for (const auto& [key, value] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      std::printf("  layer %lld specimen %lld missing from networked run\n",
                  static_cast<long long>(key.first),
                  static_cast<long long>(key.second));
    } else if (it->second != value) {
      std::printf("  layer %lld specimen %lld: events/clusters %zu/%zu vs "
                  "%zu/%zu\n",
                  static_cast<long long>(key.first),
                  static_cast<long long>(key.second), value.first,
                  value.second, it->second.first, it->second.second);
    }
  }
  return 1;
}
