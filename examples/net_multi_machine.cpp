// Networked deployment topology (DESIGN.md "Deployment topologies"): the
// Algorithm-1 thermal pipeline split into two OS processes joined only by a
// TCP broker.
//
//   parent process: ps::Broker + net::BrokerServer, plus the analysis half
//                   (ImportSource -> fuse -> partition -> detect ->
//                    correlate -> deliver)
//   child process:  the machine-side collector half (ExportSource of the
//                   printing-parameter and OT-image streams), re-executing
//                   this binary with --collector
//
// The same job also runs fully embedded first; the example then checks the
// networked deployment delivered the *identical* per-(layer, specimen)
// cluster reports — the transport must not change the analysis.
//
//   build/examples/net_multi_machine [layers]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "net/server.hpp"
#include "strata/usecase.hpp"

using namespace strata;        // NOLINT
using namespace strata::core;  // NOLINT

namespace {

constexpr int kJobId = 7;
constexpr int kImagePx = 400;
constexpr int kSpecimens = 3;

am::MachineParams MachineParamsFor(int layers) {
  am::MachineParams params;
  params.job = am::MakeSmallJob(kJobId, kImagePx, kSpecimens);
  params.layers_limit = layers;
  params.defects.birth_rate = 0.08;
  params.defects.mean_intensity_delta = 55.0;
  return params;
}

UseCaseParams AnalysisParamsFor() {
  UseCaseParams params;
  params.machine_id = "net-demo";
  params.cell_px = 8;
  params.correlate_layers = 10;
  return params;
}

/// (layer, specimen) -> (window events, clusters): the comparison key.
using Fingerprint =
    std::map<std::pair<std::int64_t, std::int64_t>,
             std::pair<std::size_t, std::size_t>>;

Fingerprint FingerprintOf(const std::vector<ClusterReport>& reports) {
  Fingerprint fp;
  for (const ClusterReport& r : reports) {
    fp[{r.layer, r.specimen}] = {r.window_events, r.clusters.size()};
  }
  return fp;
}

/// Child role: the machine-side process. Publishes the raw pp/ot streams to
/// the broker at `port` and exits when the build ends.
int RunCollector(std::uint16_t port, int layers) {
  StrataOptions options;
  net::RemoteOptions remote;
  remote.port = port;
  options.remote_broker = remote;
  Strata strata_rt(std::move(options));

  auto machine =
      std::make_shared<am::MachineSimulator>(MachineParamsFor(layers));
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  const std::string& id = AnalysisParamsFor().machine_id;
  strata_rt.ExportSource("pp." + id,
                         PrintingParameterCollector(machine, pacing));
  strata_rt.ExportSource("ot." + id, OtImageCollector(machine, pacing));
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  std::printf("[collector pid] build finished, %d layers exported\n", layers);
  return 0;
}

std::vector<ClusterReport> RunEmbedded(int layers) {
  Strata strata_rt;
  const UseCaseParams params = AnalysisParamsFor();
  const am::MachineParams machine_params = MachineParamsFor(layers);
  ComputeAndStoreThresholds(&strata_rt, params.machine_id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);

  std::vector<ClusterReport> reports;
  std::mutex mu;
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  BuildThermalPipeline(&strata_rt, machine, pacing, params,
                       [&](const ClusterReport& report) {
                         std::lock_guard lock(mu);
                         reports.push_back(report);
                       });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  return reports;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--collector") {
    const int port = std::atoi(argv[2]);
    const int layers = argc > 3 ? std::atoi(argv[3]) : 20;
    return RunCollector(static_cast<std::uint16_t>(port), layers);
  }
  const int layers = argc > 1 ? std::atoi(argv[1]) : 20;

  std::printf("pass 1: embedded deployment (%d layers)...\n", layers);
  const std::vector<ClusterReport> embedded = RunEmbedded(layers);
  std::printf("  %zu cluster reports\n", embedded.size());

  std::printf("pass 2: networked deployment (collector process | TCP | "
              "analysis process)...\n");
  ps::Broker broker;
  net::BrokerServer server(&broker);
  server.Start().OrDie();
  std::printf("  broker server on %s:%u\n", server.host().c_str(),
              server.port());

  // The collector half runs as a real child process: this binary, re-executed
  // in its machine-side role against the broker's port.
  const std::string command = std::string(argv[0]) + " --collector " +
                              std::to_string(server.port()) + " " +
                              std::to_string(layers);
  int collector_exit = -1;
  std::thread collector(
      [&] { collector_exit = std::system(command.c_str()); });

  // The analysis half: imports the raw streams from the broker and runs
  // Algorithm-1 L3-L7 on them.
  StrataOptions analysis_options;
  net::RemoteOptions remote;
  remote.port = server.port();
  analysis_options.remote_broker = remote;
  Strata analysis(std::move(analysis_options));
  const UseCaseParams params = AnalysisParamsFor();
  const am::MachineParams machine_params = MachineParamsFor(layers);
  ComputeAndStoreThresholds(&analysis, params.machine_id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();

  std::vector<ClusterReport> networked;
  std::mutex mu;
  auto* sink = BuildThermalAnalysis(
      &analysis, analysis.ImportSource("pp." + params.machine_id),
      analysis.ImportSource("ot." + params.machine_id),
      machine_params.job.plate.PxPerMm(), params,
      [&](const ClusterReport& report) {
        std::lock_guard lock(mu);
        networked.push_back(report);
      });
  analysis.Deploy();
  analysis.WaitForCompletion();
  collector.join();
  server.Stop();

  const Histogram latency = sink->LatencySnapshot();
  std::printf("  %zu cluster reports, delivery latency p50=%.1f ms "
              "p95=%.1f ms (collector exit %d)\n",
              networked.size(), MicrosToMillis(latency.Quantile(0.5)),
              MicrosToMillis(latency.Quantile(0.95)), collector_exit);

  const Fingerprint a = FingerprintOf(embedded);
  const Fingerprint b = FingerprintOf(networked);
  if (a == b) {
    std::printf("OK: networked reports identical to embedded "
                "(%zu (layer, specimen) windows)\n",
                a.size());
    return 0;
  }
  std::printf("MISMATCH: embedded %zu windows vs networked %zu windows\n",
              a.size(), b.size());
  for (const auto& [key, value] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      std::printf("  layer %lld specimen %lld missing from networked run\n",
                  static_cast<long long>(key.first),
                  static_cast<long long>(key.second));
    } else if (it->second != value) {
      std::printf("  layer %lld specimen %lld: events/clusters %zu/%zu vs "
                  "%zu/%zu\n",
                  static_cast<long long>(key.first),
                  static_cast<long long>(key.second), value.first,
                  value.second, it->second.first, it->second.second);
    }
  }
  return 1;
}
