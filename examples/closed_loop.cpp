// Closed-loop control: the shift the paper motivates in Figure 1B. The
// monitoring pipeline feeds a FeedbackController that re-parameterizes the
// laser for specimens developing thermal-defect clusters and terminates a
// systematically bad job — "saving energy, material, time, and thus being
// more sustainable" (§1).
//
//   build/examples/closed_loop [layers]
#include <cstdio>
#include <mutex>

#include "strata/controller.hpp"

using namespace strata;        // NOLINT
using namespace strata::core;  // NOLINT

int main(int argc, char** argv) {
  const int layers = argc > 1 ? std::atoi(argv[1]) : 60;

  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, /*image_px=*/400, /*specimens=*/3);
  machine_params.layers_limit = layers;
  machine_params.defects.birth_rate = 0.3;  // a rough powder batch
  machine_params.defects.mean_intensity_delta = 55.0;
  machine_params.defects.mean_radius_mm = 2.5;

  UseCaseParams params;
  params.cell_px = 4;
  params.correlate_layers = 8;
  params.min_report_points = 4;

  Strata strata_rt;
  ComputeAndStoreThresholds(&strata_rt, params.machine_id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();

  auto machine = std::make_shared<am::MachineSimulator>(machine_params);
  ControllerPolicy policy;
  policy.adjust_cluster_points = 25;
  policy.post_adjust_points = 40;
  policy.terminate_specimen_fraction = 0.9;
  auto controller = std::make_shared<FeedbackController>(machine, policy);

  std::mutex mu;
  std::map<std::int64_t, std::size_t> events_by_layer;
  BuildThermalPipeline(
      &strata_rt, machine,
      CollectorPacing{.mode = CollectorPacing::Mode::kLive,
                      .time_scale = 0.002},
      params, [&](const ClusterReport& report) {
        {
          std::lock_guard lock(mu);
          events_by_layer[report.layer] += report.window_events;
        }
        controller->OnReport(report);
      });

  std::printf("printing %d layers with the controller in the loop...\n",
              layers);
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();

  const ControllerStats stats = controller->stats();
  std::printf("\ncontroller: %zu report(s), %zu adjustment(s)%s\n",
              stats.reports_seen, stats.adjustments_issued,
              stats.terminated
                  ? (", job TERMINATED at layer " +
                     std::to_string(stats.terminate_layer))
                        .c_str()
                  : "");

  std::printf("\nevents in flight per layer (defect activity):\n");
  for (const auto& [layer, events] : events_by_layer) {
    if (layer % 5 != 0) continue;
    std::printf("  layer %3lld: %4zu %s\n", static_cast<long long>(layer),
                events, std::string(std::min<std::size_t>(events, 60), '#')
                            .c_str());
  }
  return 0;
}
