#include "spe/aggregates.hpp"

#include <gtest/gtest.h>

#include "spe/replay_source.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using testutil::Collector;
using testutil::MakeValueTuple;

std::vector<Tuple> RunAggregate(AggregateSpec spec,
                                std::vector<Tuple> input) {
  Query query;
  auto src = query.AddSource("src", VectorSource(std::move(input)));
  auto agg = query.AddAggregate("agg", src, std::move(spec));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();
  return collector.tuples();
}

std::vector<Tuple> OneWindowValues(std::initializer_list<double> values) {
  std::vector<Tuple> input;
  Timestamp t = 0;
  for (const double v : values) input.push_back(MakeValueTuple(t++, v));
  return input;
}

TEST(AggregateBuilders, Sum) {
  const auto out =
      RunAggregate(SumAggregate({100, 100}, "value"), OneWindowValues({1, 2, 3.5}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].payload.Get("sum").AsDouble(), 6.5);
  EXPECT_EQ(out[0].payload.Get("count").AsInt(), 3);
}

TEST(AggregateBuilders, MinMax) {
  const auto mn =
      RunAggregate(MinAggregate({100, 100}, "value"), OneWindowValues({5, -2, 9}));
  ASSERT_EQ(mn.size(), 1u);
  EXPECT_DOUBLE_EQ(mn[0].payload.Get("min").AsDouble(), -2.0);

  const auto mx =
      RunAggregate(MaxAggregate({100, 100}, "value"), OneWindowValues({5, -2, 9}));
  ASSERT_EQ(mx.size(), 1u);
  EXPECT_DOUBLE_EQ(mx[0].payload.Get("max").AsDouble(), 9.0);
}

TEST(AggregateBuilders, Mean) {
  const auto out = RunAggregate(MeanAggregate({100, 100}, "value"),
                                OneWindowValues({2, 4, 6}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].payload.Get("mean").AsDouble(), 4.0);
}

TEST(AggregateBuilders, Count) {
  const auto out = RunAggregate(CountAggregate({100, 100}),
                                OneWindowValues({1, 1, 1, 1}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload.Get("count").AsInt(), 4);
}

TEST(AggregateBuilders, MissingAttributeSkipped) {
  std::vector<Tuple> input = OneWindowValues({10, 20});
  Tuple no_value;
  no_value.event_time = 2;
  no_value.payload.Set("other", 99.0);
  input.push_back(no_value);

  const auto out = RunAggregate(SumAggregate({100, 100}, "value"), input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].payload.Get("sum").AsDouble(), 30.0);
  EXPECT_EQ(out[0].payload.Get("count").AsInt(), 2);
}

TEST(AggregateBuilders, IntAttributeAccepted) {
  std::vector<Tuple> input;
  Tuple t;
  t.event_time = 0;
  t.payload.Set("value", std::int64_t{7});
  input.push_back(t);
  const auto out = RunAggregate(SumAggregate({100, 100}, "value"), input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].payload.Get("sum").AsDouble(), 7.0);
}

TEST(AggregateBuilders, EmptyWindowOnFlushReportsZero) {
  // A window that only ever saw attribute-less tuples still emits (count=0).
  std::vector<Tuple> input;
  Tuple t;
  t.event_time = 5;
  t.payload.Set("other", 1.0);
  input.push_back(t);
  const auto out = RunAggregate(MaxAggregate({100, 100}, "value"), input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].payload.Get("max").AsDouble(), 0.0);
  EXPECT_EQ(out[0].payload.Get("count").AsInt(), 0);
}

TEST(AggregateBuilders, GroupByKeySeparates) {
  std::vector<Tuple> input;
  for (int i = 0; i < 6; ++i) {
    Tuple t = MakeValueTuple(i, i % 2 == 0 ? 10.0 : 100.0, /*job=*/i % 2);
    input.push_back(t);
  }
  const auto out = RunAggregate(
      SumAggregate({100, 100}, "value", "sum",
                   [](const Tuple& t) { return std::to_string(t.job); }),
      input);
  ASSERT_EQ(out.size(), 2u);
  std::set<double> sums{out[0].payload.Get("sum").AsDouble(),
                        out[1].payload.Get("sum").AsDouble()};
  EXPECT_TRUE(sums.contains(30.0));
  EXPECT_TRUE(sums.contains(300.0));
}

TEST(AggregateBuilders, SlidingWindowsEachGetResult) {
  std::vector<Tuple> input;
  for (int i = 0; i < 20; ++i) input.push_back(MakeValueTuple(i, 1.0));
  const auto out = RunAggregate(SumAggregate({10, 5}, "value"), input);
  // Windows [0,10) [5,15) [10,20) [15,25): 4 results after flush.
  EXPECT_EQ(out.size(), 4u);
}

}  // namespace
}  // namespace strata::spe
