// Property tests of Aggregate window semantics against a brute-force oracle,
// parameterized over (WS, WA, group count, tuple count, time spread).
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "spe/replay_source.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using testutil::Collector;
using testutil::CountAggregate;

struct WindowCase {
  Timestamp ws;
  Timestamp wa;
  int groups;
  int tuples;
  Timestamp max_time;
  std::uint64_t seed;
};

std::string PrintCase(const ::testing::TestParamInfo<WindowCase>& info) {
  const WindowCase& c = info.param;
  return "ws" + std::to_string(c.ws) + "_wa" + std::to_string(c.wa) + "_g" +
         std::to_string(c.groups) + "_n" + std::to_string(c.tuples) + "_t" +
         std::to_string(c.max_time) + "_s" + std::to_string(c.seed);
}

class WindowPropertyTest : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowPropertyTest, CountsMatchBruteForce) {
  const WindowCase& param = GetParam();
  Rng rng(param.seed);

  // Generate time-ordered tuples with random group assignment.
  std::vector<Tuple> input;
  Timestamp t = 0;
  for (int i = 0; i < param.tuples; ++i) {
    t += rng.UniformInt(0, 2 * param.max_time / param.tuples);
    Tuple tuple;
    tuple.event_time = t;
    tuple.job = rng.UniformInt(0, param.groups - 1);
    input.push_back(tuple);
  }

  // Brute-force oracle: for every (group, window) pair count members.
  std::map<std::pair<std::string, Timestamp>, std::int64_t> oracle;
  for (const Tuple& tuple : input) {
    const std::string group = std::to_string(tuple.job);
    const Timestamp time = tuple.event_time;
    for (std::int64_t l = 0;; ++l) {
      const Timestamp start = l * param.wa;
      if (start > time) break;
      if (time < start + param.ws) oracle[{group, start}] += 1;
    }
  }

  Query query;
  auto src = query.AddSource("src", VectorSource(input));
  auto agg = query.AddAggregate(
      "count", src,
      CountAggregate(param.ws, param.wa,
                     [](const Tuple& tuple) { return std::to_string(tuple.job); }));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();

  std::map<std::pair<std::string, Timestamp>, std::int64_t> actual;
  // The CountAggregate result loses the group label (payload only carries
  // window bounds), so compare the multiset of (window_start -> counts)
  // per group via a group-annotated aggregate instead: re-run with group in
  // the result is complex; instead compare window_start multiset totals.
  std::map<Timestamp, std::int64_t> oracle_by_window;
  for (const auto& [key, count] : oracle) oracle_by_window[key.second] += count;
  std::map<Timestamp, std::int64_t> actual_by_window;
  std::map<Timestamp, std::int64_t> actual_window_instances;
  for (const Tuple& tuple : collector.tuples()) {
    actual_by_window[tuple.payload.Get("window_start").AsInt()] +=
        tuple.payload.Get("count").AsInt();
    actual_window_instances[tuple.payload.Get("window_start").AsInt()] += 1;
  }
  EXPECT_EQ(actual_by_window, oracle_by_window);

  // Also check instance counts: one output per non-empty (group, window).
  std::map<Timestamp, std::int64_t> oracle_window_instances;
  for (const auto& [key, count] : oracle) {
    oracle_window_instances[key.second] += 1;
  }
  EXPECT_EQ(actual_window_instances, oracle_window_instances);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowPropertyTest,
    ::testing::Values(WindowCase{10, 10, 1, 500, 1000, 1},
                      WindowCase{10, 5, 1, 500, 1000, 2},
                      WindowCase{100, 10, 1, 300, 2000, 3},
                      WindowCase{10, 10, 4, 800, 1000, 4},
                      WindowCase{50, 25, 3, 600, 5000, 5},
                      WindowCase{7, 3, 2, 400, 700, 6},
                      WindowCase{1000, 100, 5, 1000, 10000, 7},
                      WindowCase{1, 1, 1, 200, 100, 8}),
    PrintCase);

}  // namespace
}  // namespace strata::spe
