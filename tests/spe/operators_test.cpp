#include <gtest/gtest.h>

#include <atomic>

#include "spe/replay_source.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using testutil::Collector;
using testutil::MakeTuple;
using testutil::MakeValueTuple;

TEST(SourceSink, TuplesFlowEndToEnd) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 10; ++i) input.push_back(MakeTuple(i * 100, 1, i));
  auto src = query.AddSource("src", VectorSource(input));
  Collector collector;
  query.AddSink("sink", src, collector.AsSink());
  query.Run();

  const auto out = collector.tuples();
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].event_time, i * 100);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].layer, i);
  }
}

TEST(SourceSink, SourceAssignsStimulus) {
  Query query;
  auto src = query.AddSource("src", VectorSource({MakeTuple(1)}));
  Collector collector;
  query.AddSink("sink", src, collector.AsSink());
  query.Run();
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_GT(collector.tuples()[0].stimulus, 0);
}

TEST(SourceSink, SinkRecordsLatency) {
  Query query;
  auto src = query.AddSource("src", VectorSource({MakeTuple(1), MakeTuple(2)}));
  Collector collector;
  auto* sink = query.AddSink("sink", src, collector.AsSink());
  query.Run();
  const Histogram latency = sink->LatencySnapshot();
  EXPECT_EQ(latency.count(), 2u);
  EXPECT_GE(latency.min(), 0);
}

TEST(FlatMap, OneToMany) {
  Query query;
  auto src = query.AddSource("src", VectorSource({MakeTuple(10), MakeTuple(20)}));
  auto mapped = query.AddFlatMap("triple", src, [](const Tuple& t) {
    std::vector<Tuple> out;
    for (int i = 0; i < 3; ++i) {
      Tuple copy = t;
      copy.payload.Set("i", i);
      out.push_back(copy);
    }
    return out;
  });
  Collector collector;
  query.AddSink("sink", mapped, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 6u);
}

TEST(FlatMap, OneToZeroDropsTuple) {
  Query query;
  auto src = query.AddSource("src", VectorSource({MakeTuple(1), MakeTuple(2)}));
  auto mapped = query.AddFlatMap("drop-odd", src, [](const Tuple& t) {
    return t.event_time % 2 == 0 ? std::vector<Tuple>{t} : std::vector<Tuple>{};
  });
  Collector collector;
  query.AddSink("sink", mapped, collector.AsSink());
  query.Run();
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_EQ(collector.tuples()[0].event_time, 2);
}

TEST(FlatMap, PropagatesStimulusToDerivedTuples) {
  Query query;
  auto src = query.AddSource("src", VectorSource({MakeTuple(1)}));
  auto mapped = query.AddFlatMap("derive", src, [](const Tuple&) {
    Tuple fresh;  // no stimulus set by the user function
    fresh.event_time = 99;
    return std::vector<Tuple>{fresh};
  });
  Collector collector;
  query.AddSink("sink", mapped, collector.AsSink());
  query.Run();
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_GT(collector.tuples()[0].stimulus, 0) << "stimulus must be inherited";
}

TEST(Filter, KeepsMatching) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 100; ++i) input.push_back(MakeValueTuple(i, i));
  auto src = query.AddSource("src", VectorSource(input));
  auto filtered = query.AddFilter("keep-big", src, [](const Tuple& t) {
    return t.payload.Get("value").AsDouble() >= 90;
  });
  Collector collector;
  query.AddSink("sink", filtered, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 10u);
}

TEST(ParallelFlatMap, AllTuplesProcessedOnce) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 1000; ++i) {
    Tuple t = MakeTuple(i, /*job=*/0, /*layer=*/i % 7);
    t.payload.Set("id", i);
    input.push_back(t);
  }
  auto src = query.AddSource("src", VectorSource(input));
  auto mapped = query.AddFlatMap(
      "parallel", src,
      [](const Tuple& t) { return std::vector<Tuple>{t}; },
      /*parallelism=*/4,
      [](const Tuple& t) { return std::to_string(t.layer); });
  Collector collector;
  query.AddSink("sink", mapped, collector.AsSink());
  query.Run();

  const auto out = collector.tuples();
  ASSERT_EQ(out.size(), 1000u);
  std::set<std::int64_t> ids;
  for (const Tuple& t : out) ids.insert(t.payload.Get("id").AsInt());
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(ParallelFlatMap, PerKeyOrderPreserved) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 500; ++i) {
    Tuple t = MakeTuple(i, 0, i % 3);
    t.payload.Set("seq", i);
    input.push_back(t);
  }
  auto src = query.AddSource("src", VectorSource(input));
  auto mapped = query.AddFlatMap(
      "parallel", src, [](const Tuple& t) { return std::vector<Tuple>{t}; },
      3, [](const Tuple& t) { return std::to_string(t.layer); });
  Collector collector;
  query.AddSink("sink", mapped, collector.AsSink());
  query.Run();

  std::map<std::int64_t, std::int64_t> last_seq;
  for (const Tuple& t : collector.tuples()) {
    const std::int64_t seq = t.payload.Get("seq").AsInt();
    if (last_seq.contains(t.layer)) {
      EXPECT_GT(seq, last_seq[t.layer]) << "layer " << t.layer;
    }
    last_seq[t.layer] = seq;
  }
}

TEST(ParallelFlatMap, RequiresShardKey) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  EXPECT_THROW(
      (void)query.AddFlatMap(
          "p", src, [](const Tuple& t) { return std::vector<Tuple>{t}; }, 2),
      std::invalid_argument);
}

TEST(Split, FansOutToTwoConsumers) {
  Query query;
  auto src = query.AddSource(
      "src", VectorSource({MakeTuple(1), MakeTuple(2), MakeTuple(3)}));
  auto branches = query.AddSplit("split", src, 2);
  ASSERT_EQ(branches.size(), 2u);
  Collector a;
  Collector b;
  query.AddSink("sink-a", branches[0], a.AsSink());
  query.AddSink("sink-b", branches[1], b.AsSink());
  query.Run();
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 3u);
}

TEST(Union, MergesAllInputs) {
  Query query;
  auto s1 = query.AddSource("s1", VectorSource({MakeTuple(1), MakeTuple(3)}));
  auto s2 = query.AddSource("s2", VectorSource({MakeTuple(2), MakeTuple(4)}));
  auto merged = query.AddUnion("union", {s1, s2});
  Collector collector;
  query.AddSink("sink", merged, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 4u);
}

TEST(RateControlledSource, PacesEmission) {
  const Clock& clock = Clock::System();
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 20; ++i) input.push_back(MakeTuple(i));
  // 200 tuples/s -> 20 tuples take ~100 ms (first releases immediately).
  auto src = query.AddSource(
      "src", RateControlledSource(VectorSource(input), 200.0, &clock));
  Collector collector;
  query.AddSink("sink", src, collector.AsSink());
  const Timestamp t0 = clock.Now();
  query.Run();
  const double elapsed_ms = MicrosToMillis(clock.Now() - t0);
  EXPECT_EQ(collector.size(), 20u);
  EXPECT_GE(elapsed_ms, 80.0);
  EXPECT_LE(elapsed_ms, 500.0);
}

TEST(RateControlledSource, MaxTuplesTruncates) {
  const Clock& clock = Clock::System();
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 100; ++i) input.push_back(MakeTuple(i));
  auto src = query.AddSource(
      "src", RateControlledSource(VectorSource(input), 1e6, &clock, 7));
  Collector collector;
  query.AddSink("sink", src, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 7u);
}

TEST(OperatorStats, CountsInAndOut) {
  Query query;
  auto src = query.AddSource(
      "src", VectorSource({MakeTuple(1), MakeTuple(2), MakeTuple(3)}));
  auto filtered =
      query.AddFilter("f", src, [](const Tuple& t) { return t.event_time > 1; });
  Collector collector;
  query.AddSink("sink", filtered, collector.AsSink());
  query.Run();

  for (const OperatorStats& stats : query.Stats()) {
    if (stats.name == "f") {
      EXPECT_EQ(stats.tuples_in, 3u);
      EXPECT_EQ(stats.tuples_out, 2u);
    }
    if (stats.name == "src") EXPECT_EQ(stats.tuples_out, 3u);
  }
}

}  // namespace
}  // namespace strata::spe
