#include <gtest/gtest.h>

#include "spe/replay_source.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using testutil::Collector;
using testutil::CountAggregate;
using testutil::MakeTuple;
using testutil::MakeValueTuple;

std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> WindowCounts(
    const std::vector<Tuple>& tuples) {
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> counts;
  for (const Tuple& t : tuples) {
    counts[{t.payload.Get("window_start").AsInt(),
            t.payload.Get("window_end").AsInt()}] =
        t.payload.Get("count").AsInt();
  }
  return counts;
}

TEST(Aggregate, TumblingWindowCounts) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 30; ++i) input.push_back(MakeTuple(i));  // t = 0..29
  auto src = query.AddSource("src", VectorSource(input));
  auto agg = query.AddAggregate("count", src, CountAggregate(10, 10));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();

  const auto counts = WindowCounts(collector.tuples());
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ((counts.at({0, 10})), 10);
  EXPECT_EQ((counts.at({10, 20})), 10);
  EXPECT_EQ((counts.at({20, 30})), 10);
}

TEST(Aggregate, SlidingWindowsOverlap) {
  Query query;
  // WS=10 WA=5: tuple t belongs to 2 windows (except near 0).
  std::vector<Tuple> input;
  for (int i = 0; i < 20; ++i) input.push_back(MakeTuple(i));
  auto src = query.AddSource("src", VectorSource(input));
  auto agg = query.AddAggregate("count", src, CountAggregate(10, 5));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();

  const auto counts = WindowCounts(collector.tuples());
  EXPECT_EQ((counts.at({0, 10})), 10);
  EXPECT_EQ((counts.at({5, 15})), 10);
  EXPECT_EQ((counts.at({10, 20})), 10);
  // Final flush also emits the partially-filled window [15, 25).
  EXPECT_EQ((counts.at({15, 25})), 5);
}

TEST(Aggregate, WindowBoundariesHalfOpen) {
  Query query;
  // Exactly at the boundary: t=10 must land in [10,20), not [0,10).
  auto src = query.AddSource(
      "src", VectorSource({MakeTuple(0), MakeTuple(9), MakeTuple(10)}));
  auto agg = query.AddAggregate("count", src, CountAggregate(10, 10));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();

  const auto counts = WindowCounts(collector.tuples());
  EXPECT_EQ((counts.at({0, 10})), 2);
  EXPECT_EQ((counts.at({10, 20})), 1);
}

TEST(Aggregate, GroupByAggregatesSeparately) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 12; ++i) {
    input.push_back(MakeTuple(i, /*job=*/i % 2));  // alternate jobs
  }
  auto src = query.AddSource("src", VectorSource(input));
  auto agg = query.AddAggregate(
      "count", src,
      CountAggregate(100, 100, [](const Tuple& t) {
        return std::to_string(t.job);
      }));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();

  // One window per group, each with 6 tuples.
  const auto out = collector.tuples();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload.Get("count").AsInt(), 6);
  EXPECT_EQ(out[1].payload.Get("count").AsInt(), 6);
}

TEST(Aggregate, WindowsCloseAsTimeAdvances) {
  // Windows must be emitted before end-of-stream once event time passes
  // their end — verified by a sink that sees the first window result before
  // the source has finished (checked via counts: with an infinite-ish source
  // we still receive early windows).
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 100; ++i) input.push_back(MakeTuple(i));
  auto src = query.AddSource("src", VectorSource(input));
  auto agg = query.AddAggregate("count", src, CountAggregate(10, 10));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();
  // All 10 windows present: 9 closed by watermark + 1 flushed at end.
  EXPECT_EQ(collector.size(), 10u);
}

TEST(Aggregate, LateTupleIsDroppedAndCounted) {
  Query query;
  std::vector<Tuple> input;
  input.push_back(MakeTuple(5));
  input.push_back(MakeTuple(25));  // closes [0,10) and [10,20)
  input.push_back(MakeTuple(7));   // late: its window already closed
  input.push_back(MakeTuple(35));
  auto src = query.AddSource("src", VectorSource(input));
  auto agg = query.AddAggregate("count", src, CountAggregate(10, 10));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();

  const auto counts = WindowCounts(collector.tuples());
  EXPECT_EQ((counts.at({0, 10})), 1);  // the late t=7 is NOT in the count

  std::uint64_t late = 0;
  for (const auto& stats : query.Stats()) {
    if (stats.name == "count") late = stats.late_drops;
  }
  EXPECT_EQ(late, 1u);
}

TEST(Aggregate, AllowedLatenessAcceptsBoundedDisorder) {
  Query query;
  std::vector<Tuple> input;
  input.push_back(MakeTuple(5));
  input.push_back(MakeTuple(12));  // without lateness this closes [0,10)
  input.push_back(MakeTuple(7));   // 5 out of order
  input.push_back(MakeTuple(40));  // closes everything
  auto src = query.AddSource("src", VectorSource(input));
  AggregateSpec spec = CountAggregate(10, 10);
  spec.allowed_lateness = 5;
  auto agg = query.AddAggregate("count", src, std::move(spec));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();

  const auto counts = WindowCounts(collector.tuples());
  EXPECT_EQ((counts.at({0, 10})), 2);  // t=7 made it in
  std::uint64_t late = 0;
  for (const auto& stats : query.Stats()) {
    if (stats.name == "count") late = stats.late_drops;
  }
  EXPECT_EQ(late, 0u);
}

TEST(Aggregate, DisorderBeyondLatenessStillDrops) {
  Query query;
  std::vector<Tuple> input;
  input.push_back(MakeTuple(5));
  input.push_back(MakeTuple(30));  // watermark 30-5=25: closes [0,10)
  input.push_back(MakeTuple(7));   // 23 out of order > lateness
  auto src = query.AddSource("src", VectorSource(input));
  AggregateSpec spec = CountAggregate(10, 10);
  spec.allowed_lateness = 5;
  auto agg = query.AddAggregate("count", src, std::move(spec));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();
  const auto counts = WindowCounts(collector.tuples());
  EXPECT_EQ((counts.at({0, 10})), 1);
  std::uint64_t late = 0;
  for (const auto& stats : query.Stats()) {
    if (stats.name == "count") late = stats.late_drops;
  }
  EXPECT_EQ(late, 1u);
}

TEST(Aggregate, NegativeLatenessRejected) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  AggregateSpec spec = CountAggregate(10, 10);
  spec.allowed_lateness = -1;
  EXPECT_THROW((void)query.AddAggregate("bad", src, std::move(spec)),
               std::invalid_argument);
}

TEST(Aggregate, SumAggregation) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 1; i <= 10; ++i) {
    input.push_back(MakeValueTuple(i - 1, i));  // values 1..10 in [0,10)
  }
  auto src = query.AddSource("src", VectorSource(input));
  AggregateSpec spec;
  spec.window = {10, 10};
  spec.init = [] { return std::any(0.0); };
  spec.add = [](std::any& acc, const Tuple& t) {
    std::any_cast<double&>(acc) += t.payload.Get("value").AsDouble();
  };
  spec.result = [](std::any& acc, Timestamp, Timestamp) {
    Tuple out;
    out.payload.Set("sum", std::any_cast<double>(acc));
    return std::vector<Tuple>{out};
  };
  auto agg = query.AddAggregate("sum", src, std::move(spec));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();

  ASSERT_EQ(collector.size(), 1u);
  EXPECT_DOUBLE_EQ(collector.tuples()[0].payload.Get("sum").AsDouble(), 55.0);
}

TEST(Aggregate, StimulusIsMaxOfContributors) {
  Query query;
  std::vector<Tuple> input;
  Tuple a = MakeTuple(1);
  a.stimulus = 100;
  Tuple b = MakeTuple(2);
  b.stimulus = 900;
  input.push_back(a);
  input.push_back(b);
  auto src = query.AddSource("src", VectorSource(input));
  auto agg = query.AddAggregate("count", src, CountAggregate(10, 10));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_GE(collector.tuples()[0].stimulus, 900);
}

TEST(Aggregate, RejectsInvalidWindowSpec) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  AggregateSpec spec = CountAggregate(10, 10);
  spec.window = {0, 10};
  EXPECT_THROW((void)query.AddAggregate("bad", src, spec),
               std::invalid_argument);

  Query query2;
  auto src2 = query2.AddSource("src", VectorSource({}));
  AggregateSpec spec2 = CountAggregate(10, 10);
  spec2.window = {5, 10};  // advance > size unsupported
  EXPECT_THROW((void)query2.AddAggregate("bad", src2, spec2),
               std::invalid_argument);
}

TEST(Aggregate, RejectsMissingFunctions) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  AggregateSpec spec;
  spec.window = {10, 10};
  EXPECT_THROW((void)query.AddAggregate("bad", src, spec),
               std::invalid_argument);
}

TEST(Aggregate, EmptyStreamEmitsNothing) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  auto agg = query.AddAggregate("count", src, CountAggregate(10, 10));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 0u);
}

}  // namespace
}  // namespace strata::spe
