// Property test: the streaming Join must produce exactly the pairs the
// brute-force definition dictates — for every (l, r) with equal keys,
// |τ_l − τ_r| <= WS, and predicate true — across random time-ordered
// streams, window sizes, and key cardinalities.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "spe/replay_source.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using testutil::Collector;

struct JoinCase {
  int left_count;
  int right_count;
  Timestamp window;
  int key_cardinality;  // 0 = no key fn
  Timestamp max_gap;    // max inter-arrival gap per stream
  std::uint64_t seed;
};

std::string PrintCase(const ::testing::TestParamInfo<JoinCase>& info) {
  const JoinCase& c = info.param;
  return "l" + std::to_string(c.left_count) + "_r" +
         std::to_string(c.right_count) + "_w" + std::to_string(c.window) +
         "_k" + std::to_string(c.key_cardinality) + "_g" +
         std::to_string(c.max_gap) + "_s" + std::to_string(c.seed);
}

std::vector<Tuple> RandomStream(Rng& rng, int count, int key_cardinality,
                                Timestamp max_gap, const char* id_key) {
  std::vector<Tuple> tuples;
  Timestamp t = 0;
  for (int i = 0; i < count; ++i) {
    t += rng.UniformInt(0, max_gap);
    Tuple tuple;
    tuple.event_time = t;
    tuple.job = key_cardinality > 0 ? rng.UniformInt(0, key_cardinality - 1)
                                    : 0;
    tuple.payload.Set(id_key, i);
    tuples.push_back(tuple);
  }
  return tuples;
}

class JoinPropertyTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinPropertyTest, MatchesBruteForceOracle) {
  const JoinCase& c = GetParam();
  Rng rng(c.seed);
  const auto lefts = RandomStream(rng, c.left_count, c.key_cardinality,
                                  c.max_gap, "lid");
  const auto rights = RandomStream(rng, c.right_count, c.key_cardinality,
                                   c.max_gap, "rid");

  // Oracle.
  std::multiset<std::pair<int, int>> expected;
  for (const Tuple& l : lefts) {
    for (const Tuple& r : rights) {
      if (c.key_cardinality > 0 && l.job != r.job) continue;
      const Timestamp dt = l.event_time - r.event_time;
      if (dt > c.window || dt < -c.window) continue;
      expected.insert({static_cast<int>(l.payload.Get("lid").AsInt()),
                       static_cast<int>(r.payload.Get("rid").AsInt())});
    }
  }

  Query query;
  auto left = query.AddSource("L", VectorSource(lefts));
  auto right = query.AddSource("R", VectorSource(rights));
  JoinSpec spec;
  spec.window = c.window;
  if (c.key_cardinality > 0) {
    spec.key_left = [](const Tuple& t) { return std::to_string(t.job); };
    spec.key_right = [](const Tuple& t) { return std::to_string(t.job); };
  }
  spec.combine = [](const Tuple& l, const Tuple& r) {
    Payload p;
    p.Set("lid", l.payload.Get("lid"));
    p.Set("rid", r.payload.Get("rid"));
    return p;
  };
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();

  std::multiset<std::pair<int, int>> actual;
  for (const Tuple& t : collector.tuples()) {
    actual.insert({static_cast<int>(t.payload.Get("lid").AsInt()),
                   static_cast<int>(t.payload.Get("rid").AsInt())});
  }
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinPropertyTest,
    ::testing::Values(JoinCase{200, 200, 0, 0, 3, 21},
                      JoinCase{200, 200, 10, 0, 3, 22},
                      JoinCase{300, 300, 100, 4, 5, 23},
                      JoinCase{150, 400, 50, 2, 8, 24},
                      JoinCase{400, 150, 5, 8, 2, 25},
                      JoinCase{100, 100, 1000, 1, 4, 26},  // everything joins
                      JoinCase{250, 250, 1, 3, 1, 27},     // dense ties
                      JoinCase{50, 0, 10, 0, 3, 28},       // empty right
                      JoinCase{0, 50, 10, 0, 3, 29}),      // empty left
    PrintCase);

}  // namespace
}  // namespace strata::spe
