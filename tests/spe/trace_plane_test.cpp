// Trace-plane tests: with sampling at 1/1, every hop of a pipeline records
// a span continuing the trace its source started, and the queue/execute
// split is visible per hop.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "spe/query.hpp"

namespace strata::spe {
namespace {

using obs::Span;
using obs::Tracer;

class TracePlaneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Configure(1);
    Tracer::Instance().Clear();
  }
  void TearDown() override {
    Tracer::Instance().Configure(0);
    Tracer::Instance().Clear();
  }
};

SourceFn FiniteSource(int total) {
  auto next = std::make_shared<int>(0);
  return [total, next]() -> std::optional<Tuple> {
    if (*next >= total) return std::nullopt;
    Tuple t;
    t.layer = (*next)++;
    t.job = 1;
    t.payload.Set("v", t.layer);
    return t;
  };
}

std::set<std::string> Categories(const std::vector<Span>& spans) {
  std::set<std::string> out;
  for (const Span& span : spans) out.insert(span.category);
  return out;
}

TEST_F(TracePlaneTest, EveryHopContinuesTheSourceTrace) {
  Query query;
  StreamPtr source = query.AddSource("collector", FiniteSource(8));
  StreamPtr mapped = query.AddFlatMap(
      "detect", source, [](const Tuple& t) { return std::vector<Tuple>{t}; });
  StreamPtr filtered =
      query.AddFilter("threshold", mapped, [](const Tuple&) { return true; });
  query.AddSink("deliver", filtered, [](const Tuple&) {});
  query.Run();

  const std::vector<Span> spans = Tracer::Instance().CollectSpans();
  ASSERT_FALSE(spans.empty());
  const std::set<std::string> categories = Categories(spans);
  EXPECT_TRUE(categories.count("spe.source")) << "missing source spans";
  EXPECT_TRUE(categories.count("spe.flatmap")) << "missing flatmap spans";
  EXPECT_TRUE(categories.count("spe.filter")) << "missing filter spans";
  EXPECT_TRUE(categories.count("spe.sink")) << "missing sink spans";

  // Group spans by trace: at 1/1 sampling each source tuple starts a trace
  // that must resurface at every downstream hop.
  std::map<std::uint64_t, std::set<std::string>> by_trace;
  for (const Span& span : spans) {
    by_trace[span.trace_id].insert(span.category);
  }
  int complete = 0;
  for (const auto& [trace_id, stages] : by_trace) {
    EXPECT_NE(trace_id, 0u);
    if (stages.count("spe.source") && stages.count("spe.flatmap") &&
        stages.count("spe.filter") && stages.count("spe.sink")) {
      ++complete;
    }
  }
  EXPECT_GT(complete, 0) << "no trace crossed all four hops";
}

TEST_F(TracePlaneTest, SpansFormAParentChainWithQueueSplit) {
  Query query;
  StreamPtr source = query.AddSource("collector", FiniteSource(4));
  query.AddSink("deliver", source, [](const Tuple&) {});
  query.Run();

  const std::vector<Span> spans = Tracer::Instance().CollectSpans();
  std::map<std::uint64_t, std::vector<Span>> by_trace;
  for (const Span& span : spans) by_trace[span.trace_id].push_back(span);

  int chains = 0;
  for (auto& [trace_id, trace_spans] : by_trace) {
    const auto source_it = std::find_if(
        trace_spans.begin(), trace_spans.end(),
        [](const Span& s) { return std::string(s.category) == "spe.source"; });
    const auto sink_it = std::find_if(
        trace_spans.begin(), trace_spans.end(),
        [](const Span& s) { return std::string(s.category) == "spe.sink"; });
    if (source_it == trace_spans.end() || sink_it == trace_spans.end()) {
      continue;
    }
    ++chains;
    // The sink span's parent is the span the source emitted under, and its
    // queue time (wait between source emit and sink pickup) is non-negative.
    EXPECT_EQ(sink_it->parent_span, source_it->span_id);
    EXPECT_GE(sink_it->queue_us, 0);
    EXPECT_GE(sink_it->dur_us, 0);
  }
  EXPECT_GT(chains, 0);
}

TEST_F(TracePlaneTest, DisabledSamplingRecordsNothing) {
  Tracer::Instance().Configure(0);
  Query query;
  StreamPtr source = query.AddSource("collector", FiniteSource(16));
  query.AddSink("deliver", source, [](const Tuple&) {});
  query.Run();
  EXPECT_TRUE(Tracer::Instance().CollectSpans().empty());
  EXPECT_EQ(Tracer::Instance().traces_started(), 0u);
}

TEST_F(TracePlaneTest, ParallelFlatMapKeepsTraceAcrossRouterAndUnion) {
  Query query;
  StreamPtr source = query.AddSource("collector", FiniteSource(12));
  StreamPtr mapped = query.AddFlatMap(
      "detect", source, [](const Tuple& t) { return std::vector<Tuple>{t}; },
      /*parallelism=*/3,
      [](const Tuple& t) { return std::to_string(t.layer % 3); });
  query.AddSink("deliver", mapped, [](const Tuple&) {});
  query.Run();

  const std::vector<Span> spans = Tracer::Instance().CollectSpans();
  const std::set<std::string> categories = Categories(spans);
  // The parallelism wrapper adds router (shard) and union (merge) hops; the
  // trace must survive both queue crossings.
  EXPECT_TRUE(categories.count("spe.source"));
  EXPECT_TRUE(categories.count("spe.flatmap"));
  EXPECT_TRUE(categories.count("spe.sink"));

  std::map<std::uint64_t, std::set<std::string>> by_trace;
  for (const Span& span : spans) by_trace[span.trace_id].insert(span.category);
  int complete = 0;
  for (const auto& [trace_id, stages] : by_trace) {
    if (stages.count("spe.source") && stages.count("spe.flatmap") &&
        stages.count("spe.sink")) {
      ++complete;
    }
  }
  EXPECT_GT(complete, 0);
}

}  // namespace
}  // namespace strata::spe
