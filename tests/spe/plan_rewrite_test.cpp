// Plan-rewrite equivalence: fused-vs-unfused stateless chains and
// keyed-sharded-vs-unsharded stateful stages must produce identical results
// on seeded inputs, including across checkpoint/restore and restore onto a
// different shard count (tsan_smoke: routers, fused workers, and shard
// unions all run concurrently here).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "common/codec.hpp"
#include "spe/checkpoint.hpp"
#include "spe/plan_rewrite.hpp"
#include "spe/query.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool WaitUntil(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

/// Deterministic value for tuple i (splitmix-style, fixed seed).
std::int64_t SeededValue(std::int64_t i) {
  std::uint64_t x = static_cast<std::uint64_t>(i) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::int64_t>((x ^ (x >> 31)) % 1000);
}

// ------------------------------------------------- fused-vs-unfused chains

/// gen -> expand (1-2 tuples) -> keep (drop v%2) -> scale (v*3) -> sink.
/// The three stateless stages form one fusable chain.
void BuildChainPipeline(Query* query, std::int64_t tuples,
                        testutil::Collector* sink) {
  auto position = std::make_shared<std::int64_t>(0);
  auto gen = query->AddSource(
      "gen", [position, tuples]() -> std::optional<Tuple> {
        if (*position >= tuples) return std::nullopt;
        Tuple t = testutil::MakeTuple(*position);
        t.stimulus = *position + 1;
        t.payload.Set("v", SeededValue(*position));
        ++*position;
        return t;
      });
  auto expanded = query->AddFlatMap(
      "expand", std::move(gen), [](const Tuple& t) {
        const std::int64_t v = t.payload.Get("v").AsInt();
        if (v == 777) throw std::runtime_error("expand: seeded failure");
        std::vector<Tuple> out{t};
        if (v % 3 == 0) {
          Tuple extra = t;
          extra.payload.Set("v", v + 1000);
          out.push_back(std::move(extra));
        }
        return out;
      });
  auto kept = query->AddFilter("keep", std::move(expanded), [](const Tuple& t) {
    return t.payload.Get("v").AsInt() % 2 == 0;
  });
  auto scaled = query->AddFlatMap(
      "scale", std::move(kept), [](const Tuple& t) {
        Tuple out = t;
        out.payload.Set("v", t.payload.Get("v").AsInt() * 3);
        return std::vector<Tuple>{out};
      });
  query->AddSink("sink", std::move(scaled), sink->AsSink());
}

std::vector<std::pair<Timestamp, std::int64_t>> ChainOutput(bool fusion) {
  QueryOptions options;
  options.enable_fusion = fusion;
  Query query(options);
  testutil::Collector sink;
  BuildChainPipeline(&query, 400, &sink);
  query.Run();
  std::vector<std::pair<Timestamp, std::int64_t>> out;
  for (const Tuple& t : sink.tuples()) {
    out.emplace_back(t.event_time, t.payload.Get("v").AsInt());
  }
  return out;
}

TEST(OperatorFusion, FusedChainMatchesUnfusedOutputExactly) {
  const auto unfused = ChainOutput(false);
  const auto fused = ChainOutput(true);
  ASSERT_FALSE(unfused.empty());
  // A single chain preserves total order, so the sequences are identical,
  // not just equal as multisets.
  EXPECT_EQ(fused, unfused);
}

TEST(OperatorFusion, PerStageStatsSurviveFusion) {
  std::map<std::string, OperatorStats> stats[2];
  for (int fusion = 0; fusion < 2; ++fusion) {
    QueryOptions options;
    options.enable_fusion = fusion == 1;
    Query query(options);
    testutil::Collector sink;
    BuildChainPipeline(&query, 400, &sink);
    query.Run();
    for (const OperatorStats& s : query.Stats()) stats[fusion][s.name] = s;
  }
  // Same logical operator set either way: fusion is an execution detail.
  ASSERT_EQ(stats[0].size(), stats[1].size());
  for (const auto& [name, unfused] : stats[0]) {
    ASSERT_TRUE(stats[1].count(name)) << "fused run lost operator " << name;
    const OperatorStats& fused = stats[1][name];
    EXPECT_EQ(fused.kind, unfused.kind) << name;
    EXPECT_EQ(fused.tuples_in, unfused.tuples_in) << name;
    EXPECT_EQ(fused.tuples_out, unfused.tuples_out) << name;
    EXPECT_EQ(fused.user_errors, unfused.user_errors) << name;
  }
  // The seeded failure fires for every v == 777 input; make sure the test
  // exercised the error-attribution path at all.
  std::uint64_t total_errors = 0;
  for (const auto& [name, s] : stats[1]) total_errors += s.user_errors;
  std::uint64_t expected_errors = 0;
  for (std::int64_t i = 0; i < 400; ++i) {
    if (SeededValue(i) == 777) ++expected_errors;
  }
  EXPECT_EQ(total_errors, expected_errors);
}

TEST(OperatorFusion, FusionPassFindsTheChain) {
  // Hand-built operator list (the same shape Query::Start hands the pass):
  // expand -> keep -> scale over private 1:1 streams.
  const Clock* clock = &Clock::System();
  auto s_in = std::make_shared<Stream>("in", 16);
  auto s_a = std::make_shared<Stream>("a", 16);
  auto s_b = std::make_shared<Stream>("b", 16);
  auto s_out = std::make_shared<Stream>("out", 16);
  std::vector<std::unique_ptr<Operator>> ops;
  auto expand = std::make_unique<FlatMapOperator>(
      "expand", clock, [](const Tuple& t) { return std::vector<Tuple>{t}; });
  expand->AddInput(s_in);
  expand->AddOutput(s_a);
  auto keep = std::make_unique<FilterOperator>(
      "keep", clock, [](const Tuple&) { return true; });
  keep->AddInput(s_a);
  keep->AddOutput(s_b);
  auto scale = std::make_unique<FlatMapOperator>(
      "scale", clock, [](const Tuple& t) { return std::vector<Tuple>{t}; });
  scale->AddInput(s_b);
  scale->AddOutput(s_out);
  ops.push_back(std::move(expand));
  ops.push_back(std::move(keep));
  ops.push_back(std::move(scale));

  FusionPlan plan = FuseStatelessChains(ops, clock);
  ASSERT_EQ(plan.fused.size(), 1u);
  EXPECT_EQ(plan.fused[0]->name(), "expand+keep+scale");
  EXPECT_EQ(plan.absorbed.size(), 3u);
  EXPECT_EQ(plan.fused[0]->stages().size(), 3u);
  // The fused worker adopted the chain's endpoints.
  ASSERT_EQ(plan.fused[0]->inputs().size(), 1u);
  ASSERT_EQ(plan.fused[0]->outputs().size(), 1u);
  EXPECT_EQ(plan.fused[0]->inputs()[0].get(), s_in.get());
  EXPECT_EQ(plan.fused[0]->outputs()[0].get(), s_out.get());
}

// ------------------------------------------- sharded-vs-unsharded stateful

/// Keyed sum with codecs; the output carries its group so shard merges can
/// be checked per key.
AggregateSpec KeyedSumSpec(Timestamp size, Timestamp advance) {
  using Acc = std::pair<std::string, std::int64_t>;  // (group, sum)
  AggregateSpec spec;
  spec.window = {size, advance};
  spec.key = [](const Tuple& t) { return t.payload.Get("k").AsString(); };
  spec.init = [] { return std::any(Acc{}); };
  spec.add = [](std::any& acc, const Tuple& t) {
    auto& a = std::any_cast<Acc&>(acc);
    a.first = t.payload.Get("k").AsString();
    a.second += t.payload.Get("v").AsInt();
  };
  spec.result = [](std::any& acc, Timestamp start,
                   Timestamp /*end*/) -> std::vector<Tuple> {
    const auto& a = std::any_cast<const Acc&>(acc);
    Tuple out;
    out.payload.Set("group", a.first);
    out.payload.Set("sum", a.second);
    out.payload.Set("window_start", start);
    return {out};
  };
  spec.encode_acc = [](const std::any& acc, std::string* out) {
    const auto& a = std::any_cast<const Acc&>(acc);
    codec::PutLengthPrefixed(out, a.first);
    codec::PutVarint64Signed(out, a.second);
    return Status::Ok();
  };
  spec.decode_acc = [](std::string_view in) -> Result<std::any> {
    Acc a;
    std::string_view group;
    std::int64_t sum = 0;
    if (!codec::GetLengthPrefixed(&in, &group) ||
        !codec::GetVarint64Signed(&in, &sum) || !in.empty()) {
      return Status::Corruption("keyed sum accumulator");
    }
    a.first = std::string(group);
    a.second = sum;
    return std::any(a);
  };
  return spec;
}

void BuildShardedAggPipeline(Query* query, std::int64_t tuples, int shards,
                             testutil::Collector* sink,
                             std::shared_ptr<std::int64_t> position = nullptr) {
  if (!position) position = std::make_shared<std::int64_t>(0);
  auto gen = query->AddSource(
      "gen", [position, tuples]() -> std::optional<Tuple> {
        if (*position >= tuples) return std::nullopt;
        Tuple t = testutil::MakeTuple(*position + 1);
        t.stimulus = *position + 1;
        t.payload.Set("k", "k" + std::to_string(SeededValue(*position) % 7));
        t.payload.Set("v", SeededValue(*position));
        ++*position;
        return t;
      });
  auto summed =
      query->AddAggregate("agg", std::move(gen), KeyedSumSpec(50, 50), shards);
  query->AddSink("sink", std::move(summed), sink->AsSink());
}

/// Per-group sequence of (window_start, sum) in arrival order at the sink.
std::map<std::string, std::vector<std::pair<Timestamp, std::int64_t>>>
GroupSequences(const testutil::Collector& sink) {
  std::map<std::string, std::vector<std::pair<Timestamp, std::int64_t>>> by;
  for (const Tuple& t : sink.tuples()) {
    by[t.payload.Get("group").AsString()].emplace_back(
        t.payload.Get("window_start").AsInt(), t.payload.Get("sum").AsInt());
  }
  return by;
}

TEST(KeyedSharding, ShardedAggregateMatchesUnsharded) {
  std::map<std::string, std::vector<std::pair<Timestamp, std::int64_t>>>
      results[2];
  const int shard_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    Query query;
    testutil::Collector sink;
    BuildShardedAggPipeline(&query, 600, shard_counts[run], &sink);
    query.Run();
    results[run] = GroupSequences(sink);
  }
  ASSERT_FALSE(results[0].empty());
  // Same windows, same sums, and the same per-key emission order (a key
  // lives on exactly one shard, and the union keeps per-input order).
  EXPECT_EQ(results[1], results[0]);
}

TEST(KeyedSharding, ShardedAggregateRequiresKey) {
  Query query;
  auto gen = query.AddSource(
      "gen", []() -> std::optional<Tuple> { return std::nullopt; });
  AggregateSpec spec = KeyedSumSpec(10, 10);
  spec.key = nullptr;
  EXPECT_THROW((void)query.AddAggregate("agg", std::move(gen), std::move(spec), 2),
               std::invalid_argument);
}

TEST(KeyedSharding, ShardedJoinMatchesUnsharded) {
  auto build = [](Query* query, int shards, testutil::Collector* sink) {
    auto left_pos = std::make_shared<std::int64_t>(0);
    auto left = query->AddSource(
        "left", [left_pos]() -> std::optional<Tuple> {
          if (*left_pos >= 300) return std::nullopt;
          Tuple t = testutil::MakeTuple(*left_pos, SeededValue(*left_pos) % 5);
          t.stimulus = 1;
          t.payload.Set("l", *left_pos);
          ++*left_pos;
          return t;
        });
    auto right_pos = std::make_shared<std::int64_t>(0);
    auto right = query->AddSource(
        "right", [right_pos]() -> std::optional<Tuple> {
          if (*right_pos >= 300) return std::nullopt;
          Tuple t =
              testutil::MakeTuple(*right_pos, SeededValue(*right_pos + 7) % 5);
          t.stimulus = 1;
          t.payload.Set("r", *right_pos);
          ++*right_pos;
          return t;
        });
    JoinSpec spec;
    spec.window = 2;
    spec.key_left = [](const Tuple& t) { return std::to_string(t.job); };
    spec.key_right = [](const Tuple& t) { return std::to_string(t.job); };
    auto joined = query->AddJoin("join", std::move(left), std::move(right),
                                 std::move(spec), shards);
    query->AddSink("sink", std::move(joined), sink->AsSink());
  };
  // Joined pairs keyed (job | l | r); sequence per key must match.
  std::map<std::string, std::vector<Timestamp>> results[2];
  const int shard_counts[2] = {1, 3};
  for (int run = 0; run < 2; ++run) {
    Query query;
    testutil::Collector sink;
    build(&query, shard_counts[run], &sink);
    query.Run();
    for (const Tuple& t : sink.tuples()) {
      const std::string key = std::to_string(t.job) + "|" +
                              std::to_string(t.payload.Get("l").AsInt()) +
                              "|" +
                              std::to_string(t.payload.Get("r").AsInt());
      results[run][key].push_back(t.event_time);
    }
  }
  ASSERT_FALSE(results[0].empty());
  EXPECT_EQ(results[1], results[0]);
}

// ------------------------------------------------ checkpoint composition

void InstallPositionHooks(Query* query, const std::string& name,
                          std::shared_ptr<std::int64_t> position) {
  query->FindOperator(name)->SetStateHooks(
      [position](std::uint64_t, std::string* out) {
        codec::PutVarint64Signed(out, *position);
        return Status::Ok();
      },
      [position](std::string_view blob) {
        std::int64_t value = 0;
        if (!codec::GetVarint64Signed(&blob, &value)) {
          return Status::Corruption("gen snapshot");
        }
        *position = value;
        return Status::Ok();
      });
}

/// gen -> (pass -> tag: fusable chain) -> agg[shards] -> sink, with the
/// source pausing at `pause_at` until one epoch commits so run A always
/// checkpoints mid-stream.
void BuildCheckpointedPipeline(Query* query, int shards,
                               std::shared_ptr<std::int64_t> position,
                               std::int64_t tuples,
                               testutil::Collector* sink) {
  auto gen = query->AddSource(
      "gen", [position, tuples]() -> std::optional<Tuple> {
        if (*position >= tuples) return std::nullopt;
        Tuple t = testutil::MakeTuple(*position + 1);
        t.stimulus = *position + 1;
        t.payload.Set("k", "k" + std::to_string(SeededValue(*position) % 7));
        t.payload.Set("v", SeededValue(*position));
        ++*position;
        return t;
      });
  auto passed = query->AddFlatMap(
      "pass", std::move(gen),
      [](const Tuple& t) { return std::vector<Tuple>{t}; });
  auto tagged = query->AddFilter("tag", std::move(passed),
                                 [](const Tuple&) { return true; });
  auto summed = query->AddAggregate("agg", std::move(tagged),
                                    KeyedSumSpec(50, 50), shards);
  query->AddSink("sink", std::move(summed), sink->AsSink());
  InstallPositionHooks(query, "gen", position);
}

/// Uninterrupted reference for `tuples` seeded tuples through the
/// checkpointed pipeline shape.
std::map<std::string, std::vector<std::pair<Timestamp, std::int64_t>>>
CheckpointReference(std::int64_t tuples) {
  Query query;
  testutil::Collector sink;
  BuildCheckpointedPipeline(&query, 1, std::make_shared<std::int64_t>(0),
                            tuples, &sink);
  query.Run();
  return GroupSequences(sink);
}

/// Run A: emit `pause_at` tuples with fusion + `shards_a`, force one epoch
/// through mid-stream, end. Run B: rebuild with `shards_b`, recover, emit
/// the rest. Returns run B's output.
std::map<std::string, std::vector<std::pair<Timestamp, std::int64_t>>>
CheckpointRoundTrip(InMemoryCheckpointStore* store, int shards_a, int shards_b,
                    std::int64_t pause_at, std::int64_t tuples) {
  CheckpointerOptions cp_options;
  cp_options.interval_ms = 50;
  {
    QueryOptions options;
    options.enable_fusion = true;
    Query a(options);
    testutil::Collector sink_a;
    auto position = std::make_shared<std::int64_t>(0);
    std::atomic<bool> saw_epoch{false};
    auto gen = a.AddSource(
        "gen", [position, pause_at, &a, &saw_epoch]() -> std::optional<Tuple> {
          if (*position == pause_at) {
            // Barriers are injected by the source loop between calls, so
            // block here until the timer *requests* an epoch, then emit one
            // releasing tuple; the barrier follows it into the stream.
            if (!WaitUntil(
                    [&] { return a.checkpointer()->PendingEpoch() != 0; })) {
              return std::nullopt;
            }
          } else if (*position > pause_at) {
            // One tuple past the barrier: wait for the epoch to commit,
            // then end run A.
            saw_epoch = WaitUntil([&] {
              return a.checkpointer()->stats().epochs_completed >= 1;
            });
            return std::nullopt;
          }
          Tuple t = testutil::MakeTuple(*position + 1);
          t.stimulus = *position + 1;
          t.payload.Set("k", "k" + std::to_string(SeededValue(*position) % 7));
          t.payload.Set("v", SeededValue(*position));
          ++*position;
          return t;
        });
    auto passed = a.AddFlatMap(
        "pass", std::move(gen),
        [](const Tuple& t) { return std::vector<Tuple>{t}; });
    auto tagged = a.AddFilter("tag", std::move(passed),
                              [](const Tuple&) { return true; });
    auto summed = a.AddAggregate("agg", std::move(tagged), KeyedSumSpec(50, 50),
                                 shards_a);
    a.AddSink("sink", std::move(summed), sink_a.AsSink());
    InstallPositionHooks(&a, "gen", position);
    a.EnableCheckpointing(store, cp_options);
    a.Run();
    EXPECT_TRUE(saw_epoch) << "no checkpoint epoch completed in run A";
  }

  QueryOptions options;
  options.enable_fusion = true;
  Query b(options);
  testutil::Collector sink_b;
  auto position = std::make_shared<std::int64_t>(0);
  BuildCheckpointedPipeline(&b, shards_b, position, tuples, &sink_b);
  b.EnableCheckpointing(store, cp_options);
  const Status recovered = b.Recover();
  EXPECT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_GT(b.recovered_epoch(), 0u);
  EXPECT_GE(*position, 0);  // restored by the gen hook
  b.Run();
  return GroupSequences(sink_b);
}

/// Run B re-emits every window still open at the barrier plus everything
/// from replayed tuples; only windows fully closed (and emitted) by run A
/// before the barrier may be missing. So per group, run B's sequence must
/// be an exact suffix of the uninterrupted reference, and every skipped
/// window must end at or before the barrier's watermark (`pause_at` + 1
/// releasing tuple).
void ExpectRestoredSuffix(
    const std::map<std::string,
                   std::vector<std::pair<Timestamp, std::int64_t>>>& restored,
    const std::map<std::string,
                   std::vector<std::pair<Timestamp, std::int64_t>>>& reference,
    Timestamp barrier_watermark) {
  ASSERT_FALSE(reference.empty());
  ASSERT_EQ(restored.size(), reference.size());
  for (const auto& [group, ref_seq] : reference) {
    const auto it = restored.find(group);
    ASSERT_TRUE(it != restored.end()) << "group " << group << " lost";
    const auto& got = it->second;
    ASSERT_LE(got.size(), ref_seq.size()) << "group " << group;
    const std::size_t skip = ref_seq.size() - got.size();
    for (std::size_t i = 0; i < skip; ++i) {
      // Window [start, start+50) was closed pre-barrier.
      EXPECT_LE(ref_seq[i].first + 50, barrier_watermark)
          << "group " << group << ": window not emitted by either run";
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], ref_seq[skip + i]) << "group " << group;
    }
  }
}

TEST(PlanRewriteCheckpoint, FusedAndShardedRestoreMidStream) {
  InMemoryCheckpointStore store;
  const auto reference = CheckpointReference(600);
  const auto restored = CheckpointRoundTrip(&store, 2, 2, 300, 600);
  ExpectRestoredSuffix(restored, reference, 301);
}

TEST(PlanRewriteCheckpoint, RestoreOntoMoreShardsRehashes) {
  InMemoryCheckpointStore store;
  const auto reference = CheckpointReference(600);
  const auto restored = CheckpointRoundTrip(&store, 2, 3, 300, 600);
  ExpectRestoredSuffix(restored, reference, 301);
}

TEST(PlanRewriteCheckpoint, RestoreOntoFewerShardsRehashes) {
  InMemoryCheckpointStore store;
  const auto reference = CheckpointReference(600);
  const auto restored = CheckpointRoundTrip(&store, 4, 1, 300, 600);
  ExpectRestoredSuffix(restored, reference, 301);
}

TEST(PlanRewriteCheckpoint, UnshardedSnapshotRestoresOntoShards) {
  InMemoryCheckpointStore store;
  const auto reference = CheckpointReference(600);
  const auto restored = CheckpointRoundTrip(&store, 1, 4, 300, 600);
  ExpectRestoredSuffix(restored, reference, 301);
}

// --------------------------------------------------- reshard helper units

TEST(ReshardSnapshots, AggregateWindowsRehashAndHorizonMerges) {
  // Two old shard blobs, hand-built in the aggregate wire format.
  auto encode = [](Timestamp horizon,
                   std::vector<std::tuple<Timestamp, std::string, std::string>>
                       windows) {
    std::string blob;
    codec::PutVarint64Signed(&blob, horizon);
    codec::PutVarint64(&blob, windows.size());
    for (const auto& [start, key, acc] : windows) {
      codec::PutVarint64Signed(&blob, start);
      codec::PutLengthPrefixed(&blob, key);
      codec::PutVarint64Signed(&blob, 11);  // max_stimulus
      codec::PutVarint64Signed(&blob, 12);  // max_event_time
      codec::PutLengthPrefixed(&blob, acc);
    }
    return blob;
  };
  const std::vector<std::string> old_blobs{
      encode(100, {{0, "a", "accA"}, {50, "c", "accC"}}),
      encode(150, {{0, "b", "accB"}}),
  };
  std::vector<std::string> new_blobs;
  ASSERT_TRUE(ReshardAggregateSnapshots(old_blobs, 3, &new_blobs).ok());
  ASSERT_EQ(new_blobs.size(), 3u);

  std::hash<std::string> hasher;
  std::map<std::string, std::pair<Timestamp, std::string>> windows_seen;
  for (std::size_t s = 0; s < 3; ++s) {
    std::string_view in = new_blobs[s];
    Timestamp horizon = 0;
    std::uint64_t count = 0;
    ASSERT_TRUE(codec::GetVarint64Signed(&in, &horizon));
    ASSERT_TRUE(codec::GetVarint64(&in, &count));
    // Every new shard carries the max old horizon (duplicate-emission
    // protection must survive the re-hash).
    EXPECT_EQ(horizon, 150);
    for (std::uint64_t i = 0; i < count; ++i) {
      Timestamp start = 0;
      std::string_view key, acc;
      Timestamp ms = 0, met = 0;
      ASSERT_TRUE(codec::GetVarint64Signed(&in, &start));
      ASSERT_TRUE(codec::GetLengthPrefixed(&in, &key));
      ASSERT_TRUE(codec::GetVarint64Signed(&in, &ms));
      ASSERT_TRUE(codec::GetVarint64Signed(&in, &met));
      ASSERT_TRUE(codec::GetLengthPrefixed(&in, &acc));
      // The window landed on the shard its key hashes to.
      EXPECT_EQ(s, hasher(std::string(key)) % 3);
      windows_seen[std::string(key)] = {start, std::string(acc)};
    }
    EXPECT_TRUE(in.empty());
  }
  ASSERT_EQ(windows_seen.size(), 3u);  // nothing lost, nothing duplicated
  EXPECT_EQ(windows_seen["a"], (std::pair<Timestamp, std::string>{0, "accA"}));
  EXPECT_EQ(windows_seen["b"], (std::pair<Timestamp, std::string>{0, "accB"}));
  EXPECT_EQ(windows_seen["c"], (std::pair<Timestamp, std::string>{50, "accC"}));
}

TEST(ReshardSnapshots, DuplicateWindowAcrossShardsIsCorruption) {
  std::string blob;
  codec::PutVarint64Signed(&blob, 0);
  codec::PutVarint64(&blob, 1);
  codec::PutVarint64Signed(&blob, 0);
  codec::PutLengthPrefixed(&blob, "dup");
  codec::PutVarint64Signed(&blob, 0);
  codec::PutVarint64Signed(&blob, 0);
  codec::PutLengthPrefixed(&blob, "acc");
  std::vector<std::string> new_blobs;
  const Status s = ReshardAggregateSnapshots({blob, blob}, 2, &new_blobs);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ReshardSnapshots, JoinBuffersRehashSortAndKeepMinWatermark) {
  auto encode = [](std::vector<std::pair<std::string, Timestamp>> left,
                   Timestamp max_left, Timestamp max_right) {
    std::string blob;
    codec::PutVarint64(&blob, left.size());
    for (const auto& [key, event_time] : left) {
      codec::PutLengthPrefixed(&blob, key);
      Tuple t = testutil::MakeTuple(event_time);
      EXPECT_TRUE(EncodeTupleSnapshot(t, &blob).ok());
    }
    codec::PutVarint64(&blob, 0);  // right side empty
    codec::PutVarint64Signed(&blob, max_left);
    codec::PutVarint64Signed(&blob, max_right);
    return blob;
  };
  const std::vector<std::string> old_blobs{
      encode({{"a", 30}, {"a", 40}}, 40, 90),
      encode({{"b", 10}}, 10, 70),
  };
  std::vector<std::string> new_blobs;
  ASSERT_TRUE(ReshardJoinSnapshots(old_blobs, 1, &new_blobs).ok());
  ASSERT_EQ(new_blobs.size(), 1u);

  std::string_view in = new_blobs[0];
  std::uint64_t count = 0;
  ASSERT_TRUE(codec::GetVarint64(&in, &count));
  ASSERT_EQ(count, 3u);
  Timestamp last = std::numeric_limits<Timestamp>::min();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string_view key;
    ASSERT_TRUE(codec::GetLengthPrefixed(&in, &key));
    Tuple t;
    ASSERT_TRUE(DecodeTupleSnapshot(&in, &t).ok());
    // Merged buffer must be event-time ordered (the deque's front-oldest
    // invariant that Evict relies on).
    EXPECT_GE(t.event_time, last);
    last = t.event_time;
  }
  ASSERT_TRUE(codec::GetVarint64(&in, &count));
  EXPECT_EQ(count, 0u);
  Timestamp max_left = 0, max_right = 0;
  ASSERT_TRUE(codec::GetVarint64Signed(&in, &max_left));
  ASSERT_TRUE(codec::GetVarint64Signed(&in, &max_right));
  EXPECT_TRUE(in.empty());
  // Min over old shards: conservative eviction can never drop a match.
  EXPECT_EQ(max_left, 10);
  EXPECT_EQ(max_right, 70);
}

}  // namespace
}  // namespace strata::spe
