// Epoch-barrier checkpointing: codec round-trips, coordinator state machine,
// barrier alignment, and full query checkpoint -> crash -> recover flows.
#include "spe/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "common/codec.hpp"
#include "spe/aggregates.hpp"
#include "spe/query.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using namespace std::chrono_literals;

/// Spin until `pred` holds or `timeout` elapses; returns the predicate.
template <typename Pred>
bool WaitUntil(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// ----------------------------------------------------------- tuple codec

TEST(TupleSnapshotCodec, RoundTripPreservesFieldsAndCursor) {
  Tuple a = testutil::MakeTuple(123, 7, 9);
  a.specimen = 3;
  a.portion = 2;
  a.stimulus = 456;
  a.payload.Set("count", std::int64_t{42});
  a.payload.Set("mean", 1.5);
  a.payload.Set("tag", "porosity");
  a.payload.Set("ok", true);

  Tuple b = testutil::MakeTuple(-10, 1, 0);  // negative times survive zigzag

  std::string blob;
  ASSERT_TRUE(EncodeTupleSnapshot(a, &blob).ok());
  ASSERT_TRUE(EncodeTupleSnapshot(b, &blob).ok());

  std::string_view cursor(blob);
  Tuple da;
  Tuple db;
  ASSERT_TRUE(DecodeTupleSnapshot(&cursor, &da).ok());
  ASSERT_TRUE(DecodeTupleSnapshot(&cursor, &db).ok());
  EXPECT_TRUE(cursor.empty());

  EXPECT_EQ(da.event_time, a.event_time);
  EXPECT_EQ(da.job, a.job);
  EXPECT_EQ(da.layer, a.layer);
  EXPECT_EQ(da.specimen, a.specimen);
  EXPECT_EQ(da.portion, a.portion);
  EXPECT_EQ(da.stimulus, a.stimulus);
  EXPECT_EQ(da.payload, a.payload);
  EXPECT_EQ(db.event_time, b.event_time);
  EXPECT_EQ(db.payload, b.payload);
}

struct FakeImage final : OpaqueValue {
  [[nodiscard]] const char* TypeName() const noexcept override {
    return "fake-image";
  }
  [[nodiscard]] std::size_t ApproxBytes() const noexcept override { return 64; }
};

TEST(TupleSnapshotCodec, OpaquePayloadCannotBeCheckpointed) {
  Tuple t = testutil::MakeTuple(1);
  t.payload.Set("image", OpaqueRef(std::make_shared<FakeImage>()));
  std::string blob;
  EXPECT_FALSE(EncodeTupleSnapshot(t, &blob).ok());
}

TEST(TupleSnapshotCodec, TruncatedInputIsCorruption) {
  Tuple t = testutil::MakeValueTuple(5, 2.5);
  std::string blob;
  ASSERT_TRUE(EncodeTupleSnapshot(t, &blob).ok());
  std::string_view cursor(std::string_view(blob).substr(0, 2));
  Tuple out;
  EXPECT_FALSE(DecodeTupleSnapshot(&cursor, &out).ok());
}

// -------------------------------------------------------------- manifest

TEST(CheckpointManifest, RoundTrip) {
  CheckpointManifest manifest;
  manifest.epoch = 7;
  manifest.operators.push_back({"source", "pos=42"});
  manifest.operators.push_back({"agg", std::string("\x00\x01raw", 5)});
  manifest.operators.push_back({"sink", ""});  // finished/stateless operator

  std::string blob;
  manifest.EncodeTo(&blob);
  auto decoded = CheckpointManifest::Decode(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 7u);
  ASSERT_EQ(decoded->operators.size(), 3u);
  EXPECT_EQ(decoded->operators[0].name, "source");
  EXPECT_EQ(decoded->operators[0].blob, "pos=42");
  EXPECT_EQ(decoded->operators[1].blob, std::string("\x00\x01raw", 5));
  EXPECT_EQ(decoded->operators[2].blob, "");
}

TEST(CheckpointManifest, CorruptionIsRejected) {
  CheckpointManifest manifest;
  manifest.epoch = 3;
  manifest.operators.push_back({"op", "state"});
  std::string blob;
  manifest.EncodeTo(&blob);

  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string bad = blob;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(CheckpointManifest::Decode(bad).ok())
        << "bit flip at byte " << i << " went undetected";
  }
  EXPECT_FALSE(CheckpointManifest::Decode("").ok());
  EXPECT_FALSE(
      CheckpointManifest::Decode(std::string_view(blob).substr(0, 3)).ok());
}

// ----------------------------------------------------------- coordinator

TEST(Checkpointer, EpochCompletesWhenAllOperatorsReport) {
  InMemoryCheckpointStore store;
  CheckpointerOptions options;
  options.interval_ms = 5;
  Checkpointer cp(&store, options);
  cp.RegisterOperator("a");
  cp.RegisterOperator("b");
  cp.Start();

  ASSERT_TRUE(WaitUntil([&] { return cp.PendingEpoch() != 0; }));
  const std::uint64_t epoch = cp.PendingEpoch();
  cp.ReportSnapshot("a", epoch, "A");
  EXPECT_EQ(cp.stats().epochs_completed, 0u);  // still waiting on b
  cp.ReportSnapshot("b", epoch, "B");
  ASSERT_TRUE(WaitUntil([&] { return cp.stats().epochs_completed >= 1; }));
  cp.Stop();

  const Checkpointer::Stats stats = cp.stats();
  EXPECT_EQ(stats.last_completed_epoch, epoch);
  EXPECT_EQ(stats.consecutive_failures, 0u);
  EXPECT_FALSE(stats.degraded);
  EXPECT_GT(stats.bytes_persisted, 0u);
  EXPECT_GE(stats.last_completed_age_us, 0);

  auto latest = store.LatestEpoch();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, epoch);
  auto blob = store.Get(*latest);
  ASSERT_TRUE(blob.ok());
  auto manifest = CheckpointManifest::Decode(*blob);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->operators.size(), 2u);
  EXPECT_EQ(manifest->operators[0].blob, "A");
  EXPECT_EQ(manifest->operators[1].blob, "B");
}

TEST(Checkpointer, SilentOperatorTimesOutAndTripsDegraded) {
  InMemoryCheckpointStore store;
  CheckpointerOptions options;
  options.interval_ms = 5;
  options.epoch_timeout_ms = 20;
  options.failure_warn_threshold = 1;
  Checkpointer cp(&store, options);
  cp.RegisterOperator("a");
  cp.RegisterOperator("stuck");
  cp.Start();

  ASSERT_TRUE(WaitUntil([&] { return cp.PendingEpoch() != 0; }));
  cp.ReportSnapshot("a", cp.PendingEpoch(), "A");  // "stuck" never reports
  ASSERT_TRUE(WaitUntil([&] {
    const Checkpointer::Stats s = cp.stats();
    return s.epochs_failed >= 1 && s.degraded;
  }));
  cp.Stop();

  EXPECT_EQ(cp.stats().epochs_completed, 0u);
  EXPECT_TRUE(store.LatestEpoch().status().IsNotFound());
}

TEST(Checkpointer, DegradedFlagIsSticky) {
  InMemoryCheckpointStore store;
  CheckpointerOptions options;
  options.interval_ms = 5;
  options.epoch_timeout_ms = 10;
  options.failure_warn_threshold = 1;
  Checkpointer cp(&store, options);
  cp.RegisterOperator("a");
  cp.Start();

  // Let one epoch fail, then complete the next: degraded must stay up.
  ASSERT_TRUE(WaitUntil([&] { return cp.stats().epochs_failed >= 1; }));
  ASSERT_TRUE(WaitUntil([&] {
    const std::uint64_t epoch = cp.PendingEpoch();
    if (epoch == 0 || cp.stats().epochs_failed == 0) return false;
    cp.ReportSnapshot("a", epoch, "A");
    return cp.stats().epochs_completed >= 1;
  }));
  cp.Stop();

  const Checkpointer::Stats stats = cp.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.consecutive_failures, 0u);  // reset by the success
}

TEST(Checkpointer, SnapshotFailureFailsEpochImmediately) {
  InMemoryCheckpointStore store;
  CheckpointerOptions options;
  options.interval_ms = 5;
  options.epoch_timeout_ms = 60'000;  // only an explicit failure can fail it
  Checkpointer cp(&store, options);
  cp.RegisterOperator("a");
  cp.RegisterOperator("b");
  cp.Start();

  ASSERT_TRUE(WaitUntil([&] { return cp.PendingEpoch() != 0; }));
  cp.ReportSnapshotFailure("b", cp.PendingEpoch(),
                           Status::InvalidArgument("opaque payload"));
  ASSERT_TRUE(WaitUntil([&] { return cp.stats().epochs_failed >= 1; }));
  cp.Stop();
  EXPECT_EQ(cp.stats().epochs_completed, 0u);
}

TEST(Checkpointer, FinishedOperatorDoesNotGateEpochs) {
  InMemoryCheckpointStore store;
  CheckpointerOptions options;
  options.interval_ms = 5;
  Checkpointer cp(&store, options);
  cp.RegisterOperator("live");
  cp.RegisterOperator("gone");
  cp.OnOperatorFinished("gone");
  cp.Start();

  ASSERT_TRUE(WaitUntil([&] { return cp.PendingEpoch() != 0; }));
  cp.ReportSnapshot("live", cp.PendingEpoch(), "L");
  ASSERT_TRUE(WaitUntil([&] { return cp.stats().epochs_completed >= 1; }));
  cp.Stop();

  auto blob = store.Get(cp.stats().last_completed_epoch);
  ASSERT_TRUE(blob.ok());
  auto manifest = CheckpointManifest::Decode(*blob);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->operators.size(), 2u);
  EXPECT_EQ(manifest->operators[1].name, "gone");
  EXPECT_TRUE(manifest->operators[1].blob.empty());  // restores as fresh
}

TEST(Checkpointer, StaleReportsAreDropped) {
  InMemoryCheckpointStore store;
  CheckpointerOptions options;
  options.interval_ms = 5;
  Checkpointer cp(&store, options);
  cp.RegisterOperator("a");
  cp.Start();
  ASSERT_TRUE(WaitUntil([&] { return cp.PendingEpoch() != 0; }));
  const std::uint64_t epoch = cp.PendingEpoch();
  cp.ReportSnapshot("a", epoch + 17, "wrong epoch");  // dropped
  EXPECT_EQ(cp.stats().epochs_completed, 0u);
  cp.ReportSnapshot("a", epoch, "right epoch");
  ASSERT_TRUE(WaitUntil([&] { return cp.stats().epochs_completed >= 1; }));
  cp.Stop();
}

TEST(Checkpointer, SetBaseEpochResumesNumbering) {
  InMemoryCheckpointStore store;
  CheckpointerOptions options;
  options.interval_ms = 5;
  Checkpointer cp(&store, options);
  cp.RegisterOperator("a");
  cp.SetBaseEpoch(41);
  cp.Start();
  ASSERT_TRUE(WaitUntil([&] { return cp.PendingEpoch() != 0; }));
  EXPECT_EQ(cp.PendingEpoch(), 42u);
  cp.Stop();
}

// -------------------------------------------------------- barrier aligner

TEST(BarrierAligner, AlignsEqualEpochsAndReplaysHeldTuples) {
  BarrierAligner aligner(2);
  TupleBatch held;
  held.push_back(testutil::MakeTuple(10));
  held.push_back(testutil::MakeTuple(11));

  aligner.Arrive(0, 1, std::move(held));
  EXPECT_TRUE(aligner.blocked(0));
  EXPECT_FALSE(aligner.blocked(1));
  EXPECT_EQ(aligner.TryComplete(), 0u);  // waiting on input 1

  aligner.Arrive(1, 1, TupleBatch{});
  EXPECT_EQ(aligner.TryComplete(), 1u);
  EXPECT_FALSE(aligner.blocked(0));
  EXPECT_FALSE(aligner.blocked(1));

  const TupleBatch replay = aligner.TakeHeld(0);
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay[0].event_time, 10);
  EXPECT_EQ(replay[1].event_time, 11);
  EXPECT_TRUE(aligner.TakeHeld(0).empty());  // consumed
}

TEST(BarrierAligner, SkewResolvesTowardHighestEpoch) {
  BarrierAligner aligner(2);
  aligner.Arrive(0, 2, TupleBatch{});
  aligner.Arrive(1, 1, TupleBatch{});
  // Input 1 is behind: it gets unblocked to catch up, nothing completes.
  EXPECT_EQ(aligner.TryComplete(), 0u);
  EXPECT_TRUE(aligner.blocked(0));
  EXPECT_FALSE(aligner.blocked(1));

  aligner.Arrive(1, 2, TupleBatch{});
  EXPECT_EQ(aligner.TryComplete(), 2u);
}

TEST(BarrierAligner, ClosedInputStopsGatingAlignment) {
  BarrierAligner aligner(2);
  aligner.Arrive(0, 3, TupleBatch{});
  EXPECT_EQ(aligner.TryComplete(), 0u);

  aligner.MarkDone(1);
  EXPECT_TRUE(aligner.done(1));
  EXPECT_FALSE(aligner.AllDone());
  EXPECT_EQ(aligner.TryComplete(), 3u);  // only live input has the barrier

  aligner.MarkDone(0);
  EXPECT_TRUE(aligner.AllDone());
  EXPECT_EQ(aligner.TryComplete(), 0u);  // no live inputs remain
}

// --------------------------------------------------- query-level recovery

/// Shared generator position for the recovery tests: the source snapshot
/// hook encodes the next event time to emit; restore seeks back to it.
struct GeneratorState {
  std::int64_t next = 0;
};

void InstallGeneratorHooks(Query* query, const std::string& name,
                           std::shared_ptr<GeneratorState> state) {
  Operator* op = query->FindOperator(name);
  ASSERT_NE(op, nullptr);
  op->SetStateHooks(
      [state](std::uint64_t, std::string* out) {
        codec::PutVarint64(out, static_cast<std::uint64_t>(state->next));
        return Status::Ok();
      },
      [state](std::string_view blob) {
        std::uint64_t next = 0;
        if (!codec::GetVarint64(&blob, &next) || !blob.empty()) {
          return Status::Corruption("generator snapshot");
        }
        state->next = static_cast<std::int64_t>(next);
        return Status::Ok();
      });
}

/// source("gen") -> tumbling count(100) -> sink; the shape both halves of
/// the checkpoint/recover pair rebuild.
StreamPtr BuildCountPipeline(Query* query, SourceFn source,
                             testutil::Collector* sink) {
  StreamPtr src = query->AddSource("gen", std::move(source));
  StreamPtr counts =
      query->AddAggregate("count", src, CountAggregate(WindowSpec{100, 100}));
  query->AddSink("collect", counts, sink->AsSink());
  return counts;
}

TEST(QueryCheckpoint, RecoverResumesSourceAndWindowState) {
  InMemoryCheckpointStore store;
  CheckpointerOptions cp_options;
  cp_options.interval_ms = 200;  // one forced epoch; no trailing epoch races

  // --- run A: emit 0..250, force one epoch through, end the query ---
  auto state_a = std::make_shared<GeneratorState>();
  testutil::Collector sink_a;
  Query a;
  std::atomic<bool> saw_epoch{false};
  BuildCountPipeline(
      &a,
      [state_a, &a, &saw_epoch]() -> std::optional<Tuple> {
        if (state_a->next < 250) {
          return testutil::MakeTuple(state_a->next++);
        }
        if (state_a->next == 250) {
          // Wait for a barrier request, emit one tuple past it, and let the
          // source loop inject the barrier behind that tuple.
          if (!WaitUntil(
                  [&] { return a.checkpointer()->PendingEpoch() != 0; })) {
            return std::nullopt;
          }
          return testutil::MakeTuple(state_a->next++);
        }
        // Hold the query open until the epoch commits, then end naturally.
        saw_epoch = WaitUntil(
            [&] { return a.checkpointer()->stats().epochs_completed >= 1; });
        return std::nullopt;
      },
      &sink_a);
  InstallGeneratorHooks(&a, "gen", state_a);
  a.EnableCheckpointing(&store, cp_options);
  a.Run();
  ASSERT_TRUE(saw_epoch) << "no checkpoint epoch completed in run A";
  ASSERT_TRUE(store.LatestEpoch().ok());

  // --- run B: fresh DAG, recover, emit the rest ---
  auto state_b = std::make_shared<GeneratorState>();
  testutil::Collector sink_b;
  Query b;
  std::int64_t first_emitted = -1;
  BuildCountPipeline(
      &b,
      [state_b, &first_emitted]() -> std::optional<Tuple> {
        if (state_b->next >= 500) return std::nullopt;
        if (first_emitted < 0) first_emitted = state_b->next;
        return testutil::MakeTuple(state_b->next++);
      },
      &sink_b);
  InstallGeneratorHooks(&b, "gen", state_b);
  b.EnableCheckpointing(&store, cp_options);
  ASSERT_TRUE(b.Recover().ok());
  ASSERT_GT(b.recovered_epoch(), 0u);
  b.Run();

  // The source resumed exactly where the snapshot left off (A emitted
  // 0..250 and the barrier rode behind the last tuple).
  EXPECT_EQ(first_emitted, 251);

  // Window [200,300) proves the cut is consistent: its count is the
  // restored accumulator (201..250 from A) plus the replayed remainder
  // (251..299) — exactly 100, no loss, no duplication.
  std::map<std::int64_t, std::int64_t> windows;
  for (const Tuple& t : sink_b.tuples()) {
    windows[t.payload.Get("window_start").AsInt()] =
        t.payload.Get("count").AsInt();
  }
  ASSERT_TRUE(windows.count(200)) << "window [200,300) never closed";
  EXPECT_EQ(windows[200], 100);
  EXPECT_EQ(windows[300], 100);
  EXPECT_EQ(windows[400], 100);
  EXPECT_FALSE(windows.count(0)) << "recovery replayed pre-checkpoint data";
  EXPECT_FALSE(windows.count(100));
}

TEST(QueryCheckpoint, RecoverOnEmptyStoreIsFreshStart) {
  InMemoryCheckpointStore store;
  testutil::Collector sink;
  auto state = std::make_shared<GeneratorState>();
  Query query;
  BuildCountPipeline(
      &query,
      [state]() -> std::optional<Tuple> {
        if (state->next >= 100) return std::nullopt;
        return testutil::MakeTuple(state->next++);
      },
      &sink);
  query.EnableCheckpointing(&store);
  ASSERT_TRUE(query.Recover().ok());
  EXPECT_EQ(query.recovered_epoch(), 0u);
  query.Run();
  ASSERT_EQ(sink.size(), 1u);  // [0,100) flushed at end of stream
  EXPECT_EQ(sink.tuples()[0].payload.Get("count").AsInt(), 100);
}

// ------------------------------------------------ fan-in / fan-out flows

TEST(QueryCheckpoint, UnionAlignsBarriersWithoutLossOrDuplication) {
  InMemoryCheckpointStore store;
  CheckpointerOptions cp_options;
  cp_options.interval_ms = 10;

  constexpr std::int64_t kPerSource = 200;
  auto make_source = [](std::int64_t job, std::chrono::microseconds delay) {
    auto next = std::make_shared<std::int64_t>(0);
    return [next, job, delay]() -> std::optional<Tuple> {
      if (*next >= kPerSource) return std::nullopt;
      std::this_thread::sleep_for(delay);  // keep several epochs in flight
      return testutil::MakeTuple((*next)++, job);
    };
  };

  testutil::Collector sink;
  Query query;
  StreamPtr fast = query.AddSource("fast", make_source(1, 100us));
  StreamPtr slow = query.AddSource("slow", make_source(2, 400us));
  StreamPtr merged = query.AddUnion("merge", {fast, slow});
  query.AddSink("collect", merged, sink.AsSink());
  query.EnableCheckpointing(&store, cp_options);
  query.Run();

  // Exactly-once through the aligner: every (source, seq) pair seen once.
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (const Tuple& t : sink.tuples()) {
    EXPECT_TRUE(seen.emplace(t.job, t.event_time).second)
        << "duplicate tuple job=" << t.job << " t=" << t.event_time;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(2 * kPerSource));
  EXPECT_GE(query.checkpointer()->stats().epochs_completed, 1u)
      << "test never exercised an aligned epoch";
}

TEST(QueryCheckpoint, SlowInputTimesOutEpochButDataKeepsFlowing) {
  InMemoryCheckpointStore store;
  CheckpointerOptions cp_options;
  cp_options.interval_ms = 10;
  cp_options.epoch_timeout_ms = 50;
  cp_options.failure_warn_threshold = 1;

  constexpr std::int64_t kTuples = 100;
  std::atomic<bool> release{false};

  testutil::Collector sink;
  Query query;
  auto emitted = std::make_shared<std::int64_t>(0);
  StreamPtr live = query.AddSource(
      "live", [emitted, &release]() -> std::optional<Tuple> {
        if (*emitted < kTuples) {
          std::this_thread::sleep_for(1ms);  // stay alive across epochs
          return testutil::MakeTuple((*emitted)++, 1);
        }
        // Drained: park (inside the fn, so no further barriers) until the
        // stuck partner is released, then end.
        WaitUntil([&] { return release.load(); }, 30000ms);
        return std::nullopt;
      });
  StreamPtr stuck =
      query.AddSource("stuck", [&release]() -> std::optional<Tuple> {
        // Never emits, never injects a barrier: the union can never align.
        WaitUntil([&] { return release.load(); }, 30000ms);
        return std::nullopt;
      });
  StreamPtr merged = query.AddUnion("merge", {live, stuck});
  query.AddSink("collect", merged, sink.AsSink());
  query.EnableCheckpointing(&store, cp_options);
  query.Start();

  // The stuck input parks the aligner; the coordinator times the epoch out
  // and flags degradation — the query itself must stay up.
  ASSERT_TRUE(WaitUntil([&] {
    const Checkpointer::Stats s = query.checkpointer()->stats();
    return s.epochs_failed >= 1 && s.degraded;
  }));
  EXPECT_EQ(query.checkpointer()->stats().epochs_completed, 0u);

  release = true;
  query.Join();

  // Once the stuck input closed, the aligner stopped waiting on it and the
  // held tuples were replayed: nothing the live source emitted is lost.
  EXPECT_EQ(sink.size(), static_cast<std::size_t>(kTuples));
}

TEST(QueryCheckpoint, StopWhileCheckpointingFanOutExitsCleanly) {
  InMemoryCheckpointStore store;
  CheckpointerOptions cp_options;
  cp_options.interval_ms = 5;

  testutil::Collector left;
  testutil::Collector right;
  Query query;
  auto next = std::make_shared<std::int64_t>(0);
  StreamPtr src = query.AddSource("gen", [next]() -> std::optional<Tuple> {
    std::this_thread::sleep_for(100us);
    return testutil::MakeTuple((*next)++, (*next) % 4);
  });
  StreamPtr mapped = query.AddFlatMap(
      "widen", src,
      [](const Tuple& t) { return std::vector<Tuple>{t}; },
      /*parallelism=*/2, [](const Tuple& t) { return std::to_string(t.job); });
  std::vector<StreamPtr> copies = query.AddSplit("tee", mapped, 2);
  query.AddSink("left", copies[0], left.AsSink());
  query.AddSink("right", copies[1], right.AsSink());
  query.EnableCheckpointing(&store, cp_options);

  query.Start();
  ASSERT_TRUE(WaitUntil(
      [&] { return query.checkpointer()->stats().epochs_completed >= 2; }));
  query.Stop();  // barriers may be mid-flight through router/union/split
  query.Join();

  // Fan-out delivered identical streams; barriers never leaked into sinks.
  EXPECT_EQ(left.size(), right.size());
  EXPECT_GT(left.size(), 0u);
  for (const Tuple& t : left.tuples()) EXPECT_FALSE(t.IsBarrier());
}

}  // namespace
}  // namespace strata::spe
