#include "spe/stream.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"

namespace strata::spe {
namespace {

Tuple TupleAt(Timestamp t) {
  Tuple tuple;
  tuple.event_time = t;
  return tuple;
}

TEST(Stream, PushPopCountsFlow) {
  Stream stream("s", 8);
  ASSERT_TRUE(stream.Push(TupleAt(1)).ok());
  ASSERT_TRUE(stream.Push(TupleAt(2)).ok());
  EXPECT_EQ(stream.pushed(), 2u);
  EXPECT_EQ(stream.popped(), 0u);
  EXPECT_EQ(stream.depth(), 2u);

  auto t = stream.Pop();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->event_time, 1);
  EXPECT_EQ(stream.popped(), 1u);
  EXPECT_EQ(stream.depth(), 1u);
}

TEST(Stream, CapacityReported) {
  Stream stream("s", 16);
  EXPECT_EQ(stream.capacity(), 16u);
  EXPECT_EQ(stream.name(), "s");
}

TEST(Stream, DrainedSemantics) {
  Stream stream("s", 4);
  ASSERT_TRUE(stream.Push(TupleAt(1)).ok());
  EXPECT_FALSE(stream.closed());
  EXPECT_FALSE(stream.drained());
  stream.Close();
  EXPECT_TRUE(stream.closed());
  EXPECT_FALSE(stream.drained());  // still holds a tuple
  EXPECT_TRUE(stream.Pop().has_value());
  EXPECT_TRUE(stream.drained());
  EXPECT_FALSE(stream.Pop().has_value());
}

TEST(Stream, PushAfterCloseFails) {
  Stream stream("s", 4);
  stream.Close();
  EXPECT_TRUE(stream.Push(TupleAt(1)).IsClosed());
  EXPECT_EQ(stream.pushed(), 0u);  // failed pushes do not count
}

TEST(Stream, PopForTimesOutOnEmpty) {
  Stream stream("s", 4);
  EXPECT_FALSE(stream.PopFor(std::chrono::microseconds(5'000)).has_value());
}

TEST(Stream, TupleApproxBytesIncludesPayload) {
  Tuple t;
  EXPECT_GE(t.ApproxBytes(), sizeof(Tuple));
  t.payload.Set("key", std::string(1000, 'x'));
  EXPECT_GT(t.ApproxBytes(), 1000u);
}

TEST(Stream, TupleToStringMentionsMetadata) {
  Tuple t;
  t.event_time = 5;
  t.job = 2;
  t.layer = 3;
  t.specimen = 4;
  const std::string s = t.ToString();
  EXPECT_NE(s.find("t=5"), std::string::npos);
  EXPECT_NE(s.find("job=2"), std::string::npos);
  EXPECT_NE(s.find("layer=3"), std::string::npos);
  EXPECT_NE(s.find("spec=4"), std::string::npos);
}

TEST(Stream, CombineStimulusTakesMax) {
  EXPECT_EQ(CombineStimulus(5, 9), 9);
  EXPECT_EQ(CombineStimulus(9, 5), 9);
  EXPECT_EQ(CombineStimulus(0, 0), 0);
}

TEST(Stream, BatchApiCountsFlowPerTuple) {
  Stream stream("s", 8);
  TupleBatch batch;
  for (Timestamp t = 1; t <= 5; ++t) batch.push_back(TupleAt(t));
  std::size_t delivered = 0;
  ASSERT_TRUE(stream.PushBatch(&batch, &delivered).ok());
  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(stream.pushed(), 5u);
  EXPECT_EQ(stream.depth(), 5u);

  auto out = stream.PopBatch();
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 5u);
  for (Timestamp t = 1; t <= 5; ++t) {
    EXPECT_EQ((*out)[static_cast<std::size_t>(t - 1)].event_time, t);
  }
  EXPECT_EQ(stream.popped(), 5u);

  // The consumer-side drain size feeds the batch-size histogram.
  const Histogram sizes = stream.BatchSizeSnapshot();
  EXPECT_EQ(sizes.count(), 1u);
  EXPECT_EQ(sizes.max(), 5);
}

TEST(Stream, PopBatchRespectsMaxTuples) {
  Stream stream("s", 8);
  TupleBatch batch;
  for (Timestamp t = 1; t <= 6; ++t) batch.push_back(TupleAt(t));
  ASSERT_TRUE(stream.PushBatch(&batch).ok());
  auto out = stream.PopBatch(/*max_tuples=*/4);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 4u);
  EXPECT_EQ(stream.depth(), 2u);
}

TEST(Stream, PushBatchIntoClosedCountsDiscarded) {
  Stream stream("s", 4);
  stream.Close();
  TupleBatch batch;
  for (Timestamp t = 1; t <= 3; ++t) batch.push_back(TupleAt(t));
  std::size_t delivered = 99;
  EXPECT_TRUE(stream.PushBatch(&batch, &delivered).IsClosed());
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(stream.pushed(), 0u);
  EXPECT_EQ(stream.discarded(), 3u);
  EXPECT_TRUE(stream.Push(TupleAt(9)).IsClosed());
  EXPECT_EQ(stream.discarded(), 4u);
}

TEST(Stream, TryEnableSpscOnlyBeforeTraffic) {
  Stream stream("s", 8);
  ASSERT_TRUE(stream.Push(TupleAt(1)).ok());
  EXPECT_FALSE(stream.TryEnableSpsc());  // already pushed to
  EXPECT_FALSE(stream.spsc());

  Stream fresh("f", 8);
  EXPECT_TRUE(fresh.TryEnableSpsc());
  EXPECT_TRUE(fresh.spsc());
  EXPECT_TRUE(fresh.TryEnableSpsc());  // idempotent

  Stream closed("c", 8);
  closed.Close();
  EXPECT_FALSE(closed.TryEnableSpsc());
}

// Drives the same seeded 1P1C workload through both transports: sequences,
// counters, and close-then-drain behavior must be indistinguishable.
class StreamTransportEquivalence : public ::testing::TestWithParam<bool> {};

TEST_P(StreamTransportEquivalence, SeededStressSameObservableBehavior) {
  constexpr int kTotal = 20'000;
  Stream stream("s", 16);
  if (GetParam()) ASSERT_TRUE(stream.TryEnableSpsc());
  ASSERT_EQ(stream.spsc(), GetParam());

  std::thread producer([&] {
    Rng rng(42);
    int next = 0;
    while (next < kTotal) {
      if (rng.UniformInt(0, 1) == 0) {
        ASSERT_TRUE(stream.Push(TupleAt(next++)).ok());
      } else {
        const int n = static_cast<int>(rng.UniformInt(1, 40));
        TupleBatch batch;
        for (int i = 0; i < n && next < kTotal; ++i) {
          batch.push_back(TupleAt(next++));
        }
        ASSERT_TRUE(stream.PushBatch(&batch).ok());
      }
    }
    stream.Close();
  });

  Rng rng(7);
  Timestamp expected = 0;
  while (true) {
    if (rng.UniformInt(0, 1) == 0) {
      auto t = stream.Pop();
      if (!t.has_value()) break;
      ASSERT_EQ(t->event_time, expected++);
    } else {
      auto batch = stream.PopBatch(static_cast<std::size_t>(
          rng.UniformInt(1, 64)));
      if (!batch.has_value()) break;
      for (const Tuple& t : *batch) ASSERT_EQ(t.event_time, expected++);
    }
  }
  producer.join();
  EXPECT_EQ(expected, kTotal);
  EXPECT_EQ(stream.pushed(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(stream.popped(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(stream.discarded(), 0u);
  EXPECT_TRUE(stream.drained());
}

// Same seeded workload with checkpoint barriers interleaved: both transports
// must deliver barriers in exactly the position the producer wove them into
// the stream (a reordered or dropped barrier would corrupt the epoch cut).
TEST_P(StreamTransportEquivalence, SeededBarrierStreamSameObservableBehavior) {
  constexpr int kTotal = 20'000;
  Stream stream("s", 16);
  if (GetParam()) ASSERT_TRUE(stream.TryEnableSpsc());
  ASSERT_EQ(stream.spsc(), GetParam());

  std::thread producer([&] {
    Rng rng(42);
    int next = 0;
    std::uint64_t epoch = 0;
    while (next < kTotal) {
      const std::uint64_t roll = rng.UniformInt(0, 9);
      if (roll == 0) {
        // Inject a barrier; data tuples record which epoch they follow.
        ASSERT_TRUE(stream.Push(Tuple::Barrier(++epoch)).ok());
      } else if (roll <= 5) {
        Tuple t = TupleAt(next++);
        t.job = static_cast<std::int64_t>(epoch);
        ASSERT_TRUE(stream.Push(std::move(t)).ok());
      } else {
        const int n = static_cast<int>(rng.UniformInt(1, 40));
        TupleBatch batch;
        for (int i = 0; i < n && next < kTotal; ++i) {
          Tuple t = TupleAt(next++);
          t.job = static_cast<std::int64_t>(epoch);
          batch.push_back(std::move(t));
        }
        ASSERT_TRUE(stream.PushBatch(&batch).ok());
      }
    }
    stream.Close();
  });

  Rng rng(7);
  Timestamp expected = 0;
  std::uint64_t current_epoch = 0;
  std::uint64_t barriers_seen = 0;
  auto consume = [&](const Tuple& t) {
    if (t.IsBarrier()) {
      // Epochs arrive strictly ascending, never skipped, never duplicated.
      ASSERT_EQ(t.barrier_epoch, current_epoch + 1);
      current_epoch = t.barrier_epoch;
      ++barriers_seen;
      return;
    }
    ASSERT_EQ(t.event_time, expected++);
    // Position is preserved: a data tuple still belongs to the epoch the
    // producer emitted it under.
    ASSERT_EQ(static_cast<std::uint64_t>(t.job), current_epoch);
  };
  while (true) {
    if (rng.UniformInt(0, 1) == 0) {
      auto t = stream.Pop();
      if (!t.has_value()) break;
      consume(*t);
    } else {
      auto batch =
          stream.PopBatch(static_cast<std::size_t>(rng.UniformInt(1, 64)));
      if (!batch.has_value()) break;
      for (const Tuple& t : *batch) consume(t);
    }
  }
  producer.join();
  EXPECT_EQ(expected, kTotal);
  EXPECT_GT(barriers_seen, 0u);
  EXPECT_EQ(barriers_seen, current_epoch);
  EXPECT_EQ(stream.pushed(),
            static_cast<std::uint64_t>(kTotal) + barriers_seen);
  EXPECT_EQ(stream.popped(), stream.pushed());
  EXPECT_EQ(stream.discarded(), 0u);
  EXPECT_TRUE(stream.drained());
}

INSTANTIATE_TEST_SUITE_P(MpmcAndSpsc, StreamTransportEquivalence,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Spsc" : "Mpmc";
                         });

TEST(Stream, ConcurrentProducerConsumer) {
  Stream stream("s", 16);
  constexpr int kCount = 10'000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(stream.Push(TupleAt(i)).ok());
    }
    stream.Close();
  });
  Timestamp expected = 0;
  while (auto t = stream.Pop()) {
    EXPECT_EQ(t->event_time, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
  EXPECT_EQ(stream.pushed(), static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(stream.popped(), static_cast<std::uint64_t>(kCount));
}

}  // namespace
}  // namespace strata::spe
