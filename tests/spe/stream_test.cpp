#include "spe/stream.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace strata::spe {
namespace {

Tuple TupleAt(Timestamp t) {
  Tuple tuple;
  tuple.event_time = t;
  return tuple;
}

TEST(Stream, PushPopCountsFlow) {
  Stream stream("s", 8);
  ASSERT_TRUE(stream.Push(TupleAt(1)).ok());
  ASSERT_TRUE(stream.Push(TupleAt(2)).ok());
  EXPECT_EQ(stream.pushed(), 2u);
  EXPECT_EQ(stream.popped(), 0u);
  EXPECT_EQ(stream.depth(), 2u);

  auto t = stream.Pop();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->event_time, 1);
  EXPECT_EQ(stream.popped(), 1u);
  EXPECT_EQ(stream.depth(), 1u);
}

TEST(Stream, CapacityReported) {
  Stream stream("s", 16);
  EXPECT_EQ(stream.capacity(), 16u);
  EXPECT_EQ(stream.name(), "s");
}

TEST(Stream, DrainedSemantics) {
  Stream stream("s", 4);
  ASSERT_TRUE(stream.Push(TupleAt(1)).ok());
  EXPECT_FALSE(stream.closed());
  EXPECT_FALSE(stream.drained());
  stream.Close();
  EXPECT_TRUE(stream.closed());
  EXPECT_FALSE(stream.drained());  // still holds a tuple
  EXPECT_TRUE(stream.Pop().has_value());
  EXPECT_TRUE(stream.drained());
  EXPECT_FALSE(stream.Pop().has_value());
}

TEST(Stream, PushAfterCloseFails) {
  Stream stream("s", 4);
  stream.Close();
  EXPECT_TRUE(stream.Push(TupleAt(1)).IsClosed());
  EXPECT_EQ(stream.pushed(), 0u);  // failed pushes do not count
}

TEST(Stream, PopForTimesOutOnEmpty) {
  Stream stream("s", 4);
  EXPECT_FALSE(stream.PopFor(std::chrono::microseconds(5'000)).has_value());
}

TEST(Stream, TupleApproxBytesIncludesPayload) {
  Tuple t;
  EXPECT_GE(t.ApproxBytes(), sizeof(Tuple));
  t.payload.Set("key", std::string(1000, 'x'));
  EXPECT_GT(t.ApproxBytes(), 1000u);
}

TEST(Stream, TupleToStringMentionsMetadata) {
  Tuple t;
  t.event_time = 5;
  t.job = 2;
  t.layer = 3;
  t.specimen = 4;
  const std::string s = t.ToString();
  EXPECT_NE(s.find("t=5"), std::string::npos);
  EXPECT_NE(s.find("job=2"), std::string::npos);
  EXPECT_NE(s.find("layer=3"), std::string::npos);
  EXPECT_NE(s.find("spec=4"), std::string::npos);
}

TEST(Stream, CombineStimulusTakesMax) {
  EXPECT_EQ(CombineStimulus(5, 9), 9);
  EXPECT_EQ(CombineStimulus(9, 5), 9);
  EXPECT_EQ(CombineStimulus(0, 0), 0);
}

TEST(Stream, ConcurrentProducerConsumer) {
  Stream stream("s", 16);
  constexpr int kCount = 10'000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(stream.Push(TupleAt(i)).ok());
    }
    stream.Close();
  });
  Timestamp expected = 0;
  while (auto t = stream.Pop()) {
    EXPECT_EQ(t->event_time, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
  EXPECT_EQ(stream.pushed(), static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(stream.popped(), static_cast<std::uint64_t>(kCount));
}

}  // namespace
}  // namespace strata::spe
