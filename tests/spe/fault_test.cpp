// Failure injection: user functions that throw must never kill an operator
// thread — the offending tuple is dropped, counted, and the pipeline keeps
// flowing to completion.
#include <gtest/gtest.h>

#include "spe/replay_source.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using testutil::Collector;
using testutil::CountAggregate;
using testutil::MakeTuple;

std::uint64_t ErrorsOf(const Query& query, const std::string& name) {
  for (const auto& stats : query.Stats()) {
    if (stats.name == name) return stats.user_errors;
  }
  return 0;
}

TEST(FaultInjection, ThrowingFlatMapDropsOnlyOffendingTuples) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 10; ++i) input.push_back(MakeTuple(i));
  auto src = query.AddSource("src", VectorSource(input));
  auto mapped = query.AddFlatMap("boom", src, [](const Tuple& t) {
    if (t.event_time % 3 == 0) throw std::runtime_error("injected");
    return std::vector<Tuple>{t};
  });
  Collector collector;
  query.AddSink("sink", mapped, collector.AsSink());
  query.Run();

  EXPECT_EQ(collector.size(), 6u);  // t=0,3,6,9 dropped
  EXPECT_EQ(ErrorsOf(query, "boom"), 4u);
}

TEST(FaultInjection, ThrowingFilterDropsTuple) {
  Query query;
  auto src = query.AddSource(
      "src", VectorSource({MakeTuple(1), MakeTuple(2), MakeTuple(3)}));
  auto filtered = query.AddFilter("boom", src, [](const Tuple& t) {
    if (t.event_time == 2) throw std::logic_error("injected");
    return true;
  });
  Collector collector;
  query.AddSink("sink", filtered, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 2u);
  EXPECT_EQ(ErrorsOf(query, "boom"), 1u);
}

TEST(FaultInjection, ThrowingSourceEndsStreamGracefully) {
  Query query;
  auto counter = std::make_shared<int>(0);
  auto src = query.AddSource("src", [counter]() -> std::optional<Tuple> {
    if (*counter == 5) throw std::runtime_error("sensor died");
    return MakeTuple((*counter)++);
  });
  Collector collector;
  query.AddSink("sink", src, collector.AsSink());
  query.Run();  // must terminate
  EXPECT_EQ(collector.size(), 5u);
  EXPECT_EQ(ErrorsOf(query, "src"), 1u);
}

TEST(FaultInjection, ThrowingSinkKeepsConsuming) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 6; ++i) input.push_back(MakeTuple(i));
  auto src = query.AddSource("src", VectorSource(input));
  std::atomic<int> delivered{0};
  auto* sink = query.AddSink("boom", src, [&](const Tuple& t) {
    if (t.event_time % 2 == 0) throw std::runtime_error("injected");
    ++delivered;
  });
  query.Run();
  EXPECT_EQ(delivered.load(), 3);
  EXPECT_EQ(ErrorsOf(query, "boom"), 3u);
  // Latency is still recorded for every tuple, including the failing ones.
  EXPECT_EQ(sink->LatencySnapshot().count(), 6u);
}

TEST(FaultInjection, ThrowingAggregateResultSkipsWindow) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 30; ++i) input.push_back(MakeTuple(i));
  auto src = query.AddSource("src", VectorSource(input));
  AggregateSpec spec = CountAggregate(10, 10);
  auto original_result = spec.result;
  spec.result = [original_result](std::any& acc, Timestamp start,
                                  Timestamp end) {
    if (start == 10) throw std::runtime_error("injected");
    return original_result(acc, start, end);
  };
  auto agg = query.AddAggregate("boom", src, std::move(spec));
  Collector collector;
  query.AddSink("sink", agg, collector.AsSink());
  query.Run();

  EXPECT_EQ(collector.size(), 2u);  // windows [0,10) and [20,30)
  EXPECT_EQ(ErrorsOf(query, "boom"), 1u);
}

TEST(FaultInjection, ThrowingJoinPredicateTreatedAsNonMatch) {
  Query query;
  auto left = query.AddSource("L", VectorSource({MakeTuple(1), MakeTuple(2)}));
  auto right = query.AddSource("R", VectorSource({MakeTuple(1), MakeTuple(2)}));
  JoinSpec spec;
  spec.window = 0;
  spec.predicate = [](const Tuple& l, const Tuple&) -> bool {
    if (l.event_time == 1) throw std::runtime_error("injected");
    return true;
  };
  auto joined = query.AddJoin("boom", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 1u);  // only the t=2 pair survives
  EXPECT_GE(ErrorsOf(query, "boom"), 1u);
}

TEST(FaultInjection, ThrowingRouterKeyDropsTuple) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 10; ++i) input.push_back(MakeTuple(i, 0, i));
  auto src = query.AddSource("src", VectorSource(input));
  auto mapped = query.AddFlatMap(
      "par", src, [](const Tuple& t) { return std::vector<Tuple>{t}; },
      /*parallelism=*/2, [](const Tuple& t) -> std::string {
        if (t.layer == 4) throw std::runtime_error("injected");
        return std::to_string(t.layer);
      });
  Collector collector;
  query.AddSink("sink", mapped, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 9u);
  EXPECT_EQ(ErrorsOf(query, "par.router"), 1u);
}

TEST(FaultInjection, PipelineCompletesDespiteHighErrorRate) {
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 1000; ++i) input.push_back(MakeTuple(i));
  auto src = query.AddSource("src", VectorSource(input));
  auto mapped = query.AddFlatMap("half-broken", src, [](const Tuple& t) {
    if (t.event_time % 2 == 0) throw std::runtime_error("flaky");
    return std::vector<Tuple>{t};
  });
  Collector collector;
  query.AddSink("sink", mapped, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 500u);
  EXPECT_EQ(ErrorsOf(query, "half-broken"), 500u);
}

}  // namespace
}  // namespace strata::spe
