// Shared helpers for SPE tests: tuple factories and a collecting sink.
#pragma once

#include <mutex>
#include <vector>

#include "spe/query.hpp"

namespace strata::spe::testutil {

inline Tuple MakeTuple(Timestamp event_time, std::int64_t job = 0,
                       std::int64_t layer = 0) {
  Tuple t;
  t.event_time = event_time;
  t.job = job;
  t.layer = layer;
  return t;
}

inline Tuple MakeValueTuple(Timestamp event_time, double value,
                            std::int64_t job = 0, std::int64_t layer = 0) {
  Tuple t = MakeTuple(event_time, job, layer);
  t.payload.Set("value", value);
  return t;
}

/// Thread-safe tuple collector usable as a SinkFn.
class Collector {
 public:
  SinkFn AsSink() {
    return [this](const Tuple& t) {
      std::lock_guard lock(mu_);
      tuples_.push_back(t);
    };
  }

  [[nodiscard]] std::vector<Tuple> tuples() const {
    std::lock_guard lock(mu_);
    return tuples_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return tuples_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Tuple> tuples_;
};

/// Count-based aggregate spec (counts tuples per window/group into payload
/// key "count"; group key copied into "group" when a key fn is set).
inline AggregateSpec CountAggregate(Timestamp size, Timestamp advance,
                                    KeyFn key = nullptr) {
  AggregateSpec spec;
  spec.window = {size, advance};
  spec.key = std::move(key);
  spec.init = [] { return std::any(std::int64_t{0}); };
  spec.add = [](std::any& acc, const Tuple&) {
    ++std::any_cast<std::int64_t&>(acc);
  };
  spec.result = [](std::any& acc, Timestamp start,
                   Timestamp end) -> std::vector<Tuple> {
    Tuple out;
    out.event_time = end - 1;
    out.payload.Set("count", std::any_cast<std::int64_t>(acc));
    out.payload.Set("window_start", start);
    out.payload.Set("window_end", end);
    return {out};
  };
  return spec;
}

}  // namespace strata::spe::testutil
