// Batched data-plane semantics: flush-on-close delivery, linger-bounded
// buffering, back-pressure accounting through the batch APIs, and the
// all-outputs-closed early exit with discarded-tuple accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "spe/query.hpp"
#include "spe/replay_source.hpp"

namespace strata::spe {
namespace {

Tuple MakeTuple(Timestamp t) {
  Tuple tuple;
  tuple.event_time = t;
  return tuple;
}

// A finite fast source with batch_size larger than the whole input and an
// effectively-infinite linger: nothing can flush on size or time, so every
// tuple the sink sees was delivered by the close-then-drain flush.
TEST(BatchPlane, FlushOnCloseDeliversBufferedTuples) {
  QueryOptions options;
  options.batch_size = 1000;
  options.batch_linger_us = 10'000'000;
  Query query(options);

  std::atomic<int> produced{0};
  auto src = query.AddSource("src", [&]() -> std::optional<Tuple> {
    if (produced >= 100) return std::nullopt;
    return MakeTuple(produced++);
  });
  std::vector<Timestamp> seen;
  query.AddSink("sink", src, [&](const Tuple& t) {
    seen.push_back(t.event_time);
  });
  query.Run();

  ASSERT_EQ(seen.size(), 100u);
  for (Timestamp t = 0; t < 100; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], t);
  }
}

TEST(BatchPlane, BatchSourceFlushesEachUpstreamBatch) {
  QueryOptions options;
  options.batch_size = 1000;
  options.batch_linger_us = 10'000'000;
  Query query(options);

  std::vector<Tuple> input;
  for (Timestamp t = 0; t < 100; ++t) input.push_back(MakeTuple(t));
  auto src = query.AddBatchSource("src", VectorBatchSource(input, 7));
  std::vector<Timestamp> seen;
  query.AddSink("sink", src, [&](const Tuple& t) {
    seen.push_back(t.event_time);
  });
  query.Run();

  ASSERT_EQ(seen.size(), 100u);
  for (Timestamp t = 0; t < 100; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], t);
  }
}

// A source steadily faster than the linger never reaches batch_size=1000,
// yet the sink must receive tuples while the query is live: the linger
// flush bounds how long a tuple can sit in an emit buffer.
TEST(BatchPlane, LingerFlushDeliversWhileRunning) {
  QueryOptions options;
  options.batch_size = 1000;
  options.batch_linger_us = 2'000;
  Query query(options);

  std::atomic<bool> done{false};
  std::atomic<int> produced{0};
  auto src = query.AddSource("src", [&]() -> std::optional<Tuple> {
    if (done.load()) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return MakeTuple(produced++);
  });
  std::atomic<int> consumed{0};
  query.AddSink("sink", src, [&](const Tuple&) { ++consumed; });
  query.Start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (consumed.load() < 50 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(consumed.load(), 50);  // flushed by linger, not by size/close
  done = true;
  query.Join();
  EXPECT_EQ(consumed.load(), produced.load());
}

// Back-pressure through PushBatch: a slow sink behind a tiny queue must
// block the source, and the blocked time must surface on the stream.
TEST(BatchPlane, BatchedPushAccumulatesBlockedTime) {
  QueryOptions options;
  options.queue_capacity = 4;
  options.batch_size = 16;
  Query query(options);

  std::atomic<int> produced{0};
  auto src = query.AddSource("src", [&]() -> std::optional<Tuple> {
    if (produced >= 300) return std::nullopt;
    return MakeTuple(produced++);
  });
  query.AddSink("sink", src, [&](const Tuple&) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  });
  query.Run();
  EXPECT_GT(src->blocked_us(), 0u);
  EXPECT_EQ(src->pushed(), 300u);
  EXPECT_EQ(src->popped(), 300u);
}

// Even with batching, a fast source cannot run unboundedly ahead of a slow
// sink: the run-ahead is capped by the queue capacity plus batch-sized
// emit/drain buffers.
TEST(BatchPlane, RunAheadBoundedUnderBatching) {
  QueryOptions options;
  options.queue_capacity = 8;
  options.batch_size = 8;
  Query query(options);

  std::atomic<std::int64_t> produced{0};
  auto src = query.AddSource("src", [&]() -> std::optional<Tuple> {
    if (produced >= 500) return std::nullopt;
    return MakeTuple(produced++);
  });
  std::atomic<std::int64_t> consumed{0};
  query.AddSink("sink", src, [&](const Tuple&) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    ++consumed;
  });
  query.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_LE(produced.load(),
            consumed.load() + 8 /*queue*/ + 2 * 8 /*emit+drain*/ + 4);
  query.Join();
  EXPECT_EQ(consumed.load(), 500);
}

// A source whose only output closed underneath it must notice at the first
// flush, count the lost tuples, and exit instead of producing forever.
TEST(BatchPlane, SourceExitsEarlyWhenOutputClosed) {
  auto out = std::make_shared<Stream>("out", 4);
  out->Close();

  std::atomic<int> produced{0};
  SourceOperator source("src", &Clock::System(),
                        SourceFn([&]() -> std::optional<Tuple> {
                          return MakeTuple(produced++);  // endless
                        }));
  source.AddOutput(out);
  source.Run();  // must return: Emit reports all outputs closed

  EXPECT_GE(produced.load(), 1);
  EXPECT_LE(produced.load(), 4);  // noticed at the first flush
  EXPECT_GE(source.stats().discarded, 1u);
}

// A mid-pipeline operator whose consumer is gone must close its own inputs
// on the way out, releasing any producer blocked on back-pressure.
TEST(BatchPlane, OperatorEarlyExitReleasesBlockedProducer) {
  auto in = std::make_shared<Stream>("in", 4);
  auto out = std::make_shared<Stream>("out", 4);
  out->Close();  // downstream consumer already gone

  FlatMapOperator op("fm", &Clock::System(),
                     FlatMapFn([](const Tuple& t) {
                       return std::vector<Tuple>{t};
                     }));
  op.AddInput(in);
  op.AddOutput(out);

  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (Timestamp t = 0;; ++t) {
      if (!in->Push(MakeTuple(t)).ok()) break;  // released by CloseInputs
      ++pushed;
    }
  });

  op.Run();  // must return and close `in`
  producer.join();
  EXPECT_TRUE(in->closed());
  EXPECT_GE(op.stats().discarded, 1u);
}

}  // namespace
}  // namespace strata::spe
