#include <gtest/gtest.h>

#include "spe/replay_source.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using testutil::Collector;
using testutil::MakeTuple;

Tuple KeyedTuple(Timestamp t, std::int64_t job, std::int64_t layer,
                 const std::string& payload_key, double value) {
  Tuple tuple = MakeTuple(t, job, layer);
  tuple.payload.Set(payload_key, value);
  return tuple;
}

KeyFn JobLayerKey() {
  return [](const Tuple& t) {
    return std::to_string(t.job) + "|" + std::to_string(t.layer);
  };
}

TEST(Join, EqualTimestampEquiJoin) {
  // window = 0: only τ-equal pairs match (the fuse() default).
  Query query;
  auto left = query.AddSource(
      "L", VectorSource({KeyedTuple(10, 1, 1, "a", 1.0),
                         KeyedTuple(20, 1, 2, "a", 2.0)}));
  auto right = query.AddSource(
      "R", VectorSource({KeyedTuple(10, 1, 1, "b", 10.0),
                         KeyedTuple(30, 1, 3, "b", 30.0)}));
  JoinSpec spec;
  spec.window = 0;
  spec.key_left = JobLayerKey();
  spec.key_right = JobLayerKey();
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();

  const auto out = collector.tuples();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].event_time, 10);
  EXPECT_DOUBLE_EQ(out[0].payload.Get("a").AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(out[0].payload.Get("b").AsDouble(), 10.0);
}

TEST(Join, TimeWindowBound) {
  Query query;
  auto left = query.AddSource("L", VectorSource({KeyedTuple(100, 0, 0, "a", 1)}));
  auto right = query.AddSource(
      "R", VectorSource({KeyedTuple(95, 0, 0, "b", 1),     // |dt|=5 <= 10
                         KeyedTuple(109, 0, 0, "c", 1),    // |dt|=9 <= 10
                         KeyedTuple(111, 0, 0, "d", 1)})); // |dt|=11 > 10
  JoinSpec spec;
  spec.window = 10;
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 2u);
}

TEST(Join, PredicateFilters) {
  Query query;
  auto left = query.AddSource(
      "L", VectorSource({KeyedTuple(1, 0, 0, "lv", 5.0),
                         KeyedTuple(2, 0, 0, "lv", 50.0)}));
  auto right = query.AddSource(
      "R", VectorSource({KeyedTuple(1, 0, 0, "rv", 10.0),
                         KeyedTuple(2, 0, 0, "rv", 10.0)}));
  JoinSpec spec;
  spec.window = 0;
  spec.predicate = [](const Tuple& l, const Tuple& r) {
    return l.payload.Get("lv").AsDouble() < r.payload.Get("rv").AsDouble();
  };
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_DOUBLE_EQ(collector.tuples()[0].payload.Get("lv").AsDouble(), 5.0);
}

TEST(Join, GroupByPreventsCrossKeyMatches) {
  Query query;
  auto left = query.AddSource(
      "L", VectorSource({KeyedTuple(10, 1, 1, "a", 1),
                         KeyedTuple(10, 2, 1, "a", 2)}));
  auto right = query.AddSource(
      "R", VectorSource({KeyedTuple(10, 1, 1, "b", 3),
                         KeyedTuple(10, 2, 1, "b", 4)}));
  JoinSpec spec;
  spec.window = 0;
  spec.key_left = JobLayerKey();
  spec.key_right = JobLayerKey();
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();

  const auto out = collector.tuples();
  ASSERT_EQ(out.size(), 2u);  // only same-job pairs, not 4 cross products
  for (const Tuple& t : out) {
    const double a = t.payload.Get("a").AsDouble();
    const double b = t.payload.Get("b").AsDouble();
    EXPECT_EQ(b - a, 2.0);  // (1,3) and (2,4)
  }
}

TEST(Join, DefaultCombineMergesPayloadsDisjointly) {
  Query query;
  auto left = query.AddSource("L", VectorSource({KeyedTuple(1, 0, 0, "x", 1)}));
  auto right = query.AddSource("R", VectorSource({KeyedTuple(1, 0, 0, "y", 2)}));
  JoinSpec spec;
  spec.window = 0;
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_TRUE(collector.tuples()[0].payload.Has("x"));
  EXPECT_TRUE(collector.tuples()[0].payload.Has("y"));
}

TEST(Join, PayloadKeyCollisionDropsPair) {
  // The paper's fuse() assumes unique keys across fused tuples; violations
  // are dropped (and counted) rather than silently overwriting.
  Query query;
  auto left = query.AddSource("L", VectorSource({KeyedTuple(1, 0, 0, "x", 1)}));
  auto right = query.AddSource("R", VectorSource({KeyedTuple(1, 0, 0, "x", 2)}));
  JoinSpec spec;
  spec.window = 0;
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 0u);
  for (const auto& stats : query.Stats()) {
    if (stats.name == "join") EXPECT_EQ(stats.late_drops, 1u);
  }
}

TEST(Join, CustomCombine) {
  Query query;
  auto left = query.AddSource("L", VectorSource({KeyedTuple(1, 0, 0, "v", 3)}));
  auto right = query.AddSource("R", VectorSource({KeyedTuple(1, 0, 0, "v", 4)}));
  JoinSpec spec;
  spec.window = 0;
  spec.combine = [](const Tuple& l, const Tuple& r) {
    Payload p;
    p.Set("product", l.payload.Get("v").AsDouble() *
                         r.payload.Get("v").AsDouble());
    return p;
  };
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_DOUBLE_EQ(collector.tuples()[0].payload.Get("product").AsDouble(), 12.0);
}

TEST(Join, JoinedStimulusIsMax) {
  Query query;
  Tuple l = KeyedTuple(1, 0, 0, "a", 1);
  l.stimulus = 111;
  Tuple r = KeyedTuple(1, 0, 0, "b", 2);
  r.stimulus = 999;
  auto left = query.AddSource("L", VectorSource({l}));
  auto right = query.AddSource("R", VectorSource({r}));
  JoinSpec spec;
  spec.window = 0;
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_EQ(collector.tuples()[0].stimulus, 999);
}

TEST(Join, ManyToManyWithinWindow) {
  Query query;
  std::vector<Tuple> lefts;
  std::vector<Tuple> rights;
  for (int i = 0; i < 3; ++i) lefts.push_back(KeyedTuple(10 + i, 0, 0, "l", i));
  for (int i = 0; i < 3; ++i) rights.push_back(KeyedTuple(10 + i, 0, 0, "r", i));
  auto left = query.AddSource("L", VectorSource(lefts));
  auto right = query.AddSource("R", VectorSource(rights));
  JoinSpec spec;
  spec.window = 100;  // everything matches everything
  auto joined = query.AddJoin("join", left, right, spec);
  Collector collector;
  query.AddSink("sink", joined, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 9u);
}

TEST(Join, EvictionBoundsBufferGrowth) {
  // Long streams with a small window: matched pairs only near in time, and
  // the join must not retain the whole history (indirectly verified by
  // completing quickly and producing the exact expected pair count).
  Query query;
  constexpr int kCount = 20'000;
  std::vector<Tuple> lefts;
  std::vector<Tuple> rights;
  for (int i = 0; i < kCount; ++i) {
    lefts.push_back(KeyedTuple(i * 10, 0, 0, "l", i));
    rights.push_back(KeyedTuple(i * 10, 0, 0, "r", i));
  }
  auto left = query.AddSource("L", VectorSource(lefts));
  auto right = query.AddSource("R", VectorSource(rights));
  JoinSpec spec;
  spec.window = 0;
  auto joined = query.AddJoin("join", left, right, spec);
  std::atomic<int> count{0};
  query.AddSink("sink", joined, [&](const Tuple&) { ++count; });
  query.Run();
  EXPECT_EQ(count.load(), kCount);
}

TEST(Join, NegativeWindowRejected) {
  Query query;
  auto left = query.AddSource("L", VectorSource({}));
  auto right = query.AddSource("R", VectorSource({}));
  JoinSpec spec;
  spec.window = -1;
  EXPECT_THROW((void)query.AddJoin("join", left, right, spec),
               std::invalid_argument);
}

}  // namespace
}  // namespace strata::spe
