#include <gtest/gtest.h>

#include <atomic>

#include "spe/replay_source.hpp"
#include "spe_test_util.hpp"

namespace strata::spe {
namespace {

using testutil::Collector;
using testutil::CountAggregate;
using testutil::MakeTuple;

TEST(QueryLifecycle, RunCompletesWithFiniteSource) {
  Query query;
  auto src = query.AddSource("src", VectorSource({MakeTuple(1)}));
  Collector collector;
  query.AddSink("sink", src, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 1u);
}

TEST(QueryLifecycle, StopEndsInfiniteSource) {
  Query query;
  std::atomic<std::int64_t> counter{0};
  auto src = query.AddSource("src", [&]() -> std::optional<Tuple> {
    Tuple t;
    t.event_time = counter++;
    return t;
  });
  std::atomic<std::int64_t> seen{0};
  query.AddSink("sink", src, [&](const Tuple&) { ++seen; });
  query.Start();
  while (seen.load() < 100) std::this_thread::yield();
  query.Stop();
  query.Join();
  EXPECT_GE(seen.load(), 100);
}

TEST(QueryLifecycle, DestructorStopsRunningQuery) {
  std::atomic<std::int64_t> counter{0};
  {
    Query query;
    auto src = query.AddSource("src", [&]() -> std::optional<Tuple> {
      Tuple t;
      t.event_time = counter++;
      return t;
    });
    query.AddSink("sink", src, [](const Tuple&) {});
    query.Start();
    while (counter.load() < 10) std::this_thread::yield();
  }  // must not hang or crash
  SUCCEED();
}

TEST(QueryLifecycle, DoubleStartThrows) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  query.AddSink("sink", src, [](const Tuple&) {});
  query.Start();
  EXPECT_THROW(query.Start(), std::logic_error);
  query.Join();
}

TEST(QueryLifecycle, AddAfterStartThrows) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  query.AddSink("sink", src, [](const Tuple&) {});
  query.Start();
  EXPECT_THROW((void)query.AddSource("late", VectorSource({})),
               std::logic_error);
  query.Join();
}

TEST(QueryValidation, StreamCannotHaveTwoConsumers) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  query.AddSink("sink1", src, [](const Tuple&) {});
  EXPECT_THROW(query.AddSink("sink2", src, [](const Tuple&) {}),
               std::logic_error);
}

TEST(QueryValidation, NullStreamRejected) {
  Query query;
  EXPECT_THROW(query.AddSink("sink", nullptr, [](const Tuple&) {}),
               std::invalid_argument);
}

TEST(QueryValidation, ZeroCapacityRejected) {
  QueryOptions options;
  options.queue_capacity = 0;
  EXPECT_THROW(Query query(options), std::invalid_argument);
}

TEST(QueryBackPressure, SlowSinkThrottlesFastSource) {
  QueryOptions options;
  options.queue_capacity = 4;
  // Pin the per-tuple plane: batching widens the run-ahead bound to
  // capacity + batch-sized emit/drain buffers (covered by the batch-plane
  // tests); this test asserts the strict per-tuple bound.
  options.batch_size = 1;
  Query query(options);
  std::atomic<std::int64_t> produced{0};
  auto src = query.AddSource("fast-src", [&]() -> std::optional<Tuple> {
    if (produced >= 200) return std::nullopt;
    Tuple t;
    t.event_time = produced++;
    return t;
  });
  std::atomic<std::int64_t> consumed{0};
  query.AddSink("slow-sink", src, [&](const Tuple&) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    ++consumed;
  });
  query.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The source cannot run far ahead of the sink: bounded by queue capacity
  // plus in-flight slack.
  EXPECT_LE(produced.load(), consumed.load() + 8);
  query.Join();
  EXPECT_EQ(consumed.load(), 200);
}

TEST(QueryPipeline, MultiStagePipelineProducesExpectedResult) {
  // src -> filter(evens) -> map(x2) -> aggregate(count per window) -> sink
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 100; ++i) {
    Tuple t = MakeTuple(i);
    t.payload.Set("v", i);
    input.push_back(t);
  }
  auto src = query.AddSource("src", VectorSource(input));
  auto evens = query.AddFilter("evens", src, [](const Tuple& t) {
    return t.payload.Get("v").AsInt() % 2 == 0;
  });
  auto doubled = query.AddFlatMap("double", evens, [](const Tuple& t) {
    Tuple out = t;
    out.payload.Set("v", t.payload.Get("v").AsInt() * 2);
    return std::vector<Tuple>{out};
  });
  auto counted = query.AddAggregate("count", doubled, CountAggregate(50, 50));
  Collector collector;
  query.AddSink("sink", counted, collector.AsSink());
  query.Run();

  const auto out = collector.tuples();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload.Get("count").AsInt(), 25);
  EXPECT_EQ(out[1].payload.Get("count").AsInt(), 25);
}

TEST(QueryPipeline, DiamondTopology) {
  // src -> split -> (filterA, filterB) -> union -> sink
  Query query;
  std::vector<Tuple> input;
  for (int i = 0; i < 50; ++i) {
    Tuple t = MakeTuple(i);
    t.payload.Set("v", i);
    input.push_back(t);
  }
  auto src = query.AddSource("src", VectorSource(input));
  auto branches = query.AddSplit("split", src, 2);
  auto low = query.AddFilter("low", branches[0], [](const Tuple& t) {
    return t.payload.Get("v").AsInt() < 10;
  });
  auto high = query.AddFilter("high", branches[1], [](const Tuple& t) {
    return t.payload.Get("v").AsInt() >= 40;
  });
  auto merged = query.AddUnion("union", {low, high});
  Collector collector;
  query.AddSink("sink", merged, collector.AsSink());
  query.Run();
  EXPECT_EQ(collector.size(), 20u);
}

TEST(QueryPipeline, ManualClockLatency) {
  // With a manual clock, sink latency = clock delta between source emission
  // and sink consumption; here nothing advances the clock, so latency = 0.
  ManualClock clock(1000);
  QueryOptions options;
  options.clock = &clock;
  Query query(options);
  auto src = query.AddSource("src", VectorSource({MakeTuple(1)}));
  Collector collector;
  auto* sink = query.AddSink("sink", src, collector.AsSink());
  query.Run();
  const Histogram latency = sink->LatencySnapshot();
  ASSERT_EQ(latency.count(), 1u);
  EXPECT_EQ(latency.max(), 0);
}

TEST(QueryIntrospection, ToDotRendersDag) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  auto mapped = query.AddFlatMap(
      "stage", src, [](const Tuple& t) { return std::vector<Tuple>{t}; });
  query.AddSink("out", mapped, [](const Tuple&) {});
  const std::string dot = query.ToDot();
  EXPECT_NE(dot.find("digraph query"), std::string::npos);
  EXPECT_NE(dot.find("src"), std::string::npos);
  EXPECT_NE(dot.find("stage"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(QueryStats, OperatorCountsAllInstances) {
  Query query;
  auto src = query.AddSource("src", VectorSource({}));
  auto mapped = query.AddFlatMap(
      "m", src, [](const Tuple& t) { return std::vector<Tuple>{t}; }, 3,
      [](const Tuple& t) { return std::to_string(t.layer); });
  query.AddSink("sink", mapped, [](const Tuple&) {});
  // source + router + 3 workers + union + sink = 7
  EXPECT_EQ(query.operator_count(), 7u);
}

}  // namespace
}  // namespace strata::spe
