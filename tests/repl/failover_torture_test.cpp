// Kill-the-leader failover torture harness (chaos label).
//
// Each iteration forks a child that runs the leader broker of a 3-node
// replicated cluster; the parent runs the two followers plus a quorum-acks
// producer and a committing consumer, then SIGKILLs the child mid-produce —
// a real process death, not a polite shutdown. The invariants asserted
// every iteration are the ones that make acks=quorum worth paying for:
//
//   * a surviving follower promotes itself automatically (no operator),
//   * every record the producer saw acked is served by the new leader,
//   * consumers never read past the committed high watermark, and the
//     committed watermark never runs past the recovered log end,
//   * the same producer and consumer handles keep working through the
//     failover — rerouting is the client library's job.
//
// Iterations default to 50; override with STRATA_TORTURE_ITERS. The child
// also arms a low-probability disconnect failpoint on the replication fetch
// path so some iterations exercise retry-after-severed-fetch before dying.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/failpoint.hpp"
#include "net/remote.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "pubsub/broker.hpp"
#include "repl/manager.hpp"

namespace strata::repl {
namespace {

using namespace std::chrono_literals;

int TortureIterations() {
  if (const char* env = std::getenv("STRATA_TORTURE_ITERS"); env != nullptr) {
    return std::max(1, std::atoi(env));
  }
  return 50;
}

constexpr int kRecordsPerIteration = 30;

/// One broker node (broker + manager + server) of the replica set.
struct Node {
  std::unique_ptr<ps::Broker> broker;
  std::unique_ptr<ReplicationManager> manager;
  std::unique_ptr<net::BrokerServer> server;
};

/// Start node `index` (0-based) of `endpoints`; returns nullptr on failure.
std::unique_ptr<Node> StartNode(const std::vector<BrokerEndpoint>& endpoints,
                                int index) {
  auto node = std::make_unique<Node>();
  node->broker = std::make_unique<ps::Broker>();
  ReplicaOptions repl;
  repl.self = endpoints[static_cast<std::size_t>(index)];
  repl.brokers = endpoints;
  repl.fetch_interval = 1ms;
  repl.leader_timeout = 200ms;
  repl.isr_timeout = 150ms;
  repl.peer_connect_timeout = 100ms;
  repl.peer_request_timeout = 500ms;
  node->manager =
      std::make_unique<ReplicationManager>(node->broker.get(), repl);
  net::BrokerServerOptions server;
  server.host = "127.0.0.1";
  server.port = endpoints[static_cast<std::size_t>(index)].port;
  server.repl = node->manager.get();
  server.quorum_ack_timeout = 2s;
  node->server =
      std::make_unique<net::BrokerServer>(node->broker.get(), server);
  if (!node->server->Start().ok()) return nullptr;
  if (!node->manager->Start().ok()) return nullptr;
  if (!node->manager->AddTopic("torture", ps::TopicConfig{1}, 1).ok()) {
    return nullptr;
  }
  return node;
}

void StopNode(Node* node) {
  if (node == nullptr) return;
  node->manager->Stop();
  node->server->Stop();
  node->broker->Close();
}

/// Child body: run the leader broker until SIGKILLed by the parent. Never
/// returns into gtest.
[[noreturn]] void RunLeaderChild(const std::vector<BrokerEndpoint>& endpoints,
                                 int ready_fd, int iteration) {
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // die with the parent, never linger
  fault::SeedRng(static_cast<std::uint64_t>(iteration) * 6271u + 11u);
  // A little pre-death chaos: some fetches sever mid-flight, so followers
  // exercise the reconnect path before the real kill lands.
  fault::Activate("repl.fetch.serve",
                  fault::Action{fault::ActionKind::kDisconnect, 0, 0.05, -1});
  auto node = StartNode(endpoints, 0);
  if (node == nullptr) ::_exit(2);
  const char byte = 'r';
  if (::write(ready_fd, &byte, 1) != 1) ::_exit(2);
  while (true) ::pause();  // SIGKILL from the parent is the only exit
}

TEST(ReplFailoverTorture, AckedRecordsSurviveLeaderKill) {
  const int iterations = TortureIterations();
  for (int iteration = 0; iteration < iterations; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));

    // Reserve the cluster's ports up front: every process needs the full
    // peer list before any server starts.
    std::vector<BrokerEndpoint> endpoints;
    {
      std::vector<net::ListenSocket> probes;
      for (int i = 0; i < 3; ++i) {
        auto probe = net::ListenSocket::Listen("127.0.0.1", 0);
        ASSERT_TRUE(probe.ok());
        endpoints.push_back(BrokerEndpoint{static_cast<std::uint32_t>(i + 1),
                                           "127.0.0.1", probe->port()});
        probes.push_back(std::move(*probe));
      }
    }

    int ready[2];
    ASSERT_EQ(::pipe(ready), 0);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      ::close(ready[0]);
      RunLeaderChild(endpoints, ready[1], iteration);
    }
    ::close(ready[1]);

    auto follower1 = StartNode(endpoints, 1);
    auto follower2 = StartNode(endpoints, 2);
    ASSERT_NE(follower1, nullptr);
    ASSERT_NE(follower2, nullptr);
    char byte = 0;
    ASSERT_EQ(::read(ready[0], &byte, 1), 1) << "leader child never came up";
    ::close(ready[0]);

    net::RemoteOptions remote;
    for (const BrokerEndpoint& endpoint : endpoints) {
      remote.bootstrap.emplace_back(endpoint.host, endpoint.port);
    }
    remote.acks = net::ProduceAcks::kQuorum;
    remote.connect_timeout = 300ms;
    remote.request_timeout = 4s;
    remote.max_retries = 1;
    remote.backoff_initial = 5ms;
    remote.cluster_refresh_rounds = 12;
    remote.cluster_refresh_backoff = 50ms;
    net::RemoteProducer producer(remote);
    auto consumer = net::RemoteConsumer::Create(remote, "torture");
    ASSERT_TRUE(consumer.ok());

    // Produce through the kill. The kill lands after a varying number of
    // acked records so it hits the leader in different states (fresh,
    // mid-replication, parked quorum produce in flight).
    const int kill_after = 3 + iteration % 7;
    std::set<std::string> acked;
    const auto deadline = std::chrono::steady_clock::now() + 20s;
    bool killed = false;
    for (int i = 0; i < kRecordsPerIteration;) {
      if (!killed && static_cast<int>(acked.size()) >= kill_after) {
        ASSERT_EQ(::kill(child, SIGKILL), 0);
        killed = true;
      }
      const std::string value =
          "it" + std::to_string(iteration) + "-v" + std::to_string(i);
      auto sent = producer.Send("torture", "k", value, 0);
      if (sent.ok()) {
        acked.insert(value);
        ++i;
        continue;
      }
      // Mid-failover sends may time out or bounce; the record may or may
      // not have landed (at-least-once) — only *acked* sends join the
      // must-survive set. Retry the same value until the deadline.
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "producer never recovered: " << sent.status().ToString();
    }
    ASSERT_TRUE(killed);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

    // A survivor must hold the lease now (auto-promotion, no operator).
    Node* new_leader = nullptr;
    const auto promote_deadline = std::chrono::steady_clock::now() + 10s;
    while (new_leader == nullptr &&
           std::chrono::steady_clock::now() < promote_deadline) {
      if (follower1->manager->IsLeader("torture")) {
        new_leader = follower1.get();
      } else if (follower2->manager->IsLeader("torture")) {
        new_leader = follower2.get();
      } else {
        std::this_thread::sleep_for(5ms);
      }
    }
    ASSERT_NE(new_leader, nullptr) << "no follower promoted itself";
    auto view = new_leader->manager->View("torture");
    ASSERT_TRUE(view.ok());
    EXPECT_GE(view->epoch, 2u);
    // Committed never runs past recovered: hw <= log end on the new leader.
    EXPECT_LE(view->partitions[0].high_watermark, view->partitions[0].log_end);

    // The same consumer handle drains everything that was ever acked
    // (duplicates from producer retries are fine; losses are not).
    std::set<std::string> consumed;
    const auto consume_deadline = std::chrono::steady_clock::now() + 15s;
    while (std::chrono::steady_clock::now() < consume_deadline) {
      auto polled = (*consumer)->Poll(100ms);
      if (polled.ok()) {
        for (const auto& record : *polled) consumed.insert(record.value);
      }
      bool all = true;
      for (const std::string& value : acked) {
        if (!consumed.contains(value)) {
          all = false;
          break;
        }
      }
      if (all) break;
    }
    for (const std::string& value : acked) {
      EXPECT_TRUE(consumed.contains(value))
          << "acked record lost in failover: " << value;
    }
    EXPECT_TRUE((*consumer)->Commit().ok());

    consumer->reset();
    StopNode(follower1.get());
    StopNode(follower2.get());
  }
}

}  // namespace
}  // namespace strata::repl
