// In-process replicated cluster tests: three brokers, each a ps::Broker +
// net::BrokerServer + repl::ReplicationManager, wired over real sockets.
// Covers follower catch-up, the quorum commit rule (acks=quorum blocking,
// consumer high-watermark clamping), NotLeader gating, leader failover with
// client re-routing, and divergent-tail truncation on promotion.
#include "repl/manager.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "net/remote.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "pubsub/broker.hpp"

namespace strata::repl {
namespace {

using namespace std::chrono_literals;

constexpr auto kClusterDeadline = 10s;

/// Spin until `pred` holds or `deadline` elapses.
template <typename Pred>
bool Eventually(Pred pred, std::chrono::milliseconds deadline =
                               std::chrono::duration_cast<
                                   std::chrono::milliseconds>(kClusterDeadline)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

struct Node {
  std::unique_ptr<ps::Broker> broker;
  std::unique_ptr<ReplicationManager> manager;
  std::unique_ptr<net::BrokerServer> server;
  bool up = false;
};

/// N brokers on pre-probed localhost ports. Nodes can be stopped and the
/// survivors keep replicating / elect a new leader.
class MiniCluster {
 public:
  explicit MiniCluster(int n,
                       std::chrono::microseconds quorum_ack_timeout = 5s) {
    // Reserve ports first: every manager needs the full peer list before
    // any server starts.
    {
      std::vector<net::ListenSocket> probes;
      for (int i = 0; i < n; ++i) {
        auto probe = net::ListenSocket::Listen("127.0.0.1", 0);
        EXPECT_TRUE(probe.ok());
        endpoints_.push_back(BrokerEndpoint{static_cast<std::uint32_t>(i + 1),
                                            "127.0.0.1", probe->port()});
        probes.push_back(std::move(*probe));
      }
    }  // probes closed; the real servers bind the same ports below
    nodes_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) StartNode(i, quorum_ack_timeout);
  }

  ~MiniCluster() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      StopNode(static_cast<int>(i));
    }
  }

  void StartNode(int i, std::chrono::microseconds quorum_ack_timeout = 5s) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    node.broker = std::make_unique<ps::Broker>();
    ReplicaOptions repl;
    repl.self = endpoints_[static_cast<std::size_t>(i)];
    repl.brokers = endpoints_;
    repl.fetch_interval = 1ms;
    repl.leader_timeout = 200ms;
    repl.isr_timeout = 150ms;
    repl.peer_connect_timeout = 100ms;
    repl.peer_request_timeout = 500ms;
    node.manager = std::make_unique<ReplicationManager>(node.broker.get(),
                                                        repl);
    net::BrokerServerOptions server;
    server.host = "127.0.0.1";
    server.port = endpoints_[static_cast<std::size_t>(i)].port;
    server.repl = node.manager.get();
    server.quorum_ack_timeout = quorum_ack_timeout;
    node.server = std::make_unique<net::BrokerServer>(node.broker.get(),
                                                      server);
    ASSERT_TRUE(node.server->Start().ok());
    ASSERT_TRUE(node.manager->Start().ok());
    node.up = true;
  }

  void StopNode(int i) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    if (!node.up) return;
    node.up = false;
    node.manager->Stop();
    node.server->Stop();
    node.broker->Close();
  }

  /// Register `topic` on every *running* node with broker `leader` leading.
  void AddTopic(const std::string& topic, int partitions,
                std::uint32_t leader) {
    for (Node& node : nodes_) {
      if (!node.up) continue;
      ASSERT_TRUE(node.manager
                      ->AddTopic(topic, ps::TopicConfig{partitions}, leader)
                      .ok());
    }
  }

  [[nodiscard]] net::RemoteOptions ClientOptions(net::ProduceAcks acks) const {
    net::RemoteOptions remote;
    for (const BrokerEndpoint& endpoint : endpoints_) {
      remote.bootstrap.emplace_back(endpoint.host, endpoint.port);
    }
    remote.acks = acks;
    remote.connect_timeout = 500ms;
    remote.request_timeout = 8s;
    remote.max_retries = 2;
    remote.backoff_initial = 5ms;
    remote.cluster_refresh_rounds = 12;
    remote.cluster_refresh_backoff = 50ms;
    return remote;
  }

  [[nodiscard]] Node& node(int i) { return nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] std::uint16_t port(int i) const {
    return endpoints_[static_cast<std::size_t>(i)].port;
  }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }

  [[nodiscard]] std::int64_t LogEnd(int i, const std::string& topic,
                                    int partition) {
    auto log = node(i).broker->GetLog(topic, partition);
    return log.ok() ? (*log)->EndOffset() : -1;
  }

  /// Index of the node whose manager currently claims leadership, -1 if
  /// none (or several — leadership must be unique among the running nodes).
  [[nodiscard]] int LeaderOf(const std::string& topic) {
    int leader = -1;
    for (int i = 0; i < size(); ++i) {
      if (!node(i).up) continue;
      if (node(i).manager->IsLeader(topic)) {
        if (leader != -1) return -1;
        leader = i;
      }
    }
    return leader;
  }

 private:
  std::vector<BrokerEndpoint> endpoints_;
  std::vector<Node> nodes_;
};

TEST(ReplCluster, FollowersCatchUpAndHwAdvances) {
  MiniCluster cluster(3);
  cluster.AddTopic("events", 1, 1);

  net::RemoteProducer producer(cluster.ClientOptions(net::ProduceAcks::kQuorum));
  for (int i = 0; i < 50; ++i) {
    auto sent = producer.Send("events", "k", "v" + std::to_string(i), 0);
    ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  }

  // Every copy converges on the full log.
  EXPECT_TRUE(Eventually([&] {
    return cluster.LogEnd(0, "events", 0) == 50 &&
           cluster.LogEnd(1, "events", 0) == 50 &&
           cluster.LogEnd(2, "events", 0) == 50;
  }));
  // The leader's high watermark covers everything acked, and the view
  // reports a full ISR with no lag once the acks drain.
  EXPECT_TRUE(Eventually([&] {
    auto view = cluster.node(0).manager->View("events");
    return view.ok() && view->partitions[0].high_watermark == 50 &&
           view->partitions[0].lag == 0 && view->isr.size() == 3;
  }));
  auto view = cluster.node(0).manager->View("events");
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->is_leader);
  EXPECT_EQ(view->epoch, 1u);
}

TEST(ReplCluster, QuorumAckBlocksUntilMajorityReplicates) {
  MiniCluster cluster(3, /*quorum_ack_timeout=*/300ms);
  // Only the leader runs: a quorum of 2 is unreachable.
  cluster.StopNode(1);
  cluster.StopNode(2);
  cluster.AddTopic("events", 1, 1);

  net::RemoteOptions remote = cluster.ClientOptions(net::ProduceAcks::kQuorum);
  remote.cluster_refresh_rounds = 1;  // no point re-routing: no other leader
  net::RemoteProducer producer(remote);
  auto sent = producer.Send("events", "k", "lonely", 0);
  ASSERT_FALSE(sent.ok());
  EXPECT_TRUE(sent.status().IsTimeout()) << sent.status().ToString();
  // The append itself happened (at-least-once on ack timeout)...
  EXPECT_EQ(cluster.LogEnd(0, "events", 0), 1);
  // ...but it is not committed: nothing is consumer-visible.
  auto consumer = net::RemoteConsumer::Create(
      cluster.ClientOptions(net::ProduceAcks::kLeader), "events");
  ASSERT_TRUE(consumer.ok());
  auto records = (*consumer)->Poll(50ms);
  EXPECT_FALSE(records.ok());  // Timeout: hw still 0

  // A majority appears: the same produce now commits.
  cluster.StartNode(1, 300ms);
  ASSERT_TRUE(cluster.node(1)
                  .manager->AddTopic("events", ps::TopicConfig{1}, 1)
                  .ok());
  EXPECT_TRUE(Eventually([&] {
    auto again = producer.Send("events", "k", "quorate", 0);
    return again.ok();
  }));
  EXPECT_TRUE(Eventually([&] {
    auto polled = (*consumer)->Poll(100ms);
    return polled.ok() && !polled->empty();
  }));
}

TEST(ReplCluster, ConsumersNeverReadPastHighWatermark) {
  MiniCluster cluster(3, /*quorum_ack_timeout=*/200ms);
  cluster.StopNode(1);
  cluster.StopNode(2);
  cluster.AddTopic("events", 1, 1);

  // acks=leader: the produce succeeds immediately even with no quorum...
  net::RemoteProducer producer(cluster.ClientOptions(net::ProduceAcks::kLeader));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(producer.Send("events", "k", std::to_string(i), 0).ok());
  }
  ASSERT_EQ(cluster.LogEnd(0, "events", 0), 5);

  // ...but consumers are clamped to the (zero) high watermark.
  auto consumer = net::RemoteConsumer::Create(
      cluster.ClientOptions(net::ProduceAcks::kLeader), "events");
  ASSERT_TRUE(consumer.ok());
  auto records = (*consumer)->Poll(50ms);
  EXPECT_FALSE(records.ok()) << "uncommitted records leaked to a consumer";

  // A follower joins, replication commits the backlog, the poll drains it.
  cluster.StartNode(1, 200ms);
  ASSERT_TRUE(cluster.node(1)
                  .manager->AddTopic("events", ps::TopicConfig{1}, 1)
                  .ok());
  std::size_t seen = 0;
  EXPECT_TRUE(Eventually([&] {
    auto polled = (*consumer)->Poll(100ms);
    if (polled.ok()) seen += polled->size();
    return seen == 5;
  }));
}

TEST(ReplCluster, DirectProduceAtFollowerAnswersNotLeader) {
  MiniCluster cluster(3);
  cluster.AddTopic("events", 1, 1);

  // A raw connection (no router) pointed straight at a follower.
  net::RemoteOptions remote;
  remote.host = "127.0.0.1";
  remote.port = cluster.port(1);
  remote.max_retries = 0;
  net::ClientConnection conn(remote);
  net::ProduceRequest req;
  req.topic = "events";
  req.record = ps::Record{"k", "v", 0};
  std::string body;
  net::EncodeProduceRequest(req, &body);
  std::string response;
  Status status = conn.Call(net::ApiKey::kProduce, body, &response);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotLeader()) << status.ToString();

  // The routed producer pointed at the same follower chases the leader.
  net::RemoteOptions routed = cluster.ClientOptions(net::ProduceAcks::kQuorum);
  routed.bootstrap = {{"127.0.0.1", cluster.port(1)}};
  net::RemoteProducer producer(routed);
  auto sent = producer.Send("events", "k", "routed", 0);
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
}

TEST(ReplCluster, LeaderStopPromotesFollowerAndClientsResume) {
  MiniCluster cluster(3);
  cluster.AddTopic("events", 1, 1);

  net::RemoteProducer producer(cluster.ClientOptions(net::ProduceAcks::kQuorum));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer.Send("events", "k", "pre" + std::to_string(i), 0)
                    .ok());
  }
  auto consumer = net::RemoteConsumer::Create(
      cluster.ClientOptions(net::ProduceAcks::kLeader), "events");
  ASSERT_TRUE(consumer.ok());

  cluster.StopNode(0);

  // A survivor promotes itself (unique leadership, higher epoch).
  EXPECT_TRUE(Eventually([&] { return cluster.LeaderOf("events") > 0; }));
  const int leader = cluster.LeaderOf("events");
  ASSERT_GT(leader, 0);
  auto view = cluster.node(leader).manager->View("events");
  ASSERT_TRUE(view.ok());
  EXPECT_GE(view->epoch, 2u);

  // The same producer keeps working through the failover (the router
  // discovers the new leader from the surviving bootstrap endpoints).
  for (int i = 0; i < 10; ++i) {
    auto sent = producer.Send("events", "k", "post" + std::to_string(i), 0);
    ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  }

  // The consumer drains everything that was ever acked, in one group
  // session spanning the failover — no manual intervention.
  std::vector<std::string> values;
  EXPECT_TRUE(Eventually([&] {
    auto polled = (*consumer)->Poll(100ms);
    if (polled.ok()) {
      for (const auto& record : *polled) values.push_back(record.value);
    }
    return values.size() >= 20;
  }));
  EXPECT_EQ(values.size(), 20u);
  EXPECT_EQ(values.front(), "pre0");
  EXPECT_EQ(values.back(), "post9");
}

TEST(ReplCluster, RetentionGapSurfacesStalledPartition) {
  MiniCluster cluster(3);
  // Tiny retention: the leader's in-memory log keeps only the last few
  // records. With one follower down, produce past the window, then bring
  // it back empty — the leader can no longer serve contiguously from the
  // follower's end, and the follower must say so instead of stalling
  // silently.
  const ps::TopicConfig config{1, /*retention_records=*/4};
  for (int i = 0; i < cluster.size(); ++i) {
    ASSERT_TRUE(cluster.node(i).manager->AddTopic("events", config, 1).ok());
  }
  cluster.StopNode(2);
  net::RemoteProducer producer(cluster.ClientOptions(net::ProduceAcks::kQuorum));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.Send("events", "k", "v" + std::to_string(i), 0).ok());
  }
  cluster.StartNode(2);
  ASSERT_TRUE(cluster.node(2).manager->AddTopic("events", config, 1).ok());
  EXPECT_TRUE(Eventually([&] {
    auto view = cluster.node(2).manager->View("events");
    return view.ok() && view->partitions[0].stalled;
  }));
  // The flag reaches operators through the /healthz json.
  EXPECT_NE(cluster.node(2).manager->HealthJson().find("\"stalled\":true"),
            std::string::npos);
  // The healthy copies never raise it.
  auto view = cluster.node(1).manager->View("events");
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->partitions[0].stalled);
}

TEST(ReplManager, PhantomFetchAckDoesNotAdvanceHwPastLeaderEnd) {
  // Followers fetching beyond the leader's end (a diverged log) must not
  // earn ack credit for records the leader never served: the high
  // watermark may only cover offsets a real quorum identically holds.
  ps::Broker broker;
  ReplicaOptions options;
  options.self = BrokerEndpoint{1, "127.0.0.1", 1};
  options.brokers = {BrokerEndpoint{1, "127.0.0.1", 1},
                     BrokerEndpoint{2, "127.0.0.1", 2},
                     BrokerEndpoint{3, "127.0.0.1", 3}};
  ReplicationManager manager(&broker, options);
  ASSERT_TRUE(manager.AddTopic("events", ps::TopicConfig{1}, 1).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(broker.Produce("events", ps::Record{"k", "v", 0}).ok());
  }

  for (const std::uint32_t follower : {2u, 3u}) {
    net::ReplicaFetchRequest fetch;
    fetch.follower = follower;
    fetch.epoch = 1;
    fetch.topic = "events";
    fetch.entries.push_back(net::ReplicaFetchRequest::Entry{0, 100, 512});
    net::ReplicaFetchResponse response;
    ASSERT_TRUE(manager.HandleReplicaFetch(fetch, &response).ok());
  }
  auto view = manager.View("events");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->partitions[0].high_watermark, 5);  // clamped, not 100
}

TEST(ReplManager, PromoteNeverTruncatesBelowHighWatermark) {
  // A promote announcement whose log end sits below our quorum-committed
  // high watermark must not cut committed (possibly consumed) records.
  ps::Broker broker;
  ReplicaOptions options;
  options.self = BrokerEndpoint{1, "127.0.0.1", 1};
  options.brokers = {BrokerEndpoint{1, "127.0.0.1", 1},
                     BrokerEndpoint{2, "127.0.0.1", 2},
                     BrokerEndpoint{3, "127.0.0.1", 3}};
  ReplicationManager manager(&broker, options);
  ASSERT_TRUE(manager.AddTopic("events", ps::TopicConfig{1}, 1).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(broker.Produce("events", ps::Record{"k", "v", 0}).ok());
  }
  // Both followers catch up to the end: hw reaches 5.
  for (const std::uint32_t follower : {2u, 3u}) {
    net::ReplicaFetchRequest fetch;
    fetch.follower = follower;
    fetch.epoch = 1;
    fetch.topic = "events";
    fetch.entries.push_back(net::ReplicaFetchRequest::Entry{0, 5, 512});
    net::ReplicaFetchResponse response;
    ASSERT_TRUE(manager.HandleReplicaFetch(fetch, &response).ok());
  }
  auto view = manager.View("events");
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->partitions[0].high_watermark, 5);

  net::PromoteLeaderRequest promote;
  promote.leader = 2;
  promote.epoch = 2;
  promote.topic = "events";
  promote.entries.push_back(net::PromoteLeaderRequest::Entry{0, 2});
  net::PromoteLeaderResponse response;
  ASSERT_TRUE(manager.HandlePromoteLeader(promote, &response).ok());

  auto log = broker.GetLog("events", 0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->EndOffset(), 5);  // committed prefix survives
  EXPECT_FALSE(manager.IsLeader("events"));
}

TEST(ReplManager, StaleEpochFetchEarnsNoCreditAndReturnsEpoch) {
  // A fetch carrying an older epoch gets an epoch-only answer: no records,
  // no ack credit. The follower adopts the epoch and refetches cleanly.
  ps::Broker broker;
  ReplicaOptions options;
  options.self = BrokerEndpoint{1, "127.0.0.1", 1};
  options.brokers = {BrokerEndpoint{1, "127.0.0.1", 1},
                     BrokerEndpoint{2, "127.0.0.1", 2},
                     BrokerEndpoint{3, "127.0.0.1", 3}};
  ReplicationManager manager(&broker, options);
  ASSERT_TRUE(manager.AddTopic("events", ps::TopicConfig{1}, 1).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(broker.Produce("events", ps::Record{"k", "v", 0}).ok());
  }
  // Re-promote self at a higher epoch (as after winning an election).
  net::PromoteLeaderRequest promote;
  promote.leader = 1;
  promote.epoch = 3;
  promote.topic = "events";
  promote.entries.push_back(net::PromoteLeaderRequest::Entry{0, 5});
  net::PromoteLeaderResponse promote_response;
  ASSERT_TRUE(manager.HandlePromoteLeader(promote, &promote_response).ok());
  ASSERT_TRUE(manager.IsLeader("events"));

  for (const std::uint32_t follower : {2u, 3u}) {
    net::ReplicaFetchRequest stale;
    stale.follower = follower;
    stale.epoch = 1;
    stale.topic = "events";
    stale.entries.push_back(net::ReplicaFetchRequest::Entry{0, 5, 512});
    net::ReplicaFetchResponse response;
    ASSERT_TRUE(manager.HandleReplicaFetch(stale, &response).ok());
    EXPECT_EQ(response.epoch, 3u);
    EXPECT_TRUE(response.entries.empty());
  }
  auto view = manager.View("events");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->partitions[0].high_watermark, 0);  // no phantom quorum

  // The same fetch under the current epoch is served and credited.
  for (const std::uint32_t follower : {2u, 3u}) {
    net::ReplicaFetchRequest current;
    current.follower = follower;
    current.epoch = 3;
    current.topic = "events";
    current.entries.push_back(net::ReplicaFetchRequest::Entry{0, 5, 512});
    net::ReplicaFetchResponse response;
    ASSERT_TRUE(manager.HandleReplicaFetch(current, &response).ok());
    ASSERT_EQ(response.entries.size(), 1u);
  }
  view = manager.View("events");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->partitions[0].high_watermark, 5);

  // A stale-epoch explicit ack is refused the same way.
  net::ReplicaAckRequest stale_ack;
  stale_ack.follower = 2;
  stale_ack.epoch = 1;
  stale_ack.topic = "events";
  stale_ack.entries.push_back(net::ReplicaAckRequest::Entry{0, 100});
  net::ReplicaAckResponse ack_response;
  EXPECT_TRUE(manager.HandleReplicaAck(stale_ack, &ack_response).IsNotLeader());
}

TEST(ReplManager, PromoteTruncatesDivergedTail) {
  // Single manager driven directly through the hook interface: a new
  // leader's announcement with a shorter log must truncate the local tail
  // (it was never quorum-committed) and depose the local leader.
  ps::Broker broker;
  ReplicaOptions options;
  options.self = BrokerEndpoint{1, "127.0.0.1", 1};
  options.brokers = {BrokerEndpoint{1, "127.0.0.1", 1},
                     BrokerEndpoint{2, "127.0.0.1", 2},
                     BrokerEndpoint{3, "127.0.0.1", 3}};
  ReplicationManager manager(&broker, options);
  ASSERT_TRUE(manager.AddTopic("events", ps::TopicConfig{1}, 1).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(broker.Produce("events", ps::Record{"k", "v", 0}).ok());
  }
  ASSERT_TRUE(manager.IsLeader("events"));

  net::PromoteLeaderRequest promote;
  promote.leader = 2;
  promote.epoch = 2;
  promote.topic = "events";
  promote.entries.push_back(net::PromoteLeaderRequest::Entry{0, 2});
  net::PromoteLeaderResponse response;
  ASSERT_TRUE(manager.HandlePromoteLeader(promote, &response).ok());

  auto log = broker.GetLog("events", 0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->EndOffset(), 2);  // offsets [2,5) dropped
  ASSERT_EQ(response.entries.size(), 1u);
  EXPECT_EQ(response.entries[0].log_end, 2);
  EXPECT_FALSE(manager.IsLeader("events"));
  EXPECT_TRUE(manager.CheckProduce("events").IsNotLeader());

  // A stale re-announcement of the deposed epoch is refused.
  net::PromoteLeaderRequest stale;
  stale.leader = 1;
  stale.epoch = 1;
  stale.topic = "events";
  net::PromoteLeaderResponse stale_response;
  EXPECT_FALSE(manager.HandlePromoteLeader(stale, &stale_response).ok());
}

}  // namespace
}  // namespace strata::repl
