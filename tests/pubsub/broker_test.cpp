#include "pubsub/broker.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/fs.hpp"
#include "pubsub/producer.hpp"

namespace strata::ps {
namespace {

Record MakeRecord(const std::string& key, const std::string& value) {
  Record r;
  r.key = key;
  r.value = value;
  return r;
}

TEST(Broker, CreateTopicIdempotent) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 3}).ok());
  EXPECT_TRUE(broker.CreateTopic("t", {.partitions = 3}).ok());
  EXPECT_EQ(broker.CreateTopic("t", {.partitions = 5}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(broker.HasTopic("t"));
  EXPECT_FALSE(broker.HasTopic("missing"));
  EXPECT_EQ(*broker.PartitionCount("t"), 3);
}

TEST(Broker, RejectsInvalidPartitionCount) {
  Broker broker;
  EXPECT_EQ(broker.CreateTopic("bad", {.partitions = 0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(Broker, ProduceToMissingTopicFails) {
  Broker broker;
  EXPECT_TRUE(broker.Produce("none", MakeRecord("", "x")).status().IsNotFound());
}

TEST(Broker, KeyedRecordsLandOnStablePartition) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 4}).ok());
  int first_partition = -1;
  for (int i = 0; i < 10; ++i) {
    auto result = broker.Produce("t", MakeRecord("stable-key", "v"));
    ASSERT_TRUE(result.ok());
    if (first_partition < 0) first_partition = result->first;
    EXPECT_EQ(result->first, first_partition);
  }
}

TEST(Broker, KeylessRecordsRoundRobin) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 4}).ok());
  std::set<int> partitions;
  for (int i = 0; i < 8; ++i) {
    auto result = broker.Produce("t", MakeRecord("", "v"));
    ASSERT_TRUE(result.ok());
    partitions.insert(result->first);
  }
  EXPECT_EQ(partitions.size(), 4u);
}

TEST(Broker, OffsetsArePerPartition) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
  std::map<int, std::int64_t> last_offset;
  for (int i = 0; i < 20; ++i) {
    auto result = broker.Produce("t", MakeRecord("", "v"));
    ASSERT_TRUE(result.ok());
    const auto [partition, offset] = *result;
    if (last_offset.contains(partition)) {
      EXPECT_EQ(offset, last_offset[partition] + 1);
    } else {
      EXPECT_EQ(offset, 0);
    }
    last_offset[partition] = offset;
  }
}

TEST(Broker, GetLogBoundsChecked) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
  EXPECT_TRUE(broker.GetLog("t", 0).ok());
  EXPECT_TRUE(broker.GetLog("t", 1).ok());
  EXPECT_FALSE(broker.GetLog("t", 2).ok());
  EXPECT_FALSE(broker.GetLog("t", -1).ok());
  EXPECT_FALSE(broker.GetLog("zzz", 0).ok());
}

TEST(Broker, GroupAssignmentCoversAllPartitionsOnce) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 6}).ok());
  auto m1 = broker.JoinGroup("g", "t");
  auto m2 = broker.JoinGroup("g", "t");
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());

  std::uint64_t gen1 = 0;
  std::uint64_t gen2 = 0;
  auto a1 = broker.Assignment("g", *m1, &gen1);
  auto a2 = broker.Assignment("g", *m2, &gen2);
  EXPECT_EQ(gen1, gen2);

  std::set<int> all;
  for (const auto& tp : a1) all.insert(tp.partition);
  for (const auto& tp : a2) {
    EXPECT_FALSE(all.contains(tp.partition)) << "partition assigned twice";
    all.insert(tp.partition);
  }
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(a1.size(), 3u);
  EXPECT_EQ(a2.size(), 3u);
}

TEST(Broker, RebalanceOnLeave) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 4}).ok());
  auto m1 = broker.JoinGroup("g", "t");
  auto m2 = broker.JoinGroup("g", "t");
  ASSERT_TRUE(m1.ok() && m2.ok());

  std::uint64_t gen_before = 0;
  (void)broker.Assignment("g", *m1, &gen_before);

  broker.LeaveGroup("g", *m2);
  std::uint64_t gen_after = 0;
  auto a1 = broker.Assignment("g", *m1, &gen_after);
  EXPECT_GT(gen_after, gen_before);
  EXPECT_EQ(a1.size(), 4u);  // survivor owns everything
}

TEST(Broker, GroupBoundToSingleTopic) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t1", {.partitions = 1}).ok());
  ASSERT_TRUE(broker.CreateTopic("t2", {.partitions = 1}).ok());
  ASSERT_TRUE(broker.JoinGroup("g", "t1").ok());
  EXPECT_EQ(broker.JoinGroup("g", "t2").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Broker, CommitAndFetchOffsets) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  const TopicPartition tp{"t", 0};
  EXPECT_TRUE(broker.CommittedOffset("g", tp).status().IsNotFound());
  ASSERT_TRUE(broker.CommitOffset("g", tp, 42).ok());
  EXPECT_EQ(*broker.CommittedOffset("g", tp), 42);
  ASSERT_TRUE(broker.CommitOffset("g", tp, 50).ok());
  EXPECT_EQ(*broker.CommittedOffset("g", tp), 50);
}

TEST(Broker, PersistentOffsetsSurviveRestart) {
  strata::fs::ScopedTempDir dir("broker-offsets");
  BrokerOptions options;
  options.data_dir = dir.path();
  const TopicPartition tp{"t", 0};
  {
    Broker broker(options);
    ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
    ASSERT_TRUE(broker.CommitOffset("g", tp, 7).ok());
  }
  Broker broker(options);
  EXPECT_EQ(*broker.CommittedOffset("g", tp), 7);
}

TEST(Broker, PersistentTopicDataSurvivesRestart) {
  strata::fs::ScopedTempDir dir("broker-data");
  BrokerOptions options;
  options.data_dir = dir.path();
  {
    Broker broker(options);
    ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
    Producer producer(&broker);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          producer.Send("t", "key" + std::to_string(i), "v", 0).ok());
    }
  }
  Broker broker(options);
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 2}).ok());
  std::int64_t total = 0;
  for (int p = 0; p < 2; ++p) {
    total += (*broker.GetLog("t", p))->EndOffset();
  }
  EXPECT_EQ(total, 20);
}

TEST(Broker, CloseRejectsProduce) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  broker.Close();
  EXPECT_TRUE(broker.Produce("t", MakeRecord("", "x")).status().IsClosed());
}

}  // namespace
}  // namespace strata::ps
