#include "pubsub/consumer.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/fs.hpp"
#include "pubsub/producer.hpp"

namespace strata::ps {
namespace {

constexpr auto kShortTimeout = std::chrono::microseconds(10'000);
constexpr auto kLongTimeout = std::chrono::microseconds(2'000'000);

class ConsumerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 2}).ok());
  }
  Broker broker_;
  Producer producer_{&broker_};
};

TEST_F(ConsumerTest, ConsumesProducedRecords) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer_.Send("t", "k" + std::to_string(i),
                               "v" + std::to_string(i), i)
                    .ok());
  }
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  std::vector<ConsumedRecord> all;
  while (all.size() < 10) {
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->empty()) << "timed out before consuming everything";
    for (auto& record : *batch) all.push_back(std::move(record));
  }
  EXPECT_EQ(all.size(), 10u);
  std::set<std::string> keys;
  for (const auto& record : all) keys.insert(record.key);
  EXPECT_EQ(keys.size(), 10u);
}

TEST_F(ConsumerTest, PollTimesOutWhenIdle) {
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  auto batch = consumer->Poll(kShortTimeout);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST_F(ConsumerTest, CreateFailsForMissingTopic) {
  EXPECT_FALSE(Consumer::Create(&broker_, "missing").ok());
}

TEST_F(ConsumerTest, ConsumedRecordsCarryMetadata) {
  ASSERT_TRUE(producer_.Send("t", "key", "value", 777).ok());
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  auto batch = consumer->Poll(kLongTimeout);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  const ConsumedRecord& record = (*batch)[0];
  EXPECT_EQ(record.topic, "t");
  EXPECT_GE(record.partition, 0);
  EXPECT_EQ(record.offset, 0);
  EXPECT_EQ(record.key, "key");
  EXPECT_EQ(record.value, "value");
  EXPECT_EQ(record.timestamp, 777);
}

TEST_F(ConsumerTest, GroupResumesFromCommittedOffset) {
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(producer_.Send("t", "", std::to_string(i), 0).ok());
  }
  {
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
    std::size_t consumed = 0;
    while (consumed < 6) {
      auto batch = consumer->Poll(kLongTimeout);
      ASSERT_TRUE(batch.ok());
      ASSERT_FALSE(batch->empty());
      consumed += batch->size();
    }
  }
  // Same group: nothing left.
  {
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
    auto batch = consumer->Poll(kShortTimeout);
    ASSERT_TRUE(batch.ok());
    EXPECT_TRUE(batch->empty());
  }
  // Fresh group with earliest reset: sees everything again.
  {
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", {.group = "g2"})).value();
    std::size_t consumed = 0;
    while (consumed < 6) {
      auto batch = consumer->Poll(kLongTimeout);
      ASSERT_TRUE(batch.ok());
      ASSERT_FALSE(batch->empty());
      consumed += batch->size();
    }
  }
}

TEST_F(ConsumerTest, ManualCommit) {
  ASSERT_TRUE(producer_.Send("t", "", "x", 0).ok());
  {
    ConsumerOptions options;
    options.group = "manual";
    options.auto_commit = false;
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", options)).value();
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), 1u);
    // No commit: the next consumer in this group re-reads the record.
  }
  {
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", {.group = "manual"}))
            .value();
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch->size(), 1u);
  }
}

TEST_F(ConsumerTest, LatestResetSkipsBacklog) {
  ASSERT_TRUE(producer_.Send("t", "", "old", 0).ok());
  ConsumerOptions options;
  options.group = "latest";
  options.reset = ConsumerOptions::AutoOffsetReset::kLatest;
  auto consumer = std::move(Consumer::Create(&broker_, "t", options)).value();
  auto batch = consumer->Poll(kShortTimeout);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());

  ASSERT_TRUE(producer_.Send("t", "", "new", 0).ok());
  // Poll until the new record arrives (it may be on either partition; the
  // blocking wait covers only the first, so retry briefly).
  std::vector<ConsumedRecord> got;
  for (int attempt = 0; attempt < 50 && got.empty(); ++attempt) {
    auto polled = consumer->Poll(kShortTimeout);
    ASSERT_TRUE(polled.ok());
    got = std::move(*polled);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].value, "new");
}

TEST_F(ConsumerTest, TwoMembersSplitThePartitions) {
  auto c1 = std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
  auto c2 = std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
  // Trigger assignment refresh.
  (void)c1->Poll(kShortTimeout);
  (void)c2->Poll(kShortTimeout);

  std::set<int> p1;
  for (const auto& tp : c1->assignment()) p1.insert(tp.partition);
  std::set<int> p2;
  for (const auto& tp : c2->assignment()) p2.insert(tp.partition);
  EXPECT_EQ(p1.size() + p2.size(), 2u);
  for (int p : p1) EXPECT_FALSE(p2.contains(p));
}

TEST_F(ConsumerTest, BlockingPollWakesOnProduce) {
  ASSERT_TRUE(broker_.CreateTopic("single", {.partitions = 1}).ok());
  auto consumer = std::move(Consumer::Create(&broker_, "single")).value();
  std::thread producer_thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Producer producer(&broker_);
    ASSERT_TRUE(producer.Send("single", "", "wake", 0).ok());
  });
  auto batch = consumer->Poll(kLongTimeout);
  producer_thread.join();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].value, "wake");
}

TEST_F(ConsumerTest, SeekToEndSkipsExistingRecords) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(producer_.Send("t", "", std::to_string(i), 0).ok());
  }
  auto consumer =
      std::move(Consumer::Create(&broker_, "t", {.group = "seek"})).value();
  ASSERT_TRUE(consumer->SeekToEnd().ok());
  auto batch = consumer->Poll(kShortTimeout);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST_F(ConsumerTest, EndToEndThroughputManyRecords) {
  constexpr int kCount = 20'000;
  std::thread producer_thread([&] {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(
          producer_.Send("t", "k" + std::to_string(i % 100), "v", i).ok());
    }
  });
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  std::size_t consumed = 0;
  while (consumed < kCount) {
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;  // premature timeout = failure below
    consumed += batch->size();
  }
  producer_thread.join();
  EXPECT_EQ(consumed, static_cast<std::size_t>(kCount));
}

}  // namespace
}  // namespace strata::ps
