#include "pubsub/consumer.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/fs.hpp"
#include "pubsub/producer.hpp"

namespace strata::ps {
namespace {

constexpr auto kShortTimeout = std::chrono::microseconds(10'000);
constexpr auto kLongTimeout = std::chrono::microseconds(2'000'000);

class ConsumerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(broker_.CreateTopic("t", {.partitions = 2}).ok());
  }
  Broker broker_;
  Producer producer_{&broker_};
};

TEST_F(ConsumerTest, ConsumesProducedRecords) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer_.Send("t", "k" + std::to_string(i),
                               "v" + std::to_string(i), i)
                    .ok());
  }
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  std::vector<ConsumedRecord> all;
  while (all.size() < 10) {
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->empty()) << "timed out before consuming everything";
    for (auto& record : *batch) all.push_back(std::move(record));
  }
  EXPECT_EQ(all.size(), 10u);
  std::set<std::string> keys;
  for (const auto& record : all) keys.insert(record.key);
  EXPECT_EQ(keys.size(), 10u);
}

TEST_F(ConsumerTest, PollTimesOutWhenIdle) {
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  auto batch = consumer->Poll(kShortTimeout);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsTimeout());
}

TEST_F(ConsumerTest, ZeroTimeoutProbeReturnsEmptyOkBatch) {
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  // A probe is not a deadline: nothing available is an empty Ok batch, not
  // Status::Timeout.
  auto batch = consumer->Poll(std::chrono::microseconds{0});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST_F(ConsumerTest, PollSurfacesClosedWhenBrokerShutsDownMidWait) {
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    broker_.Close();
  });
  auto batch = consumer->Poll(kLongTimeout);
  closer.join();
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsClosed());
}

TEST_F(ConsumerTest, CreateFailsForMissingTopic) {
  EXPECT_FALSE(Consumer::Create(&broker_, "missing").ok());
}

TEST_F(ConsumerTest, ConsumedRecordsCarryMetadata) {
  ASSERT_TRUE(producer_.Send("t", "key", "value", 777).ok());
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  auto batch = consumer->Poll(kLongTimeout);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  const ConsumedRecord& record = (*batch)[0];
  EXPECT_EQ(record.topic, "t");
  EXPECT_GE(record.partition, 0);
  EXPECT_EQ(record.offset, 0);
  EXPECT_EQ(record.key, "key");
  EXPECT_EQ(record.value, "value");
  EXPECT_EQ(record.timestamp, 777);
}

TEST_F(ConsumerTest, GroupResumesFromCommittedOffset) {
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(producer_.Send("t", "", std::to_string(i), 0).ok());
  }
  {
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
    std::size_t consumed = 0;
    while (consumed < 6) {
      auto batch = consumer->Poll(kLongTimeout);
      ASSERT_TRUE(batch.ok());
      ASSERT_FALSE(batch->empty());
      consumed += batch->size();
    }
  }
  // Same group: nothing left, so the poll window times out.
  {
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
    auto batch = consumer->Poll(kShortTimeout);
    ASSERT_FALSE(batch.ok());
    EXPECT_TRUE(batch.status().IsTimeout());
  }
  // Fresh group with earliest reset: sees everything again.
  {
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", {.group = "g2"})).value();
    std::size_t consumed = 0;
    while (consumed < 6) {
      auto batch = consumer->Poll(kLongTimeout);
      ASSERT_TRUE(batch.ok());
      ASSERT_FALSE(batch->empty());
      consumed += batch->size();
    }
  }
}

TEST_F(ConsumerTest, ManualCommit) {
  ASSERT_TRUE(producer_.Send("t", "", "x", 0).ok());
  {
    ConsumerOptions options;
    options.group = "manual";
    options.auto_commit = false;
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", options)).value();
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), 1u);
    // No commit: the next consumer in this group re-reads the record.
  }
  {
    auto consumer =
        std::move(Consumer::Create(&broker_, "t", {.group = "manual"}))
            .value();
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch->size(), 1u);
  }
}

TEST_F(ConsumerTest, LatestResetSkipsBacklog) {
  ASSERT_TRUE(producer_.Send("t", "", "old", 0).ok());
  ConsumerOptions options;
  options.group = "latest";
  options.reset = ConsumerOptions::AutoOffsetReset::kLatest;
  auto consumer = std::move(Consumer::Create(&broker_, "t", options)).value();
  auto batch = consumer->Poll(kShortTimeout);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsTimeout());

  ASSERT_TRUE(producer_.Send("t", "", "new", 0).ok());
  // Poll until the new record arrives (it may be on either partition; the
  // blocking wait covers only the first, so retry briefly).
  std::vector<ConsumedRecord> got;
  for (int attempt = 0; attempt < 50 && got.empty(); ++attempt) {
    auto polled = consumer->Poll(kShortTimeout);
    if (!polled.ok()) {
      ASSERT_TRUE(polled.status().IsTimeout()) << polled.status().ToString();
      continue;
    }
    got = std::move(*polled);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].value, "new");
}

TEST_F(ConsumerTest, TwoMembersSplitThePartitions) {
  auto c1 = std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
  auto c2 = std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
  // Trigger assignment refresh.
  (void)c1->Poll(kShortTimeout);
  (void)c2->Poll(kShortTimeout);

  std::set<int> p1;
  for (const auto& tp : c1->assignment()) p1.insert(tp.partition);
  std::set<int> p2;
  for (const auto& tp : c2->assignment()) p2.insert(tp.partition);
  EXPECT_EQ(p1.size() + p2.size(), 2u);
  for (int p : p1) EXPECT_FALSE(p2.contains(p));
}

TEST_F(ConsumerTest, BlockingPollWakesOnProduce) {
  ASSERT_TRUE(broker_.CreateTopic("single", {.partitions = 1}).ok());
  auto consumer = std::move(Consumer::Create(&broker_, "single")).value();
  std::thread producer_thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Producer producer(&broker_);
    ASSERT_TRUE(producer.Send("single", "", "wake", 0).ok());
  });
  auto batch = consumer->Poll(kLongTimeout);
  producer_thread.join();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].value, "wake");
}

TEST_F(ConsumerTest, BlockingPollWakesOnAnyAssignedPartition) {
  // Find a key that hashes to partition 1 (the mapping depends only on the
  // key hash and the partition count, so a scratch topic with the same
  // partition count probes it without touching "t").
  ASSERT_TRUE(broker_.CreateTopic("probe", {.partitions = 2}).ok());
  std::string key_p1;
  for (int i = 0; i < 64 && key_p1.empty(); ++i) {
    const std::string key = "key" + std::to_string(i);
    auto sent = producer_.Send("probe", key, "x", 0);
    ASSERT_TRUE(sent.ok());
    if (sent->first == 1) key_p1 = key;
  }
  ASSERT_FALSE(key_p1.empty());

  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  (void)consumer->Poll(kShortTimeout);
  ASSERT_EQ(consumer->assignment().size(), 2u);  // sole member: p0 and p1

  std::thread producer_thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Producer producer(&broker_);
    ASSERT_TRUE(producer.Send("t", key_p1, "wake", 0).ok());
  });
  const auto start = std::chrono::steady_clock::now();
  auto batch = consumer->Poll(kLongTimeout);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  producer_thread.join();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].partition, 1);
  EXPECT_EQ((*batch)[0].value, "wake");
  // A consumer waiting only on partition 0's log sleeps through the whole
  // 2 s timeout here; waking on any assigned partition returns promptly.
  EXPECT_LT(elapsed, std::chrono::milliseconds(1000));
}

TEST_F(ConsumerTest, RebalanceDropsUncommittedOffsetsOfRevokedPartitions) {
  // Seed both partitions, tracking how many records each got.
  int per_partition[2] = {0, 0};
  int key_index = 0;
  while (per_partition[0] < 2 || per_partition[1] < 2) {
    auto sent = producer_.Send("t", "k" + std::to_string(key_index++), "v", 0);
    ASSERT_TRUE(sent.ok());
    ++per_partition[sent->first];
  }
  const int total = per_partition[0] + per_partition[1];

  // c1 is the sole member: it consumes both partitions without committing.
  ConsumerOptions manual;
  manual.group = "g";
  manual.auto_commit = false;
  auto c1 = std::move(Consumer::Create(&broker_, "t", manual)).value();
  int consumed = 0;
  while (consumed < total) {
    auto batch = c1->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->empty());
    consumed += static_cast<int>(batch->size());
  }

  // c2 joins: the rebalance leaves c1 with partition 0 and hands partition 1
  // to c2. c1 polls once to pick up the new generation.
  auto c2 = std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
  (void)c1->Poll(kShortTimeout);
  ASSERT_EQ(c1->assignment().size(), 1u);
  EXPECT_EQ(c1->assignment()[0].partition, 0);

  // Partition 1 moves on under its new owner: more records arrive and c2
  // consumes all of them, committing its progress as it goes.
  int added_p1 = 0;
  key_index = 1000;
  while (added_p1 < 3) {
    auto sent = producer_.Send("t", "n" + std::to_string(key_index++), "v", 0);
    ASSERT_TRUE(sent.ok());
    if (sent->first == 1) ++added_p1;
  }
  const std::int64_t p1_end = per_partition[1] + added_p1;
  int c2_consumed = 0;
  while (c2_consumed < p1_end) {
    auto batch = c2->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->empty());
    c2_consumed += static_cast<int>(batch->size());
  }
  const TopicPartition p1{"t", 1};
  ASSERT_EQ(std::move(broker_.CommittedOffset("g", p1)).value(), p1_end);

  // c1's late commit must not clobber the new owner's progress with the
  // stale offset it held from before the rebalance.
  ASSERT_TRUE(c1->Commit().ok());
  EXPECT_EQ(std::move(broker_.CommittedOffset("g", p1)).value(), p1_end);
  // Its own partition's progress still commits normally.
  EXPECT_EQ(std::move(broker_.CommittedOffset("g", TopicPartition{"t", 0}))
                .value(),
            per_partition[0]);
}

TEST_F(ConsumerTest, SeekToEndSkipsExistingRecords) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(producer_.Send("t", "", std::to_string(i), 0).ok());
  }
  auto consumer =
      std::move(Consumer::Create(&broker_, "t", {.group = "seek"})).value();
  ASSERT_TRUE(consumer->SeekToEnd().ok());
  auto batch = consumer->Poll(kShortTimeout);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsTimeout());
}

TEST_F(ConsumerTest, RebalanceUnderLoadLosesNoRecords) {
  // A producer keeps sending while a second member joins mid-stream (forcing
  // a rebalance the first member picks up inside Poll's RefreshAssignment).
  // Every record must still be consumed, and the group's committed offsets
  // must land exactly at the partition ends — no lost records, no commit
  // clobbering the new owner's progress.
  constexpr int kCount = 4000;
  std::thread producer_thread([&] {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(producer_
                      .Send("t", "k" + std::to_string(i % 64),
                            std::to_string(i), i)
                      .ok());
      if (i % 400 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  std::mutex mu;
  std::set<std::string> values;  // distinct payloads: coverage check
  std::atomic<bool> stop{false};
  auto drain = [&](Consumer* consumer) {
    while (!stop.load()) {
      auto batch = consumer->Poll(std::chrono::microseconds(20'000));
      if (!batch.ok()) {
        if (batch.status().IsTimeout()) continue;
        break;
      }
      std::lock_guard lock(mu);
      for (const auto& record : *batch) values.insert(record.value);
      if (values.size() == static_cast<std::size_t>(kCount)) stop.store(true);
    }
  };

  auto c1 = std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
  std::thread t1([&] { drain(c1.get()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto c2 = std::move(Consumer::Create(&broker_, "t", {.group = "g"})).value();
  std::thread t2([&] { drain(c2.get()); });

  producer_thread.join();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!stop.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  t1.join();
  t2.join();

  EXPECT_EQ(values.size(), static_cast<std::size_t>(kCount))
      << "records lost across the rebalance";

  // Both members' auto-commits (plus a final explicit one) must leave the
  // group's committed offsets exactly at the partition ends.
  ASSERT_TRUE(c1->Commit().ok());
  ASSERT_TRUE(c2->Commit().ok());
  for (int partition = 0; partition < 2; ++partition) {
    const TopicPartition tp{"t", partition};
    auto log = std::move(broker_.GetLog("t", partition)).value();
    auto committed = broker_.CommittedOffset("g", tp);
    ASSERT_TRUE(committed.ok()) << "partition " << partition;
    EXPECT_EQ(*committed, log->EndOffset()) << "partition " << partition;
  }
}

// ----- Seek (checkpoint replay): explicit repositioning of one partition ---

TEST_F(ConsumerTest, SeekBackReplaysRecords) {
  ASSERT_TRUE(broker_.CreateTopic("seek", {.partitions = 1}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer_.Send("seek", "k", "v" + std::to_string(i), i).ok());
  }
  auto consumer = std::move(Consumer::Create(&broker_, "seek")).value();
  std::size_t consumed = 0;
  while (consumed < 10) {
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    consumed += batch->size();
  }

  ASSERT_TRUE(consumer->Seek("seek", 0, 3).ok());
  std::vector<ConsumedRecord> replayed;
  while (replayed.size() < 7) {
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->empty()) << "replay stalled";
    for (auto& record : *batch) replayed.push_back(std::move(record));
  }
  ASSERT_EQ(replayed.size(), 7u);
  EXPECT_EQ(replayed.front().offset, 3);
  EXPECT_EQ(replayed.front().value, "v3");
  EXPECT_EQ(replayed.back().offset, 9);
}

TEST_F(ConsumerTest, SeekToLogEndIsValidAndYieldsNothing) {
  ASSERT_TRUE(broker_.CreateTopic("seek", {.partitions = 1}).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(producer_.Send("seek", "k", "v", i).ok());
  }
  auto consumer = std::move(Consumer::Create(&broker_, "seek")).value();
  ASSERT_TRUE(consumer->Seek("seek", 0, 5).ok());  // end is a valid position
  auto batch = consumer->Poll(kShortTimeout);
  EXPECT_TRUE(batch.status().IsTimeout());
}

TEST_F(ConsumerTest, SeekBelowRetentionStartIsCleanError) {
  // A 5-record retention window on 8 appends truncates offsets 0..2 away.
  ASSERT_TRUE(
      broker_
          .CreateTopic("trunc", {.partitions = 1, .retention_records = 5})
          .ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(producer_.Send("trunc", "k", "v" + std::to_string(i), i).ok());
  }
  auto consumer = std::move(Consumer::Create(&broker_, "trunc")).value();

  // Replaying from a truncated offset must fail loudly — the caller (query
  // recovery) needs to know the checkpoint outlived retention; a silent
  // heal would hide the gap and a retry loop would spin forever.
  const Status truncated = consumer->Seek("trunc", 0, 1);
  ASSERT_FALSE(truncated.ok());
  EXPECT_TRUE(truncated.IsOutOfRange()) << truncated.ToString();

  // The failed seek moved nothing: the surviving range still reads fine.
  ASSERT_TRUE(consumer->Seek("trunc", 0, 3).ok());
  auto batch = consumer->Poll(kLongTimeout);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->empty());
  EXPECT_EQ(batch->front().offset, 3);
  EXPECT_EQ(batch->front().value, "v3");
}

TEST_F(ConsumerTest, SeekPastEndAndUnassignedAreErrors) {
  ASSERT_TRUE(broker_.CreateTopic("seek", {.partitions = 1}).ok());
  ASSERT_TRUE(producer_.Send("seek", "k", "v", 0).ok());
  auto consumer = std::move(Consumer::Create(&broker_, "seek")).value();

  const Status future = consumer->Seek("seek", 0, 100);
  ASSERT_FALSE(future.ok());
  EXPECT_TRUE(future.IsOutOfRange());

  // Partition 7 does not exist, and topic "t" is not this consumer's.
  EXPECT_FALSE(consumer->Seek("seek", 7, 0).ok());
  EXPECT_FALSE(consumer->Seek("t", 0, 0).ok());
}

TEST_F(ConsumerTest, SeekAloneCommitsNothing) {
  ASSERT_TRUE(broker_.CreateTopic("seek", {.partitions = 1}).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(producer_.Send("seek", "k", "v", i).ok());
  }
  ConsumerOptions options;
  options.group = "g";
  options.auto_commit = false;
  {
    auto consumer =
        std::move(Consumer::Create(&broker_, "seek", options)).value();
    std::size_t consumed = 0;
    while (consumed < 6) {
      auto batch = consumer->Poll(kLongTimeout);
      ASSERT_TRUE(batch.ok());
      consumed += batch->size();
    }
    ASSERT_TRUE(consumer->Commit().ok());  // group offset now 6
    // Seeking back and committing without polling must not rewind the
    // group: a seek is a position change, not consumption.
    ASSERT_TRUE(consumer->Seek("seek", 0, 0).ok());
    ASSERT_TRUE(consumer->Commit().ok());
  }
  auto resumed = std::move(Consumer::Create(&broker_, "seek", options)).value();
  auto batch = resumed->Poll(kShortTimeout);
  EXPECT_TRUE(batch.status().IsTimeout()) << "group offset was rewound";
}

TEST_F(ConsumerTest, EndToEndThroughputManyRecords) {
  constexpr int kCount = 20'000;
  std::thread producer_thread([&] {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(
          producer_.Send("t", "k" + std::to_string(i % 100), "v", i).ok());
    }
  });
  auto consumer = std::move(Consumer::Create(&broker_, "t")).value();
  std::size_t consumed = 0;
  while (consumed < kCount) {
    auto batch = consumer->Poll(kLongTimeout);
    if (!batch.ok()) break;  // premature timeout = failure below
    consumed += batch->size();
  }
  producer_thread.join();
  EXPECT_EQ(consumed, static_cast<std::size_t>(kCount));
}

}  // namespace
}  // namespace strata::ps
