#include <gtest/gtest.h>

#include "pubsub/broker.hpp"
#include "pubsub/producer.hpp"

namespace strata::ps {
namespace {

TEST(BrokerStats, ListTopics) {
  Broker broker;
  EXPECT_TRUE(broker.ListTopics().empty());
  ASSERT_TRUE(broker.CreateTopic("b-topic", {.partitions = 1}).ok());
  ASSERT_TRUE(broker.CreateTopic("a-topic", {.partitions = 2}).ok());
  const auto topics = broker.ListTopics();
  ASSERT_EQ(topics.size(), 2u);
  EXPECT_EQ(topics[0], "a-topic");  // map order: sorted
  EXPECT_EQ(topics[1], "b-topic");
}

TEST(BrokerStats, TopicStatsCountRecords) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 3}).ok());
  Producer producer(&broker);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(producer.Send("t", "", "v", 0).ok());
  }
  auto stats = broker.GetTopicStats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->partitions, 3);
  EXPECT_EQ(stats->total_records, 30);
  ASSERT_EQ(stats->offsets.size(), 3u);
  // Round-robin distributes evenly across 3 partitions.
  for (const auto& [start, end] : stats->offsets) {
    EXPECT_EQ(start, 0);
    EXPECT_EQ(end, 10);
  }
}

TEST(BrokerStats, MissingTopicNotFound) {
  Broker broker;
  EXPECT_TRUE(broker.GetTopicStats("nope").status().IsNotFound());
}

TEST(BrokerStats, RetentionMovesStartOffset) {
  Broker broker;
  ASSERT_TRUE(
      broker.CreateTopic("t", {.partitions = 1, .retention_records = 4}).ok());
  Producer producer(&broker);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer.Send("t", "", "v", 0).ok());
  }
  auto stats = broker.GetTopicStats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->offsets[0].first, 6);
  EXPECT_EQ(stats->offsets[0].second, 10);
}

TEST(BrokerStats, ConsumerLagTracksCommits) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  Producer producer(&broker);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer.Send("t", "", "v", 0).ok());
  }
  const TopicPartition tp{"t", 0};
  // Uncommitted group lags from the log start.
  EXPECT_EQ(*broker.ConsumerLag("g", tp), 10);
  ASSERT_TRUE(broker.CommitOffset("g", tp, 4).ok());
  EXPECT_EQ(*broker.ConsumerLag("g", tp), 6);
  ASSERT_TRUE(broker.CommitOffset("g", tp, 10).ok());
  EXPECT_EQ(*broker.ConsumerLag("g", tp), 0);
}

TEST(BrokerStats, ConsumerLagValidatesTarget) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  EXPECT_TRUE(broker.ConsumerLag("g", {"none", 0}).status().IsNotFound());
  EXPECT_FALSE(broker.ConsumerLag("g", {"t", 5}).ok());
}

}  // namespace
}  // namespace strata::ps
