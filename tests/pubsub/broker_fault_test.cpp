// Broker disk-failure policies and crash-restart recovery, driven by
// strata::fault failpoints (chaos label).
#include <gtest/gtest.h>

#include "common/fs.hpp"
#include "fault/failpoint.hpp"
#include "pubsub/broker.hpp"

namespace strata::ps {
namespace {

class BrokerFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DeactivateAll(); }

  strata::fs::ScopedTempDir dir_{"broker-fault"};
  const TopicPartition tp_{"events", 0};

  [[nodiscard]] BrokerOptions PersistentOptions() const {
    BrokerOptions options;
    options.data_dir = dir_.path();
    options.segment_bytes = 512;  // roll often
    return options;
  }

  static Record Rec(const std::string& value) {
    Record record;
    record.value = value;
    return record;
  }
};

TEST_F(BrokerFaultTest, FailStopPolicyMakesErrorsSticky) {
  Broker broker(PersistentOptions());  // kFailStop is the default
  ASSERT_TRUE(broker.CreateTopic(tp_.topic, TopicConfig{1}).ok());
  ASSERT_TRUE(broker.Produce(tp_.topic, Rec("before")).ok());

  fault::Activate("segment.append",
                  fault::Action{fault::ActionKind::kError, 0, 1.0, 1});
  EXPECT_FALSE(broker.Produce(tp_.topic, Rec("during")).ok());
  fault::DeactivateAll();

  // The failpoint is gone but the log fail-stopped: still refusing.
  EXPECT_FALSE(broker.Produce(tp_.topic, Rec("after")).ok());

  const Broker::BrokerStats stats = broker.Stats();
  EXPECT_TRUE(stats.fail_stopped);
  EXPECT_FALSE(stats.storage_degraded);
  EXPECT_GE(stats.disk_append_errors, 1u);
}

TEST_F(BrokerFaultTest, DegradePolicyServesFromMemoryWithStickyFlag) {
  BrokerOptions options = PersistentOptions();
  options.disk_failure_policy = DiskFailurePolicy::kDegrade;
  Broker broker(options);
  ASSERT_TRUE(broker.CreateTopic(tp_.topic, TopicConfig{1}).ok());
  ASSERT_TRUE(broker.Produce(tp_.topic, Rec("durable")).ok());

  fault::Activate("segment.append",
                  fault::Action{fault::ActionKind::kError, 0, 1.0, 1});
  // The append that hits the disk error still succeeds: the record lives in
  // memory and the log degrades.
  ASSERT_TRUE(broker.Produce(tp_.topic, Rec("memory-1")).ok());
  fault::DeactivateAll();
  ASSERT_TRUE(broker.Produce(tp_.topic, Rec("memory-2")).ok());

  const Broker::BrokerStats stats = broker.Stats();
  EXPECT_TRUE(stats.storage_degraded);
  EXPECT_FALSE(stats.fail_stopped);

  // All three records serve from memory.
  auto log = broker.GetLog(tp_.topic, 0);
  ASSERT_TRUE(log.ok());
  std::vector<Record> records;
  std::int64_t next = 0;
  ASSERT_TRUE((*log)->ReadFrom(0, 10, &records, &next).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].value, "memory-2");

  // But the memory-only records were never persisted: a restarted broker
  // sees only what reached disk.
  broker.Close();
  Broker reopened(options);
  ASSERT_TRUE(reopened.CreateTopic(tp_.topic, TopicConfig{1}).ok());
  auto relog = reopened.GetLog(tp_.topic, 0);
  ASSERT_TRUE(relog.ok());
  EXPECT_EQ((*relog)->EndOffset(), 1);
  EXPECT_FALSE(reopened.Stats().storage_degraded);  // health resets on reopen
}

TEST_F(BrokerFaultTest, RestartServesIdenticalRecordsAndOffsets) {
  // Hard-kill emulation: produce + commit, then abandon the broker without a
  // clean close by copying the data directory mid-life.
  {
    BrokerOptions options = PersistentOptions();
    options.sync_each_append = true;
    Broker broker(options);
    ASSERT_TRUE(broker.CreateTopic(tp_.topic, TopicConfig{1}).ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(broker.Produce(tp_.topic, Rec("r" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(broker.CommitOffset("readers", tp_, 25).ok());
  }  // destructor close; segments were fsync'd per append anyway

  Broker reopened(PersistentOptions());
  ASSERT_TRUE(reopened.CreateTopic(tp_.topic, TopicConfig{1}).ok());
  auto log = reopened.GetLog(tp_.topic, 0);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ((*log)->EndOffset(), 40);
  std::vector<Record> records;
  std::int64_t next = 0;
  ASSERT_TRUE((*log)->ReadFrom(0, 40, &records, &next).ok());
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].value,
              "r" + std::to_string(i));
  }
  auto committed = reopened.CommittedOffset("readers", tp_);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(*committed, 25);
}

TEST_F(BrokerFaultTest, TornSegmentTailIsTruncatedOnReopen) {
  {
    Broker broker(PersistentOptions());
    ASSERT_TRUE(broker.CreateTopic(tp_.topic, TopicConfig{1}).ok());
    ASSERT_TRUE(broker.Produce(tp_.topic, Rec("good-0")).ok());
    ASSERT_TRUE(broker.Produce(tp_.topic, Rec("good-1")).ok());
    // Crash mid-append: only 6 bytes of the third record reach the file.
    fault::Activate("segment.append",
                    fault::Action{fault::ActionKind::kTornWrite, 6, 1.0, 1});
    EXPECT_FALSE(broker.Produce(tp_.topic, Rec("torn")).ok());
    fault::DeactivateAll();
  }

  // Find the damaged segment and note its size before recovery.
  std::filesystem::path segment;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           dir_.path())) {
    if (entry.path().extension() == ".seg") segment = entry.path();
  }
  ASSERT_FALSE(segment.empty());
  const auto torn_size = std::filesystem::file_size(segment);

  Broker reopened(PersistentOptions());
  ASSERT_TRUE(reopened.CreateTopic(tp_.topic, TopicConfig{1}).ok());
  auto log = reopened.GetLog(tp_.topic, 0);
  ASSERT_TRUE(log.ok());
  // Only the two complete records survive; the torn bytes were cut off the
  // file itself, exactly like the kvstore WAL's recovery contract.
  EXPECT_EQ((*log)->EndOffset(), 2);
  EXPECT_LT(std::filesystem::file_size(segment), torn_size);

  std::vector<Record> records;
  std::int64_t next = 0;
  ASSERT_TRUE((*log)->ReadFrom(0, 10, &records, &next).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].value, "good-1");
}

TEST_F(BrokerFaultTest, CorruptedSegmentRecordIsNotServed) {
  {
    Broker broker(PersistentOptions());
    ASSERT_TRUE(broker.CreateTopic(tp_.topic, TopicConfig{1}).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(broker.Produce(tp_.topic, Rec("rec-" + std::to_string(i)))
                      .ok());
    }
  }
  // Flip a byte in the middle of the (only) segment: the CRC must reject
  // that record and everything after it.
  std::filesystem::path segment;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           dir_.path())) {
    if (entry.path().extension() == ".seg") segment = entry.path();
  }
  ASSERT_FALSE(segment.empty());
  auto contents = std::move(strata::fs::ReadFile(segment)).value();
  contents[contents.size() / 2] =
      static_cast<char>(contents[contents.size() / 2] ^ 0xff);
  strata::fs::WriteFile(segment, contents).OrDie();

  Broker reopened(PersistentOptions());
  ASSERT_TRUE(reopened.CreateTopic(tp_.topic, TopicConfig{1}).ok());
  auto log = reopened.GetLog(tp_.topic, 0);
  ASSERT_TRUE(log.ok());
  EXPECT_LT((*log)->EndOffset(), 3);  // damaged record (and tail) dropped
}

}  // namespace
}  // namespace strata::ps
