// Tests for the broker's sharded data plane: the (topic, partition) ->
// shard mapping and the per-shard data-waiter registry the net reactor
// parks long-poll fetches on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "pubsub/broker.hpp"

namespace strata::ps {
namespace {

using namespace std::chrono_literals;

Record MakeRecord(const std::string& key, const std::string& value) {
  Record r;
  r.key = key;
  r.value = value;
  return r;
}

TEST(BrokerShards, ShardOfIsStableAndInRange) {
  BrokerOptions options;
  options.shards = 4;
  Broker broker(options);
  EXPECT_EQ(broker.shard_count(), 4u);

  std::set<std::size_t> seen;
  for (int p = 0; p < 64; ++p) {
    const std::size_t shard = broker.ShardOf("topic", p);
    EXPECT_LT(shard, broker.shard_count());
    EXPECT_EQ(shard, broker.ShardOf("topic", p));  // stable
    seen.insert(shard);
  }
  // 64 partitions over 4 shards: the hash must actually spread them.
  EXPECT_GT(seen.size(), 1u);
}

TEST(BrokerShards, ShardCountIsClampedToAtLeastOne) {
  BrokerOptions options;
  options.shards = 0;
  Broker broker(options);
  EXPECT_GE(broker.shard_count(), 1u);
  EXPECT_LT(broker.ShardOf("t", 0), broker.shard_count());
}

TEST(BrokerShards, DataWaiterFiresOnAppendToOwnedShard) {
  BrokerOptions options;
  options.shards = 8;
  Broker broker(options);
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 16}).ok());

  const std::size_t shard = broker.ShardOf("t", 0);
  // Find a partition owned by a different shard, to prove waiters are
  // per-shard rather than global.
  int other_partition = -1;
  for (int p = 1; p < 16; ++p) {
    if (broker.ShardOf("t", p) != shard) {
      other_partition = p;
      break;
    }
  }
  ASSERT_GE(other_partition, 0);

  std::mutex mu;
  std::condition_variable cv;
  int fires = 0;
  const auto id = broker.AddDataWaiter(shard, [&] {
    std::lock_guard lock(mu);
    ++fires;
    cv.notify_all();
  });

  // Append to the other shard's partition (the append listener installed
  // by the broker routes it to that partition's shard): our waiter must
  // stay silent.
  ASSERT_TRUE(
      (*broker.GetLog("t", other_partition))->Append(MakeRecord("", "x")).ok());
  {
    std::unique_lock lock(mu);
    EXPECT_FALSE(cv.wait_for(lock, 100ms, [&] { return fires > 0; }));
  }

  // Append to the owned partition: exactly this append wakes us.
  ASSERT_TRUE((*broker.GetLog("t", 0))->Append(MakeRecord("", "y")).ok());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return fires > 0; }));
  }
  broker.RemoveDataWaiter(shard, id);
}

TEST(BrokerShards, RemovedWaiterStopsReceivingAppends) {
  Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 1}).ok());
  const std::size_t shard = broker.ShardOf("t", 0);

  std::atomic<int> fires{0};
  const auto id = broker.AddDataWaiter(shard, [&] { fires.fetch_add(1); });
  ASSERT_TRUE(broker.Produce("t", MakeRecord("", "a")).ok());
  broker.RemoveDataWaiter(shard, id);
  const int before = fires.load();
  EXPECT_GE(before, 1);

  ASSERT_TRUE(broker.Produce("t", MakeRecord("", "b")).ok());
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(fires.load(), before);
}

TEST(BrokerShards, WaitersFireOnceOnClose) {
  auto broker = std::make_unique<Broker>();
  ASSERT_TRUE(broker->CreateTopic("t", {.partitions = 1}).ok());

  // One waiter per shard: Close() must wake every shard so parked
  // long-polls never outlive the broker.
  std::atomic<int> fires{0};
  const int shard_count = static_cast<int>(broker->shard_count());
  for (std::size_t shard = 0; shard < broker->shard_count(); ++shard) {
    broker->AddDataWaiter(shard, [&] { fires.fetch_add(1); });
  }
  broker.reset();  // destructor closes
  EXPECT_EQ(fires.load(), shard_count);
}

TEST(BrokerShards, WaitForAnyDataWakesAcrossShards) {
  BrokerOptions options;
  options.shards = 8;
  Broker broker(options);
  ASSERT_TRUE(broker.CreateTopic("t", {.partitions = 8}).ok());

  // Wait on every partition at once; a single append anywhere must wake it.
  std::vector<TopicPartition> partitions;
  for (int p = 0; p < 8; ++p) partitions.push_back({"t", p});

  std::thread producer([&] {
    std::this_thread::sleep_for(50ms);
    ASSERT_TRUE((*broker.GetLog("t", 5))->Append(MakeRecord("", "v")).ok());
  });
  EXPECT_TRUE(broker.WaitForAnyData(partitions, {}, 5s));
  producer.join();

  // Positions at the end of every partition: the wait times out instead.
  std::map<TopicPartition, std::int64_t> caught_up;
  caught_up[{"t", 5}] = 1;
  EXPECT_FALSE(broker.WaitForAnyData(partitions, caught_up, 50ms));
}

}  // namespace
}  // namespace strata::ps
