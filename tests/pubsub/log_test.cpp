#include "pubsub/log.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/fs.hpp"

namespace strata::ps {
namespace {

Record MakeRecord(const std::string& key, const std::string& value,
                  Timestamp ts = 0) {
  Record r;
  r.key = key;
  r.value = value;
  r.timestamp = ts;
  return r;
}

TEST(RecordCodec, RoundTrip) {
  Record r = MakeRecord("key", "value", 123456);
  std::string buf;
  EncodeRecord(r, &buf);
  std::string_view in(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&in, &out).ok());
  EXPECT_EQ(out.key, "key");
  EXPECT_EQ(out.value, "value");
  EXPECT_EQ(out.timestamp, 123456);
  EXPECT_TRUE(in.empty());
}

TEST(RecordCodec, RejectsTruncation) {
  Record r = MakeRecord("key", "value", 1);
  std::string buf;
  EncodeRecord(r, &buf);
  std::string_view in(buf.data(), buf.size() - 1);
  Record out;
  EXPECT_FALSE(DecodeRecord(&in, &out).ok());
}

TEST(PartitionLog, InMemoryAppendRead) {
  auto log = std::move(PartitionLog::Open({})).value();
  for (int i = 0; i < 10; ++i) {
    auto offset = log->Append(MakeRecord("k", std::to_string(i)));
    ASSERT_TRUE(offset.ok());
    EXPECT_EQ(*offset, i);
  }
  EXPECT_EQ(log->EndOffset(), 10);
  EXPECT_EQ(log->StartOffset(), 0);

  std::vector<Record> records;
  std::int64_t next = 0;
  ASSERT_TRUE(log->ReadFrom(3, 4, &records, &next).ok());
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].value, "3");
  EXPECT_EQ(records[3].value, "6");
  EXPECT_EQ(next, 7);
}

TEST(PartitionLog, ReadPastEndReturnsEmpty) {
  auto log = std::move(PartitionLog::Open({})).value();
  ASSERT_TRUE(log->Append(MakeRecord("", "x")).ok());
  std::vector<Record> records;
  std::int64_t next = 0;
  ASSERT_TRUE(log->ReadFrom(1, 10, &records, &next).ok());
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(next, 1);
}

TEST(PartitionLog, RetentionTrimsOldRecords) {
  LogOptions options;
  options.retention_records = 5;
  auto log = std::move(PartitionLog::Open(options)).value();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(log->Append(MakeRecord("", std::to_string(i))).ok());
  }
  EXPECT_EQ(log->StartOffset(), 7);
  EXPECT_EQ(log->EndOffset(), 12);

  std::vector<Record> records;
  std::int64_t next = 0;
  EXPECT_FALSE(log->ReadFrom(3, 10, &records, &next).ok());  // below horizon
  ASSERT_TRUE(log->ReadFrom(7, 10, &records, &next).ok());
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].value, "7");
}

TEST(PartitionLog, WaitForDataUnblocksOnAppend) {
  auto log = std::move(PartitionLog::Open({})).value();
  std::thread appender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(log->Append(MakeRecord("", "late")).ok());
  });
  EXPECT_TRUE(log->WaitForData(0, std::chrono::microseconds(2'000'000)));
  appender.join();
}

TEST(PartitionLog, WaitForDataTimesOut) {
  auto log = std::move(PartitionLog::Open({})).value();
  EXPECT_FALSE(log->WaitForData(0, std::chrono::microseconds(20'000)));
}

TEST(PartitionLog, CloseUnblocksWaitersAndRejectsAppends) {
  auto log = std::move(PartitionLog::Open({})).value();
  std::thread waiter([&] {
    // Returns once closed even though no data arrived.
    (void)log->WaitForData(0, std::chrono::microseconds(5'000'000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  log->Close();
  waiter.join();
  EXPECT_TRUE(log->Append(MakeRecord("", "x")).status().IsClosed());
}

TEST(PartitionLog, PersistenceReloadsRecords) {
  strata::fs::ScopedTempDir dir("pslog");
  LogOptions options;
  options.dir = dir.path() / "p0";
  {
    auto log = std::move(PartitionLog::Open(options)).value();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(log->Append(MakeRecord("k" + std::to_string(i),
                                         "v" + std::to_string(i), i))
                      .ok());
    }
  }
  auto log = std::move(PartitionLog::Open(options)).value();
  EXPECT_EQ(log->EndOffset(), 100);
  std::vector<Record> records;
  std::int64_t next = 0;
  ASSERT_TRUE(log->ReadFrom(0, 200, &records, &next).ok());
  ASSERT_EQ(records.size(), 100u);
  EXPECT_EQ(records[42].key, "k42");
  EXPECT_EQ(records[42].value, "v42");
  EXPECT_EQ(records[42].timestamp, 42);
}

TEST(PartitionLog, PersistenceRollsSegments) {
  strata::fs::ScopedTempDir dir("pslog-roll");
  LogOptions options;
  options.dir = dir.path() / "p0";
  options.segment_bytes = 256;  // tiny: force many segments
  {
    auto log = std::move(PartitionLog::Open(options)).value();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(log->Append(MakeRecord("", std::string(64, 'x'))).ok());
    }
  }
  int segment_count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(options.dir)) {
    if (entry.path().extension() == ".seg") ++segment_count;
  }
  EXPECT_GT(segment_count, 5);

  auto log = std::move(PartitionLog::Open(options)).value();
  EXPECT_EQ(log->EndOffset(), 50);
}

TEST(PartitionLog, PersistenceToleratesTornTail) {
  strata::fs::ScopedTempDir dir("pslog-torn");
  LogOptions options;
  options.dir = dir.path() / "p0";
  {
    auto log = std::move(PartitionLog::Open(options)).value();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(log->Append(MakeRecord("", std::to_string(i))).ok());
    }
  }
  // Truncate the single segment mid-record.
  std::filesystem::path segment;
  for (const auto& entry : std::filesystem::directory_iterator(options.dir)) {
    if (entry.path().extension() == ".seg") segment = entry.path();
  }
  ASSERT_FALSE(segment.empty());
  std::filesystem::resize_file(segment,
                               std::filesystem::file_size(segment) - 3);

  auto log = std::move(PartitionLog::Open(options)).value();
  EXPECT_EQ(log->EndOffset(), 9);  // last record dropped, rest intact
}

TEST(PartitionLog, AppendsContinueAfterReload) {
  strata::fs::ScopedTempDir dir("pslog-cont");
  LogOptions options;
  options.dir = dir.path() / "p0";
  {
    auto log = std::move(PartitionLog::Open(options)).value();
    ASSERT_TRUE(log->Append(MakeRecord("", "before")).ok());
  }
  {
    auto log = std::move(PartitionLog::Open(options)).value();
    auto offset = log->Append(MakeRecord("", "after"));
    ASSERT_TRUE(offset.ok());
    EXPECT_EQ(*offset, 1);
  }
  auto log = std::move(PartitionLog::Open(options)).value();
  EXPECT_EQ(log->EndOffset(), 2);
  std::vector<Record> records;
  std::int64_t next = 0;
  ASSERT_TRUE(log->ReadFrom(0, 10, &records, &next).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].value, "before");
  EXPECT_EQ(records[1].value, "after");
}

TEST(PartitionLog, TruncateToDropsTailInMemory) {
  auto log = std::move(PartitionLog::Open({})).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(log->Append(MakeRecord("", std::to_string(i))).ok());
  }
  ASSERT_TRUE(log->TruncateTo(6).ok());
  EXPECT_EQ(log->EndOffset(), 6);
  std::vector<Record> records;
  std::int64_t next = 0;
  ASSERT_TRUE(log->ReadFrom(0, 20, &records, &next).ok());
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records.back().value, "5");

  // Appends renumber from the truncation point.
  auto offset = log->Append(MakeRecord("", "new6"));
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, 6);

  // At/after the end: no-op. Negative: rejected.
  EXPECT_TRUE(log->TruncateTo(7).ok());
  EXPECT_EQ(log->EndOffset(), 7);
  EXPECT_FALSE(log->TruncateTo(-1).ok());
}

TEST(PartitionLog, TruncateToRewritesSegments) {
  strata::fs::ScopedTempDir dir("pslog-trunc");
  LogOptions options;
  options.dir = dir.path() / "p0";
  options.segment_bytes = 256;  // several segments, cut mid-segment
  {
    auto log = std::move(PartitionLog::Open(options)).value();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          log->Append(MakeRecord("", "v" + std::string(60, 'x'))).ok());
    }
    ASSERT_TRUE(log->TruncateTo(17).ok());
    EXPECT_EQ(log->EndOffset(), 17);
    EXPECT_FALSE(log->degraded());
  }
  // Reopen: the surviving prefix (and only it) comes back from disk.
  auto log = std::move(PartitionLog::Open(options)).value();
  EXPECT_EQ(log->EndOffset(), 17);
  auto offset = log->Append(MakeRecord("", "after"));
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, 17);
}

TEST(PartitionLog, TruncateBelowRetainedPrefixDegrades) {
  strata::fs::ScopedTempDir dir("pslog-trunc-ret");
  LogOptions options;
  options.dir = dir.path() / "p0";
  options.retention_records = 5;  // memory holds only the last 5
  auto log = std::move(PartitionLog::Open(options)).value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(log->Append(MakeRecord("", std::to_string(i))).ok());
  }
  // The prefix [0, 15) is no longer in memory: a persistent rewrite would
  // leave a hole, so the log stays correct but degrades to memory-only.
  ASSERT_TRUE(log->TruncateTo(18).ok());
  EXPECT_EQ(log->EndOffset(), 18);
  EXPECT_TRUE(log->degraded());
}

}  // namespace
}  // namespace strata::ps
