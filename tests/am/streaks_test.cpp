#include "am/streaks.hpp"

#include <gtest/gtest.h>

#include "am/ot_generator.hpp"

namespace strata::am {
namespace {

TEST(Streak, ActivityWindow) {
  Streak s;
  s.start_layer = 5;
  s.end_layer = 8;
  EXPECT_FALSE(s.ActiveOnLayer(4));
  EXPECT_TRUE(s.ActiveOnLayer(5));
  EXPECT_TRUE(s.ActiveOnLayer(8));
  EXPECT_FALSE(s.ActiveOnLayer(9));
}

TEST(Streak, CoversBand) {
  Streak s;
  s.x_mm = 100.0;
  s.width_mm = 2.0;
  EXPECT_TRUE(s.CoversX(100.0));
  EXPECT_TRUE(s.CoversX(99.0));
  EXPECT_TRUE(s.CoversX(101.0));
  EXPECT_FALSE(s.CoversX(98.9));
  EXPECT_FALSE(s.CoversX(101.1));
}

TEST(StreakSeeder, DeterministicPerJob) {
  const BuildJobSpec job = MakeSmallJob(1);
  StreakModelParams params;
  params.rate_per_layer = 0.1;
  StreakSeeder a(job, params);
  StreakSeeder b(job, params);
  ASSERT_EQ(a.streaks().size(), b.streaks().size());
  for (std::size_t i = 0; i < a.streaks().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.streaks()[i].x_mm, b.streaks()[i].x_mm);
  }
}

TEST(StreakSeeder, RateScalesCount) {
  const BuildJobSpec job = MakeSmallJob(1);
  StreakModelParams low;
  low.rate_per_layer = 0.01;
  StreakModelParams high;
  high.rate_per_layer = 0.3;
  EXPECT_LT(StreakSeeder(job, low).streaks().size(),
            StreakSeeder(job, high).streaks().size());
}

TEST(StreakSeeder, StreaksOnLayerFilter) {
  const BuildJobSpec job = MakeSmallJob(1);
  StreakModelParams params;
  params.rate_per_layer = 0.2;
  StreakSeeder seeder(job, params);
  for (int layer : {0, 30, 80}) {
    for (const Streak* streak : seeder.StreaksOnLayer(layer)) {
      EXPECT_TRUE(streak->ActiveOnLayer(layer));
    }
  }
}

TEST(StreakSeeder, SpansAreBoundedByJob) {
  const BuildJobSpec job = MakeSmallJob(1);
  StreakModelParams params;
  params.rate_per_layer = 0.2;
  StreakSeeder seeder(job, params);
  for (const Streak& streak : seeder.streaks()) {
    EXPECT_GE(streak.end_layer, streak.start_layer);
    EXPECT_LT(streak.end_layer, job.TotalLayers());
    EXPECT_GT(streak.intensity_drop, 0.0);
    EXPECT_GT(streak.width_mm, 0.0);
  }
}

TEST(StreakRendering, DarkensBandInsideSpecimen) {
  const BuildJobSpec job = MakeSmallJob(1, 500, 1);
  const SpecimenSpec& s = job.specimens[0];

  // One deterministic streak through the specimen centre, by constructing
  // the seeder from a high-rate model and picking a streak inside.
  StreakModelParams params;
  params.rate_per_layer = 0.5;
  params.mean_intensity_drop = 30.0;
  StreakSeeder seeder(job, params);
  const Streak* inside = nullptr;
  for (const Streak& streak : seeder.streaks()) {
    if (streak.x_mm > s.x_mm + 2 && streak.x_mm < s.x_mm + s.width_mm - 2) {
      inside = &streak;
      break;
    }
  }
  ASSERT_NE(inside, nullptr) << "no streak crossed the specimen";

  OtImageGenerator with(job, nullptr, {}, &seeder);
  OtImageGenerator without(job, nullptr, {});
  const GrayImage a = with.GenerateLayer(inside->start_layer);
  const GrayImage b = without.GenerateLayer(inside->start_layer);

  const int px = job.plate.MmToPx(inside->x_mm);
  const int py = job.plate.MmToPx(s.y_mm + s.length_mm / 2);
  EXPECT_LT(static_cast<int>(a.at(px, py)),
            static_cast<int>(b.at(px, py)) - 15);

  // Outside the band the frame is untouched.
  const int far_x = job.plate.MmToPx(inside->x_mm) > job.plate.MmToPx(s.x_mm) + 30
                        ? job.plate.MmToPx(s.x_mm) + 5
                        : job.plate.MmToPx(s.x_mm + s.width_mm) - 5;
  bool far_from_all = true;
  for (const Streak* streak : seeder.StreaksOnLayer(inside->start_layer)) {
    if (std::abs(job.plate.PxToMm(far_x) - streak->x_mm) <
        streak->width_mm + 1) {
      far_from_all = false;
    }
  }
  if (far_from_all) {
    EXPECT_EQ(a.at(far_x, py), b.at(far_x, py));
  }
}

TEST(StreakRendering, OutsideSpecimenUnchanged) {
  const BuildJobSpec job = MakeSmallJob(1, 400, 1);
  StreakModelParams params;
  params.rate_per_layer = 0.5;
  StreakSeeder seeder(job, params);
  OtImageGenerator with(job, nullptr, {}, &seeder);
  const GrayImage image = with.GenerateLayer(0);
  // Powder regions (corners) stay at background level even under streaks.
  EXPECT_LE(image.at(0, 0), 10);
  EXPECT_LE(image.at(399, 399), 10);
}

}  // namespace
}  // namespace strata::am
