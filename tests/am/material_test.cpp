#include "am/material.hpp"

#include <gtest/gtest.h>

#include "am/machine.hpp"

namespace strata::am {
namespace {

TEST(Material, PresetsDiffer) {
  const MaterialSpec ti = Ti6Al4V();
  const MaterialSpec in718 = Inconel718();
  const MaterialSpec al = AlSi10Mg();
  EXPECT_NE(ti.base_intensity, in718.base_intensity);
  EXPECT_NE(ti.base_intensity, al.base_intensity);
  EXPECT_GT(al.defect_propensity, ti.defect_propensity);
  EXPECT_GT(al.laser_power_w, ti.laser_power_w);  // Al needs more power
}

TEST(Material, LookupByName) {
  EXPECT_EQ(MaterialByName("Ti-6Al-4V")->name, "Ti-6Al-4V");
  EXPECT_EQ(MaterialByName("IN718")->name, "IN718");
  EXPECT_EQ(MaterialByName("AlSi10Mg")->name, "AlSi10Mg");
  EXPECT_TRUE(MaterialByName("Unobtainium").status().IsNotFound());
}

TEST(Material, ApplyAdjustsGeneratorAndDefects) {
  OtGeneratorParams ot;
  DefectModelParams defects;
  const double base_rate = defects.birth_rate;
  ApplyMaterial(AlSi10Mg(), &ot, &defects);
  EXPECT_DOUBLE_EQ(ot.base_intensity, AlSi10Mg().base_intensity);
  EXPECT_DOUBLE_EQ(defects.birth_rate, base_rate * AlSi10Mg().defect_propensity);
}

TEST(Material, ApplyToleratesNulls) {
  ApplyMaterial(Ti6Al4V(), nullptr, nullptr);  // no crash
}

TEST(Material, MachineReportsMaterialInPrintingParams) {
  MachineParams params;
  params.job = MakeSmallJob(1, 150, 1);
  params.material = Inconel718();
  MachineSimulator machine(params);
  const Payload pp = machine.PrintingParams(0);
  EXPECT_EQ(pp.Get("material").AsString(), "IN718");
  EXPECT_DOUBLE_EQ(pp.Get("laser_power_w").AsDouble(),
                   Inconel718().laser_power_w);
}

TEST(Material, MaterialChangesOtSignature) {
  MachineParams ti_params;
  ti_params.job = MakeSmallJob(1, 200, 1);
  MachineSimulator ti(ti_params);

  MachineParams al_params = ti_params;
  al_params.material = AlSi10Mg();
  MachineSimulator al(al_params);

  const auto ti_layer = ti.NextLayer();
  const auto al_layer = al.NextLayer();
  ASSERT_TRUE(ti_layer.has_value() && al_layer.has_value());

  const SpecimenSpec& s = ti_params.job.specimens[0];
  const int cx = ti_params.job.plate.MmToPx(s.x_mm + s.width_mm / 2);
  const int cy = ti_params.job.plate.MmToPx(s.y_mm + s.length_mm / 2);
  const double ti_mean = ti_layer->ot_image.RegionMean(cx - 8, cy - 8, 16, 16);
  const double al_mean = al_layer->ot_image.RegionMean(cx - 8, cy - 8, 16, 16);
  // AlSi10Mg renders dimmer (105 vs 128 nominal).
  EXPECT_LT(al_mean, ti_mean - 10.0);
}

TEST(XctCylinders, PaperJobHasThreePerBlock) {
  const BuildJobSpec job = MakePaperJob(1);
  for (const SpecimenSpec& s : job.specimens) {
    ASSERT_EQ(s.xct_cylinders.size(), 3u);
    for (const CylinderSpec& c : s.xct_cylinders) {
      // Fully inside the block footprint.
      EXPECT_GE(c.cx_mm - c.radius_mm, 0.0);
      EXPECT_LE(c.cx_mm + c.radius_mm, s.width_mm);
      EXPECT_GE(c.cy_mm - c.radius_mm, 0.0);
      EXPECT_LE(c.cy_mm + c.radius_mm, s.length_mm);
    }
  }
}

TEST(XctCylinders, CylinderIndexAt) {
  SpecimenSpec s;
  s.x_mm = 10;
  s.y_mm = 10;
  s.xct_cylinders = {{5, 5, 2.0}, {20, 40, 2.0}};
  EXPECT_EQ(s.CylinderIndexAt(15, 15), 0);      // centre of cylinder 0
  EXPECT_EQ(s.CylinderIndexAt(16.9, 15), 0);    // just inside radius
  EXPECT_EQ(s.CylinderIndexAt(17.5, 15), -1);   // outside
  EXPECT_EQ(s.CylinderIndexAt(30, 50), 1);
  EXPECT_EQ(s.CylinderIndexAt(0, 0), -1);
}

TEST(XctCylinders, ContourVisibleInOtFrame) {
  BuildJobSpec job = MakeSmallJob(1, 500, 1);
  job.specimens[0].xct_cylinders = {{12.5, 25.0, 4.0}};
  OtImageGenerator with_cylinder(job, nullptr);

  BuildJobSpec bare = job;
  bare.specimens[0].xct_cylinders.clear();
  OtImageGenerator without(bare, nullptr);

  const GrayImage a = with_cylinder.GenerateLayer(0);
  const GrayImage b = without.GenerateLayer(0);
  const PlateSpec& plate = job.plate;
  // Sample a point on the ring (cylinder centre + radius along x).
  const SpecimenSpec& s = job.specimens[0];
  const int ring_x = plate.MmToPx(s.x_mm + 12.5 + 4.0);
  const int ring_y = plate.MmToPx(s.y_mm + 25.0);
  EXPECT_GT(static_cast<int>(a.at(ring_x, ring_y)),
            static_cast<int>(b.at(ring_x, ring_y)));
  // Inside the cylinder (not on the ring) is unchanged.
  const int in_x = plate.MmToPx(s.x_mm + 12.5);
  const int in_y = plate.MmToPx(s.y_mm + 25.0);
  EXPECT_EQ(a.at(in_x, in_y), b.at(in_x, in_y));
}

}  // namespace
}  // namespace strata::am
