#include "am/history.hpp"

#include <gtest/gtest.h>

namespace strata::am {
namespace {

TEST(ThermalThresholds, SerializeRoundTrip) {
  ThermalThresholds t{100.5, 110.0, 140.0, 150.25};
  auto decoded = ThermalThresholds::Deserialize(t.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ(decoded->very_cold, 100.5);
  EXPECT_DOUBLE_EQ(decoded->very_warm, 150.25);
}

TEST(ThermalThresholds, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ThermalThresholds::Deserialize("short").ok());
  // Unordered cut points.
  ThermalThresholds bad{150, 140, 120, 100};
  EXPECT_FALSE(ThermalThresholds::Deserialize(bad.Serialize()).ok());
}

TEST(ThermalThresholds, ValidChecksOrdering) {
  EXPECT_TRUE((ThermalThresholds{1, 2, 3, 4}).valid());
  EXPECT_TRUE((ThermalThresholds{1, 1, 1, 1}).valid());
  EXPECT_FALSE((ThermalThresholds{2, 1, 3, 4}).valid());
}

TEST(ComputeThresholds, BracketsTheBaseIntensity) {
  const BuildJobSpec job = MakeSmallJob(1, 200, 1);
  OtGeneratorParams params;  // base 128
  OtImageGenerator generator(job, nullptr, params);
  const ThermalThresholds t =
      ComputeThresholdsFromHistory(generator, /*layers=*/5, /*cell_px=*/10);

  EXPECT_TRUE(t.valid());
  EXPECT_LT(t.very_cold, params.base_intensity);
  EXPECT_GT(t.very_warm, params.base_intensity);
  EXPECT_LT(t.very_cold, t.cold);
  EXPECT_LT(t.warm, t.very_warm);
  // Tails must be reasonably tight around the nominal distribution.
  EXPECT_GT(t.very_cold, params.base_intensity - 30);
  EXPECT_LT(t.very_warm, params.base_intensity + 30);
}

TEST(ComputeThresholds, SmallerCellsWiderTails) {
  // Cell means over fewer pixels have higher variance, so the percentile
  // cut points sit further from the base intensity.
  const BuildJobSpec job = MakeSmallJob(1, 200, 1);
  OtImageGenerator generator(job, nullptr);
  const ThermalThresholds fine =
      ComputeThresholdsFromHistory(generator, 3, /*cell_px=*/2);
  const ThermalThresholds coarse =
      ComputeThresholdsFromHistory(generator, 3, /*cell_px=*/20);
  EXPECT_LT(fine.very_cold, coarse.very_cold);
  EXPECT_GT(fine.very_warm, coarse.very_warm);
}

TEST(ComputeThresholds, EmptyHistoryYieldsDefault) {
  const BuildJobSpec job = MakeSmallJob(1, 200, 1);
  OtImageGenerator generator(job, nullptr);
  const ThermalThresholds t = ComputeThresholdsFromHistory(generator, 0, 10);
  EXPECT_TRUE(t.valid());
}

TEST(ThresholdKey, IncludesMachineId) {
  EXPECT_EQ(ThresholdKey("m1"), "thresholds/m1");
  EXPECT_NE(ThresholdKey("m1"), ThresholdKey("m2"));
}

}  // namespace
}  // namespace strata::am
