#include "am/defects.hpp"

#include <gtest/gtest.h>

namespace strata::am {
namespace {

TEST(Defect, RadiusProfileIsEllipsoidal) {
  Defect d;
  d.center_layer = 10;
  d.radius_mm = 2.0;
  d.half_layers = 4;
  EXPECT_DOUBLE_EQ(d.RadiusAtLayer(10), 2.0);  // full at the centre
  EXPECT_GT(d.RadiusAtLayer(12), 0.0);
  EXPECT_LT(d.RadiusAtLayer(12), 2.0);
  EXPECT_DOUBLE_EQ(d.RadiusAtLayer(14), 0.0);  // at the extremity
  EXPECT_DOUBLE_EQ(d.RadiusAtLayer(15), 0.0);  // outside
  EXPECT_DOUBLE_EQ(d.RadiusAtLayer(5), 0.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(d.RadiusAtLayer(8), d.RadiusAtLayer(12));
}

TEST(Defect, ZeroHalfLayersSingleLayer) {
  Defect d;
  d.center_layer = 3;
  d.radius_mm = 1.0;
  d.half_layers = 0;
  EXPECT_DOUBLE_EQ(d.RadiusAtLayer(3), 1.0);
  EXPECT_DOUBLE_EQ(d.RadiusAtLayer(4), 0.0);
}

TEST(AngleRisk, PeaksAgainstGasFlow) {
  const double floor = 0.25;
  const double against = DefectSeeder::AngleRisk(90, floor);
  const double with_flow = DefectSeeder::AngleRisk(270, floor);
  const double cross = DefectSeeder::AngleRisk(0, floor);
  EXPECT_DOUBLE_EQ(against, 1.0);
  EXPECT_NEAR(with_flow, floor, 1e-9);
  EXPECT_GT(against, cross);
  EXPECT_GT(cross, with_flow);
}

TEST(DefectSeeder, DeterministicForSameSeed) {
  const BuildJobSpec job = MakeSmallJob(1);
  DefectModelParams params;
  params.seed = 42;
  DefectSeeder a(job, params);
  DefectSeeder b(job, params);
  ASSERT_EQ(a.defects().size(), b.defects().size());
  for (std::size_t i = 0; i < a.defects().size(); ++i) {
    EXPECT_EQ(a.defects()[i].center_layer, b.defects()[i].center_layer);
    EXPECT_DOUBLE_EQ(a.defects()[i].center_x_mm, b.defects()[i].center_x_mm);
  }
}

TEST(DefectSeeder, DifferentJobsDifferentDefects) {
  DefectModelParams params;
  DefectSeeder a(MakeSmallJob(1), params);
  DefectSeeder b(MakeSmallJob(2), params);
  // Same geometry, different job id -> different defect draw.
  bool any_difference = a.defects().size() != b.defects().size();
  for (std::size_t i = 0;
       !any_difference && i < a.defects().size(); ++i) {
    any_difference = a.defects()[i].center_x_mm != b.defects()[i].center_x_mm;
  }
  EXPECT_TRUE(any_difference);
}

TEST(DefectSeeder, DefectsStayInsideTheirSpecimen) {
  const BuildJobSpec job = MakePaperJob(3, /*image_px=*/500);
  DefectModelParams params;
  params.birth_rate = 0.05;
  DefectSeeder seeder(job, params);
  ASSERT_FALSE(seeder.defects().empty());
  for (const Defect& d : seeder.defects()) {
    const SpecimenSpec& s =
        job.specimens[static_cast<std::size_t>(d.specimen)];
    EXPECT_TRUE(s.Contains(d.center_x_mm, d.center_y_mm))
        << "defect centre outside specimen " << d.specimen;
    EXPECT_GE(d.center_layer, 0);
    EXPECT_LT(d.center_layer, job.TotalLayers());
  }
}

TEST(DefectSeeder, BirthRateScalesDefectCount) {
  const BuildJobSpec job = MakeSmallJob(1);
  DefectModelParams low;
  low.birth_rate = 0.01;
  DefectModelParams high;
  high.birth_rate = 0.2;
  EXPECT_LT(DefectSeeder(job, low).defects().size(),
            DefectSeeder(job, high).defects().size());
}

TEST(DefectSeeder, DefectsOnLayerFiltersCorrectly) {
  const BuildJobSpec job = MakeSmallJob(1);
  DefectModelParams params;
  params.birth_rate = 0.1;
  DefectSeeder seeder(job, params);
  for (int layer : {0, 20, 50, 99}) {
    for (const Defect* d : seeder.DefectsOnLayer(layer)) {
      EXPECT_GT(d->RadiusAtLayer(layer), 0.0);
    }
  }
}

TEST(DefectSeeder, BothDefectTypesOccur) {
  const BuildJobSpec job = MakePaperJob(1, 500);
  DefectModelParams params;
  params.birth_rate = 0.05;
  DefectSeeder seeder(job, params);
  bool hot = false;
  bool cold = false;
  for (const Defect& d : seeder.defects()) {
    hot |= d.type == DefectType::kHot;
    cold |= d.type == DefectType::kCold;
  }
  EXPECT_TRUE(hot);
  EXPECT_TRUE(cold);
}

}  // namespace
}  // namespace strata::am
