#include "am/image.hpp"

#include <gtest/gtest.h>

#include "common/fs.hpp"

namespace strata::am {
namespace {

TEST(GrayImage, ConstructionAndAccess) {
  GrayImage image(10, 5, 7);
  EXPECT_EQ(image.width(), 10);
  EXPECT_EQ(image.height(), 5);
  EXPECT_EQ(image.size_bytes(), 50u);
  EXPECT_EQ(image.at(0, 0), 7);
  image.set(3, 2, 200);
  EXPECT_EQ(image.at(3, 2), 200);
}

TEST(GrayImage, InvalidDimensionsThrow) {
  EXPECT_THROW(GrayImage(0, 5), std::invalid_argument);
  EXPECT_THROW(GrayImage(5, -1), std::invalid_argument);
}

TEST(GrayImage, OutOfBoundsAccessThrows) {
  GrayImage image(4, 4);
  EXPECT_THROW((void)image.at(4, 0), std::out_of_range);
  EXPECT_THROW((void)image.at(0, 4), std::out_of_range);
  EXPECT_THROW((void)image.at(-1, 0), std::out_of_range);
  EXPECT_THROW(image.set(0, -1, 1), std::out_of_range);
}

TEST(GrayImage, RegionMean) {
  GrayImage image(4, 4, 10);
  image.set(0, 0, 20);
  image.set(1, 0, 30);
  // 2x2 region at origin: (20 + 30 + 10 + 10) / 4 = 17.5
  EXPECT_DOUBLE_EQ(image.RegionMean(0, 0, 2, 2), 17.5);
  EXPECT_DOUBLE_EQ(image.RegionMean(2, 2, 2, 2), 10.0);
}

TEST(GrayImage, RegionMeanClipsToBounds) {
  GrayImage image(4, 4, 50);
  EXPECT_DOUBLE_EQ(image.RegionMean(2, 2, 10, 10), 50.0);
  EXPECT_DOUBLE_EQ(image.RegionMean(-2, -2, 3, 3), 50.0);
  EXPECT_DOUBLE_EQ(image.RegionMean(10, 10, 2, 2), 0.0);  // empty
}

TEST(GrayImage, SerializeRoundTrip) {
  GrayImage image(16, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 16; ++x) {
      image.set(x, y, static_cast<std::uint8_t>((x * 31 + y * 7) % 256));
    }
  }
  const std::string bytes = image.Serialize();
  auto decoded = GrayImage::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, image);
}

TEST(GrayImage, DeserializeRejectsGarbage) {
  EXPECT_FALSE(GrayImage::Deserialize("nonsense").ok());
  EXPECT_FALSE(GrayImage::Deserialize("").ok());
  // Valid header but truncated pixel payload.
  GrayImage image(8, 8);
  std::string bytes = image.Serialize();
  bytes.pop_back();
  EXPECT_FALSE(GrayImage::Deserialize(bytes).ok());
}

TEST(GrayImage, PgmRoundTrip) {
  strata::fs::ScopedTempDir dir("pgm");
  GrayImage image(20, 10);
  for (int x = 0; x < 20; ++x) image.set(x, 5, 255);
  const auto path = dir.path() / "test.pgm";
  ASSERT_TRUE(image.SavePgm(path).ok());
  auto loaded = GrayImage::LoadPgm(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, image);
}

TEST(GrayImage, LoadPgmRejectsNonPgm) {
  strata::fs::ScopedTempDir dir("pgm-bad");
  const auto path = dir.path() / "bad.pgm";
  ASSERT_TRUE(strata::fs::WriteFile(path, "P6\n2 2\n255\nxxxx").ok());
  EXPECT_FALSE(GrayImage::LoadPgm(path).ok());
}

TEST(ImageValue, WrapsForPayloadTransport) {
  GrayImage image(4, 4, 9);
  const Value value = MakeImageValue(image);
  EXPECT_EQ(value.kind(), ValueKind::kOpaque);
  const auto unwrapped = value.AsOpaque<ImageValue>();
  EXPECT_EQ(unwrapped->image().at(2, 2), 9);
  EXPECT_EQ(unwrapped->ApproxBytes(), 16u);
  EXPECT_STREQ(unwrapped->TypeName(), "GrayImage");
}

}  // namespace
}  // namespace strata::am
