#include "am/ot_generator.hpp"

#include <gtest/gtest.h>

namespace strata::am {
namespace {

TEST(OtGenerator, BackgroundOutsideSpecimens) {
  const BuildJobSpec job = MakeSmallJob(1, 200, 1);
  OtImageGenerator generator(job, nullptr);
  const GrayImage image = generator.GenerateLayer(0);
  ASSERT_EQ(image.width(), 200);
  // Corner pixel: far from the lone centred specimen.
  EXPECT_LE(image.at(0, 0), 10);
  EXPECT_LE(image.at(199, 199), 10);
}

TEST(OtGenerator, SpecimenPixelsNearBaseIntensity) {
  const BuildJobSpec job = MakeSmallJob(1, 200, 1);
  OtGeneratorParams params;
  OtImageGenerator generator(job, nullptr, params);
  const GrayImage image = generator.GenerateLayer(0);

  const SpecimenSpec& s = job.specimens[0];
  const int cx = job.plate.MmToPx(s.x_mm + s.width_mm / 2);
  const int cy = job.plate.MmToPx(s.y_mm + s.length_mm / 2);
  const double mean = image.RegionMean(cx - 10, cy - 10, 20, 20);
  EXPECT_NEAR(mean, params.base_intensity, 15.0);
}

TEST(OtGenerator, DeterministicPerLayer) {
  const BuildJobSpec job = MakeSmallJob(1, 150, 1);
  OtImageGenerator generator(job, nullptr);
  EXPECT_EQ(generator.GenerateLayer(3), generator.GenerateLayer(3));
  EXPECT_FALSE(generator.GenerateLayer(3) == generator.GenerateLayer(4));
}

TEST(OtGenerator, HotDefectRaisesIntensity) {
  const BuildJobSpec job = MakeSmallJob(1, 400, 1);
  // Hand-build a seeder-free comparison: render with and without defects by
  // constructing a seeder with an extreme birth rate and diffing.
  OtImageGenerator clean(job, nullptr);

  DefectModelParams dparams;
  dparams.birth_rate = 0.5;
  dparams.mean_intensity_delta = 60.0;
  dparams.hot_fraction = 1.0;  // hot only
  DefectSeeder seeder(job, dparams);
  ASSERT_FALSE(seeder.defects().empty());
  OtImageGenerator dirty(job, &seeder);

  // Find a layer with a defect and compare at its centre.
  const Defect& d = seeder.defects()[0];
  const GrayImage base = clean.GenerateLayer(d.center_layer);
  const GrayImage with = dirty.GenerateLayer(d.center_layer);
  const int px = job.plate.MmToPx(d.center_x_mm);
  const int py = job.plate.MmToPx(d.center_y_mm);
  EXPECT_GT(static_cast<int>(with.at(px, py)), static_cast<int>(base.at(px, py)) + 20);
}

TEST(OtGenerator, ColdDefectLowersIntensity) {
  const BuildJobSpec job = MakeSmallJob(1, 400, 1);
  OtImageGenerator clean(job, nullptr);
  DefectModelParams dparams;
  dparams.birth_rate = 0.5;
  dparams.mean_intensity_delta = 60.0;
  dparams.hot_fraction = 0.0;  // cold only
  DefectSeeder seeder(job, dparams);
  ASSERT_FALSE(seeder.defects().empty());
  OtImageGenerator dirty(job, &seeder);

  const Defect& d = seeder.defects()[0];
  const GrayImage base = clean.GenerateLayer(d.center_layer);
  const GrayImage with = dirty.GenerateLayer(d.center_layer);
  const int px = job.plate.MmToPx(d.center_x_mm);
  const int py = job.plate.MmToPx(d.center_y_mm);
  EXPECT_LT(static_cast<int>(with.at(px, py)), static_cast<int>(base.at(px, py)) - 20);
}

TEST(OtGenerator, ToppedOutSpecimenStopsEmitting) {
  BuildJobSpec job = MakeSmallJob(1, 200, 2);
  job.specimens[0].height_mm = 1.0;  // tops out at layer 25 (40 um layers)
  OtImageGenerator generator(job, nullptr);

  const SpecimenSpec& short_spec = job.specimens[0];
  const int cx = job.plate.MmToPx(short_spec.x_mm + short_spec.width_mm / 2);
  const int cy = job.plate.MmToPx(short_spec.y_mm + short_spec.length_mm / 2);

  EXPECT_GT(generator.GenerateLayer(0).at(cx, cy), 50);
  EXPECT_LE(generator.GenerateLayer(30).at(cx, cy), 10);  // powder only

  // The taller specimen is still printing at layer 30.
  const SpecimenSpec& tall = job.specimens[1];
  const int tx = job.plate.MmToPx(tall.x_mm + tall.width_mm / 2);
  const int ty = job.plate.MmToPx(tall.y_mm + tall.length_mm / 2);
  EXPECT_GT(generator.GenerateLayer(30).at(tx, ty), 50);
}

TEST(OtGenerator, FullPaperResolutionRenders) {
  const BuildJobSpec job = MakePaperJob(1, 2000);
  OtImageGenerator generator(job, nullptr);
  const GrayImage image = generator.GenerateLayer(0);
  EXPECT_EQ(image.width(), 2000);
  EXPECT_EQ(image.height(), 2000);
  EXPECT_EQ(image.size_bytes(), 4'000'000u);
}

}  // namespace
}  // namespace strata::am
