#include "am/geometry.hpp"

#include <gtest/gtest.h>

namespace strata::am {
namespace {

TEST(PlateSpec, PixelConversion) {
  PlateSpec plate;  // 250 mm, 2000 px -> 8 px/mm
  EXPECT_DOUBLE_EQ(plate.PxPerMm(), 8.0);
  EXPECT_EQ(plate.MmToPx(25.0), 200);
  EXPECT_DOUBLE_EQ(plate.PxToMm(2000), 250.0);
}

TEST(SpecimenSpec, Containment) {
  SpecimenSpec s;
  s.x_mm = 10;
  s.y_mm = 20;
  EXPECT_TRUE(s.Contains(10, 20));
  EXPECT_TRUE(s.Contains(34.9, 69.9));
  EXPECT_FALSE(s.Contains(35, 20));   // exclusive upper edge
  EXPECT_FALSE(s.Contains(10, 70));
  EXPECT_FALSE(s.Contains(9.9, 20));
}

TEST(BuildJobSpec, PaperJobMatchesEvaluationSetup) {
  const BuildJobSpec job = MakePaperJob(1);
  EXPECT_EQ(job.specimens.size(), 12u);  // 12 blocks (paper §5)
  EXPECT_EQ(job.plate.image_px, 2000);
  EXPECT_DOUBLE_EQ(job.plate.size_mm, 250.0);

  // 23 mm at 40 um = 575 layers; 1 mm stacks = 25 layers per stack.
  EXPECT_EQ(job.TotalLayers(), 575);
  EXPECT_EQ(job.LayersPerStack(), 25);

  for (const SpecimenSpec& s : job.specimens) {
    EXPECT_DOUBLE_EQ(s.width_mm, 25.0);
    EXPECT_DOUBLE_EQ(s.length_mm, 50.0);
    EXPECT_DOUBLE_EQ(s.height_mm, 23.0);
    EXPECT_GE(s.x_mm, 0.0);
    EXPECT_LE(s.x_mm + s.width_mm, 250.0);
    EXPECT_GE(s.y_mm, 0.0);
    EXPECT_LE(s.y_mm + s.length_mm, 250.0);
  }
}

TEST(BuildJobSpec, PaperJobSpecimensDoNotOverlap) {
  const BuildJobSpec job = MakePaperJob(1);
  for (std::size_t i = 0; i < job.specimens.size(); ++i) {
    for (std::size_t j = i + 1; j < job.specimens.size(); ++j) {
      const SpecimenSpec& a = job.specimens[i];
      const SpecimenSpec& b = job.specimens[j];
      const bool overlap = a.x_mm < b.x_mm + b.width_mm &&
                           b.x_mm < a.x_mm + a.width_mm &&
                           a.y_mm < b.y_mm + b.length_mm &&
                           b.y_mm < a.y_mm + a.length_mm;
      EXPECT_FALSE(overlap) << i << " vs " << j;
    }
  }
}

TEST(BuildJobSpec, ScanAngleRotatesPerStack) {
  const BuildJobSpec job = MakePaperJob(1);
  const int per_stack = job.LayersPerStack();
  EXPECT_DOUBLE_EQ(job.ScanAngleDeg(0), job.ScanAngleDeg(per_stack - 1));
  EXPECT_NE(job.ScanAngleDeg(0), job.ScanAngleDeg(per_stack));
  // Angles cycle through the configured set.
  const auto n = static_cast<int>(job.stack_angles_deg.size());
  EXPECT_DOUBLE_EQ(job.ScanAngleDeg(0), job.ScanAngleDeg(per_stack * n));
}

TEST(BuildJobSpec, SmallJobIsSmall) {
  const BuildJobSpec job = MakeSmallJob(7, 200, 3);
  EXPECT_EQ(job.job_id, 7);
  EXPECT_EQ(job.specimens.size(), 3u);
  EXPECT_EQ(job.plate.image_px, 200);
  EXPECT_EQ(job.TotalLayers(), 100);  // 4 mm at 40 um
}

}  // namespace
}  // namespace strata::am
