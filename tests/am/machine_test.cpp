#include "am/machine.hpp"

#include <gtest/gtest.h>

namespace strata::am {
namespace {

MachineParams SmallMachine(int layers = 10) {
  MachineParams params;
  params.job = MakeSmallJob(1, 150, 2);
  params.layers_limit = layers;
  return params;
}

TEST(MachineSimulator, ProducesRequestedLayers) {
  MachineSimulator machine(SmallMachine(5));
  int count = 0;
  while (auto layer = machine.NextLayer()) {
    EXPECT_EQ(layer->layer, count);
    EXPECT_EQ(layer->job, 1);
    ++count;
  }
  EXPECT_EQ(count, 5);
  EXPECT_FALSE(machine.NextLayer().has_value());
}

TEST(MachineSimulator, EventTimesAdvanceByLayerPeriod) {
  MachineSimulator machine(SmallMachine(3));
  const Timestamp period = machine.LayerPeriodMicros();
  EXPECT_EQ(period, SecondsToMicros(33.0));  // 30 s melt + 3 s recoat

  auto l0 = machine.NextLayer();
  auto l1 = machine.NextLayer();
  ASSERT_TRUE(l0.has_value() && l1.has_value());
  EXPECT_EQ(l1->event_time - l0->event_time, period);
}

TEST(MachineSimulator, ResetReplaysTheSameJob) {
  MachineSimulator machine(SmallMachine(3));
  auto first = machine.NextLayer();
  ASSERT_TRUE(first.has_value());
  (void)machine.NextLayer();
  machine.Reset();
  auto replay = machine.NextLayer();
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->layer, 0);
  EXPECT_EQ(replay->ot_image, first->ot_image);  // deterministic generation
}

TEST(MachineSimulator, PrintingParamsCarrySpecimenLayout) {
  MachineSimulator machine(SmallMachine());
  const Payload params = machine.PrintingParams(0);
  EXPECT_EQ(params.Get("specimen_count").AsInt(), 2);
  EXPECT_TRUE(params.Has("spec0_x_mm"));
  EXPECT_TRUE(params.Has("spec1_l_mm"));
  EXPECT_TRUE(params.Has("scan_angle_deg"));
  EXPECT_TRUE(params.Has("plate_size_mm"));
  EXPECT_EQ(params.Get("image_px").AsInt(), 150);
}

TEST(MachineSimulator, ScanAngleMatchesJobSpec) {
  MachineParams mp = SmallMachine(60);
  MachineSimulator machine(mp);
  const int per_stack = mp.job.LayersPerStack();
  EXPECT_DOUBLE_EQ(machine.PrintingParams(0).Get("scan_angle_deg").AsDouble(),
                   mp.job.ScanAngleDeg(0));
  EXPECT_DOUBLE_EQ(
      machine.PrintingParams(per_stack).Get("scan_angle_deg").AsDouble(),
      mp.job.ScanAngleDeg(per_stack));
}

TEST(MachineSimulator, LayersLimitClampsToJobHeight) {
  MachineParams params = SmallMachine(100'000);
  MachineSimulator machine(params);
  EXPECT_EQ(machine.total_layers(), params.job.TotalLayers());
}

TEST(MachineSimulator, ZeroLimitMeansFullJob) {
  MachineParams params = SmallMachine(0);
  MachineSimulator machine(params);
  EXPECT_EQ(machine.total_layers(), params.job.TotalLayers());
}

}  // namespace
}  // namespace strata::am
