#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/sampler.hpp"

namespace strata::obs {
namespace {

TEST(MetricsRegistryTest, HandlesAreSharedAndStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count", {{"op", "a"}});
  Counter* b = registry.GetCounter("x.count", {{"op", "b"}});
  EXPECT_NE(a, b);
  // Same (name, labels) -> same handle, even after other insertions.
  for (int i = 0; i < 100; ++i) {
    (void)registry.GetCounter("x.count", {{"op", std::to_string(i)}});
  }
  EXPECT_EQ(a, registry.GetCounter("x.count", {{"op", "a"}}));

  a->Inc();
  a->Inc(4);
  EXPECT_EQ(a->value(), 5u);
  EXPECT_EQ(b->value(), 0u);
}

TEST(MetricsRegistryTest, GaugeMovesBothWays) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("x.depth");
  g->Set(10);
  g->Add(5);
  g->Sub(7);
  EXPECT_EQ(g->value(), 8);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Value("x.depth"), 8.0);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  Counter* counter = registry.GetCounter("x.count");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter->Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(MetricsRegistryTest, SnapshotWhileWritersRunIsMonotonic) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("x.count");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) counter->Inc();
  });
  double last = 0.0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = registry.Snapshot();
    const double value = snap.Value("x.count").value_or(-1.0);
    EXPECT_GE(value, last);
    last = value;
  }
  stop.store(true);
  writer.join();
  EXPECT_LE(last, static_cast<double>(counter->value()));
}

TEST(MetricsRegistryTest, CallbacksAppendPullSamples) {
  MetricsRegistry registry;
  int pulls = 0;
  const auto id = registry.RegisterCallback([&pulls](MetricsSnapshot* snap) {
    ++pulls;
    snap->AddGauge("pull.depth", {{"q", "a"}}, 7);
  });
  EXPECT_EQ(registry.Snapshot().Value("pull.depth", {{"q", "a"}}), 7.0);
  EXPECT_EQ(pulls, 1);
  registry.Unregister(id);
  EXPECT_FALSE(registry.Snapshot().Value("pull.depth", {{"q", "a"}}).has_value());
  EXPECT_EQ(pulls, 1);
}

TEST(MetricsRegistryTest, CallbackMayTouchRegistryWithoutDeadlock) {
  MetricsRegistry registry;
  // Component callbacks are documented to run outside the registry lock, so
  // creating a handle from inside one must not self-deadlock.
  const auto id = registry.RegisterCallback([&registry](MetricsSnapshot* snap) {
    registry.GetCounter("made.inside")->Inc();
    snap->AddCounter("seen", {}, 1);
  });
  EXPECT_EQ(registry.Snapshot().Value("seen"), 1.0);
  registry.Unregister(id);
}

TEST(MetricsSnapshotTest, SumFiltersByPrefixAndWhere) {
  MetricsSnapshot snap;
  snap.AddCounter("t.out", {{"op", "cell.m0[0]"}, {"kind", "flatmap"}}, 10);
  snap.AddCounter("t.out", {{"op", "cell.m0[1]"}, {"kind", "flatmap"}}, 20);
  snap.AddCounter("t.out", {{"op", "cell.m0.router"}, {"kind", "router"}}, 99);
  snap.AddCounter("t.out", {{"op", "cell.m1"}, {"kind", "flatmap"}}, 40);
  snap.AddCounter("other", {{"op", "cell.m0[0]"}, {"kind", "flatmap"}}, 7);

  EXPECT_EQ(snap.Sum("t.out", "op", "cell.m0", {{"kind", "flatmap"}}), 30.0);
  EXPECT_EQ(snap.Sum("t.out", "op", "cell.m0"), 129.0);
  EXPECT_EQ(snap.Sum("t.out", "op", "cell."), 169.0);
  EXPECT_EQ(snap.Sum("t.out", "op", "nope"), 0.0);
}

TEST(MetricsSnapshotTest, TextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("b.count", {{"op", "x"}})->Inc(3);
  registry.GetGauge("a.depth")->Set(2);
  const std::string text = registry.Snapshot().ToText();
  // Sorted, one metric per line, labels in braces.
  EXPECT_EQ(text, "a.depth = 2\nb.count{op=x} = 3\n");
}

TEST(MetricsSnapshotTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("spe.op.tuples_in", {{"op", "fu\"se"}})->Inc(3);
  registry.GetGauge("kv.memtable_bytes")->Set(128);
  const std::string prom = registry.Snapshot().ToPrometheus();
  // Dots sanitized, TYPE headers present, label values quoted + escaped.
  EXPECT_NE(prom.find("# TYPE kv_memtable_bytes gauge\n"), std::string::npos);
  EXPECT_NE(prom.find("kv_memtable_bytes 128\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE spe_op_tuples_in counter\n"), std::string::npos);
  EXPECT_NE(prom.find("spe_op_tuples_in{op=\"fu\\\"se\"} 3\n"),
            std::string::npos);
}

TEST(MetricsSnapshotTest, JsonLinesExposition) {
  MetricsRegistry registry;
  registry.GetCounter("x.count", {{"op", "a"}})->Inc(2);
  registry.GetHistogram("x.lat")->Record(10);
  const std::string json = registry.Snapshot().ToJsonLines();
  EXPECT_NE(json.find("{\"name\":\"x.count\",\"kind\":\"counter\","
                      "\"labels\":{\"op\":\"a\"},\"value\":2}\n"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  // Every line is brace-balanced.
  std::size_t start = 0;
  while (start < json.size()) {
    const std::size_t end = json.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = json.substr(start, end - start);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    start = end + 1;
  }
}

TEST(MetricsSnapshotTest, PrometheusHistogramExposition) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("net.lat", {{"api", "pro\"duce"}});
  h->Record(5);      // <= 10
  h->Record(80);     // <= 100
  h->Record(90'000); // <= 100000
  const std::string prom = registry.Snapshot().ToPrometheus();

  EXPECT_NE(prom.find("# TYPE net_lat histogram\n"), std::string::npos);
  // Cumulative buckets: le=10 holds 1 sample, le=100 holds 2, the largest
  // finite bound and +Inf hold all 3, and +Inf always equals _count.
  EXPECT_NE(prom.find("net_lat_bucket{api=\"pro\\\"duce\",le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("net_lat_bucket{api=\"pro\\\"duce\",le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      prom.find("net_lat_bucket{api=\"pro\\\"duce\",le=\"10000000\"} 3\n"),
      std::string::npos);
  EXPECT_NE(prom.find("net_lat_bucket{api=\"pro\\\"duce\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("net_lat_count{api=\"pro\\\"duce\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("net_lat_sum{api=\"pro\\\"duce\"} 90085\n"),
            std::string::npos);
}

TEST(MetricsSnapshotTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("x.lat");
  for (int i = 0; i < 1000; ++i) h->Record(i * 37 % 5000);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& buckets = snap.histograms[0].buckets;
  ASSERT_FALSE(buckets.empty());
  std::uint64_t previous = 0;
  for (const auto& [bound, cumulative] : buckets) {
    EXPECT_GE(cumulative, previous) << "non-monotone at le=" << bound;
    previous = cumulative;
  }
  // Every sample fits under the largest finite bound here, so the last
  // cumulative bucket already equals the implicit +Inf bucket.
  EXPECT_EQ(buckets.back().second, snap.histograms[0].stats.count);
  EXPECT_EQ(snap.histograms[0].sum,
            static_cast<double>([&] {
              std::int64_t total = 0;
              for (int i = 0; i < 1000; ++i) total += i * 37 % 5000;
              return total;
            }()));
}

TEST(MetricsSnapshotTest, PullCallbackHistogramFallsBackToSummary) {
  MetricsRegistry registry;
  registry.RegisterCallback([](MetricsSnapshot* snap) {
    BoxplotStats stats;
    stats.count = 4;
    stats.p50 = 10;
    stats.p75 = 20;
    stats.p95 = 30;
    stats.mean = 15.0;
    snap->AddHistogram("pull.lat", {}, stats);
  });
  const std::string prom = registry.Snapshot().ToPrometheus();
  // No bucket data -> quantile summary, never a fabricated histogram.
  EXPECT_NE(prom.find("# TYPE pull_lat summary\n"), std::string::npos);
  EXPECT_NE(prom.find("pull_lat{quantile=\"0.5\"} 10\n"), std::string::npos);
  EXPECT_EQ(prom.find("pull_lat_bucket"), std::string::npos);
  EXPECT_NE(prom.find("pull_lat_count 4\n"), std::string::npos);
}

TEST(MetricsSnapshotTest, HistogramStats) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("x.lat", {{"op", "sink"}});
  for (int i = 1; i <= 100; ++i) h->Record(i);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "x.lat");
  EXPECT_EQ(snap.histograms[0].stats.count, 100u);
  EXPECT_GT(snap.histograms[0].stats.p95, snap.histograms[0].stats.p50);
}

TEST(PeriodicSamplerTest, DeliversSnapshotsAndFinalFlush) {
  MetricsRegistry registry;
  registry.GetCounter("x.count")->Inc(5);
  std::atomic<int> deliveries{0};
  std::atomic<double> last{0.0};
  PeriodicSampler sampler(&registry, std::chrono::milliseconds(5),
                          [&](const MetricsSnapshot& snap) {
                            deliveries.fetch_add(1);
                            last.store(snap.Value("x.count").value_or(-1.0));
                          });
  while (deliveries.load() < 2) std::this_thread::yield();
  registry.GetCounter("x.count")->Inc(5);
  const int before_stop = deliveries.load();
  sampler.Stop();
  // Stop() always delivers one final snapshot with the end-of-run totals.
  EXPECT_GT(deliveries.load(), before_stop);
  EXPECT_EQ(last.load(), 10.0);
  sampler.Stop();  // idempotent
}

}  // namespace
}  // namespace strata::obs
