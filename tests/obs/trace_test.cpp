#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace strata::obs {
namespace {

Span MakeSpan(std::uint64_t trace_id, std::uint64_t span_id, const char* name,
              const char* category, std::int64_t dur_us = 10) {
  Span span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.start_us = static_cast<std::int64_t>(span_id) * 100;
  span.dur_us = dur_us;
  span.SetName(name);
  span.SetCategory(category);
  return span;
}

/// The tracer is a process singleton; every test must leave it disabled and
/// empty so tests stay order-independent.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Configure(0);
    Tracer::Instance().Clear();
  }
  void TearDown() override {
    Tracer::Instance().Configure(0);
    Tracer::Instance().Clear();
  }
};

// --- SpanRing ----------------------------------------------------------------

TEST(SpanRingTest, SnapshotReturnsPushedSpansInOrder) {
  SpanRing ring(8);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ring.Push(MakeSpan(7, i, "op", "spe.source"));
  }
  std::vector<Span> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].span_id, i + 1);
    EXPECT_EQ(out[i].trace_id, 7u);
    EXPECT_STREQ(out[i].name, "op");
    EXPECT_STREQ(out[i].category, "spe.source");
  }
}

TEST(SpanRingTest, OverwriteKeepsMostRecentSpans) {
  SpanRing ring(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ring.Push(MakeSpan(1, i, "op", "spe.filter"));
  }
  std::vector<Span> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 4u);
  // The ring always holds the most recent spans, oldest first.
  EXPECT_EQ(out.front().span_id, 7u);
  EXPECT_EQ(out.back().span_id, 10u);
}

TEST(SpanRingTest, ClearHidesOldSpansButNotNewOnes) {
  SpanRing ring(8);
  ring.Push(MakeSpan(1, 1, "before", "spe.sink"));
  ring.Clear();
  std::vector<Span> out;
  ring.Snapshot(&out);
  EXPECT_TRUE(out.empty());

  ring.Push(MakeSpan(1, 2, "after", "spe.sink"));
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_STREQ(out.front().name, "after");
}

TEST(SpanRingTest, ConcurrentSnapshotsNeverObserveTornSpans) {
  SpanRing ring(16);
  std::atomic<bool> stop{false};

  // Writer: span_id always equals trace_id, so a torn read (half of one
  // span, half of another) is detectable.
  std::thread writer([&] {
    std::uint64_t i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.Push(MakeSpan(i, i, "op", "spe.router"));
      ++i;
    }
  });

  std::vector<Span> out;
  for (int iter = 0; iter < 2000; ++iter) {
    ring.Snapshot(&out);
    for (const Span& span : out) {
      ASSERT_EQ(span.trace_id, span.span_id);
      ASSERT_STREQ(span.name, "op");
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// --- Tracer ------------------------------------------------------------------

TEST_F(TracerTest, DisabledTracerNeverSamples) {
  EXPECT_FALSE(TracingEnabled());
  // A fresh thread gets a fresh sampling counter: deterministic.
  std::thread([&] {
    for (int i = 0; i < 100; ++i) {
      EXPECT_FALSE(Tracer::Instance().MaybeStartTrace().sampled());
    }
  }).join();
  EXPECT_EQ(Tracer::Instance().traces_started(), 0u);
}

TEST_F(TracerTest, SampleEveryControlsTraceRate) {
  Tracer::Instance().Configure(4);
  std::thread([&] {
    int sampled = 0;
    for (int i = 0; i < 16; ++i) {
      if (Tracer::Instance().MaybeStartTrace().sampled()) ++sampled;
    }
    EXPECT_EQ(sampled, 4);
  }).join();
  EXPECT_EQ(Tracer::Instance().traces_started(), 4u);
}

TEST_F(TracerTest, SpanScopeRecordsSpanAndRestoresThreadSlot) {
  Tracer::Instance().Configure(1);
  std::thread([&] {
    const TraceContext root = Tracer::Instance().MaybeStartTrace();
    ASSERT_TRUE(root.sampled());
    EXPECT_EQ(ThreadTraceSlot().trace_id, 0u);
    {
      SpanScope outer("sink", "spe.sink", root, 5);
      ASSERT_TRUE(outer.active());
      // While active, nested layers see this span as their parent.
      EXPECT_EQ(ThreadTraceSlot().trace_id, root.trace_id);
      const std::uint64_t outer_span = ThreadTraceSlot().parent_span;
      EXPECT_NE(outer_span, 0u);
      {
        SpanScope inner("kv.store", "kv", ThreadTraceSlot());
        ASSERT_TRUE(inner.active());
        EXPECT_NE(ThreadTraceSlot().parent_span, outer_span);
      }
      // Inner scope restored the outer slot.
      EXPECT_EQ(ThreadTraceSlot().parent_span, outer_span);
    }
    EXPECT_EQ(ThreadTraceSlot().trace_id, 0u);
  }).join();

  const std::vector<Span> spans = Tracer::Instance().CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Both spans start within the same microsecond, so don't assume an order;
  // look them up by category. Both belong to the same trace, and the inner
  // span's parent is the outer span.
  const Span& outer = std::string_view(spans[0].category) == "spe.sink"
                          ? spans[0]
                          : spans[1];
  const Span& inner = &outer == &spans[0] ? spans[1] : spans[0];
  EXPECT_STREQ(outer.category, "spe.sink");
  EXPECT_STREQ(inner.category, "kv");
  EXPECT_EQ(outer.trace_id, inner.trace_id);
  EXPECT_EQ(inner.parent_span, outer.span_id);
  EXPECT_EQ(outer.batch, 5u);
}

TEST_F(TracerTest, CollectSpansDerivesQueueWaitFromParentGap) {
  Tracer::Instance().Configure(1);
  std::thread([&] {
    TraceContext upstream = Tracer::Instance().MaybeStartTrace();
    ASSERT_TRUE(upstream.sampled());
    TraceContext emitted;
    {
      SpanScope hop("flatmap", "spe.flatmap", upstream);
      emitted = hop.EmitContext();
    }
    EXPECT_EQ(emitted.trace_id, upstream.trace_id);
    EXPECT_NE(emitted.parent_span, upstream.parent_span);

    // The batch "sits in a queue" between the hops: the gap between the
    // flatmap span's end and the sink span's start.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    SpanScope next("sink", "spe.sink", emitted);
    EXPECT_TRUE(next.active());
  }).join();

  const std::vector<Span> spans = Tracer::Instance().CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Collection derives the sink hop's queue wait from the gap to its parent
  // (the flatmap span): at least the 5ms sleep, and consistent with the
  // recorded timestamps. The root hop has no parent span, so no queue wait.
  EXPECT_EQ(spans[1].parent_span, spans[0].span_id);
  EXPECT_GE(spans[1].queue_us, 5000);
  EXPECT_EQ(spans[1].queue_us,
            spans[1].start_us - (spans[0].start_us + spans[0].dur_us));
  EXPECT_EQ(spans[0].queue_us, 0);
}

TEST_F(TracerTest, CollectSpansMergesRingsFromManyThreads) {
  Tracer::Instance().Configure(1);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const TraceContext ctx = Tracer::Instance().MaybeStartTrace();
        SpanScope span("worker", "spe.source", ctx);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Tracer::Instance().CollectSpans().size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(Tracer::Instance().spans_recorded(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);

  Tracer::Instance().Clear();
  EXPECT_TRUE(Tracer::Instance().CollectSpans().empty());
  EXPECT_EQ(Tracer::Instance().spans_recorded(), 0u);
}

TEST_F(TracerTest, BindMetricsExportsTraceCounters) {
  MetricsRegistry registry;
  Tracer::Instance().BindMetrics(&registry);
  Tracer::Instance().Configure(2);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Value("obs.trace.sample_every"), 2.0);
  EXPECT_EQ(snapshot.Value("obs.trace.started"), 0.0);
  EXPECT_EQ(snapshot.Value("obs.trace.spans"), 0.0);
  Tracer::Instance().BindMetrics(nullptr);
}

// --- exporters ---------------------------------------------------------------

TEST(TraceExportTest, ChromeTraceContainsCompleteEvents) {
  std::vector<Span> spans;
  spans.push_back(MakeSpan(0xabc, 1, "collector", "spe.source", 42));
  spans.push_back(MakeSpan(0xabc, 2, "raw.topic", "pubsub.produce", 7));

  const std::string json = Tracer::ToChromeTrace(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"collector\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"pubsub.produce\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":42"), std::string::npos);
  EXPECT_NE(json.find("abc"), std::string::npos);  // hex trace id in args
}

TEST(TraceExportTest, SummarizeAggregatesPerStage) {
  std::vector<Span> spans;
  for (int i = 0; i < 10; ++i) {
    spans.push_back(MakeSpan(1, static_cast<std::uint64_t>(i + 1), "detect",
                             "spe.flatmap", 100));
  }
  spans.push_back(MakeSpan(1, 99, "store", "kv", 5));

  const std::vector<StageStats> stages = Tracer::Summarize(spans);
  ASSERT_EQ(stages.size(), 2u);
  // Sorted by total execute time descending.
  EXPECT_EQ(stages[0].name, "detect");
  EXPECT_EQ(stages[0].count, 10u);
  EXPECT_EQ(stages[0].total_exec_us, 1000);
  EXPECT_EQ(stages[0].exec_p50_us, 100);
  EXPECT_EQ(stages[1].category, "kv");
}

TEST(TraceExportTest, TracezTextListsStagesAndRecentSpans) {
  std::vector<Span> spans;
  spans.push_back(MakeSpan(0x123, 1, "collector", "spe.source", 10));
  const std::string text = Tracer::ToTracezText(spans);
  EXPECT_NE(text.find("collector"), std::string::npos);
  EXPECT_NE(text.find("spe.source"), std::string::npos);
}

}  // namespace
}  // namespace strata::obs
