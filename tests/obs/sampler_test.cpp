#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace strata::obs {
namespace {

TEST(PeriodicSamplerTest, StopDeliversFinalSnapshot) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.events");

  std::mutex mu;
  std::vector<double> seen;
  PeriodicSampler sampler(&registry, std::chrono::milliseconds(10'000),
                          [&](const MetricsSnapshot& snapshot) {
                            std::lock_guard lock(mu);
                            seen.push_back(
                                snapshot.Value("test.events").value_or(-1));
                          });

  // The period is far longer than the test: any snapshot we observe must be
  // the final flush from Stop(), proving end-of-run totals always arrive.
  counter->Inc(42);
  sampler.Stop();

  std::lock_guard lock(mu);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back(), 42.0);
}

TEST(PeriodicSamplerTest, StopIsIdempotent) {
  MetricsRegistry registry;
  std::atomic<int> snapshots{0};
  PeriodicSampler sampler(&registry, std::chrono::milliseconds(10'000),
                          [&](const MetricsSnapshot&) { ++snapshots; });
  sampler.Stop();
  const int after_first_stop = snapshots.load();
  sampler.Stop();
  sampler.Stop();
  // The final snapshot is delivered exactly once, not once per Stop call.
  EXPECT_EQ(snapshots.load(), after_first_stop);
  EXPECT_EQ(after_first_stop, 1);
}

TEST(PeriodicSamplerTest, NoSnapshotAfterStopReturns) {
  MetricsRegistry registry;
  std::atomic<int> snapshots{0};
  auto sampler = std::make_unique<PeriodicSampler>(
      &registry, std::chrono::milliseconds(1),
      [&](const MetricsSnapshot&) { ++snapshots; });

  // Let a few periodic snapshots land, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler->Stop();
  const int at_stop = snapshots.load();
  EXPECT_GE(at_stop, 1);

  // Once Stop has returned, the consumer must never run again — a consumer
  // referencing stack state would otherwise race its own teardown.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(snapshots.load(), at_stop);
  sampler.reset();
  EXPECT_EQ(snapshots.load(), at_stop);
}

TEST(PeriodicSamplerTest, PeriodicSnapshotsObserveLiveValues) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.depth");
  gauge->Add(7);

  std::mutex mu;
  std::vector<double> seen;
  PeriodicSampler sampler(&registry, std::chrono::milliseconds(2),
                          [&](const MetricsSnapshot& snapshot) {
                            std::lock_guard lock(mu);
                            seen.push_back(
                                snapshot.Value("test.depth").value_or(-1));
                          });
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  sampler.Stop();

  std::lock_guard lock(mu);
  ASSERT_GE(seen.size(), 2u);
  for (const double v : seen) EXPECT_EQ(v, 7.0);
}

}  // namespace
}  // namespace strata::obs
