// End-to-end deployment-topology tests: the Algorithm-1 thermal pipeline
// running against a BrokerServer over TCP loopback must behave exactly like
// the embedded deployment — same code path in STRATA, different transport —
// including when the pipeline is split into a collector process half and an
// analysis half joined only by the networked connectors.
#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "net/server.hpp"
#include "strata/usecase.hpp"

namespace strata::core {
namespace {

struct PipelineRun {
  std::vector<ClusterReport> reports;
};

/// Per-(layer, specimen) window event counts: the determinism fingerprint
/// (the machine simulator is seeded, so equal inputs give equal events).
std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> Fingerprint(
    const PipelineRun& run) {
  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> m;
  for (const ClusterReport& r : run.reports) {
    m[{r.layer, r.specimen}] = r.window_events;
  }
  return m;
}

am::MachineParams SmallMachineParams(int layers) {
  am::MachineParams params;
  params.job = am::MakeSmallJob(1, /*image_px=*/250, /*specimens=*/2);
  params.layers_limit = layers;
  params.defects.birth_rate = 0.1;
  params.defects.mean_intensity_delta = 50.0;
  return params;
}

UseCaseParams SmallUseCaseParams() {
  UseCaseParams params;
  params.cell_px = 5;
  params.correlate_layers = 5;
  return params;
}

PipelineRun RunPipeline(StrataOptions options, int layers) {
  Strata strata(std::move(options));
  const UseCaseParams params = SmallUseCaseParams();
  const am::MachineParams machine_params = SmallMachineParams(layers);
  ComputeAndStoreThresholds(&strata, params.machine_id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);

  PipelineRun run;
  std::mutex mu;
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  BuildThermalPipeline(&strata, machine, pacing, params,
                       [&](const ClusterReport& report) {
                         std::lock_guard lock(mu);
                         run.reports.push_back(report);
                       });
  strata.Deploy();
  strata.WaitForCompletion();
  return run;
}

TEST(RemotePipeline, MatchesEmbeddedDeployment) {
  constexpr int kLayers = 10;
  const PipelineRun embedded = RunPipeline({}, kLayers);
  ASSERT_EQ(embedded.reports.size(), 2u * kLayers);

  ps::Broker shared_broker;
  net::BrokerServer server(&shared_broker);
  ASSERT_TRUE(server.Start().ok());
  StrataOptions networked;
  net::RemoteOptions remote;
  remote.port = server.port();
  networked.remote_broker = remote;
  const PipelineRun over_tcp = RunPipeline(std::move(networked), kLayers);
  server.Stop();

  EXPECT_EQ(over_tcp.reports.size(), embedded.reports.size());
  EXPECT_EQ(Fingerprint(over_tcp), Fingerprint(embedded));

  // The connector traffic really went over the wire: the server's broker
  // holds the raw-data topics, not the pipeline's in-process one.
  EXPECT_TRUE(shared_broker.HasTopic("raw.ot.m0"));
  EXPECT_TRUE(shared_broker.HasTopic("raw.pp.m0"));
  EXPECT_TRUE(shared_broker.HasTopic("events.cluster.m0"));
}

TEST(RemotePipeline, CollectorAndAnalysisSplitAcrossProcesses) {
  constexpr int kLayers = 10;
  const PipelineRun embedded = RunPipeline({}, kLayers);

  ps::Broker shared_broker;
  net::BrokerServer server(&shared_broker);
  ASSERT_TRUE(server.Start().ok());
  net::RemoteOptions remote;
  remote.port = server.port();

  const UseCaseParams params = SmallUseCaseParams();
  const am::MachineParams machine_params = SmallMachineParams(kLayers);
  const std::string& id = params.machine_id;

  // "Process" 1: the machine-side collector, publishing the raw streams.
  StrataOptions collector_options;
  collector_options.remote_broker = remote;
  Strata collector(std::move(collector_options));
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  collector.ExportSource("pp." + id,
                         PrintingParameterCollector(machine, pacing));
  collector.ExportSource("ot." + id, OtImageCollector(machine, pacing));

  // "Process" 2: the analysis side, importing them over TCP.
  StrataOptions analysis_options;
  analysis_options.remote_broker = remote;
  Strata analysis(std::move(analysis_options));
  ComputeAndStoreThresholds(&analysis, id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();
  PipelineRun run;
  std::mutex mu;
  BuildThermalAnalysis(&analysis, analysis.ImportSource("pp." + id),
                       analysis.ImportSource("ot." + id),
                       machine->job().plate.PxPerMm(), params,
                       [&](const ClusterReport& report) {
                         std::lock_guard lock(mu);
                         run.reports.push_back(report);
                       });

  // Start the analysis first: topics are created idempotently on both
  // sides, so the subscriber can come up before any data exists.
  analysis.Deploy();
  collector.Deploy();
  collector.WaitForCompletion();
  analysis.WaitForCompletion();
  server.Stop();

  EXPECT_EQ(run.reports.size(), embedded.reports.size());
  EXPECT_EQ(Fingerprint(run), Fingerprint(embedded));
}

TEST(RemotePipeline, ClientMetricsAreWiredIntoTheRegistry) {
  ps::Broker shared_broker;
  net::BrokerServer server(&shared_broker);
  ASSERT_TRUE(server.Start().ok());

  StrataOptions options;
  net::RemoteOptions remote;
  remote.port = server.port();
  options.remote_broker = remote;
  Strata strata(std::move(options));
  auto stream =
      strata.AddSource("probe", [emitted = false]() mutable
                       -> std::optional<spe::Tuple> {
        if (emitted) return std::nullopt;
        emitted = true;
        spe::Tuple t;
        t.job = 1;
        t.layer = 0;
        return t;
      });
  strata.Deliver("sink", std::move(stream), [](const spe::Tuple&) {});
  strata.Deploy();
  strata.WaitForCompletion();

  const auto snapshot = strata.MetricsSnapshot();
  EXPECT_GT(snapshot.Value("net.client.connects").value_or(0), 0.0);
  server.Stop();
}

}  // namespace
}  // namespace strata::core
