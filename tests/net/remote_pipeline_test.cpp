// End-to-end deployment-topology tests: the Algorithm-1 thermal pipeline
// running against a BrokerServer over TCP loopback must behave exactly like
// the embedded deployment — same code path in STRATA, different transport —
// including when the pipeline is split into a collector process half and an
// analysis half joined only by the networked connectors.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>

#include "net/server.hpp"
#include "obs/trace.hpp"
#include "strata/usecase.hpp"

namespace strata::core {
namespace {

struct PipelineRun {
  std::vector<ClusterReport> reports;
};

/// Per-(layer, specimen) window event counts: the determinism fingerprint
/// (the machine simulator is seeded, so equal inputs give equal events).
std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> Fingerprint(
    const PipelineRun& run) {
  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> m;
  for (const ClusterReport& r : run.reports) {
    m[{r.layer, r.specimen}] = r.window_events;
  }
  return m;
}

am::MachineParams SmallMachineParams(int layers) {
  am::MachineParams params;
  params.job = am::MakeSmallJob(1, /*image_px=*/250, /*specimens=*/2);
  params.layers_limit = layers;
  params.defects.birth_rate = 0.1;
  params.defects.mean_intensity_delta = 50.0;
  return params;
}

UseCaseParams SmallUseCaseParams() {
  UseCaseParams params;
  params.cell_px = 5;
  params.correlate_layers = 5;
  return params;
}

PipelineRun RunPipeline(StrataOptions options, int layers) {
  Strata strata(std::move(options));
  const UseCaseParams params = SmallUseCaseParams();
  const am::MachineParams machine_params = SmallMachineParams(layers);
  ComputeAndStoreThresholds(&strata, params.machine_id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);

  PipelineRun run;
  std::mutex mu;
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  BuildThermalPipeline(&strata, machine, pacing, params,
                       [&](const ClusterReport& report) {
                         std::lock_guard lock(mu);
                         run.reports.push_back(report);
                       });
  strata.Deploy();
  strata.WaitForCompletion();
  return run;
}

TEST(RemotePipeline, MatchesEmbeddedDeployment) {
  constexpr int kLayers = 10;
  const PipelineRun embedded = RunPipeline({}, kLayers);
  ASSERT_EQ(embedded.reports.size(), 2u * kLayers);

  ps::Broker shared_broker;
  net::BrokerServer server(&shared_broker);
  ASSERT_TRUE(server.Start().ok());
  StrataOptions networked;
  net::RemoteOptions remote;
  remote.port = server.port();
  networked.remote_broker = remote;
  const PipelineRun over_tcp = RunPipeline(std::move(networked), kLayers);
  server.Stop();

  EXPECT_EQ(over_tcp.reports.size(), embedded.reports.size());
  EXPECT_EQ(Fingerprint(over_tcp), Fingerprint(embedded));

  // The connector traffic really went over the wire: the server's broker
  // holds the raw-data topics, not the pipeline's in-process one.
  EXPECT_TRUE(shared_broker.HasTopic("raw.ot.m0"));
  EXPECT_TRUE(shared_broker.HasTopic("raw.pp.m0"));
  EXPECT_TRUE(shared_broker.HasTopic("events.cluster.m0"));
}

TEST(RemotePipeline, CollectorAndAnalysisSplitAcrossProcesses) {
  constexpr int kLayers = 10;
  const PipelineRun embedded = RunPipeline({}, kLayers);

  ps::Broker shared_broker;
  net::BrokerServer server(&shared_broker);
  ASSERT_TRUE(server.Start().ok());
  net::RemoteOptions remote;
  remote.port = server.port();

  const UseCaseParams params = SmallUseCaseParams();
  const am::MachineParams machine_params = SmallMachineParams(kLayers);
  const std::string& id = params.machine_id;

  // "Process" 1: the machine-side collector, publishing the raw streams.
  StrataOptions collector_options;
  collector_options.remote_broker = remote;
  Strata collector(std::move(collector_options));
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  collector.ExportSource("pp." + id,
                         PrintingParameterCollector(machine, pacing));
  collector.ExportSource("ot." + id, OtImageCollector(machine, pacing));

  // "Process" 2: the analysis side, importing them over TCP.
  StrataOptions analysis_options;
  analysis_options.remote_broker = remote;
  Strata analysis(std::move(analysis_options));
  ComputeAndStoreThresholds(&analysis, id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();
  PipelineRun run;
  std::mutex mu;
  BuildThermalAnalysis(&analysis, analysis.ImportSource("pp." + id),
                       analysis.ImportSource("ot." + id),
                       machine->job().plate.PxPerMm(), params,
                       [&](const ClusterReport& report) {
                         std::lock_guard lock(mu);
                         run.reports.push_back(report);
                       });

  // Start the analysis first: topics are created idempotently on both
  // sides, so the subscriber can come up before any data exists.
  analysis.Deploy();
  collector.Deploy();
  collector.WaitForCompletion();
  analysis.WaitForCompletion();
  server.Stop();

  EXPECT_EQ(run.reports.size(), embedded.reports.size());
  EXPECT_EQ(Fingerprint(run), Fingerprint(embedded));
}

TEST(RemotePipeline, TraceCrossesEveryLayerOverTcp) {
  // Sampling at 1/1, a trace born at the collector's source must resurface
  // in spans from every layer it crosses: the SPE operators on both sides,
  // the pub/sub connectors, the TCP server dispatch, and the KV store the
  // sink persists into. All components share this process, so the singleton
  // tracer sees the union.
  obs::Tracer& tracer = obs::Tracer::Instance();
  tracer.Configure(1);
  tracer.Clear();

  ps::Broker shared_broker;
  net::BrokerServer server(&shared_broker);
  ASSERT_TRUE(server.Start().ok());
  net::RemoteOptions remote;
  remote.port = server.port();

  // Machine half: export a short finite stream over TCP.
  StrataOptions collector_options;
  collector_options.remote_broker = remote;
  Strata collector(std::move(collector_options));
  auto next = std::make_shared<int>(0);
  collector.ExportSource("trace.probe",
                         [next]() -> std::optional<spe::Tuple> {
                           if (*next >= 8) return std::nullopt;
                           spe::Tuple t;
                           t.job = 1;
                           t.layer = (*next)++;
                           return t;
                         });

  // Analysis half: import it and persist every tuple, so the kv layer sees
  // the trace the sink is running under.
  StrataOptions analysis_options;
  analysis_options.remote_broker = remote;
  Strata analysis(std::move(analysis_options));
  std::atomic<int> delivered{0};
  analysis.Deliver("persist", analysis.ImportSource("trace.probe"),
                   [&](const spe::Tuple& t) {
                     analysis
                         .Store("trace/" + std::to_string(t.layer), "seen")
                         .OrDie();
                     ++delivered;
                   });

  analysis.Deploy();
  collector.Deploy();
  collector.WaitForCompletion();
  analysis.WaitForCompletion();
  server.Stop();

  const std::vector<obs::Span> spans = tracer.CollectSpans();
  tracer.Configure(0);
  tracer.Clear();
  EXPECT_EQ(delivered.load(), 8);

  // Bucket categories into layers per trace id.
  std::map<std::uint64_t, std::set<std::string>> layers_by_trace;
  for (const obs::Span& span : spans) {
    const std::string category = span.category;
    std::string layer = category;
    if (const std::size_t dot = category.find('.');
        dot != std::string::npos) {
      layer = category.substr(0, dot);
    }
    layers_by_trace[span.trace_id].insert(layer);
  }
  int full_depth = 0;
  for (const auto& [trace_id, layers] : layers_by_trace) {
    if (layers.count("spe") && layers.count("pubsub") && layers.count("net") &&
        layers.count("kv")) {
      ++full_depth;
    }
  }
  EXPECT_GT(full_depth, 0)
      << "no single trace produced spans in all four layers; spans seen: "
      << spans.size();
}

TEST(RemotePipeline, ClientMetricsAreWiredIntoTheRegistry) {
  ps::Broker shared_broker;
  net::BrokerServer server(&shared_broker);
  ASSERT_TRUE(server.Start().ok());

  StrataOptions options;
  net::RemoteOptions remote;
  remote.port = server.port();
  options.remote_broker = remote;
  Strata strata(std::move(options));
  auto stream =
      strata.AddSource("probe", [emitted = false]() mutable
                       -> std::optional<spe::Tuple> {
        if (emitted) return std::nullopt;
        emitted = true;
        spe::Tuple t;
        t.job = 1;
        t.layer = 0;
        return t;
      });
  strata.Deliver("sink", std::move(stream), [](const spe::Tuple&) {});
  strata.Deploy();
  strata.WaitForCompletion();

  const auto snapshot = strata.MetricsSnapshot();
  EXPECT_GT(snapshot.Value("net.client.connects").value_or(0), 0.0);
  server.Stop();
}

}  // namespace
}  // namespace strata::core
