// RemoteConsumer::Seek — checkpoint replay over the wire. The remote seek
// validates the requested offset against the server's current [start, end)
// bounds via a Metadata round-trip, so a checkpoint that outlived broker
// retention surfaces as one clean OutOfRange instead of a fetch loop that
// spins on an offset the server no longer holds.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "net/remote.hpp"
#include "net/server.hpp"
#include "pubsub/broker.hpp"

namespace strata::net {
namespace {

using namespace std::chrono_literals;

constexpr auto kShortTimeout = std::chrono::microseconds(10'000);
constexpr auto kLongTimeout = std::chrono::microseconds(2'000'000);

class RemoteSeekTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<BrokerServer>(&broker_);
    server_->Start().OrDie();
    RemoteOptions remote;
    remote.host = "127.0.0.1";
    remote.port = server_->port();
    remote.backoff_initial = 5ms;
    client_ = std::make_unique<RemoteBroker>(remote);
  }
  void TearDown() override { server_->Stop(); }

  void Produce(const std::string& topic, int count) {
    auto producer = std::move(client_->NewProducer()).value();
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(
          producer->Send(topic, "k", "v" + std::to_string(i), i).ok());
    }
  }

  ps::Broker broker_;
  std::unique_ptr<BrokerServer> server_;
  std::unique_ptr<RemoteBroker> client_;
};

TEST_F(RemoteSeekTest, SeekBackReplaysRecords) {
  ASSERT_TRUE(client_->CreateTopic("events", {.partitions = 1}).ok());
  Produce("events", 10);

  auto consumer = std::move(client_->NewConsumer("events", {})).value();
  std::size_t consumed = 0;
  while (consumed < 10) {
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    consumed += batch->size();
  }

  ASSERT_TRUE(consumer->Seek("events", 0, 4).ok());
  std::vector<ps::ConsumedRecord> replayed;
  while (replayed.size() < 6) {
    auto batch = consumer->Poll(kLongTimeout);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->empty()) << "replay stalled";
    for (auto& record : *batch) replayed.push_back(std::move(record));
  }
  ASSERT_EQ(replayed.size(), 6u);
  EXPECT_EQ(replayed.front().offset, 4);
  EXPECT_EQ(replayed.front().value, "v4");
  EXPECT_EQ(replayed.back().offset, 9);
}

TEST_F(RemoteSeekTest, SeekBelowRetentionIsCleanOutOfRange) {
  ASSERT_TRUE(
      client_
          ->CreateTopic("events", {.partitions = 1, .retention_records = 4})
          .ok());
  Produce("events", 10);  // offsets 0..5 truncated away, 6..9 survive

  auto consumer = std::move(client_->NewConsumer("events", {})).value();
  const Status truncated = consumer->Seek("events", 0, 2);
  ASSERT_FALSE(truncated.ok());
  EXPECT_TRUE(truncated.IsOutOfRange()) << truncated.ToString();

  // The consumer is still healthy after the rejected seek: the surviving
  // suffix reads normally from a valid offset.
  ASSERT_TRUE(consumer->Seek("events", 0, 6).ok());
  auto batch = consumer->Poll(kLongTimeout);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->empty());
  EXPECT_EQ(batch->front().offset, 6);
  EXPECT_EQ(batch->front().value, "v6");
}

TEST_F(RemoteSeekTest, SeekPastEndAndUnassignedAreErrors) {
  ASSERT_TRUE(client_->CreateTopic("events", {.partitions = 1}).ok());
  Produce("events", 3);

  auto consumer = std::move(client_->NewConsumer("events", {})).value();
  const Status future = consumer->Seek("events", 0, 99);
  ASSERT_FALSE(future.ok());
  EXPECT_TRUE(future.IsOutOfRange()) << future.ToString();
  EXPECT_FALSE(consumer->Seek("events", 5, 0).ok());

  // End-of-log is a valid (empty) position.
  ASSERT_TRUE(consumer->Seek("events", 0, 3).ok());
  auto batch = consumer->Poll(kShortTimeout);
  EXPECT_TRUE(batch.status().IsTimeout());
}

}  // namespace
}  // namespace strata::net
