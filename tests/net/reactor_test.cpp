// Tests for the epoll reactor front-end: the EventLoop itself, request
// pipelining with correlation ids, v1 interop, long-poll parking (and the
// regressions the reactor rewrite fixed: accept stalled behind joined
// handler threads, long-polls spinning on below-retention offsets), and
// connection churn under concurrency.
#include "net/reactor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/remote.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "pubsub/broker.hpp"

namespace strata::net {
namespace {

using namespace std::chrono_literals;

ps::Record MakeRecord(const std::string& key, const std::string& value) {
  ps::Record r;
  r.key = key;
  r.value = value;
  return r;
}

/// Raw framed client speaking directly to the server socket, so tests can
/// pipeline requests and observe per-frame correlation ids — things the
/// strict request/response ClientConnection never does.
struct RawClient {
  explicit RawClient(std::uint16_t port) {
    auto s = Socket::Connect("127.0.0.1", port, After(5s));
    s.status().OrDie();
    socket = std::move(*s);
  }

  /// Send one request frame, optionally tagged with a correlation id.
  [[nodiscard]] Status Send(ApiKey api, const std::string& body,
                            const std::uint64_t* correlation = nullptr) {
    std::string payload;
    EncodeRequest(api, body, &payload);
    return WriteFrame(&socket, payload, After(5s), nullptr, correlation);
  }

  /// Read one response frame; fills the echoed correlation id (nullopt on
  /// uncorrelated frames) and returns the transported Status with `*body`
  /// set on Ok.
  [[nodiscard]] Status Recv(std::string* body,
                            std::optional<std::uint64_t>* correlation,
                            Deadline deadline) {
    std::string payload;
    if (Status s = ReadFrame(&socket, &payload, deadline, nullptr, correlation);
        !s.ok()) {
      return s;
    }
    std::string_view view;
    Status s = DecodeResponse(payload, &view);
    if (body != nullptr) body->assign(view);
    return s;
  }

  /// Strict request/response round trip (uncorrelated).
  [[nodiscard]] Status Call(ApiKey api, const std::string& body,
                            std::string* response) {
    if (Status s = Send(api, body); !s.ok()) return s;
    std::optional<std::uint64_t> correlation;
    Status s = Recv(response, &correlation, After(5s));
    EXPECT_FALSE(correlation.has_value());
    return s;
  }

  [[nodiscard]] std::uint32_t Hello(std::uint32_t max_version) {
    HelloRequest req;
    req.max_version = max_version;
    std::string body;
    EncodeHelloRequest(req, &body);
    std::string resp;
    if (!Call(ApiKey::kHello, body, &resp).ok()) return 0;
    HelloResponse hello;
    if (!DecodeHelloResponse(resp, &hello).ok()) return 0;
    return hello.version;
  }

  Socket socket;
};

std::string FetchBody(const std::string& topic, std::int64_t offset,
                      std::uint64_t max_wait_us) {
  FetchRequest req;
  req.entries.push_back({.tp = {topic, 0}, .offset = offset});
  req.max_wait_us = max_wait_us;
  std::string body;
  EncodeFetchRequest(req, &body);
  return body;
}

std::string ProduceBody(const std::string& topic, const std::string& key,
                        const std::string& value) {
  ProduceRequest req;
  req.topic = topic;
  req.record = MakeRecord(key, value);
  std::string body;
  EncodeProduceRequest(req, &body);
  return body;
}

// --- EventLoop --------------------------------------------------------------

TEST(EventLoop, PostRunsTasksOnLoopThread) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  EXPECT_FALSE(loop.InLoopThread());

  std::atomic<bool> on_loop{false};
  loop.PostAndWait([&] { on_loop.store(loop.InLoopThread()); });
  EXPECT_TRUE(on_loop.load());

  // Tasks posted from the loop thread run in a later iteration, not inline.
  std::atomic<int> order{0};
  loop.PostAndWait([&] {
    loop.Post([&] { order.store(order.load() * 10 + 2); });
    order.store(1);
  });
  loop.PostAndWait([] {});  // barrier: the nested task has run
  EXPECT_EQ(order.load(), 12);
  loop.Stop();
}

TEST(EventLoop, PostAndWaitRunsInlineWhenStopped) {
  EventLoop loop;
  bool ran = false;
  loop.PostAndWait([&] { ran = true; });  // never started
  EXPECT_TRUE(ran);

  ASSERT_TRUE(loop.Start().ok());
  loop.Stop();
  ran = false;
  loop.PostAndWait([&] { ran = true; });  // stopped
  EXPECT_TRUE(ran);
}

TEST(EventLoop, TimersFireInDeadlineOrderAndCancel) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());

  std::mutex mu;
  std::vector<int> fired;
  std::condition_variable cv;
  loop.PostAndWait([&] {
    const auto now = std::chrono::steady_clock::now();
    loop.AddTimer(now + 60ms, [&] {
      std::lock_guard lock(mu);
      fired.push_back(2);
      cv.notify_all();
    });
    loop.AddTimer(now + 20ms, [&] {
      std::lock_guard lock(mu);
      fired.push_back(1);
    });
    const auto cancelled = loop.AddTimer(now + 1ms, [&] {
      std::lock_guard lock(mu);
      fired.push_back(99);
    });
    loop.CancelTimer(cancelled);
  });

  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return fired.size() >= 2; }));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  loop.Stop();
}

// --- Pipelining (protocol v3) ------------------------------------------------

struct TestServer {
  explicit TestServer(BrokerServerOptions options = {},
                      ps::BrokerOptions broker_options = {})
      : broker(std::move(broker_options)), server(&broker, std::move(options)) {
    server.Start().OrDie();
  }
  ~TestServer() { server.Stop(); }

  ps::Broker broker;
  BrokerServer server;
};

TEST(Reactor, HelloNegotiatesPipeliningVersion) {
  TestServer ts;
  RawClient client(ts.server.port());
  EXPECT_EQ(client.Hello(kProtocolVersion), kProtocolVersion);
  RawClient old_client(ts.server.port());
  EXPECT_EQ(old_client.Hello(2), 2u);
}

// The point of the reactor rewrite, end to end: a long-poll Fetch parked on
// an empty partition does not block a Produce pipelined behind it on the
// same connection — the Produce completes first (out of order, by
// correlation id) and its append then wakes the parked Fetch.
TEST(Reactor, ParkedFetchDoesNotBlockPipelinedProduce) {
  TestServer ts;
  ASSERT_TRUE(ts.broker.CreateTopic("t", {.partitions = 1}).ok());

  RawClient client(ts.server.port());
  ASSERT_EQ(client.Hello(kProtocolVersion), kProtocolVersion);

  const std::uint64_t fetch_id = 7;
  const std::uint64_t produce_id = 9;
  ASSERT_TRUE(
      client.Send(ApiKey::kFetch, FetchBody("t", 0, 2'000'000), &fetch_id)
          .ok());
  ASSERT_TRUE(
      client.Send(ApiKey::kProduce, ProduceBody("t", "k", "v"), &produce_id)
          .ok());

  // The produce response overtakes the parked fetch.
  std::string body;
  std::optional<std::uint64_t> correlation;
  ASSERT_TRUE(client.Recv(&body, &correlation, After(5s)).ok());
  ASSERT_EQ(correlation, produce_id);
  ProduceResponse produced;
  ASSERT_TRUE(DecodeProduceResponse(body, &produced).ok());
  EXPECT_EQ(produced.offset, 0);

  // The append wakes the parked fetch, which completes with the record.
  ASSERT_TRUE(client.Recv(&body, &correlation, After(5s)).ok());
  ASSERT_EQ(correlation, fetch_id);
  FetchResponse fetched;
  ASSERT_TRUE(DecodeFetchResponse(body, &fetched).ok());
  ASSERT_EQ(fetched.entries.size(), 1u);
  ASSERT_EQ(fetched.entries[0].records.size(), 1u);
  EXPECT_EQ(fetched.entries[0].records[0].value, "v");
}

// Uncorrelated (v1/v2) pipelined requests keep strict request-order
// responses even when an earlier one parks: the pipelined produce's
// response queues behind the fetch's slot until the fetch completes.
TEST(Reactor, UncorrelatedResponsesStayInRequestOrder) {
  TestServer ts;
  ASSERT_TRUE(ts.broker.CreateTopic("t", {.partitions = 1}).ok());

  RawClient client(ts.server.port());
  ASSERT_TRUE(
      client.Send(ApiKey::kFetch, FetchBody("t", 0, 2'000'000)).ok());
  ASSERT_TRUE(client.Send(ApiKey::kProduce, ProduceBody("t", "k", "v")).ok());

  std::string body;
  std::optional<std::uint64_t> correlation;
  ASSERT_TRUE(client.Recv(&body, &correlation, After(5s)).ok());
  EXPECT_FALSE(correlation.has_value());
  FetchResponse fetched;  // first response answers the first request
  ASSERT_TRUE(DecodeFetchResponse(body, &fetched).ok());
  ASSERT_FALSE(fetched.empty());

  ASSERT_TRUE(client.Recv(&body, &correlation, After(5s)).ok());
  ProduceResponse produced;
  ASSERT_TRUE(DecodeProduceResponse(body, &produced).ok());
  EXPECT_EQ(produced.offset, 0);
}

// Acceptance: a v1 client (no Hello, plain frames) still interoperates.
TEST(Reactor, V1ClientWithoutHelloInterops) {
  TestServer ts;
  RawClient client(ts.server.port());

  CreateTopicRequest create;
  create.topic = "t";
  create.config = {.partitions = 1};
  std::string body;
  EncodeCreateTopic(create, &body);
  std::string resp;
  ASSERT_TRUE(client.Call(ApiKey::kCreateTopic, body, &resp).ok());
  ASSERT_TRUE(
      client.Call(ApiKey::kProduce, ProduceBody("t", "k", "v1"), &resp).ok());
  ASSERT_TRUE(client.Call(ApiKey::kFetch, FetchBody("t", 0, 0), &resp).ok());
  FetchResponse fetched;
  ASSERT_TRUE(DecodeFetchResponse(resp, &fetched).ok());
  ASSERT_EQ(fetched.entries.size(), 1u);
  ASSERT_EQ(fetched.entries[0].records.size(), 1u);
  EXPECT_EQ(fetched.entries[0].records[0].value, "v1");
}

// Regression (thread-per-connection bug): ReapFinishedLocked joined handler
// threads while holding the accept-path mutex, so one parked long-poll
// could stall every new connection. With the reactor, fresh connections
// must connect and round-trip promptly while a long-poll sits parked.
TEST(Reactor, AcceptAndDispatchNotStalledBehindParkedLongPoll) {
  TestServer ts;
  ASSERT_TRUE(ts.broker.CreateTopic("t", {.partitions = 1}).ok());

  RawClient parked(ts.server.port());
  ASSERT_TRUE(
      parked.Send(ApiKey::kFetch, FetchBody("t", 0, 3'000'000)).ok());
  // Give the server a beat to actually park the fetch.
  std::this_thread::sleep_for(50ms);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 16; ++i) {
    RawClient fresh(ts.server.port());
    std::string resp;
    // Produce on a missing topic: a cheap full round trip through accept,
    // dispatch, and response writing.
    ASSERT_TRUE(
        fresh.Call(ApiKey::kProduce, ProduceBody("missing", "k", "v"), &resp)
            .IsNotFound());
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Far below the 3s long-poll budget the parked fetch is sitting out.
  EXPECT_LT(elapsed, 2s);

  // The parked fetch still completes once its topic gets data.
  ASSERT_TRUE(ts.broker.Produce("t", MakeRecord("k", "woken")).ok());
  std::string body;
  std::optional<std::uint64_t> correlation;
  ASSERT_TRUE(parked.Recv(&body, &correlation, After(5s)).ok());
  FetchResponse fetched;
  ASSERT_TRUE(DecodeFetchResponse(body, &fetched).ok());
  ASSERT_FALSE(fetched.empty());
  EXPECT_EQ(fetched.entries[0].records[0].value, "woken");
}

// Regression (long-poll offset-healing bug): HandleFetch used to wait on
// the client's raw offsets while fetch_once healed below-retention offsets
// upward, so a stale offset made "data available" permanently true and the
// long-poll spun instead of parking. The reactor parks on healed offsets:
// a below-retention fetch returns the surviving records immediately, a
// caught-up fetch parks and is woken a bounded number of times.
TEST(Reactor, ParkedFetchWaitsOnHealedOffsets) {
  obs::MetricsRegistry metrics;
  BrokerServerOptions options;
  options.metrics = &metrics;
  TestServer ts(options);
  ASSERT_TRUE(
      ts.broker
          .CreateTopic("t", {.partitions = 1, .retention_records = 4})
          .ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ts.broker.Produce("t", MakeRecord("", "v")).ok());
  }
  // Retention trimmed offsets [0, 4); a stale offset 0 heals upward and
  // returns the surviving records without parking.
  RawClient client(ts.server.port());
  std::string resp;
  ASSERT_TRUE(
      client.Call(ApiKey::kFetch, FetchBody("t", 0, 2'000'000), &resp).ok());
  FetchResponse fetched;
  ASSERT_TRUE(DecodeFetchResponse(resp, &fetched).ok());
  ASSERT_EQ(fetched.entries.size(), 1u);
  ASSERT_EQ(fetched.entries[0].records.size(), 4u);
  EXPECT_EQ(fetched.entries[0].records[0].offset, 4);
  EXPECT_EQ(fetched.entries[0].next_offset, 8);

  // Caught up now: the next long-poll parks (no data) and completes on the
  // producing append.
  ASSERT_TRUE(
      client.Send(ApiKey::kFetch, FetchBody("t", 8, 3'000'000)).ok());
  std::this_thread::sleep_for(50ms);
  ASSERT_TRUE(ts.broker.Produce("t", MakeRecord("", "fresh")).ok());
  std::optional<std::uint64_t> correlation;
  ASSERT_TRUE(client.Recv(&resp, &correlation, After(5s)).ok());
  ASSERT_TRUE(DecodeFetchResponse(resp, &fetched).ok());
  ASSERT_FALSE(fetched.empty());
  EXPECT_EQ(fetched.entries[0].records[0].value, "fresh");

  // A spinning long-poll would re-wake continuously for its whole budget;
  // a parked one is woken once per append (plus scheduling slack).
  const auto wakeups = metrics.Snapshot().Value("net.server.fetch_wakeups");
  ASSERT_TRUE(wakeups.has_value());
  EXPECT_LE(*wakeups, 8.0);
}

// A connection severed for a corrupt request body mid-pipeline still
// answers what it can: the corrupt request gets its error response and the
// previously parked fetch is completed with current data before the server
// drops the connection.
TEST(Reactor, SeveredConnectionCompletesParkedFetches) {
  TestServer ts;
  ASSERT_TRUE(ts.broker.CreateTopic("t", {.partitions = 1}).ok());

  RawClient client(ts.server.port());
  ASSERT_EQ(client.Hello(kProtocolVersion), kProtocolVersion);

  const std::uint64_t fetch_id = 1;
  const std::uint64_t bad_id = 2;
  ASSERT_TRUE(
      client.Send(ApiKey::kFetch, FetchBody("t", 0, 5'000'000), &fetch_id)
          .ok());
  std::this_thread::sleep_for(50ms);
  ASSERT_TRUE(client.Send(ApiKey::kProduce, "garbage", &bad_id).ok());

  bool saw_fetch = false;
  bool saw_error = false;
  for (int i = 0; i < 2; ++i) {
    std::string body;
    std::optional<std::uint64_t> correlation;
    Status s = client.Recv(&body, &correlation, After(5s));
    ASSERT_TRUE(correlation.has_value());
    if (*correlation == fetch_id) {
      ASSERT_TRUE(s.ok());
      saw_fetch = true;  // completed early (empty) instead of waiting 5s
    } else {
      ASSERT_EQ(*correlation, bad_id);
      EXPECT_TRUE(s.IsCorruption());
      saw_error = true;
    }
  }
  EXPECT_TRUE(saw_fetch);
  EXPECT_TRUE(saw_error);

  // ... and then the connection is gone.
  std::string body;
  std::optional<std::uint64_t> correlation;
  Status read = client.Recv(&body, &correlation, After(5s));
  EXPECT_FALSE(read.ok());
  EXPECT_FALSE(read.IsTimeout());
}

// Stop() while clients are mid-connect and mid-long-poll: no hangs, no
// crashes, and parked clients fail fast instead of waiting out budgets.
TEST(Reactor, StopDuringAcceptAndParkedFetchChurn) {
  auto ts = std::make_unique<TestServer>();
  ASSERT_TRUE(ts->broker.CreateTopic("t", {.partitions = 2}).ok());
  const std::uint16_t port = ts->server.port();

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      while (!done.load(std::memory_order_relaxed)) {
        auto socket = Socket::Connect("127.0.0.1", port, After(200ms));
        if (!socket.ok()) continue;
        std::string payload;
        EncodeRequest(ApiKey::kFetch, FetchBody("t", 0, 2'000'000), &payload);
        if (i % 2 == 0) {
          // Half the clients long-poll; Stop() must sever them promptly.
          if (!WriteFrame(&*socket, payload, After(200ms)).ok()) continue;
          std::string response;
          (void)ReadFrame(&*socket, &response, After(3s));
        }
        // The rest connect and drop immediately (churn during accept).
      }
    });
  }

  std::this_thread::sleep_for(100ms);
  const auto stop_start = std::chrono::steady_clock::now();
  ts->server.Stop();
  // Stop must not wait out the 2s long-poll budgets of parked fetches.
  EXPECT_LT(std::chrono::steady_clock::now() - stop_start, 1500ms);
  done.store(true);
  for (auto& t : threads) t.join();
  ts.reset();
}

// 500 connections churned through the server from 8 threads, each doing a
// full produce + fetch round trip. Runs under TSan via the tsan_smoke
// label, which is what makes the reactor's cross-thread choreography
// (accept -> adoption post -> loop-pinned I/O -> shard waiter wake-ups)
// race-checked rather than just exercised.
TEST(Reactor, ConnectionChurnRoundTrips) {
  BrokerServerOptions options;
  options.event_loop_workers = 4;
  TestServer ts(options);
  ASSERT_TRUE(ts.broker.CreateTopic("t", {.partitions = 4}).ok());

  constexpr int kThreads = 8;
  constexpr int kConnsPerThread = 63;  // ~500 total
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kConnsPerThread; ++i) {
        RawClient client(ts.server.port());
        std::string resp;
        const std::string key = std::to_string(t * kConnsPerThread + i);
        if (!client.Call(ApiKey::kProduce, ProduceBody("t", key, "v"), &resp)
                 .ok()) {
          failures.fetch_add(1);
          continue;
        }
        ProduceResponse produced;
        if (!DecodeProduceResponse(resp, &produced).ok() ||
            !client
                 .Call(ApiKey::kFetch,
                       FetchBody("t", 0, 0),  // partition 0 snapshot
                       &resp)
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto produced = ts.broker.GetLog("t", 0);
  ASSERT_TRUE(produced.ok());
}

// --- Client backoff (decorrelated jitter + cancellation) --------------------

// Regression: the retry backoff used to be a non-abortable sleep_for, so a
// closing client sat out the full backoff before noticing. Cancel() must
// abort the sleep promptly and fail subsequent calls fast.
TEST(ClientBackoff, CancelAbortsRetrySleepPromptly) {
  // A port with no listener: every attempt fails and backs off.
  auto listener = ListenSocket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t dead_port = listener->port();
  listener->Close();

  RemoteOptions options;
  options.host = "127.0.0.1";
  options.port = dead_port;
  options.connect_timeout = 100ms;
  options.max_retries = 50;
  options.backoff_initial = 300ms;
  options.backoff_max = 2s;
  ClientConnection connection(options);

  std::string body;
  EncodeMetadataRequest({}, &body);
  Status call_status = Status::Ok();
  const auto start = std::chrono::steady_clock::now();
  std::thread caller([&] {
    std::string resp;
    call_status = connection.Call(ApiKey::kMetadata, body, &resp);
  });
  std::this_thread::sleep_for(150ms);
  connection.Cancel();
  caller.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Without cancellation, 50 retries at >= 300ms each would take >= 15s.
  EXPECT_LT(elapsed, 5s);
  EXPECT_FALSE(call_status.ok());

  // Subsequent calls fail fast without touching the network.
  const auto again = std::chrono::steady_clock::now();
  std::string resp;
  EXPECT_TRUE(connection.Call(ApiKey::kMetadata, body, &resp).IsClosed());
  EXPECT_LT(std::chrono::steady_clock::now() - again, 1s);
}

// The decorrelated-jitter backoff stays within [backoff_initial,
// backoff_max] per sleep: a capped retry budget completes within the
// worst-case sum (and the call still fails cleanly).
TEST(ClientBackoff, RetryBudgetIsBoundedByBackoffMax) {
  auto listener = ListenSocket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t dead_port = listener->port();
  listener->Close();

  RemoteOptions options;
  options.host = "127.0.0.1";
  options.port = dead_port;
  options.connect_timeout = 100ms;
  options.max_retries = 4;
  options.backoff_initial = 1ms;
  options.backoff_max = 50ms;
  ClientConnection connection(options);

  std::string body;
  EncodeMetadataRequest({}, &body);
  std::string resp;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(connection.Call(ApiKey::kMetadata, body, &resp).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // 4 sleeps capped at 50ms plus 5 fast connect failures, with slack.
  EXPECT_LT(elapsed, 2s);
}

}  // namespace
}  // namespace strata::net
