// Chaos tests: a failing admin endpoint must never stall or crash the data
// plane it observes. Armed failpoints make the admin server refuse accepts
// and drop responses mid-exchange while a real pipeline runs to completion
// underneath.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>

#include "fault/failpoint.hpp"
#include "net/admin.hpp"
#include "strata/strata.hpp"

namespace strata::net {
namespace {

constexpr auto kShortDeadline = std::chrono::seconds(2);

class AdminFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DeactivateAll(); }
};

spe::SourceFn FiniteSource(int total) {
  auto next = std::make_shared<int>(0);
  return [total, next]() -> std::optional<spe::Tuple> {
    if (*next >= total) return std::nullopt;
    spe::Tuple t;
    t.layer = (*next)++;
    t.job = 1;
    t.payload.Set("v", t.layer);
    return t;
  };
}

/// Best-effort scrape; returns whatever bytes arrived before the server
/// closed (possibly nothing, when a failpoint killed the exchange).
std::string TryGet(const std::string& host, std::uint16_t port,
                   const std::string& path) {
  auto socket = Socket::Connect(host, port, After(kShortDeadline));
  if (!socket.ok()) return {};
  if (!socket
           ->WriteAll("GET " + path + " HTTP/1.0\r\n\r\n",
                      After(kShortDeadline))
           .ok()) {
    return {};
  }
  std::string response;
  char c = 0;
  while (socket->ReadFully(&c, 1, After(kShortDeadline)).ok()) {
    response.push_back(c);
  }
  return response;
}

TEST_F(AdminFaultTest, RefusedAcceptsNeverStallThePipeline) {
  fault::Activate("net.admin.accept", {fault::ActionKind::kError});

  core::StrataOptions options;
  options.admin_addr = "127.0.0.1:0";
  core::Strata strata(options);
  ASSERT_FALSE(strata.admin_addr().empty());
  const std::string addr = strata.admin_addr();
  const std::uint16_t port =
      static_cast<std::uint16_t>(std::stoi(addr.substr(addr.rfind(':') + 1)));

  auto stream = strata.AddSource("chaos.src", FiniteSource(200));
  std::atomic<int> delivered{0};
  strata.Deliver("chaos.sink", stream,
                 [&](const spe::Tuple&) { ++delivered; });
  strata.Deploy();

  // Hammer the dying endpoint while the pipeline runs: every accept is
  // refused, so scrapes see connection resets or empty responses.
  for (int i = 0; i < 10; ++i) {
    TryGet("127.0.0.1", port, "/metrics");
  }

  strata.WaitForCompletion();
  strata.Shutdown();
  EXPECT_EQ(delivered.load(), 200);
}

TEST_F(AdminFaultTest, DroppedResponsesNeverStallThePipeline) {
  // Every second response write is dropped after the request was read.
  fault::Activate("net.admin.write",
                  {fault::ActionKind::kDisconnect, 0, 0.5});
  fault::SeedRng(7);

  core::StrataOptions options;
  options.admin_addr = "127.0.0.1:0";
  core::Strata strata(options);
  ASSERT_FALSE(strata.admin_addr().empty());
  const std::string addr = strata.admin_addr();
  const std::uint16_t port =
      static_cast<std::uint16_t>(std::stoi(addr.substr(addr.rfind(':') + 1)));

  auto stream = strata.AddSource("chaos2.src", FiniteSource(200));
  std::atomic<int> delivered{0};
  strata.Deliver("chaos2.sink", stream,
                 [&](const spe::Tuple&) { ++delivered; });
  strata.Deploy();

  // Some scrapes die mid-exchange, some get through — the exact split is
  // the failpoint's business. The pipeline must not care either way.
  for (int i = 0; i < 12; ++i) {
    TryGet("127.0.0.1", port, "/healthz");
  }
  EXPECT_GT(fault::TriggerCount("net.admin.write"), 0u);

  strata.WaitForCompletion();
  strata.Shutdown();
  EXPECT_EQ(delivered.load(), 200);
}

TEST_F(AdminFaultTest, AdminDeathIsInvisibleToHealth) {
  fault::Activate("net.admin.accept", {fault::ActionKind::kError});
  core::StrataOptions options;
  options.admin_addr = "127.0.0.1:0";
  core::Strata strata(options);
  // The substrates are healthy regardless of what the admin plane does.
  EXPECT_TRUE(strata.Health().ok());
  strata.Shutdown();
}

}  // namespace
}  // namespace strata::net
