#include "net/admin.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace strata::net {
namespace {

constexpr auto kTestDeadline = std::chrono::seconds(5);

/// One raw HTTP exchange against the admin endpoint: connect, send
/// `request` verbatim, read until the server closes (HTTP/1.0 style).
std::string Exchange(const AdminServer& server, const std::string& request) {
  auto socket =
      Socket::Connect(server.host(), server.port(), After(kTestDeadline));
  socket.status().OrDie();
  socket->WriteAll(request, After(kTestDeadline)).OrDie();
  std::string response;
  char buf[1024];
  // ReadFully returns Unavailable on orderly close; accumulate byte-wise
  // chunks until then.
  while (true) {
    Status read = socket->ReadFully(buf, 1, After(kTestDeadline));
    if (!read.ok()) break;
    response.push_back(buf[0]);
  }
  return response;
}

std::string Get(const AdminServer& server, const std::string& path) {
  return Exchange(server, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(AdminServerTest, ServesRegisteredRoute) {
  AdminServer server;
  server.Route("/metrics", [](std::string_view) {
    return AdminServer::Response{200, "text/plain; version=0.0.4",
                                 "up 1\n"};
  });
  ASSERT_TRUE(server.Start().ok());

  const std::string response = Get(server, "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nup 1\n"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, QueryStringReachesHandler) {
  AdminServer server;
  server.Route("/tracez", [](std::string_view query) {
    return AdminServer::Response{200, "text/plain",
                                 "query=[" + std::string(query) + "]"};
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(Get(server, "/tracez?chrome=1").find("query=[chrome=1]"),
            std::string::npos);
  EXPECT_NE(Get(server, "/tracez").find("query=[]"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, UnknownPathIs404ListingRoutes) {
  AdminServer server;
  server.Route("/healthz", [](std::string_view) {
    return AdminServer::Response{};
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server, "/nope");
  EXPECT_NE(response.find("HTTP/1.0 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(response.find("/healthz"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, NonGetMethodRejected) {
  AdminServer server;
  server.Route("/metrics", [](std::string_view) {
    return AdminServer::Response{};
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      Exchange(server, "POST /metrics HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 405 Method Not Allowed\r\n"),
            std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, GarbageRequestGets400NotACrash) {
  AdminServer server;
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Exchange(server, "no spaces here\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 400 Bad Request\r\n"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, OversizedHeadIsRejected) {
  AdminServer server;
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      Exchange(server, "GET /" + std::string(10'000, 'a') + " HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 400 Bad Request\r\n"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, HandlerExceptionBecomes500) {
  AdminServer server;
  server.Route("/boom", [](std::string_view) -> AdminServer::Response {
    throw std::runtime_error("handler exploded");
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server, "/boom");
  EXPECT_NE(response.find("HTTP/1.0 500 Internal Server Error\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("handler exploded"), std::string::npos);
  server.Stop();
}

TEST(AdminServerTest, ConcurrentScrapesAllSucceed) {
  obs::MetricsRegistry registry;
  AdminOptions options;
  options.metrics = &registry;
  AdminServer server(options);
  server.Route("/metrics", [](std::string_view) {
    return AdminServer::Response{200, "text/plain", "metric_total 1\n"};
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [&, i] { responses[i] = Get(server, "/metrics"); });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("metric_total 1"), std::string::npos);
  }
  const auto requests = registry.Snapshot().Value(
      "net.admin.requests", {{"path", "/metrics"}});
  ASSERT_TRUE(requests.has_value());
  EXPECT_EQ(*requests, static_cast<double>(kClients));
  server.Stop();
}

TEST(AdminServerTest, StopWithClientMidRequestDoesNotHang) {
  AdminServer server;
  ASSERT_TRUE(server.Start().ok());
  // Connect and send half a request, then stop the server under it.
  auto socket =
      Socket::Connect(server.host(), server.port(), After(kTestDeadline));
  socket.status().OrDie();
  socket->WriteAll("GET /metr", After(kTestDeadline)).OrDie();
  server.Stop();  // must join the handler despite the unfinished request
  server.Stop();  // idempotent
}

}  // namespace
}  // namespace strata::net
