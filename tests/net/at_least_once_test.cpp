// The remote produce path is at-least-once: when the server dies after
// applying a produce but before acking, the client's retry duplicates the
// record. This test forces that exact window with the net.server.dispatch
// failpoint and demonstrates the documented duplicate (chaos label).
#include <gtest/gtest.h>

#include <chrono>

#include "fault/failpoint.hpp"
#include "net/remote.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "pubsub/broker.hpp"

namespace strata::net {
namespace {

using namespace std::chrono_literals;

class AtLeastOnceTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DeactivateAll(); }
};

TEST_F(AtLeastOnceTest, RetryAfterDroppedAckDuplicatesRecord) {
  ps::Broker broker;
  BrokerServer server(&broker);
  server.Start().OrDie();

  obs::MetricsRegistry registry;
  RemoteOptions remote;
  remote.host = "127.0.0.1";
  remote.port = server.port();
  remote.max_retries = 3;
  remote.backoff_initial = 5ms;
  remote.metrics = &registry;
  RemoteBroker client(remote);
  // Create the topic and prime the producer's own connection before arming:
  // the first Send would otherwise connect and negotiate (Hello), and the
  // failpoint's single hit must land on the produce, not the handshake.
  ASSERT_TRUE(client.CreateTopic("events", {.partitions = 1}).ok());
  auto producer = client.NewProducer();
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE((*producer)->Send("events", "k", "prime", 1).ok());

  // Sever the connection after the next request is applied, before its
  // response is written — the crash window that makes produce at-least-once.
  fault::Activate("net.server.dispatch",
                  fault::Action{fault::ActionKind::kDisconnect, 0, 1.0, 1});

  auto sent = (*producer)->Send("events", "k", "once?", 1);
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();

  // The client saw one successful Send; the broker holds the record twice.
  auto log = broker.GetLog("events", 0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->EndOffset(), 3);
  std::vector<ps::Record> records;
  std::int64_t next = 0;
  ASSERT_TRUE((*log)->ReadFrom(0, 10, &records, &next).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].value, "once?");
  EXPECT_EQ(records[2].value, "once?");

  // The retry is observable: net.client.retries counted at least one.
  bool counted = false;
  for (const auto& sample : registry.Snapshot().samples) {
    if (sample.name == "net.client.retries" && sample.value >= 1) {
      counted = true;
    }
  }
  EXPECT_TRUE(counted);

  server.Stop();
}

TEST_F(AtLeastOnceTest, ErrorResponsesAreNeverRetried) {
  // Application errors ride a successful transport exchange; retrying them
  // would be wrong (and would mask bugs). Produce to a missing topic: one
  // clean NotFound, no duplicates possible, no retries consumed.
  ps::Broker broker;
  BrokerServer server(&broker);
  server.Start().OrDie();

  obs::MetricsRegistry registry;
  RemoteOptions remote;
  remote.host = "127.0.0.1";
  remote.port = server.port();
  remote.max_retries = 3;
  remote.backoff_initial = 5ms;
  remote.metrics = &registry;
  RemoteBroker client(remote);
  auto producer = client.NewProducer();
  ASSERT_TRUE(producer.ok());

  auto sent = (*producer)->Send("missing", "k", "v", 1);
  ASSERT_FALSE(sent.ok());
  for (const auto& sample : registry.Snapshot().samples) {
    if (sample.name == "net.client.retries") {
      EXPECT_EQ(sample.value, 0) << "app error must not be retried";
    }
  }

  server.Stop();
}

}  // namespace
}  // namespace strata::net
