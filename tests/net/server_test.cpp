#include "net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/frame.hpp"
#include "net/remote.hpp"
#include "pubsub/broker.hpp"

namespace strata::net {
namespace {

using namespace std::chrono_literals;

/// Broker + running server on an ephemeral loopback port.
struct TestServer {
  TestServer() : server(&broker) { server.Start().OrDie(); }
  ~TestServer() { server.Stop(); }

  [[nodiscard]] RemoteOptions Remote() const {
    RemoteOptions opts;
    opts.host = "127.0.0.1";
    opts.port = server.port();
    opts.max_retries = 2;
    opts.backoff_initial = 5ms;
    return opts;
  }

  ps::Broker broker;
  BrokerServer server;
};

TEST(BrokerServer, StartStopIsIdempotent) {
  ps::Broker broker;
  BrokerServer server(&broker);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  server.Stop();
}

TEST(BrokerServer, ProduceAndFetchRoundTrip) {
  TestServer ts;
  RemoteBroker broker(ts.Remote());
  ASSERT_TRUE(broker.CreateTopic("events", {.partitions = 2}).ok());

  auto producer = broker.NewProducer();
  ASSERT_TRUE(producer.ok());
  for (int i = 0; i < 20; ++i) {
    auto sent = (*producer)->Send("events", "key" + std::to_string(i),
                                  "value" + std::to_string(i), i);
    ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  }

  auto consumer = broker.NewConsumer("events", {.group = "readers"});
  ASSERT_TRUE(consumer.ok()) << consumer.status().ToString();
  std::vector<ps::ConsumedRecord> records;
  while (records.size() < 20) {
    auto batch = (*consumer)->Poll(2s);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    records.insert(records.end(), batch->begin(), batch->end());
  }
  EXPECT_EQ(records.size(), 20u);
  bool found = false;
  for (const auto& r : records) {
    if (r.key == "key7") {
      EXPECT_EQ(r.value, "value7");
      EXPECT_EQ(r.timestamp, 7);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BrokerServer, MetadataListsTopicsAndOffsets) {
  TestServer ts;
  ts.broker.CreateTopic("a", {.partitions = 1}).OrDie();
  ts.broker.CreateTopic("b", {.partitions = 3}).OrDie();
  (void)ts.broker.Produce("a", {.key = "", .value = "x", .timestamp = 0});

  RemoteBroker remote(ts.Remote());
  auto all = remote.Metadata("");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->topics.size(), 2u);

  auto one = remote.Metadata("b");
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->topics.size(), 1u);
  EXPECT_EQ(one->topics[0].topic, "b");
  EXPECT_EQ(one->topics[0].partitions.size(), 3u);

  auto a = remote.Metadata("a");
  ASSERT_TRUE(a.ok());
  std::int64_t total = 0;
  for (const auto& [start, end] : a->topics[0].partitions) total += end - start;
  EXPECT_EQ(total, 1);

  EXPECT_TRUE(remote.Metadata("missing").status().IsNotFound());
}

TEST(BrokerServer, ApplicationErrorsAreNotRetried) {
  TestServer ts;
  RemoteProducer producer(ts.Remote());
  auto sent = producer.Send("no-such-topic", "k", "v", 0);
  ASSERT_FALSE(sent.ok());
  EXPECT_TRUE(sent.status().IsNotFound()) << sent.status().ToString();
  // The message marks the error as server-side, not transport.
  EXPECT_EQ(sent.status().message().rfind("server: ", 0), 0u)
      << sent.status().message();
}

TEST(BrokerServer, LongPollWakesOnProduce) {
  TestServer ts;
  ts.broker.CreateTopic("wake", {.partitions = 1}).OrDie();

  auto consumer = RemoteConsumer::Create(ts.Remote(), "wake");
  ASSERT_TRUE(consumer.ok());

  std::thread producer([&] {
    std::this_thread::sleep_for(100ms);
    ASSERT_TRUE(
        ts.broker.Produce("wake", {.key = "", .value = "ping", .timestamp = 0})
            .ok());
  });

  const auto start = std::chrono::steady_clock::now();
  auto batch = (*consumer)->Poll(5s);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  producer.join();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].value, "ping");
  // Long poll returned on the data signal, well before the 5s budget.
  EXPECT_LT(elapsed, 3s);
}

TEST(BrokerServer, PollTimesOutCleanlyWhenIdle) {
  TestServer ts;
  ts.broker.CreateTopic("idle", {.partitions = 1}).OrDie();
  auto consumer = RemoteConsumer::Create(ts.Remote(), "idle");
  ASSERT_TRUE(consumer.ok());

  auto batch = (*consumer)->Poll(100ms);
  EXPECT_TRUE(batch.status().IsTimeout()) << batch.status().ToString();

  // Zero-timeout probe: empty Ok batch, same as the embedded consumer.
  auto probe = (*consumer)->Poll(0us);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_TRUE(probe->empty());
}

TEST(BrokerServer, StopMidLongPollFailsFast) {
  TestServer ts;
  ts.broker.CreateTopic("stall", {.partitions = 1}).OrDie();
  RemoteOptions opts = ts.Remote();
  opts.max_retries = 1;
  auto consumer = RemoteConsumer::Create(opts, "stall");
  ASSERT_TRUE(consumer.ok());

  std::thread stopper([&] {
    std::this_thread::sleep_for(100ms);
    ts.server.Stop();
  });
  const auto start = std::chrono::steady_clock::now();
  auto batch = (*consumer)->Poll(30s);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stopper.join();
  EXPECT_FALSE(batch.ok());
  EXPECT_FALSE(batch.status().IsTimeout()) << batch.status().ToString();
  // The poll must not ride out its 30s budget against a dead server.
  EXPECT_LT(elapsed, 10s);
}

TEST(BrokerServer, ClientReconnectsAfterServerRestart) {
  ps::Broker broker;
  broker.CreateTopic("durable", {.partitions = 1}).OrDie();
  auto server = std::make_unique<BrokerServer>(&broker);
  ASSERT_TRUE(server->Start().ok());
  const std::uint16_t port = server->port();

  RemoteOptions opts;
  opts.port = port;
  opts.max_retries = 6;
  opts.backoff_initial = 5ms;
  RemoteProducer producer(opts);
  ASSERT_TRUE(producer.Send("durable", "k", "before", 0).ok());

  // Bounce the server; the broker (and its data) stays up.
  server->Stop();
  server.reset();
  BrokerServerOptions bind_same;
  bind_same.port = port;
  BrokerServer replacement(&broker, bind_same);
  ASSERT_TRUE(replacement.Start().ok());

  // The producer's socket is stale; Send must reconnect and succeed.
  auto sent = producer.Send("durable", "k", "after", 1);
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  EXPECT_EQ(sent->second, 1);  // second record in the same partition log
  replacement.Stop();
}

TEST(BrokerServer, ConnectionRefusedSurfacesAsCleanError) {
  ps::Broker broker;
  BrokerServer server(&broker);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  server.Stop();  // port is now closed

  RemoteOptions opts;
  opts.port = port;
  opts.max_retries = 1;
  opts.backoff_initial = 1ms;
  RemoteProducer producer(opts);
  auto sent = producer.Send("t", "k", "v", 0);
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.status().code(), StatusCode::kUnavailable)
      << sent.status().ToString();
}

TEST(BrokerServer, CommittedOffsetsResumeAcrossConsumers) {
  TestServer ts;
  ts.broker.CreateTopic("resume", {.partitions = 1}).OrDie();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ts.broker
                    .Produce("resume", {.key = "k",
                                        .value = std::to_string(i),
                                        .timestamp = i})
                    .ok());
  }

  ps::ConsumerOptions copts;
  copts.group = "g";
  copts.auto_commit = false;
  copts.max_poll_records = 4;
  {
    auto first = RemoteConsumer::Create(ts.Remote(), "resume", copts);
    ASSERT_TRUE(first.ok());
    auto batch = (*first)->Poll(2s);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), 4u);
    ASSERT_TRUE((*first)->Commit().ok());
    // Destroyed without committing anything further: offsets 4.. stay owed.
  }

  auto second = RemoteConsumer::Create(ts.Remote(), "resume", copts);
  ASSERT_TRUE(second.ok());
  auto batch = (*second)->Poll(2s);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->empty());
  EXPECT_EQ((*batch)[0].offset, 4) << "must resume at the committed offset";
  EXPECT_EQ((*batch)[0].value, "4");
}

TEST(BrokerServer, LatestResetSkipsBacklogOverTheWire) {
  TestServer ts;
  ts.broker.CreateTopic("tail", {.partitions = 1}).OrDie();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        ts.broker.Produce("tail", {.key = "", .value = "old", .timestamp = 0})
            .ok());
  }
  ps::ConsumerOptions copts;
  copts.group = "tailer";
  copts.reset = ps::ConsumerOptions::AutoOffsetReset::kLatest;
  auto consumer = RemoteConsumer::Create(ts.Remote(), "tail", copts);
  ASSERT_TRUE(consumer.ok());

  EXPECT_TRUE((*consumer)->Poll(50ms).status().IsTimeout());
  ASSERT_TRUE(
      ts.broker.Produce("tail", {.key = "", .value = "new", .timestamp = 1})
          .ok());
  auto batch = (*consumer)->Poll(2s);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].value, "new");
}

TEST(BrokerServer, DroppedConnectionTriggersRebalance) {
  TestServer ts;
  ts.broker.CreateTopic("shared", {.partitions = 2}).OrDie();

  ps::ConsumerOptions copts;
  copts.group = "g";
  auto survivor = RemoteConsumer::Create(ts.Remote(), "shared", copts);
  ASSERT_TRUE(survivor.ok());
  (void)(*survivor)->Poll(0us);  // refresh assignment
  ASSERT_EQ((*survivor)->assignment().size(), 2u);

  // A second member joins through a raw connection, then drops it without
  // LeaveGroup — as a crashed process would.
  {
    ClientConnection raw(ts.Remote());
    GroupRequest join;
    join.group = "g";
    join.topic = "shared";
    std::string body, response;
    EncodeGroupRequest(join, &body);
    ASSERT_TRUE(raw.Call(ApiKey::kJoinGroup, body, &response).ok());
    JoinGroupResponse joined;
    ASSERT_TRUE(DecodeJoinGroupResponse(response, &joined).ok());
    EXPECT_GT(joined.member, 0u);

    // The survivor's next heartbeat sees half the partitions.
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while ((*survivor)->assignment().size() != 1u &&
           std::chrono::steady_clock::now() < deadline) {
      (void)(*survivor)->Poll(10ms);
    }
    ASSERT_EQ((*survivor)->assignment().size(), 1u);
  }  // connection dropped here; the server must auto-LeaveGroup the member

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while ((*survivor)->assignment().size() != 2u &&
         std::chrono::steady_clock::now() < deadline) {
    (void)(*survivor)->Poll(10ms);
  }
  EXPECT_EQ((*survivor)->assignment().size(), 2u)
      << "partitions of the dropped member were not reassigned";
}

TEST(BrokerServer, CorruptFrameIsAnsweredThenSevered) {
  TestServer ts;
  auto socket = Socket::Connect("127.0.0.1", ts.server.port(), After(5s));
  ASSERT_TRUE(socket.ok());

  // A valid request envelope carrying a garbage Produce body.
  std::string payload;
  EncodeRequest(ApiKey::kProduce, "\x01 not a produce body", &payload);
  ASSERT_TRUE(WriteFrame(&*socket, payload, After(5s)).ok());
  std::string response;
  ASSERT_TRUE(ReadFrame(&*socket, &response, After(5s)).ok());
  std::string_view body;
  EXPECT_TRUE(DecodeResponse(response, &body).IsCorruption());

  // The server severs after answering: the next read sees peer close.
  std::string next;
  Status read = ReadFrame(&*socket, &next, After(5s));
  EXPECT_FALSE(read.ok());
  EXPECT_FALSE(read.IsTimeout()) << read.ToString();
}

TEST(BrokerServer, ServerMetricsAreRecorded) {
  obs::MetricsRegistry registry;
  ps::Broker broker;
  BrokerServerOptions opts;
  opts.metrics = &registry;
  BrokerServer server(&broker, opts);
  ASSERT_TRUE(server.Start().ok());

  RemoteOptions ropts;
  ropts.port = server.port();
  RemoteBroker remote(ropts);
  ASSERT_TRUE(remote.CreateTopic("m", {.partitions = 1}).ok());
  ASSERT_TRUE((*remote.NewProducer())->Send("m", "k", "v", 0).ok());

  auto snapshot = registry.Snapshot();
  EXPECT_GE(snapshot.Value("net.server.requests", {{"api", "create_topic"}})
                .value_or(0),
            1.0);
  EXPECT_GE(
      snapshot.Value("net.server.requests", {{"api", "produce"}}).value_or(0),
      1.0);
  EXPECT_GT(snapshot.Value("net.server.bytes_in").value_or(0), 0.0);
  EXPECT_GT(snapshot.Value("net.server.bytes_out").value_or(0), 0.0);
  server.Stop();
}

}  // namespace
}  // namespace strata::net
