// Protocol-downgrade and failure-surface interop tests:
//
//   * a current (v4) client against brokers pinned to older protocol
//     versions — v2 (pre-correlation) and v3 (pre-replication) — must
//     round-trip cleanly, with the repl-aware knobs (bootstrap routing,
//     acks=quorum) degrading instead of breaking;
//   * pipelined correlated produces across a connection the server severs
//     mid-stream (net.server.dispatch failpoint) must recover with
//     at-least-once semantics and matching correlation ids;
//   * broker disk failures must reach remote producers as *distinct*,
//     non-retried application errors: fail-stop -> StorageFailed (sticky),
//     degrade -> acks keep flowing with the shard flagged in BrokerStats.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/fs.hpp"
#include "fault/failpoint.hpp"
#include "net/frame.hpp"
#include "net/remote.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "pubsub/broker.hpp"

namespace strata::net {
namespace {

using namespace std::chrono_literals;

class InteropTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DeactivateAll(); }
};

TEST_F(InteropTest, V4ClientRoundTripsAgainstV2Server) {
  ps::Broker broker;
  BrokerServerOptions options;
  options.max_protocol_version = 2;  // emulate a pre-correlation build
  BrokerServer server(&broker, options);
  ASSERT_TRUE(server.Start().ok());

  RemoteOptions remote;
  remote.port = server.port();
  RemoteBroker client(remote);
  ASSERT_TRUE(client.CreateTopic("events", {.partitions = 1}).ok());
  auto producer = client.NewProducer();
  ASSERT_TRUE(producer.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        (*producer)->Send("events", "k", "v" + std::to_string(i), 0).ok());
  }
  auto consumer = client.NewConsumer("events", {});
  ASSERT_TRUE(consumer.ok());
  auto records = (*consumer)->Poll(1s);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 5u);

  // The negotiation really clamped: the connection speaks v2, not v4.
  ClientConnection conn(remote);
  std::string response;
  MetadataRequest req;
  req.topic = "events";
  std::string body;
  EncodeMetadataRequest(req, &body);
  ASSERT_TRUE(conn.Call(ApiKey::kMetadata, body, &response).ok());
  EXPECT_EQ(conn.server_version(), 2u);

  server.Stop();
}

TEST_F(InteropTest, ReplAwareClientDegradesAgainstPreReplBroker) {
  ps::Broker broker;
  BrokerServerOptions options;
  options.max_protocol_version = 3;  // pre-repl build: no v4, no repl keys
  BrokerServer server(&broker, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(broker.CreateTopic("events", {.partitions = 1}).ok());

  // Fully repl-configured client: bootstrap list, quorum acks. Against a
  // pre-repl broker the produce body downgrades to the legacy layout
  // (leader acks) and the leader refresh degrades to "stay put".
  RemoteOptions remote;
  remote.bootstrap = {{"127.0.0.1", server.port()}};
  remote.acks = ProduceAcks::kQuorum;
  remote.cluster_refresh_backoff = 10ms;
  RemoteProducer producer(remote);
  for (int i = 0; i < 5; ++i) {
    auto sent = producer.Send("events", "k", "v" + std::to_string(i), 0);
    ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  }
  auto log = broker.GetLog("events", 0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->EndOffset(), 5);

  // The consumer side of the same configuration also just works.
  auto consumer = RemoteConsumer::Create(remote, "events");
  ASSERT_TRUE(consumer.ok());
  auto records = (*consumer)->Poll(1s);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 5u);

  server.Stop();
}

TEST_F(InteropTest, PipelinedProducesSurviveMidStreamDisconnect) {
  ps::Broker broker;
  BrokerServer server(&broker);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(broker.CreateTopic("events", {.partitions = 1}).ok());

  constexpr int kPipelined = 8;
  const auto deadline = After(5s);

  // Raw v4 connection with explicit correlation ids, so requests can be
  // pipelined and responses matched out of band of the client library.
  auto connect = [&]() -> Socket {
    auto socket = Socket::Connect("127.0.0.1", server.port(), After(2s));
    EXPECT_TRUE(socket.ok());
    HelloRequest hello;
    std::string body;
    EncodeHelloRequest(hello, &body);
    std::string payload;
    EncodeRequest(ApiKey::kHello, body, &payload);
    EXPECT_TRUE(WriteFrame(&*socket, payload, deadline).ok());
    std::string response;
    EXPECT_TRUE(ReadFrame(&*socket, &response, deadline).ok());
    std::string_view out;
    EXPECT_TRUE(DecodeResponse(response, &out).ok());
    HelloResponse negotiated;
    EXPECT_TRUE(DecodeHelloResponse(out, &negotiated).ok());
    EXPECT_EQ(negotiated.version, kProtocolVersion);
    return std::move(*socket);
  };

  auto frame_for = [](std::uint64_t correlation, int i) {
    ProduceRequest req;
    req.topic = "events";
    req.record = ps::Record{"k", "v" + std::to_string(i), 0};
    std::string body;
    EncodeProduceRequest(req, &body);
    std::string payload;
    EncodeRequest(ApiKey::kProduce, body, &payload);
    std::string frame;
    EncodeFrameEx(payload, nullptr, &correlation, &frame);
    return frame;
  };

  Socket socket = connect();
  // Sever the connection at the first produce dispatch — after the append
  // is applied, before its response is written (the at-least-once window).
  fault::SeedRng(7);
  fault::Activate("net.server.dispatch",
                  fault::Action{fault::ActionKind::kDisconnect, 0, 1.0, 1});

  std::string burst;
  for (int i = 0; i < kPipelined; ++i) {
    burst += frame_for(static_cast<std::uint64_t>(i) + 1, i);
  }
  ASSERT_TRUE(socket.WriteAll(burst, deadline).ok());

  // The server drops the connection without answering anything.
  std::string response;
  EXPECT_FALSE(ReadFrame(&socket, &response, deadline).ok());

  // A real client re-sends every unacknowledged request on a fresh
  // connection; all of them must be answered with matching correlations.
  socket = connect();
  ASSERT_TRUE(socket.WriteAll(burst, deadline).ok());
  std::set<std::uint64_t> answered;
  for (int i = 0; i < kPipelined; ++i) {
    std::optional<std::uint64_t> correlation;
    ASSERT_TRUE(ReadFrame(&socket, &response, deadline, nullptr, &correlation)
                    .ok());
    std::string_view out;
    ASSERT_TRUE(DecodeResponse(response, &out).ok());
    ASSERT_TRUE(correlation.has_value());
    answered.insert(*correlation);
  }
  EXPECT_EQ(answered.size(), static_cast<std::size_t>(kPipelined));

  // At-least-once: every value present; the one applied before the sever
  // was applied again on the retry, so exactly one duplicate.
  auto log = broker.GetLog("events", 0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->EndOffset(), kPipelined + 1);
  std::vector<ps::Record> stored;
  std::int64_t next = 0;
  ASSERT_TRUE((*log)->ReadFrom(0, 64, &stored, &next).ok());
  std::set<std::string> values;
  for (const ps::Record& record : stored) values.insert(record.value);
  for (int i = 0; i < kPipelined; ++i) {
    EXPECT_TRUE(values.contains("v" + std::to_string(i)));
  }

  server.Stop();
}

TEST_F(InteropTest, FailStopDiskErrorReachesClientAsStorageFailed) {
  strata::fs::ScopedTempDir dir("interop-failstop");
  ps::BrokerOptions broker_options;
  broker_options.data_dir = dir.path();
  broker_options.disk_failure_policy = ps::DiskFailurePolicy::kFailStop;
  ps::Broker broker(broker_options);
  BrokerServer server(&broker);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(broker.CreateTopic("events", {.partitions = 1}).ok());

  obs::MetricsRegistry registry;
  RemoteOptions remote;
  remote.port = server.port();
  remote.metrics = &registry;
  RemoteProducer producer(remote);
  ASSERT_TRUE(producer.Send("events", "k", "healthy", 0).ok());

  fault::Activate("segment.append",
                  fault::Action{fault::ActionKind::kError, 0, 1.0, -1});
  auto sent = producer.Send("events", "k", "doomed", 0);
  ASSERT_FALSE(sent.ok());
  EXPECT_TRUE(sent.status().IsStorageFailed()) << sent.status().ToString();

  // Sticky: the disk error outlives the failpoint, and the distinct error
  // keeps the client from burning retries on a dead partition.
  fault::DeactivateAll();
  auto again = producer.Send("events", "k", "still-doomed", 0);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsStorageFailed()) << again.status().ToString();
  for (const auto& sample : registry.Snapshot().samples) {
    if (sample.name == "net.client.retries") {
      EXPECT_EQ(sample.value, 0) << "storage failure must not be retried";
    }
  }
  auto stats = broker.Stats();
  bool failed_shard = false;
  for (const auto& shard : stats.shards) failed_shard |= shard.fail_stopped;
  EXPECT_TRUE(failed_shard);

  server.Stop();
}

TEST_F(InteropTest, DegradedDiskKeepsAckingAndFlagsTheShard) {
  strata::fs::ScopedTempDir dir("interop-degrade");
  ps::BrokerOptions broker_options;
  broker_options.data_dir = dir.path();
  broker_options.disk_failure_policy = ps::DiskFailurePolicy::kDegrade;
  ps::Broker broker(broker_options);
  BrokerServer server(&broker);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(broker.CreateTopic("events", {.partitions = 1}).ok());

  RemoteOptions remote;
  remote.port = server.port();
  RemoteProducer producer(remote);
  ASSERT_TRUE(producer.Send("events", "k", "on-disk", 0).ok());

  fault::Activate("segment.append",
                  fault::Action{fault::ActionKind::kError, 0, 1.0, -1});
  // kDegrade absorbs the disk failure: produces keep acking from memory.
  auto sent = producer.Send("events", "k", "memory-only", 0);
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  fault::DeactivateAll();

  auto stats = broker.Stats();
  bool degraded_shard = false;
  std::uint64_t disk_errors = 0;
  for (const auto& shard : stats.shards) {
    degraded_shard |= shard.degraded;
    disk_errors += shard.disk_errors;
  }
  EXPECT_TRUE(degraded_shard);
  EXPECT_GE(disk_errors, 1u);
  EXPECT_EQ(stats.shards.size(), 8u);  // default shard count, all reported

  server.Stop();
}

}  // namespace
}  // namespace strata::net
