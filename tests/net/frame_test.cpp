#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/codec.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace strata::net {
namespace {

constexpr auto kTestDeadline = std::chrono::seconds(5);

/// A connected loopback socket pair (client, server side).
struct SocketPair {
  Socket client;
  Socket server;
};

SocketPair MakePair() {
  auto listener = ListenSocket::Listen("127.0.0.1", 0);
  listener.status().OrDie();
  auto client = Socket::Connect("127.0.0.1", listener->port(),
                                After(kTestDeadline));
  client.status().OrDie();
  auto server = listener->Accept(After(kTestDeadline));
  server.status().OrDie();
  return SocketPair{std::move(*client), std::move(*server)};
}

TEST(Frame, RoundTripOverLoopback) {
  SocketPair pair = MakePair();
  std::string payload = "hello broker ? world";
  payload[13] = '\0';  // binary-safe: embedded NUL must survive framing
  ASSERT_TRUE(WriteFrame(&pair.client, payload, After(kTestDeadline)).ok());

  std::string received;
  ASSERT_TRUE(ReadFrame(&pair.server, &received, After(kTestDeadline)).ok());
  EXPECT_EQ(received, payload);
}

TEST(Frame, EmptyPayloadRoundTrips) {
  SocketPair pair = MakePair();
  ASSERT_TRUE(WriteFrame(&pair.client, "", After(kTestDeadline)).ok());
  std::string received = "sentinel";
  ASSERT_TRUE(ReadFrame(&pair.server, &received, After(kTestDeadline)).ok());
  EXPECT_TRUE(received.empty());
}

TEST(Frame, EveryPayloadBitFlipIsCorruption) {
  const std::string payload = "framed payload under test";
  std::string frame;
  EncodeFrame(payload, &frame);

  // Flip each bit of the payload section (after the 8-byte header) and
  // confirm the CRC catches it.
  for (std::size_t byte = 8; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      SocketPair pair = MakePair();
      std::string mutated = frame;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      ASSERT_TRUE(pair.client.WriteAll(mutated, After(kTestDeadline)).ok());
      std::string received;
      Status read = ReadFrame(&pair.server, &received, After(kTestDeadline));
      EXPECT_TRUE(read.IsCorruption())
          << "byte " << byte << " bit " << bit << ": " << read.ToString();
    }
  }
}

TEST(Frame, CorruptCrcHeaderIsCorruption) {
  std::string frame;
  EncodeFrame("payload", &frame);
  frame[4] = static_cast<char>(frame[4] ^ 0x40);  // inside the masked CRC

  SocketPair pair = MakePair();
  ASSERT_TRUE(pair.client.WriteAll(frame, After(kTestDeadline)).ok());
  std::string received;
  EXPECT_TRUE(
      ReadFrame(&pair.server, &received, After(kTestDeadline)).IsCorruption());
}

TEST(Frame, ImplausibleLengthRejectedBeforeAllocation) {
  std::string frame;
  codec::PutFixed32(&frame, kMaxFrameBytes + 1);
  codec::PutFixed32(&frame, 0);

  SocketPair pair = MakePair();
  ASSERT_TRUE(pair.client.WriteAll(frame, After(kTestDeadline)).ok());
  std::string received;
  EXPECT_TRUE(
      ReadFrame(&pair.server, &received, After(kTestDeadline)).IsCorruption());
}

TEST(Frame, PeerCloseSurfacesAsUnavailable) {
  SocketPair pair = MakePair();
  pair.client.Close();
  std::string received;
  Status read = ReadFrame(&pair.server, &received, After(kTestDeadline));
  EXPECT_EQ(read.code(), StatusCode::kUnavailable) << read.ToString();
}

TEST(Frame, TruncatedFrameThenCloseSurfacesAsUnavailable) {
  std::string frame;
  EncodeFrame("payload that will be cut short", &frame);
  SocketPair pair = MakePair();
  ASSERT_TRUE(pair.client
                  .WriteAll(std::string_view(frame).substr(0, frame.size() / 2),
                            After(kTestDeadline))
                  .ok());
  pair.client.Close();
  std::string received;
  Status read = ReadFrame(&pair.server, &received, After(kTestDeadline));
  EXPECT_EQ(read.code(), StatusCode::kUnavailable) << read.ToString();
}

TEST(Frame, ReadTimesOutWhenNothingArrives) {
  SocketPair pair = MakePair();
  std::string received;
  Status read = ReadFrame(&pair.server, &received,
                          After(std::chrono::milliseconds(50)));
  EXPECT_TRUE(read.IsTimeout()) << read.ToString();
}

TEST(Frame, ShutdownUnblocksPendingRead) {
  SocketPair pair = MakePair();
  std::thread unblocker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pair.server.Shutdown();
  });
  std::string received;
  Status read = ReadFrame(&pair.server, &received, kNoDeadline);
  unblocker.join();
  EXPECT_FALSE(read.ok());
}

// --- trace-context block (protocol v2) ---------------------------------------

TEST(Frame, TracedFrameRoundTripsContext) {
  SocketPair pair = MakePair();
  TraceContext trace;
  trace.trace_id = 0x1122334455667788ull;
  trace.parent_span = 0x99aabbccddeeff00ull;
  ASSERT_TRUE(
      WriteFrame(&pair.client, "traced payload", After(kTestDeadline), &trace)
          .ok());

  std::string received;
  TraceContext decoded;
  decoded.trace_id = 1;  // must be overwritten, not merely left alone
  ASSERT_TRUE(
      ReadFrame(&pair.server, &received, After(kTestDeadline), &decoded).ok());
  EXPECT_EQ(received, "traced payload");
  EXPECT_EQ(decoded.trace_id, trace.trace_id);
  EXPECT_EQ(decoded.parent_span, trace.parent_span);
}

TEST(Frame, TracedFrameReadableWithoutTraceSink) {
  // A reader that does not care about traces still gets the payload: the
  // trace block is consumed and the chained CRC still verifies.
  SocketPair pair = MakePair();
  TraceContext trace;
  trace.trace_id = 42;
  ASSERT_TRUE(
      WriteFrame(&pair.client, "payload", After(kTestDeadline), &trace).ok());
  std::string received;
  ASSERT_TRUE(ReadFrame(&pair.server, &received, After(kTestDeadline)).ok());
  EXPECT_EQ(received, "payload");
}

TEST(Frame, UntracedFrameZeroesTraceSink) {
  SocketPair pair = MakePair();
  ASSERT_TRUE(WriteFrame(&pair.client, "plain", After(kTestDeadline)).ok());
  std::string received;
  TraceContext decoded;
  decoded.trace_id = 7;  // stale state from a previous traced frame
  ASSERT_TRUE(
      ReadFrame(&pair.server, &received, After(kTestDeadline), &decoded).ok());
  EXPECT_EQ(decoded.trace_id, 0u);
  EXPECT_FALSE(decoded.sampled());
}

TEST(Frame, UnsampledContextFallsBackToPlainFrame) {
  // An unsampled context must not spend 16 bytes per frame: the encoder
  // emits the v1 form, byte-identical to an untraced encode.
  TraceContext unsampled;
  std::string traced_encode;
  EncodeFrame("body", unsampled, &traced_encode);
  std::string plain_encode;
  EncodeFrame("body", &plain_encode);
  EXPECT_EQ(traced_encode, plain_encode);
}

TEST(Frame, EveryTraceBlockBitFlipIsCorruption) {
  TraceContext trace;
  trace.trace_id = 0xdeadbeef;
  trace.parent_span = 0xfeedface;
  std::string frame;
  EncodeFrame("guarded by chained crc", trace, &frame);

  // The 16-byte trace block sits between the 8-byte header and the payload;
  // its bits are covered by the frame CRC just like payload bits.
  for (std::size_t byte = 8; byte < 24; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      SocketPair pair = MakePair();
      std::string mutated = frame;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      ASSERT_TRUE(pair.client.WriteAll(mutated, After(kTestDeadline)).ok());
      std::string received;
      TraceContext decoded;
      Status read =
          ReadFrame(&pair.server, &received, After(kTestDeadline), &decoded);
      EXPECT_TRUE(read.IsCorruption())
          << "byte " << byte << " bit " << bit << ": " << read.ToString();
    }
  }
}

// --- protocol envelope + body codecs ----------------------------------------

TEST(Protocol, RequestEnvelopeRoundTrip) {
  std::string payload;
  EncodeRequest(ApiKey::kProduce, "body-bytes", &payload);
  ApiKey api{};
  std::string_view body;
  ASSERT_TRUE(DecodeRequest(payload, &api, &body).ok());
  EXPECT_EQ(api, ApiKey::kProduce);
  EXPECT_EQ(body, "body-bytes");
}

TEST(Protocol, UnknownApiKeyRejected) {
  std::string payload = "\x7fgarbage";
  ApiKey api{};
  std::string_view body;
  EXPECT_TRUE(DecodeRequest(payload, &api, &body).IsCorruption());
  EXPECT_TRUE(DecodeRequest("", &api, &body).IsCorruption());
}

TEST(Protocol, ResponseCarriesApplicationError) {
  std::string payload;
  EncodeResponse(Status::NotFound("no such topic"), "", &payload);
  std::string_view body;
  Status decoded = DecodeResponse(payload, &body);
  EXPECT_TRUE(decoded.IsNotFound());
  EXPECT_EQ(decoded.message(), "no such topic");
}

TEST(Protocol, FetchRoundTrip) {
  FetchRequest req;
  req.entries.push_back({{"topic-a", 2}, 17, 128});
  req.entries.push_back({{"topic-b", 0}, 0, 64});
  req.max_wait_us = 250'000;
  std::string body;
  EncodeFetchRequest(req, &body);
  FetchRequest decoded;
  ASSERT_TRUE(DecodeFetchRequest(body, &decoded).ok());
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.entries[0].tp, (ps::TopicPartition{"topic-a", 2}));
  EXPECT_EQ(decoded.entries[0].offset, 17);
  EXPECT_EQ(decoded.entries[1].max_records, 64u);
  EXPECT_EQ(decoded.max_wait_us, 250'000u);

  FetchResponse resp;
  FetchResponse::Entry entry;
  entry.tp = {"topic-a", 2};
  entry.next_offset = 19;
  ps::ConsumedRecord record;
  record.topic = "topic-a";
  record.partition = 2;
  record.offset = 17;
  record.key = "k";
  record.value = "v";
  record.timestamp = -5;  // signed timestamps survive
  entry.records.push_back(record);
  resp.entries.push_back(entry);
  body.clear();
  EncodeFetchResponse(resp, &body);
  FetchResponse decoded_resp;
  ASSERT_TRUE(DecodeFetchResponse(body, &decoded_resp).ok());
  ASSERT_EQ(decoded_resp.entries.size(), 1u);
  EXPECT_EQ(decoded_resp.entries[0].records[0].timestamp, -5);
  EXPECT_EQ(decoded_resp.entries[0].records[0].value, "v");
  EXPECT_FALSE(decoded_resp.empty());
}

TEST(Protocol, HelloRoundTripAndVersionFloor) {
  std::string body;
  EncodeHelloRequest(HelloRequest{kProtocolVersion}, &body);
  HelloRequest req;
  ASSERT_TRUE(DecodeHelloRequest(body, &req).ok());
  EXPECT_EQ(req.max_version, kProtocolVersion);

  body.clear();
  EncodeHelloResponse(HelloResponse{2}, &body);
  HelloResponse resp;
  ASSERT_TRUE(DecodeHelloResponse(body, &resp).ok());
  EXPECT_EQ(resp.version, 2u);

  // Version 0 does not exist on any wire; reject rather than misbehave.
  body.clear();
  EncodeHelloRequest(HelloRequest{0}, &body);
  EXPECT_FALSE(DecodeHelloRequest(body, &req).ok());
}

TEST(Protocol, TruncatedBodiesAlwaysError) {
  CommitOffsetRequest req;
  req.group = "g";
  req.offsets.emplace_back(ps::TopicPartition{"t", 1}, 42);
  std::string body;
  EncodeCommitOffsetRequest(req, &body);
  for (std::size_t cut = 1; cut <= body.size(); ++cut) {
    CommitOffsetRequest out;
    EXPECT_FALSE(DecodeCommitOffsetRequest(
                     std::string_view(body.data(), body.size() - cut), &out)
                     .ok())
        << "cut=" << cut;
  }
  CommitOffsetRequest out;
  EXPECT_FALSE(DecodeCommitOffsetRequest(body + "x", &out).ok());
}

}  // namespace
}  // namespace strata::net
