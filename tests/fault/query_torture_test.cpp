// End-to-end crash-recovery torture for checkpointed stream queries
// (chaos label).
//
// A reference run computes the exact report set an uninterrupted pipeline
// delivers. Then each scenario runs the same pipeline in a forked child
// over a persistent data dir and SIGKILLs it at a random point mid-stream;
// the next child recovers from the latest complete epoch, replays the
// broker-backed connectors from their checkpointed offsets, and keeps
// going. Checkpoint-persistence failpoints (checkpoint.write /
// checkpoint.rename) are armed with a small error probability so some
// epochs fail and recovery has to fall back to an older complete one.
//
// When a child finally runs to completion, the invariant is exact:
// the durable report set (keys AND encoded values) must equal the
// uninterrupted reference — no lost reports, no duplicates, no reports
// built from replayed-but-different tuples. That is effectively-once,
// end to end, under kill -9.
//
// Iterations default to 50; override with STRATA_TORTURE_ITERS.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "common/codec.hpp"
#include "common/fs.hpp"
#include "fault/failpoint.hpp"
#include "kvstore/db.hpp"
#include "strata/strata.hpp"

namespace strata::core {
namespace {

using namespace std::chrono_literals;

int TortureIterations() {
  if (const char* env = std::getenv("STRATA_TORTURE_ITERS"); env != nullptr) {
    return std::max(1, std::atoi(env));
  }
  return 50;
}

constexpr int kChildDone = 0;
constexpr int kChildFailed = 3;

/// Tuples the generator emits per scenario. At ~1ms each the child needs
/// roughly half a second of steady progress, so the 50-450ms kill window
/// below always lands mid-stream on a fresh directory.
constexpr std::int64_t kTotalTuples = 400;

/// Keyed per-window severity count with snapshot codecs, so the sharded
/// aggregate's state rides the epoch checkpoints and survives re-hashing.
spe::AggregateSpec SeverityCountSpec() {
  using Acc = std::pair<std::string, std::int64_t>;  // (severity, count)
  spe::AggregateSpec spec;
  spec.window = {100, 100};
  spec.key = [](const spe::Tuple& t) {
    return std::to_string(t.payload.Get("severity").AsInt());
  };
  spec.init = [] { return std::any(Acc{}); };
  spec.add = [](std::any& acc, const spe::Tuple& t) {
    auto& a = std::any_cast<Acc&>(acc);
    a.first = std::to_string(t.payload.Get("severity").AsInt());
    ++a.second;
  };
  spec.result = [](std::any& acc, Timestamp start,
                   Timestamp /*end*/) -> std::vector<spe::Tuple> {
    const auto& a = std::any_cast<const Acc&>(acc);
    spe::Tuple out;
    out.payload.Set("group", a.first);
    out.payload.Set("count", a.second);
    out.payload.Set("window_start", start);
    return {out};
  };
  spec.encode_acc = [](const std::any& acc, std::string* out) {
    const auto& a = std::any_cast<const Acc&>(acc);
    codec::PutLengthPrefixed(out, a.first);
    codec::PutVarint64Signed(out, a.second);
    return Status::Ok();
  };
  spec.decode_acc = [](std::string_view in) -> Result<std::any> {
    Acc a;
    std::string_view group;
    std::int64_t count = 0;
    if (!codec::GetLengthPrefixed(&in, &group) ||
        !codec::GetVarint64Signed(&in, &count) || !in.empty()) {
      return Status::Corruption("severity count accumulator");
    }
    a.first = std::string(group);
    a.second = count;
    return std::any(a);
  };
  return spec;
}

/// Build the checkpointed pipeline on `strata`. Deterministic in the
/// generator position, so every (partial or complete) run delivers a
/// prefix-consistent subset of the same report set. `emit_delay` stretches
/// the run so the parent's kill lands mid-stream; zero for the reference.
///
/// Shape: gen -> detect -> enrich (a fusable stateless chain) -> tee;
/// one branch delivers per-tuple reports, the other runs a keyed
/// 2-shard severity-count aggregate delivered under "counts/". With
/// enable_fusion on (ScenarioOptions) this exercises fused barriers and
/// per-shard snapshot replay under kill -9.
void BuildPipeline(Strata* strata, std::chrono::microseconds emit_delay) {
  auto position = std::make_shared<std::int64_t>(0);
  auto stream = strata->AddSource(
      "gen", [position, emit_delay]() -> std::optional<spe::Tuple> {
        if (*position >= kTotalTuples) return std::nullopt;
        if (emit_delay.count() > 0) std::this_thread::sleep_for(emit_delay);
        spe::Tuple t;
        t.job = 1;
        t.layer = *position;
        t.event_time = *position + 1;
        // Nonzero so the source does not stamp wall-clock arrival time:
        // report values must be bit-identical across replays.
        t.stimulus = *position + 1;
        t.payload.Set("reading", *position * 3);
        ++*position;
        return t;
      });
  auto detected = strata->DetectEvent(
      "detect", std::move(stream), [](const spe::Tuple& t) {
        spe::Tuple out;
        out.payload.Set("severity",
                        t.payload.Get("reading").AsInt() % 7);
        return std::vector<spe::Tuple>{out};
      });
  auto enriched = strata->DetectEvent(
      "enrich", std::move(detected), [](const spe::Tuple& t) {
        spe::Tuple out = t;
        out.payload.Set("flag", t.payload.Get("severity").AsInt() % 2);
        return std::vector<spe::Tuple>{out};
      });
  auto branches = strata->Split("tee", std::move(enriched), 2);
  strata->DeliverDurable("reports", std::move(branches[0]), "reports/",
                         [](const spe::Tuple& t) {
                           return std::to_string(t.layer);
                         });
  auto counted = strata->query().AddAggregate(
      "sevcount", std::move(branches[1]), SeverityCountSpec(), /*shards=*/2);
  strata->DeliverDurable(
      "counts", std::move(counted), "counts/", [](const spe::Tuple& t) {
        return t.payload.Get("group").AsString() + "/" +
               std::to_string(t.payload.Get("window_start").AsInt());
      });
  // The generator's only state is its position; checkpointing it is what
  // lets a recovered run resume mid-stream instead of starting over.
  strata->query().FindOperator("gen")->SetStateHooks(
      [position](std::uint64_t, std::string* out) {
        codec::PutVarint64(out, static_cast<std::uint64_t>(*position));
        return Status::Ok();
      },
      [position](std::string_view blob) {
        std::uint64_t value = 0;
        if (!codec::GetVarint64(&blob, &value)) {
          return Status::Corruption("gen snapshot");
        }
        *position = static_cast<std::int64_t>(value);
        return Status::Ok();
      });
}

StrataOptions ScenarioOptions(const std::filesystem::path& dir) {
  StrataOptions options;
  options.data_dir = dir;
  options.persistent_connectors = true;
  options.connector_partitions = 1;
  options.checkpoint_interval_ms = 50;
  // Fuse the detect->enrich chain: recovery must also be exact when
  // barriers are forwarded by fused workers.
  options.query.enable_fusion = true;
  return options;
}

/// The durable report set at `dir`, read straight from the on-disk kv
/// store (no Strata instance: this is what an operator would see after
/// the process is gone).
std::map<std::string, std::string> ReadReports(
    const std::filesystem::path& dir) {
  auto db = kv::DB::Open(dir / "kv", {});
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return {};
  std::map<std::string, std::string> reports;
  auto it = (*db)->NewIterator();
  for (const std::string_view prefix : {"counts/", "reports/"}) {
    for (it->Seek(prefix); it->Valid(); it->Next()) {
      const std::string_view key = it->key();
      if (key.substr(0, prefix.size()) != prefix) break;
      reports.emplace(std::string(key), std::string(it->value()));
    }
  }
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  return reports;
}

/// Run the pipeline to completion in a forked child. With checkpoint
/// failpoints armed, some epochs fail to persist (recovery then falls
/// back); the SIGKILL comes from the parent, not from in here.
pid_t SpawnChild(const std::filesystem::path& dir, int iteration,
                 bool arm_failpoints) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  {
    Strata strata(ScenarioOptions(dir));
    BuildPipeline(&strata, /*emit_delay=*/1000us);
    if (arm_failpoints) {
      fault::SeedRng(static_cast<std::uint64_t>(iteration) * 7919u + 1u);
      fault::Activate("checkpoint.write",
                      fault::Action{fault::ActionKind::kError, 0, 0.1, -1});
      fault::Activate("checkpoint.rename",
                      fault::Action{fault::ActionKind::kError, 0, 0.1, -1});
    }
    strata.Deploy();  // recovers from the latest complete epoch first
    strata.WaitForCompletion();
    strata.Shutdown();
  }
  std::_Exit(kChildDone);
}

TEST(QueryTortureTest, RecoveredQueryDeliversExactlyTheReferenceReports) {
  const int iterations = TortureIterations();

  // ---- reference: the same pipeline, uninterrupted, pristine dir ----
  std::map<std::string, std::string> reference;
  {
    strata::fs::ScopedTempDir ref_dir("query-torture-ref");
    {
      Strata strata(ScenarioOptions(ref_dir.path()));
      BuildPipeline(&strata, /*emit_delay=*/0us);
      strata.Deploy();
      strata.WaitForCompletion();
      strata.Shutdown();
    }
    reference = ReadReports(ref_dir.path());
  }
  // 400 per-tuple reports plus at least one count window per severity.
  ASSERT_GT(reference.size(), static_cast<std::size_t>(kTotalTuples) + 6);

  // ---- scenarios: kill, recover, kill again ... until a clean finish ----
  auto dir = std::make_unique<strata::fs::ScopedTempDir>("query-torture");
  int kills = 0;
  int completed_scenarios = 0;
  int lives = 0;  // child launches in the current scenario
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };

  auto finish_scenario = [&](int iteration) {
    EXPECT_EQ(ReadReports(dir->path()), reference)
        << "iteration " << iteration << ": recovered run (" << lives
        << " lives) diverged from the uninterrupted reference";
    ++completed_scenarios;
    lives = 0;
    dir = std::make_unique<strata::fs::ScopedTempDir>("query-torture");
  };

  for (int iteration = 0; iteration < iterations; ++iteration) {
    const pid_t pid = SpawnChild(dir->path(), iteration,
                                 /*arm_failpoints=*/true);
    ASSERT_GE(pid, 0) << "fork failed";
    ++lives;

    std::this_thread::sleep_for(
        std::chrono::milliseconds(50 + next() % 400));
    int status = 0;
    pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == 0) {
      ASSERT_EQ(::kill(pid, SIGKILL), 0);
      reaped = ::waitpid(pid, &status, 0);
    }
    ASSERT_EQ(reaped, pid);

    if (WIFSIGNALED(status)) {
      // Only our own SIGKILL is an acceptable violent death; an abort or
      // segfault inside recovery is exactly the kind of bug this hunts.
      ASSERT_EQ(WTERMSIG(status), SIGKILL)
          << "iteration " << iteration << ": child died of signal "
          << WTERMSIG(status);
      ++kills;
      continue;  // next iteration recovers from this directory
    }
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == kChildDone)
        << "iteration " << iteration << ": child exited with "
        << WEXITSTATUS(status);
    finish_scenario(iteration);
  }

  // The last scenario may still be mid-flight; force one uninterrupted
  // run (no failpoints) so its directory also reaches the invariant.
  if (lives > 0) {
    const pid_t pid = SpawnChild(dir->path(), iterations,
                                 /*arm_failpoints=*/false);
    ASSERT_GE(pid, 0) << "fork failed";
    ++lives;
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == kChildDone)
        << "final run exited with status " << status;
    finish_scenario(iterations);
  }

  RecordProperty("kills", kills);
  RecordProperty("completed_scenarios", completed_scenarios);
  EXPECT_GT(kills, 0) << "no child was ever killed mid-run; timing inert?";
  EXPECT_GT(completed_scenarios, 0)
      << "no scenario ever completed; recovery may not be making progress";
}

}  // namespace
}  // namespace strata::core
