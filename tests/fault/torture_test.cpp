// Crash-recovery torture harness (chaos label).
//
// Each iteration forks a child that runs a write workload with crash and
// torn-write failpoints armed, so the process dies (std::_Exit, the
// in-process stand-in for kill -9) at a random risky site — mid WAL append,
// mid segment write, mid manifest rewrite. The child acks every durable
// operation through a pipe; the parent then reopens the store/broker and
// asserts the invariants that make the system trustworthy:
//
//   * every acked-and-synced write survives the crash,
//   * committed consumer offsets never run past the recovered log end,
//   * torn tails are CRC-rejected and truncated, never served as data,
//   * the store reopens cleanly every single time.
//
// Iterations default to 50; override with STRATA_TORTURE_ITERS.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/fs.hpp"
#include "fault/failpoint.hpp"
#include "kvstore/db.hpp"
#include "pubsub/broker.hpp"

namespace strata {
namespace {

int TortureIterations() {
  if (const char* env = std::getenv("STRATA_TORTURE_ITERS"); env != nullptr) {
    return std::max(1, std::atoi(env));
  }
  return 50;
}

/// Child exit codes. 134 is the crash failpoint's _Exit code.
constexpr int kChildDone = 0;
constexpr int kChildCrashed = 134;
constexpr int kChildSetupFailed = 2;

/// Arm the child's failpoints: crash dominates, with torn writes mixed in on
/// the append path on odd iterations (one action per site, so alternate).
void ArmChild(const std::string& append_site,
              const std::vector<std::string>& crash_sites, int iteration) {
  fault::SeedRng(static_cast<std::uint64_t>(iteration) * 7919u + 1u);
  if (iteration % 2 == 0) {
    fault::Activate(append_site,
                    fault::Action{fault::ActionKind::kCrash, 0, 0.02, -1});
  } else {
    fault::Activate(append_site,
                    fault::Action{fault::ActionKind::kTornWrite, 6, 0.02, -1});
  }
  for (const std::string& site : crash_sites) {
    fault::Activate(site,
                    fault::Action{fault::ActionKind::kCrash, 0, 0.25, -1});
  }
}

/// Fork `child`, which acks durable operations as 4-byte indexes on the
/// pipe. Returns the acked indexes; fails the test on unexpected exits.
std::vector<int> RunChild(const std::function<void(int ack_fd)>& child) {
  int fds[2];
  if (::pipe(fds) != 0) {
    ADD_FAILURE() << "pipe failed";
    return {};
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork failed";
    return {};
  }
  if (pid == 0) {
    ::close(fds[0]);
    child(fds[1]);
    std::_Exit(kChildDone);
  }
  ::close(fds[1]);
  std::vector<int> acked;
  int index = 0;
  while (::read(fds[0], &index, sizeof(index)) ==
         static_cast<ssize_t>(sizeof(index))) {
    acked.push_back(index);
  }
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status)) << "child killed by signal";
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    EXPECT_TRUE(code == kChildDone || code == kChildCrashed)
        << "child exited with " << code;
  }
  return acked;
}

void Ack(int fd, int index) {
  (void)!::write(fd, &index, sizeof(index));
}

TEST(TortureTest, KvStoreSurvivesRandomCrashes) {
  strata::fs::ScopedTempDir dir("kv-torture");
  const int iterations = TortureIterations();
  constexpr int kOpsPerIteration = 300;

  // Everything any child ever acked; must be readable after every crash.
  std::map<std::string, std::string> acked_data;
  int total_crashes = 0;

  for (int iteration = 0; iteration < iterations; ++iteration) {
    const auto acked = RunChild([&dir, iteration](int ack_fd) {
      kv::DbOptions options;
      options.sync_writes = true;          // ack == fsync'd
      options.write_buffer_bytes = 2048;   // force flushes + compactions
      options.compaction_trigger = 3;
      auto db = kv::DB::Open(dir.path(), options);
      if (!db.ok()) {
        std::fprintf(stderr, "child open failed: %s\n",
                     db.status().ToString().c_str());
        std::_Exit(kChildSetupFailed);
      }
      // Arm only after a clean open: crashes cover recovery via reopen.
      ArmChild("wal.append",
               {"wal.sync", "sstable.write", "sstable.rename",
                "version.rewrite", "version.rename"},
               iteration);
      for (int i = 0; i < kOpsPerIteration; ++i) {
        const std::string key =
            "it" + std::to_string(iteration) + "-k" + std::to_string(i);
        if (!(*db)->Put(key, "v-" + key).ok()) {
          std::_Exit(kChildDone);  // fail-stop client: stop at first error
        }
        Ack(ack_fd, i);
      }
    });

    if (static_cast<int>(acked.size()) < kOpsPerIteration) ++total_crashes;
    for (const int i : acked) {
      const std::string key =
          "it" + std::to_string(iteration) + "-k" + std::to_string(i);
      acked_data[key] = "v-" + key;
    }

    // Reopen with no failpoints armed: must succeed, and every acked write
    // from every iteration so far must be present.
    auto db = kv::DB::Open(dir.path());
    ASSERT_TRUE(db.ok()) << "iteration " << iteration << ": "
                         << db.status().ToString();
    for (const auto& [key, value] : acked_data) {
      auto got = (*db)->Get(key);
      ASSERT_TRUE(got.ok()) << "iteration " << iteration << ": acked key '"
                            << key << "' lost: " << got.status().ToString();
      ASSERT_EQ(*got, value);
    }
  }
  RecordProperty("crashes", total_crashes);
  EXPECT_GT(total_crashes, 0) << "no child ever crashed; failpoints inert?";
}

TEST(TortureTest, BrokerSurvivesRandomCrashes) {
  strata::fs::ScopedTempDir dir("ps-torture");
  const int iterations = TortureIterations();
  constexpr int kOpsPerIteration = 250;
  const ps::TopicPartition tp{"events", 0};

  std::vector<std::string> acked_values;  // produce order across iterations
  int total_crashes = 0;

  for (int iteration = 0; iteration < iterations; ++iteration) {
    const auto acked = RunChild([&dir, &tp, iteration](int ack_fd) {
      ps::BrokerOptions options;
      options.data_dir = dir.path();
      options.segment_bytes = 1024;  // force rolls
      options.sync_each_append = true;
      ps::Broker broker(options);
      if (!broker.CreateTopic(tp.topic, ps::TopicConfig{1}).ok()) {
        std::_Exit(kChildSetupFailed);
      }
      ArmChild("segment.append",
               {"segment.roll", "segment.sync", "offsets.write",
                "offsets.rename"},
               iteration);
      for (int i = 0; i < kOpsPerIteration; ++i) {
        ps::Record record;
        record.value =
            "it" + std::to_string(iteration) + "-r" + std::to_string(i);
        auto produced = broker.Produce(tp.topic, record);
        if (!produced.ok()) std::_Exit(kChildDone);  // fail-stop producer
        Ack(ack_fd, i);
        if (i % 25 == 24) {
          // Commit up to the acked offset; a failure here is fine (the
          // commit just did not happen), but we must not keep producing
          // after an injected crash window — keep going, commits are
          // best-effort metadata.
          (void)broker.CommitOffset("readers", tp, produced->second + 1);
        }
      }
    });

    if (static_cast<int>(acked.size()) < kOpsPerIteration) ++total_crashes;
    for (const int i : acked) {
      acked_values.push_back("it" + std::to_string(iteration) + "-r" +
                             std::to_string(i));
    }

    // Reopen: recovery truncates any torn segment tail, committed offsets
    // load from the offsets file, and every acked record must still be
    // served — in produce order.
    ps::BrokerOptions options;
    options.data_dir = dir.path();
    options.segment_bytes = 1024;
    ps::Broker broker(options);
    ASSERT_TRUE(broker.CreateTopic(tp.topic, ps::TopicConfig{1}).ok());
    auto log = broker.GetLog(tp.topic, tp.partition);
    ASSERT_TRUE(log.ok());
    const std::int64_t end = (*log)->EndOffset();
    ASSERT_GE(end, static_cast<std::int64_t>(acked_values.size()))
        << "iteration " << iteration << ": acked records lost";

    std::vector<ps::Record> records;
    std::int64_t next = 0;
    ASSERT_TRUE((*log)
                    ->ReadFrom(0, static_cast<std::size_t>(end), &records,
                               &next)
                    .ok());
    // Acked values must appear as an ordered subsequence (the log may hold
    // extra records that were persisted but never acked before a crash).
    std::size_t cursor = 0;
    for (const ps::Record& record : records) {
      if (cursor < acked_values.size() &&
          record.value == acked_values[cursor]) {
        ++cursor;
      }
    }
    ASSERT_EQ(cursor, acked_values.size())
        << "iteration " << iteration
        << ": acked record missing from recovered log";

    // Committed offsets never run past the recovered log end.
    auto committed = broker.CommittedOffset("readers", tp);
    if (committed.ok()) {
      EXPECT_LE(*committed, end) << "iteration " << iteration;
    }
  }
  RecordProperty("crashes", total_crashes);
  EXPECT_GT(total_crashes, 0) << "no child ever crashed; failpoints inert?";
}

}  // namespace
}  // namespace strata
