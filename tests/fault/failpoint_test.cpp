// strata::fault framework semantics: arming, budgets, probability
// determinism, env-spec parsing, write injection, and counters.
#include <gtest/gtest.h>

#include "common/fs.hpp"
#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"

namespace strata::fault {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DeactivateAll(); }
};

Status GuardedSite(const char* site) {
  STRATA_FAILPOINT(site);
  return Status::Ok();
}

TEST_F(FailpointTest, InactiveByDefault) {
  EXPECT_FALSE(AnyActive());
  EXPECT_TRUE(GuardedSite("test.nothing").ok());
}

TEST_F(FailpointTest, ActivateAndDeactivate) {
  Activate("test.err", Action{ActionKind::kError});
  EXPECT_TRUE(AnyActive());
  EXPECT_TRUE(GuardedSite("test.err").IsIoError());
  EXPECT_TRUE(GuardedSite("test.other").ok());  // only the armed site fires

  EXPECT_TRUE(Deactivate("test.err"));
  EXPECT_FALSE(Deactivate("test.err"));  // already disarmed
  EXPECT_FALSE(AnyActive());
  EXPECT_TRUE(GuardedSite("test.err").ok());
}

TEST_F(FailpointTest, DisconnectMapsToUnavailable) {
  Activate("test.disc", Action{ActionKind::kDisconnect});
  EXPECT_TRUE(GuardedSite("test.disc").IsUnavailable());
}

TEST_F(FailpointTest, MaxHitsBudget) {
  Action action{ActionKind::kError};
  action.max_hits = 2;
  Activate("test.budget", action);
  EXPECT_FALSE(GuardedSite("test.budget").ok());
  EXPECT_FALSE(GuardedSite("test.budget").ok());
  EXPECT_TRUE(GuardedSite("test.budget").ok());  // budget exhausted
  EXPECT_TRUE(GuardedSite("test.budget").ok());
  EXPECT_EQ(TriggerCount("test.budget"), 2u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [] {
    SeedRng(1234);
    Action action{ActionKind::kError};
    action.probability = 0.5;
    Activate("test.prob", action);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(GuardedSite("test.prob").ok() ? '.' : 'X');
    }
    DeactivateAll();
    return pattern;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  // Sanity: 0.5 should both fire and pass at least once in 64 draws.
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(FailpointTest, CountersTrackHitsAndTriggers) {
  Action action{ActionKind::kError};
  action.max_hits = 1;
  Activate("test.count", action);
  (void)GuardedSite("test.count");  // trigger
  (void)GuardedSite("test.count");  // hit only (budget spent)
  const auto counters = Counters();
  const auto it = counters.find("test.count");
  ASSERT_NE(it, counters.end());
  EXPECT_EQ(it->second.first, 2u);   // hits
  EXPECT_EQ(it->second.second, 1u);  // triggers

  // Counters survive deactivation.
  DeactivateAll();
  EXPECT_EQ(TriggerCount("test.count"), 1u);
}

TEST_F(FailpointTest, SpecParsesActionProbabilityAndBudget) {
  ASSERT_TRUE(
      ActivateFromSpec("test.a=error;test.b=torn-write(5)@1.0:2,test.c=delay(1)")
          .ok());
  EXPECT_TRUE(GuardedSite("test.a").IsIoError());

  std::size_t len = 100;
  EXPECT_TRUE(InjectWrite("test.b", &len).IsIoError());
  EXPECT_EQ(len, 5u);
  len = 100;
  EXPECT_FALSE(InjectWrite("test.b", &len).ok());
  len = 100;
  EXPECT_TRUE(InjectWrite("test.b", &len).ok());  // budget of 2 spent
  EXPECT_EQ(len, 100u);

  EXPECT_TRUE(GuardedSite("test.c").ok());  // delay proceeds normally
}

TEST_F(FailpointTest, SpecRejectsMalformedEntries) {
  EXPECT_FALSE(ActivateFromSpec("no-equals").ok());
  EXPECT_FALSE(ActivateFromSpec("site=unknown-action").ok());
  EXPECT_FALSE(ActivateFromSpec("site=error@1.5").ok());
  EXPECT_FALSE(ActivateFromSpec("site=error:-1").ok());
  EXPECT_FALSE(ActivateFromSpec("site=torn-write(x)").ok());
  EXPECT_FALSE(ActivateFromSpec("=error").ok());
}

TEST_F(FailpointTest, InjectWriteZeroesLengthOnPlainError) {
  Activate("test.werr", Action{ActionKind::kError});
  std::size_t len = 64;
  EXPECT_TRUE(InjectWrite("test.werr", &len).IsIoError());
  EXPECT_EQ(len, 0u);
}

TEST_F(FailpointTest, WriteFileAtomicTornWriteLeavesTargetUntouched) {
  strata::fs::ScopedTempDir dir("fp-atomic");
  const auto path = dir.path() / "file";
  ASSERT_TRUE(WriteFileAtomic(path, "original", "t.write", "t.rename").ok());

  Action torn{ActionKind::kTornWrite};
  torn.arg = 3;
  Activate("t.write", torn);
  EXPECT_FALSE(WriteFileAtomic(path, "replacement", "t.write", "t.rename").ok());
  DeactivateAll();

  // The torn image went to the tmp file; the target still holds the old data.
  EXPECT_EQ(std::move(strata::fs::ReadFile(path)).value(), "original");
}

TEST_F(FailpointTest, WriteFileAtomicRenameFailureKeepsOldContents) {
  strata::fs::ScopedTempDir dir("fp-atomic");
  const auto path = dir.path() / "file";
  ASSERT_TRUE(WriteFileAtomic(path, "original", "t.write", "t.rename").ok());

  Activate("t.rename", Action{ActionKind::kError});
  EXPECT_FALSE(WriteFileAtomic(path, "replacement", "t.write", "t.rename").ok());
  DeactivateAll();
  EXPECT_EQ(std::move(strata::fs::ReadFile(path)).value(), "original");
}

TEST_F(FailpointTest, MetricsExportPerSiteCounters) {
  obs::MetricsRegistry registry;
  BindMetrics(&registry);
  Activate("test.metric", Action{ActionKind::kError});
  (void)GuardedSite("test.metric");
  const auto snapshot = registry.Snapshot();
  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("fault.site.hits"), std::string::npos) << text;
  EXPECT_NE(text.find("site=test.metric"), std::string::npos) << text;
  BindMetrics(nullptr);
}

}  // namespace
}  // namespace strata::fault
