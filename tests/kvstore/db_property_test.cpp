// Property-based testing of the LSM store against a std::map model under
// randomized operation sequences, parameterized over store configurations
// (buffer sizes and compaction triggers) to exercise flush/compaction paths,
// including periodic reopen (crash-free recovery) mid-sequence.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/fs.hpp"
#include "common/rng.hpp"
#include "kvstore/db.hpp"

namespace strata::kv {
namespace {

struct Config {
  std::size_t write_buffer_bytes;
  int compaction_trigger;
  int ops;
  int key_space;
  std::uint64_t seed;
};

std::string PrintConfig(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  return "buf" + std::to_string(c.write_buffer_bytes) + "_trig" +
         std::to_string(c.compaction_trigger) + "_ops" +
         std::to_string(c.ops) + "_keys" + std::to_string(c.key_space) +
         "_seed" + std::to_string(c.seed);
}

class DbModelTest : public ::testing::TestWithParam<Config> {};

TEST_P(DbModelTest, MatchesStdMapModel) {
  const Config& config = GetParam();
  strata::fs::ScopedTempDir dir("db-prop");

  DbOptions options;
  options.write_buffer_bytes = config.write_buffer_bytes;
  options.compaction_trigger = config.compaction_trigger;

  auto db_result = DB::Open(dir.path(), options);
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(db_result).value();

  std::map<std::string, std::string> model;
  Rng rng(config.seed);

  auto check_full_scan = [&] {
    auto it = db->NewIterator();
    auto expected = model.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
      ASSERT_NE(expected, model.end()) << "db has extra key " << it->key();
      EXPECT_EQ(it->key(), expected->first);
      EXPECT_EQ(it->value(), expected->second);
    }
    EXPECT_EQ(expected, model.end()) << "db missing keys from " << (expected == model.end() ? "" : expected->first);
  };

  for (int op = 0; op < config.ops; ++op) {
    const std::string key =
        "key" + std::to_string(rng.UniformInt(0, config.key_space - 1));
    const double dice = rng.Uniform();
    if (dice < 0.55) {
      const std::string value = "value-" + std::to_string(op) + "-" +
                                std::string(rng.UniformInt(0, 100), 'x');
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    } else if (dice < 0.8) {
      ASSERT_TRUE(db->Delete(key).ok());
      model.erase(key);
    } else if (dice < 0.95) {
      auto got = db->Get(key);
      auto expected = model.find(key);
      if (expected == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
        EXPECT_EQ(*got, expected->second);
      }
    } else if (dice < 0.98) {
      ASSERT_TRUE(db->Flush().ok());
    } else {
      // Reopen: clean close + recovery must preserve everything.
      db.reset();
      auto reopened = DB::Open(dir.path(), options);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      db = std::move(reopened).value();
      check_full_scan();
    }
  }

  check_full_scan();

  // Final compaction must not change the observable contents.
  ASSERT_TRUE(db->CompactAll().ok());
  check_full_scan();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbModelTest,
    ::testing::Values(
        // Tiny buffer: constant flushing, frequent compactions.
        Config{1 << 10, 2, 2000, 50, 101},
        // Small buffer, default trigger.
        Config{4 << 10, 4, 3000, 200, 202},
        // Large buffer: everything stays in the memtable.
        Config{16u << 20, 8, 2000, 100, 303},
        // Narrow key space: heavy overwrite/delete churn.
        Config{8 << 10, 3, 4000, 10, 404},
        // Wide key space: mostly distinct keys.
        Config{8 << 10, 4, 3000, 5000, 505}),
    PrintConfig);

}  // namespace
}  // namespace strata::kv
