#include "kvstore/bloom.hpp"

#include <gtest/gtest.h>

#include <string>

namespace strata::kv {
namespace {

std::string Key(int i) { return "key-" + std::to_string(i); }

TEST(Bloom, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10'000; ++i) builder.AddKey(Key(i));
  const std::string filter = builder.Finish();
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(BloomFilterMayContain(filter, Key(i))) << i;
  }
}

TEST(Bloom, FalsePositiveRateReasonable) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10'000; ++i) builder.AddKey(Key(i));
  const std::string filter = builder.Finish();
  int false_positives = 0;
  constexpr int kProbes = 10'000;
  for (int i = 0; i < kProbes; ++i) {
    if (BloomFilterMayContain(filter, "absent-" + std::to_string(i))) {
      ++false_positives;
    }
  }
  // 10 bits/key -> ~1%; allow generous slack.
  EXPECT_LT(false_positives, kProbes / 25);
}

TEST(Bloom, EmptyFilterMatchesNothing) {
  BloomFilterBuilder builder(10);
  const std::string filter = builder.Finish();
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    if (BloomFilterMayContain(filter, Key(i))) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

TEST(Bloom, MalformedFilterIsConservative) {
  EXPECT_TRUE(BloomFilterMayContain("", "any"));
  EXPECT_TRUE(BloomFilterMayContain("x", "any"));
  // Invalid probe count byte.
  std::string bad(64, '\0');
  bad.push_back(static_cast<char>(200));
  EXPECT_TRUE(BloomFilterMayContain(bad, "any"));
}

TEST(Bloom, SingleKey) {
  BloomFilterBuilder builder(10);
  builder.AddKey("only");
  const std::string filter = builder.Finish();
  EXPECT_TRUE(BloomFilterMayContain(filter, "only"));
}

TEST(Bloom, FewerBitsMoreFalsePositives) {
  const int n = 5000;
  auto fp_rate = [&](int bits_per_key) {
    BloomFilterBuilder builder(bits_per_key);
    for (int i = 0; i < n; ++i) builder.AddKey(Key(i));
    const std::string filter = builder.Finish();
    int fp = 0;
    for (int i = 0; i < n; ++i) {
      if (BloomFilterMayContain(filter, "no-" + std::to_string(i))) ++fp;
    }
    return fp;
  };
  EXPECT_GT(fp_rate(2), fp_rate(12));
}

TEST(Bloom, HashIsDeterministic) {
  EXPECT_EQ(BloomHash("abc"), BloomHash("abc"));
  EXPECT_NE(BloomHash("abc"), BloomHash("abd"));
}

}  // namespace
}  // namespace strata::kv
