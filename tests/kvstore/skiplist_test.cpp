#include "kvstore/skiplist.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace strata::kv {
namespace {

struct IntComparator {
  [[nodiscard]] int Compare(int a, int b) const noexcept {
    return (a < b) ? -1 : (a > b) ? 1 : 0;
  }
};

using IntList = SkipList<int, IntComparator>;

TEST(SkipList, EmptyListHasNoElements) {
  IntList list;
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.Contains(1));
  IntList::Iterator it(&list);
  it.SeekToFirst();
  EXPECT_FALSE(it.Valid());
}

TEST(SkipList, InsertAndContains) {
  IntList list;
  for (int v : {5, 1, 9, 3, 7}) list.Insert(v);
  EXPECT_EQ(list.size(), 5u);
  for (int v : {1, 3, 5, 7, 9}) EXPECT_TRUE(list.Contains(v));
  for (int v : {0, 2, 4, 6, 8, 10}) EXPECT_FALSE(list.Contains(v));
}

TEST(SkipList, IterationIsSorted) {
  IntList list;
  std::set<int> expected;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const int v = static_cast<int>(rng.UniformInt(0, 1'000'000));
    if (expected.insert(v).second) list.Insert(v);
  }
  IntList::Iterator it(&list);
  it.SeekToFirst();
  for (const int v : expected) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(SkipList, SeekFindsFirstGreaterOrEqual) {
  IntList list;
  for (int v : {10, 20, 30}) list.Insert(v);
  IntList::Iterator it(&list);
  it.Seek(15);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 20);
  it.Seek(20);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 20);
  it.Seek(31);
  EXPECT_FALSE(it.Valid());
  it.Seek(-5);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 10);
}

TEST(SkipList, SingleWriterConcurrentReaders) {
  // Readers traverse while a single writer inserts; every reader must see a
  // sorted sequence containing only inserted values.
  IntList list;
  std::atomic<int> inserted{0};
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int i = 0; i < 20'000; ++i) {
      list.Insert(i);
      inserted.store(i + 1, std::memory_order_release);
    }
    done = true;
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const int lower_bound = inserted.load(std::memory_order_acquire);
        IntList::Iterator it(&list);
        it.SeekToFirst();
        int prev = -1;
        int count = 0;
        while (it.Valid()) {
          EXPECT_GT(it.key(), prev);  // strictly sorted
          prev = it.key();
          ++count;
          it.Next();
        }
        // Everything inserted before we started must be visible.
        EXPECT_GE(count, lower_bound);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(list.size(), 20'000u);
}

}  // namespace
}  // namespace strata::kv
