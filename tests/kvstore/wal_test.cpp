#include "kvstore/wal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/fs.hpp"

namespace strata::kv {
namespace {

class WalTest : public ::testing::Test {
 protected:
  strata::fs::ScopedTempDir dir_{"wal-test"};
  std::filesystem::path LogPath() const { return dir_.path() / "test.wal"; }
};

TEST_F(WalTest, AppendAndReadBack) {
  {
    auto writer = WalWriter::Open(LogPath());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("record-one").ok());
    ASSERT_TRUE((*writer)->Append("record-two").ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto reader = WalReader::Open(LogPath());
  ASSERT_TRUE(reader.ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload).ok());
  EXPECT_EQ(payload, "record-one");
  ASSERT_TRUE(reader->ReadRecord(&payload).ok());
  EXPECT_EQ(payload, "record-two");
  EXPECT_TRUE(reader->ReadRecord(&payload).IsNotFound());
}

TEST_F(WalTest, EmptyLog) {
  { ASSERT_TRUE(WalWriter::Open(LogPath()).ok()); }
  auto reader = WalReader::Open(LogPath());
  ASSERT_TRUE(reader.ok());
  std::string payload;
  EXPECT_TRUE(reader->ReadRecord(&payload).IsNotFound());
}

TEST_F(WalTest, EmptyPayloadRecord) {
  {
    auto writer = WalWriter::Open(LogPath());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("").ok());
  }
  auto reader = WalReader::Open(LogPath());
  ASSERT_TRUE(reader.ok());
  std::string payload = "sentinel";
  ASSERT_TRUE(reader->ReadRecord(&payload).ok());
  EXPECT_TRUE(payload.empty());
}

TEST_F(WalTest, TornTailStopsReplayCleanly) {
  {
    auto writer = WalWriter::Open(LogPath());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("complete").ok());
    ASSERT_TRUE((*writer)->Append("will-be-torn").ok());
  }
  // Truncate mid-record to simulate a crash during the second append.
  const auto full_size = std::filesystem::file_size(LogPath());
  std::filesystem::resize_file(LogPath(), full_size - 5);

  auto reader = WalReader::Open(LogPath());
  ASSERT_TRUE(reader.ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload).ok());
  EXPECT_EQ(payload, "complete");
  EXPECT_TRUE(reader->ReadRecord(&payload).IsNotFound());
}

TEST_F(WalTest, CorruptRecordStopsReplay) {
  {
    auto writer = WalWriter::Open(LogPath());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("good").ok());
    ASSERT_TRUE((*writer)->Append("bad-soon").ok());
  }
  // Flip a byte inside the second record's payload.
  auto contents = strata::fs::ReadFile(LogPath());
  ASSERT_TRUE(contents.ok());
  std::string data = std::move(contents).value();
  data[data.size() - 2] = static_cast<char>(data[data.size() - 2] ^ 0xff);
  ASSERT_TRUE(strata::fs::WriteFile(LogPath(), data).ok());

  auto reader = WalReader::Open(LogPath());
  ASSERT_TRUE(reader.ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload).ok());
  EXPECT_EQ(payload, "good");
  // A fully-present record failing its CRC is corruption — distinct from
  // the NotFound a torn tail produces (see TornTailStopsReplayCleanly).
  EXPECT_TRUE(reader->ReadRecord(&payload).IsCorruption());
}

TEST_F(WalTest, AppendIsDurableAcrossReopen) {
  {
    auto writer = WalWriter::Open(LogPath());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("first").ok());
  }
  {
    // Reopen appends, does not truncate.
    auto writer = WalWriter::Open(LogPath());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("second").ok());
  }
  auto reader = WalReader::Open(LogPath());
  ASSERT_TRUE(reader.ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload).ok());
  EXPECT_EQ(payload, "first");
  ASSERT_TRUE(reader->ReadRecord(&payload).ok());
  EXPECT_EQ(payload, "second");
}

TEST(WriteBatch, SerializeParseRoundTrip) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", std::string(1000, 'z'));

  const std::string data = batch.Serialize(100);
  WriteBatch parsed;
  SequenceNumber first_seq = 0;
  ASSERT_TRUE(WriteBatch::Parse(data, &parsed, &first_seq).ok());
  EXPECT_EQ(first_seq, 100u);
  ASSERT_EQ(parsed.count(), 3u);
  EXPECT_EQ(parsed.ops()[0].type, EntryType::kPut);
  EXPECT_EQ(parsed.ops()[0].key, "a");
  EXPECT_EQ(parsed.ops()[0].value, "1");
  EXPECT_EQ(parsed.ops()[1].type, EntryType::kDelete);
  EXPECT_EQ(parsed.ops()[1].key, "b");
  EXPECT_EQ(parsed.ops()[2].value.size(), 1000u);
}

TEST(WriteBatch, ParseRejectsTrailingGarbage) {
  WriteBatch batch;
  batch.Put("k", "v");
  std::string data = batch.Serialize(1);
  data += "extra";
  WriteBatch parsed;
  SequenceNumber seq = 0;
  EXPECT_TRUE(WriteBatch::Parse(data, &parsed, &seq).IsCorruption());
}

TEST(WriteBatch, ParseRejectsTruncation) {
  WriteBatch batch;
  batch.Put("key", "value");
  batch.Delete("other");
  const std::string data = batch.Serialize(1);
  for (std::size_t cut = 1; cut < data.size(); ++cut) {
    WriteBatch parsed;
    SequenceNumber seq = 0;
    EXPECT_FALSE(
        WriteBatch::Parse(data.substr(0, data.size() - cut), &parsed, &seq)
            .ok())
        << "cut=" << cut;
  }
}

TEST(WriteBatch, ClearResets) {
  WriteBatch batch;
  batch.Put("a", "b");
  EXPECT_FALSE(batch.empty());
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.count(), 0u);
}

}  // namespace
}  // namespace strata::kv
