#include "kvstore/memtable.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

namespace strata::kv {
namespace {

TEST(MemTable, PutThenGet) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "key", "value");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("key", 10, &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "value");
}

TEST(MemTable, MissingKeyNotFound) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "key", "value");
  std::string value;
  bool deleted = false;
  EXPECT_FALSE(mem.Get("other", 10, &value, &deleted));
}

TEST(MemTable, SnapshotHidesNewerVersions) {
  MemTable mem;
  mem.Add(5, EntryType::kPut, "k", "v5");
  mem.Add(10, EntryType::kPut, "k", "v10");
  std::string value;
  bool deleted = false;

  ASSERT_TRUE(mem.Get("k", 20, &value, &deleted));
  EXPECT_EQ(value, "v10");

  ASSERT_TRUE(mem.Get("k", 7, &value, &deleted));
  EXPECT_EQ(value, "v5");

  EXPECT_FALSE(mem.Get("k", 4, &value, &deleted));  // before first write
}

TEST(MemTable, TombstoneReported) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "k", "v");
  mem.Add(2, EntryType::kDelete, "k", "");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("k", 10, &value, &deleted));
  EXPECT_TRUE(deleted);
  // At snapshot 1 the put is still visible.
  ASSERT_TRUE(mem.Get("k", 1, &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "v");
}

TEST(MemTable, EmptyValueAllowed) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "k", "");
  std::string value = "sentinel";
  bool deleted = false;
  ASSERT_TRUE(mem.Get("k", 1, &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_TRUE(value.empty());
}

TEST(MemTable, LargeValues) {
  MemTable mem;
  const std::string big(1 << 20, 'x');
  mem.Add(1, EntryType::kPut, "big", big);
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("big", 1, &value, &deleted));
  EXPECT_EQ(value, big);
  EXPECT_GE(mem.ApproximateBytes(), big.size());
}

TEST(MemTable, IteratorSortedByUserKeyThenSequenceDesc) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "b", "b1");
  mem.Add(2, EntryType::kPut, "a", "a2");
  mem.Add(3, EntryType::kPut, "b", "b3");

  auto it = mem.NewIterator();
  std::vector<std::pair<std::string, SequenceNumber>> seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(it->key(), &parsed));
    seen.emplace_back(std::string(parsed.user_key), parsed.sequence);
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, SequenceNumber>{"a", 2}));
  EXPECT_EQ(seen[1], (std::pair<std::string, SequenceNumber>{"b", 3}));
  EXPECT_EQ(seen[2], (std::pair<std::string, SequenceNumber>{"b", 1}));
}

TEST(MemTable, IteratorSeek) {
  MemTable mem;
  mem.Add(1, EntryType::kPut, "apple", "1");
  mem.Add(2, EntryType::kPut, "cherry", "2");

  auto it = mem.NewIterator();
  it->Seek(MakeInternalKey("banana", kMaxSequenceNumber, EntryType::kPut));
  ASSERT_TRUE(it->Valid());
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(it->key(), &parsed));
  EXPECT_EQ(parsed.user_key, "cherry");
}

TEST(MemTable, RandomizedAgainstModel) {
  MemTable mem;
  // Model: user key -> sorted map of (sequence -> (type, value)).
  std::map<std::string, std::map<SequenceNumber, std::pair<EntryType, std::string>>>
      model;
  Rng rng(99);
  SequenceNumber seq = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "key" + std::to_string(rng.UniformInt(0, 200));
    ++seq;
    if (rng.Bernoulli(0.2)) {
      mem.Add(seq, EntryType::kDelete, key, "");
      model[key][seq] = {EntryType::kDelete, ""};
    } else {
      const std::string value = "v" + std::to_string(seq);
      mem.Add(seq, EntryType::kPut, key, value);
      model[key][seq] = {EntryType::kPut, value};
    }
  }

  // Check visibility at several snapshots.
  for (const SequenceNumber snapshot : {seq / 4, seq / 2, seq}) {
    for (const auto& [key, versions] : model) {
      auto it = versions.upper_bound(snapshot);
      std::string value;
      bool deleted = false;
      const bool found = mem.Get(key, snapshot, &value, &deleted);
      if (it == versions.begin()) {
        EXPECT_FALSE(found) << key << "@" << snapshot;
      } else {
        --it;
        ASSERT_TRUE(found) << key << "@" << snapshot;
        if (it->second.first == EntryType::kDelete) {
          EXPECT_TRUE(deleted);
        } else {
          EXPECT_FALSE(deleted);
          EXPECT_EQ(value, it->second.second);
        }
      }
    }
  }
}

}  // namespace
}  // namespace strata::kv
