#include "kvstore/sstable.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/fs.hpp"
#include "common/rng.hpp"

namespace strata::kv {
namespace {

class SSTableTest : public ::testing::Test {
 protected:
  strata::fs::ScopedTempDir dir_{"sst-test"};
  std::filesystem::path TablePath() const { return dir_.path() / "t.sst"; }

  /// Build a table from (user_key -> value) with sequence 1..n in key order.
  std::shared_ptr<Table> BuildTable(
      const std::map<std::string, std::string>& entries,
      std::size_t block_size = 256) {
    TableBuilder builder(block_size);
    SequenceNumber seq = 1;
    for (const auto& [key, value] : entries) {
      builder.Add(MakeInternalKey(key, seq++, EntryType::kPut), value);
    }
    FileMeta meta;
    EXPECT_TRUE(builder.Finish(TablePath(), &meta).ok());
    auto table = Table::Open(TablePath());
    EXPECT_TRUE(table.ok());
    return std::move(table).value();
  }
};

TEST_F(SSTableTest, PointLookups) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 1000; ++i) {
    entries["key-" + std::to_string(10'000 + i)] = "value-" + std::to_string(i);
  }
  auto table = BuildTable(entries);
  EXPECT_EQ(table->entry_count(), 1000u);

  for (const auto& [key, value] : entries) {
    std::string got;
    bool deleted = false;
    Status error;
    ASSERT_TRUE(table->Get(key, kMaxSequenceNumber, &got, &deleted, &error))
        << key;
    EXPECT_TRUE(error.ok());
    EXPECT_FALSE(deleted);
    EXPECT_EQ(got, value);
  }
}

TEST_F(SSTableTest, MissingKeysNotFound) {
  std::map<std::string, std::string> entries{{"b", "1"}, {"d", "2"}};
  auto table = BuildTable(entries);
  for (const char* key : {"a", "c", "e"}) {
    std::string got;
    bool deleted = false;
    Status error;
    EXPECT_FALSE(table->Get(key, kMaxSequenceNumber, &got, &deleted, &error));
    EXPECT_TRUE(error.ok());
  }
}

TEST_F(SSTableTest, SnapshotVisibility) {
  TableBuilder builder(256);
  // Newest first within a user key (internal key order).
  builder.Add(MakeInternalKey("k", 10, EntryType::kPut), "v10");
  builder.Add(MakeInternalKey("k", 5, EntryType::kPut), "v5");
  FileMeta meta;
  ASSERT_TRUE(builder.Finish(TablePath(), &meta).ok());
  auto table_result = Table::Open(TablePath());
  ASSERT_TRUE(table_result.ok());
  auto table = std::move(table_result).value();

  std::string got;
  bool deleted = false;
  Status error;
  ASSERT_TRUE(table->Get("k", 20, &got, &deleted, &error));
  EXPECT_EQ(got, "v10");
  ASSERT_TRUE(table->Get("k", 7, &got, &deleted, &error));
  EXPECT_EQ(got, "v5");
  EXPECT_FALSE(table->Get("k", 3, &got, &deleted, &error));
}

TEST_F(SSTableTest, TombstoneVisible) {
  TableBuilder builder(256);
  builder.Add(MakeInternalKey("k", 10, EntryType::kDelete), "");
  builder.Add(MakeInternalKey("k", 5, EntryType::kPut), "v5");
  FileMeta meta;
  ASSERT_TRUE(builder.Finish(TablePath(), &meta).ok());
  auto table = std::move(Table::Open(TablePath())).value();

  std::string got;
  bool deleted = false;
  Status error;
  ASSERT_TRUE(table->Get("k", 20, &got, &deleted, &error));
  EXPECT_TRUE(deleted);
}

TEST_F(SSTableTest, IteratorFullScanIsSorted) {
  std::map<std::string, std::string> entries;
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    entries["k" + std::to_string(rng.UniformInt(0, 1'000'000'000))] =
        std::to_string(i);
  }
  auto table = BuildTable(entries);

  auto it = table->NewIterator();
  auto expected = entries.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(ExtractUserKey(it->key()), expected->first);
    EXPECT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(SSTableTest, IteratorSeek) {
  std::map<std::string, std::string> entries{
      {"apple", "1"}, {"banana", "2"}, {"cherry", "3"}};
  auto table = BuildTable(entries);
  auto it = table->NewIterator();
  it->Seek(MakeInternalKey("b", kMaxSequenceNumber, EntryType::kPut));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()), "banana");
  it->Seek(MakeInternalKey("zebra", kMaxSequenceNumber, EntryType::kPut));
  EXPECT_FALSE(it->Valid());
}

TEST_F(SSTableTest, FileMetaBounds) {
  TableBuilder builder(256);
  const std::string first = MakeInternalKey("aaa", 1, EntryType::kPut);
  const std::string last = MakeInternalKey("zzz", 2, EntryType::kPut);
  builder.Add(first, "1");
  builder.Add(last, "2");
  FileMeta meta;
  ASSERT_TRUE(builder.Finish(TablePath(), &meta).ok());
  EXPECT_EQ(meta.smallest, first);
  EXPECT_EQ(meta.largest, last);
  EXPECT_EQ(meta.entry_count, 2u);
  EXPECT_EQ(meta.file_size, std::filesystem::file_size(TablePath()));
}

TEST_F(SSTableTest, CorruptBlockDetected) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; ++i) {
    entries["key-" + std::to_string(1000 + i)] = std::string(50, 'v');
  }
  {
    auto table = BuildTable(entries);
  }
  // Flip a byte early in the file (inside the first data block).
  auto contents = strata::fs::ReadFile(TablePath());
  ASSERT_TRUE(contents.ok());
  std::string data = std::move(contents).value();
  data[20] = static_cast<char>(data[20] ^ 0xff);
  ASSERT_TRUE(strata::fs::WriteFile(TablePath(), data).ok());

  // Open re-validates all blocks and must fail.
  EXPECT_FALSE(Table::Open(TablePath()).ok());
}

TEST_F(SSTableTest, BadMagicRejected) {
  std::map<std::string, std::string> entries{{"k", "v"}};
  { auto table = BuildTable(entries); }
  auto contents = strata::fs::ReadFile(TablePath());
  ASSERT_TRUE(contents.ok());
  std::string data = std::move(contents).value();
  data[data.size() - 1] = static_cast<char>(data[data.size() - 1] ^ 0xff);
  ASSERT_TRUE(strata::fs::WriteFile(TablePath(), data).ok());
  auto result = Table::Open(TablePath());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(SSTableTest, TruncatedFileRejected) {
  ASSERT_TRUE(strata::fs::WriteFile(TablePath(), "tiny").ok());
  EXPECT_FALSE(Table::Open(TablePath()).ok());
}

TEST_F(SSTableTest, ManyBlocksSmallBlockSize) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; ++i) {
    entries["key-" + std::to_string(10'000 + i)] = std::string(100, 'x');
  }
  auto table = BuildTable(entries, /*block_size=*/128);
  EXPECT_EQ(table->entry_count(), 500u);
  std::string got;
  bool deleted = false;
  Status error;
  EXPECT_TRUE(
      table->Get("key-10250", kMaxSequenceNumber, &got, &deleted, &error));
}

}  // namespace
}  // namespace strata::kv
