// Failure injection for the LSM store: corrupted manifests, corrupted or
// missing table files, and stale artifacts must surface as clean errors on
// open — never as silent data loss or crashes.
#include <gtest/gtest.h>

#include "common/fs.hpp"
#include "kvstore/db.hpp"

namespace strata::kv {
namespace {

class DbFaultTest : public ::testing::Test {
 protected:
  strata::fs::ScopedTempDir dir_{"db-fault"};

  void PopulateAndClose(int keys = 200) {
    auto db = std::move(DB::Open(dir_.path())).value();
    for (int i = 0; i < keys; ++i) {
      db->Put("key" + std::to_string(i), "value" + std::to_string(i)).OrDie();
    }
    db->Flush().OrDie();
  }

  std::filesystem::path FindFile(const std::string& extension) {
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_.path())) {
      if (entry.path().extension() == extension) return entry.path();
    }
    return {};
  }
};

TEST_F(DbFaultTest, CorruptManifestFailsOpen) {
  PopulateAndClose();
  const auto manifest = dir_.path() / "MANIFEST";
  ASSERT_TRUE(std::filesystem::exists(manifest));
  auto contents = std::move(strata::fs::ReadFile(manifest)).value();
  contents[10] = static_cast<char>(contents[10] ^ 0xff);
  strata::fs::WriteFile(manifest, contents).OrDie();

  auto reopened = DB::Open(dir_.path());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(DbFaultTest, TruncatedManifestFailsOpen) {
  PopulateAndClose();
  const auto manifest = dir_.path() / "MANIFEST";
  std::filesystem::resize_file(manifest, 3);
  EXPECT_FALSE(DB::Open(dir_.path()).ok());
}

TEST_F(DbFaultTest, MissingTableFileFailsOpen) {
  PopulateAndClose();
  const auto table = FindFile(".sst");
  ASSERT_FALSE(table.empty());
  std::filesystem::remove(table);
  EXPECT_FALSE(DB::Open(dir_.path()).ok());
}

TEST_F(DbFaultTest, CorruptTableFileFailsOpen) {
  PopulateAndClose();
  const auto table = FindFile(".sst");
  ASSERT_FALSE(table.empty());
  auto contents = std::move(strata::fs::ReadFile(table)).value();
  contents[contents.size() / 2] =
      static_cast<char>(contents[contents.size() / 2] ^ 0xff);
  strata::fs::WriteFile(table, contents).OrDie();
  EXPECT_FALSE(DB::Open(dir_.path()).ok());
}

TEST_F(DbFaultTest, TornWalTailLosesOnlyLastRecord) {
  {
    auto db = std::move(DB::Open(dir_.path())).value();
    db->Put("durable", "yes").OrDie();
    db->Put("torn", "maybe").OrDie();
  }
  // Chop bytes off the newest WAL to emulate a crash mid-append. The clean
  // close flushed the memtable, so corrupt the *table-covered* WAL is gone;
  // instead simulate a crash BEFORE flush: write without closing.
  strata::fs::ScopedTempDir crash_dir("db-crash");
  {
    auto db = std::move(DB::Open(crash_dir.path())).value();
    db->Put("durable", "yes").OrDie();
    db->Put("torn", "maybe").OrDie();
    // Find the live WAL and truncate its tail while the DB is still open
    // (simulating the page cache losing the last record).
    for (const auto& entry :
         std::filesystem::directory_iterator(crash_dir.path())) {
      if (entry.path().extension() == ".wal" &&
          std::filesystem::file_size(entry.path()) > 4) {
        std::filesystem::resize_file(entry.path(),
                                     std::filesystem::file_size(entry.path()) -
                                         3);
      }
    }
    // Abandon without clean close semantics: release the object. The
    // destructor will flush, but recovery below reads the WAL we truncated
    // only if the flush-on-close did not supersede it; either way the DB
    // must reopen cleanly.
  }
  auto reopened = DB::Open(crash_dir.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->Get("durable").ok());
}

/// Write 10 keys, then hard-kill: snapshot the directory while the DB is
/// live (a clean close would flush the memtable and supersede the WAL) and
/// flip one byte ~25% into the live WAL of the snapshot. The result is a
/// crash image whose log has a fully-present record failing its CRC.
std::filesystem::path MakeCorruptWalImage(const std::filesystem::path& base) {
  const auto image = base / "db";
  strata::fs::ScopedTempDir live("db-live");
  auto db = std::move(DB::Open(live.path())).value();
  for (int i = 0; i < 10; ++i) {
    db->Put("key" + std::to_string(i), "value" + std::to_string(i)).OrDie();
  }
  std::filesystem::copy(live.path(), image,
                        std::filesystem::copy_options::recursive);
  std::filesystem::path wal;
  for (const auto& entry : std::filesystem::directory_iterator(image)) {
    if (entry.path().extension() == ".wal" &&
        std::filesystem::file_size(entry.path()) > 40) {
      wal = entry.path();
    }
  }
  if (wal.empty()) return {};
  auto contents = std::move(strata::fs::ReadFile(wal)).value();
  // Flip a byte near the end: it lands in the LAST record's payload (each
  // record's payload is > 15 bytes), so the record is fully present but
  // fails its CRC — Corruption, never mistakable for a torn tail.
  const std::size_t at = contents.size() - 15;
  contents[at] = static_cast<char>(contents[at] ^ 0xff);
  strata::fs::WriteFile(wal, contents).OrDie();
  return image;
}

TEST_F(DbFaultTest, MidLogWalCorruptionWarnsAndTruncatesByDefault) {
  // Unlike a torn tail, a fully-present record failing its CRC is real
  // corruption and may hide acknowledged data — but the default policy
  // recovers what it can: truncate at the damage, count it, warn.
  const auto image = MakeCorruptWalImage(dir_.path());
  ASSERT_FALSE(image.empty());

  auto reopened = DB::Open(image);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE((*reopened)->stats().wal_corruptions, 1u);
  // Keys before the corrupted record survive; later ones are gone.
  EXPECT_TRUE((*reopened)->Get("key0").ok());
  EXPECT_FALSE((*reopened)->Get("key9").ok());
}

TEST_F(DbFaultTest, StrictWalRecoveryRefusesMidLogCorruption) {
  const auto image = MakeCorruptWalImage(dir_.path());
  ASSERT_FALSE(image.empty());

  DbOptions strict;
  strict.strict_wal_recovery = true;
  auto reopened = DB::Open(image, strict);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(DbFaultTest, StrictWalRecoveryStillToleratesTornTail) {
  // A torn tail is the normal crash artifact, not corruption: strict mode
  // must accept it.
  strata::fs::ScopedTempDir torn_base("db-strict-torn");
  const auto image = torn_base.path() / "db";
  {
    strata::fs::ScopedTempDir live("db-torn-live");
    auto db = std::move(DB::Open(live.path())).value();
    db->Put("durable", "yes").OrDie();
    db->Put("torn", "maybe").OrDie();
    std::filesystem::copy(live.path(), image,
                          std::filesystem::copy_options::recursive);
    for (const auto& entry : std::filesystem::directory_iterator(image)) {
      if (entry.path().extension() == ".wal" &&
          std::filesystem::file_size(entry.path()) > 4) {
        std::filesystem::resize_file(
            entry.path(), std::filesystem::file_size(entry.path()) - 3);
      }
    }
  }
  DbOptions strict;
  strict.strict_wal_recovery = true;
  auto torn_open = DB::Open(image, strict);
  ASSERT_TRUE(torn_open.ok()) << torn_open.status().ToString();
  EXPECT_TRUE((*torn_open)->Get("durable").ok());
  EXPECT_EQ((*torn_open)->stats().wal_corruptions, 0u);
}

TEST_F(DbFaultTest, StaleWalFromOldIncarnationIgnored) {
  PopulateAndClose();
  // Drop a bogus ancient WAL below the manifest's log number.
  strata::fs::WriteFile(dir_.path() / "00000000.wal", "garbage").OrDie();
  auto reopened = DB::Open(dir_.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(*(*reopened)->Get("key0"), "value0");
}

TEST_F(DbFaultTest, UnknownFilesAreLeftAlone) {
  PopulateAndClose();
  strata::fs::WriteFile(dir_.path() / "NOTES.txt", "operator notes").OrDie();
  auto reopened = DB::Open(dir_.path());
  ASSERT_TRUE(reopened.ok());
  reopened->reset();
  EXPECT_TRUE(std::filesystem::exists(dir_.path() / "NOTES.txt"));
}

TEST_F(DbFaultTest, RecoveryAfterHardKillPreservesFlushedData) {
  // Emulate a hard kill: copy the directory mid-life, then open the copy.
  PopulateAndClose(500);
  strata::fs::ScopedTempDir snapshot("db-snap");
  std::filesystem::copy(dir_.path(), snapshot.path() / "db",
                        std::filesystem::copy_options::recursive);
  auto db = DB::Open(snapshot.path() / "db");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(*(*db)->Get("key" + std::to_string(i)),
              "value" + std::to_string(i));
  }
}

}  // namespace
}  // namespace strata::kv
