#include "kvstore/format.hpp"

#include <gtest/gtest.h>

namespace strata::kv {
namespace {

TEST(InternalKey, RoundTrip) {
  const std::string ikey = MakeInternalKey("user-key", 42, EntryType::kPut);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_EQ(parsed.user_key, "user-key");
  EXPECT_EQ(parsed.sequence, 42u);
  EXPECT_EQ(parsed.type, EntryType::kPut);
}

TEST(InternalKey, TombstoneRoundTrip) {
  const std::string ikey = MakeInternalKey("k", 7, EntryType::kDelete);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_EQ(parsed.type, EntryType::kDelete);
}

TEST(InternalKey, EmptyUserKey) {
  const std::string ikey = MakeInternalKey("", 1, EntryType::kPut);
  EXPECT_EQ(ikey.size(), 8u);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_TRUE(parsed.user_key.empty());
}

TEST(InternalKey, ParseRejectsShortBuffer) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey("short", &parsed));
}

TEST(InternalKey, ParseRejectsBadType) {
  std::string ikey = MakeInternalKey("k", 1, EntryType::kPut);
  ikey[ikey.size() - 8] = 0x7f;  // low byte of the tag = type
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(ikey, &parsed));
}

TEST(InternalKey, MaxSequencePreserved) {
  const std::string ikey =
      MakeInternalKey("k", kMaxSequenceNumber, EntryType::kPut);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_EQ(parsed.sequence, kMaxSequenceNumber);
}

TEST(InternalKeyComparator, OrdersByUserKeyAscending) {
  InternalKeyComparator cmp;
  const std::string a = MakeInternalKey("aaa", 5, EntryType::kPut);
  const std::string b = MakeInternalKey("bbb", 5, EntryType::kPut);
  EXPECT_LT(cmp.Compare(a, b), 0);
  EXPECT_GT(cmp.Compare(b, a), 0);
}

TEST(InternalKeyComparator, NewerSequenceSortsFirst) {
  InternalKeyComparator cmp;
  const std::string newer = MakeInternalKey("k", 10, EntryType::kPut);
  const std::string older = MakeInternalKey("k", 5, EntryType::kPut);
  EXPECT_LT(cmp.Compare(newer, older), 0);
}

TEST(InternalKeyComparator, PutSortsBeforeDeleteAtSameSequence) {
  // Put (type 1) has the higher tag, so it sorts first (descending tag).
  InternalKeyComparator cmp;
  const std::string put = MakeInternalKey("k", 5, EntryType::kPut);
  const std::string del = MakeInternalKey("k", 5, EntryType::kDelete);
  EXPECT_LT(cmp.Compare(put, del), 0);
}

TEST(InternalKeyComparator, EqualKeysCompareZero) {
  InternalKeyComparator cmp;
  const std::string a = MakeInternalKey("k", 5, EntryType::kPut);
  EXPECT_EQ(cmp.Compare(a, a), 0);
}

TEST(InternalKeyComparator, PrefixKeysOrderCorrectly) {
  InternalKeyComparator cmp;
  const std::string shorter = MakeInternalKey("ab", 1, EntryType::kPut);
  const std::string longer = MakeInternalKey("abc", 99, EntryType::kPut);
  EXPECT_LT(cmp.Compare(shorter, longer), 0);
}

TEST(ExtractUserKey, StripsTag) {
  const std::string ikey = MakeInternalKey("hello", 123, EntryType::kPut);
  EXPECT_EQ(ExtractUserKey(ikey), "hello");
}

}  // namespace
}  // namespace strata::kv
