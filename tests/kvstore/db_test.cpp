#include "kvstore/db.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/fs.hpp"

namespace strata::kv {
namespace {

class DbTest : public ::testing::Test {
 protected:
  strata::fs::ScopedTempDir dir_{"db-test"};

  std::unique_ptr<DB> OpenDb(DbOptions options = {}) {
    auto db = DB::Open(dir_.path(), options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }
};

TEST_F(DbTest, PutGetDelete) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "v").ok());
  auto got = db->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");

  ASSERT_TRUE(db->Delete("k").ok());
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
}

TEST_F(DbTest, GetMissingIsNotFound) {
  auto db = OpenDb();
  EXPECT_TRUE(db->Get("nope").status().IsNotFound());
}

TEST_F(DbTest, OverwriteReturnsLatest) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "v1").ok());
  ASSERT_TRUE(db->Put("k", "v2").ok());
  EXPECT_EQ(*db->Get("k"), "v2");
}

TEST_F(DbTest, WriteBatchIsAtomicallyVisible) {
  auto db = OpenDb();
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(db->Write(batch).ok());
  EXPECT_TRUE(db->Get("a").status().IsNotFound());
  EXPECT_EQ(*db->Get("b"), "2");
}

TEST_F(DbTest, SnapshotIsolation) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "old").ok());
  const SequenceNumber snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("k", "new").ok());

  auto at_snap = db->Get("k", snap);
  ASSERT_TRUE(at_snap.ok());
  EXPECT_EQ(*at_snap, "old");
  EXPECT_EQ(*db->Get("k"), "new");
  db->ReleaseSnapshot(snap);
}

TEST_F(DbTest, SnapshotSeesDeletesCorrectly) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "v").ok());
  const SequenceNumber snap = db->GetSnapshot();
  ASSERT_TRUE(db->Delete("k").ok());
  EXPECT_EQ(*db->Get("k", snap), "v");
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
  db->ReleaseSnapshot(snap);
}

TEST_F(DbTest, FlushPersistsToTable) {
  auto db = OpenDb();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_GE(db->stats().flushes, 1u);
  EXPECT_GE(db->stats().live_tables, 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*db->Get("k" + std::to_string(i)), "v" + std::to_string(i));
  }
}

TEST_F(DbTest, GetReadsAcrossMemtableAndTables) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("flushed", "table-value").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put("fresh", "mem-value").ok());
  EXPECT_EQ(*db->Get("flushed"), "table-value");
  EXPECT_EQ(*db->Get("fresh"), "mem-value");
}

TEST_F(DbTest, NewerTableShadowsOlder) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "old").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put("k", "new").ok());
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(*db->Get("k"), "new");
}

TEST_F(DbTest, RecoveryFromWalAfterReopen) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("persist", "me").ok());
    ASSERT_TRUE(db->Put("and", "me-too").ok());
  }  // destructor = clean close
  auto db = OpenDb();
  EXPECT_EQ(*db->Get("persist"), "me");
  EXPECT_EQ(*db->Get("and"), "me-too");
}

TEST_F(DbTest, RecoveryPreservesDeletes) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("k", "v").ok());
    ASSERT_TRUE(db->Delete("k").ok());
  }
  auto db = OpenDb();
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
}

TEST_F(DbTest, RecoveryAfterFlushAndMoreWrites) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("a", "1").ok());
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->Put("b", "2").ok());
  }
  auto db = OpenDb();
  EXPECT_EQ(*db->Get("a"), "1");
  EXPECT_EQ(*db->Get("b"), "2");
}

TEST_F(DbTest, SequenceNumbersMonotonicAcrossReopen) {
  SequenceNumber before;
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("x", "1").ok());
    before = db->LastSequence();
  }
  auto db = OpenDb();
  EXPECT_GE(db->LastSequence(), before);
  ASSERT_TRUE(db->Put("y", "2").ok());
  EXPECT_GT(db->LastSequence(), before);
}

TEST_F(DbTest, AutomaticFlushWhenBufferFull) {
  DbOptions options;
  options.write_buffer_bytes = 16 * 1024;
  auto db = OpenDb(options);
  const std::string big_value(1024, 'v');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), big_value).ok());
  }
  // Give the background thread a moment; then everything must still be
  // readable regardless of which layer holds it.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*db->Get("key" + std::to_string(i)), big_value);
  }
  EXPECT_GE(db->stats().flushes, 1u);
}

TEST_F(DbTest, CompactionMergesTables) {
  DbOptions options;
  options.compaction_trigger = 100;  // only manual compaction
  auto db = OpenDb(options);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          db->Put("k" + std::to_string(i), "r" + std::to_string(round)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  EXPECT_GE(db->stats().live_tables, 5u);
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->stats().live_tables, 1u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*db->Get("k" + std::to_string(i)), "r4");
  }
}

TEST_F(DbTest, CompactionDropsTombstones) {
  DbOptions options;
  options.compaction_trigger = 100;
  auto db = OpenDb(options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Delete("k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());
  // All entries were deleted and no snapshot pins them: the merged table
  // should be empty or absent.
  EXPECT_LE(db->stats().live_tables, 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(db->Get("k" + std::to_string(i)).status().IsNotFound());
  }
}

TEST_F(DbTest, CompactionRespectsSnapshots) {
  DbOptions options;
  options.compaction_trigger = 100;
  auto db = OpenDb(options);
  ASSERT_TRUE(db->Put("k", "old").ok());
  const SequenceNumber snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("k", "new").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put("other", "x").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());

  EXPECT_EQ(*db->Get("k", snap), "old");
  EXPECT_EQ(*db->Get("k"), "new");
  db->ReleaseSnapshot(snap);
}

TEST_F(DbTest, IteratorScansSortedAndDeduplicated) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("b", "2").ok());
  ASSERT_TRUE(db->Put("a", "1").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put("c", "3").ok());
  ASSERT_TRUE(db->Put("a", "1-updated").ok());
  ASSERT_TRUE(db->Delete("b").ok());

  auto it = db->NewIterator();
  std::vector<std::pair<std::string, std::string>> seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen.emplace_back(std::string(it->key()), std::string(it->value()));
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::string>{"a", "1-updated"}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::string>{"c", "3"}));
}

TEST_F(DbTest, IteratorSeekPositions) {
  auto db = OpenDb();
  for (const char* k : {"apple", "banana", "cherry"}) {
    ASSERT_TRUE(db->Put(k, k).ok());
  }
  auto it = db->NewIterator();
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "banana");
  it->Seek("cherry");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "cherry");
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

TEST_F(DbTest, IteratorAtSnapshotIgnoresLaterWrites) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("a", "1").ok());
  const SequenceNumber snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("b", "2").ok());
  ASSERT_TRUE(db->Put("a", "1b").ok());

  auto it = db->NewIterator(snap);
  std::vector<std::pair<std::string, std::string>> seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen.emplace_back(std::string(it->key()), std::string(it->value()));
  }
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].second, "1");
  db->ReleaseSnapshot(snap);
}

TEST_F(DbTest, EmptyKeyAndValue) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("", "empty-key").ok());
  ASSERT_TRUE(db->Put("empty-value", "").ok());
  EXPECT_EQ(*db->Get(""), "empty-key");
  EXPECT_EQ(*db->Get("empty-value"), "");
}

TEST_F(DbTest, BinaryKeysAndValues) {
  auto db = OpenDb();
  const std::string key("\x00\x01\xff\x7f", 4);
  const std::string value("\xde\xad\x00\xbe\xef", 5);
  ASSERT_TRUE(db->Put(key, value).ok());
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(*db->Get(key), value);
}

TEST_F(DbTest, ConcurrentReadersWithWriter) {
  auto db = OpenDb();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(db->Put("k" + std::to_string(i % 50), std::to_string(i)).ok());
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto result = db->Get("k25");
        if (result.ok()) EXPECT_FALSE(result->empty());
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
}

TEST_F(DbTest, StatsTrackOperations) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("a", "1").ok());
  ASSERT_TRUE(db->Delete("a").ok());
  (void)db->Get("a");
  const DbStats stats = db->stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_GE(stats.gets, 1u);
}

}  // namespace
}  // namespace strata::kv
