#include "clustering/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace strata::cluster {
namespace {

TEST(CylinderMetric, InPlaneRadius) {
  CylinderMetric m{1.0, 0};
  EXPECT_TRUE(m.Near({0, 0, 0}, {1.0, 0, 0}));     // exactly eps
  EXPECT_FALSE(m.Near({0, 0, 0}, {1.001, 0, 0}));  // just outside
  EXPECT_TRUE(m.Near({0, 0, 0}, {0.7, 0.7, 0}));   // sqrt(0.98) < 1
  EXPECT_FALSE(m.Near({0, 0, 0}, {0.8, 0.8, 0}));  // sqrt(1.28) > 1
}

TEST(CylinderMetric, LayerReach) {
  CylinderMetric m{10.0, 2};
  EXPECT_TRUE(m.Near({0, 0, 5}, {0, 0, 7}));
  EXPECT_TRUE(m.Near({0, 0, 5}, {0, 0, 3}));
  EXPECT_FALSE(m.Near({0, 0, 5}, {0, 0, 8}));
  EXPECT_FALSE(m.Near({0, 0, 5}, {0, 0, 2}));
}

TEST(CylinderMetric, IsSymmetric) {
  CylinderMetric m{2.0, 1};
  const Point a{1.5, 0.5, 3};
  const Point b{0.0, 0.0, 4};
  EXPECT_EQ(m.Near(a, b), m.Near(b, a));
}

TEST(GridIndex, NeighborsIncludeSelf) {
  std::vector<Point> points{{0, 0, 0}};
  GridIndex index(points, CylinderMetric{1.0, 1});
  const auto neighbors = index.Neighbors(0);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0], 0u);
}

TEST(GridIndex, MatchesBruteForceOnRandomPoints) {
  Rng rng(7);
  std::vector<Point> points;
  for (int i = 0; i < 800; ++i) {
    points.push_back(Point{rng.Uniform(0, 50), rng.Uniform(0, 50),
                           rng.UniformInt(0, 30), 1.0});
  }
  const CylinderMetric metric{2.5, 3};
  GridIndex index(points, metric);

  for (std::size_t i = 0; i < points.size(); i += 17) {
    std::set<std::size_t> expected;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (metric.Near(points[i], points[j])) expected.insert(j);
    }
    auto got_vec = index.Neighbors(i);
    std::set<std::size_t> got(got_vec.begin(), got_vec.end());
    EXPECT_EQ(got, expected) << "point " << i;
  }
}

TEST(GridIndex, NeighborsOfProbeNotInSet) {
  std::vector<Point> points{{0, 0, 0}, {1, 0, 0}, {10, 10, 0}};
  GridIndex index(points, CylinderMetric{2.0, 0});
  const auto neighbors = index.NeighborsOf(Point{0.5, 0, 0});
  EXPECT_EQ(neighbors.size(), 2u);
}

TEST(GridIndex, NegativeCoordinates) {
  std::vector<Point> points{{-5.5, -3.2, -2}, {-5.0, -3.0, -2}, {5, 3, 2}};
  GridIndex index(points, CylinderMetric{1.0, 1});
  const auto neighbors = index.Neighbors(0);
  EXPECT_EQ(neighbors.size(), 2u);
}

TEST(SummarizeClusters, ComputesBoundsAndCentroids) {
  std::vector<Point> points{
      {0, 0, 1, 2.0}, {2, 2, 3, 1.0},   // cluster 0
      {10, 10, 5, 1.0},                 // cluster 1
      {50, 50, 9, 1.0},                 // noise
  };
  std::vector<int> labels{0, 0, 1, kNoise};
  const auto summaries = SummarizeClusters(points, labels);
  ASSERT_EQ(summaries.size(), 2u);

  const auto& c0 = summaries[0];
  EXPECT_EQ(c0.cluster_id, 0);
  EXPECT_EQ(c0.point_count, 2u);
  EXPECT_DOUBLE_EQ(c0.total_weight, 3.0);
  EXPECT_DOUBLE_EQ(c0.min_x, 0);
  EXPECT_DOUBLE_EQ(c0.max_x, 2);
  EXPECT_EQ(c0.min_layer, 1);
  EXPECT_EQ(c0.max_layer, 3);
  EXPECT_EQ(c0.layer_span(), 3);
  EXPECT_DOUBLE_EQ(c0.centroid_x, 1.0);
  EXPECT_DOUBLE_EQ(c0.centroid_y, 1.0);
}

TEST(SummarizeClusters, EmptyInput) {
  EXPECT_TRUE(SummarizeClusters({}, {}).empty());
}

TEST(SummarizeClusters, AllNoise) {
  std::vector<Point> points{{0, 0, 0}, {1, 1, 1}};
  std::vector<int> labels{kNoise, kNoise};
  EXPECT_TRUE(SummarizeClusters(points, labels).empty());
}

}  // namespace
}  // namespace strata::cluster
