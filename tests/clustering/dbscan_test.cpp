#include "clustering/dbscan.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace strata::cluster {
namespace {

DbscanParams Params(double eps, std::int64_t reach, std::size_t min_pts) {
  return DbscanParams{CylinderMetric{eps, reach}, min_pts};
}

TEST(Dbscan, EmptyInput) {
  const auto result = Dbscan({}, Params(1, 1, 3));
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.cluster_count, 0);
}

TEST(Dbscan, SingleDenseBlobIsOneCluster) {
  Rng rng(1);
  std::vector<Point> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back(Point{rng.Normal(0, 0.5), rng.Normal(0, 0.5), 0, 1.0});
  }
  const auto result = Dbscan(points, Params(1.0, 0, 3));
  EXPECT_EQ(result.cluster_count, 1);
  EXPECT_EQ(result.noise_points, 0u);
  for (const int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(Dbscan, TwoSeparatedBlobsAreTwoClusters) {
  Rng rng(2);
  std::vector<Point> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back(Point{rng.Normal(0, 0.4), rng.Normal(0, 0.4), 0, 1.0});
  }
  for (int i = 0; i < 40; ++i) {
    points.push_back(Point{rng.Normal(20, 0.4), rng.Normal(20, 0.4), 0, 1.0});
  }
  const auto result = Dbscan(points, Params(1.2, 0, 3));
  EXPECT_EQ(result.cluster_count, 2);
  // Membership must respect the blob split.
  std::set<int> first_blob;
  std::set<int> second_blob;
  for (std::size_t i = 0; i < 40; ++i) first_blob.insert(result.labels[i]);
  for (std::size_t i = 40; i < 80; ++i) second_blob.insert(result.labels[i]);
  EXPECT_EQ(first_blob.size(), 1u);
  EXPECT_EQ(second_blob.size(), 1u);
  EXPECT_NE(*first_blob.begin(), *second_blob.begin());
}

TEST(Dbscan, IsolatedPointsAreNoise) {
  std::vector<Point> points{{0, 0, 0}, {100, 100, 0}, {200, 200, 0}};
  const auto result = Dbscan(points, Params(1, 0, 2));
  EXPECT_EQ(result.cluster_count, 0);
  EXPECT_EQ(result.noise_points, 3u);
  for (const int label : result.labels) EXPECT_EQ(label, kNoise);
}

TEST(Dbscan, ChainOfPointsFormsOneArbitraryShapeCluster) {
  // DBSCAN's hallmark vs k-means: elongated shapes stay one cluster.
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back(Point{static_cast<double>(i) * 0.5, 0, 0, 1.0});
  }
  const auto result = Dbscan(points, Params(0.6, 0, 2));
  EXPECT_EQ(result.cluster_count, 1);
  EXPECT_EQ(result.noise_points, 0u);
}

TEST(Dbscan, MinPtsControlsCoreDefinition) {
  // 3 points within eps of each other: with min_pts=4 everything is noise.
  std::vector<Point> points{{0, 0, 0}, {0.5, 0, 0}, {0, 0.5, 0}};
  EXPECT_EQ(Dbscan(points, Params(1, 0, 4)).cluster_count, 0);
  EXPECT_EQ(Dbscan(points, Params(1, 0, 3)).cluster_count, 1);
}

TEST(Dbscan, LayerReachConnectsAcrossLayers) {
  // Same xy position on consecutive layers.
  std::vector<Point> points;
  for (int layer = 0; layer < 10; ++layer) {
    points.push_back(Point{0, 0, layer, 1.0});
  }
  // reach=1 connects the whole column transitively.
  EXPECT_EQ(Dbscan(points, Params(0.5, 1, 2)).cluster_count, 1);
  // reach=0 means layers never connect: every layer is a singleton -> noise.
  const auto flat = Dbscan(points, Params(0.5, 0, 2));
  EXPECT_EQ(flat.cluster_count, 0);
  EXPECT_EQ(flat.noise_points, 10u);
}

TEST(Dbscan, LayerGapBreaksCluster) {
  std::vector<Point> points;
  for (int layer = 0; layer < 5; ++layer) points.push_back(Point{0, 0, layer});
  for (int layer = 10; layer < 15; ++layer) points.push_back(Point{0, 0, layer});
  const auto result = Dbscan(points, Params(0.5, 2, 2));
  EXPECT_EQ(result.cluster_count, 2);
}

TEST(Dbscan, BorderPointJoinsFirstReachingCluster) {
  // A point within eps of a core point but itself not core is a border
  // point: labeled, not noise.
  std::vector<Point> points{
      {0, 0, 0}, {0.3, 0, 0}, {0.6, 0, 0},  // dense core
      {1.4, 0, 0},                          // border: near the core only
  };
  const auto result = Dbscan(points, Params(0.9, 0, 3));
  EXPECT_EQ(result.cluster_count, 1);
  EXPECT_EQ(result.labels[3], 0);
  EXPECT_EQ(result.noise_points, 0u);
}

TEST(Dbscan, ClusterIdsAreDense) {
  Rng rng(3);
  std::vector<Point> points;
  for (int blob = 0; blob < 5; ++blob) {
    for (int i = 0; i < 20; ++i) {
      points.push_back(Point{blob * 50 + rng.Normal(0, 0.5),
                             rng.Normal(0, 0.5), 0, 1.0});
    }
  }
  const auto result = Dbscan(points, Params(1.5, 0, 3));
  EXPECT_EQ(result.cluster_count, 5);
  std::set<int> ids(result.labels.begin(), result.labels.end());
  for (int c = 0; c < 5; ++c) EXPECT_TRUE(ids.contains(c));
}

TEST(Dbscan, CoreCountPlusNoiseConsistent) {
  Rng rng(4);
  std::vector<Point> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(
        Point{rng.Uniform(0, 30), rng.Uniform(0, 30), rng.UniformInt(0, 5)});
  }
  const auto result = Dbscan(points, Params(2.0, 1, 4));
  EXPECT_LE(result.core_points + result.noise_points, points.size());
  std::size_t noise = 0;
  for (const int label : result.labels) {
    EXPECT_NE(label, kUnclassified) << "all points must be classified";
    if (label == kNoise) ++noise;
  }
  EXPECT_EQ(noise, result.noise_points);
}

}  // namespace
}  // namespace strata::cluster
