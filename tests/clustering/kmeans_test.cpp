#include "clustering/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace strata::cluster {
namespace {

std::vector<Point> ThreeBlobs(Rng& rng, int per_blob) {
  std::vector<Point> points;
  const double centers[3][2] = {{0, 0}, {30, 0}, {0, 30}};
  for (const auto& c : centers) {
    for (int i = 0; i < per_blob; ++i) {
      points.push_back(
          Point{c[0] + rng.Normal(0, 1), c[1] + rng.Normal(0, 1), 0, 1.0});
    }
  }
  return points;
}

TEST(KMeans, EmptyInput) {
  const auto result = KMeans({}, {.k = 3});
  EXPECT_TRUE(result.labels.empty());
  EXPECT_TRUE(result.centroids.empty());
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(5);
  const auto points = ThreeBlobs(rng, 50);
  const auto result = KMeans(points, {.k = 3, .max_iterations = 100});

  ASSERT_EQ(result.labels.size(), points.size());
  // Each blob should map to a single k-means cluster.
  for (int blob = 0; blob < 3; ++blob) {
    std::set<int> labels;
    for (int i = 0; i < 50; ++i) {
      labels.insert(result.labels[static_cast<std::size_t>(blob * 50 + i)]);
    }
    EXPECT_EQ(labels.size(), 1u) << "blob " << blob << " split";
  }
}

TEST(KMeans, KClampedToPointCount) {
  std::vector<Point> points{{0, 0, 0}, {1, 1, 0}};
  const auto result = KMeans(points, {.k = 10});
  EXPECT_LE(result.centroids.size(), 2u);
  for (const int label : result.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(result.centroids.size()));
  }
}

TEST(KMeans, EveryPointAssigned) {
  Rng rng(6);
  const auto points = ThreeBlobs(rng, 30);
  const auto result = KMeans(points, {.k = 5});
  EXPECT_EQ(result.labels.size(), points.size());
  for (const int label : result.labels) {
    EXPECT_GE(label, 0);  // k-means has no noise concept
    EXPECT_LT(label, 5);
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(7);
  const auto points = ThreeBlobs(rng, 40);
  const double inertia1 = KMeans(points, {.k = 1, .seed = 1}).inertia;
  const double inertia3 = KMeans(points, {.k = 3, .seed = 1}).inertia;
  const double inertia9 = KMeans(points, {.k = 9, .seed = 1}).inertia;
  EXPECT_GT(inertia1, inertia3);
  EXPECT_GE(inertia3, inertia9);
}

TEST(KMeans, DeterministicForFixedSeed) {
  Rng rng(8);
  const auto points = ThreeBlobs(rng, 30);
  const auto a = KMeans(points, {.k = 3, .seed = 99});
  const auto b = KMeans(points, {.k = 3, .seed = 99});
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeans, LayerScaleSeparatesLayers) {
  // Two stacks at the same xy but distant layers: with a large layer scale
  // they must split into two clusters.
  std::vector<Point> points;
  for (int i = 0; i < 20; ++i) points.push_back(Point{0, 0, 0, 1.0});
  for (int i = 0; i < 20; ++i) points.push_back(Point{0, 0, 100, 1.0});
  const auto result = KMeans(points, {.k = 2, .layer_scale = 1.0, .seed = 3});
  std::set<int> low;
  std::set<int> high;
  for (int i = 0; i < 20; ++i) low.insert(result.labels[static_cast<std::size_t>(i)]);
  for (int i = 20; i < 40; ++i) high.insert(result.labels[static_cast<std::size_t>(i)]);
  EXPECT_EQ(low.size(), 1u);
  EXPECT_EQ(high.size(), 1u);
  EXPECT_NE(*low.begin(), *high.begin());
}

TEST(KMeans, IdenticalPointsHandled) {
  std::vector<Point> points(10, Point{5, 5, 1, 1.0});
  const auto result = KMeans(points, {.k = 3});
  EXPECT_EQ(result.labels.size(), 10u);
  EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

}  // namespace
}  // namespace strata::cluster
