#include "clustering/layered.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace strata::cluster {
namespace {

LayeredClusterParams SmallParams() {
  LayeredClusterParams p;
  p.eps_xy = 1.5;
  p.layer_reach = 2;
  p.min_pts = 3;
  p.window_layers = 5;
  p.min_report_points = 4;
  return p;
}

std::vector<Point> Blob(Rng& rng, double cx, double cy, int n,
                        double spread = 0.4) {
  std::vector<Point> points;
  for (int i = 0; i < n; ++i) {
    points.push_back(
        Point{cx + rng.Normal(0, spread), cy + rng.Normal(0, spread), 0, 1.0});
  }
  return points;
}

TEST(LayeredClusterer, EmptyWindowClustersToNothing) {
  LayeredClusterer clusterer(SmallParams());
  const auto output = clusterer.Cluster();
  EXPECT_TRUE(output.points.empty());
  EXPECT_TRUE(output.reported.empty());
}

TEST(LayeredClusterer, SingleLayerBlobReported) {
  Rng rng(1);
  LayeredClusterer clusterer(SmallParams());
  clusterer.AddLayerEvents(0, Blob(rng, 5, 5, 10));
  const auto output = clusterer.Cluster();
  ASSERT_EQ(output.reported.size(), 1u);
  EXPECT_EQ(output.reported[0].point_count, 10u);
}

TEST(LayeredClusterer, SmallClustersNotReported) {
  Rng rng(2);
  LayeredClusterParams params = SmallParams();
  params.min_report_points = 20;
  LayeredClusterer clusterer(params);
  clusterer.AddLayerEvents(0, Blob(rng, 5, 5, 10));
  const auto output = clusterer.Cluster();
  EXPECT_TRUE(output.reported.empty());
  // But the points were clustered (not noise).
  EXPECT_EQ(output.noise_points, 0u);
}

TEST(LayeredClusterer, ClusterGrowsAcrossLayers) {
  Rng rng(3);
  LayeredClusterer clusterer(SmallParams());
  for (int layer = 0; layer < 4; ++layer) {
    clusterer.AddLayerEvents(layer, Blob(rng, 10, 10, 5));
  }
  const auto output = clusterer.Cluster();
  ASSERT_EQ(output.reported.size(), 1u);
  EXPECT_EQ(output.reported[0].point_count, 20u);
  EXPECT_EQ(output.reported[0].min_layer, 0);
  EXPECT_EQ(output.reported[0].max_layer, 3);
  EXPECT_EQ(output.reported[0].layer_span(), 4);
}

TEST(LayeredClusterer, WindowEvictsOldLayers) {
  Rng rng(4);
  LayeredClusterParams params = SmallParams();
  params.window_layers = 3;
  LayeredClusterer clusterer(params);
  for (int layer = 0; layer < 10; ++layer) {
    clusterer.AddLayerEvents(layer, Blob(rng, 10, 10, 4));
  }
  // Only layers 6..9 remain (newest - window .. newest).
  EXPECT_EQ(clusterer.window_point_count(), 16u);
  const auto output = clusterer.Cluster();
  ASSERT_FALSE(output.reported.empty());
  EXPECT_GE(output.reported[0].min_layer, 6);
}

TEST(LayeredClusterer, OutOfOrderLayerRejected) {
  LayeredClusterer clusterer(SmallParams());
  clusterer.AddLayerEvents(5, {});
  EXPECT_THROW(clusterer.AddLayerEvents(4, {}), std::invalid_argument);
}

TEST(LayeredClusterer, SameLayerEventsMerge) {
  Rng rng(5);
  LayeredClusterer clusterer(SmallParams());
  clusterer.AddLayerEvents(0, Blob(rng, 5, 5, 3));
  clusterer.AddLayerEvents(0, Blob(rng, 5, 5, 3));
  EXPECT_EQ(clusterer.window_point_count(), 6u);
  const auto output = clusterer.Cluster();
  ASSERT_EQ(output.reported.size(), 1u);
  EXPECT_EQ(output.reported[0].point_count, 6u);
}

TEST(LayeredClusterer, SeparateRegionsStaySeparate) {
  Rng rng(6);
  LayeredClusterer clusterer(SmallParams());
  for (int layer = 0; layer < 3; ++layer) {
    auto events = Blob(rng, 5, 5, 4);
    auto far = Blob(rng, 50, 50, 4);
    events.insert(events.end(), far.begin(), far.end());
    clusterer.AddLayerEvents(layer, std::move(events));
  }
  const auto output = clusterer.Cluster();
  EXPECT_EQ(output.reported.size(), 2u);
}

TEST(LayeredClusterer, LayerReachBridgesGapLayers) {
  // Events only on even layers; reach=2 still connects them vertically.
  Rng rng(7);
  LayeredClusterParams params = SmallParams();
  params.window_layers = 10;
  params.layer_reach = 2;
  LayeredClusterer clusterer(params);
  for (int layer = 0; layer <= 8; layer += 2) {
    clusterer.AddLayerEvents(layer, Blob(rng, 5, 5, 3));
  }
  const auto output = clusterer.Cluster();
  ASSERT_EQ(output.reported.size(), 1u);
  EXPECT_EQ(output.reported[0].layer_span(), 9);
}

TEST(LayeredClusterer, LabelsParallelToPoints) {
  Rng rng(8);
  LayeredClusterer clusterer(SmallParams());
  clusterer.AddLayerEvents(0, Blob(rng, 5, 5, 8));
  const auto output = clusterer.Cluster();
  EXPECT_EQ(output.points.size(), output.labels.size());
}

TEST(LayeredClusterer, InvalidParamsRejected) {
  LayeredClusterParams params = SmallParams();
  params.eps_xy = 0;
  EXPECT_THROW(LayeredClusterer{params}, std::invalid_argument);
  params = SmallParams();
  params.window_layers = -1;
  EXPECT_THROW(LayeredClusterer{params}, std::invalid_argument);
}

}  // namespace
}  // namespace strata::cluster
