// Property test: grid-indexed DBSCAN must produce the same partition as the
// O(n^2) brute-force reference on random point sets, across parameter
// combinations. Labels may differ by renaming, so we compare partitions via
// a label-mapping bijection check.
#include <gtest/gtest.h>

#include <map>

#include "clustering/dbscan.hpp"
#include "common/rng.hpp"

namespace strata::cluster {
namespace {

struct Scenario {
  double eps;
  std::int64_t reach;
  std::size_t min_pts;
  int points;
  double area;       // points spread over [0, area]^2
  std::int64_t layers;
  std::uint64_t seed;
};

std::string PrintScenario(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return "eps" + std::to_string(static_cast<int>(s.eps * 10)) + "_r" +
         std::to_string(s.reach) + "_m" + std::to_string(s.min_pts) + "_n" +
         std::to_string(s.points) + "_a" +
         std::to_string(static_cast<int>(s.area)) + "_l" +
         std::to_string(s.layers) + "_s" + std::to_string(s.seed);
}

/// True iff the two labelings induce the same partition with identical noise.
bool SamePartition(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.size() != b.size()) return false;
  std::map<int, int> a_to_b;
  std::map<int, int> b_to_a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] == kNoise) != (b[i] == kNoise)) return false;
    if (a[i] == kNoise) continue;
    if (const auto it = a_to_b.find(a[i]); it != a_to_b.end()) {
      if (it->second != b[i]) return false;
    } else {
      a_to_b[a[i]] = b[i];
    }
    if (const auto it = b_to_a.find(b[i]); it != b_to_a.end()) {
      if (it->second != a[i]) return false;
    } else {
      b_to_a[b[i]] = a[i];
    }
  }
  return true;
}

class DbscanPropertyTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(DbscanPropertyTest, GridMatchesBruteForce) {
  const Scenario& s = GetParam();
  Rng rng(s.seed);
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(s.points));
  for (int i = 0; i < s.points; ++i) {
    points.push_back(Point{rng.Uniform(0, s.area), rng.Uniform(0, s.area),
                           rng.UniformInt(0, s.layers - 1), 1.0});
  }

  const DbscanParams params{CylinderMetric{s.eps, s.reach}, s.min_pts};
  const DbscanResult fast = Dbscan(points, params);
  const DbscanResult reference = DbscanBruteForce(points, params);

  EXPECT_EQ(fast.cluster_count, reference.cluster_count);
  EXPECT_EQ(fast.noise_points, reference.noise_points);
  EXPECT_EQ(fast.core_points, reference.core_points);
  EXPECT_TRUE(SamePartition(fast.labels, reference.labels));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbscanPropertyTest,
    ::testing::Values(
        Scenario{1.0, 1, 3, 300, 20, 5, 11},   // dense
        Scenario{1.0, 1, 3, 300, 100, 5, 12},  // sparse
        Scenario{2.5, 3, 5, 500, 40, 20, 13},  // thick cylinder
        Scenario{0.5, 0, 2, 400, 15, 1, 14},   // single layer, pairs suffice
        Scenario{5.0, 2, 8, 600, 50, 10, 15},  // high min_pts
        Scenario{1.5, 5, 3, 200, 10, 40, 16},  // tall stacks
        Scenario{3.0, 1, 4, 1000, 60, 8, 17},  // larger set
        Scenario{1.0, 1, 3, 1, 10, 1, 18},     // single point
        Scenario{1.0, 1, 3, 2, 1, 1, 19}),     // pair
    PrintScenario);

}  // namespace
}  // namespace strata::cluster
