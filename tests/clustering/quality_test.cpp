#include "clustering/quality.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace strata::cluster {
namespace {

TEST(AdjustedRandIndex, IdenticalPartitionsScoreOne) {
  const std::vector<int> labels{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(labels, labels), 1.0);
}

TEST(AdjustedRandIndex, RenamedLabelsScoreOne) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  const std::vector<int> b{7, 7, 3, 3, 9, 9};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
}

TEST(AdjustedRandIndex, RandomLabelsScoreNearZero) {
  Rng rng(1);
  std::vector<int> a;
  std::vector<int> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(static_cast<int>(rng.UniformInt(0, 4)));
    b.push_back(static_cast<int>(rng.UniformInt(0, 4)));
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.0, 0.05);
}

TEST(AdjustedRandIndex, PartialAgreementBetweenZeroAndOne) {
  const std::vector<int> a{0, 0, 0, 1, 1, 1};
  const std::vector<int> b{0, 0, 1, 1, 1, 1};
  const double ari = AdjustedRandIndex(a, b);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

TEST(AdjustedRandIndex, SizeMismatchThrows) {
  EXPECT_THROW(AdjustedRandIndex({0, 1}, {0}), std::invalid_argument);
}

TEST(AdjustedRandIndex, TrivialInputs) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0}, {5}), 1.0);
  // Both all-in-one-cluster.
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({1, 1, 1}, {2, 2, 2}), 1.0);
}

TEST(Purity, PerfectClusteringScoresOne) {
  const std::vector<int> truth{0, 0, 1, 1};
  const std::vector<int> predicted{5, 5, 9, 9};
  EXPECT_DOUBLE_EQ(Purity(truth, predicted), 1.0);
}

TEST(Purity, SingleClusterScoresMajorityFraction) {
  const std::vector<int> truth{0, 0, 0, 1};
  const std::vector<int> predicted{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(Purity(truth, predicted), 0.75);
}

TEST(Purity, OverSegmentationStillPure) {
  // Splitting a true cluster does not hurt purity (known metric property).
  const std::vector<int> truth{0, 0, 0, 0};
  const std::vector<int> predicted{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(Purity(truth, predicted), 1.0);
}

TEST(Purity, SizeMismatchThrows) {
  EXPECT_THROW(Purity({0}, {0, 1}), std::invalid_argument);
}

TEST(Purity, EmptyScoresOne) { EXPECT_DOUBLE_EQ(Purity({}, {}), 1.0); }

}  // namespace
}  // namespace strata::cluster
