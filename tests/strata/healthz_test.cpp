// /healthz surface tests: the admin endpoint must expose per-shard broker
// storage state (degraded / fail-stopped / disk error counts) and, when a
// replication manager is wired in via SetHealthzAugmenter, the per-topic
// leadership and per-partition replication lag — so one scrape answers both
// "is my data durable" and "how far behind are the replicas".
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/fs.hpp"
#include "fault/failpoint.hpp"
#include "net/socket.hpp"
#include "repl/manager.hpp"
#include "strata/strata.hpp"

namespace strata::core {
namespace {

using namespace std::chrono_literals;

std::string Get(std::uint16_t port, const std::string& path) {
  auto socket = net::Socket::Connect("127.0.0.1", port, net::After(2s));
  if (!socket.ok()) return {};
  if (!socket->WriteAll("GET " + path + " HTTP/1.0\r\n\r\n", net::After(2s))
           .ok()) {
    return {};
  }
  std::string response;
  char c = 0;
  while (socket->ReadFully(&c, 1, net::After(2s)).ok()) response.push_back(c);
  return response;
}

std::uint16_t AdminPort(const Strata& strata) {
  const std::string addr = strata.admin_addr();
  EXPECT_FALSE(addr.empty());
  return static_cast<std::uint16_t>(std::stoi(addr.substr(addr.rfind(':') + 1)));
}

TEST(Healthz, ReportsPerShardStorageState) {
  StrataOptions options;
  options.admin_addr = "127.0.0.1:0";
  Strata strata(options);

  const std::string body = Get(AdminPort(strata), "/healthz");
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"shards\":["), std::string::npos) << body;
  EXPECT_NE(body.find("\"degraded\":false"), std::string::npos) << body;
  EXPECT_NE(body.find("\"fail_stopped\":false"), std::string::npos) << body;
  strata.Shutdown();
}

TEST(Healthz, SurfacesDegradedShard) {
  strata::fs::ScopedTempDir dir("healthz-degrade");
  StrataOptions options;
  options.data_dir = dir.path();
  options.persistent_connectors = true;
  options.admin_addr = "127.0.0.1:0";
  Strata strata(options);

  ASSERT_TRUE(strata.broker().CreateTopic("events", ps::TopicConfig{1}).ok());
  fault::Activate("segment.append",
                  fault::Action{fault::ActionKind::kError, 0, 1.0, 1});
  ps::Record record;
  record.value = "x";
  EXPECT_FALSE(strata.broker().Produce("events", record).ok());
  fault::DeactivateAll();

  const std::string body = Get(AdminPort(strata), "/healthz");
  EXPECT_NE(body.find("\"fail_stopped\":true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"disk_errors\":1"), std::string::npos) << body;
  strata.Shutdown();
}

TEST(Healthz, AugmenterAddsReplicationLag) {
  StrataOptions options;
  options.admin_addr = "127.0.0.1:0";
  Strata strata(options);

  // A single-broker "cluster" (quorum of 1) over the facade's own broker:
  // enough to exercise the whole reporting path end to end.
  repl::ReplicaOptions repl_options;
  repl_options.self = repl::BrokerEndpoint{1, "127.0.0.1", 1};
  repl_options.brokers = {repl_options.self};
  repl::ReplicationManager manager(&strata.broker(), repl_options);
  ASSERT_TRUE(manager.AddTopic("events", ps::TopicConfig{2}, 1).ok());
  ASSERT_TRUE(manager.Start().ok());
  ps::Record record;
  record.value = "x";
  ASSERT_TRUE(strata.broker().Produce("events", record).ok());
  strata.SetHealthzAugmenter([&manager] { return manager.HealthJson(); });

  // A quorum of one commits on the next manager tick; wait for the watermark
  // to catch up so the lag assertion below is deterministic.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (manager.HealthJson().find("\"lag\":0") == std::string::npos) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(1ms);
  }

  const std::string body = Get(AdminPort(strata), "/healthz");
  EXPECT_NE(body.find("\"replication\":{\"broker\":1"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"topic\":\"events\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"is_leader\":true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"lag\":0"), std::string::npos) << body;

  // Removing the augmenter removes the key; the endpoint stays valid JSON.
  strata.SetHealthzAugmenter(nullptr);
  const std::string plain = Get(AdminPort(strata), "/healthz");
  EXPECT_EQ(plain.find("\"replication\""), std::string::npos) << plain;
  EXPECT_NE(plain.find("\"status\":\"ok\""), std::string::npos) << plain;
  strata.Shutdown();
}

}  // namespace
}  // namespace strata::core
