// Focused tests of fuse() semantics (Table 1): τ-equality vs windowed
// matching, the GB parameter over payload sub-attributes, and the
// unique-key assumption.
#include <gtest/gtest.h>

#include <mutex>

#include "strata/strata.hpp"

namespace strata::core {
namespace {

struct SourceSpec {
  std::int64_t job = 1;
  Timestamp skew = 0;
  std::string value_key = "v";
  std::string group_attr;   // payload attribute to set (optional)
  std::int64_t group_mod = 0;
};

spe::SourceFn LayerSource(SourceSpec spec, int layers) {
  auto next = std::make_shared<int>(0);
  return [spec, layers, next]() -> std::optional<spe::Tuple> {
    if (*next >= layers) return std::nullopt;
    spe::Tuple t;
    t.layer = (*next)++;
    t.event_time = (t.layer + 1) * 1'000'000 + spec.skew;
    t.job = spec.job;
    t.payload.Set(spec.value_key, t.layer);
    if (!spec.group_attr.empty()) {
      t.payload.Set(spec.group_attr, t.layer % spec.group_mod);
    }
    return t;
  };
}

class Fused {
 public:
  explicit Fused(Strata* strata, SourceSpec left, SourceSpec right,
                 int layers, std::optional<spe::WindowSpec> window,
                 std::vector<std::string> group_by = {}, int shards = 1) {
    left.value_key = "left";
    right.value_key = "right";
    auto l = strata->AddSource("L", LayerSource(left, layers));
    auto r = strata->AddSource("R", LayerSource(right, layers));
    auto fused = strata->Fuse("fuse", l, r, window, std::move(group_by),
                              shards);
    strata->Deliver("sink", fused, [this](const spe::Tuple& t) {
      std::lock_guard lock(mu_);
      tuples_.push_back(t);
    });
    strata->Deploy();
    strata->WaitForCompletion();
  }

  [[nodiscard]] std::vector<spe::Tuple> tuples() const {
    std::lock_guard lock(mu_);
    return tuples_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<spe::Tuple> tuples_;
};

TEST(Fuse, TauEqualityMatchesAlignedSources) {
  Strata strata;
  Fused fused(&strata, {}, {}, 20, std::nullopt);
  EXPECT_EQ(fused.tuples().size(), 20u);
}

TEST(Fuse, TauEqualityRejectsSkewedSources) {
  Strata strata;
  SourceSpec skewed;
  skewed.skew = 500;  // 0.5 ms clock skew
  Fused fused(&strata, {}, skewed, 20, std::nullopt);
  EXPECT_TRUE(fused.tuples().empty());
}

TEST(Fuse, WindowedFuseToleratesSkew) {
  Strata strata;
  SourceSpec skewed;
  skewed.skew = 500;
  Fused fused(&strata, {}, skewed, 20,
              spe::WindowSpec{/*size=*/10'000, /*advance=*/10'000});
  EXPECT_EQ(fused.tuples().size(), 20u);
}

TEST(Fuse, WindowBoundsMatching) {
  // Skew beyond the window: no matches even with a window.
  Strata strata;
  SourceSpec skewed;
  skewed.skew = 50'000;
  Fused fused(&strata, {}, skewed, 20,
              spe::WindowSpec{10'000, 10'000});
  EXPECT_TRUE(fused.tuples().empty());
}

TEST(Fuse, FusedPayloadConcatenatesBothSides) {
  Strata strata;
  Fused fused(&strata, {}, {}, 5, std::nullopt);
  for (const spe::Tuple& t : fused.tuples()) {
    ASSERT_TRUE(t.payload.Has("left"));
    ASSERT_TRUE(t.payload.Has("right"));
    EXPECT_EQ(t.payload.Get("left").AsInt(), t.payload.Get("right").AsInt());
    EXPECT_EQ(t.payload.Get("left").AsInt(), t.layer);
  }
}

TEST(Fuse, KeyedShardsMatchSingleInstance) {
  // Same skewed windowed fuse, 1-way vs 3-way keyed-parallel: the sharded
  // plan routes both sides by the fuse key, so the matched pairs (and each
  // pair's payload) are identical.
  auto run = [](int shards) {
    Strata strata;
    SourceSpec skewed;
    skewed.skew = 500;
    Fused fused(&strata, {}, skewed, 30,
                spe::WindowSpec{/*size=*/10'000, /*advance=*/10'000}, {},
                shards);
    std::map<std::int64_t, std::pair<std::int64_t, std::int64_t>> pairs;
    for (const spe::Tuple& t : fused.tuples()) {
      pairs[t.layer] = {t.payload.Get("left").AsInt(),
                        t.payload.Get("right").AsInt()};
    }
    return pairs;
  };
  const auto unsharded = run(1);
  ASSERT_EQ(unsharded.size(), 30u);
  EXPECT_EQ(run(3), unsharded);
}

TEST(Fuse, GroupByAttributeMustAgree) {
  // Left tagged layer%2, right layer%3: fuse with GB=["tag"] only matches
  // layers where layer%2 == layer%3 (layers 0,1 mod 6, i.e. 0,1,6,7,...).
  Strata strata;
  SourceSpec left;
  left.group_attr = "tag";
  left.group_mod = 2;
  SourceSpec right;
  right.group_attr = "tag";
  right.group_mod = 3;
  Fused fused(&strata, left, right, 12, std::nullopt, {"tag"});

  std::set<std::int64_t> matched_layers;
  for (const spe::Tuple& t : fused.tuples()) {
    matched_layers.insert(t.layer);
  }
  // The per-layer join key already includes (job, layer); the tag narrows it.
  EXPECT_EQ(matched_layers,
            (std::set<std::int64_t>{0, 1, 6, 7}));
}

TEST(Fuse, GroupByMissingAttributeNeverMatchesTagged) {
  Strata strata;
  SourceSpec left;  // no tag attribute
  SourceSpec right;
  right.group_attr = "tag";
  right.group_mod = 2;
  Fused fused(&strata, left, right, 8, std::nullopt, {"tag"});
  // "<none>" vs "0"/"1": nothing fuses.
  EXPECT_TRUE(fused.tuples().empty());
}

TEST(Fuse, EqualDuplicatePayloadKeysMergeOnce) {
  Strata strata;
  SourceSpec left;
  left.group_attr = "shared";  // both sides carry "shared" with EQUAL values
  left.group_mod = 2;
  SourceSpec right;
  right.group_attr = "shared";
  right.group_mod = 2;
  Fused fused(&strata, left, right, 6, std::nullopt);
  ASSERT_EQ(fused.tuples().size(), 6u);
  for (const spe::Tuple& t : fused.tuples()) {
    // The duplicate is deduplicated, not doubled.
    int shared_count = 0;
    for (const auto& [k, v] : t.payload) {
      if (k == "shared") ++shared_count;
    }
    EXPECT_EQ(shared_count, 1);
  }
}

TEST(Fuse, ConflictingDuplicatePayloadKeysDropPair) {
  Strata strata;
  SourceSpec left;
  left.group_attr = "shared";
  left.group_mod = 2;  // shared = layer % 2
  SourceSpec right;
  right.group_attr = "shared";
  right.group_mod = 3;  // shared = layer % 3
  // Layers where layer%2 != layer%3 conflict -> dropped; layers 0,1 (of 6)
  // agree -> fused.
  Fused fused(&strata, left, right, 6, std::nullopt);
  std::set<std::int64_t> matched;
  for (const spe::Tuple& t : fused.tuples()) matched.insert(t.layer);
  EXPECT_EQ(matched, (std::set<std::int64_t>{0, 1}));
}

}  // namespace
}  // namespace strata::core
