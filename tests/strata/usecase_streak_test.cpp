// Recoater-streak use-case: unit tests of the detection/correlation
// functions plus end-to-end recovery of seeded streaks.
#include "strata/usecase_streak.hpp"

#include <gtest/gtest.h>

#include <mutex>

namespace strata::core {
namespace {

spe::Tuple SpecimenFrameWithStreak(int image_px, double streak_x_rel,
                                   double drop) {
  // 1-specimen job; render a frame and darken one column band by hand.
  const am::BuildJobSpec job = am::MakeSmallJob(1, image_px, 1);
  am::OtImageGenerator generator(job, nullptr);
  am::GrayImage frame = generator.GenerateLayer(0);

  const am::SpecimenSpec& s = job.specimens[0];
  const int band_x = job.plate.MmToPx(s.x_mm + streak_x_rel);
  for (int y = 0; y < frame.height(); ++y) {
    for (int dx = 0; dx < 2; ++dx) {
      const int x = band_x + dx;
      if (x < frame.width() && frame.at(x, y) > drop) {
        frame.set(x, y, static_cast<std::uint8_t>(frame.at(x, y) - drop));
      }
    }
  }

  spe::Tuple t;
  t.job = 1;
  t.layer = 0;
  t.specimen = 0;
  t.event_time = 1000;
  t.payload.Set(kOtImageKey, am::MakeImageValue(std::move(frame)));
  t.payload.Set("x_mm", s.x_mm);
  t.payload.Set("y_mm", s.y_mm);
  t.payload.Set("w_mm", s.width_mm);
  t.payload.Set("l_mm", s.length_mm);
  t.payload.Set("px_per_mm", job.plate.PxPerMm());
  return t;
}

TEST(DetectStreakColumns, FindsDarkenedColumns) {
  const spe::Tuple frame = SpecimenFrameWithStreak(500, 12.0, 30.0);
  const auto events = DetectStreakColumns(15.0)(frame);
  ASSERT_FALSE(events.empty());
  for (const spe::Tuple& event : events) {
    EXPECT_NEAR(event.payload.Get("cx_mm").AsDouble(),
                frame.payload.Get("x_mm").AsDouble() + 12.0, 2.0);
    EXPECT_GT(event.payload.Get("deviation").AsDouble(), 15.0);
  }
}

TEST(DetectStreakColumns, CleanFrameNoEvents) {
  const am::BuildJobSpec job = am::MakeSmallJob(1, 500, 1);
  am::OtImageGenerator generator(job, nullptr);
  spe::Tuple t;
  t.specimen = 0;
  const am::SpecimenSpec& s = job.specimens[0];
  t.payload.Set(kOtImageKey, am::MakeImageValue(generator.GenerateLayer(0)));
  t.payload.Set("x_mm", s.x_mm);
  t.payload.Set("y_mm", s.y_mm);
  t.payload.Set("w_mm", s.width_mm);
  t.payload.Set("l_mm", s.length_mm);
  t.payload.Set("px_per_mm", job.plate.PxPerMm());
  EXPECT_TRUE(DetectStreakColumns(15.0)(t).empty());
}

TEST(DetectStreakColumns, ForwardsMarkers) {
  spe::Tuple marker;
  marker.payload.Set(kLayerMarkerKey, true);
  const auto out = DetectStreakColumns(15.0)(marker);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(IsLayerMarker(out[0]));
}

TEST(StreakCorrelator, RequiresLayerPersistence) {
  StreakUseCaseParams params;
  params.min_span_layers = 3;
  params.dbscan_min_pts = 2;
  auto fn = StreakCorrelator(params);

  auto event_at = [](double x, std::int64_t layer) {
    spe::Tuple e;
    e.layer = layer;
    e.payload.Set("cx_mm", x);
    e.payload.Set("deviation", 20.0);
    return e;
  };

  // Same x across 1 layer only: not reported.
  EventWindow shallow;
  shallow.layer = 2;
  shallow.events = {event_at(50.0, 2), event_at(50.5, 2)};
  EXPECT_TRUE(fn(shallow).empty());

  // Same x across 3 layers: reported.
  EventWindow deep;
  deep.layer = 4;
  for (std::int64_t l = 2; l <= 4; ++l) {
    deep.events.push_back(event_at(50.0, l));
    deep.events.push_back(event_at(50.5, l));
  }
  const auto out = fn(deep);
  ASSERT_EQ(out.size(), 1u);
  const auto report =
      out[0].payload.Get("report").AsOpaque<ClusterReportValue>();
  ASSERT_EQ(report->report().clusters.size(), 1u);
  EXPECT_GE(report->report().clusters[0].layer_span(), 3);
}

TEST(StreakPipeline, RecoversSeededStreaks) {
  Strata strata_rt;
  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, 400, 2);
  machine_params.layers_limit = 40;
  machine_params.defects.birth_rate = 0.0;  // isolate the streak signal
  am::StreakModelParams streaks;
  streaks.rate_per_layer = 0.15;
  streaks.mean_span_layers = 8;
  streaks.mean_intensity_drop = 30.0;
  machine_params.streaks = streaks;

  auto machine = std::make_shared<am::MachineSimulator>(machine_params);
  ASSERT_NE(machine->streak_seeder(), nullptr);

  // Ground truth streaks that cross a specimen for >= 3 layers.
  std::vector<const am::Streak*> detectable;
  for (const am::Streak& streak : machine->streak_seeder()->streaks()) {
    if (streak.start_layer >= 38) continue;
    for (const am::SpecimenSpec& s : machine_params.job.specimens) {
      if (streak.x_mm > s.x_mm && streak.x_mm < s.x_mm + s.width_mm &&
          streak.end_layer - streak.start_layer >= 2) {
        detectable.push_back(&streak);
      }
    }
  }
  ASSERT_FALSE(detectable.empty()) << "seed produced no detectable streaks";

  StreakUseCaseParams params;
  params.column_drop = 12.0;
  params.min_span_layers = 3;

  std::mutex mu;
  std::vector<ClusterReport> reports;
  BuildStreakPipeline(&strata_rt, machine,
                      CollectorPacing{.mode = CollectorPacing::Mode::kReplay},
                      params, [&](const ClusterReport& report) {
                        std::lock_guard lock(mu);
                        reports.push_back(report);
                      });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();

  ASSERT_FALSE(reports.empty()) << "no streaks reported";
  // Every reported streak must match a seeded one in x.
  std::size_t matched = 0;
  for (const ClusterReport& report : reports) {
    for (const auto& summary : report.clusters) {
      for (const am::Streak& truth : machine->streak_seeder()->streaks()) {
        if (std::abs(summary.centroid_x - truth.x_mm) <
            truth.width_mm / 2 + 1.5) {
          ++matched;
        }
      }
    }
  }
  EXPECT_GT(matched, 0u);
}

TEST(StreakPipeline, CleanRecoaterReportsNothing) {
  Strata strata_rt;
  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, 400, 1);
  machine_params.layers_limit = 15;
  machine_params.defects.birth_rate = 0.0;
  // no streak model: pristine recoater

  auto machine = std::make_shared<am::MachineSimulator>(machine_params);
  StreakUseCaseParams params;

  std::atomic<int> reports{0};
  BuildStreakPipeline(&strata_rt, machine,
                      CollectorPacing{.mode = CollectorPacing::Mode::kReplay},
                      params, [&](const ClusterReport&) { ++reports; });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  EXPECT_EQ(reports.load(), 0);
}

TEST(XctSummary, AttributesClustersToCylinders) {
  am::BuildJobSpec job = am::MakePaperJob(1, 500);
  const am::SpecimenSpec& s = job.specimens[0];

  ClusterReport in_cylinder;
  in_cylinder.specimen = 0;
  cluster::ClusterSummary hit;
  hit.centroid_x = s.x_mm + s.xct_cylinders[1].cx_mm;
  hit.centroid_y = s.y_mm + s.xct_cylinders[1].cy_mm;
  hit.total_weight = 5.0;
  in_cylinder.clusters.push_back(hit);

  ClusterReport outside;
  outside.specimen = 0;
  cluster::ClusterSummary miss;
  miss.centroid_x = s.x_mm + 1.0;
  miss.centroid_y = s.y_mm + 1.0;
  outside.clusters.push_back(miss);

  const auto summaries =
      SummarizeDefectsPerCylinder({in_cylinder, outside, in_cylinder}, job);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].specimen, 0);
  EXPECT_EQ(summaries[0].cylinder, 1);
  EXPECT_EQ(summaries[0].cluster_observations, 2u);
  EXPECT_DOUBLE_EQ(summaries[0].total_weight, 10.0);
}

TEST(XctSummary, IgnoresInvalidSpecimens) {
  const am::BuildJobSpec job = am::MakePaperJob(1, 500);
  ClusterReport bad;
  bad.specimen = 99;
  cluster::ClusterSummary c;
  bad.clusters.push_back(c);
  EXPECT_TRUE(SummarizeDefectsPerCylinder({bad}, job).empty());
}

}  // namespace
}  // namespace strata::core
