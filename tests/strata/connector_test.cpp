#include "strata/connector.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "strata/api.hpp"

namespace strata::core {
namespace {

spe::Tuple NumberedTuple(int i) {
  spe::Tuple t;
  t.event_time = i;
  t.job = 1;
  t.layer = i;
  t.payload.Set("i", i);
  return t;
}

class ConnectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(broker_.CreateTopic("conn", {.partitions = 2}).ok());
  }
  ps::Broker broker_;
};

TEST_F(ConnectorTest, PublishThenSubscribeRoundTrip) {
  ConnectorPublisher publisher(&broker_, "conn",
                               [](const spe::Tuple& t) { return RawDataKey(t); });
  auto sink = publisher.AsSinkFn();
  for (int i = 0; i < 10; ++i) sink(NumberedTuple(i));
  publisher.AsFinishHook()();  // EOS

  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();

  std::set<int> seen;
  while (auto tuple = source()) {
    seen.insert(static_cast<int>(tuple->payload.Get("i").AsInt()));
  }
  EXPECT_EQ(seen.size(), 10u);  // all delivered, then EOS ended the stream
}

TEST_F(ConnectorTest, PerKeyOrderPreserved) {
  ConnectorPublisher publisher(&broker_, "conn",
                               [](const spe::Tuple& t) {
                                 return std::to_string(t.job);
                               });
  auto sink = publisher.AsSinkFn();
  for (int i = 0; i < 100; ++i) {
    spe::Tuple t = NumberedTuple(i);
    t.job = i % 2;
    sink(t);
  }
  publisher.AsFinishHook()();

  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();
  std::map<std::int64_t, int> last;
  while (auto tuple = source()) {
    const int i = static_cast<int>(tuple->payload.Get("i").AsInt());
    if (last.contains(tuple->job)) EXPECT_GT(i, last[tuple->job]);
    last[tuple->job] = i;
  }
  EXPECT_EQ(last.size(), 2u);
}

TEST_F(ConnectorTest, StopEndsStreamWithoutEos) {
  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    subscriber->Stop();
  });
  EXPECT_FALSE(source().has_value());  // returns once stopped
  stopper.join();
}

TEST_F(ConnectorTest, SubscriberBlocksUntilDataArrives) {
  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();

  ConnectorPublisher publisher(&broker_, "conn", nullptr);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    publisher.AsSinkFn()(NumberedTuple(7));
  });
  auto tuple = source();
  producer.join();
  ASSERT_TRUE(tuple.has_value());
  EXPECT_EQ(tuple->payload.Get("i").AsInt(), 7);
  subscriber->Stop();
}

TEST_F(ConnectorTest, ImageTuplesCrossTheConnector) {
  ConnectorPublisher publisher(&broker_, "conn", nullptr);
  am::GrayImage image(64, 64, 99);
  spe::Tuple t = NumberedTuple(0);
  t.payload.Set("ot_image", am::MakeImageValue(image));
  publisher.AsSinkFn()(t);
  publisher.AsFinishHook()();

  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();
  auto received = source();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(
      received->payload.Get("ot_image").AsOpaque<am::ImageValue>()->image(),
      image);
  EXPECT_FALSE(source().has_value());
}

TEST_F(ConnectorTest, TwoGroupsEachSeeAllTuples) {
  ConnectorPublisher publisher(&broker_, "conn", nullptr);
  auto sink = publisher.AsSinkFn();
  for (int i = 0; i < 5; ++i) sink(NumberedTuple(i));
  publisher.AsFinishHook()();

  for (const char* group : {"g1", "g2"}) {
    auto subscriber =
        std::move(ConnectorSubscriber::Create(&broker_, "conn", group)).value();
    auto source = subscriber->AsSourceFn();
    int count = 0;
    while (source().has_value()) ++count;
    EXPECT_EQ(count, 5) << group;
  }
}

// ----- effectively-once: tagging, dedupe, and checkpoint hooks -----

class TaggedConnectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(broker_.CreateTopic("tagged", {.partitions = 1}).ok());
  }

  /// Decode record `offset` of tagged/0 with its transport tag.
  void ReadTagged(std::int64_t offset, TransportTag* tag, spe::Tuple* tuple) {
    auto log = broker_.GetLog("tagged", 0);
    ASSERT_TRUE(log.ok());
    std::vector<ps::Record> records;
    std::int64_t next = 0;
    ASSERT_TRUE((*log)->ReadFrom(offset, 1, &records, &next).ok());
    ASSERT_EQ(records.size(), 1u);
    auto decoded = DecodeMaybeTagged(records[0].value, tag);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    *tuple = std::move(*decoded);
  }

  ps::Broker broker_;
};

TEST_F(TaggedConnectorTest, RestoredPublisherResumesSequenceNumbers) {
  ConnectorPublisher first(&broker_, "tagged", nullptr);
  first.EnableTagging();
  auto sink = first.AsSinkFn();
  for (int i = 0; i < 5; ++i) sink(NumberedTuple(i));
  std::string blob;
  ASSERT_TRUE(first.AsSnapshotFn()(/*epoch=*/1, &blob).ok());

  // A recovered publisher picks the counter up where the snapshot left it.
  ConnectorPublisher second(&broker_, "tagged", nullptr);
  second.EnableTagging();
  ASSERT_TRUE(second.AsRestoreFn()(blob).ok());
  auto sink2 = second.AsSinkFn();
  for (int i = 5; i < 8; ++i) sink2(NumberedTuple(i));

  for (std::int64_t offset = 0; offset < 8; ++offset) {
    TransportTag tag;
    spe::Tuple tuple;
    ReadTagged(offset, &tag, &tuple);
    EXPECT_EQ(tag.seq, static_cast<std::uint64_t>(offset + 1));
    EXPECT_EQ(tag.epoch, offset < 5 ? 0u : 1u);
    EXPECT_EQ(tuple.payload.Get("i").AsInt(), offset);
  }
  EXPECT_FALSE(second.AsRestoreFn()("garbage").ok());
}

TEST_F(TaggedConnectorTest, SubscriberDropsReplayedDuplicates) {
  ConnectorPublisher publisher(&broker_, "tagged", nullptr);
  publisher.EnableTagging();
  auto sink = publisher.AsSinkFn();
  for (int i = 0; i < 5; ++i) sink(NumberedTuple(i));
  std::string blob;
  ASSERT_TRUE(publisher.AsSnapshotFn()(1, &blob).ok());
  for (int i = 5; i < 10; ++i) sink(NumberedTuple(i));

  // Crash-and-replay: a publisher restored from the epoch snapshot re-sends
  // the post-checkpoint tuples with their original sequence numbers.
  ConnectorPublisher replayer(&broker_, "tagged", nullptr);
  replayer.EnableTagging();
  ASSERT_TRUE(replayer.AsRestoreFn()(blob).ok());
  auto replay_sink = replayer.AsSinkFn();
  for (int i = 5; i < 10; ++i) replay_sink(NumberedTuple(i));
  replayer.AsFinishHook()();  // EOS

  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "tagged", "g")).value();
  auto source = subscriber->AsSourceFn();
  std::vector<int> seen;
  while (auto tuple = source()) {
    seen.push_back(static_cast<int>(tuple->payload.Get("i").AsInt()));
  }
  // 15 data records in the log, but each sequence number delivered once.
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(subscriber->duplicates_dropped(), 5u);
}

TEST_F(TaggedConnectorTest, SubscriberSnapshotRestoreResumesReplayCursor) {
  ConnectorPublisher publisher(&broker_, "tagged", nullptr);
  publisher.EnableTagging();
  auto sink = publisher.AsSinkFn();
  for (int i = 0; i < 10; ++i) sink(NumberedTuple(i));
  publisher.AsFinishHook()();

  auto first =
      std::move(ConnectorSubscriber::Create(&broker_, "tagged", "ga")).value();
  auto source = first->AsSourceFn();
  for (int i = 0; i < 6; ++i) {
    auto tuple = source();
    ASSERT_TRUE(tuple.has_value());
    EXPECT_EQ(tuple->payload.Get("i").AsInt(), i);
  }
  std::string blob;
  ASSERT_TRUE(first->AsSnapshotFn()(1, &blob).ok());

  // A fresh subscriber restored from the snapshot resumes at the first
  // undelivered record — not at the group's committed offset, not at zero.
  auto second =
      std::move(ConnectorSubscriber::Create(&broker_, "tagged", "gb")).value();
  ASSERT_TRUE(second->AsRestoreFn()(blob).ok());
  auto resumed = second->AsSourceFn();
  std::vector<int> rest;
  while (auto tuple = resumed()) {
    rest.push_back(static_cast<int>(tuple->payload.Get("i").AsInt()));
  }
  ASSERT_EQ(rest.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rest[static_cast<std::size_t>(i)], 6 + i);
  }
  EXPECT_EQ(second->duplicates_dropped(), 0u);
}

TEST_F(TaggedConnectorTest, RestoreToTruncatedOffsetSurfacesOutOfRange) {
  ASSERT_TRUE(
      broker_.CreateTopic("trunc", {.partitions = 1, .retention_records = 4})
          .ok());
  ConnectorPublisher publisher(&broker_, "trunc", nullptr);
  publisher.EnableTagging();
  auto sink = publisher.AsSinkFn();
  sink(NumberedTuple(0));

  // Snapshot a subscriber whose replay cursor is offset 0...
  auto first =
      std::move(ConnectorSubscriber::Create(&broker_, "trunc", "ga")).value();
  std::string blob;
  {
    auto source = first->AsSourceFn();
    auto tuple = source();
    ASSERT_TRUE(tuple.has_value());
    ASSERT_TRUE(first->AsSnapshotFn()(1, &blob).ok());
    first->Stop();
  }
  // ...then age offset 0 out of retention.
  for (int i = 1; i < 10; ++i) sink(NumberedTuple(i));

  // The checkpoint outlived the broker's history: restore must say so
  // loudly (the operator can then alert) instead of silently skipping the
  // gap or spinning on an offset that no longer exists.
  auto second =
      std::move(ConnectorSubscriber::Create(&broker_, "trunc", "gb")).value();
  const Status restored = second->AsRestoreFn()(blob);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.IsOutOfRange()) << restored.ToString();
}

}  // namespace
}  // namespace strata::core
