#include "strata/connector.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "strata/api.hpp"

namespace strata::core {
namespace {

spe::Tuple NumberedTuple(int i) {
  spe::Tuple t;
  t.event_time = i;
  t.job = 1;
  t.layer = i;
  t.payload.Set("i", i);
  return t;
}

class ConnectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(broker_.CreateTopic("conn", {.partitions = 2}).ok());
  }
  ps::Broker broker_;
};

TEST_F(ConnectorTest, PublishThenSubscribeRoundTrip) {
  ConnectorPublisher publisher(&broker_, "conn",
                               [](const spe::Tuple& t) { return RawDataKey(t); });
  auto sink = publisher.AsSinkFn();
  for (int i = 0; i < 10; ++i) sink(NumberedTuple(i));
  publisher.AsFinishHook()();  // EOS

  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();

  std::set<int> seen;
  while (auto tuple = source()) {
    seen.insert(static_cast<int>(tuple->payload.Get("i").AsInt()));
  }
  EXPECT_EQ(seen.size(), 10u);  // all delivered, then EOS ended the stream
}

TEST_F(ConnectorTest, PerKeyOrderPreserved) {
  ConnectorPublisher publisher(&broker_, "conn",
                               [](const spe::Tuple& t) {
                                 return std::to_string(t.job);
                               });
  auto sink = publisher.AsSinkFn();
  for (int i = 0; i < 100; ++i) {
    spe::Tuple t = NumberedTuple(i);
    t.job = i % 2;
    sink(t);
  }
  publisher.AsFinishHook()();

  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();
  std::map<std::int64_t, int> last;
  while (auto tuple = source()) {
    const int i = static_cast<int>(tuple->payload.Get("i").AsInt());
    if (last.contains(tuple->job)) EXPECT_GT(i, last[tuple->job]);
    last[tuple->job] = i;
  }
  EXPECT_EQ(last.size(), 2u);
}

TEST_F(ConnectorTest, StopEndsStreamWithoutEos) {
  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    subscriber->Stop();
  });
  EXPECT_FALSE(source().has_value());  // returns once stopped
  stopper.join();
}

TEST_F(ConnectorTest, SubscriberBlocksUntilDataArrives) {
  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();

  ConnectorPublisher publisher(&broker_, "conn", nullptr);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    publisher.AsSinkFn()(NumberedTuple(7));
  });
  auto tuple = source();
  producer.join();
  ASSERT_TRUE(tuple.has_value());
  EXPECT_EQ(tuple->payload.Get("i").AsInt(), 7);
  subscriber->Stop();
}

TEST_F(ConnectorTest, ImageTuplesCrossTheConnector) {
  ConnectorPublisher publisher(&broker_, "conn", nullptr);
  am::GrayImage image(64, 64, 99);
  spe::Tuple t = NumberedTuple(0);
  t.payload.Set("ot_image", am::MakeImageValue(image));
  publisher.AsSinkFn()(t);
  publisher.AsFinishHook()();

  auto subscriber =
      std::move(ConnectorSubscriber::Create(&broker_, "conn", "g")).value();
  auto source = subscriber->AsSourceFn();
  auto received = source();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(
      received->payload.Get("ot_image").AsOpaque<am::ImageValue>()->image(),
      image);
  EXPECT_FALSE(source().has_value());
}

TEST_F(ConnectorTest, TwoGroupsEachSeeAllTuples) {
  ConnectorPublisher publisher(&broker_, "conn", nullptr);
  auto sink = publisher.AsSinkFn();
  for (int i = 0; i < 5; ++i) sink(NumberedTuple(i));
  publisher.AsFinishHook()();

  for (const char* group : {"g1", "g2"}) {
    auto subscriber =
        std::move(ConnectorSubscriber::Create(&broker_, "conn", group)).value();
    auto source = subscriber->AsSourceFn();
    int count = 0;
    while (source().has_value()) ++count;
    EXPECT_EQ(count, 5) << group;
  }
}

}  // namespace
}  // namespace strata::core
