// End-to-end integration: the full Algorithm-1 pipeline over a simulated
// job, including defect-recovery checks against the seeded ground truth and
// QoS latency sanity.
#include <gtest/gtest.h>

#include <mutex>

#include "strata/usecase.hpp"

namespace strata::core {
namespace {

struct PipelineRun {
  std::vector<ClusterReport> reports;
  Histogram latency;
  std::shared_ptr<am::MachineSimulator> machine;
};

PipelineRun RunPipeline(Strata* strata, am::MachineParams machine_params,
                        UseCaseParams params,
                        CollectorPacing pacing = {
                            .mode = CollectorPacing::Mode::kReplay,
                            .replay_rate = 0.0}) {
  PipelineRun run;
  ComputeAndStoreThresholds(strata, params.machine_id, machine_params.job,
                            /*history_layers=*/3, params.cell_px)
      .OrDie();
  run.machine = std::make_shared<am::MachineSimulator>(machine_params);

  std::mutex mu;
  auto* sink = BuildThermalPipeline(
      strata, run.machine, pacing, params, [&](const ClusterReport& report) {
        std::lock_guard lock(mu);
        run.reports.push_back(report);
      });
  strata->Deploy();
  strata->WaitForCompletion();
  run.latency = sink->LatencySnapshot();
  return run;
}

am::MachineParams SmallMachineParams(int layers = 30, double birth_rate = 0.1) {
  am::MachineParams params;
  params.job = am::MakeSmallJob(1, /*image_px=*/250, /*specimens=*/2);
  params.layers_limit = layers;
  params.defects.birth_rate = birth_rate;
  params.defects.mean_intensity_delta = 50.0;
  return params;
}

TEST(ThermalPipeline, ProducesOneReportPerLayerPerSpecimen) {
  Strata strata;
  UseCaseParams params;
  params.cell_px = 5;
  params.correlate_layers = 5;
  auto run = RunPipeline(&strata, SmallMachineParams(20), params);

  // 20 layers x 2 specimens.
  EXPECT_EQ(run.reports.size(), 40u);
  std::map<std::int64_t, std::set<std::int64_t>> layers_by_specimen;
  for (const ClusterReport& report : run.reports) {
    EXPECT_EQ(report.job, 1);
    layers_by_specimen[report.specimen].insert(report.layer);
  }
  EXPECT_EQ(layers_by_specimen.size(), 2u);
  EXPECT_EQ(layers_by_specimen[0].size(), 20u);
  EXPECT_EQ(layers_by_specimen[1].size(), 20u);
}

TEST(ThermalPipeline, LatencyRecordedPerReport) {
  Strata strata;
  UseCaseParams params;
  params.cell_px = 5;
  auto run = RunPipeline(&strata, SmallMachineParams(10), params);
  EXPECT_EQ(run.latency.count(), run.reports.size());
  EXPECT_GT(run.latency.max(), 0);
  // Replay on a tiny job must stay far under the 3 s QoS budget.
  EXPECT_LT(run.latency.max(), SecondsToMicros(3.0));
}

TEST(ThermalPipeline, MetricsSnapshotIsConsistentWithPipelineOutput) {
  Strata strata;
  UseCaseParams params;
  params.cell_px = 5;
  params.correlate_layers = 5;
  auto run = RunPipeline(&strata, SmallMachineParams(10), params);
  ASSERT_FALSE(run.reports.empty());

  const obs::MetricsSnapshot snap = strata.MetricsSnapshot();

  // The sink saw exactly one tuple per delivered report, and everything the
  // upstream correlate stage emitted reached the sink.
  const double sink_in = snap.Sum("spe.operator.tuples_in", "op", "expert.m0",
                                  {{"kind", "sink"}});
  const double correlate_out = snap.Sum("spe.operator.tuples_out", "op",
                                        "cluster.m0", {{"kind", "flatmap"}});
  EXPECT_EQ(sink_in, static_cast<double>(run.reports.size()));
  EXPECT_EQ(sink_in, correlate_out);

  // Both connectors moved data through the broker, and the metrics agree
  // with the broker's own accounting.
  const double produced = snap.Sum("pubsub.topic.produced", "topic", "raw.");
  EXPECT_GT(produced, 0.0);
  const auto raw_ot = strata.broker().GetTopicStats("raw.ot.m0");
  ASSERT_TRUE(raw_ot.ok());
  EXPECT_EQ(snap.Sum("pubsub.topic.end_offset", "topic", "raw.ot.m0"),
            static_cast<double>(raw_ot->total_records));

  // The threshold lookups hit the kvstore.
  EXPECT_GT(snap.Value("kv.gets").value_or(0.0), 0.0);

  // And the human-readable dump carries the same numbers.
  const std::string text = strata.DumpMetrics();
  EXPECT_NE(text.find("spe.operator.tuples_in{kind=sink,op=expert.m0} = " +
                      std::to_string(run.reports.size())),
            std::string::npos);
}

TEST(ThermalPipeline, RecoversSeededDefectRegions) {
  Strata strata;
  // Strong, frequent defects so recovery is unambiguous.
  am::MachineParams machine_params = SmallMachineParams(40, 0.15);
  machine_params.defects.mean_intensity_delta = 60.0;
  machine_params.defects.mean_radius_mm = 3.0;

  UseCaseParams params;
  params.cell_px = 4;
  params.correlate_layers = 10;
  params.dbscan_min_pts = 3;
  params.min_report_points = 4;
  auto run = RunPipeline(&strata, machine_params, params);

  // Ground truth: defects overlapping the printed window.
  const auto& defects = run.machine->seeder().defects();
  std::size_t truth_defects = 0;
  for (const auto& defect : defects) {
    if (defect.center_layer < 40) ++truth_defects;
  }
  ASSERT_GT(truth_defects, 0u) << "seeder produced no defects to recover";

  // At least one reported cluster must sit near a seeded defect centre.
  std::size_t matched = 0;
  for (const ClusterReport& report : run.reports) {
    for (const auto& summary : report.clusters) {
      for (const auto& defect : defects) {
        const double dx = summary.centroid_x - defect.center_x_mm;
        const double dy = summary.centroid_y - defect.center_y_mm;
        if (dx * dx + dy * dy <
            (defect.radius_mm + 2.0) * (defect.radius_mm + 2.0)) {
          ++matched;
        }
      }
    }
  }
  EXPECT_GT(matched, 0u) << "no reported cluster matched a seeded defect";
}

TEST(ThermalPipeline, CleanJobReportsFewClusters) {
  Strata strata;
  am::MachineParams machine_params = SmallMachineParams(20, /*birth_rate=*/0.0);
  UseCaseParams params;
  params.cell_px = 5;
  params.min_report_points = 6;
  auto run = RunPipeline(&strata, machine_params, params);

  std::size_t total_clusters = 0;
  for (const ClusterReport& report : run.reports) {
    total_clusters += report.clusters.size();
  }
  // Threshold tails produce isolated false events, but they should rarely
  // form reportable clusters on a defect-free build.
  EXPECT_LE(total_clusters, run.reports.size() / 4);
}

TEST(ThermalPipeline, ParallelStagesProduceSameReportCount) {
  UseCaseParams sequential;
  sequential.cell_px = 5;
  UseCaseParams parallel = sequential;
  parallel.partition_parallelism = 3;
  parallel.detect_parallelism = 3;

  Strata s1;
  auto run1 = RunPipeline(&s1, SmallMachineParams(15), sequential);
  Strata s2;
  auto run2 = RunPipeline(&s2, SmallMachineParams(15), parallel);

  EXPECT_EQ(run1.reports.size(), run2.reports.size());

  // Same per-(layer, specimen) event totals regardless of parallelism.
  auto window_events = [](const PipelineRun& run) {
    std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> m;
    for (const ClusterReport& r : run.reports) {
      m[{r.layer, r.specimen}] = r.window_events;
    }
    return m;
  };
  EXPECT_EQ(window_events(run1), window_events(run2));
}

TEST(ThermalPipeline, LivePacingMeetsQosOnCompressedClock) {
  Strata strata;
  UseCaseParams params;
  params.cell_px = 5;
  // Live mode compressed 1000x: 33 ms per layer.
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kLive;
  pacing.time_scale = 0.001;
  auto run = RunPipeline(&strata, SmallMachineParams(10), params, pacing);
  EXPECT_EQ(run.reports.size(), 20u);
  EXPECT_LT(run.latency.Quantile(0.99), SecondsToMicros(3.0));
}

TEST(ThermalPipeline, EventConnectorTopicExists) {
  Strata strata;
  UseCaseParams params;
  params.cell_px = 5;
  params.machine_id = "mX";
  auto run = RunPipeline(&strata, SmallMachineParams(5), params);
  EXPECT_TRUE(strata.broker().HasTopic("raw.ot.mX"));
  EXPECT_TRUE(strata.broker().HasTopic("raw.pp.mX"));
  EXPECT_TRUE(strata.broker().HasTopic("events.cluster.mX"));
}

TEST(ThermalPipeline, TwoMachinesRunInParallelPipelines) {
  Strata strata;
  std::mutex mu;
  std::map<std::string, std::size_t> reports_per_machine;

  std::vector<std::shared_ptr<am::MachineSimulator>> machines;
  for (int m = 0; m < 2; ++m) {
    UseCaseParams params;
    params.machine_id = "m" + std::to_string(m);
    params.cell_px = 5;
    am::MachineParams machine_params = SmallMachineParams(10);
    machine_params.job.job_id = m + 1;
    ComputeAndStoreThresholds(&strata, params.machine_id, machine_params.job,
                              3, params.cell_px)
        .OrDie();
    auto machine = std::make_shared<am::MachineSimulator>(machine_params);
    machines.push_back(machine);
    CollectorPacing pacing;
    pacing.mode = CollectorPacing::Mode::kReplay;
    BuildThermalPipeline(&strata, machine, pacing, params,
                         [&, id = params.machine_id](const ClusterReport&) {
                           std::lock_guard lock(mu);
                           ++reports_per_machine[id];
                         });
  }
  strata.Deploy();
  strata.WaitForCompletion();

  EXPECT_EQ(reports_per_machine["m0"], 20u);
  EXPECT_EQ(reports_per_machine["m1"], 20u);
}

}  // namespace
}  // namespace strata::core
