// Crash-recovery plumbing above the SPE: the kv-backed checkpoint store,
// the effectively-once durable sink, and a full facade-level
// checkpoint -> shutdown -> rebuild -> recover round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.hpp"
#include "common/fs.hpp"
#include "strata/checkpoint_store.hpp"
#include "strata/strata.hpp"

namespace strata::core {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool WaitUntil(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// --------------------------------------------------- KvCheckpointStore

class KvCheckpointStoreTest : public ::testing::Test {
 protected:
  KvCheckpointStoreTest() : dir_("ckpt-store") {
    db_ = std::move(kv::DB::Open(dir_.path(), {})).value();
  }
  strata::fs::ScopedTempDir dir_;
  std::unique_ptr<kv::DB> db_;
};

TEST_F(KvCheckpointStoreTest, FreshStoreHasNoEpoch) {
  KvCheckpointStore store(db_.get());
  EXPECT_TRUE(store.LatestEpoch().status().IsNotFound());
  EXPECT_FALSE(store.Get(1).ok());
}

TEST_F(KvCheckpointStoreTest, PutCommitGetRoundTrip) {
  KvCheckpointStore store(db_.get());
  ASSERT_TRUE(store.Put(1, "manifest-1").ok());
  // Put alone is staging: not recoverable until the commit pointer moves.
  EXPECT_TRUE(store.LatestEpoch().status().IsNotFound());
  ASSERT_TRUE(store.Commit(1).ok());

  auto latest = store.LatestEpoch();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 1u);
  auto blob = store.Get(1);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, "manifest-1");
}

TEST_F(KvCheckpointStoreTest, GcKeepsTwoNewestEpochs) {
  KvCheckpointStore store(db_.get());
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) {
    ASSERT_TRUE(
        store.Put(epoch, "m" + std::to_string(epoch)).ok());
    ASSERT_TRUE(store.Commit(epoch).ok());
  }
  EXPECT_EQ(*store.LatestEpoch(), 5u);
  // The previous complete epoch survives as a fallback recovery point;
  // everything older is garbage-collected.
  EXPECT_TRUE(store.Get(5).ok());
  EXPECT_TRUE(store.Get(4).ok());
  EXPECT_FALSE(store.Get(3).ok());
  EXPECT_FALSE(store.Get(2).ok());
  EXPECT_FALSE(store.Get(1).ok());
}

TEST_F(KvCheckpointStoreTest, SurvivesReopen) {
  {
    KvCheckpointStore store(db_.get());
    ASSERT_TRUE(store.Put(7, "persisted").ok());
    ASSERT_TRUE(store.Commit(7).ok());
  }
  db_.reset();
  db_ = std::move(kv::DB::Open(dir_.path(), {})).value();
  KvCheckpointStore store(db_.get());
  ASSERT_TRUE(store.LatestEpoch().ok());
  EXPECT_EQ(*store.LatestEpoch(), 7u);
  EXPECT_EQ(*store.Get(7), "persisted");
}

TEST_F(KvCheckpointStoreTest, DistinctPrefixesAreIndependent) {
  KvCheckpointStore a(db_.get(), "a/");
  KvCheckpointStore b(db_.get(), "b/");
  ASSERT_TRUE(a.Put(1, "for-a").ok());
  ASSERT_TRUE(a.Commit(1).ok());
  EXPECT_TRUE(b.LatestEpoch().status().IsNotFound());
}

// ------------------------------------------------------- DeliverDurable

TEST(DeliverDurable, WritesEachKeyOnceAndCountsDuplicates) {
  Strata strata;
  auto next = std::make_shared<int>(0);
  auto stream = strata.AddSource("src", [next]() -> std::optional<spe::Tuple> {
    if (*next >= 6) return std::nullopt;
    spe::Tuple t;
    t.job = 1;
    t.layer = *next;
    t.event_time = (*next)++ + 1;
    return t;
  });
  // Six tuples, three distinct keys: the second write of each key must be
  // recognized as a duplicate and dropped.
  strata.DeliverDurable("reports", stream, "reports/",
                        [](const spe::Tuple& t) {
                          return std::to_string(t.layer % 3);
                        });
  strata.Deploy();
  strata.WaitForCompletion();

  auto entries = strata.GetByPrefix("reports/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);

  bool found = false;
  for (const auto& sample : strata.MetricsSnapshot().samples) {
    if (sample.name == "strata.deliver_durable.duplicates") {
      EXPECT_EQ(sample.value, 3);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "duplicate counter not exported";
  strata.Shutdown();
}

// ------------------------------------- facade-level checkpoint/recover

std::int64_t FirstDelivered(const std::vector<std::int64_t>& values) {
  return values.empty() ? -1 : values.front();
}

TEST(StrataRecovery, RebuildRecoversFromLatestEpochAndResumesSource) {
  strata::fs::ScopedTempDir dir("strata-recover");
  StrataOptions options;
  options.data_dir = dir.path();
  options.persistent_connectors = true;
  options.checkpoint_interval_ms = 20;

  // ---- run A: emit until at least one epoch commits, then shut down ----
  std::int64_t source_position_a = 0;
  {
    Strata strata(options);
    auto position = std::make_shared<std::int64_t>(0);
    auto stream = strata.AddSource(
        "gen", [position]() -> std::optional<spe::Tuple> {
          std::this_thread::sleep_for(1ms);  // outlive several intervals
          spe::Tuple t;
          t.job = 1;
          t.layer = (*position)++;
          t.event_time = t.layer + 1;
          return t;
        });
    std::atomic<std::int64_t> delivered{0};
    strata.Deliver("sink", stream, [&](const spe::Tuple&) { ++delivered; });
    strata.query().FindOperator("gen")->SetStateHooks(
        [position](std::uint64_t, std::string* out) {
          codec::PutVarint64(out, static_cast<std::uint64_t>(*position));
          return Status::Ok();
        },
        [position](std::string_view blob) {
          std::uint64_t value = 0;
          if (!codec::GetVarint64(&blob, &value)) {
            return Status::Corruption("gen snapshot");
          }
          *position = static_cast<std::int64_t>(value);
          return Status::Ok();
        });
    strata.Deploy();
    EXPECT_EQ(strata.query().recovered_epoch(), 0u);  // fresh start
    ASSERT_TRUE(WaitUntil([&] {
      return strata.query().checkpointer()->stats().epochs_completed >= 1 &&
             delivered.load() > 0;
    }));
    strata.Shutdown();
    source_position_a = *position;
    ASSERT_GT(source_position_a, 0);
  }

  // ---- run B: same directory, same pipeline, fresh process state ----
  {
    Strata strata(options);
    auto position = std::make_shared<std::int64_t>(0);
    auto restored_at = std::make_shared<std::int64_t>(-1);
    auto stream = strata.AddSource(
        "gen", [position]() -> std::optional<spe::Tuple> {
          spe::Tuple t;
          t.job = 1;
          t.layer = (*position)++;
          t.event_time = t.layer + 1;
          return t;
        });
    std::vector<std::int64_t> delivered;
    std::mutex mu;
    strata.Deliver("sink", stream, [&](const spe::Tuple& t) {
      std::lock_guard lock(mu);
      delivered.push_back(t.layer);
    });
    strata.query().FindOperator("gen")->SetStateHooks(
        [position](std::uint64_t, std::string* out) {
          codec::PutVarint64(out, static_cast<std::uint64_t>(*position));
          return Status::Ok();
        },
        [position, restored_at](std::string_view blob) {
          std::uint64_t value = 0;
          if (!codec::GetVarint64(&blob, &value)) {
            return Status::Corruption("gen snapshot");
          }
          *position = static_cast<std::int64_t>(value);
          *restored_at = *position;
          return Status::Ok();
        });
    strata.Deploy();  // recovers before starting

    // The checkpoint was found and the generator resumed mid-stream
    // instead of re-emitting from zero.
    EXPECT_GT(strata.query().recovered_epoch(), 0u);
    EXPECT_GT(*restored_at, 0) << "generator position not restored";
    EXPECT_LE(*restored_at, source_position_a);

    ASSERT_TRUE(WaitUntil([&] {
      std::lock_guard lock(mu);
      return delivered.size() >= 5;
    }));
    strata.Shutdown();

    std::lock_guard lock(mu);
    // Replay starts at the checkpoint cut (at-least-once), never at zero:
    // the subscriber's restored cursor skips everything the checkpoint
    // already covered.
    EXPECT_GT(FirstDelivered(delivered), 0)
        << "recovery replayed the stream from the beginning";
  }
}

}  // namespace
}  // namespace strata::core
