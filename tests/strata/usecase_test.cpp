// Unit tests of the Algorithm-1 user functions (isolateSpecimen,
// isolateCell, labelCell, DBSCAN correlator) in isolation.
#include "strata/usecase.hpp"

#include <gtest/gtest.h>

namespace strata::core {
namespace {

TEST(ClassifyCell, FiveClasses) {
  am::ThermalThresholds t{100, 110, 140, 150};
  EXPECT_EQ(ClassifyCell(90, t), CellLabel::kVeryCold);
  EXPECT_EQ(ClassifyCell(105, t), CellLabel::kCold);
  EXPECT_EQ(ClassifyCell(125, t), CellLabel::kRegular);
  EXPECT_EQ(ClassifyCell(145, t), CellLabel::kWarm);
  EXPECT_EQ(ClassifyCell(160, t), CellLabel::kVeryWarm);
}

TEST(ClassifyCell, BoundariesAreInclusiveToRegular) {
  am::ThermalThresholds t{100, 110, 140, 150};
  EXPECT_EQ(ClassifyCell(100, t), CellLabel::kCold);
  EXPECT_EQ(ClassifyCell(110, t), CellLabel::kRegular);
  EXPECT_EQ(ClassifyCell(140, t), CellLabel::kRegular);
  EXPECT_EQ(ClassifyCell(150, t), CellLabel::kWarm);
}

spe::Tuple FusedLayerTupleOrDie(const am::BuildJobSpec& job, int layer) {
  am::MachineParams machine_params;
  machine_params.job = job;
  am::MachineSimulator machine(machine_params);
  am::OtImageGenerator generator(job, nullptr);
  spe::Tuple t;
  t.event_time = (layer + 1) * 1'000'000;
  t.job = job.job_id;
  t.layer = layer;
  t.stimulus = 42;
  t.payload.Set(kOtImageKey, am::MakeImageValue(generator.GenerateLayer(layer)));
  t.payload.MergeDisjoint(machine.PrintingParams(layer)).OrDie();
  return t;
}

TEST(IsolateSpecimen, EmitsOneTuplePlusMarkerPerSpecimen) {
  const am::BuildJobSpec job = am::MakeSmallJob(1, 200, 2);
  const spe::Tuple fused = FusedLayerTupleOrDie(job, 0);
  auto fn = IsolateSpecimen();
  const auto out = fn(fused);
  ASSERT_EQ(out.size(), 4u);  // 2 specimens x (tuple + marker)

  EXPECT_EQ(out[0].specimen, 0);
  EXPECT_FALSE(IsLayerMarker(out[0]));
  EXPECT_TRUE(IsLayerMarker(out[1]));
  EXPECT_EQ(out[1].specimen, 0);
  EXPECT_EQ(out[2].specimen, 1);
  EXPECT_TRUE(IsLayerMarker(out[3]));

  // Specimen tuples carry the frame and geometry.
  EXPECT_TRUE(out[0].payload.Has(kOtImageKey));
  EXPECT_TRUE(out[0].payload.Has("x_mm"));
  EXPECT_TRUE(out[0].payload.Has("px_per_mm"));
}

TEST(IsolateSpecimen, SkipsToppedOutSpecimens) {
  am::BuildJobSpec job = am::MakeSmallJob(1, 200, 2);
  job.specimens[0].height_mm = 1.0;  // 25 layers at 40 um
  const spe::Tuple fused = FusedLayerTupleOrDie(job, 50);
  const auto out = IsolateSpecimen()(fused);
  ASSERT_EQ(out.size(), 2u);  // only the tall specimen + its marker
  EXPECT_EQ(out[0].specimen, 1);
}

TEST(IsolateSpecimen, ForwardsMarkersUntouched) {
  spe::Tuple marker;
  marker.payload.Set(kLayerMarkerKey, true);
  const auto out = IsolateSpecimen()(marker);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(IsLayerMarker(out[0]));
}

TEST(IsolateCell, ProducesExpectedCellGrid) {
  const am::BuildJobSpec job = am::MakeSmallJob(1, 200, 1);
  const spe::Tuple fused = FusedLayerTupleOrDie(job, 0);
  const auto specimens = IsolateSpecimen()(fused);
  const spe::Tuple& spec_tuple = specimens[0];

  // Specimen 25x50 mm at 0.8 px/mm (200px/250mm) = 20x40 px; cell 10 -> 2x4.
  const auto cells = IsolateCell(10)(spec_tuple);
  EXPECT_EQ(cells.size(), 8u);
  std::set<std::int64_t> portions;
  for (const spe::Tuple& cell : cells) {
    EXPECT_TRUE(cell.payload.Has("mean"));
    EXPECT_TRUE(cell.payload.Has("cx_mm"));
    EXPECT_GT(cell.payload.Get("mean").AsDouble(), 50.0);  // melt emission
    portions.insert(cell.portion);
  }
  EXPECT_EQ(portions.size(), 8u);  // distinct portion ids
}

TEST(IsolateCell, CellCountScalesInverseQuadratically) {
  const am::BuildJobSpec job = am::MakeSmallJob(1, 400, 1);
  const spe::Tuple fused = FusedLayerTupleOrDie(job, 0);
  const auto specimens = IsolateSpecimen()(fused);
  const auto big = IsolateCell(20)(specimens[0]).size();
  const auto small = IsolateCell(10)(specimens[0]).size();
  EXPECT_EQ(small, big * 4);
}

TEST(IsolateCell, RejectsBadCellSize) {
  EXPECT_THROW(IsolateCell(0), std::invalid_argument);
}

TEST(LabelCell, ThrowsWhenThresholdsMissing) {
  Strata strata;
  auto fn = LabelCell(&strata, "machine-without-thresholds");
  spe::Tuple cell;
  cell.payload.Set("mean", 100.0);
  cell.payload.Set("cx_mm", 1.0);
  cell.payload.Set("cy_mm", 1.0);
  EXPECT_THROW(fn(cell), std::runtime_error);
}

TEST(LabelCell, EmitsOnlyExtremeCells) {
  Strata strata;
  am::ThermalThresholds thresholds{100, 110, 140, 150};
  ASSERT_TRUE(
      strata.Store(am::ThresholdKey("m"), thresholds.Serialize()).ok());
  auto fn = LabelCell(&strata, "m");

  auto cell_with_mean = [](double mean) {
    spe::Tuple t;
    t.specimen = 2;
    t.portion = 3;
    t.payload.Set("mean", mean);
    t.payload.Set("cx_mm", 5.0);
    t.payload.Set("cy_mm", 6.0);
    return t;
  };

  EXPECT_EQ(fn(cell_with_mean(125)).size(), 0u);  // regular
  EXPECT_EQ(fn(cell_with_mean(105)).size(), 0u);  // cold but not very
  EXPECT_EQ(fn(cell_with_mean(145)).size(), 0u);  // warm but not very

  const auto cold_events = fn(cell_with_mean(90));
  ASSERT_EQ(cold_events.size(), 1u);
  EXPECT_EQ(cold_events[0].payload.Get("label").AsInt(),
            static_cast<int>(CellLabel::kVeryCold));
  EXPECT_EQ(cold_events[0].specimen, 2);
  EXPECT_GT(cold_events[0].payload.Get("deviation").AsDouble(), 0.0);

  const auto hot_events = fn(cell_with_mean(160));
  ASSERT_EQ(hot_events.size(), 1u);
  EXPECT_EQ(hot_events[0].payload.Get("label").AsInt(),
            static_cast<int>(CellLabel::kVeryWarm));
}

TEST(LabelCell, ForwardsMarkers) {
  Strata strata;
  auto fn = LabelCell(&strata, "m");  // thresholds missing, but markers
                                      // must pass without touching the KV.
  spe::Tuple marker;
  marker.payload.Set(kLayerMarkerKey, true);
  const auto out = fn(marker);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(IsLayerMarker(out[0]));
}

TEST(DbscanCorrelator, ClustersWindowEvents) {
  UseCaseParams params;
  params.cell_px = 10;
  params.min_report_points = 3;
  params.dbscan_min_pts = 2;
  auto fn = DbscanCorrelator(params, /*px_per_mm=*/8.0);

  EventWindow window;
  window.job = 1;
  window.layer = 5;
  window.specimen = 0;
  // A tight clump of 4 events + 1 far outlier.
  for (int i = 0; i < 4; ++i) {
    spe::Tuple e;
    e.layer = 5;
    e.payload.Set("cx_mm", 10.0 + i * 0.5);
    e.payload.Set("cy_mm", 10.0);
    e.payload.Set("deviation", 20.0);
    window.events.push_back(e);
  }
  spe::Tuple outlier;
  outlier.layer = 5;
  outlier.payload.Set("cx_mm", 100.0);
  outlier.payload.Set("cy_mm", 100.0);
  outlier.payload.Set("deviation", 20.0);
  window.events.push_back(outlier);

  const auto out = fn(window);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload.Get("cluster_count").AsInt(), 1);
  EXPECT_EQ(out[0].payload.Get("window_events").AsInt(), 5);
  EXPECT_EQ(out[0].payload.Get("noise_events").AsInt(), 1);

  const auto report =
      out[0].payload.Get("report").AsOpaque<ClusterReportValue>();
  ASSERT_EQ(report->report().clusters.size(), 1u);
  EXPECT_EQ(report->report().clusters[0].point_count, 4u);
}

TEST(DbscanCorrelator, EmptyWindowStillReports) {
  UseCaseParams params;
  auto fn = DbscanCorrelator(params, 8.0);
  EventWindow window;
  window.layer = 3;
  const auto out = fn(window);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload.Get("cluster_count").AsInt(), 0);
  EXPECT_EQ(out[0].payload.Get("window_events").AsInt(), 0);
}

TEST(DbscanCorrelator, RenderingProducedWhenEnabled) {
  UseCaseParams params;
  params.render_cluster_images = true;
  params.dbscan_min_pts = 2;
  auto fn = DbscanCorrelator(params, 8.0);
  EventWindow window;
  for (int i = 0; i < 3; ++i) {
    spe::Tuple e;
    e.layer = 0;
    e.payload.Set("cx_mm", 5.0 + i);
    e.payload.Set("cy_mm", 5.0);
    e.payload.Set("deviation", 10.0);
    window.events.push_back(e);
  }
  const auto out = fn(window);
  ASSERT_EQ(out.size(), 1u);
  const auto report =
      out[0].payload.Get("report").AsOpaque<ClusterReportValue>();
  ASSERT_NE(report->report().rendering, nullptr);
  EXPECT_GT(report->report().rendering->width(), 0);
}

TEST(RenderClusterImage, PaintsClusterPoints) {
  std::vector<cluster::Point> points{{5, 5, 0}, {6, 5, 0}, {20, 20, 0}};
  std::vector<int> labels{0, 0, cluster::kNoise};
  am::SpecimenSpec bounds;
  bounds.x_mm = 0;
  bounds.y_mm = 0;
  bounds.width_mm = 25;
  bounds.length_mm = 25;
  const am::GrayImage image = RenderClusterImage(points, labels, bounds, 4.0);
  EXPECT_EQ(image.width(), 100);
  EXPECT_EQ(image.height(), 100);
  EXPECT_GT(image.at(20, 20), 0);   // cluster point at (5mm,5mm)*4
  EXPECT_GT(image.at(80, 80), 0);   // noise painted dim
  EXPECT_LT(image.at(80, 80), 50);
  EXPECT_EQ(image.at(50, 90), 0);   // empty area
}

TEST(ComputeAndStoreThresholds, WritesToKvStore) {
  Strata strata;
  const am::BuildJobSpec job = am::MakeSmallJob(1, 200, 1);
  ASSERT_TRUE(
      ComputeAndStoreThresholds(&strata, "m9", job, /*history_layers=*/3,
                                /*cell_px=*/10)
          .ok());
  auto stored = strata.Get(am::ThresholdKey("m9"));
  ASSERT_TRUE(stored.ok());
  auto thresholds = am::ThermalThresholds::Deserialize(*stored);
  ASSERT_TRUE(thresholds.ok());
  EXPECT_TRUE(thresholds->valid());
}

}  // namespace
}  // namespace strata::core
