#include "strata/collectors.hpp"

#include <gtest/gtest.h>

namespace strata::core {
namespace {

std::shared_ptr<am::MachineSimulator> SmallMachine(int layers = 5) {
  am::MachineParams params;
  params.job = am::MakeSmallJob(1, 150, 2);
  params.layers_limit = layers;
  return std::make_shared<am::MachineSimulator>(params);
}

CollectorPacing Unthrottled() {
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  pacing.replay_rate = 0.0;
  return pacing;
}

TEST(OtImageCollector, EmitsOneTuplePerLayer) {
  auto machine = SmallMachine(4);
  auto source = OtImageCollector(machine, Unthrottled());
  for (int layer = 0; layer < 4; ++layer) {
    auto tuple = source();
    ASSERT_TRUE(tuple.has_value()) << layer;
    EXPECT_EQ(tuple->layer, layer);
    EXPECT_EQ(tuple->job, 1);
    EXPECT_GT(tuple->event_time, 0);
    const auto image = tuple->payload.Get(kOtImageKey).AsOpaque<am::ImageValue>();
    EXPECT_EQ(image->image().width(), 150);
  }
  EXPECT_FALSE(source().has_value());
}

TEST(PrintingParameterCollector, EmitsLayoutAndParameters) {
  auto machine = SmallMachine(3);
  auto source = PrintingParameterCollector(machine, Unthrottled());
  auto tuple = source();
  ASSERT_TRUE(tuple.has_value());
  EXPECT_EQ(tuple->layer, 0);
  EXPECT_EQ(tuple->payload.Get("specimen_count").AsInt(), 2);
  EXPECT_TRUE(tuple->payload.Has("scan_angle_deg"));
  EXPECT_TRUE(tuple->payload.Has("material"));
  ASSERT_TRUE(source().has_value());
  ASSERT_TRUE(source().has_value());
  EXPECT_FALSE(source().has_value());
}

TEST(Collectors, EventTimesAgreeBetweenOtAndPp) {
  // fuse() with window=0 requires τ equality: both collectors must stamp
  // the same event time for the same layer.
  auto machine = SmallMachine(3);
  auto ot = OtImageCollector(machine, Unthrottled());
  auto pp = PrintingParameterCollector(machine, Unthrottled());
  for (int layer = 0; layer < 3; ++layer) {
    auto ot_tuple = ot();
    auto pp_tuple = pp();
    ASSERT_TRUE(ot_tuple.has_value() && pp_tuple.has_value());
    EXPECT_EQ(ot_tuple->event_time, pp_tuple->event_time) << layer;
    EXPECT_EQ(ot_tuple->layer, pp_tuple->layer);
  }
}

TEST(Collectors, LivePacingSpacesEmissions) {
  auto machine = SmallMachine(3);
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kLive;
  pacing.time_scale = 0.001;  // 33 ms per layer
  auto source = OtImageCollector(machine, pacing);

  const Timestamp start = Clock::System().Now();
  while (source().has_value()) {
  }
  const double elapsed_ms = MicrosToMillis(Clock::System().Now() - start);
  // Layers 0..2 at 33 ms spacing: >= ~60 ms total (layer 0 is immediate).
  EXPECT_GE(elapsed_ms, 50.0);
}

TEST(Collectors, ReplayRateThrottles) {
  auto machine = SmallMachine(5);
  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  pacing.replay_rate = 100.0;  // 10 ms gaps
  auto source = OtImageCollector(machine, pacing);
  const Timestamp start = Clock::System().Now();
  while (source().has_value()) {
  }
  const double elapsed_ms = MicrosToMillis(Clock::System().Now() - start);
  EXPECT_GE(elapsed_ms, 35.0);  // 4 gaps x 10 ms
}

TEST(Collectors, TerminatedMachineEndsOtStream) {
  auto machine = SmallMachine(100);
  auto source = OtImageCollector(machine, Unthrottled());
  ASSERT_TRUE(source().has_value());
  machine->control().TerminateJob();
  EXPECT_FALSE(source().has_value());
}

}  // namespace
}  // namespace strata::core
