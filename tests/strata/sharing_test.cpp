// Pipeline sharing (paper §3/§4: "parts of a given data pipeline can be
// shared by different experts and/or across jobs" and "distinct pipelines
// from one or more users can overlap"). One OT source feeds two independent
// analyses through Split; a second consumer group re-reads the same raw
// topic for an archival consumer.
#include <gtest/gtest.h>

#include <atomic>

#include "strata/usecase.hpp"

namespace strata::core {
namespace {

TEST(PipelineSharing, SplitFeedsTwoExpertAnalyses) {
  Strata strata_rt;

  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, 250, 1);
  machine_params.layers_limit = 10;
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);

  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  auto ot = strata_rt.AddSource("ot.shared",
                                OtImageCollector(machine, pacing));
  auto branches = strata_rt.Split("fan", ot, 2);

  // Expert A: frame-mean watchdog.
  std::atomic<int> watchdog_tuples{0};
  auto watched = strata_rt.DetectEvent(
      "watchdog", branches[0], [](const spe::Tuple& t) {
        const auto image =
            t.payload.Get(kOtImageKey).AsOpaque<am::ImageValue>();
        spe::Tuple out;
        out.payload.Set("frame_mean",
                        image->image().RegionMean(0, 0, image->image().width(),
                                                  image->image().height()));
        return std::vector<spe::Tuple>{out};
      });
  strata_rt.Deliver("expert-a", watched,
                    [&](const spe::Tuple&) { ++watchdog_tuples; });

  // Expert B: raw archival counter.
  std::atomic<int> archived{0};
  strata_rt.Deliver("expert-b", branches[1],
                    [&](const spe::Tuple&) { ++archived; });

  strata_rt.Deploy();
  strata_rt.WaitForCompletion();

  EXPECT_EQ(watchdog_tuples.load(), 10);
  EXPECT_EQ(archived.load(), 10);
}

TEST(PipelineSharing, SecondConsumerGroupReplaysRawTopic) {
  Strata strata_rt;

  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, 200, 1);
  machine_params.layers_limit = 6;
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);

  CollectorPacing pacing;
  pacing.mode = CollectorPacing::Mode::kReplay;
  auto ot = strata_rt.AddSource("ot.replayable",
                                OtImageCollector(machine, pacing));
  std::atomic<int> live{0};
  strata_rt.Deliver("live", ot, [&](const spe::Tuple&) { ++live; });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  EXPECT_EQ(live.load(), 6);

  // The raw topic retains everything: a late-joining analysis (another
  // expert, another group) replays the whole job.
  auto subscriber = std::move(ConnectorSubscriber::Create(
                                  &strata_rt.broker(), "raw.ot.replayable",
                                  "late-expert"))
                        .value();
  auto source = subscriber->AsSourceFn();
  int replayed = 0;
  while (auto tuple = source()) {
    EXPECT_TRUE(tuple->payload.Has(kOtImageKey));
    ++replayed;
  }
  EXPECT_EQ(replayed, 6);
}

TEST(PipelineSharing, ThermalAndStreakStagesCoexist) {
  // Two full pipelines (different machines) plus a watchdog share one
  // Strata deployment: the SPE runs all operators, the broker hosts all
  // topics, the KV store serves both threshold sets.
  Strata strata_rt;

  std::atomic<int> thermal_reports{0};
  {
    am::MachineParams machine_params;
    machine_params.job = am::MakeSmallJob(1, 250, 1);
    machine_params.layers_limit = 8;
    UseCaseParams params;
    params.machine_id = "thermal-m";
    params.cell_px = 5;
    ComputeAndStoreThresholds(&strata_rt, params.machine_id,
                              machine_params.job, 2, params.cell_px)
        .OrDie();
    auto machine = std::make_shared<am::MachineSimulator>(machine_params);
    BuildThermalPipeline(&strata_rt, machine,
                         CollectorPacing{.mode = CollectorPacing::Mode::kReplay},
                         params,
                         [&](const ClusterReport&) { ++thermal_reports; });
  }

  std::atomic<int> watchdog{0};
  {
    am::MachineParams machine_params;
    machine_params.job = am::MakeSmallJob(2, 250, 1);
    machine_params.layers_limit = 8;
    auto machine = std::make_shared<am::MachineSimulator>(machine_params);
    auto ot = strata_rt.AddSource(
        "ot.watchdog-m",
        OtImageCollector(machine,
                         CollectorPacing{.mode = CollectorPacing::Mode::kReplay}));
    strata_rt.Deliver("watch", ot, [&](const spe::Tuple&) { ++watchdog; });
  }

  strata_rt.Deploy();
  strata_rt.WaitForCompletion();
  EXPECT_EQ(thermal_reports.load(), 8);
  EXPECT_EQ(watchdog.load(), 8);
  EXPECT_GE(strata_rt.broker().ListTopics().size(), 4u);
}

}  // namespace
}  // namespace strata::core
