// Tests of the Strata facade API (Table 1) on synthetic pipelines.
#include "strata/strata.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

namespace strata::core {
namespace {

spe::SourceFn CountingSource(std::int64_t job, int layers,
                             const std::string& value_key) {
  auto next = std::make_shared<int>(0);
  return [job, layers, value_key, next]() -> std::optional<spe::Tuple> {
    if (*next >= layers) return std::nullopt;
    spe::Tuple t;
    t.layer = (*next)++;
    t.event_time = (t.layer + 1) * 1000;
    t.job = job;
    t.payload.Set(value_key, t.layer * 10);
    return t;
  };
}

class Collector {
 public:
  spe::SinkFn AsSink() {
    return [this](const spe::Tuple& t) {
      std::lock_guard lock(mu_);
      tuples_.push_back(t);
    };
  }
  std::vector<spe::Tuple> tuples() const {
    std::lock_guard lock(mu_);
    return tuples_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<spe::Tuple> tuples_;
};

TEST(StrataKv, StoreAndGet) {
  Strata strata;
  ASSERT_TRUE(strata.Store("key", "value").ok());
  auto got = strata.Get("key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "value");
  EXPECT_TRUE(strata.Get("missing").status().IsNotFound());
}

TEST(StrataKv, GetByPrefixListsInOrder) {
  Strata strata;
  ASSERT_TRUE(strata.Store("thresholds/m1", "a").ok());
  ASSERT_TRUE(strata.Store("thresholds/m0", "b").ok());
  ASSERT_TRUE(strata.Store("other/x", "c").ok());
  auto entries = strata.GetByPrefix("thresholds/");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].first, "thresholds/m0");
  EXPECT_EQ((*entries)[1].first, "thresholds/m1");
  EXPECT_EQ((*entries)[1].second, "a");

  auto none = strata.GetByPrefix("zzz/");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(StrataApi, AddSourceRoutesThroughConnector) {
  Strata strata;
  auto stream = strata.AddSource("src", CountingSource(1, 5, "v"));
  Collector collector;
  strata.Deliver("sink", stream, collector.AsSink());
  strata.Deploy();
  strata.WaitForCompletion();

  const auto tuples = collector.tuples();
  ASSERT_EQ(tuples.size(), 5u);
  // The connector topic must exist (Raw Data Connector module).
  EXPECT_TRUE(strata.broker().HasTopic("raw.src"));
  // Data actually traveled through the broker.
  EXPECT_EQ((*strata.broker().GetLog("raw.src", 0))->EndOffset(),
            6);  // 5 tuples + EOS
}

TEST(StrataApi, FuseMatchesJobAndLayer) {
  Strata strata;
  auto a = strata.AddSource("a", CountingSource(1, 10, "left"));
  auto b = strata.AddSource("b", CountingSource(1, 10, "right"));
  auto fused = strata.Fuse("fuse", a, b);
  Collector collector;
  strata.Deliver("sink", fused, collector.AsSink());
  strata.Deploy();
  strata.WaitForCompletion();

  const auto tuples = collector.tuples();
  ASSERT_EQ(tuples.size(), 10u);
  for (const spe::Tuple& t : tuples) {
    EXPECT_TRUE(t.payload.Has("left"));
    EXPECT_TRUE(t.payload.Has("right"));
    EXPECT_EQ(t.payload.Get("left").AsInt(), t.payload.Get("right").AsInt());
  }
}

TEST(StrataApi, FuseDoesNotMatchAcrossJobs) {
  Strata strata;
  auto a = strata.AddSource("a", CountingSource(1, 5, "left"));
  auto b = strata.AddSource("b", CountingSource(2, 5, "right"));
  auto fused = strata.Fuse("fuse", a, b);
  Collector collector;
  strata.Deliver("sink", fused, collector.AsSink());
  strata.Deploy();
  strata.WaitForCompletion();
  EXPECT_TRUE(collector.tuples().empty());
}

TEST(StrataApi, PartitionDefaultSetsSpecimenAndPortion) {
  Strata strata;
  auto src = strata.AddSource("src", CountingSource(1, 3, "v"));
  auto partitioned = strata.Partition("p", src, nullptr);
  Collector collector;
  strata.Deliver("sink", partitioned, collector.AsSink());
  strata.Deploy();
  strata.WaitForCompletion();

  for (const spe::Tuple& t : collector.tuples()) {
    EXPECT_EQ(t.specimen, 0);
    EXPECT_EQ(t.portion, 0);
  }
}

TEST(StrataApi, PartitionCopiesMetadataOntoOutputs) {
  Strata strata;
  auto src = strata.AddSource("src", CountingSource(1, 3, "v"));
  auto partitioned = strata.Partition("p", src, [](const spe::Tuple&) {
    // F returns bare tuples; the framework must fill metadata.
    std::vector<spe::Tuple> out(2);
    out[0].specimen = 0;
    out[1].specimen = 1;
    return out;
  });
  Collector collector;
  strata.Deliver("sink", partitioned, collector.AsSink());
  strata.Deploy();
  strata.WaitForCompletion();

  const auto tuples = collector.tuples();
  ASSERT_EQ(tuples.size(), 6u);
  for (const spe::Tuple& t : tuples) {
    EXPECT_EQ(t.job, 1);
    EXPECT_GE(t.layer, 0);
    EXPECT_GT(t.event_time, 0);
    EXPECT_GT(t.stimulus, 0);
  }
}

TEST(StrataApi, DetectEventFiltersAndTransforms) {
  Strata strata;
  auto src = strata.AddSource("src", CountingSource(1, 10, "v"));
  auto events = strata.DetectEvent("d", src, [](const spe::Tuple& t) {
    std::vector<spe::Tuple> out;
    if (t.payload.Get("v").AsInt() >= 50) {
      spe::Tuple event = t;
      event.payload.Set("event", true);
      out.push_back(event);
    }
    return out;
  });
  Collector collector;
  strata.Deliver("sink", events, collector.AsSink());
  strata.Deploy();
  strata.WaitForCompletion();
  EXPECT_EQ(collector.tuples().size(), 5u);
}

TEST(StrataApi, CorrelateEventsWindowsAcrossLayers) {
  // Source emits per layer: 2 events + a marker (specimen 0).
  Strata strata;
  constexpr int kLayers = 6;
  auto next = std::make_shared<int>(0);
  auto src = strata.AddSource(
      "src", [next]() -> std::optional<spe::Tuple> {
        if (*next >= kLayers * 3) return std::nullopt;
        const int i = (*next)++;
        const int layer = i / 3;
        spe::Tuple t;
        t.job = 1;
        t.layer = layer;
        t.specimen = 0;
        t.event_time = (layer + 1) * 1000;
        if (i % 3 == 2) {
          t.payload.Set(kLayerMarkerKey, true);
        } else {
          t.payload.Set("event_id", i);
        }
        return t;
      });

  std::vector<std::size_t> window_sizes;
  std::mutex mu;
  auto out = strata.CorrelateEvents(
      "corr", src, /*history_layers=*/2,
      [&](const EventWindow& window) -> std::vector<spe::Tuple> {
        std::lock_guard lock(mu);
        window_sizes.push_back(window.events.size());
        spe::Tuple t;
        t.payload.Set("n", static_cast<std::int64_t>(window.events.size()));
        return {t};
      });
  Collector collector;
  strata.Deliver("sink", out, collector.AsSink());
  strata.Deploy();
  strata.WaitForCompletion();

  // One window per layer; events per window: 2 (layer 0), 4 (layer 1),
  // then 6 for layers >= 2 (the window spans layers [l-2, l]).
  ASSERT_EQ(window_sizes.size(), static_cast<std::size_t>(kLayers));
  EXPECT_EQ(window_sizes[0], 2u);
  EXPECT_EQ(window_sizes[1], 4u);
  for (std::size_t i = 2; i < window_sizes.size(); ++i) {
    EXPECT_EQ(window_sizes[i], 6u) << "layer " << i;
  }

  // Output tuples carry the marker's metadata.
  const auto tuples = collector.tuples();
  ASSERT_EQ(tuples.size(), static_cast<std::size_t>(kLayers));
  for (const spe::Tuple& t : tuples) {
    EXPECT_EQ(t.job, 1);
    EXPECT_EQ(t.specimen, 0);
  }
}

TEST(StrataApi, CorrelateEventsSeparatesSpecimens) {
  Strata strata;
  auto next = std::make_shared<int>(0);
  // specimen 0 gets 3 events/layer, specimen 1 gets 1; one layer each.
  auto src = strata.AddSource("src", [next]() -> std::optional<spe::Tuple> {
    // events: s0 e, s0 e, s0 e, s1 e, s0 marker, s1 marker
    static constexpr int kTotal = 6;
    if (*next >= kTotal) return std::nullopt;
    const int i = (*next)++;
    spe::Tuple t;
    t.job = 1;
    t.layer = 0;
    t.event_time = 1000;
    if (i < 3) {
      t.specimen = 0;
      t.payload.Set("e", i);
    } else if (i == 3) {
      t.specimen = 1;
      t.payload.Set("e", i);
    } else {
      t.specimen = i == 4 ? 0 : 1;
      t.payload.Set(kLayerMarkerKey, true);
    }
    return t;
  });

  std::map<std::int64_t, std::size_t> events_by_specimen;
  std::mutex mu;
  auto out = strata.CorrelateEvents(
      "corr", src, 0, [&](const EventWindow& w) -> std::vector<spe::Tuple> {
        std::lock_guard lock(mu);
        events_by_specimen[w.specimen] = w.events.size();
        return {};
      });
  Collector collector;
  strata.Deliver("sink", out, collector.AsSink());
  strata.Deploy();
  strata.WaitForCompletion();

  EXPECT_EQ(events_by_specimen[0], 3u);
  EXPECT_EQ(events_by_specimen[1], 1u);
}

TEST(StrataApi, SplitFeedsTwoPipelines) {
  Strata strata;
  auto src = strata.AddSource("src", CountingSource(1, 4, "v"));
  auto branches = strata.Split("split", src, 2);
  Collector a;
  Collector b;
  strata.Deliver("sink-a", branches[0], a.AsSink());
  strata.Deliver("sink-b", branches[1], b.AsSink());
  strata.Deploy();
  strata.WaitForCompletion();
  EXPECT_EQ(a.tuples().size(), 4u);
  EXPECT_EQ(b.tuples().size(), 4u);
}

TEST(StrataLifecycle, ShutdownStopsInfiniteSource) {
  Strata strata;
  std::atomic<std::int64_t> counter{0};
  auto src = strata.AddSource("inf", [&]() -> std::optional<spe::Tuple> {
    spe::Tuple t;
    t.job = 1;
    t.layer = counter++;
    t.event_time = t.layer + 1;
    return t;
  });
  std::atomic<int> delivered{0};
  strata.Deliver("sink", src, [&](const spe::Tuple&) { ++delivered; });
  strata.Deploy();
  while (delivered.load() < 10) std::this_thread::yield();
  strata.Shutdown();  // must not hang
  EXPECT_GE(delivered.load(), 10);
}

TEST(StrataLifecycle, DoubleDeployThrows) {
  Strata strata;
  auto src = strata.AddSource("s", CountingSource(1, 1, "v"));
  strata.Deliver("sink", src, [](const spe::Tuple&) {});
  strata.Deploy();
  EXPECT_THROW(strata.Deploy(), std::logic_error);
  strata.WaitForCompletion();
}

TEST(StrataLifecycle, KvPersistsAcrossInstancesWithSameDir) {
  strata::fs::ScopedTempDir dir("strata-kv");
  {
    StrataOptions options;
    options.data_dir = dir.path();
    Strata strata(options);
    ASSERT_TRUE(strata.Store("persist", "me").ok());
  }
  StrataOptions options;
  options.data_dir = dir.path();
  Strata strata(options);
  auto got = strata.Get("persist");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "me");
}

}  // namespace
}  // namespace strata::core
