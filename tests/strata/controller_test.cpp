// Feedback-loop control tests: machine-side command semantics, controller
// policy, and the closed loop end-to-end (defects disappear after the
// controller adjusts the laser; hopeless jobs terminate early).
#include "strata/controller.hpp"

#include <gtest/gtest.h>

#include <mutex>

namespace strata::core {
namespace {

TEST(ControlState, MitigationFromLayer) {
  am::ControlState control;
  EXPECT_FALSE(control.IsMitigated(0, 10));
  control.AdjustSpecimen(0, 10);
  EXPECT_FALSE(control.IsMitigated(0, 9));
  EXPECT_TRUE(control.IsMitigated(0, 10));
  EXPECT_TRUE(control.IsMitigated(0, 50));
  EXPECT_FALSE(control.IsMitigated(1, 50));  // other specimen untouched
}

TEST(ControlState, AdjustIsIdempotentKeepingEarliestLayer) {
  am::ControlState control;
  control.AdjustSpecimen(0, 20);
  control.AdjustSpecimen(0, 30);  // later request must not delay mitigation
  EXPECT_TRUE(control.IsMitigated(0, 20));
  control.AdjustSpecimen(0, 10);  // earlier request wins
  EXPECT_TRUE(control.IsMitigated(0, 10));
  EXPECT_EQ(control.adjustments(), 1u);
}

TEST(ControlState, Termination) {
  am::ControlState control;
  EXPECT_FALSE(control.terminated());
  control.TerminateJob();
  EXPECT_TRUE(control.terminated());
}

TEST(MachineControl, TerminateStopsLayers) {
  am::MachineParams params;
  params.job = am::MakeSmallJob(1, 150, 1);
  params.layers_limit = 50;
  am::MachineSimulator machine(params);
  ASSERT_TRUE(machine.NextLayer().has_value());
  ASSERT_TRUE(machine.NextLayer().has_value());
  machine.control().TerminateJob();
  EXPECT_FALSE(machine.NextLayer().has_value());
}

TEST(MachineControl, AdjustedSpecimenStopsDevelopingDefects) {
  am::MachineParams params;
  params.job = am::MakeSmallJob(1, 300, 1);
  params.layers_limit = 60;
  params.defects.birth_rate = 0.3;
  params.defects.mean_intensity_delta = 60.0;
  am::MachineSimulator machine(params);

  // Find a defect active at some layer after 10.
  const am::Defect* target = nullptr;
  for (const am::Defect& d : machine.seeder().defects()) {
    if (d.center_layer >= 15 && d.center_layer < 50) {
      target = &d;
      break;
    }
  }
  ASSERT_NE(target, nullptr);

  am::OtImageGenerator clean(params.job, nullptr);
  const int px = params.job.plate.MmToPx(target->center_x_mm);
  const int py = params.job.plate.MmToPx(target->center_y_mm);

  // Before mitigation the defect shows.
  am::LayerData before;
  while (auto layer = machine.NextLayer()) {
    if (layer->layer == target->center_layer) {
      before = std::move(*layer);
      break;
    }
  }
  const int base =
      clean.GenerateLayer(target->center_layer).at(px, py);
  EXPECT_NE(static_cast<int>(before.ot_image.at(px, py)), base);

  // Mitigate and replay: at the same layer the defect is gone.
  machine.control().AdjustSpecimen(target->specimen, 0);
  machine.Reset();
  while (auto layer = machine.NextLayer()) {
    if (layer->layer == target->center_layer) {
      EXPECT_EQ(static_cast<int>(layer->ot_image.at(px, py)), base);
      break;
    }
  }
}

ClusterReport ReportWithPoints(std::int64_t specimen, std::int64_t layer,
                               std::size_t points,
                               std::int64_t min_layer = -1) {
  ClusterReport report;
  report.specimen = specimen;
  report.layer = layer;
  cluster::ClusterSummary summary;
  summary.point_count = points;
  summary.min_layer = min_layer < 0 ? layer : min_layer;
  summary.max_layer = layer;
  report.clusters.push_back(summary);
  return report;
}

std::shared_ptr<am::MachineSimulator> TwoSpecimenMachine() {
  am::MachineParams params;
  params.job = am::MakeSmallJob(1, 150, 2);
  params.layers_limit = 50;
  return std::make_shared<am::MachineSimulator>(params);
}

TEST(FeedbackController, AdjustsAfterThreshold) {
  auto machine = TwoSpecimenMachine();
  ControllerPolicy policy;
  policy.adjust_cluster_points = 10;
  FeedbackController controller(machine, policy);

  controller.OnReport(ReportWithPoints(0, 5, 4));
  EXPECT_EQ(controller.stats().adjustments_issued, 0u);
  controller.OnReport(ReportWithPoints(0, 6, 7));  // total 11 >= 10
  EXPECT_EQ(controller.stats().adjustments_issued, 1u);
  EXPECT_TRUE(machine->control().IsMitigated(0, 7));
  EXPECT_FALSE(machine->control().IsMitigated(1, 7));
}

TEST(FeedbackController, TerminatesWhenAdjustmentsFail) {
  auto machine = TwoSpecimenMachine();
  ControllerPolicy policy;
  policy.adjust_cluster_points = 5;
  policy.post_adjust_points = 5;
  policy.terminate_specimen_fraction = 0.5;  // 1 of 2 specimens
  FeedbackController controller(machine, policy);

  // Trip adjustment for specimen 0...
  controller.OnReport(ReportWithPoints(0, 5, 6));
  EXPECT_EQ(controller.stats().adjustments_issued, 1u);
  EXPECT_FALSE(controller.stats().terminated);

  // ...then keep reporting post-adjustment defects (clusters whose
  // min_layer is after mitigation).
  controller.OnReport(ReportWithPoints(0, 10, 6, /*min_layer=*/8));
  EXPECT_TRUE(controller.stats().terminated);
  EXPECT_TRUE(machine->control().terminated());
}

TEST(FeedbackController, PreAdjustHistoryDoesNotTriggerTermination) {
  auto machine = TwoSpecimenMachine();
  ControllerPolicy policy;
  policy.adjust_cluster_points = 5;
  policy.post_adjust_points = 5;
  policy.terminate_specimen_fraction = 0.5;
  FeedbackController controller(machine, policy);

  controller.OnReport(ReportWithPoints(0, 5, 6));  // adjust from layer 6
  // Window still reports the old cluster (min_layer 3 < mitigation layer 6).
  controller.OnReport(ReportWithPoints(0, 7, 30, /*min_layer=*/3));
  EXPECT_FALSE(controller.stats().terminated);
}

TEST(FeedbackController, DisabledTerminationNeverFires) {
  auto machine = TwoSpecimenMachine();
  ControllerPolicy policy;
  policy.adjust_cluster_points = 1;
  policy.post_adjust_points = 1;
  policy.terminate_specimen_fraction = 2.0;  // disabled
  FeedbackController controller(machine, policy);
  for (int layer = 0; layer < 20; ++layer) {
    controller.OnReport(ReportWithPoints(0, layer, 50, layer));
    controller.OnReport(ReportWithPoints(1, layer, 50, layer));
  }
  EXPECT_FALSE(controller.stats().terminated);
}

TEST(ClosedLoop, EndToEndAdjustmentReducesEvents) {
  // Full pipeline with the controller in the loop: a heavily defective
  // specimen gets adjusted mid-job and its event rate drops afterwards.
  Strata strata_rt;
  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, 300, 1);
  machine_params.layers_limit = 60;
  machine_params.defects.birth_rate = 0.4;
  machine_params.defects.mean_intensity_delta = 60.0;
  machine_params.defects.mean_radius_mm = 3.0;

  UseCaseParams params;
  params.cell_px = 3;
  params.correlate_layers = 5;
  params.min_report_points = 4;
  ComputeAndStoreThresholds(&strata_rt, params.machine_id, machine_params.job,
                            3, params.cell_px)
      .OrDie();

  auto machine = std::make_shared<am::MachineSimulator>(machine_params);
  ControllerPolicy policy;
  policy.adjust_cluster_points = 15;
  policy.terminate_specimen_fraction = 2.0;  // adjustment only
  auto controller = std::make_shared<FeedbackController>(machine, policy);

  std::mutex mu;
  std::map<std::int64_t, std::size_t> events_per_layer;
  // Live pacing (compressed): feedback must land before later layers melt,
  // exactly as on the real machine (the 3 s recoat gap is the QoS budget).
  BuildThermalPipeline(&strata_rt, machine,
                       CollectorPacing{.mode = CollectorPacing::Mode::kLive,
                                       .time_scale = 0.0006},
                       params, [&](const ClusterReport& report) {
                         {
                           std::lock_guard lock(mu);
                           events_per_layer[report.layer] =
                               report.window_events;
                         }
                         controller->OnReport(report);
                       });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();

  const ControllerStats stats = controller->stats();
  ASSERT_EQ(stats.adjustments_issued, 1u) << "expected one adjustment";

  // Event counts well after the adjustment should drop essentially to the
  // threshold-tail noise floor (correlate window length 5 flushes out the
  // pre-adjustment events).
  std::size_t early = 0;
  std::size_t late = 0;
  for (const auto& [layer, events] : events_per_layer) {
    if (layer >= 10 && layer < 25) early += events;
    if (layer >= 45) late += events;
  }
  EXPECT_GT(early, 0u);
  EXPECT_LT(late, early / 2) << "adjustment did not reduce the event rate";
}

TEST(ClosedLoop, EndToEndTerminationStopsJobEarly) {
  Strata strata_rt;
  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, 300, 2);
  machine_params.layers_limit = 80;
  machine_params.defects.birth_rate = 0.5;
  machine_params.defects.mean_intensity_delta = 60.0;
  machine_params.defects.mean_radius_mm = 3.0;

  UseCaseParams params;
  params.cell_px = 3;
  params.correlate_layers = 5;
  params.min_report_points = 4;
  ComputeAndStoreThresholds(&strata_rt, params.machine_id, machine_params.job,
                            3, params.cell_px)
      .OrDie();

  auto machine = std::make_shared<am::MachineSimulator>(machine_params);
  // Hair-trigger policy, but mitigation is sabotaged by re-reporting: use a
  // policy where post-adjust noise terminates quickly. The defect-free tail
  // noise of 3x3mm cells keeps firing, so termination is expected.
  ControllerPolicy policy;
  policy.adjust_cluster_points = 5;
  policy.post_adjust_points = 1;
  policy.terminate_specimen_fraction = 0.5;
  auto controller = std::make_shared<FeedbackController>(machine, policy);

  std::atomic<std::int64_t> last_layer{-1};
  BuildThermalPipeline(&strata_rt, machine,
                       CollectorPacing{.mode = CollectorPacing::Mode::kLive,
                                       .time_scale = 0.0006},
                       params, [&](const ClusterReport& report) {
                         last_layer = std::max<std::int64_t>(last_layer,
                                                             report.layer);
                         controller->OnReport(report);
                       });
  strata_rt.Deploy();
  strata_rt.WaitForCompletion();

  EXPECT_TRUE(controller->stats().terminated);
  EXPECT_LT(last_layer.load(), 79) << "job was not cut short";
}

}  // namespace
}  // namespace strata::core
