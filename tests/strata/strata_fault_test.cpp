// Failure injection at the framework level: broken user functions inside
// Table-1 stages, missing KV data, and connector behavior under forced
// shutdown must all degrade gracefully.
#include <gtest/gtest.h>

#include <atomic>

#include "fault/failpoint.hpp"
#include "strata/usecase.hpp"

namespace strata::core {
namespace {

spe::SourceFn CountingSource(int layers) {
  auto next = std::make_shared<int>(0);
  return [layers, next]() -> std::optional<spe::Tuple> {
    if (*next >= layers) return std::nullopt;
    spe::Tuple t;
    t.job = 1;
    t.layer = (*next)++;
    t.event_time = (t.layer + 1) * 1000;
    t.payload.Set("v", t.layer);
    return t;
  };
}

TEST(StrataFault, ThrowingPartitionFnDropsTuplesOnly) {
  Strata strata;
  auto src = strata.AddSource("src", CountingSource(10));
  auto partitioned =
      strata.Partition("boom", src, [](const spe::Tuple& t) -> std::vector<spe::Tuple> {
        if (t.layer % 2 == 0) throw std::runtime_error("injected");
        return {t};
      });
  std::atomic<int> delivered{0};
  strata.Deliver("sink", partitioned, [&](const spe::Tuple&) { ++delivered; });
  strata.Deploy();
  strata.WaitForCompletion();
  EXPECT_EQ(delivered.load(), 5);
}

TEST(StrataFault, ThrowingDetectFnDropsTuplesOnly) {
  Strata strata;
  auto src = strata.AddSource("src", CountingSource(10));
  auto events =
      strata.DetectEvent("boom", src, [](const spe::Tuple& t) -> std::vector<spe::Tuple> {
        if (t.layer == 3) throw std::logic_error("injected");
        return {t};
      });
  std::atomic<int> delivered{0};
  strata.Deliver("sink", events, [&](const spe::Tuple&) { ++delivered; });
  strata.Deploy();
  strata.WaitForCompletion();
  EXPECT_EQ(delivered.load(), 9);
}

TEST(StrataFault, ThrowingCorrelateFnSkipsWindow) {
  Strata strata;
  constexpr int kLayers = 4;
  auto next = std::make_shared<int>(0);
  auto src = strata.AddSource("src", [next]() -> std::optional<spe::Tuple> {
    if (*next >= kLayers) return std::nullopt;
    spe::Tuple t;
    t.job = 1;
    t.layer = (*next)++;
    t.specimen = 0;
    t.event_time = (t.layer + 1) * 1000;
    t.payload.Set(kLayerMarkerKey, true);  // marker-only layers
    return t;
  });
  auto out = strata.CorrelateEvents(
      "boom", src, 1, [](const EventWindow& w) -> std::vector<spe::Tuple> {
        if (w.layer == 1) throw std::runtime_error("injected");
        spe::Tuple t;
        t.payload.Set("ok", true);
        return {t};
      });
  std::atomic<int> delivered{0};
  strata.Deliver("sink", out, [&](const spe::Tuple&) { ++delivered; });
  strata.Deploy();
  strata.WaitForCompletion();
  EXPECT_EQ(delivered.load(), kLayers - 1);
}

TEST(StrataFault, LabelCellWithMissingThresholdsDropsCellsNotPipeline) {
  // In-pipeline: LabelCell's OrDie throws inside the operator; the guard
  // drops cells but markers still flow, so the pipeline completes with
  // empty windows instead of hanging or crashing.
  Strata strata;
  am::MachineParams machine_params;
  machine_params.job = am::MakeSmallJob(1, 150, 1);
  machine_params.layers_limit = 3;
  auto machine = std::make_shared<am::MachineSimulator>(machine_params);

  UseCaseParams params;
  params.machine_id = "no-thresholds";
  params.cell_px = 5;
  std::atomic<int> reports{0};
  std::atomic<int> total_events{0};
  BuildThermalPipeline(&strata, machine,
                       CollectorPacing{.mode = CollectorPacing::Mode::kReplay},
                       params, [&](const ClusterReport& report) {
                         ++reports;
                         total_events += static_cast<int>(report.window_events);
                       });
  strata.Deploy();
  strata.WaitForCompletion();
  EXPECT_EQ(reports.load(), 3);       // one per layer (1 specimen)
  EXPECT_EQ(total_events.load(), 0);  // every cell dropped at labelCell
}

TEST(StrataFault, ShutdownDuringActivePipelineNeverHangs) {
  for (int round = 0; round < 3; ++round) {
    Strata strata;
    std::atomic<std::int64_t> counter{0};
    auto src = strata.AddSource("inf", [&]() -> std::optional<spe::Tuple> {
      spe::Tuple t;
      t.job = 1;
      t.layer = counter++;
      t.event_time = t.layer + 1;
      t.payload.Set("v", t.layer);
      return t;
    });
    auto part = strata.Partition("p", src, nullptr);
    std::atomic<int> seen{0};
    strata.Deliver("sink", part, [&](const spe::Tuple&) { ++seen; });
    strata.Deploy();
    while (seen.load() < 50) std::this_thread::yield();
    strata.Shutdown();
    SUCCEED();
  }
}

TEST(StrataFault, HealthReportsCleanWhenNothingFailed) {
  Strata strata;
  const Strata::HealthReport health = strata.Health();
  EXPECT_TRUE(health.ok());
  EXPECT_TRUE(health.kv_ok);
  EXPECT_TRUE(health.broker_storage_ok);
  EXPECT_TRUE(health.detail.empty());
}

TEST(StrataFault, HealthSurfacesBrokerStorageDegradation) {
  strata::fs::ScopedTempDir dir("strata-health");
  StrataOptions options;
  options.data_dir = dir.path();
  options.persistent_connectors = true;
  Strata strata(options);

  ASSERT_TRUE(
      strata.broker().CreateTopic("events", ps::TopicConfig{1}).ok());
  fault::Activate("segment.append",
                  fault::Action{fault::ActionKind::kError, 0, 1.0, 1});
  ps::Record record;
  record.value = "x";
  // Default policy is fail-stop: the produce fails and the flag sticks.
  EXPECT_FALSE(strata.broker().Produce("events", record).ok());
  fault::DeactivateAll();

  const Strata::HealthReport health = strata.Health();
  EXPECT_FALSE(health.ok());
  EXPECT_TRUE(health.kv_ok);
  EXPECT_FALSE(health.broker_storage_ok);
  EXPECT_NE(health.detail.find("fail-stopped"), std::string::npos)
      << health.detail;

  // The failpoint counters surface through the facade's registry.
  const std::string metrics = strata.DumpMetrics();
  EXPECT_NE(metrics.find("fault.site.triggered"), std::string::npos);
  EXPECT_NE(metrics.find("pubsub.broker.fail_stopped"), std::string::npos);
}

TEST(StrataFault, StoreGetAfterShutdownStillWorks) {
  Strata strata;
  auto src = strata.AddSource("src", CountingSource(1));
  strata.Deliver("sink", src, [](const spe::Tuple&) {});
  strata.Deploy();
  strata.WaitForCompletion();
  strata.Shutdown();
  // The KV store remains usable for post-mortem analysis.
  ASSERT_TRUE(strata.Store("post", "shutdown").ok());
  EXPECT_EQ(*strata.Get("post"), "shutdown");
}

}  // namespace
}  // namespace strata::core
