#include "strata/transport.hpp"

#include <gtest/gtest.h>

namespace strata::core {
namespace {

spe::Tuple FullTuple() {
  spe::Tuple t;
  t.event_time = 123456789;
  t.job = 7;
  t.layer = 42;
  t.specimen = 3;
  t.portion = 9;
  t.stimulus = 987654;
  t.payload.Set("double", 3.5);
  t.payload.Set("int", std::int64_t{-12});
  t.payload.Set("string", "hello");
  t.payload.Set("bool", true);
  return t;
}

TEST(TupleTransport, ScalarRoundTrip) {
  const spe::Tuple original = FullTuple();
  std::string encoded;
  ASSERT_TRUE(EncodeTuple(original, &encoded).ok());
  auto decoded = DecodeTuple(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->event_time, original.event_time);
  EXPECT_EQ(decoded->job, original.job);
  EXPECT_EQ(decoded->layer, original.layer);
  EXPECT_EQ(decoded->specimen, original.specimen);
  EXPECT_EQ(decoded->portion, original.portion);
  EXPECT_EQ(decoded->stimulus, original.stimulus);
  EXPECT_EQ(decoded->payload, original.payload);
}

TEST(TupleTransport, ImagePayloadRoundTrip) {
  am::GrayImage image(32, 16);
  image.set(5, 5, 200);
  spe::Tuple t;
  t.job = 1;
  t.layer = 2;
  t.payload.Set("ot_image", am::MakeImageValue(image));
  t.payload.Set("angle", 45.0);

  std::string encoded;
  ASSERT_TRUE(EncodeTuple(t, &encoded).ok());
  auto decoded = DecodeTuple(encoded);
  ASSERT_TRUE(decoded.ok());
  const auto unwrapped =
      decoded->payload.Get("ot_image").AsOpaque<am::ImageValue>();
  EXPECT_EQ(unwrapped->image(), image);
  EXPECT_DOUBLE_EQ(decoded->payload.Get("angle").AsDouble(), 45.0);
}

TEST(TupleTransport, UnsupportedOpaqueRejected) {
  class Other final : public OpaqueValue {
   public:
    [[nodiscard]] const char* TypeName() const noexcept override { return "x"; }
    [[nodiscard]] std::size_t ApproxBytes() const noexcept override { return 0; }
  };
  spe::Tuple t;
  t.payload.Set("bad", Value(OpaqueRef(std::make_shared<const Other>())));
  std::string encoded;
  EXPECT_EQ(EncodeTuple(t, &encoded).code(), StatusCode::kInvalidArgument);
}

TEST(TupleTransport, UnsetMetadataSurvives) {
  spe::Tuple t;  // all ids unset (-1)
  std::string encoded;
  ASSERT_TRUE(EncodeTuple(t, &encoded).ok());
  auto decoded = DecodeTuple(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->job, spe::kUnsetId);
  EXPECT_EQ(decoded->specimen, spe::kUnsetId);
}

TEST(TupleTransport, DecodeRejectsTruncation) {
  const spe::Tuple original = FullTuple();
  std::string encoded;
  ASSERT_TRUE(EncodeTuple(original, &encoded).ok());
  for (std::size_t cut = 1; cut <= encoded.size(); cut += 3) {
    EXPECT_FALSE(
        DecodeTuple(std::string_view(encoded.data(), encoded.size() - cut))
            .ok())
        << "cut=" << cut;
  }
}

TEST(TupleTransport, DecodeRejectsTrailingBytes) {
  std::string encoded;
  ASSERT_TRUE(EncodeTuple(FullTuple(), &encoded).ok());
  encoded += "junk";
  EXPECT_FALSE(DecodeTuple(encoded).ok());
}

// Property: any single-bit flip in an encoded tuple decodes to a Status
// error, never to a crash or a silently different tuple (the CRC trailer
// catches flips the structural checks cannot, e.g. inside a double).
TEST(TupleTransport, AnySingleBitFlipIsRejected) {
  spe::Tuple t = FullTuple();
  am::GrayImage image(8, 8);
  image.set(2, 3, 77);
  t.payload.Set("ot_image", am::MakeImageValue(image));
  std::string encoded;
  ASSERT_TRUE(EncodeTuple(t, &encoded).ok());

  for (std::size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      auto decoded = DecodeTuple(mutated);
      EXPECT_FALSE(decoded.ok())
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

// Property: random multi-byte mutations (splices, overwrites, duplications)
// also surface as Status errors. Deterministic LCG, no seed flakiness.
TEST(TupleTransport, RandomMutationsAreRejected) {
  std::string encoded;
  ASSERT_TRUE(EncodeTuple(FullTuple(), &encoded).ok());

  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = encoded;
    const int kind = static_cast<int>(next() % 3);
    const std::size_t pos = next() % mutated.size();
    switch (kind) {
      case 0:  // overwrite a byte
        mutated[pos] = static_cast<char>(next() & 0xff);
        break;
      case 1:  // delete a byte
        mutated.erase(pos, 1);
        break;
      default:  // insert a byte
        mutated.insert(pos, 1, static_cast<char>(next() & 0xff));
        break;
    }
    if (mutated == encoded) continue;  // overwrite happened to be identical
    auto decoded = DecodeTuple(mutated);
    EXPECT_FALSE(decoded.ok()) << "round " << round << " kind " << kind
                               << " pos " << pos << " slipped through";
  }
}

// ----- (epoch, seq) tagging: the effectively-once wire format -----

TEST(TaggedTransport, TaggedRoundTripCarriesEpochAndSeq) {
  const spe::Tuple original = FullTuple();
  std::string encoded;
  ASSERT_TRUE(
      EncodeTaggedTuple(TransportTag{3, 17}, original, &encoded).ok());

  TransportTag tag;
  auto decoded = DecodeMaybeTagged(encoded, &tag);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(tag.epoch, 3u);
  EXPECT_EQ(tag.seq, 17u);
  EXPECT_EQ(decoded->event_time, original.event_time);
  EXPECT_EQ(decoded->payload, original.payload);
}

TEST(TaggedTransport, UntaggedRecordsDecodeWithZeroTag) {
  std::string encoded;
  ASSERT_TRUE(EncodeTuple(FullTuple(), &encoded).ok());
  TransportTag tag{99, 99};
  auto decoded = DecodeMaybeTagged(encoded, &tag);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(tag.epoch, 0u) << "untagged record must zero the tag";
  EXPECT_EQ(tag.seq, 0u);
  EXPECT_EQ(decoded->payload, FullTuple().payload);
}

TEST(TaggedTransport, PlainDecoderRejectsTaggedRecords) {
  // A non-checkpointing reader pointed at a tagged topic must get a clean
  // error, not a tuple with scrambled fields.
  std::string encoded;
  ASSERT_TRUE(EncodeTaggedTuple(TransportTag{1, 1}, FullTuple(), &encoded).ok());
  EXPECT_FALSE(DecodeTuple(encoded).ok());
}

TEST(TaggedTransport, AnySingleBitFlipIsRejected) {
  std::string encoded;
  ASSERT_TRUE(
      EncodeTaggedTuple(TransportTag{7, 123456}, FullTuple(), &encoded).ok());
  for (std::size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      TransportTag tag;
      // Either rejected outright, or (a flip in the tag varints) decoded
      // with a different tag — but never a silently different tuple.
      auto decoded = DecodeMaybeTagged(mutated, &tag);
      if (decoded.ok()) {
        EXPECT_EQ(decoded->payload, FullTuple().payload)
            << "bit " << bit << " of byte " << byte << " corrupted the tuple";
      }
    }
  }
}

TEST(PartitionKeys, RawKeyGroupsByJobAndLayer) {
  spe::Tuple t;
  t.job = 3;
  t.layer = 14;
  EXPECT_EQ(RawDataKey(t), "3|14");
}

TEST(PartitionKeys, EventKeyGroupsByJobAndSpecimen) {
  spe::Tuple t;
  t.job = 3;
  t.specimen = 5;
  EXPECT_EQ(EventKey(t), "3|5");
}

}  // namespace
}  // namespace strata::core
