#include "common/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace strata::codec {
namespace {

TEST(Codec, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, UINT32_MAX);
  std::string_view in(buf);
  std::uint32_t v = 0;
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xdeadbeef);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, UINT32_MAX);
  EXPECT_TRUE(in.empty());
}

TEST(Codec, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefull);
  std::string_view in(buf);
  std::uint64_t v = 0;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789abcdefull);
}

TEST(Codec, Fixed32IsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x01020304);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(Codec, UnderflowReturnsFalse) {
  std::string_view in("abc");
  std::uint32_t v32 = 0;
  std::uint64_t v64 = 0;
  EXPECT_FALSE(GetFixed32(&in, &v32));
  EXPECT_FALSE(GetFixed64(&in, &v64));
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, Preserves) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  std::string_view in(buf);
  std::uint64_t v = 0;
  ASSERT_TRUE(GetVarint64(&in, &v));
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(in.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                      (1ull << 32) - 1, 1ull << 32, (1ull << 56) - 1,
                      std::numeric_limits<std::uint64_t>::max()));

TEST(Codec, VarintEncodingLength) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint64(&buf, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(Codec, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, (1ull << 32));
  std::string_view in(buf);
  std::uint32_t v = 0;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(Codec, VarintTruncatedReturnsFalse) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  std::string_view in(buf.data(), 2);
  std::uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

class ZigZagRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ZigZagRoundTrip, Preserves) {
  std::string buf;
  PutVarint64Signed(&buf, GetParam());
  std::string_view in(buf);
  std::int64_t v = 0;
  ASSERT_TRUE(GetVarint64Signed(&in, &v));
  EXPECT_EQ(v, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, ZigZagRoundTrip,
    ::testing::Values(std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                      std::int64_t{63}, std::int64_t{-64},
                      std::numeric_limits<std::int64_t>::max(),
                      std::numeric_limits<std::int64_t>::min()));

TEST(Codec, ZigZagSmallMagnitudesStaySmall) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
}

TEST(Codec, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view in(buf);
  std::string_view s;
  ASSERT_TRUE(GetLengthPrefixed(&in, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(&in, &s));
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(Codec, LengthPrefixedRejectsShortBuffer) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  std::string_view in(buf.data(), buf.size() - 1);
  std::string_view s;
  EXPECT_FALSE(GetLengthPrefixed(&in, &s));
}

TEST(Codec, DoubleRoundTrip) {
  for (double d : {0.0, -0.0, 1.5, -3.25e300, 2.2250738585072014e-308}) {
    std::string buf;
    PutDouble(&buf, d);
    std::string_view in(buf);
    double out = 0;
    ASSERT_TRUE(GetDouble(&in, &out));
    EXPECT_EQ(std::signbit(out), std::signbit(d));
    EXPECT_EQ(out, d);
  }
}

}  // namespace
}  // namespace strata::codec
