#include "common/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace strata {
namespace {

TEST(Crc32c, KnownVectors) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  // 32 zero bytes -> 0x8A9136AA (RFC 3720 appendix B.4 test vector).
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32c, EmptyInput) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32c, DifferentInputsDiffer) {
  EXPECT_NE(Crc32c("hello"), Crc32c("hellp"));
  EXPECT_NE(Crc32c("a"), Crc32c("aa"));
}

TEST(Crc32c, SingleBitFlipDetected) {
  std::string data(128, 'x');
  const std::uint32_t base = Crc32c(data);
  for (std::size_t byte : {0u, 64u, 127u}) {
    std::string corrupted = data;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 0x01);
    EXPECT_NE(Crc32c(corrupted), base) << "byte " << byte;
  }
}

TEST(Crc32c, MaskUnmaskRoundTrip) {
  for (std::uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
  }
}

TEST(Crc32c, MaskChangesValue) {
  EXPECT_NE(MaskCrc(0x12345678u), 0x12345678u);
}

}  // namespace
}  // namespace strata
