#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

namespace strata {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(500);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 500);
  EXPECT_EQ(h.max(), 500);
  EXPECT_DOUBLE_EQ(h.mean(), 500.0);
  EXPECT_EQ(h.Quantile(0.5), 500);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.Record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, ExactInLinearRegion) {
  // Values < 64 land in 2-wide buckets; midpoints are odd numbers.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(10);
  EXPECT_EQ(h.Quantile(0.5), 10);
}

TEST(Histogram, QuantileRelativeErrorBounded) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::int64_t> dist(1, 10'000'000);
  Histogram h;
  std::vector<std::int64_t> samples;
  samples.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    const std::int64_t v = dist(rng);
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.25, 0.5, 0.75, 0.95, 0.99}) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())) - 1);
    const double exact = static_cast<double>(samples[idx]);
    const double approx = static_cast<double>(h.Quantile(q));
    EXPECT_NEAR(approx / exact, 1.0, 0.05) << "q=" << q;
  }
}

TEST(Histogram, MinMaxMeanExact) {
  Histogram h;
  std::int64_t sum = 0;
  for (std::int64_t v : {9, 1, 77, 300, 12'345}) {
    h.Record(v);
    sum += v;
  }
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 12'345);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 5.0);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::int64_t> dist(0, 1'000'000);
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = dist(rng);
    ((i % 2 == 0) ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (double q : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_EQ(a.Quantile(q), combined.Quantile(q)) << q;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.Record(42);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42);

  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 42);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, BoxplotOrdering) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> dist(100, 1'000'000);
  Histogram h;
  for (int i = 0; i < 5'000; ++i) h.Record(dist(rng));
  const BoxplotStats s = h.Boxplot();
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.max);
  EXPECT_EQ(s.count, 5'000u);
  EXPECT_GT(s.mean, 0.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1000);
  EXPECT_EQ(h.Quantile(0.0), h.min());
  EXPECT_EQ(h.Quantile(1.0), h.max());
  EXPECT_EQ(h.Quantile(-0.5), h.min());  // clamped
  EXPECT_EQ(h.Quantile(2.0), h.max());   // clamped
}

TEST(ConcurrentHistogram, ParallelRecording) {
  ConcurrentHistogram ch;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ch] {
      for (int i = 0; i < kPerThread; ++i) ch.Record(i);
    });
  }
  for (auto& t : threads) t.join();
  const Histogram snap = ch.Snapshot();
  EXPECT_EQ(snap.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.min(), 0);
  EXPECT_EQ(snap.max(), kPerThread - 1);
}

TEST(BoxplotStats, ToStringMentionsAllFields) {
  Histogram h;
  h.Record(10);
  const std::string s = h.Boxplot().ToString();
  for (const char* field : {"n=", "min=", "p25=", "p50=", "p75=", "max=", "mean="}) {
    EXPECT_NE(s.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace strata
