#include "common/value.hpp"

#include <gtest/gtest.h>

namespace strata {
namespace {

class TestOpaque final : public OpaqueValue {
 public:
  explicit TestOpaque(int id) : id_(id) {}
  [[nodiscard]] const char* TypeName() const noexcept override {
    return "TestOpaque";
  }
  [[nodiscard]] std::size_t ApproxBytes() const noexcept override {
    return 1234;
  }
  [[nodiscard]] int id() const noexcept { return id_; }

 private:
  int id_;
};

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hello").AsString(), "hello");
  EXPECT_EQ(Value(Blob{1, 2, 3}).AsBlob(), (Blob{1, 2, 3}));
}

TEST(Value, IntWidensToDouble) {
  EXPECT_DOUBLE_EQ(Value(7).AsDouble(), 7.0);
}

TEST(Value, MismatchedAccessThrows) {
  EXPECT_THROW(Value(1).AsString(), std::runtime_error);
  EXPECT_THROW(Value("x").AsInt(), std::runtime_error);
  EXPECT_THROW(Value(1.5).AsInt(), std::runtime_error);
  EXPECT_THROW(Value().AsBool(), std::runtime_error);
}

TEST(Value, OpaqueRoundTrip) {
  auto obj = std::make_shared<const TestOpaque>(9);
  Value v{OpaqueRef(obj)};
  EXPECT_EQ(v.kind(), ValueKind::kOpaque);
  EXPECT_EQ(v.AsOpaque<TestOpaque>()->id(), 9);
  EXPECT_GE(v.ApproxBytes(), 1234u);
}

TEST(Value, OpaqueDowncastMismatchThrows) {
  class Other final : public OpaqueValue {
   public:
    [[nodiscard]] const char* TypeName() const noexcept override { return "o"; }
    [[nodiscard]] std::size_t ApproxBytes() const noexcept override { return 0; }
  };
  Value v{OpaqueRef(std::make_shared<const Other>())};
  EXPECT_THROW(v.AsOpaque<TestOpaque>(), std::runtime_error);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value(1) == Value(1.0));  // kinds differ
  EXPECT_EQ(Value("a"), Value("a"));
}

TEST(Value, ToStringFormats) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(3).ToString(), "3");
  EXPECT_EQ(Value("s").ToString(), "\"s\"");
  EXPECT_EQ(Value(Blob{1, 2}).ToString(), "blob[2B]");
}

TEST(Payload, SetGetOverwrite) {
  Payload p;
  p.Set("a", 1);
  p.Set("b", "two");
  EXPECT_EQ(p.Get("a").AsInt(), 1);
  EXPECT_EQ(p.Get("b").AsString(), "two");
  p.Set("a", 10);
  EXPECT_EQ(p.Get("a").AsInt(), 10);
  EXPECT_EQ(p.size(), 2u);
}

TEST(Payload, FindAndHas) {
  Payload p{{"k", Value(5)}};
  EXPECT_TRUE(p.Has("k"));
  EXPECT_FALSE(p.Has("missing"));
  EXPECT_EQ(p.Find("missing"), nullptr);
  EXPECT_THROW(p.Get("missing"), std::out_of_range);
}

TEST(Payload, PreservesInsertionOrder) {
  Payload p;
  p.Set("z", 1);
  p.Set("a", 2);
  p.Set("m", 3);
  std::vector<std::string> keys;
  for (const auto& [k, v] : p) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(Payload, Erase) {
  Payload p{{"a", Value(1)}, {"b", Value(2)}};
  EXPECT_TRUE(p.Erase("a"));
  EXPECT_FALSE(p.Erase("a"));
  EXPECT_EQ(p.size(), 1u);
}

TEST(Payload, MergeDisjointSucceeds) {
  Payload a{{"x", Value(1)}};
  Payload b{{"y", Value(2)}};
  ASSERT_TRUE(a.MergeDisjoint(b).ok());
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.Get("y").AsInt(), 2);
}

TEST(Payload, MergeDisjointRejectsDuplicateAndLeavesTargetUnchanged) {
  Payload a{{"x", Value(1)}, {"w", Value(0)}};
  Payload b{{"y", Value(2)}, {"x", Value(3)}};
  Status s = a.MergeDisjoint(b);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(a.size(), 2u);  // atomic: nothing from b landed
  EXPECT_EQ(a.Get("x").AsInt(), 1);
}

TEST(Payload, MergeCompatibleDeduplicatesEqualValues) {
  Payload a{{"x", Value(1)}, {"shared", Value("same")}};
  Payload b{{"y", Value(2)}, {"shared", Value("same")}};
  ASSERT_TRUE(a.MergeCompatible(b).ok());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Get("shared").AsString(), "same");
  EXPECT_EQ(a.Get("y").AsInt(), 2);
}

TEST(Payload, MergeCompatibleRejectsConflictAtomically) {
  Payload a{{"x", Value(1)}, {"shared", Value(1)}};
  Payload b{{"y", Value(2)}, {"shared", Value(9)}};
  EXPECT_EQ(a.MergeCompatible(b).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(a.size(), 2u);  // nothing from b landed
  EXPECT_FALSE(a.Has("y"));
}

TEST(PayloadCodec, RoundTripAllScalarKinds) {
  Payload p;
  p.Set("null", Value());
  p.Set("bool", true);
  p.Set("int", std::int64_t{-1234567890123});
  p.Set("double", 3.14159);
  p.Set("string", "text");
  p.Set("blob", Blob{0, 255, 7});

  std::string buf;
  ASSERT_TRUE(EncodePayload(p, &buf).ok());
  std::string_view in(buf);
  Payload decoded;
  ASSERT_TRUE(DecodePayload(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(p, decoded);
}

TEST(PayloadCodec, OpaqueIsNotSerializable) {
  Payload p;
  p.Set("img", Value(OpaqueRef(std::make_shared<const TestOpaque>(1))));
  std::string buf;
  EXPECT_EQ(EncodePayload(p, &buf).code(), StatusCode::kInvalidArgument);
}

TEST(PayloadCodec, DecodeRejectsTruncation) {
  Payload p{{"key", Value("value")}};
  std::string buf;
  ASSERT_TRUE(EncodePayload(p, &buf).ok());
  for (std::size_t cut = 1; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), buf.size() - cut);
    Payload out;
    EXPECT_FALSE(DecodePayload(&in, &out).ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace strata
