#include "common/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace strata {
namespace {

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i).ok());
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueue, ZeroCapacityRejected) {
  EXPECT_THROW(BlockingQueue<int>(0), std::invalid_argument);
}

TEST(BlockingQueue, TryPushFullReportsExhausted) {
  BlockingQueue<int> q(2);
  ASSERT_TRUE(q.TryPush(1).ok());
  ASSERT_TRUE(q.TryPush(2).ok());
  EXPECT_EQ(q.TryPush(3).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BlockingQueue, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueue, CloseUnblocksProducerAndDrainsConsumer) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1).ok());

  std::atomic<bool> producer_released{false};
  std::thread producer([&] {
    Status s = q.Push(2);  // blocks: queue full
    EXPECT_TRUE(s.IsClosed());
    producer_released = true;
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(producer_released.load());
  q.Close();
  producer.join();
  EXPECT_TRUE(producer_released.load());

  // Consumer still drains the remaining item, then sees closed.
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueue, PushAfterCloseFails) {
  BlockingQueue<int> q(4);
  q.Close();
  EXPECT_TRUE(q.Push(1).IsClosed());
  EXPECT_TRUE(q.TryPush(1).IsClosed());
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q(4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopFor(std::chrono::microseconds(20000)).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST(BlockingQueue, PopForReturnsItemPromptly) {
  BlockingQueue<int> q(4);
  ASSERT_TRUE(q.Push(7).ok());
  auto v = q.PopFor(std::chrono::microseconds(1000000));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(BlockingQueue, MpmcStressPreservesAllItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;

  BlockingQueue<int> q(64);
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto v = q.Pop();
        if (!v.has_value()) return;
        sum += *v;
        ++consumed;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  long long expect = 0;
  for (int i = 0; i < total; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(BlockingQueue, PushAllPopAllRoundtrip) {
  BlockingQueue<int> q(8);
  std::vector<int> batch{1, 2, 3, 4, 5};
  std::size_t delivered = 0;
  ASSERT_TRUE(q.PushAll(&batch, &delivered).ok());
  EXPECT_EQ(delivered, 5u);
  std::vector<int> out;
  EXPECT_TRUE(q.PopAll(&out));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BlockingQueue, PopAllRespectsMaxItems) {
  BlockingQueue<int> q(8);
  std::vector<int> batch{1, 2, 3, 4, 5};
  ASSERT_TRUE(q.PushAll(&batch).ok());
  std::vector<int> out;
  EXPECT_TRUE(q.PopAll(&out, /*max_items=*/2));
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.TryPopAll(&out, /*max_items=*/2), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 1u);
}

TEST(BlockingQueue, PushAllLargerThanCapacityDeliversPiecewise) {
  BlockingQueue<int> q(4);
  std::vector<int> batch(64);
  std::iota(batch.begin(), batch.end(), 0);

  std::thread producer([&] {
    std::size_t delivered = 0;
    std::int64_t blocked_us = 0;
    ASSERT_TRUE(q.PushAll(&batch, &delivered, &blocked_us).ok());
    EXPECT_EQ(delivered, 64u);
    EXPECT_GT(blocked_us, 0);  // had to wait for the consumer at least once
    q.Close();
  });

  std::vector<int> out;
  std::vector<int> chunk;
  while (q.PopAll(&chunk)) {
    out.insert(out.end(), chunk.begin(), chunk.end());
    chunk.clear();
  }
  producer.join();
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(BlockingQueue, PushAllIntoClosedReportsDelivered) {
  BlockingQueue<int> q(8);
  q.Close();
  std::vector<int> batch{1, 2, 3};
  std::size_t delivered = 99;
  EXPECT_TRUE(q.PushAll(&batch, &delivered).IsClosed());
  EXPECT_EQ(delivered, 0u);
}

TEST(BlockingQueue, CloseMidPushAllReportsPartialDelivery) {
  BlockingQueue<int> q(2);
  std::vector<int> batch{1, 2, 3, 4};
  std::size_t delivered = 0;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Close();  // producer is parked with 2 of 4 delivered
  });
  EXPECT_TRUE(q.PushAll(&batch, &delivered).IsClosed());
  closer.join();
  EXPECT_EQ(delivered, 2u);
  std::vector<int> out;
  EXPECT_TRUE(q.PopAll(&out));  // close-then-drain: delivered items survive
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BlockingQueue, PopAllForTimesOutEmpty) {
  BlockingQueue<int> q(4);
  std::vector<int> out;
  EXPECT_FALSE(q.PopAllFor(std::chrono::microseconds(5'000), &out));
  EXPECT_TRUE(out.empty());
}

TEST(BlockingQueue, BackPressureBlocksUntilSpace) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1).ok());
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    ASSERT_TRUE(q.Push(2).ok());
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

}  // namespace
}  // namespace strata
