#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace strata {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(Rng, PoissonMean) {
  Rng rng(7);
  std::int64_t total = 0;
  for (int i = 0; i < 10'000; ++i) total += rng.Poisson(4.0);
  EXPECT_NEAR(static_cast<double>(total) / 10'000.0, 4.0, 0.15);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(8);
  Rng child = parent.Fork();
  // The child stream must differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.UniformInt(0, 1 << 30) == child.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ExponentialGapPositiveWithMean) {
  Rng rng(9);
  double total = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double gap = rng.ExponentialGap(2.0);  // rate 2 -> mean 0.5
    EXPECT_GE(gap, 0.0);
    total += gap;
  }
  EXPECT_NEAR(total / 10'000.0, 0.5, 0.05);
}

}  // namespace
}  // namespace strata
