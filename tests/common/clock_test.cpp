#include "common/clock.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace strata {
namespace {

TEST(TimeConversions, RoundNumbers) {
  EXPECT_EQ(MillisToMicros(1), 1000);
  EXPECT_EQ(SecondsToMicros(1.0), 1'000'000);
  EXPECT_EQ(SecondsToMicros(3.0), 3'000'000);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(MicrosToMillis(1500), 1.5);
}

TEST(SystemClock, MonotonicNonDecreasing) {
  const Clock& clock = Clock::System();
  Timestamp previous = clock.Now();
  for (int i = 0; i < 1000; ++i) {
    const Timestamp now = clock.Now();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(SystemClock, SleepUntilWaits) {
  const Clock& clock = Clock::System();
  const Timestamp start = clock.Now();
  clock.SleepUntil(start + 10'000);  // 10 ms
  EXPECT_GE(clock.Now() - start, 9'000);
}

TEST(SystemClock, SleepUntilPastDeadlineReturnsImmediately) {
  const Clock& clock = Clock::System();
  const Timestamp start = clock.Now();
  clock.SleepUntil(start - 1'000'000);
  EXPECT_LT(clock.Now() - start, 5'000);
}

TEST(ManualClock, StartsAtGivenTime) {
  ManualClock clock(12345);
  EXPECT_EQ(clock.Now(), 12345);
}

TEST(ManualClock, AdvanceAndSet) {
  ManualClock clock(100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(1000);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(ManualClock, SleepUntilJumpsForward) {
  ManualClock clock(0);
  clock.SleepUntil(5000);  // returns immediately, advancing virtual time
  EXPECT_EQ(clock.Now(), 5000);
  clock.SleepUntil(3000);  // never goes backwards
  EXPECT_EQ(clock.Now(), 5000);
}

TEST(ManualClock, ConcurrentSleepersAllAdvance) {
  ManualClock clock(0);
  std::vector<std::thread> threads;
  for (int i = 1; i <= 8; ++i) {
    threads.emplace_back([&clock, i] { clock.SleepUntil(i * 100); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(clock.Now(), 800);
}

}  // namespace
}  // namespace strata
