#include "common/status.hpp"

#include <gtest/gtest.h>

namespace strata {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(Status, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Closed().IsClosed());
  EXPECT_TRUE(Status::Timeout().IsTimeout());
  EXPECT_FALSE(Status::IoError("disk").ok());
  EXPECT_EQ(Status::IoError("disk").ToString(), "IoError: disk");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(Status, OrDieThrowsOnError) {
  EXPECT_NO_THROW(Status::Ok().OrDie());
  EXPECT_THROW(Status::IoError("boom").OrDie(), std::runtime_error);
}

TEST(Status, CodeNamesCoverAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kClosed), "Closed");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_THROW(r.value(), std::runtime_error);
}

TEST(Result, RejectsOkStatusWithoutValue) {
  EXPECT_THROW(Result<int>(Status::Ok()), std::logic_error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status Fails() { return Status::IoError("inner"); }
Status Propagates() {
  STRATA_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(Status, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace strata
