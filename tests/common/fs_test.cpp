#include "common/fs.hpp"

#include <gtest/gtest.h>

namespace strata::fs {
namespace {

TEST(ScopedTempDir, CreatesAndRemoves) {
  std::filesystem::path path;
  {
    ScopedTempDir dir("fs-test");
    path = dir.path();
    EXPECT_TRUE(std::filesystem::is_directory(path));
    ASSERT_TRUE(WriteFile(path / "file.txt", "data").ok());
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ScopedTempDir, DistinctPaths) {
  ScopedTempDir a("fs-test");
  ScopedTempDir b("fs-test");
  EXPECT_NE(a.path(), b.path());
}

TEST(Fs, WriteReadRoundTrip) {
  ScopedTempDir dir("fs-rw");
  const auto path = dir.path() / "f.bin";
  const std::string payload("\x00\x01hello\xff", 8);
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(Fs, ReadMissingFileFails) {
  ScopedTempDir dir("fs-miss");
  EXPECT_FALSE(ReadFile(dir.path() / "absent").ok());
}

TEST(Fs, WriteFileAtomicReplacesExisting) {
  ScopedTempDir dir("fs-atomic");
  const auto path = dir.path() / "f";
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  EXPECT_EQ(*ReadFile(path), "new");
  // No stray temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}

TEST(Fs, CreateDirsIsIdempotent) {
  ScopedTempDir dir("fs-dirs");
  const auto nested = dir.path() / "a" / "b" / "c";
  ASSERT_TRUE(CreateDirs(nested).ok());
  ASSERT_TRUE(CreateDirs(nested).ok());
  EXPECT_TRUE(std::filesystem::is_directory(nested));
}

TEST(Fs, EmptyFile) {
  ScopedTempDir dir("fs-empty");
  const auto path = dir.path() / "empty";
  ASSERT_TRUE(WriteFile(path, "").ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

}  // namespace
}  // namespace strata::fs
