#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace strata {
namespace {

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.Push(i).ok());
  EXPECT_EQ(ring.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = ring.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRing, ZeroCapacityRejected) {
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRing, NonPowerOfTwoCapacityIsExact) {
  // The slot array rounds up to a power of two, but back-pressure must
  // honor the logical capacity exactly.
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 5u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.Push(i).ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(ring.Push(5).ok());  // blocks: ring full at 5
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(ring.Pop().value(), 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(ring.Pop().value(), i);
}

TEST(SpscRing, PushAfterCloseFails) {
  SpscRing<int> ring(4);
  ring.Close();
  EXPECT_TRUE(ring.Push(1).IsClosed());
  EXPECT_TRUE(ring.closed());
}

TEST(SpscRing, TryPopEmptyReturnsNullopt) {
  SpscRing<int> ring(4);
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRing, PopForTimesOut) {
  SpscRing<int> ring(4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(ring.PopFor(std::chrono::microseconds(20000)).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST(SpscRing, CloseUnblocksProducerAndDrainsConsumer) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.Push(1).ok());

  std::atomic<bool> producer_released{false};
  std::thread producer([&] {
    Status s = ring.Push(2);  // blocks: ring full
    EXPECT_TRUE(s.IsClosed());
    producer_released = true;
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(producer_released.load());
  ring.Close();
  producer.join();
  EXPECT_TRUE(producer_released.load());

  // Consumer still drains the item published before close.
  auto v = ring.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(ring.Pop().has_value());
}

TEST(SpscRing, CloseUnblocksEmptyConsumer) {
  SpscRing<int> ring(4);
  std::thread consumer([&] { EXPECT_FALSE(ring.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.Close();
  consumer.join();
}

TEST(SpscRing, BackPressureAccumulatesBlockedTime) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.Push(1).ok());
  std::int64_t blocked_us = 0;
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(ring.Pop().has_value());
  });
  ASSERT_TRUE(ring.Push(2, &blocked_us).ok());  // blocks until the pop
  consumer.join();
  EXPECT_GE(blocked_us, 20'000);
  EXPECT_EQ(ring.Pop().value(), 2);
}

TEST(SpscRing, PushAllPopAllRoundtrip) {
  SpscRing<int> ring(8);
  std::vector<int> batch{1, 2, 3, 4, 5};
  std::size_t delivered = 0;
  ASSERT_TRUE(ring.PushAll(&batch, &delivered).ok());
  EXPECT_EQ(delivered, 5u);
  std::vector<int> out;
  EXPECT_TRUE(ring.PopAll(&out));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(SpscRing, PushAllLargerThanCapacityDeliversPiecewise) {
  SpscRing<int> ring(4);
  std::vector<int> batch(64);
  for (int i = 0; i < 64; ++i) batch[static_cast<std::size_t>(i)] = i;

  std::thread producer([&] {
    std::size_t delivered = 0;
    std::int64_t blocked_us = 0;
    ASSERT_TRUE(ring.PushAll(&batch, &delivered, &blocked_us).ok());
    EXPECT_EQ(delivered, 64u);
    EXPECT_GT(blocked_us, 0);  // had to wait for the consumer at least once
    ring.Close();
  });

  std::vector<int> out;
  std::vector<int> chunk;
  while (ring.PopAll(&chunk)) {
    out.insert(out.end(), chunk.begin(), chunk.end());
    chunk.clear();
  }
  producer.join();
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(SpscRing, PushAllIntoClosedReportsDelivered) {
  SpscRing<int> ring(8);
  ring.Close();
  std::vector<int> batch{1, 2, 3};
  std::size_t delivered = 99;
  EXPECT_TRUE(ring.PushAll(&batch, &delivered).IsClosed());
  EXPECT_EQ(delivered, 0u);
}

TEST(SpscRing, PopAllForTimesOutEmpty) {
  SpscRing<int> ring(4);
  std::vector<int> out;
  EXPECT_FALSE(ring.PopAllFor(std::chrono::microseconds(5'000), &out));
  EXPECT_TRUE(out.empty());
}

// Seeded randomized 1P1C stress: interleave single-item and batch APIs on
// both sides; the consumer must observe the exact produced sequence.
TEST(SpscRing, RandomizedStressPreservesSequence) {
  constexpr int kTotal = 50'000;
  SpscRing<int> ring(16);

  std::thread producer([&] {
    Rng rng(42);
    int next = 0;
    while (next < kTotal) {
      if (rng.UniformInt(0, 1) == 0) {
        ASSERT_TRUE(ring.Push(next++).ok());
      } else {
        const int n = static_cast<int>(
            rng.UniformInt(1, 40));  // batches may exceed capacity
        std::vector<int> batch;
        for (int i = 0; i < n && next < kTotal; ++i) batch.push_back(next++);
        ASSERT_TRUE(ring.PushAll(&batch).ok());
      }
    }
    ring.Close();
  });

  Rng rng(7);
  int expected = 0;
  while (true) {
    if (rng.UniformInt(0, 1) == 0) {
      auto v = ring.Pop();
      if (!v.has_value()) break;
      ASSERT_EQ(*v, expected++);
    } else {
      std::vector<int> out;
      if (!ring.PopAll(&out)) break;
      for (const int v : out) ASSERT_EQ(v, expected++);
    }
  }
  producer.join();
  EXPECT_EQ(expected, kTotal);
}

}  // namespace
}  // namespace strata
