#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace strata {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { Logger::Instance().SetLevel(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelGatesEnabled) {
  Logger& logger = Logger::Instance();
  logger.SetLevel(LogLevel::kWarn);
  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.Enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.Enabled(LogLevel::kError));

  logger.SetLevel(LogLevel::kDebug);
  EXPECT_TRUE(logger.Enabled(LogLevel::kDebug));

  logger.SetLevel(LogLevel::kOff);
  EXPECT_FALSE(logger.Enabled(LogLevel::kError));
}

TEST_F(LoggingTest, LevelRoundTrips) {
  Logger::Instance().SetLevel(LogLevel::kInfo);
  EXPECT_EQ(Logger::Instance().level(), LogLevel::kInfo);
}

TEST_F(LoggingTest, DisabledMacroDoesNotEvaluateArguments) {
  Logger::Instance().SetLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "expensive";
  };
  LOG_DEBUG << expensive();
  LOG_ERROR << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, EnabledMacroEvaluatesAndWrites) {
  Logger::Instance().SetLevel(LogLevel::kError);
  int evaluations = 0;
  auto counted = [&evaluations] {
    ++evaluations;
    return 42;
  };
  LOG_ERROR << "value " << counted();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, ConcurrentWritesDoNotCrash) {
  Logger::Instance().SetLevel(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) LOG_ERROR << "thread message " << i;
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace strata
