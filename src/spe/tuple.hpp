// SPE tuple model, following the paper's schema (§2): metadata carries the
// event timestamp τ plus AM-specific identifiers (job, layer, and — after
// partition() — specimen, portion); the payload carries arbitrary key-value
// sub-attributes.
//
// In addition to event time, each tuple carries a *stimulus* timestamp: the
// processing-time moment the newest input contributing to this tuple entered
// the system. The paper's latency metric (§3: "time interval between the
// output of a result and the time when all the data that led to such a
// result were made available") is exactly `now - stimulus` at the sink;
// operators combine stimuli with max when fusing/aggregating tuples.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.hpp"
#include "common/trace_context.hpp"
#include "common/value.hpp"

namespace strata::spe {

/// Sentinel for unset metadata identifiers.
constexpr std::int64_t kUnsetId = -1;

struct Tuple {
  Timestamp event_time = 0;  // τ (event time, microseconds)
  std::int64_t job = kUnsetId;
  std::int64_t layer = kUnsetId;
  std::int64_t specimen = kUnsetId;
  std::int64_t portion = kUnsetId;
  Timestamp stimulus = 0;  // processing-time arrival of newest contributor
  // Sampled-trace identity (zero = unsampled, the overwhelmingly common
  // case). Trace context rides on the tuple — not the batch — because
  // batches are re-formed at every queue hop while tuples survive them; a
  // batch's trace is the context of its first sampled tuple (obs/trace.hpp).
  TraceContext trace;
  /// Non-zero marks this tuple as an epoch-barrier marker (Chandy–Lamport /
  /// Flink style): it carries no data, flows through the data plane like any
  /// other tuple (both the MPMC queue and the SPSC ring transport it), and
  /// triggers a state snapshot as it drains past each operator. Zero — the
  /// default and the only value data tuples ever carry — costs one branch
  /// per tuple in the operator loops.
  std::uint64_t barrier_epoch = 0;
  Payload payload;

  [[nodiscard]] bool IsBarrier() const noexcept { return barrier_epoch != 0; }

  /// A barrier marker for checkpoint epoch `epoch` (must be >= 1).
  [[nodiscard]] static Tuple Barrier(std::uint64_t epoch) {
    Tuple t;
    t.barrier_epoch = epoch;
    return t;
  }

  [[nodiscard]] std::size_t ApproxBytes() const noexcept {
    return sizeof(Tuple) + payload.ApproxBytes();
  }

  [[nodiscard]] std::string ToString() const {
    if (IsBarrier()) {
      return "<barrier epoch=" + std::to_string(barrier_epoch) + ">";
    }
    std::string out = "<t=" + std::to_string(event_time);
    out += " job=" + std::to_string(job);
    out += " layer=" + std::to_string(layer);
    if (specimen != kUnsetId) out += " spec=" + std::to_string(specimen);
    if (portion != kUnsetId) out += " portion=" + std::to_string(portion);
    out += " " + payload.ToString() + ">";
    return out;
  }
};

/// Combine stimulus clocks when an output depends on multiple inputs.
constexpr Timestamp CombineStimulus(Timestamp a, Timestamp b) noexcept {
  return a > b ? a : b;
}

}  // namespace strata::spe
