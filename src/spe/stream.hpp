// A stream: the bounded channel connecting two operators, plus flow metrics.
// Push blocks when the channel is full — back-pressure propagates upstream to
// the sources, as in Liebre/StreamCloud.
//
// Two interchangeable transports sit behind the same API:
//   - MPMC (default): mutex/condvar BlockingQueue — safe for any number of
//     producers/consumers, including streams pushed from outside the query.
//   - SPSC fast path: lock-free SpscRing, selected by Query::Start for
//     streams with exactly one producer and one consumer operator (the
//     common case in our DAGs; Router/Union plumbing keeps MPMC).
// Capacity is counted in tuples either way, so back-pressure semantics are
// identical; batches (PushBatch/PopBatch) are a synchronization
// amortization, not a storage unit.
#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <string>

#include "common/histogram.hpp"
#include "common/queue.hpp"
#include "common/spsc_ring.hpp"
#include "spe/batch.hpp"
#include "spe/tuple.hpp"

namespace strata::spe {

class Stream {
 public:
  Stream(std::string name, std::size_t capacity)
      : name_(std::move(name)),
        capacity_(capacity),
        mpmc_(std::make_unique<BlockingQueue<Tuple>>(capacity)) {}

  // ----- single-tuple API (tests, external pushers, trickle paths) -----

  [[nodiscard]] Status Push(Tuple tuple) {
    std::int64_t blocked_us = 0;
    const Status s = spsc_ ? spsc_->Push(std::move(tuple), &blocked_us)
                           : mpmc_->Push(std::move(tuple), &blocked_us);
    if (blocked_us > 0) {
      blocked_us_.fetch_add(static_cast<std::uint64_t>(blocked_us),
                            std::memory_order_relaxed);
    }
    if (s.ok()) {
      pushed_.fetch_add(1, std::memory_order_relaxed);
    } else if (s.IsClosed()) {
      discarded_.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }

  [[nodiscard]] std::optional<Tuple> Pop() {
    auto t = spsc_ ? spsc_->Pop() : mpmc_->Pop();
    if (t.has_value()) popped_.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  [[nodiscard]] std::optional<Tuple> PopFor(std::chrono::microseconds timeout) {
    auto t = spsc_ ? spsc_->PopFor(timeout) : mpmc_->PopFor(timeout);
    if (t.has_value()) popped_.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  // ----- batch API (one synchronization per batch) -----

  /// Pushes the whole batch in order, blocking for space as needed; delivered
  /// elements are moved out of `*batch` (clear() it to recycle the heap
  /// block). On a closed stream the undelivered remainder is counted as
  /// discarded and `*delivered` reports how many tuples made it in.
  [[nodiscard]] Status PushBatch(TupleBatch* batch,
                                 std::size_t* delivered = nullptr) {
    const std::size_t total = batch->size();
    if (total == 0) return Status::Ok();
    std::size_t done = 0;
    std::int64_t blocked_us = 0;
    const Status s = spsc_ ? spsc_->PushAll(batch, &done, &blocked_us)
                           : mpmc_->PushAll(batch, &done, &blocked_us);
    if (blocked_us > 0) {
      blocked_us_.fetch_add(static_cast<std::uint64_t>(blocked_us),
                            std::memory_order_relaxed);
    }
    if (done > 0) pushed_.fetch_add(done, std::memory_order_relaxed);
    if (done < total) {
      discarded_.fetch_add(total - done, std::memory_order_relaxed);
    }
    if (delivered != nullptr) *delivered = done;
    return s;
  }

  /// Drains up to `max_tuples` of what is queued in one call; blocks until
  /// at least one tuple. nullopt once the stream is closed AND drained.
  /// Consumers pass their batch size so one drain never pulls more than a
  /// batch of tuples into operator memory (bounded run-ahead).
  [[nodiscard]] std::optional<TupleBatch> PopBatch(
      std::size_t max_tuples = kNoLimit) {
    TupleBatch batch;
    const bool got = spsc_ ? spsc_->PopAll(&batch, max_tuples)
                           : mpmc_->PopAll(&batch, max_tuples);
    if (!got) return std::nullopt;
    RecordDrain(batch.size());
    return batch;
  }

  /// PopBatch with a timeout; nullopt on timeout or closed-and-drained.
  [[nodiscard]] std::optional<TupleBatch> PopBatchFor(
      std::chrono::microseconds timeout, std::size_t max_tuples = kNoLimit) {
    TupleBatch batch;
    const bool got = spsc_ ? spsc_->PopAllFor(timeout, &batch, max_tuples)
                           : mpmc_->PopAllFor(timeout, &batch, max_tuples);
    if (!got) return std::nullopt;
    RecordDrain(batch.size());
    return batch;
  }

  /// Non-blocking drain; nullopt when nothing is queued.
  [[nodiscard]] std::optional<TupleBatch> TryPopBatch(
      std::size_t max_tuples = kNoLimit) {
    TupleBatch batch;
    const std::size_t n = spsc_ ? spsc_->TryPopAll(&batch, max_tuples)
                                : mpmc_->TryPopAll(&batch, max_tuples);
    if (n == 0) return std::nullopt;
    RecordDrain(n);
    return batch;
  }

  // ----- transport selection -----

  /// Switch to the lock-free SPSC ring. Only legal before any traffic (and
  /// before operator threads start): returns false and keeps the MPMC queue
  /// if the stream has been pushed to, closed, or already consumed from.
  /// Called by Query::Start for streams with exactly one producer and one
  /// consumer operator; not thread-safe against concurrent stream use.
  bool TryEnableSpsc() {
    if (spsc_) return true;
    if (mpmc_->closed() || mpmc_->size() != 0 ||
        pushed_.load(std::memory_order_relaxed) != 0 ||
        popped_.load(std::memory_order_relaxed) != 0) {
      return false;
    }
    spsc_ = std::make_unique<SpscRing<Tuple>>(capacity_);
    mpmc_.reset();
    return true;
  }

  /// True when the lock-free fast path is active.
  [[nodiscard]] bool spsc() const noexcept { return spsc_ != nullptr; }

  // ----- lifecycle + metrics -----

  void Close() { spsc_ ? spsc_->Close() : mpmc_->Close(); }
  [[nodiscard]] bool closed() const {
    return spsc_ ? spsc_->closed() : mpmc_->closed();
  }
  [[nodiscard]] bool drained() const { return closed() && depth() == 0; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const noexcept {
    return popped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t depth() const {
    return spsc_ ? spsc_->size() : mpmc_->size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Cumulative microseconds producers spent blocked on a full queue
  /// (the back-pressure signal surfaced by the obs layer).
  [[nodiscard]] std::uint64_t blocked_us() const noexcept {
    return blocked_us_.load(std::memory_order_relaxed);
  }
  /// Tuples dropped because they were pushed at (or flushed into) a closed
  /// stream — downstream exited, nobody will consume them.
  [[nodiscard]] std::uint64_t discarded() const noexcept {
    return discarded_.load(std::memory_order_relaxed);
  }
  /// Distribution of consumer-side drain sizes: how many tuples each
  /// PopBatch amortized its synchronization over.
  [[nodiscard]] Histogram BatchSizeSnapshot() const {
    return batch_sizes_.Snapshot();
  }

  static constexpr std::size_t kNoLimit =
      std::numeric_limits<std::size_t>::max();

 private:
  void RecordDrain(std::size_t n) {
    popped_.fetch_add(n, std::memory_order_relaxed);
    batch_sizes_.Record(static_cast<std::int64_t>(n));
  }

  std::string name_;
  const std::size_t capacity_;
  // Exactly one transport is live; see TryEnableSpsc.
  std::unique_ptr<BlockingQueue<Tuple>> mpmc_;
  std::unique_ptr<SpscRing<Tuple>> spsc_;
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> blocked_us_{0};
  std::atomic<std::uint64_t> discarded_{0};
  ConcurrentHistogram batch_sizes_;
};

using StreamPtr = std::shared_ptr<Stream>;

}  // namespace strata::spe
