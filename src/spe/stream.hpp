// A stream: the bounded queue connecting two operators, plus flow metrics.
// Push blocks when the queue is full — back-pressure propagates upstream to
// the sources, as in Liebre/StreamCloud.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "common/queue.hpp"
#include "spe/tuple.hpp"

namespace strata::spe {

class Stream {
 public:
  Stream(std::string name, std::size_t capacity)
      : name_(std::move(name)), queue_(capacity) {}

  [[nodiscard]] Status Push(Tuple tuple) {
    std::int64_t blocked_us = 0;
    const Status s = queue_.Push(std::move(tuple), &blocked_us);
    if (blocked_us > 0) {
      blocked_us_.fetch_add(static_cast<std::uint64_t>(blocked_us),
                            std::memory_order_relaxed);
    }
    if (s.ok()) pushed_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] std::optional<Tuple> Pop() {
    auto t = queue_.Pop();
    if (t.has_value()) popped_.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  [[nodiscard]] std::optional<Tuple> PopFor(std::chrono::microseconds timeout) {
    auto t = queue_.PopFor(timeout);
    if (t.has_value()) popped_.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  void Close() { queue_.Close(); }
  [[nodiscard]] bool closed() const { return queue_.closed(); }
  [[nodiscard]] bool drained() const {
    return queue_.closed() && queue_.size() == 0;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const noexcept {
    return popped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return queue_.capacity();
  }
  /// Cumulative microseconds producers spent blocked on a full queue
  /// (the back-pressure signal surfaced by the obs layer).
  [[nodiscard]] std::uint64_t blocked_us() const noexcept {
    return blocked_us_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  BlockingQueue<Tuple> queue_;
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> blocked_us_{0};
};

using StreamPtr = std::shared_ptr<Stream>;

}  // namespace strata::spe
