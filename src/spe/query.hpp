// Continuous query: a DAG of operators connected by bounded streams (paper
// §2). The builder API creates operators and returns the stream handle of
// each operator's output; every stream has exactly one producer and one
// consumer (fan-out is explicit via AddSplit, parallelism via the
// router/union pair built by the `parallelism` argument of AddFlatMap).
//
// Lifecycle: build -> Start() -> [Stop()] -> Join(). Sources end the query
// naturally by returning nullopt; Stop() asks sources to finish early. End
// of stream cascades: each operator flushes its state, closes its outputs,
// and exits, so Join() returns once the sinks have consumed everything.
#pragma once

#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "spe/checkpoint.hpp"
#include "spe/operator.hpp"

namespace strata::spe {

class FusedOperator;

struct QueryOptions {
  std::size_t queue_capacity = 1024;
  const Clock* clock = &Clock::System();
  /// Emit-buffer flush threshold per output (tuples). 1 = per-tuple pushes
  /// (the pre-batch data plane); larger values amortize queue
  /// synchronization at high rates. See BatchPolicy.
  std::size_t batch_size = BatchPolicy{}.batch_size;
  /// Upper bound (µs, query clock) a tuple may wait in an emit buffer.
  /// Idle-triggered flushes keep latency flat at low rates regardless.
  std::int64_t batch_linger_us = BatchPolicy{}.linger_us;
  /// Allow Start() to switch 1-producer/1-consumer streams to the lock-free
  /// SPSC ring (Router/Union endpoints always keep the MPMC queue).
  bool enable_spsc = true;
  /// Allow Start() to fuse adjacent stateless operators (FlatMap/Filter
  /// chains on private streams) into single fused workers with no
  /// intermediate queue (see plan_rewrite.hpp). Off by default: the fused
  /// plan is output-equivalent but runs a chain per thread instead of an
  /// operator per thread. Per-operator stats/metrics keep per-stage
  /// identity either way.
  bool enable_fusion = false;
};

class Query {
 public:
  explicit Query(QueryOptions options = {});
  ~Query();
  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  // ----- builders (call before Start) -----

  [[nodiscard]] StreamPtr AddSource(const std::string& name, SourceFn fn);

  /// Source whose function yields whole batches (e.g. one broker poll);
  /// each yielded batch is emitted and flushed downstream as a unit.
  [[nodiscard]] StreamPtr AddBatchSource(const std::string& name,
                                         BatchSourceFn fn);

  /// Map/FlatMap. With parallelism > 1 a hash router shards tuples by
  /// `shard_key` across `parallelism` instances whose outputs are unioned
  /// (per-key order preserved; cross-key order not).
  [[nodiscard]] StreamPtr AddFlatMap(const std::string& name, StreamPtr in,
                                     FlatMapFn fn, int parallelism = 1,
                                     KeyFn shard_key = nullptr);

  [[nodiscard]] StreamPtr AddFilter(const std::string& name, StreamPtr in,
                                    FilterFn fn);

  /// Windowed aggregate. With shards > 1 the stage is keyed-data-parallel:
  /// a hash router partitions tuples by `spec.key` (required) across
  /// `shards` instances named `name[i]` whose outputs are unioned
  /// (per-key order preserved; cross-key order not). Checkpoint state is
  /// per shard; Recover() re-hashes it onto a different shard count.
  [[nodiscard]] StreamPtr AddAggregate(const std::string& name, StreamPtr in,
                                       AggregateSpec spec, int shards = 1);

  /// Time-bound join. With shards > 1 both sides are hash-routed by their
  /// respective group-by keys (`spec.key_left`/`spec.key_right`, required)
  /// across `shards` join instances; matching pairs agree on key and so
  /// land on the same shard. Same checkpoint/re-hash story as AddAggregate.
  [[nodiscard]] StreamPtr AddJoin(const std::string& name, StreamPtr left,
                                  StreamPtr right, JoinSpec spec,
                                  int shards = 1);

  [[nodiscard]] StreamPtr AddUnion(const std::string& name,
                                   std::vector<StreamPtr> ins);

  /// Duplicates a stream to `n` consumers (explicit DAG fan-out).
  [[nodiscard]] std::vector<StreamPtr> AddSplit(const std::string& name,
                                                StreamPtr in, int n);

  /// Terminal operator. Returns the sink so callers can read its latency
  /// histogram; the Query keeps ownership.
  SinkOperator* AddSink(const std::string& name, StreamPtr in, SinkFn fn);

  // ----- checkpointing (call before Start) -----

  /// Enable epoch-barrier checkpointing against `store` (caller keeps
  /// ownership; must outlive the query). Start() then registers every
  /// operator with the coordinator — which requires operator names to be
  /// unique — and runs the epoch timer for the life of the query.
  void EnableCheckpointing(CheckpointStore* store,
                           CheckpointerOptions options = {});

  /// Restore the latest complete checkpoint into the rebuilt DAG: each
  /// manifest blob is matched to an operator by name and fed to its
  /// RestoreState; blobs naming operators absent from this build are warned
  /// about and dropped. NotFound in the store (no checkpoint yet) is a
  /// normal fresh start, not an error. Epoch numbering resumes after the
  /// recovered epoch. Call after building the DAG, before Start().
  [[nodiscard]] Status Recover();

  /// Epoch restored by the last successful Recover(); 0 = fresh start.
  [[nodiscard]] std::uint64_t recovered_epoch() const noexcept {
    return recovered_epoch_;
  }

  /// The operator registered under `name`, or nullptr. Used by the strata
  /// facade (and tests) to install state hooks on connector endpoints.
  [[nodiscard]] Operator* FindOperator(const std::string& name);

  /// The checkpoint coordinator, or nullptr when checkpointing is off.
  [[nodiscard]] Checkpointer* checkpointer() noexcept {
    return checkpointer_.get();
  }

  // ----- lifecycle -----

  void Start();
  /// Ask sources to finish; pipeline drains and Join() then returns.
  void Stop();
  /// Wait until every operator thread exits.
  void Join();
  /// Convenience: Start + Join (for finite sources).
  void Run();

  [[nodiscard]] bool started() const noexcept { return started_; }

  // ----- introspection -----

  /// Expose per-operator counters (spe.operator.*{op,kind}) and per-stream
  /// gauges (spe.stream.*{stream}) on `registry` via a pull callback.
  /// Rebinding replaces the previous registration; nullptr unbinds. The
  /// callback is unregistered automatically on destruction, so the registry
  /// must outlive the query.
  void BindMetrics(obs::MetricsRegistry* registry);

  [[nodiscard]] std::vector<OperatorStats> Stats() const;
  [[nodiscard]] std::size_t operator_count() const noexcept {
    return operators_.size();
  }

  /// GraphViz rendering of the operator/stream DAG (for docs + debugging).
  [[nodiscard]] std::string ToDot() const;

 private:
  /// A keyed-parallel Aggregate/Join built by the shards argument; recorded
  /// even at shards == 1 so Recover() can re-hash a manifest written under
  /// a different shard count onto this plan's shape.
  struct ShardGroup {
    std::string base;
    bool is_join = false;
    int shards = 1;
  };

  StreamPtr NewStream(const std::string& name);
  void Consume(const StreamPtr& stream);  // enforce single consumer
  /// Switch eligible streams (one producer op, one consumer op, no
  /// router/union endpoint) to the lock-free SPSC transport.
  void EnableSpscFastPaths();
  /// Re-hash `group`'s manifest blobs onto its current shard count; blob
  /// names consumed here are added to `consumed` and skipped by the plain
  /// by-name restore loop. No-op when the manifest's shape already matches.
  [[nodiscard]] Status RestoreShardGroup(
      const ShardGroup& group, const CheckpointManifest& manifest,
      std::unordered_set<std::string>* consumed);
  template <typename Op, typename... Args>
  Op* NewOperator(Args&&... args);

  QueryOptions options_;
  /// Guards operators_/streams_ against concurrent builder calls and the
  /// metrics snapshot callback (which may run on a sampler thread).
  mutable std::mutex build_mu_;
  std::vector<std::unique_ptr<Operator>> operators_;
  /// Fused workers built by Start()'s rewrite pass. Kept out of operators_:
  /// they are an execution detail, and stats/metrics/checkpoint registration
  /// stay in terms of the logical operators they absorbed.
  std::vector<std::unique_ptr<FusedOperator>> fused_;
  std::vector<ShardGroup> shard_groups_;
  std::vector<StreamPtr> streams_;
  std::unordered_set<Stream*> consumed_;
  std::vector<std::thread> threads_;
  std::unique_ptr<Checkpointer> checkpointer_;
  std::uint64_t recovered_epoch_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CallbackId metrics_callback_ = 0;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace strata::spe
