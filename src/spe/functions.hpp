// User-function signatures accepted by the native operators.
#pragma once

#include <any>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "spe/batch.hpp"
#include "spe/tuple.hpp"

namespace strata::spe {

/// Produces the next tuple, blocking as needed; nullopt = end of stream.
using SourceFn = std::function<std::optional<Tuple>()>;

/// Batch variant: produces whatever is ready as one batch (possibly empty —
/// the source just polls again), blocking as needed; nullopt = end of
/// stream. Preferred for ingest paths that already receive data in chunks
/// (e.g. broker polls), so the data plane keeps the upstream batching.
using BatchSourceFn = std::function<std::optional<TupleBatch>()>;

/// 1 input -> N outputs (N may be 0). The Map/FlatMap operator.
using FlatMapFn = std::function<std::vector<Tuple>(const Tuple&)>;

/// Keep or drop.
using FilterFn = std::function<bool(const Tuple&)>;

/// Group-by key extractor. Empty string = single global group.
using KeyFn = std::function<std::string(const Tuple&)>;

/// Terminal consumer.
using SinkFn = std::function<void(const Tuple&)>;

/// Join predicate over one left and one right tuple.
using JoinPredicate = std::function<bool(const Tuple&, const Tuple&)>;

/// Combines a matched pair into the joined output tuple's payload; the
/// operator fills metadata (τ = max, stimulus = max).
using JoinCombineFn = std::function<Payload(const Tuple&, const Tuple&)>;

/// Time window description for Aggregate (and the optional windowed fuse).
/// Windows cover [l*advance, l*advance + size) per group, l in N (paper §2).
struct WindowSpec {
  Timestamp size = 0;
  Timestamp advance = 0;

  [[nodiscard]] bool valid() const noexcept {
    return size > 0 && advance > 0 && advance <= size;
  }
};

/// Incremental aggregation of one window's worth of tuples.
struct AggregateSpec {
  WindowSpec window;
  /// Bounded-disorder tolerance: a window [s, s+WS) closes only once a
  /// tuple with event time >= s + WS + allowed_lateness arrives, so tuples
  /// up to `allowed_lateness` out of order still land in their window
  /// (at the cost of added result delay). 0 = in-order streams.
  Timestamp allowed_lateness = 0;
  /// Optional group-by; tuples with different keys aggregate separately.
  KeyFn key;
  /// Fresh accumulator for a new window.
  std::function<std::any()> init;
  /// Fold one tuple into the accumulator.
  std::function<void(std::any&, const Tuple&)> add;
  /// Emit output tuples when the window [start, end) closes. `window_start`
  /// and `window_end` are event times; the operator assigns τ = window_end-1
  /// (the greatest event time covered) unless the function sets it.
  std::function<std::vector<Tuple>(std::any&, Timestamp window_start,
                                   Timestamp window_end)>
      result;
  /// Optional accumulator codec pair used by checkpointing: without them an
  /// Aggregate cannot serialize its open windows and every checkpoint epoch
  /// the operator participates in is reported failed (graceful degradation —
  /// the query keeps running, recovery is just unavailable). The prebuilt
  /// builders in aggregates.hpp provide both.
  std::function<Status(const std::any&, std::string*)> encode_acc;
  std::function<Result<std::any>(std::string_view)> decode_acc;
};

}  // namespace strata::spe
