// Micro-batching for the SPE data plane.
//
// A TupleBatch — a small vector of tuples — is the unit moved through
// streams: operators drain whatever is queued in one call, emit through
// per-output buffers, and pay one queue synchronization per batch instead of
// per tuple. Batches are a transport amortization only; tuple order, event
// time semantics, back-pressure, and per-tuple operator counts are exactly
// those of the per-tuple plane (scale-up SPE batching à la arXiv:2211.13461).
//
// A plain std::vector is deliberate: a batch crosses a queue hop as three
// pointers, so batching never copies payloads, and the vector's heap block
// is recycled by the emit buffers between flushes.
#pragma once

#include <cstdint>
#include <vector>

#include "spe/tuple.hpp"

namespace strata::spe {

using TupleBatch = std::vector<Tuple>;

/// Knobs governing when an operator's emit buffer flushes downstream.
/// Defaults keep latency flat at low rates (slow sources flush per tuple —
/// see Operator::MaybeFlush) while saturated stages amortize `batch_size`
/// tuples per stream hop.
struct BatchPolicy {
  /// Flush an output buffer once it holds this many tuples. 1 disables
  /// batching (per-tuple pushes, the pre-batch behavior).
  std::size_t batch_size = 64;
  /// Flush a non-empty buffer once its oldest tuple has waited this long
  /// (query-clock microseconds), bounding the latency cost of batching.
  std::int64_t linger_us = 200;
};

}  // namespace strata::spe
