#include "spe/plan_rewrite.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/codec.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "spe/checkpoint.hpp"

namespace strata::spe {

namespace {

/// Span covering one drained batch through the whole fused chain. The span
/// NAME is the fused operator's name — the constituent operator names joined
/// with '+' — so /tracez shows which logical stages ran, not an opaque node.
obs::SpanScope FusedBatchSpan(const std::string& name,
                              const TupleBatch& batch) {
  if (!obs::TracingEnabled()) return {};
  for (const Tuple& tuple : batch) {
    if (tuple.trace.sampled()) {
      return obs::SpanScope(name.c_str(), "spe.fused", tuple.trace,
                            batch.size());
    }
  }
  return {};
}

/// Per-stage counters accumulated locally while a batch runs the chain and
/// flushed into the constituent operators' atomics once per drained batch.
struct StageCounts {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  std::uint64_t errors = 0;
};

}  // namespace

// ----------------------------------------------------------- FusedOperator

FusedOperator::FusedOperator(std::string name, const Clock* clock,
                             std::vector<Stage> stages)
    : Operator(std::move(name), clock), stages_(std::move(stages)) {}

void FusedOperator::Run() {
  std::vector<StageCounts> counts(stages_.size());
  std::uint64_t last_discarded = stats().discarded;
  // Flush the locally-accumulated per-stage counts into the absorbed
  // operators so Stats()/metrics keep per-stage identity. Output discards
  // (closed downstream) happen at the chain's Emit, so the delta in this
  // operator's own counter is attributed to the tail stage.
  auto flush_counts = [&] {
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      if (counts[s].in == 0 && counts[s].out == 0 && counts[s].errors == 0) {
        continue;
      }
      stages_[s].op->AccumulateStageCounts(counts[s].in, counts[s].out,
                                           counts[s].errors, 0);
      counts[s] = StageCounts{};
    }
    const std::uint64_t discarded = stats().discarded;
    if (discarded != last_discarded) {
      stages_.back().op->AccumulateStageCounts(0, 0, 0,
                                               discarded - last_discarded);
      last_discarded = discarded;
    }
  };

  TupleBatch cur;
  TupleBatch next;
  bool open = true;
  while (open) {
    auto batch = inputs_[0]->PopBatch(batch_size());
    if (!batch.has_value()) break;  // input closed and drained
    obs::SpanScope span = FusedBatchSpan(name(), *batch);
    for (Tuple& tuple : *batch) {
      if (tuple.IsBarrier()) {
        CompleteChainBarrier(tuple.barrier_epoch);
        continue;
      }
      cur.clear();
      cur.push_back(std::move(tuple));
      for (std::size_t s = 0; s < stages_.size() && !cur.empty(); ++s) {
        const Stage& stage = stages_[s];
        counts[s].in += cur.size();
        next.clear();
        for (Tuple& t : cur) {
          if (stage.flatmap != nullptr) {
            try {
              std::vector<Tuple> results = (*stage.flatmap)(t);
              for (Tuple& out : results) {
                if (out.stimulus == 0) out.stimulus = t.stimulus;
                next.push_back(std::move(out));
              }
            } catch (const std::exception& e) {
              ++counts[s].errors;
              LOG_ERROR << "operator '" << stage.op->name()
                        << "' (fused): user function threw: " << e.what();
            }
          } else {
            bool keep = false;
            try {
              keep = (*stage.filter)(t);
            } catch (const std::exception& e) {
              ++counts[s].errors;
              LOG_ERROR << "operator '" << stage.op->name()
                        << "' (fused): user function threw: " << e.what();
            }
            if (keep) next.push_back(std::move(t));
          }
        }
        counts[s].out += next.size();
        cur.swap(next);
      }
      for (Tuple& out : cur) {
        if (span.active()) out.trace = span.EmitContext();
        if (!(open = Emit(std::move(out)))) break;
      }
      if (!open) break;
    }
    flush_counts();
    if (open) MaybeFlush(inputs_[0]->depth() == 0);
  }
  if (!open) CloseInputs();  // early exit: downstream consumers are gone
  CloseOutputs();
}

void FusedOperator::CompleteChainBarrier(std::uint64_t epoch) {
  FlushEmit();  // no partial batch may straddle the epoch boundary
  if (Checkpointer* cp = checkpointer(); cp != nullptr) {
    // One snapshot per constituent, under its registered name — a manifest
    // written by a fused plan restores into an unfused one and vice versa.
    for (const Stage& stage : stages_) {
      std::string blob;
      const Status snapshot = stage.op->SnapshotState(epoch, &blob);
      if (snapshot.ok()) {
        cp->ReportSnapshot(stage.op->name(), epoch, std::move(blob));
      } else {
        cp->ReportSnapshotFailure(stage.op->name(), epoch, snapshot);
      }
    }
  }
  ForwardBarrier(epoch);
}

void FusedOperator::NotifyFinished() {
  // The constituents are what the checkpointer knows about; the fused
  // worker itself is never registered.
  if (Checkpointer* cp = checkpointer(); cp != nullptr) {
    for (const Stage& stage : stages_) {
      cp->OnOperatorFinished(stage.op->name());
    }
  }
}

// ------------------------------------------------------ FuseStatelessChains

FusionPlan FuseStatelessChains(
    const std::vector<std::unique_ptr<Operator>>& operators,
    const Clock* clock) {
  // Endpoint census over the whole plan: a fusable link must be a private
  // stream (exactly one registered producer and consumer). Streams pushed
  // from outside the query have an unregistered endpoint the census cannot
  // see — same assumption the SPSC fast-path pass already makes.
  std::map<const Stream*, std::pair<int, int>> endpoint_count;
  for (const auto& op : operators) {
    for (const StreamPtr& out : op->outputs()) {
      ++endpoint_count[out.get()].first;
    }
    for (const StreamPtr& in : op->inputs()) {
      ++endpoint_count[in.get()].second;
    }
  }

  // Eligible members: stateless 1-input/1-output operators. (A Split is a
  // FlatMap with N outputs and drops out on the output-count rule.)
  auto eligible = [](Operator* op) -> FusedOperator::Stage {
    FusedOperator::Stage stage;
    if (op->inputs().size() != 1 || op->outputs().size() != 1) return stage;
    if (auto* fm = dynamic_cast<FlatMapOperator*>(op)) {
      stage.op = op;
      stage.flatmap = &fm->fn();
    } else if (auto* f = dynamic_cast<FilterOperator*>(op)) {
      stage.op = op;
      stage.filter = &f->fn();
    }
    return stage;
  };

  std::unordered_map<Operator*, FusedOperator::Stage> members;
  std::unordered_map<const Stream*, Operator*> consumer_of;
  for (const auto& op : operators) {
    FusedOperator::Stage stage = eligible(op.get());
    if (stage.op == nullptr) continue;
    members.emplace(op.get(), stage);
    consumer_of.emplace(op->inputs()[0].get(), op.get());
  }

  // Link a -> b when a's output stream is b's input stream and the stream is
  // private to the pair.
  std::unordered_map<Operator*, Operator*> next;
  std::unordered_set<Operator*> has_prev;
  for (const auto& [op, stage] : members) {
    const Stream* out = op->outputs()[0].get();
    const auto count = endpoint_count[out];
    if (count.first != 1 || count.second != 1) continue;
    const auto it = consumer_of.find(out);
    if (it == consumer_of.end() || it->second == op) continue;
    next[op] = it->second;
    has_prev.insert(it->second);
  }

  // Greedy maximal chains, walked in plan order so fused names and thread
  // layout are deterministic. Chains of one stay as plain operators.
  FusionPlan plan;
  for (const auto& op : operators) {
    Operator* head = op.get();
    if (members.find(head) == members.end()) continue;
    if (has_prev.find(head) != has_prev.end()) continue;
    std::vector<FusedOperator::Stage> stages;
    std::string name;
    for (Operator* cur = head; cur != nullptr;) {
      stages.push_back(members.at(cur));
      if (!name.empty()) name += '+';
      name += cur->name();
      const auto it = next.find(cur);
      cur = it == next.end() ? nullptr : it->second;
    }
    if (stages.size() < 2) continue;
    Operator* tail = stages.back().op;
    auto fused = std::make_unique<FusedOperator>(std::move(name), clock,
                                                 std::move(stages));
    fused->AddInput(head->inputs()[0]);
    fused->AddOutput(tail->outputs()[0]);
    for (const FusedOperator::Stage& stage : fused->stages()) {
      plan.absorbed.push_back(stage.op);
    }
    plan.fused.push_back(std::move(fused));
  }
  return plan;
}

// -------------------------------------------------------- shard re-hashing

namespace {

/// One open window lifted out of an aggregate snapshot; the accumulator
/// stays opaque bytes, so re-sharding needs no user codec.
struct WindowRecord {
  Timestamp max_stimulus = 0;
  Timestamp max_event_time = 0;
  std::string acc;
};

}  // namespace

Status ReshardAggregateSnapshots(const std::vector<std::string>& old_blobs,
                                 std::size_t new_shards,
                                 std::vector<std::string>* new_blobs) {
  if (new_shards == 0) {
    return Status::InvalidArgument("reshard: new_shards must be > 0");
  }
  // Merge every window into one canonically-ordered map. A (start, key)
  // pair living in two old blobs means the old shards disagreed about key
  // ownership — corruption, not something to paper over.
  std::map<std::pair<Timestamp, std::string>, WindowRecord> merged;
  Timestamp horizon = std::numeric_limits<Timestamp>::min();
  bool any_state = false;
  for (const std::string& blob : old_blobs) {
    if (blob.empty()) continue;  // fresh shard: nothing to merge
    std::string_view in = blob;
    Timestamp blob_horizon = 0;
    std::uint64_t count = 0;
    if (!codec::GetVarint64Signed(&in, &blob_horizon) ||
        !codec::GetVarint64(&in, &count)) {
      return Status::Corruption("reshard: truncated aggregate header");
    }
    any_state = true;
    // Max over shards: re-opening a window some shard already closed and
    // emitted would double-report; the max horizon trades bounded-lateness
    // drops for no duplicates.
    horizon = std::max(horizon, blob_horizon);
    for (std::uint64_t i = 0; i < count; ++i) {
      Timestamp start = 0;
      std::string_view key;
      WindowRecord window;
      std::string_view acc;
      if (!codec::GetVarint64Signed(&in, &start) ||
          !codec::GetLengthPrefixed(&in, &key) ||
          !codec::GetVarint64Signed(&in, &window.max_stimulus) ||
          !codec::GetVarint64Signed(&in, &window.max_event_time) ||
          !codec::GetLengthPrefixed(&in, &acc)) {
        return Status::Corruption("reshard: truncated aggregate window");
      }
      window.acc = std::string(acc);
      const auto [it, inserted] = merged.emplace(
          std::make_pair(start, std::string(key)), std::move(window));
      if (!inserted) {
        return Status::Corruption("reshard: window (" +
                                  std::to_string(start) + ", '" +
                                  std::string(key) +
                                  "') present in two shard snapshots");
      }
    }
    if (!in.empty()) {
      return Status::Corruption("reshard: trailing aggregate bytes");
    }
  }

  new_blobs->assign(new_shards, std::string());
  if (!any_state) return Status::Ok();  // all-fresh in, all-fresh out

  // Re-bucket with the router's hash so every window lands on the shard
  // that will receive its key's future tuples.
  std::hash<std::string> hasher;
  std::vector<std::uint64_t> shard_counts(new_shards, 0);
  for (const auto& [key, window] : merged) {
    ++shard_counts[hasher(key.second) % new_shards];
  }
  for (std::size_t s = 0; s < new_shards; ++s) {
    std::string* out = &(*new_blobs)[s];
    codec::PutVarint64Signed(out, horizon);  // every shard gets the horizon
    codec::PutVarint64(out, shard_counts[s]);
  }
  for (const auto& [key, window] : merged) {
    std::string* out = &(*new_blobs)[hasher(key.second) % new_shards];
    codec::PutVarint64Signed(out, key.first);
    codec::PutLengthPrefixed(out, key.second);
    codec::PutVarint64Signed(out, window.max_stimulus);
    codec::PutVarint64Signed(out, window.max_event_time);
    codec::PutLengthPrefixed(out, window.acc);
  }
  return Status::Ok();
}

Status ReshardJoinSnapshots(const std::vector<std::string>& old_blobs,
                            std::size_t new_shards,
                            std::vector<std::string>* new_blobs) {
  if (new_shards == 0) {
    return Status::InvalidArgument("reshard: new_shards must be > 0");
  }
  struct Entry {
    std::string key;
    Tuple tuple;
  };
  std::vector<Entry> sides[2];
  Timestamp max_time[2] = {std::numeric_limits<Timestamp>::max(),
                           std::numeric_limits<Timestamp>::max()};
  bool any_state = false;
  for (const std::string& blob : old_blobs) {
    if (blob.empty()) continue;
    std::string_view in = blob;
    for (std::size_t side = 0; side < 2; ++side) {
      std::uint64_t count = 0;
      if (!codec::GetVarint64(&in, &count)) {
        return Status::Corruption("reshard: truncated join buffer count");
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        std::string_view key;
        if (!codec::GetLengthPrefixed(&in, &key)) {
          return Status::Corruption("reshard: truncated join key");
        }
        Entry entry;
        entry.key = std::string(key);
        STRATA_RETURN_IF_ERROR(DecodeTupleSnapshot(&in, &entry.tuple));
        sides[side].push_back(std::move(entry));
      }
    }
    Timestamp blob_max[2] = {0, 0};
    if (!codec::GetVarint64Signed(&in, &blob_max[0]) ||
        !codec::GetVarint64Signed(&in, &blob_max[1])) {
      return Status::Corruption("reshard: truncated join watermarks");
    }
    if (!in.empty()) {
      return Status::Corruption("reshard: trailing join bytes");
    }
    // Min over shards: the watermark only drives eviction, and eviction is
    // an optimization — the |τL-τR| <= window predicate still rejects stale
    // pairs — so the conservative bound can never drop a matchable pair.
    max_time[0] = std::min(max_time[0], blob_max[0]);
    max_time[1] = std::min(max_time[1], blob_max[1]);
    any_state = true;
  }

  new_blobs->assign(new_shards, std::string());
  if (!any_state) return Status::Ok();

  // Restore the deque's front-oldest invariant (Evict pops from the front).
  // Stable: a key's entries all lived on one old shard, so ties keep their
  // original relative order and per-key order survives the merge.
  for (auto& side : sides) {
    std::stable_sort(side.begin(), side.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.tuple.event_time < b.tuple.event_time;
                     });
  }

  std::hash<std::string> hasher;
  std::vector<std::string> bodies[2];
  std::vector<std::uint64_t> counts[2];
  for (std::size_t side = 0; side < 2; ++side) {
    bodies[side].assign(new_shards, std::string());
    counts[side].assign(new_shards, 0);
    for (const Entry& entry : sides[side]) {
      const std::size_t s = hasher(entry.key) % new_shards;
      std::string* out = &bodies[side][s];
      codec::PutLengthPrefixed(out, entry.key);
      STRATA_RETURN_IF_ERROR(EncodeTupleSnapshot(entry.tuple, out));
      ++counts[side][s];
    }
  }
  for (std::size_t s = 0; s < new_shards; ++s) {
    std::string* out = &(*new_blobs)[s];
    for (std::size_t side = 0; side < 2; ++side) {
      codec::PutVarint64(out, counts[side][s]);
      out->append(bodies[side][s]);
    }
    codec::PutVarint64Signed(out, max_time[0]);
    codec::PutVarint64Signed(out, max_time[1]);
  }
  return Status::Ok();
}

}  // namespace strata::spe
