// Epoch-barrier checkpointing for continuous queries (Chandy–Lamport /
// Flink-style aligned snapshots).
//
// Protocol: a Checkpointer owned by the Query bumps a pending-epoch counter
// on a timer; sources observe the bump between produce calls, snapshot their
// own state, and inject a barrier marker (Tuple::Barrier) into the data
// plane. The barrier flows through every stream like a data tuple; when it
// drains past an operator the operator flushes its emit buffers (so no
// partial batch straddles an epoch), snapshots its state, reports the blob
// here, and forwards the barrier to all outputs. Multi-input operators
// align: an input that has delivered its barrier is parked (tuples behind
// the barrier held back) until every other live input catches up, so the
// snapshot is a consistent cut. When every registered operator has reported
// for an epoch, the manifest — operator blobs keyed by operator name — is
// persisted to the CheckpointStore in two steps: the epoch blob, then the
// latest-epoch pointer. A crash between the two leaves the previous complete
// epoch as the recovery point (same write-then-commit discipline as the kv
// MANIFEST).
//
// Epochs that cannot complete (an operator is stuck, a snapshot codec is
// missing, the store write failed) are timed out and counted as failures;
// the query keeps running — checkpointing degrades, data processing never
// stops. After `failure_warn_threshold` consecutive failures a sticky
// degraded flag is raised and surfaced through the spe.checkpoint.* metrics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "spe/tuple.hpp"

namespace strata::spe {

// ----------------------------------------------------------- tuple codec

/// Serialize a tuple for an operator state snapshot (Join buffers, window
/// contents). Scalar payloads only: opaque payload values (images) cannot be
/// checkpointed and yield InvalidArgument, which the Checkpointer converts
/// into a failed — not fatal — epoch. Trace context is transient and not
/// preserved.
[[nodiscard]] Status EncodeTupleSnapshot(const Tuple& tuple, std::string* out);

/// Decode one tuple from a snapshot cursor (advances *in).
[[nodiscard]] Status DecodeTupleSnapshot(std::string_view* in, Tuple* out);

// -------------------------------------------------------------- manifest

/// One operator's state blob inside a checkpoint.
struct OperatorSnapshot {
  std::string name;
  std::string blob;
};

/// A complete checkpoint: every registered operator's snapshot for `epoch`.
struct CheckpointManifest {
  std::uint64_t epoch = 0;
  std::vector<OperatorSnapshot> operators;

  /// Appends the CRC-protected wire form to *out.
  void EncodeTo(std::string* out) const;
  [[nodiscard]] static Result<CheckpointManifest> Decode(std::string_view in);
};

// ----------------------------------------------------------------- store

/// Durable home of checkpoint manifests. Implementations must make Commit
/// atomic with respect to crashes: after a crash, LatestEpoch returns either
/// the previously committed epoch or the newly committed one, never a
/// half-written state. strata::core::KvCheckpointStore provides this on top
/// of the kv store's WAL; InMemoryCheckpointStore backs unit tests.
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  /// Persist the manifest blob for `epoch` (not yet recoverable).
  [[nodiscard]] virtual Status Put(std::uint64_t epoch, std::string blob) = 0;
  /// Atomically advance the latest-complete pointer to `epoch`.
  [[nodiscard]] virtual Status Commit(std::uint64_t epoch) = 0;
  /// Latest committed epoch; NotFound when no checkpoint has completed.
  [[nodiscard]] virtual Result<std::uint64_t> LatestEpoch() = 0;
  /// Manifest blob of a committed epoch.
  [[nodiscard]] virtual Result<std::string> Get(std::uint64_t epoch) = 0;
};

class InMemoryCheckpointStore final : public CheckpointStore {
 public:
  [[nodiscard]] Status Put(std::uint64_t epoch, std::string blob) override {
    std::lock_guard lock(mu_);
    staged_[epoch] = std::move(blob);
    return Status::Ok();
  }
  [[nodiscard]] Status Commit(std::uint64_t epoch) override {
    std::lock_guard lock(mu_);
    if (staged_.find(epoch) == staged_.end()) {
      return Status::NotFound("commit of unknown epoch");
    }
    latest_ = epoch;
    return Status::Ok();
  }
  [[nodiscard]] Result<std::uint64_t> LatestEpoch() override {
    std::lock_guard lock(mu_);
    if (latest_ == 0) return Status::NotFound("no checkpoint");
    return latest_;
  }
  [[nodiscard]] Result<std::string> Get(std::uint64_t epoch) override {
    std::lock_guard lock(mu_);
    const auto it = staged_.find(epoch);
    if (it == staged_.end()) return Status::NotFound("unknown epoch");
    return it->second;
  }

 private:
  std::mutex mu_;
  std::map<std::uint64_t, std::string> staged_;
  std::uint64_t latest_ = 0;
};

// ----------------------------------------------------------- coordinator

struct CheckpointerOptions {
  /// Cadence of epoch initiation. The next epoch starts only once the
  /// previous one resolved (completed or failed), so a slow store stretches
  /// the interval instead of stacking epochs.
  std::int64_t interval_ms = 200;
  /// An epoch still incomplete this long after initiation is marked failed
  /// (covers stuck operators and slow-input alignment: the coordinator owns
  /// the timeout so operators never have to guess at alignment deadlines).
  std::int64_t epoch_timeout_ms = 10'000;
  /// Consecutive failures before the sticky degraded flag trips.
  int failure_warn_threshold = 3;
};

class Checkpointer {
 public:
  Checkpointer(CheckpointStore* store, CheckpointerOptions options);
  ~Checkpointer();
  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  // ----- build/recovery time (single-threaded, before Start) -----

  /// Every operator participating in the query must register; an epoch
  /// completes when all registered operators have reported (or finished).
  void RegisterOperator(const std::string& name);

  /// Resume epoch numbering after Query::Recover: the next initiated epoch
  /// is `epoch` + 1.
  void SetBaseEpoch(std::uint64_t epoch);

  /// Load the latest committed manifest (failpoint: checkpoint.restore);
  /// NotFound when the store holds no completed checkpoint.
  [[nodiscard]] Result<CheckpointManifest> LoadLatest();

  // ----- runtime -----

  /// Start the epoch-initiation timer thread.
  void Start();
  /// Stop the timer thread (idempotent).
  void Stop();

  /// Epoch sources should inject next, or 0 when no barrier is pending.
  /// Relaxed atomic read — polled between source produce calls.
  [[nodiscard]] std::uint64_t PendingEpoch() const noexcept {
    return pending_epoch_.load(std::memory_order_acquire);
  }

  /// An operator's snapshot for `epoch`. The final report of an epoch
  /// persists the manifest inline on the reporting operator's thread (one
  /// WAL append — bounded stall).
  void ReportSnapshot(const std::string& name, std::uint64_t epoch,
                      std::string blob);

  /// An operator's snapshot attempt failed (missing codec, opaque payload):
  /// the epoch can never complete, mark it failed now.
  void ReportSnapshotFailure(const std::string& name, std::uint64_t epoch,
                             const Status& reason);

  /// The operator exited (stream drained / early exit): it is implicitly
  /// complete for the in-flight epoch and every future one.
  void OnOperatorFinished(const std::string& name);

  // ----- introspection -----

  struct Stats {
    std::uint64_t epochs_completed = 0;
    std::uint64_t epochs_failed = 0;
    /// Manifest bytes persisted across all completed epochs.
    std::uint64_t bytes_persisted = 0;
    /// Duration of the last completed epoch, initiation -> commit.
    std::int64_t last_duration_us = 0;
    std::uint64_t last_completed_epoch = 0;
    /// Microseconds since the last epoch committed; -1 before the first.
    std::int64_t last_completed_age_us = -1;
    std::uint64_t consecutive_failures = 0;
    /// Sticky: `failure_warn_threshold` consecutive epochs failed.
    bool degraded = false;
  };
  [[nodiscard]] Stats stats() const;

 private:
  void TimerLoop();
  /// Initiate the next epoch (timer thread, lock held).
  void BeginEpoch(std::int64_t now_us);
  /// Mark the in-flight epoch failed (lock held).
  void FailEpoch(const std::string& reason);
  /// All registered operators reported: persist + commit (lock held; the
  /// store write is one WAL append, a bounded stall for concurrent
  /// reporters).
  void CompleteEpoch();
  [[nodiscard]] std::int64_t NowUs() const;

  CheckpointStore* store_;
  const CheckpointerOptions options_;

  std::atomic<std::uint64_t> pending_epoch_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< wakes the timer thread on Stop
  std::vector<std::string> registered_;
  std::map<std::string, bool> finished_;  ///< operators that exited
  std::uint64_t base_epoch_ = 0;          ///< last epoch of a recovered run
  // In-flight epoch state (0 = none in flight).
  std::uint64_t inflight_epoch_ = 0;
  std::int64_t inflight_started_us_ = 0;
  std::map<std::string, std::string> inflight_blobs_;
  bool inflight_failed_ = false;
  std::int64_t last_initiation_us_ = 0;
  // Stats.
  std::uint64_t epochs_completed_ = 0;
  std::uint64_t epochs_failed_ = 0;
  std::uint64_t bytes_persisted_ = 0;
  std::int64_t last_duration_us_ = 0;
  std::uint64_t last_completed_epoch_ = 0;
  std::int64_t last_completed_at_us_ = -1;
  std::uint64_t consecutive_failures_ = 0;
  bool degraded_ = false;
  bool degraded_logged_ = false;

  std::thread timer_;
  bool timer_running_ = false;
  bool stop_ = false;
};

}  // namespace strata::spe
