#include "spe/checkpoint.hpp"

#include <chrono>

#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "common/value.hpp"
#include "fault/failpoint.hpp"
#include "obs/trace.hpp"

namespace strata::spe {

// ----------------------------------------------------------- tuple codec

Status EncodeTupleSnapshot(const Tuple& tuple, std::string* out) {
  codec::PutVarint64Signed(out, tuple.event_time);
  codec::PutVarint64Signed(out, tuple.job);
  codec::PutVarint64Signed(out, tuple.layer);
  codec::PutVarint64Signed(out, tuple.specimen);
  codec::PutVarint64Signed(out, tuple.portion);
  codec::PutVarint64Signed(out, tuple.stimulus);
  // EncodePayload rejects opaque values (images): operators buffering them
  // cannot be checkpointed, and the epoch degrades to failed.
  return EncodePayload(tuple.payload, out);
}

Status DecodeTupleSnapshot(std::string_view* in, Tuple* out) {
  if (!codec::GetVarint64Signed(in, &out->event_time) ||
      !codec::GetVarint64Signed(in, &out->job) ||
      !codec::GetVarint64Signed(in, &out->layer) ||
      !codec::GetVarint64Signed(in, &out->specimen) ||
      !codec::GetVarint64Signed(in, &out->portion) ||
      !codec::GetVarint64Signed(in, &out->stimulus)) {
    return Status::Corruption("DecodeTupleSnapshot: truncated metadata");
  }
  return DecodePayload(in, &out->payload);
}

// -------------------------------------------------------------- manifest

void CheckpointManifest::EncodeTo(std::string* out) const {
  const std::size_t start = out->size();
  codec::PutVarint64(out, epoch);
  codec::PutVarint64(out, operators.size());
  for (const OperatorSnapshot& snapshot : operators) {
    codec::PutLengthPrefixed(out, snapshot.name);
    codec::PutLengthPrefixed(out, snapshot.blob);
  }
  const std::uint32_t crc = Crc32c(std::string_view(*out).substr(start));
  codec::PutFixed32(out, MaskCrc(crc));
}

Result<CheckpointManifest> CheckpointManifest::Decode(std::string_view in) {
  if (in.size() < 4) {
    return Status::Corruption("checkpoint manifest: missing checksum");
  }
  std::string_view trailer = in.substr(in.size() - 4);
  std::uint32_t masked = 0;
  (void)codec::GetFixed32(&trailer, &masked);
  in.remove_suffix(4);
  if (UnmaskCrc(masked) != Crc32c(in)) {
    return Status::Corruption("checkpoint manifest: checksum mismatch");
  }

  CheckpointManifest manifest;
  std::uint64_t count = 0;
  if (!codec::GetVarint64(&in, &manifest.epoch) ||
      !codec::GetVarint64(&in, &count)) {
    return Status::Corruption("checkpoint manifest: truncated header");
  }
  manifest.operators.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string_view name;
    std::string_view blob;
    if (!codec::GetLengthPrefixed(&in, &name) ||
        !codec::GetLengthPrefixed(&in, &blob)) {
      return Status::Corruption("checkpoint manifest: truncated entry");
    }
    manifest.operators.push_back({std::string(name), std::string(blob)});
  }
  if (!in.empty()) {
    return Status::Corruption("checkpoint manifest: trailing bytes");
  }
  return manifest;
}

// ----------------------------------------------------------- coordinator

namespace {
constexpr std::int64_t kMicrosPerMilli = 1000;

/// Failpoint evaluation that returns the injected Status (the macro form
/// returns from the enclosing function, which is what persist wants too, but
/// keeping it explicit reads better across the two-step commit).
Status EvaluateSite(std::string_view site) {
  if (!fault::AnyActive()) return Status::Ok();
  return fault::Evaluate(site);
}
}  // namespace

Checkpointer::Checkpointer(CheckpointStore* store, CheckpointerOptions options)
    : store_(store), options_(options) {
  if (store_ == nullptr) {
    throw std::invalid_argument("Checkpointer: null store");
  }
  if (options_.interval_ms <= 0) {
    throw std::invalid_argument("Checkpointer: interval_ms must be > 0");
  }
}

Checkpointer::~Checkpointer() { Stop(); }

std::int64_t Checkpointer::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Checkpointer::RegisterOperator(const std::string& name) {
  std::lock_guard lock(mu_);
  for (const std::string& existing : registered_) {
    if (existing == name) {
      throw std::logic_error("Checkpointer: duplicate operator name '" + name +
                             "' (checkpointing requires unique names)");
    }
  }
  registered_.push_back(name);
}

void Checkpointer::SetBaseEpoch(std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  base_epoch_ = epoch;
}

Result<CheckpointManifest> Checkpointer::LoadLatest() {
  STRATA_RETURN_IF_ERROR(EvaluateSite("checkpoint.restore"));
  auto latest = store_->LatestEpoch();
  if (!latest.ok()) return latest.status();
  auto blob = store_->Get(*latest);
  if (!blob.ok()) return blob.status();
  auto manifest = CheckpointManifest::Decode(*blob);
  if (!manifest.ok()) return manifest.status();
  if (manifest->epoch != *latest) {
    return Status::Corruption("checkpoint manifest epoch mismatch");
  }
  return manifest;
}

void Checkpointer::Start() {
  std::lock_guard lock(mu_);
  if (timer_running_) return;
  timer_running_ = true;
  stop_ = false;
  last_initiation_us_ = NowUs();
  timer_ = std::thread([this] { TimerLoop(); });
}

void Checkpointer::Stop() {
  {
    std::lock_guard lock(mu_);
    if (!timer_running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  timer_.join();
  std::lock_guard lock(mu_);
  timer_running_ = false;
}

void Checkpointer::TimerLoop() {
  std::unique_lock lock(mu_);
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  while (!stop_) {
    cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) break;
    const std::int64_t now = NowUs();
    if (inflight_epoch_ != 0) {
      if (now - inflight_started_us_ >=
          options_.epoch_timeout_ms * kMicrosPerMilli) {
        FailEpoch("epoch " + std::to_string(inflight_epoch_) +
                  " timed out after " +
                  std::to_string(options_.epoch_timeout_ms) + "ms");
      }
      continue;
    }
    if (now - last_initiation_us_ >= options_.interval_ms * kMicrosPerMilli) {
      BeginEpoch(now);
    }
  }
}

void Checkpointer::BeginEpoch(std::int64_t now_us) {
  inflight_epoch_ = ++base_epoch_;
  inflight_started_us_ = now_us;
  last_initiation_us_ = now_us;
  inflight_blobs_.clear();
  inflight_failed_ = false;
  pending_epoch_.store(inflight_epoch_, std::memory_order_release);

  // Operators that already exited are implicitly complete; with none left
  // running the epoch (an empty manifest) completes immediately.
  bool all_done = true;
  for (const std::string& name : registered_) {
    if (!finished_[name]) {
      all_done = false;
      break;
    }
  }
  if (all_done) CompleteEpoch();
}

void Checkpointer::FailEpoch(const std::string& reason) {
  ++epochs_failed_;
  ++consecutive_failures_;
  LOG_WARN << "checkpoint epoch " << inflight_epoch_ << " failed: " << reason;
  if (consecutive_failures_ >=
          static_cast<std::uint64_t>(options_.failure_warn_threshold) &&
      !degraded_) {
    degraded_ = true;  // sticky until the query is rebuilt
    if (!degraded_logged_) {
      degraded_logged_ = true;
      LOG_ERROR << "checkpointing degraded: " << consecutive_failures_
                << " consecutive epochs failed (last: " << reason
                << "); the query keeps running without recovery points";
    }
  }
  inflight_epoch_ = 0;
  inflight_blobs_.clear();
}

void Checkpointer::CompleteEpoch() {
  CheckpointManifest manifest;
  manifest.epoch = inflight_epoch_;
  manifest.operators.reserve(registered_.size());
  for (const std::string& name : registered_) {
    auto it = inflight_blobs_.find(name);
    // Finished operators flushed their state downstream before exiting; an
    // empty blob restores them as fresh, which is their post-exit state.
    manifest.operators.push_back(
        {name, it != inflight_blobs_.end() ? std::move(it->second)
                                           : std::string()});
  }
  std::string blob;
  manifest.EncodeTo(&blob);
  const std::size_t blob_bytes = blob.size();
  const std::int64_t persist_t0 = NowUs();

  // Two-step commit mirroring the kv MANIFEST discipline: the epoch blob
  // first, the latest pointer second. A crash between the two (the
  // checkpoint.rename failpoint emulates it) leaves the previous epoch as
  // the recovery point.
  Status persisted = EvaluateSite("checkpoint.write");
  if (persisted.ok()) persisted = store_->Put(manifest.epoch, std::move(blob));
  if (persisted.ok()) persisted = EvaluateSite("checkpoint.rename");
  if (persisted.ok()) persisted = store_->Commit(manifest.epoch);
  if (!persisted.ok()) {
    FailEpoch("persist: " + persisted.ToString());
    return;
  }

  const std::int64_t now = NowUs();
  ++epochs_completed_;
  bytes_persisted_ += blob_bytes;
  last_duration_us_ = now - inflight_started_us_;
  last_completed_epoch_ = manifest.epoch;
  last_completed_at_us_ = now;
  consecutive_failures_ = 0;
  inflight_epoch_ = 0;
  inflight_blobs_.clear();

  if (obs::TracingEnabled()) {
    obs::Tracer& tracer = obs::Tracer::Instance();
    if (TraceContext ctx = tracer.MaybeStartTrace(); ctx.sampled()) {
      obs::Span span;
      span.trace_id = ctx.trace_id;
      span.span_id = tracer.NewSpanId();
      span.start_us = persist_t0;
      span.dur_us = now - persist_t0;
      span.batch = manifest.operators.size();
      span.SetName("checkpoint");
      span.SetCategory("spe.checkpoint");
      tracer.Record(span);
    }
  }
}

void Checkpointer::ReportSnapshot(const std::string& name, std::uint64_t epoch,
                                  std::string blob) {
  std::lock_guard lock(mu_);
  // Stale reports (for a failed or superseded epoch) are dropped: the
  // coordinator's timeout already accounted for them.
  if (epoch != inflight_epoch_ || inflight_failed_) return;
  inflight_blobs_[name] = std::move(blob);
  for (const std::string& registered : registered_) {
    if (inflight_blobs_.find(registered) == inflight_blobs_.end() &&
        !finished_[registered]) {
      return;  // still waiting on someone
    }
  }
  CompleteEpoch();
}

void Checkpointer::ReportSnapshotFailure(const std::string& name,
                                         std::uint64_t epoch,
                                         const Status& reason) {
  std::lock_guard lock(mu_);
  if (epoch != inflight_epoch_ || inflight_failed_) return;
  FailEpoch("operator '" + name + "': " + reason.ToString());
}

void Checkpointer::OnOperatorFinished(const std::string& name) {
  std::lock_guard lock(mu_);
  finished_[name] = true;
  if (inflight_epoch_ == 0 || inflight_failed_) return;
  for (const std::string& registered : registered_) {
    if (inflight_blobs_.find(registered) == inflight_blobs_.end() &&
        !finished_[registered]) {
      return;
    }
  }
  CompleteEpoch();
}

Checkpointer::Stats Checkpointer::stats() const {
  std::lock_guard lock(mu_);
  Stats stats;
  stats.epochs_completed = epochs_completed_;
  stats.epochs_failed = epochs_failed_;
  stats.bytes_persisted = bytes_persisted_;
  stats.last_duration_us = last_duration_us_;
  stats.last_completed_epoch = last_completed_epoch_;
  stats.last_completed_age_us =
      last_completed_at_us_ < 0 ? -1 : NowUs() - last_completed_at_us_;
  stats.consecutive_failures = consecutive_failures_;
  stats.degraded = degraded_;
  return stats;
}

}  // namespace strata::spe
