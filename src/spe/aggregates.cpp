#include "spe/aggregates.hpp"

#include "common/codec.hpp"

namespace strata::spe {

namespace internal {
namespace {

Status EncodeNumericAcc(const std::any& any_acc, std::string* out) {
  const auto& acc = std::any_cast<const NumericAccumulator&>(any_acc);
  codec::PutDouble(out, acc.sum);
  codec::PutDouble(out, acc.min);
  codec::PutDouble(out, acc.max);
  codec::PutVarint64Signed(out, acc.count);
  return Status::Ok();
}

Result<std::any> DecodeNumericAcc(std::string_view in) {
  NumericAccumulator acc;
  if (!codec::GetDouble(&in, &acc.sum) || !codec::GetDouble(&in, &acc.min) ||
      !codec::GetDouble(&in, &acc.max) ||
      !codec::GetVarint64Signed(&in, &acc.count) || !in.empty()) {
    return Status::Corruption("numeric accumulator: bad snapshot");
  }
  return std::any(acc);
}

}  // namespace

AggregateSpec NumericAggregate(
    WindowSpec window, KeyFn key, std::string attribute,
    std::string output_key,
    std::function<double(const NumericAccumulator&)> finish) {
  AggregateSpec spec;
  spec.window = window;
  spec.key = std::move(key);
  spec.init = [] { return std::any(NumericAccumulator{}); };
  spec.add = [attribute = std::move(attribute)](std::any& any_acc,
                                                const Tuple& t) {
    const Value* value = t.payload.Find(attribute);
    if (value == nullptr ||
        (value->kind() != ValueKind::kDouble &&
         value->kind() != ValueKind::kInt)) {
      return;  // skip tuples without the attribute
    }
    auto& acc = std::any_cast<NumericAccumulator&>(any_acc);
    const double v = value->AsDouble();
    acc.sum += v;
    acc.min = v < acc.min ? v : acc.min;
    acc.max = v > acc.max ? v : acc.max;
    ++acc.count;
  };
  spec.result = [output_key = std::move(output_key),
                 finish = std::move(finish)](std::any& any_acc,
                                             Timestamp window_start,
                                             Timestamp window_end) {
    const auto& acc = std::any_cast<const NumericAccumulator&>(any_acc);
    Tuple out;
    out.payload.Set(output_key, acc.count > 0 ? finish(acc) : 0.0);
    out.payload.Set("count", acc.count);
    out.payload.Set("window_start", window_start);
    out.payload.Set("window_end", window_end);
    return std::vector<Tuple>{out};
  };
  spec.encode_acc = EncodeNumericAcc;
  spec.decode_acc = DecodeNumericAcc;
  return spec;
}

}  // namespace internal

AggregateSpec SumAggregate(WindowSpec window, std::string attribute,
                           std::string output_key, KeyFn key) {
  return internal::NumericAggregate(
      window, std::move(key), std::move(attribute), std::move(output_key),
      [](const internal::NumericAccumulator& acc) { return acc.sum; });
}

AggregateSpec MinAggregate(WindowSpec window, std::string attribute,
                           std::string output_key, KeyFn key) {
  return internal::NumericAggregate(
      window, std::move(key), std::move(attribute), std::move(output_key),
      [](const internal::NumericAccumulator& acc) { return acc.min; });
}

AggregateSpec MaxAggregate(WindowSpec window, std::string attribute,
                           std::string output_key, KeyFn key) {
  return internal::NumericAggregate(
      window, std::move(key), std::move(attribute), std::move(output_key),
      [](const internal::NumericAccumulator& acc) { return acc.max; });
}

AggregateSpec MeanAggregate(WindowSpec window, std::string attribute,
                            std::string output_key, KeyFn key) {
  return internal::NumericAggregate(
      window, std::move(key), std::move(attribute), std::move(output_key),
      [](const internal::NumericAccumulator& acc) {
        return acc.sum / static_cast<double>(acc.count);
      });
}

AggregateSpec CountAggregate(WindowSpec window, std::string output_key,
                             KeyFn key) {
  AggregateSpec spec;
  spec.window = window;
  spec.key = std::move(key);
  spec.init = [] { return std::any(std::int64_t{0}); };
  spec.add = [](std::any& acc, const Tuple&) {
    ++std::any_cast<std::int64_t&>(acc);
  };
  spec.result = [output_key = std::move(output_key)](std::any& acc,
                                                     Timestamp window_start,
                                                     Timestamp window_end) {
    Tuple out;
    out.payload.Set(output_key, std::any_cast<std::int64_t>(acc));
    out.payload.Set("window_start", window_start);
    out.payload.Set("window_end", window_end);
    return std::vector<Tuple>{out};
  };
  spec.encode_acc = [](const std::any& acc, std::string* out) {
    codec::PutVarint64Signed(out, std::any_cast<std::int64_t>(acc));
    return Status::Ok();
  };
  spec.decode_acc = [](std::string_view in) -> Result<std::any> {
    std::int64_t count = 0;
    if (!codec::GetVarint64Signed(&in, &count) || !in.empty()) {
      return Status::Corruption("count accumulator: bad snapshot");
    }
    return std::any(count);
  };
  return spec;
}

}  // namespace strata::spe
