#include "spe/aggregates.hpp"

namespace strata::spe {

namespace internal {

AggregateSpec NumericAggregate(
    WindowSpec window, KeyFn key, std::string attribute,
    std::string output_key,
    std::function<double(const NumericAccumulator&)> finish) {
  AggregateSpec spec;
  spec.window = window;
  spec.key = std::move(key);
  spec.init = [] { return std::any(NumericAccumulator{}); };
  spec.add = [attribute = std::move(attribute)](std::any& any_acc,
                                                const Tuple& t) {
    const Value* value = t.payload.Find(attribute);
    if (value == nullptr ||
        (value->kind() != ValueKind::kDouble &&
         value->kind() != ValueKind::kInt)) {
      return;  // skip tuples without the attribute
    }
    auto& acc = std::any_cast<NumericAccumulator&>(any_acc);
    const double v = value->AsDouble();
    acc.sum += v;
    acc.min = v < acc.min ? v : acc.min;
    acc.max = v > acc.max ? v : acc.max;
    ++acc.count;
  };
  spec.result = [output_key = std::move(output_key),
                 finish = std::move(finish)](std::any& any_acc,
                                             Timestamp window_start,
                                             Timestamp window_end) {
    const auto& acc = std::any_cast<const NumericAccumulator&>(any_acc);
    Tuple out;
    out.payload.Set(output_key, acc.count > 0 ? finish(acc) : 0.0);
    out.payload.Set("count", acc.count);
    out.payload.Set("window_start", window_start);
    out.payload.Set("window_end", window_end);
    return std::vector<Tuple>{out};
  };
  return spec;
}

}  // namespace internal

AggregateSpec SumAggregate(WindowSpec window, std::string attribute,
                           std::string output_key, KeyFn key) {
  return internal::NumericAggregate(
      window, std::move(key), std::move(attribute), std::move(output_key),
      [](const internal::NumericAccumulator& acc) { return acc.sum; });
}

AggregateSpec MinAggregate(WindowSpec window, std::string attribute,
                           std::string output_key, KeyFn key) {
  return internal::NumericAggregate(
      window, std::move(key), std::move(attribute), std::move(output_key),
      [](const internal::NumericAccumulator& acc) { return acc.min; });
}

AggregateSpec MaxAggregate(WindowSpec window, std::string attribute,
                           std::string output_key, KeyFn key) {
  return internal::NumericAggregate(
      window, std::move(key), std::move(attribute), std::move(output_key),
      [](const internal::NumericAccumulator& acc) { return acc.max; });
}

AggregateSpec MeanAggregate(WindowSpec window, std::string attribute,
                            std::string output_key, KeyFn key) {
  return internal::NumericAggregate(
      window, std::move(key), std::move(attribute), std::move(output_key),
      [](const internal::NumericAccumulator& acc) {
        return acc.sum / static_cast<double>(acc.count);
      });
}

AggregateSpec CountAggregate(WindowSpec window, std::string output_key,
                             KeyFn key) {
  AggregateSpec spec;
  spec.window = window;
  spec.key = std::move(key);
  spec.init = [] { return std::any(std::int64_t{0}); };
  spec.add = [](std::any& acc, const Tuple&) {
    ++std::any_cast<std::int64_t&>(acc);
  };
  spec.result = [output_key = std::move(output_key)](std::any& acc,
                                                     Timestamp window_start,
                                                     Timestamp window_end) {
    Tuple out;
    out.payload.Set(output_key, std::any_cast<std::int64_t>(acc));
    out.payload.Set("window_start", window_start);
    out.payload.Set("window_end", window_end);
    return std::vector<Tuple>{out};
  };
  return spec;
}

}  // namespace strata::spe
