// Source helpers for tests and benchmarks.
//
// VectorSource emits a prepared tuple list (optionally in a loop).
// RateControlledSource paces an underlying generator at a fixed offered load
// (tuples/second) using the query's clock — the workhorse of the Figure 7
// throughput/latency sweep, where OT images are "replayed as fast as
// possible" at increasing rates.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "spe/functions.hpp"

namespace strata::spe {

/// SourceFn emitting the given tuples once, in order.
inline SourceFn VectorSource(std::vector<Tuple> tuples) {
  auto state = std::make_shared<std::pair<std::vector<Tuple>, std::size_t>>(
      std::move(tuples), 0);
  return [state]() -> std::optional<Tuple> {
    if (state->second >= state->first.size()) return std::nullopt;
    return state->first[state->second++];
  };
}

/// BatchSourceFn emitting the given tuples once, in chunks of `chunk` —
/// each chunk crosses the data plane as one batch (for replay benchmarks
/// that model pre-batched ingest).
inline BatchSourceFn VectorBatchSource(std::vector<Tuple> tuples,
                                       std::size_t chunk = 64) {
  if (chunk == 0) {
    throw std::invalid_argument("VectorBatchSource: chunk must be > 0");
  }
  auto state = std::make_shared<std::pair<std::vector<Tuple>, std::size_t>>(
      std::move(tuples), 0);
  return [state, chunk]() -> std::optional<TupleBatch> {
    auto& [tuples_ref, next] = *state;
    if (next >= tuples_ref.size()) return std::nullopt;
    const std::size_t n = std::min(chunk, tuples_ref.size() - next);
    TupleBatch batch(std::make_move_iterator(tuples_ref.begin() + next),
                     std::make_move_iterator(tuples_ref.begin() + next + n));
    next += n;
    return batch;
  };
}

/// Wraps a generator so that tuples are released at `rate_per_second`. The
/// generator's own cost counts against the schedule (closed-loop pacing, so
/// offered load is accurate as long as generation is faster than the rate).
/// If `max_tuples` > 0 the source ends after that many emissions.
inline SourceFn RateControlledSource(SourceFn generator, double rate_per_second,
                                     const Clock* clock,
                                     std::uint64_t max_tuples = 0) {
  if (rate_per_second <= 0) {
    throw std::invalid_argument("RateControlledSource: rate must be > 0");
  }
  struct State {
    SourceFn generator;
    const Clock* clock;
    Timestamp gap_us;
    Timestamp next_release = 0;
    std::uint64_t emitted = 0;
    std::uint64_t max_tuples;
  };
  auto state = std::make_shared<State>(
      State{std::move(generator), clock,
            static_cast<Timestamp>(1e6 / rate_per_second), 0, 0, max_tuples});
  return [state]() -> std::optional<Tuple> {
    if (state->max_tuples > 0 && state->emitted >= state->max_tuples) {
      return std::nullopt;
    }
    auto tuple = state->generator();
    if (!tuple.has_value()) return std::nullopt;

    const Timestamp now = state->clock->Now();
    if (state->next_release == 0) state->next_release = now;
    if (now < state->next_release) {
      state->clock->SleepUntil(state->next_release);
    }
    // Schedule relative to the previous slot, not to now: short stalls are
    // caught up, preserving the offered rate (open-loop within bursts).
    state->next_release += state->gap_us;
    ++state->emitted;
    tuple->stimulus = state->clock->Now();
    return tuple;
  };
}

}  // namespace strata::spe
