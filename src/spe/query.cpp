#include "spe/query.hpp"

#include <map>
#include <string_view>

#include "common/logging.hpp"
#include "spe/plan_rewrite.hpp"

namespace strata::spe {

Query::Query(QueryOptions options) : options_(options) {
  if (options_.queue_capacity == 0) {
    throw std::invalid_argument("Query: queue_capacity must be > 0");
  }
}

Query::~Query() {
  BindMetrics(nullptr);
  if (started_ && !joined_) {
    Stop();
    Join();
  }
}

StreamPtr Query::NewStream(const std::string& name) {
  auto stream = std::make_shared<Stream>(name, options_.queue_capacity);
  std::lock_guard lock(build_mu_);
  streams_.push_back(stream);
  return stream;
}

void Query::Consume(const StreamPtr& stream) {
  if (!stream) throw std::invalid_argument("Query: null input stream");
  if (!consumed_.insert(stream.get()).second) {
    throw std::logic_error("Query: stream '" + stream->name() +
                           "' already has a consumer (use AddSplit)");
  }
}

template <typename Op, typename... Args>
Op* Query::NewOperator(Args&&... args) {
  if (started_) throw std::logic_error("Query: cannot add operators after Start");
  auto op = std::make_unique<Op>(std::forward<Args>(args)...);
  Op* raw = op.get();
  std::lock_guard lock(build_mu_);
  operators_.push_back(std::move(op));
  return raw;
}

StreamPtr Query::AddSource(const std::string& name, SourceFn fn) {
  auto* op = NewOperator<SourceOperator>(name, options_.clock, std::move(fn));
  StreamPtr out = NewStream(name + ".out");
  op->AddOutput(out);
  return out;
}

StreamPtr Query::AddBatchSource(const std::string& name, BatchSourceFn fn) {
  auto* op = NewOperator<SourceOperator>(name, options_.clock, std::move(fn));
  StreamPtr out = NewStream(name + ".out");
  op->AddOutput(out);
  return out;
}

StreamPtr Query::AddFlatMap(const std::string& name, StreamPtr in,
                            FlatMapFn fn, int parallelism, KeyFn shard_key) {
  if (parallelism < 1) {
    throw std::invalid_argument("Query: parallelism must be >= 1");
  }
  Consume(in);
  if (parallelism == 1) {
    auto* op =
        NewOperator<FlatMapOperator>(name, options_.clock, std::move(fn));
    op->AddInput(std::move(in));
    StreamPtr out = NewStream(name + ".out");
    op->AddOutput(out);
    return out;
  }

  if (!shard_key) {
    throw std::invalid_argument(
        "Query: parallel FlatMap requires a shard_key");
  }
  auto* router = NewOperator<RouterOperator>(name + ".router", options_.clock,
                                             std::move(shard_key));
  router->AddInput(std::move(in));
  auto* merger = NewOperator<UnionOperator>(name + ".union", options_.clock);
  for (int i = 0; i < parallelism; ++i) {
    StreamPtr shard_in = NewStream(name + ".shard" + std::to_string(i));
    router->AddOutput(shard_in);
    auto* worker = NewOperator<FlatMapOperator>(
        name + "[" + std::to_string(i) + "]", options_.clock, fn);
    worker->AddInput(shard_in);
    consumed_.insert(shard_in.get());
    StreamPtr shard_out = NewStream(name + ".shard" + std::to_string(i) + ".out");
    worker->AddOutput(shard_out);
    merger->AddInput(shard_out);
    consumed_.insert(shard_out.get());
  }
  StreamPtr out = NewStream(name + ".out");
  merger->AddOutput(out);
  return out;
}

StreamPtr Query::AddFilter(const std::string& name, StreamPtr in,
                           FilterFn fn) {
  Consume(in);
  auto* op = NewOperator<FilterOperator>(name, options_.clock, std::move(fn));
  op->AddInput(std::move(in));
  StreamPtr out = NewStream(name + ".out");
  op->AddOutput(out);
  return out;
}

StreamPtr Query::AddAggregate(const std::string& name, StreamPtr in,
                              AggregateSpec spec, int shards) {
  if (shards < 1) throw std::invalid_argument("Query: shards must be >= 1");
  Consume(in);
  {
    std::lock_guard lock(build_mu_);
    shard_groups_.push_back({name, /*is_join=*/false, shards});
  }
  if (shards == 1) {
    auto* op =
        NewOperator<AggregateOperator>(name, options_.clock, std::move(spec));
    op->AddInput(std::move(in));
    StreamPtr out = NewStream(name + ".out");
    op->AddOutput(out);
    return out;
  }

  if (!spec.key) {
    throw std::invalid_argument(
        "Query: sharded Aggregate requires a group-by key");
  }
  auto* router = NewOperator<RouterOperator>(name + ".router", options_.clock,
                                             spec.key);
  router->AddInput(std::move(in));
  auto* merger = NewOperator<UnionOperator>(name + ".union", options_.clock);
  for (int i = 0; i < shards; ++i) {
    StreamPtr shard_in = NewStream(name + ".shard" + std::to_string(i));
    router->AddOutput(shard_in);
    auto* worker = NewOperator<AggregateOperator>(
        name + "[" + std::to_string(i) + "]", options_.clock, spec);
    worker->AddInput(shard_in);
    consumed_.insert(shard_in.get());
    StreamPtr shard_out =
        NewStream(name + ".shard" + std::to_string(i) + ".out");
    worker->AddOutput(shard_out);
    merger->AddInput(shard_out);
    consumed_.insert(shard_out.get());
  }
  StreamPtr out = NewStream(name + ".out");
  merger->AddOutput(out);
  return out;
}

StreamPtr Query::AddJoin(const std::string& name, StreamPtr left,
                         StreamPtr right, JoinSpec spec, int shards) {
  if (shards < 1) throw std::invalid_argument("Query: shards must be >= 1");
  Consume(left);
  Consume(right);
  {
    std::lock_guard lock(build_mu_);
    shard_groups_.push_back({name, /*is_join=*/true, shards});
  }
  if (shards == 1) {
    auto* op = NewOperator<JoinOperator>(name, options_.clock, std::move(spec));
    op->AddInput(std::move(left));
    op->AddInput(std::move(right));
    StreamPtr out = NewStream(name + ".out");
    op->AddOutput(out);
    return out;
  }

  if (!spec.key_left || !spec.key_right) {
    throw std::invalid_argument(
        "Query: sharded Join requires key_left and key_right");
  }
  // Each side gets its own router keyed by its side's group-by key, so a
  // matching pair (which must agree on key) lands on the same shard.
  auto* left_router = NewOperator<RouterOperator>(name + ".router.left",
                                                  options_.clock,
                                                  spec.key_left);
  left_router->AddInput(std::move(left));
  auto* right_router = NewOperator<RouterOperator>(name + ".router.right",
                                                   options_.clock,
                                                   spec.key_right);
  right_router->AddInput(std::move(right));
  auto* merger = NewOperator<UnionOperator>(name + ".union", options_.clock);
  for (int i = 0; i < shards; ++i) {
    StreamPtr left_in = NewStream(name + ".left" + std::to_string(i));
    left_router->AddOutput(left_in);
    StreamPtr right_in = NewStream(name + ".right" + std::to_string(i));
    right_router->AddOutput(right_in);
    auto* worker = NewOperator<JoinOperator>(
        name + "[" + std::to_string(i) + "]", options_.clock, spec);
    worker->AddInput(left_in);  // input order is the [L, R] side order
    worker->AddInput(right_in);
    consumed_.insert(left_in.get());
    consumed_.insert(right_in.get());
    StreamPtr shard_out =
        NewStream(name + ".shard" + std::to_string(i) + ".out");
    worker->AddOutput(shard_out);
    merger->AddInput(shard_out);
    consumed_.insert(shard_out.get());
  }
  StreamPtr out = NewStream(name + ".out");
  merger->AddOutput(out);
  return out;
}

StreamPtr Query::AddUnion(const std::string& name,
                          std::vector<StreamPtr> ins) {
  if (ins.empty()) throw std::invalid_argument("Query: union of nothing");
  auto* op = NewOperator<UnionOperator>(name, options_.clock);
  for (StreamPtr& in : ins) {
    Consume(in);
    op->AddInput(std::move(in));
  }
  StreamPtr out = NewStream(name + ".out");
  op->AddOutput(out);
  return out;
}

std::vector<StreamPtr> Query::AddSplit(const std::string& name, StreamPtr in,
                                       int n) {
  if (n < 1) throw std::invalid_argument("Query: split into < 1");
  Consume(in);
  // A FlatMap that copies each tuple to all outputs.
  auto* op = NewOperator<FlatMapOperator>(
      name, options_.clock,
      [](const Tuple& t) { return std::vector<Tuple>{t}; });
  op->AddInput(std::move(in));
  std::vector<StreamPtr> outs;
  outs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    StreamPtr out = NewStream(name + ".out" + std::to_string(i));
    op->AddOutput(out);
    outs.push_back(out);
  }
  return outs;
}

SinkOperator* Query::AddSink(const std::string& name, StreamPtr in,
                             SinkFn fn) {
  Consume(in);
  auto* op = NewOperator<SinkOperator>(name, options_.clock, std::move(fn));
  op->AddInput(std::move(in));
  return op;
}

void Query::EnableCheckpointing(CheckpointStore* store,
                                CheckpointerOptions options) {
  if (started_) {
    throw std::logic_error("Query: EnableCheckpointing after Start");
  }
  checkpointer_ = std::make_unique<Checkpointer>(store, options);
}

Status Query::Recover() {
  if (started_) throw std::logic_error("Query: Recover after Start");
  if (!checkpointer_) {
    throw std::logic_error("Query: Recover without EnableCheckpointing");
  }
  auto manifest = checkpointer_->LoadLatest();
  if (!manifest.ok()) {
    if (manifest.status().IsNotFound()) return Status::Ok();  // fresh start
    return manifest.status();
  }
  std::lock_guard lock(build_mu_);
  // Keyed-parallel groups first: a manifest written under a different shard
  // count is re-hashed onto this plan's shape, and the blob names it used
  // are excluded from the plain by-name restore below.
  std::unordered_set<std::string> resharded;
  for (const ShardGroup& group : shard_groups_) {
    STRATA_RETURN_IF_ERROR(RestoreShardGroup(group, *manifest, &resharded));
  }
  for (const OperatorSnapshot& snapshot : manifest->operators) {
    if (resharded.find(snapshot.name) != resharded.end()) continue;
    Operator* op = nullptr;
    for (const auto& candidate : operators_) {
      if (candidate->name() == snapshot.name) {
        op = candidate.get();
        break;
      }
    }
    if (op == nullptr) {
      LOG_WARN << "checkpoint epoch " << manifest->epoch
               << ": no operator named '" << snapshot.name
               << "' in the rebuilt query; its state is dropped";
      continue;
    }
    STRATA_RETURN_IF_ERROR(op->RestoreState(snapshot.blob));
  }
  checkpointer_->SetBaseEpoch(manifest->epoch);
  recovered_epoch_ = manifest->epoch;
  LOG_INFO << "query recovered from checkpoint epoch " << manifest->epoch;
  return Status::Ok();
}

namespace {
/// True when `name` belongs to shard group `base`: exactly `base`, or
/// `base[i]` for a numeric i.
bool InShardGroup(const std::string& name, const std::string& base) {
  if (name == base) return true;
  if (name.size() < base.size() + 3 ||
      name.compare(0, base.size(), base) != 0 ||
      name[base.size()] != '[' || name.back() != ']') {
    return false;
  }
  for (std::size_t i = base.size() + 1; i + 1 < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}
}  // namespace

Status Query::RestoreShardGroup(const ShardGroup& group,
                                const CheckpointManifest& manifest,
                                std::unordered_set<std::string>* consumed) {
  std::vector<const OperatorSnapshot*> found;
  for (const OperatorSnapshot& snapshot : manifest.operators) {
    if (InShardGroup(snapshot.name, group.base)) found.push_back(&snapshot);
  }
  if (found.empty()) return Status::Ok();  // no state for this group

  // Shape match: every blob names an instance of the current plan, one blob
  // per instance. The plain by-name loop handles that exactly; the re-hash
  // path is only for mismatched shard counts.
  std::unordered_set<std::string> expected;
  if (group.shards == 1) {
    expected.insert(group.base);
  } else {
    for (int i = 0; i < group.shards; ++i) {
      expected.insert(group.base + "[" + std::to_string(i) + "]");
    }
  }
  if (found.size() == expected.size()) {
    bool exact = true;
    for (const OperatorSnapshot* snapshot : found) {
      if (expected.find(snapshot->name) == expected.end()) {
        exact = false;
        break;
      }
    }
    if (exact) return Status::Ok();
  }

  std::vector<std::string> old_blobs;
  old_blobs.reserve(found.size());
  for (const OperatorSnapshot* snapshot : found) {
    old_blobs.push_back(snapshot->blob);
    consumed->insert(snapshot->name);
  }
  std::vector<std::string> new_blobs;
  const Status resharded =
      group.is_join
          ? ReshardJoinSnapshots(old_blobs, static_cast<std::size_t>(group.shards),
                                 &new_blobs)
          : ReshardAggregateSnapshots(
                old_blobs, static_cast<std::size_t>(group.shards), &new_blobs);
  if (!resharded.ok()) {
    return Status(resharded.code(),
                  "shard group '" + group.base + "': " + resharded.message());
  }
  for (int i = 0; i < group.shards; ++i) {
    const std::string name =
        group.shards == 1 ? group.base
                          : group.base + "[" + std::to_string(i) + "]";
    Operator* op = nullptr;
    for (const auto& candidate : operators_) {
      if (candidate->name() == name) {
        op = candidate.get();
        break;
      }
    }
    if (op == nullptr) {
      return Status::InvalidArgument("shard group '" + group.base +
                                     "': missing instance '" + name + "'");
    }
    STRATA_RETURN_IF_ERROR(op->RestoreState(new_blobs[static_cast<std::size_t>(i)]));
  }
  LOG_INFO << "shard group '" << group.base << "': re-hashed " << found.size()
           << " snapshot(s) onto " << group.shards << " shard(s)";
  return Status::Ok();
}

Operator* Query::FindOperator(const std::string& name) {
  std::lock_guard lock(build_mu_);
  for (const auto& op : operators_) {
    if (op->name() == name) return op.get();
  }
  return nullptr;
}

void Query::Start() {
  if (started_) throw std::logic_error("Query: already started");
  started_ = true;
  const BatchPolicy policy{options_.batch_size, options_.batch_linger_us};
  for (auto& op : operators_) op->ConfigureBatching(policy);
  if (checkpointer_) {
    // Registration stays in terms of logical operators: a fused worker
    // reports one snapshot per absorbed constituent under its own name.
    for (auto& op : operators_) {
      checkpointer_->RegisterOperator(op->name());  // throws on duplicates
      op->SetCheckpointer(checkpointer_.get());
    }
  }
  // Plan rewrite: collapse stateless chains into fused workers. Absorbed
  // operators keep their place in operators_ (stats, checkpoint names,
  // ToDot) but never get a thread; the fused worker runs their functions.
  std::unordered_set<const Operator*> absorbed;
  if (options_.enable_fusion) {
    FusionPlan plan = FuseStatelessChains(operators_, options_.clock);
    absorbed.insert(plan.absorbed.begin(), plan.absorbed.end());
    fused_ = std::move(plan.fused);
    for (auto& op : fused_) {
      op->ConfigureBatching(policy);
      if (checkpointer_) op->SetCheckpointer(checkpointer_.get());
    }
  }
  if (options_.enable_spsc) EnableSpscFastPaths();
  threads_.reserve(operators_.size() + fused_.size());
  for (auto& op : operators_) {
    if (absorbed.find(op.get()) != absorbed.end()) continue;
    threads_.emplace_back([raw = op.get()] { raw->Run(); });
  }
  for (auto& op : fused_) {
    threads_.emplace_back([raw = op.get()] { raw->Run(); });
  }
  if (checkpointer_) checkpointer_->Start();
}

void Query::EnableSpscFastPaths() {
  // A stream is SPSC-eligible when exactly one registered operator produces
  // into it and exactly one consumes from it, and neither endpoint is
  // router/union plumbing (those stay on the MPMC queue). Streams pushed or
  // popped from outside the query have an unregistered endpoint and never
  // qualify. Runs single-threaded before operator threads spawn.
  std::map<const Stream*, std::pair<int, int>> endpoint_count;  // {prod, cons}
  std::map<const Stream*, bool> plumbing;
  for (const auto& op : operators_) {
    const std::string_view kind = op->kind();
    const bool is_plumbing = kind == "router" || kind == "union";
    for (const StreamPtr& out : op->outputs()) {
      ++endpoint_count[out.get()].first;
      if (is_plumbing) plumbing[out.get()] = true;
    }
    for (const StreamPtr& in : op->inputs()) {
      ++endpoint_count[in.get()].second;
      if (is_plumbing) plumbing[in.get()] = true;
    }
  }
  std::lock_guard lock(build_mu_);
  for (const StreamPtr& stream : streams_) {
    const auto it = endpoint_count.find(stream.get());
    if (it == endpoint_count.end()) continue;  // never wired up
    if (it->second.first == 1 && it->second.second == 1 &&
        !plumbing[stream.get()]) {
      (void)stream->TryEnableSpsc();
    }
  }
}

void Query::Stop() {
  for (auto& op : operators_) op->RequestStop();
  for (auto& op : fused_) op->RequestStop();
}

void Query::Join() {
  if (joined_) return;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (checkpointer_) checkpointer_->Stop();
  joined_ = true;
}

void Query::Run() {
  Start();
  Join();
}

std::string Query::ToDot() const {
  std::string dot = "digraph query {\n  rankdir=LR;\n  node [shape=box];\n";
  // Stream -> producer index for edge construction.
  std::map<const Stream*, std::size_t> producer_of;
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    for (const StreamPtr& out : operators_[i]->outputs()) {
      producer_of[out.get()] = i;
    }
  }
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    dot += "  op" + std::to_string(i) + " [label=\"" +
           operators_[i]->name() + "\"];\n";
  }
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    for (const StreamPtr& in : operators_[i]->inputs()) {
      const auto it = producer_of.find(in.get());
      if (it == producer_of.end()) continue;  // external stream
      dot += "  op" + std::to_string(it->second) + " -> op" +
             std::to_string(i) + " [label=\"" + in->name() + "\"];\n";
    }
  }
  dot += "}\n";
  return dot;
}

std::vector<OperatorStats> Query::Stats() const {
  std::lock_guard lock(build_mu_);
  std::vector<OperatorStats> stats;
  stats.reserve(operators_.size());
  for (const auto& op : operators_) stats.push_back(op->stats());
  return stats;
}

void Query::BindMetrics(obs::MetricsRegistry* registry) {
  if (metrics_ != nullptr) metrics_->Unregister(metrics_callback_);
  metrics_ = registry;
  if (registry == nullptr) return;
  metrics_callback_ = registry->RegisterCallback([this](
                                                     obs::MetricsSnapshot* snap) {
    std::lock_guard lock(build_mu_);
    for (const auto& op : operators_) {
      const OperatorStats s = op->stats();
      const obs::Labels labels{{"op", s.name}, {"kind", s.kind}};
      snap->AddCounter("spe.operator.tuples_in", labels, s.tuples_in);
      snap->AddCounter("spe.operator.tuples_out", labels, s.tuples_out);
      snap->AddCounter("spe.operator.late_drops", labels, s.late_drops);
      snap->AddCounter("spe.operator.user_errors", labels, s.user_errors);
      snap->AddCounter("spe.operator.discarded", labels, s.discarded);
    }
    for (const StreamPtr& stream : streams_) {
      const obs::Labels labels{{"stream", stream->name()}};
      snap->AddGauge("spe.stream.depth", labels,
                     static_cast<std::int64_t>(stream->depth()));
      snap->AddGauge("spe.stream.capacity", labels,
                     static_cast<std::int64_t>(stream->capacity()));
      snap->AddCounter("spe.stream.pushed", labels, stream->pushed());
      snap->AddCounter("spe.stream.popped", labels, stream->popped());
      snap->AddCounter("spe.stream.blocked_us", labels, stream->blocked_us());
      snap->AddCounter("spe.stream.discarded", labels, stream->discarded());
      const Histogram batch_sizes = stream->BatchSizeSnapshot();
      if (batch_sizes.count() > 0) {
        snap->AddHistogram("spe.stream.batch_size", labels,
                           batch_sizes.Boxplot());
      }
    }
    if (checkpointer_) {
      const Checkpointer::Stats cs = checkpointer_->stats();
      snap->AddCounter("spe.checkpoint.epochs", {}, cs.epochs_completed);
      snap->AddCounter("spe.checkpoint.failures", {}, cs.epochs_failed);
      snap->AddCounter("spe.checkpoint.bytes", {}, cs.bytes_persisted);
      snap->AddGauge("spe.checkpoint.duration_us", {}, cs.last_duration_us);
      snap->AddGauge("spe.checkpoint.last_epoch", {},
                     static_cast<std::int64_t>(cs.last_completed_epoch));
      snap->AddGauge("spe.checkpoint.age_us", {}, cs.last_completed_age_us);
      snap->AddGauge(
          "spe.checkpoint.consecutive_failures", {},
          static_cast<std::int64_t>(cs.consecutive_failures));
      snap->AddGauge("spe.checkpoint.degraded", {}, cs.degraded ? 1 : 0);
    }
  });
}

}  // namespace strata::spe
