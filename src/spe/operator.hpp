// Operator base class and the native operator set (paper §2): stateless
// Map/FlatMap and Filter; stateful Aggregate (time windows with group-by)
// and Join (time-bound predicate join); plus Source, Sink, Union, and a
// hash Router used to parallelize stateless stages.
//
// Execution model (Liebre-style scale-up SPE): each operator instance runs
// on its own thread, pulling from bounded input streams and pushing to
// bounded output streams; back-pressure is blocking. Event time is assumed
// non-decreasing per stream (the AM sources are layer-ordered); stateful
// operators tolerate bounded disorder by closing windows only at watermark
// `max event time seen` and counting late drops.
#pragma once

#include <atomic>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "spe/functions.hpp"
#include "spe/stream.hpp"

namespace strata::spe {

struct OperatorStats {
  std::string name;
  /// Operator class ("source", "flatmap", "router", ...), so consumers can
  /// separate logical stages from the router/union plumbing around them.
  std::string kind;
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_out = 0;
  std::uint64_t late_drops = 0;
  /// Tuples dropped because a user function threw (logged, never fatal).
  std::uint64_t user_errors = 0;
};

class Operator {
 public:
  Operator(std::string name, const Clock* clock)
      : name_(std::move(name)), clock_(clock) {}
  virtual ~Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Body executed on the operator's thread; returns when the operator has
  /// finished (inputs drained or stop requested) and outputs are closed.
  virtual void Run() = 0;

  void AddInput(StreamPtr stream) { inputs_.push_back(std::move(stream)); }
  void AddOutput(StreamPtr stream) { outputs_.push_back(std::move(stream)); }

  [[nodiscard]] const std::vector<StreamPtr>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<StreamPtr>& outputs() const noexcept {
    return outputs_;
  }

  /// Cooperative stop: sources exit their loop; other operators finish
  /// naturally when their inputs drain.
  void RequestStop() { stop_requested_.store(true, std::memory_order_release); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] virtual const char* kind() const noexcept { return "operator"; }
  [[nodiscard]] OperatorStats stats() const {
    OperatorStats s;
    s.name = name_;
    s.kind = kind();
    s.tuples_in = in_count_.load(std::memory_order_relaxed);
    s.tuples_out = out_count_.load(std::memory_order_relaxed);
    s.late_drops = late_drops_.load(std::memory_order_relaxed);
    s.user_errors = user_errors_.load(std::memory_order_relaxed);
    return s;
  }

 protected:
  [[nodiscard]] bool StopRequested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Push to every output: copies for all but the last output, which takes
  /// the tuple by move — single-output chains (the common case) never copy
  /// payloads on the hot path. Ok(false-like Closed) statuses are swallowed:
  /// a closed downstream just discards the tuple.
  void Emit(Tuple tuple) {
    out_count_.fetch_add(1, std::memory_order_relaxed);
    if (outputs_.empty()) return;
    for (std::size_t i = 0; i + 1 < outputs_.size(); ++i) {
      (void)outputs_[i]->Push(tuple);
    }
    (void)outputs_.back()->Push(std::move(tuple));
  }

  void EmitTo(std::size_t output_index, Tuple tuple) {
    out_count_.fetch_add(1, std::memory_order_relaxed);
    (void)outputs_[output_index]->Push(std::move(tuple));
  }

  void CloseOutputs() {
    for (const auto& out : outputs_) out->Close();
  }

  void CountIn() { in_count_.fetch_add(1, std::memory_order_relaxed); }
  void CountLateDrop() { late_drops_.fetch_add(1, std::memory_order_relaxed); }
  void CountUserError() {
    user_errors_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Invoke a user function; on exception, log + count and return nullopt
  /// (the offending tuple is dropped, the operator keeps running).
  template <typename F>
  auto Guarded(F&& fn) -> std::optional<decltype(fn())> {
    try {
      return fn();
    } catch (const std::exception& e) {
      CountUserError();
      LogUserError(e.what());
      return std::nullopt;
    }
  }

  [[nodiscard]] Timestamp Now() const { return clock_->Now(); }

  std::vector<StreamPtr> inputs_;
  std::vector<StreamPtr> outputs_;

 private:
  void LogUserError(const char* what);

  std::string name_;
  const Clock* clock_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> in_count_{0};
  std::atomic<std::uint64_t> out_count_{0};
  std::atomic<std::uint64_t> late_drops_{0};
  std::atomic<std::uint64_t> user_errors_{0};
};

// --------------------------------------------------------------- stateless

class SourceOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "source";
  }
  SourceOperator(std::string name, const Clock* clock, SourceFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

 private:
  SourceFn fn_;
};

class FlatMapOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "flatmap";
  }
  FlatMapOperator(std::string name, const Clock* clock, FlatMapFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

 private:
  FlatMapFn fn_;
};

class FilterOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "filter";
  }
  FilterOperator(std::string name, const Clock* clock, FilterFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

 private:
  FilterFn fn_;
};

/// Hash-routes tuples to one of N outputs by key (shard router for parallel
/// stateless stages; tuples with equal keys go to the same instance).
class RouterOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "router";
  }
  RouterOperator(std::string name, const Clock* clock, KeyFn key)
      : Operator(std::move(name), clock), key_(std::move(key)) {}
  void Run() override;

 private:
  KeyFn key_;
};

/// Merges N inputs into one output in arrival order.
class UnionOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "union";
  }
  UnionOperator(std::string name, const Clock* clock)
      : Operator(std::move(name), clock) {}
  void Run() override;
};

class SinkOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "sink";
  }
  SinkOperator(std::string name, const Clock* clock, SinkFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

  /// Invoked once after the input stream drains, before the operator exits.
  /// Used by STRATA's connectors to propagate end-of-stream through the
  /// pub/sub broker. Must be set before Query::Start.
  void SetFinishHook(std::function<void()> hook) {
    finish_hook_ = std::move(hook);
  }

  /// Latency distribution (processing-time now - stimulus) of consumed
  /// tuples, the paper's end-to-end latency metric.
  [[nodiscard]] Histogram LatencySnapshot() const {
    return latency_.Snapshot();
  }
  void ResetLatency() { latency_.Reset(); }

 private:
  SinkFn fn_;
  std::function<void()> finish_hook_;
  ConcurrentHistogram latency_;
};

// ---------------------------------------------------------------- stateful

class AggregateOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "aggregate";
  }
  AggregateOperator(std::string name, const Clock* clock, AggregateSpec spec);
  void Run() override;

 private:
  struct Window {
    std::any accumulator;
    Timestamp max_stimulus = 0;
    Timestamp max_event_time = 0;
  };

  /// Close and emit every window with end <= horizon (event time).
  void CloseWindowsUpTo(Timestamp horizon);
  void Process(const Tuple& tuple);

  AggregateSpec spec_;
  // (window_start, key) -> window; ordered by start so closing is a prefix.
  std::map<std::pair<Timestamp, std::string>, Window> windows_;
  Timestamp closed_horizon_ = std::numeric_limits<Timestamp>::min();
};

struct JoinSpec {
  /// Match when |τ_L - τ_R| <= window (paper §2). 0 = τ equality.
  Timestamp window = 0;
  /// Optional group-by: pairs must agree on key to be tested by `predicate`.
  KeyFn key_left;
  KeyFn key_right;
  /// Optional extra predicate (defaults to always-true).
  JoinPredicate predicate;
  /// Combines payloads of a matched pair; defaults to disjoint merge (the
  /// fuse() contract). Pairs whose payloads collide are dropped + counted.
  JoinCombineFn combine;
};

class JoinOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "join";
  }
  JoinOperator(std::string name, const Clock* clock, JoinSpec spec);
  void Run() override;

 private:
  void ProcessFrom(std::size_t side, Tuple tuple);
  void Evict();

  JoinSpec spec_;
  std::vector<std::deque<std::pair<std::string, Tuple>>> buffers_;  // [L, R]
  Timestamp max_time_[2] = {std::numeric_limits<Timestamp>::min(),
                            std::numeric_limits<Timestamp>::min()};
};

}  // namespace strata::spe
