// Operator base class and the native operator set (paper §2): stateless
// Map/FlatMap and Filter; stateful Aggregate (time windows with group-by)
// and Join (time-bound predicate join); plus Source, Sink, Union, and a
// hash Router used to parallelize stateless stages.
//
// Execution model (Liebre-style scale-up SPE): each operator instance runs
// on its own thread, pulling from bounded input streams and pushing to
// bounded output streams; back-pressure is blocking. Event time is assumed
// non-decreasing per stream (the AM sources are layer-ordered); stateful
// operators tolerate bounded disorder by closing windows only at watermark
// `max event time seen` and counting late drops.
//
// Data plane: operators consume whole drained batches (Stream::PopBatch)
// and emit through per-output buffers that flush on batch-size, linger
// expiry, or input idleness — one queue synchronization per batch instead of
// per tuple. Emit reports when every downstream has closed so loops (and
// sources in particular) can exit early instead of producing into the void.
#pragma once

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "spe/batch.hpp"
#include "spe/functions.hpp"
#include "spe/stream.hpp"

namespace strata::spe {

class Checkpointer;

/// Optional per-operator state codec hooks for operators whose state lives
/// outside the operator object (source positions, connector publisher
/// sequence counters). Installed via Operator::SetStateHooks; the base
/// SnapshotState/RestoreState delegate to them.
using SnapshotFn = std::function<Status(std::uint64_t epoch, std::string* out)>;
using RestoreFn = std::function<Status(std::string_view blob)>;

struct OperatorStats {
  std::string name;
  /// Operator class ("source", "flatmap", "router", ...), so consumers can
  /// separate logical stages from the router/union plumbing around them.
  std::string kind;
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_out = 0;
  std::uint64_t late_drops = 0;
  /// Tuples dropped because a user function threw (logged, never fatal).
  std::uint64_t user_errors = 0;
  /// Tuple-output pairs dropped because the downstream stream had closed
  /// (its consumer exited before this operator finished).
  std::uint64_t discarded = 0;
};

class Operator {
 public:
  Operator(std::string name, const Clock* clock)
      : name_(std::move(name)), clock_(clock) {}
  virtual ~Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Body executed on the operator's thread; returns when the operator has
  /// finished (inputs drained or stop requested) and outputs are closed.
  virtual void Run() = 0;

  void AddInput(StreamPtr stream) { inputs_.push_back(std::move(stream)); }
  void AddOutput(StreamPtr stream) { outputs_.push_back(std::move(stream)); }

  [[nodiscard]] const std::vector<StreamPtr>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<StreamPtr>& outputs() const noexcept {
    return outputs_;
  }

  /// Cooperative stop: sources exit their loop; other operators finish
  /// naturally when their inputs drain.
  void RequestStop() { stop_requested_.store(true, std::memory_order_release); }

  /// Sets the data-plane granularity: batch_size is both the emit-buffer
  /// flush threshold and the consumer-side drain cap, so `batch_size = 1`
  /// reproduces the per-tuple plane exactly. Called by Query::Start before
  /// the operator thread spawns; the default is per-tuple.
  void ConfigureBatching(const BatchPolicy& policy) {
    batch_size_ = policy.batch_size == 0 ? 1 : policy.batch_size;
    linger_us_ = policy.linger_us;
  }

  /// Wire the query's checkpoint coordinator into this operator (Query::Start
  /// when checkpointing is enabled; before the operator thread spawns).
  /// Sources additionally poll it for pending epochs to inject barriers.
  void SetCheckpointer(Checkpointer* checkpointer) {
    checkpointer_ = checkpointer;
  }

  /// Install external state codec hooks (see SnapshotFn/RestoreFn). Must be
  /// set before Query::Start / Query::Recover.
  void SetStateHooks(SnapshotFn snapshot, RestoreFn restore) {
    snapshot_hook_ = std::move(snapshot);
    restore_hook_ = std::move(restore);
  }

  /// Serialize this operator's state for checkpoint `epoch` into *out
  /// (called on the operator's own thread as a barrier drains past it).
  /// The base implementation delegates to the snapshot hook when installed
  /// and otherwise reports empty state — correct for stateless operators.
  /// A returned error fails the epoch, never the query.
  [[nodiscard]] virtual Status SnapshotState(std::uint64_t epoch,
                                             std::string* out);

  /// Restore state serialized by SnapshotState (called by Query::Recover
  /// before any thread spawns). An empty blob always means "fresh state"
  /// and is accepted without consulting the hook.
  [[nodiscard]] virtual Status RestoreState(std::string_view blob);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] virtual const char* kind() const noexcept { return "operator"; }
  [[nodiscard]] OperatorStats stats() const {
    OperatorStats s;
    s.name = name_;
    s.kind = kind();
    s.tuples_in = in_count_.load(std::memory_order_relaxed);
    s.tuples_out = out_count_.load(std::memory_order_relaxed);
    s.late_drops = late_drops_.load(std::memory_order_relaxed);
    s.user_errors = user_errors_.load(std::memory_order_relaxed);
    s.discarded = discarded_.load(std::memory_order_relaxed);
    return s;
  }

  /// Fold externally-executed work into this operator's counters. Used by
  /// the fusion pass: a fused worker runs an absorbed operator's function
  /// and attributes the per-stage counts here, so Stats()/metrics keep
  /// per-stage identity even though the operator's own thread never runs.
  void AccumulateStageCounts(std::uint64_t in, std::uint64_t out,
                             std::uint64_t errors, std::uint64_t discarded) {
    if (in != 0) in_count_.fetch_add(in, std::memory_order_relaxed);
    if (out != 0) out_count_.fetch_add(out, std::memory_order_relaxed);
    if (errors != 0) user_errors_.fetch_add(errors, std::memory_order_relaxed);
    if (discarded != 0) {
      discarded_.fetch_add(discarded, std::memory_order_relaxed);
    }
  }

 protected:
  [[nodiscard]] bool StopRequested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Buffered push to every output: copies for all but the last open output,
  /// which takes the tuple by move — single-output chains (the common case)
  /// never copy payloads. Buffers flush downstream at batch_size (see also
  /// MaybeFlush/FlushEmit). Returns false once ALL outputs have closed, so
  /// operator loops can exit early instead of emitting into the void;
  /// tuples bound for a closed output are counted as discarded.
  bool Emit(Tuple tuple) {
    out_count_.fetch_add(1, std::memory_order_relaxed);
    if (outputs_.empty()) return true;
    EnsureEmitState();
    if (open_outputs_ == 0) {
      CountDiscarded(1);
      return false;
    }
    std::size_t last_open = 0;
    for (std::size_t i = outputs_.size(); i-- > 0;) {
      if (!output_closed_[i]) {
        last_open = i;
        break;
      }
    }
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      if (output_closed_[i]) {
        CountDiscarded(1);  // tuple-output pair lost to a closed downstream
      } else if (i == last_open) {
        Buffer(i, std::move(tuple));  // later indices are all closed
      } else {
        Buffer(i, tuple);
      }
    }
    return open_outputs_ > 0;
  }

  /// Buffered push to one output (Router). Returns false once ALL outputs
  /// have closed; a tuple routed to a closed output is just discarded.
  bool EmitTo(std::size_t output_index, Tuple tuple) {
    out_count_.fetch_add(1, std::memory_order_relaxed);
    EnsureEmitState();
    if (output_closed_[output_index]) {
      CountDiscarded(1);
      return open_outputs_ > 0;
    }
    Buffer(output_index, std::move(tuple));
    return open_outputs_ > 0;
  }

  /// Pushes every buffered tuple downstream now.
  void FlushEmit() {
    if (!emit_ready_) return;
    for (std::size_t i = 0; i < emit_buffers_.size(); ++i) FlushOutput(i);
  }

  /// Batch-boundary flush policy: flush everything when the input went idle
  /// (a batch boundary follows each burst, so batching adds no latency at
  /// low rates), otherwise flush only buffers whose oldest tuple has waited
  /// at least linger_us (bounding latency under saturation).
  void MaybeFlush(bool input_idle) {
    if (!emit_ready_) return;
    if (input_idle) {
      FlushEmit();
      return;
    }
    const Timestamp now = Now();
    for (std::size_t i = 0; i < emit_buffers_.size(); ++i) {
      if (!emit_buffers_[i].empty() &&
          now - buffered_since_[i] >= linger_us_) {
        FlushOutput(i);
      }
    }
  }

  /// True once every output stream has been observed closed (only ever true
  /// for operators that have outputs). Detection is flush-driven, so this is
  /// the early-exit signal, not an instantaneous property.
  [[nodiscard]] bool AllOutputsClosed() const {
    return emit_ready_ && !outputs_.empty() && open_outputs_ == 0;
  }

  /// Close all input streams: used on early exit so upstream producers see
  /// Closed instead of blocking on back-pressure forever.
  void CloseInputs() {
    for (const auto& in : inputs_) in->Close();
  }

  /// Flushes any buffered tuples, then closes every output (close-then-drain:
  /// downstream consumers still drain what was flushed). Also tells the
  /// checkpointer this operator is finished: every Run() body ends with
  /// exactly one CloseOutputs, so in-flight and future epochs stop waiting
  /// for it.
  void CloseOutputs() {
    FlushEmit();
    for (const auto& out : outputs_) out->Close();
    NotifyFinished();
  }

  /// A barrier for `epoch` has drained past this operator: flush the emit
  /// buffers (no partial batch may straddle an epoch), snapshot state,
  /// report to the checkpointer, and forward the barrier to every open
  /// output. No-op data-plane-wise when no checkpointer is wired (the
  /// barrier is still forwarded so downstream operators see it).
  void CompleteBarrier(std::uint64_t epoch);

  /// Broadcast Tuple::Barrier(epoch) to every open output — including all
  /// of a Router's outputs, since each parallel instance must observe every
  /// barrier. Bypasses the emit buffers (CompleteBarrier flushed them).
  void ForwardBarrier(std::uint64_t epoch);

  void CountIn() { in_count_.fetch_add(1, std::memory_order_relaxed); }
  void CountIn(std::size_t n) {
    in_count_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountLateDrop() { late_drops_.fetch_add(1, std::memory_order_relaxed); }
  void CountUserError() {
    user_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountDiscarded(std::size_t n) {
    discarded_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Invoke a user function; on exception, log + count and return nullopt
  /// (the offending tuple is dropped, the operator keeps running).
  template <typename F>
  auto Guarded(F&& fn) -> std::optional<decltype(fn())> {
    try {
      return fn();
    } catch (const std::exception& e) {
      CountUserError();
      LogUserError(e.what());
      return std::nullopt;
    }
  }

  [[nodiscard]] Timestamp Now() const { return clock_->Now(); }
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }
  [[nodiscard]] std::int64_t linger_us() const noexcept { return linger_us_; }

  [[nodiscard]] Checkpointer* checkpointer() const noexcept {
    return checkpointer_;
  }

  std::vector<StreamPtr> inputs_;
  std::vector<StreamPtr> outputs_;

 private:
  void LogUserError(const char* what);
  /// Called exactly once from CloseOutputs as the Run() body exits. The
  /// default reports this operator finished to the checkpointer; a fused
  /// worker overrides it to report its absorbed constituents instead.
  virtual void NotifyFinished();

  void EnsureEmitState() {
    if (emit_ready_) return;
    emit_buffers_.resize(outputs_.size());
    buffered_since_.assign(outputs_.size(), 0);
    output_closed_.assign(outputs_.size(), 0);
    // Effective flush threshold per output: clamped to half the downstream
    // capacity so emit buffering never adds more than ~half a queue of
    // in-flight slack on top of the configured back-pressure bound.
    flush_at_.resize(outputs_.size());
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      flush_at_[i] = std::max<std::size_t>(
          1, std::min(batch_size_, outputs_[i]->capacity() / 2));
    }
    open_outputs_ = outputs_.size();
    emit_ready_ = true;
  }

  void Buffer(std::size_t i, Tuple tuple) {
    TupleBatch& buf = emit_buffers_[i];
    if (buf.empty()) buffered_since_[i] = Now();
    buf.push_back(std::move(tuple));
    if (buf.size() >= flush_at_[i]) FlushOutput(i);
  }

  void FlushOutput(std::size_t i) {
    TupleBatch& buf = emit_buffers_[i];
    if (buf.empty()) return;
    const std::size_t total = buf.size();
    std::size_t delivered = 0;
    const Status s = outputs_[i]->PushBatch(&buf, &delivered);
    buf.clear();  // delivered tuples were moved out; recycle the capacity
    if (!s.ok()) {
      CountDiscarded(total - delivered);
      if (!output_closed_[i]) {
        output_closed_[i] = 1;
        --open_outputs_;
      }
    }
  }

  std::string name_;
  const Clock* clock_;
  Checkpointer* checkpointer_ = nullptr;
  SnapshotFn snapshot_hook_;
  RestoreFn restore_hook_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> in_count_{0};
  std::atomic<std::uint64_t> out_count_{0};
  std::atomic<std::uint64_t> late_drops_{0};
  std::atomic<std::uint64_t> user_errors_{0};
  std::atomic<std::uint64_t> discarded_{0};

  // Emit-buffer state; touched only by the operator's own thread.
  std::size_t batch_size_ = 1;  ///< 1 = flush per tuple (pre-batch behavior)
  std::int64_t linger_us_ = 0;
  bool emit_ready_ = false;
  std::vector<std::size_t> flush_at_;  ///< per-output flush threshold
  std::vector<TupleBatch> emit_buffers_;
  std::vector<Timestamp> buffered_since_;  ///< Now() when buffer became non-empty
  std::vector<char> output_closed_;        ///< sticky per-output closed flags
  std::size_t open_outputs_ = 0;
};

/// Aligns epoch barriers across a multi-input operator's inputs (the
/// Chandy–Lamport / Flink alignment rule): an input that delivered its
/// barrier is *blocked* — the operator must not consume from it, and tuples
/// already drained behind the barrier are held here — until every other
/// live input delivers the same epoch, so the snapshot taken at completion
/// is a consistent cut. Single-threaded: lives on the operator's stack.
///
/// Epoch skew (a slow source skipped a timed-out epoch, so inputs deliver
/// different epoch numbers) resolves toward the highest epoch: lower-epoch
/// inputs are unblocked to catch up, and the skipped epoch — which can
/// never complete — is left to the coordinator's timeout.
class BarrierAligner {
 public:
  explicit BarrierAligner(std::size_t inputs)
      : pending_(inputs, 0), held_(inputs), done_(inputs, 0) {}

  /// Input `i` delivered a barrier for `epoch`; `held` is whatever followed
  /// the barrier in the same drained batch (replayed after alignment).
  void Arrive(std::size_t i, std::uint64_t epoch, TupleBatch held) {
    pending_[i] = epoch;
    held_[i] = std::move(held);
  }

  /// Input `i` closed and fully drained: it no longer gates alignment.
  void MarkDone(std::size_t i) { done_[i] = 1; }

  [[nodiscard]] bool blocked(std::size_t i) const { return pending_[i] != 0; }
  [[nodiscard]] bool done(std::size_t i) const { return done_[i] != 0; }
  [[nodiscard]] bool AllDone() const {
    for (const char d : done_) {
      if (d == 0) return false;
    }
    return true;
  }

  /// Takes (and clears) the tuples held behind input `i`'s barrier. Call
  /// only while the input is unblocked, before polling its stream again.
  [[nodiscard]] TupleBatch TakeHeld(std::size_t i) {
    TupleBatch out = std::move(held_[i]);
    held_[i] = TupleBatch{};
    return out;
  }

  /// When every live input has a pending barrier: all equal -> clears them
  /// and returns the epoch (snapshot now); skewed -> unblocks the
  /// lower-epoch inputs so they can catch up and returns 0. Returns 0 while
  /// any live input has yet to deliver, or when no live inputs remain.
  [[nodiscard]] std::uint64_t TryComplete() {
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t hi = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (done_[i] != 0) continue;
      if (pending_[i] == 0) return 0;
      lo = std::min(lo, pending_[i]);
      hi = std::max(hi, pending_[i]);
    }
    if (hi == 0) return 0;  // no live inputs
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (done_[i] != 0) continue;
      if (lo == hi || pending_[i] < hi) pending_[i] = 0;
    }
    return lo == hi ? hi : 0;
  }

 private:
  std::vector<std::uint64_t> pending_;  ///< delivered epoch; 0 = none
  std::vector<TupleBatch> held_;        ///< tuples parked behind the barrier
  std::vector<char> done_;
};

// --------------------------------------------------------------- stateless

class SourceOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "source";
  }
  SourceOperator(std::string name, const Clock* clock, SourceFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  /// Batch variant: the function hands over whole batches (e.g. everything
  /// one broker poll returned), which are emitted and flushed as a unit.
  SourceOperator(std::string name, const Clock* clock, BatchSourceFn fn)
      : Operator(std::move(name), clock), batch_fn_(std::move(fn)) {}
  void Run() override;

 private:
  void RunTupleLoop();
  void RunBatchLoop();
  /// Polled between produce calls: when the checkpointer published a new
  /// pending epoch, snapshot (via the state hooks) and inject the barrier.
  void MaybeInjectBarrier();

  SourceFn fn_;
  BatchSourceFn batch_fn_;
  std::uint64_t last_injected_epoch_ = 0;
};

class FlatMapOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "flatmap";
  }
  FlatMapOperator(std::string name, const Clock* clock, FlatMapFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

  /// The user function, borrowed by the fusion pass (plan_rewrite) so a
  /// fused worker can run this stage without the operator's thread.
  [[nodiscard]] const FlatMapFn& fn() const noexcept { return fn_; }

 private:
  FlatMapFn fn_;
};

class FilterOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "filter";
  }
  FilterOperator(std::string name, const Clock* clock, FilterFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

  /// The user predicate, borrowed by the fusion pass (see FlatMapOperator).
  [[nodiscard]] const FilterFn& fn() const noexcept { return fn_; }

 private:
  FilterFn fn_;
};

/// Hash-routes tuples to one of N outputs by key (shard router for parallel
/// stateless stages; tuples with equal keys go to the same instance).
class RouterOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "router";
  }
  RouterOperator(std::string name, const Clock* clock, KeyFn key)
      : Operator(std::move(name), clock), key_(std::move(key)) {}
  void Run() override;

 private:
  KeyFn key_;
};

/// Merges N inputs into one output in arrival order.
class UnionOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "union";
  }
  UnionOperator(std::string name, const Clock* clock)
      : Operator(std::move(name), clock) {}
  void Run() override;
};

class SinkOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "sink";
  }
  SinkOperator(std::string name, const Clock* clock, SinkFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

  /// Invoked once after the input stream drains, before the operator exits.
  /// Used by STRATA's connectors to propagate end-of-stream through the
  /// pub/sub broker. Must be set before Query::Start.
  void SetFinishHook(std::function<void()> hook) {
    finish_hook_ = std::move(hook);
  }

  /// Latency distribution (processing-time now - stimulus) of consumed
  /// tuples, the paper's end-to-end latency metric.
  [[nodiscard]] Histogram LatencySnapshot() const {
    return latency_.Snapshot();
  }
  void ResetLatency() { latency_.Reset(); }

 private:
  SinkFn fn_;
  std::function<void()> finish_hook_;
  ConcurrentHistogram latency_;
};

// ---------------------------------------------------------------- stateful

class AggregateOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "aggregate";
  }
  AggregateOperator(std::string name, const Clock* clock, AggregateSpec spec);
  void Run() override;

  /// Serializes every open window (accumulators via spec_.encode_acc) plus
  /// the closed horizon. Fails — failing the epoch, not the query — when the
  /// spec lacks the accumulator codec pair. Window trace context is
  /// transient and not preserved.
  [[nodiscard]] Status SnapshotState(std::uint64_t epoch,
                                     std::string* out) override;
  [[nodiscard]] Status RestoreState(std::string_view blob) override;

 private:
  struct Window {
    std::any accumulator;
    Timestamp max_stimulus = 0;
    Timestamp max_event_time = 0;
    /// First sampled contributor's context; emitted results continue it.
    TraceContext trace;
  };

  /// Close and emit every window with end <= horizon (event time).
  void CloseWindowsUpTo(Timestamp horizon);
  void Process(const Tuple& tuple);

  AggregateSpec spec_;
  // (window_start, key) -> window; ordered by start so closing is a prefix.
  std::map<std::pair<Timestamp, std::string>, Window> windows_;
  Timestamp closed_horizon_ = std::numeric_limits<Timestamp>::min();
};

struct JoinSpec {
  /// Match when |τ_L - τ_R| <= window (paper §2). 0 = τ equality.
  Timestamp window = 0;
  /// Optional group-by: pairs must agree on key to be tested by `predicate`.
  KeyFn key_left;
  KeyFn key_right;
  /// Optional extra predicate (defaults to always-true).
  JoinPredicate predicate;
  /// Combines payloads of a matched pair; defaults to disjoint merge (the
  /// fuse() contract). Pairs whose payloads collide are dropped + counted.
  JoinCombineFn combine;
};

class JoinOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "join";
  }
  JoinOperator(std::string name, const Clock* clock, JoinSpec spec);
  void Run() override;

  /// Serializes both side buffers (scalar payloads only — opaque payloads
  /// fail the epoch) and the per-side watermarks.
  [[nodiscard]] Status SnapshotState(std::uint64_t epoch,
                                     std::string* out) override;
  [[nodiscard]] Status RestoreState(std::string_view blob) override;

 private:
  void ProcessFrom(std::size_t side, Tuple tuple);
  void Evict();

  JoinSpec spec_;
  std::vector<std::deque<std::pair<std::string, Tuple>>> buffers_;  // [L, R]
  Timestamp max_time_[2] = {std::numeric_limits<Timestamp>::min(),
                            std::numeric_limits<Timestamp>::min()};
};

}  // namespace strata::spe
