// Operator base class and the native operator set (paper §2): stateless
// Map/FlatMap and Filter; stateful Aggregate (time windows with group-by)
// and Join (time-bound predicate join); plus Source, Sink, Union, and a
// hash Router used to parallelize stateless stages.
//
// Execution model (Liebre-style scale-up SPE): each operator instance runs
// on its own thread, pulling from bounded input streams and pushing to
// bounded output streams; back-pressure is blocking. Event time is assumed
// non-decreasing per stream (the AM sources are layer-ordered); stateful
// operators tolerate bounded disorder by closing windows only at watermark
// `max event time seen` and counting late drops.
//
// Data plane: operators consume whole drained batches (Stream::PopBatch)
// and emit through per-output buffers that flush on batch-size, linger
// expiry, or input idleness — one queue synchronization per batch instead of
// per tuple. Emit reports when every downstream has closed so loops (and
// sources in particular) can exit early instead of producing into the void.
#pragma once

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "spe/batch.hpp"
#include "spe/functions.hpp"
#include "spe/stream.hpp"

namespace strata::spe {

struct OperatorStats {
  std::string name;
  /// Operator class ("source", "flatmap", "router", ...), so consumers can
  /// separate logical stages from the router/union plumbing around them.
  std::string kind;
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_out = 0;
  std::uint64_t late_drops = 0;
  /// Tuples dropped because a user function threw (logged, never fatal).
  std::uint64_t user_errors = 0;
  /// Tuple-output pairs dropped because the downstream stream had closed
  /// (its consumer exited before this operator finished).
  std::uint64_t discarded = 0;
};

class Operator {
 public:
  Operator(std::string name, const Clock* clock)
      : name_(std::move(name)), clock_(clock) {}
  virtual ~Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Body executed on the operator's thread; returns when the operator has
  /// finished (inputs drained or stop requested) and outputs are closed.
  virtual void Run() = 0;

  void AddInput(StreamPtr stream) { inputs_.push_back(std::move(stream)); }
  void AddOutput(StreamPtr stream) { outputs_.push_back(std::move(stream)); }

  [[nodiscard]] const std::vector<StreamPtr>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<StreamPtr>& outputs() const noexcept {
    return outputs_;
  }

  /// Cooperative stop: sources exit their loop; other operators finish
  /// naturally when their inputs drain.
  void RequestStop() { stop_requested_.store(true, std::memory_order_release); }

  /// Sets the data-plane granularity: batch_size is both the emit-buffer
  /// flush threshold and the consumer-side drain cap, so `batch_size = 1`
  /// reproduces the per-tuple plane exactly. Called by Query::Start before
  /// the operator thread spawns; the default is per-tuple.
  void ConfigureBatching(const BatchPolicy& policy) {
    batch_size_ = policy.batch_size == 0 ? 1 : policy.batch_size;
    linger_us_ = policy.linger_us;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] virtual const char* kind() const noexcept { return "operator"; }
  [[nodiscard]] OperatorStats stats() const {
    OperatorStats s;
    s.name = name_;
    s.kind = kind();
    s.tuples_in = in_count_.load(std::memory_order_relaxed);
    s.tuples_out = out_count_.load(std::memory_order_relaxed);
    s.late_drops = late_drops_.load(std::memory_order_relaxed);
    s.user_errors = user_errors_.load(std::memory_order_relaxed);
    s.discarded = discarded_.load(std::memory_order_relaxed);
    return s;
  }

 protected:
  [[nodiscard]] bool StopRequested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Buffered push to every output: copies for all but the last open output,
  /// which takes the tuple by move — single-output chains (the common case)
  /// never copy payloads. Buffers flush downstream at batch_size (see also
  /// MaybeFlush/FlushEmit). Returns false once ALL outputs have closed, so
  /// operator loops can exit early instead of emitting into the void;
  /// tuples bound for a closed output are counted as discarded.
  bool Emit(Tuple tuple) {
    out_count_.fetch_add(1, std::memory_order_relaxed);
    if (outputs_.empty()) return true;
    EnsureEmitState();
    if (open_outputs_ == 0) {
      CountDiscarded(1);
      return false;
    }
    std::size_t last_open = 0;
    for (std::size_t i = outputs_.size(); i-- > 0;) {
      if (!output_closed_[i]) {
        last_open = i;
        break;
      }
    }
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      if (output_closed_[i]) {
        CountDiscarded(1);  // tuple-output pair lost to a closed downstream
      } else if (i == last_open) {
        Buffer(i, std::move(tuple));  // later indices are all closed
      } else {
        Buffer(i, tuple);
      }
    }
    return open_outputs_ > 0;
  }

  /// Buffered push to one output (Router). Returns false once ALL outputs
  /// have closed; a tuple routed to a closed output is just discarded.
  bool EmitTo(std::size_t output_index, Tuple tuple) {
    out_count_.fetch_add(1, std::memory_order_relaxed);
    EnsureEmitState();
    if (output_closed_[output_index]) {
      CountDiscarded(1);
      return open_outputs_ > 0;
    }
    Buffer(output_index, std::move(tuple));
    return open_outputs_ > 0;
  }

  /// Pushes every buffered tuple downstream now.
  void FlushEmit() {
    if (!emit_ready_) return;
    for (std::size_t i = 0; i < emit_buffers_.size(); ++i) FlushOutput(i);
  }

  /// Batch-boundary flush policy: flush everything when the input went idle
  /// (a batch boundary follows each burst, so batching adds no latency at
  /// low rates), otherwise flush only buffers whose oldest tuple has waited
  /// at least linger_us (bounding latency under saturation).
  void MaybeFlush(bool input_idle) {
    if (!emit_ready_) return;
    if (input_idle) {
      FlushEmit();
      return;
    }
    const Timestamp now = Now();
    for (std::size_t i = 0; i < emit_buffers_.size(); ++i) {
      if (!emit_buffers_[i].empty() &&
          now - buffered_since_[i] >= linger_us_) {
        FlushOutput(i);
      }
    }
  }

  /// True once every output stream has been observed closed (only ever true
  /// for operators that have outputs). Detection is flush-driven, so this is
  /// the early-exit signal, not an instantaneous property.
  [[nodiscard]] bool AllOutputsClosed() const {
    return emit_ready_ && !outputs_.empty() && open_outputs_ == 0;
  }

  /// Close all input streams: used on early exit so upstream producers see
  /// Closed instead of blocking on back-pressure forever.
  void CloseInputs() {
    for (const auto& in : inputs_) in->Close();
  }

  /// Flushes any buffered tuples, then closes every output (close-then-drain:
  /// downstream consumers still drain what was flushed).
  void CloseOutputs() {
    FlushEmit();
    for (const auto& out : outputs_) out->Close();
  }

  void CountIn() { in_count_.fetch_add(1, std::memory_order_relaxed); }
  void CountIn(std::size_t n) {
    in_count_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountLateDrop() { late_drops_.fetch_add(1, std::memory_order_relaxed); }
  void CountUserError() {
    user_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountDiscarded(std::size_t n) {
    discarded_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Invoke a user function; on exception, log + count and return nullopt
  /// (the offending tuple is dropped, the operator keeps running).
  template <typename F>
  auto Guarded(F&& fn) -> std::optional<decltype(fn())> {
    try {
      return fn();
    } catch (const std::exception& e) {
      CountUserError();
      LogUserError(e.what());
      return std::nullopt;
    }
  }

  [[nodiscard]] Timestamp Now() const { return clock_->Now(); }
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }
  [[nodiscard]] std::int64_t linger_us() const noexcept { return linger_us_; }

  std::vector<StreamPtr> inputs_;
  std::vector<StreamPtr> outputs_;

 private:
  void LogUserError(const char* what);

  void EnsureEmitState() {
    if (emit_ready_) return;
    emit_buffers_.resize(outputs_.size());
    buffered_since_.assign(outputs_.size(), 0);
    output_closed_.assign(outputs_.size(), 0);
    // Effective flush threshold per output: clamped to half the downstream
    // capacity so emit buffering never adds more than ~half a queue of
    // in-flight slack on top of the configured back-pressure bound.
    flush_at_.resize(outputs_.size());
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      flush_at_[i] = std::max<std::size_t>(
          1, std::min(batch_size_, outputs_[i]->capacity() / 2));
    }
    open_outputs_ = outputs_.size();
    emit_ready_ = true;
  }

  void Buffer(std::size_t i, Tuple tuple) {
    TupleBatch& buf = emit_buffers_[i];
    if (buf.empty()) buffered_since_[i] = Now();
    buf.push_back(std::move(tuple));
    if (buf.size() >= flush_at_[i]) FlushOutput(i);
  }

  void FlushOutput(std::size_t i) {
    TupleBatch& buf = emit_buffers_[i];
    if (buf.empty()) return;
    const std::size_t total = buf.size();
    std::size_t delivered = 0;
    const Status s = outputs_[i]->PushBatch(&buf, &delivered);
    buf.clear();  // delivered tuples were moved out; recycle the capacity
    if (!s.ok()) {
      CountDiscarded(total - delivered);
      if (!output_closed_[i]) {
        output_closed_[i] = 1;
        --open_outputs_;
      }
    }
  }

  std::string name_;
  const Clock* clock_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> in_count_{0};
  std::atomic<std::uint64_t> out_count_{0};
  std::atomic<std::uint64_t> late_drops_{0};
  std::atomic<std::uint64_t> user_errors_{0};
  std::atomic<std::uint64_t> discarded_{0};

  // Emit-buffer state; touched only by the operator's own thread.
  std::size_t batch_size_ = 1;  ///< 1 = flush per tuple (pre-batch behavior)
  std::int64_t linger_us_ = 0;
  bool emit_ready_ = false;
  std::vector<std::size_t> flush_at_;  ///< per-output flush threshold
  std::vector<TupleBatch> emit_buffers_;
  std::vector<Timestamp> buffered_since_;  ///< Now() when buffer became non-empty
  std::vector<char> output_closed_;        ///< sticky per-output closed flags
  std::size_t open_outputs_ = 0;
};

// --------------------------------------------------------------- stateless

class SourceOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "source";
  }
  SourceOperator(std::string name, const Clock* clock, SourceFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  /// Batch variant: the function hands over whole batches (e.g. everything
  /// one broker poll returned), which are emitted and flushed as a unit.
  SourceOperator(std::string name, const Clock* clock, BatchSourceFn fn)
      : Operator(std::move(name), clock), batch_fn_(std::move(fn)) {}
  void Run() override;

 private:
  void RunTupleLoop();
  void RunBatchLoop();

  SourceFn fn_;
  BatchSourceFn batch_fn_;
};

class FlatMapOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "flatmap";
  }
  FlatMapOperator(std::string name, const Clock* clock, FlatMapFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

 private:
  FlatMapFn fn_;
};

class FilterOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "filter";
  }
  FilterOperator(std::string name, const Clock* clock, FilterFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

 private:
  FilterFn fn_;
};

/// Hash-routes tuples to one of N outputs by key (shard router for parallel
/// stateless stages; tuples with equal keys go to the same instance).
class RouterOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "router";
  }
  RouterOperator(std::string name, const Clock* clock, KeyFn key)
      : Operator(std::move(name), clock), key_(std::move(key)) {}
  void Run() override;

 private:
  KeyFn key_;
};

/// Merges N inputs into one output in arrival order.
class UnionOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "union";
  }
  UnionOperator(std::string name, const Clock* clock)
      : Operator(std::move(name), clock) {}
  void Run() override;
};

class SinkOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "sink";
  }
  SinkOperator(std::string name, const Clock* clock, SinkFn fn)
      : Operator(std::move(name), clock), fn_(std::move(fn)) {}
  void Run() override;

  /// Invoked once after the input stream drains, before the operator exits.
  /// Used by STRATA's connectors to propagate end-of-stream through the
  /// pub/sub broker. Must be set before Query::Start.
  void SetFinishHook(std::function<void()> hook) {
    finish_hook_ = std::move(hook);
  }

  /// Latency distribution (processing-time now - stimulus) of consumed
  /// tuples, the paper's end-to-end latency metric.
  [[nodiscard]] Histogram LatencySnapshot() const {
    return latency_.Snapshot();
  }
  void ResetLatency() { latency_.Reset(); }

 private:
  SinkFn fn_;
  std::function<void()> finish_hook_;
  ConcurrentHistogram latency_;
};

// ---------------------------------------------------------------- stateful

class AggregateOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "aggregate";
  }
  AggregateOperator(std::string name, const Clock* clock, AggregateSpec spec);
  void Run() override;

 private:
  struct Window {
    std::any accumulator;
    Timestamp max_stimulus = 0;
    Timestamp max_event_time = 0;
    /// First sampled contributor's context; emitted results continue it.
    TraceContext trace;
  };

  /// Close and emit every window with end <= horizon (event time).
  void CloseWindowsUpTo(Timestamp horizon);
  void Process(const Tuple& tuple);

  AggregateSpec spec_;
  // (window_start, key) -> window; ordered by start so closing is a prefix.
  std::map<std::pair<Timestamp, std::string>, Window> windows_;
  Timestamp closed_horizon_ = std::numeric_limits<Timestamp>::min();
};

struct JoinSpec {
  /// Match when |τ_L - τ_R| <= window (paper §2). 0 = τ equality.
  Timestamp window = 0;
  /// Optional group-by: pairs must agree on key to be tested by `predicate`.
  KeyFn key_left;
  KeyFn key_right;
  /// Optional extra predicate (defaults to always-true).
  JoinPredicate predicate;
  /// Combines payloads of a matched pair; defaults to disjoint merge (the
  /// fuse() contract). Pairs whose payloads collide are dropped + counted.
  JoinCombineFn combine;
};

class JoinOperator final : public Operator {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "join";
  }
  JoinOperator(std::string name, const Clock* clock, JoinSpec spec);
  void Run() override;

 private:
  void ProcessFrom(std::size_t side, Tuple tuple);
  void Evict();

  JoinSpec spec_;
  std::vector<std::deque<std::pair<std::string, Tuple>>> buffers_;  // [L, R]
  Timestamp max_time_[2] = {std::numeric_limits<Timestamp>::min(),
                            std::numeric_limits<Timestamp>::min()};
};

}  // namespace strata::spe
