// Prebuilt AggregateSpec builders for the common window functions the paper
// names in §2 ("functions such as max, min, or sum"), plus count and mean.
// Each aggregates one numeric payload sub-attribute over the window and
// emits a single tuple per (window, group) carrying the result under
// `output_key` plus the window bounds.
#pragma once

#include <limits>
#include <string>

#include "spe/functions.hpp"

namespace strata::spe {

namespace internal {

struct NumericAccumulator {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::int64_t count = 0;
};

/// Shared scaffolding: fold `attribute` of each tuple into the accumulator,
/// emit one result via `finish`.
AggregateSpec NumericAggregate(
    WindowSpec window, KeyFn key, std::string attribute,
    std::string output_key,
    std::function<double(const NumericAccumulator&)> finish);

}  // namespace internal

/// Output tuple payload: {output_key: result, window_start, window_end,
/// count}. Tuples whose attribute is missing/non-numeric are skipped (and
/// excluded from count).
[[nodiscard]] AggregateSpec SumAggregate(WindowSpec window,
                                         std::string attribute,
                                         std::string output_key = "sum",
                                         KeyFn key = nullptr);
[[nodiscard]] AggregateSpec MinAggregate(WindowSpec window,
                                         std::string attribute,
                                         std::string output_key = "min",
                                         KeyFn key = nullptr);
[[nodiscard]] AggregateSpec MaxAggregate(WindowSpec window,
                                         std::string attribute,
                                         std::string output_key = "max",
                                         KeyFn key = nullptr);
[[nodiscard]] AggregateSpec MeanAggregate(WindowSpec window,
                                          std::string attribute,
                                          std::string output_key = "mean",
                                          KeyFn key = nullptr);
/// Counts all tuples (no attribute needed).
[[nodiscard]] AggregateSpec CountAggregate(WindowSpec window,
                                           std::string output_key = "count",
                                           KeyFn key = nullptr);

}  // namespace strata::spe
