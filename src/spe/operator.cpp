#include "spe/operator.hpp"

#include <functional>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace strata::spe {

namespace {
/// Poll interval for multi-input operators alternating between streams.
constexpr auto kPollInterval = std::chrono::microseconds(1000);

/// Span covering one drained batch: active iff tracing is on and the batch
/// carries a sampled tuple (the batch's trace is its first sampled tuple's
/// context — see tuple.hpp). Inactive scopes are free apart from the gate's
/// single relaxed load + branch.
obs::SpanScope BatchSpan(const char* category, const std::string& name,
                         const TupleBatch& batch) {
  if (!obs::TracingEnabled()) return {};
  for (const Tuple& tuple : batch) {
    if (tuple.trace.sampled()) {
      return obs::SpanScope(name.c_str(), category, tuple.trace, batch.size());
    }
  }
  return {};
}

/// Source-side tracing for a handed-over batch: continues the trace already
/// carried by a sampled tuple (e.g. decoded by a connector from the broker),
/// otherwise makes a fresh per-batch sampling decision. `t0` is when the
/// source function was entered, so the span covers the poll/produce call.
void TraceSourceBatch(const std::string& name, std::int64_t t0,
                      TupleBatch* batch) {
  obs::Tracer& tracer = obs::Tracer::Instance();
  const Tuple* carried = nullptr;
  for (const Tuple& tuple : *batch) {
    if (tuple.trace.sampled()) {
      carried = &tuple;
      break;
    }
  }
  TraceContext parent;
  if (carried != nullptr) {
    parent = carried->trace;
  } else {
    parent = tracer.MaybeStartTrace();
    if (!parent.sampled()) return;
  }
  obs::Span span;
  span.trace_id = parent.trace_id;
  span.span_id = tracer.NewSpanId();
  span.parent_span = parent.parent_span;
  span.start_us = t0;
  span.dur_us = obs::TraceNowUs() - t0;
  span.batch = batch->size();
  span.SetName(name.c_str());
  span.SetCategory("spe.source");
  tracer.Record(span);
  const TraceContext emit{parent.trace_id, span.span_id};
  for (Tuple& tuple : *batch) {
    // A fresh decision covers the whole batch; a carried trace re-stamps only
    // its own tuples (other concurrently-sampled traces keep their identity).
    if (carried == nullptr || tuple.trace.trace_id == parent.trace_id) {
      tuple.trace = emit;
    }
  }
}
}  // namespace

// ------------------------------------------------------------------ Source

void Operator::LogUserError(const char* what) {
  LOG_ERROR << "operator '" << name() << "': user function threw: " << what;
}

void SourceOperator::Run() {
  if (batch_fn_) {
    RunBatchLoop();
  } else {
    RunTupleLoop();
  }
  CloseOutputs();
}

void SourceOperator::RunTupleLoop() {
  // A source cannot flush while blocked inside fn_, so the flush policy
  // keys off the arrival gap: a source slower than the linger flushes every
  // tuple immediately (no added latency at low rates); a fast source buffers
  // up to batch_size / linger_us like any other operator.
  Timestamp last_arrival = 0;
  while (!StopRequested()) {
    const std::int64_t trace_t0 =
        obs::TracingEnabled() ? obs::TraceNowUs() : 0;
    auto guarded = Guarded([&] { return fn_(); });
    if (!guarded.has_value()) break;  // a throwing source ends its stream
    std::optional<Tuple>& tuple = *guarded;
    if (!tuple.has_value()) break;
    const Timestamp now = Now();
    if (tuple->stimulus == 0) tuple->stimulus = now;
    CountIn();
    if (trace_t0 != 0) {
      obs::Tracer& tracer = obs::Tracer::Instance();
      if (TraceContext ctx = tracer.MaybeStartTrace(); ctx.sampled()) {
        obs::Span span;
        span.trace_id = ctx.trace_id;
        span.span_id = tracer.NewSpanId();
        span.start_us = trace_t0;
        span.dur_us = obs::TraceNowUs() - trace_t0;
        span.batch = 1;
        span.SetName(name().c_str());
        span.SetCategory("spe.source");
        tracer.Record(span);
        tuple->trace = TraceContext{ctx.trace_id, span.span_id};
      }
    }
    if (!Emit(std::move(*tuple))) break;  // every consumer is gone
    const bool slow_source =
        last_arrival == 0 || now - last_arrival >= linger_us();
    last_arrival = now;
    if (slow_source) {
      FlushEmit();
    } else {
      MaybeFlush(/*input_idle=*/false);  // linger-bounded buffering
    }
  }
}

void SourceOperator::RunBatchLoop() {
  // Each batch the function hands over (e.g. one broker poll) is emitted
  // and flushed as a unit: upstream batch boundaries are natural flush
  // points.
  while (!StopRequested()) {
    const std::int64_t trace_t0 =
        obs::TracingEnabled() ? obs::TraceNowUs() : 0;
    auto guarded = Guarded([&] { return batch_fn_(); });
    if (!guarded.has_value()) break;
    std::optional<TupleBatch>& batch = *guarded;
    if (!batch.has_value()) break;
    if (trace_t0 != 0) TraceSourceBatch(name(), trace_t0, &*batch);
    const Timestamp now = Now();
    bool open = true;
    for (Tuple& tuple : *batch) {
      if (tuple.stimulus == 0) tuple.stimulus = now;
      CountIn();
      if (!(open = Emit(std::move(tuple)))) break;
    }
    if (!open) break;
    FlushEmit();
  }
}

// ----------------------------------------------------------------- FlatMap

void FlatMapOperator::Run() {
  bool open = true;
  while (open) {
    auto batch = inputs_[0]->PopBatch(batch_size());
    if (!batch.has_value()) break;  // input closed and drained
    CountIn(batch->size());
    obs::SpanScope span = BatchSpan("spe.flatmap", name(), *batch);
    for (Tuple& tuple : *batch) {
      auto results = Guarded([&] { return fn_(tuple); });
      if (!results.has_value()) continue;  // user error: drop this tuple
      for (Tuple& out : *results) {
        if (out.stimulus == 0) out.stimulus = tuple.stimulus;
        if (span.active()) out.trace = span.EmitContext();
        if (!(open = Emit(std::move(out)))) break;
      }
      if (!open) break;
    }
    if (open) MaybeFlush(inputs_[0]->depth() == 0);
  }
  if (!open) CloseInputs();  // early exit: downstream consumers are gone
  CloseOutputs();
}

// ------------------------------------------------------------------ Filter

void FilterOperator::Run() {
  bool open = true;
  while (open) {
    auto batch = inputs_[0]->PopBatch(batch_size());
    if (!batch.has_value()) break;
    CountIn(batch->size());
    obs::SpanScope span = BatchSpan("spe.filter", name(), *batch);
    for (Tuple& tuple : *batch) {
      const auto keep = Guarded([&] { return fn_(tuple); });
      if (!keep.value_or(false)) continue;
      if (span.active()) tuple.trace = span.EmitContext();
      if (!(open = Emit(std::move(tuple)))) break;
    }
    if (open) MaybeFlush(inputs_[0]->depth() == 0);
  }
  if (!open) CloseInputs();
  CloseOutputs();
}

// ------------------------------------------------------------------ Router

void RouterOperator::Run() {
  std::hash<std::string> hasher;
  const std::size_t n = outputs_.size();
  bool open = true;
  while (open) {
    auto batch = inputs_[0]->PopBatch(batch_size());
    if (!batch.has_value()) break;
    CountIn(batch->size());
    obs::SpanScope span = BatchSpan("spe.router", name(), *batch);
    for (Tuple& tuple : *batch) {
      const auto key = Guarded([&] { return key_(tuple); });
      if (!key.has_value()) continue;
      if (span.active()) tuple.trace = span.EmitContext();
      if (!(open = EmitTo(hasher(*key) % n, std::move(tuple)))) break;
    }
    if (open) MaybeFlush(inputs_[0]->depth() == 0);
  }
  if (!open) CloseInputs();
  CloseOutputs();
}

// ------------------------------------------------------------------- Union

void UnionOperator::Run() {
  std::vector<bool> done(inputs_.size(), false);
  std::size_t remaining = inputs_.size();
  bool open = true;
  while (remaining > 0 && open) {
    bool progressed = false;
    for (std::size_t i = 0; i < inputs_.size() && open; ++i) {
      if (done[i]) continue;
      // Drain whatever is immediately available from this input.
      while (auto batch = inputs_[i]->TryPopBatch(batch_size())) {
        CountIn(batch->size());
        obs::SpanScope span = BatchSpan("spe.union", name(), *batch);
        for (Tuple& tuple : *batch) {
          if (span.active()) tuple.trace = span.EmitContext();
          if (!(open = Emit(std::move(tuple)))) break;
        }
        progressed = true;
        if (!open) break;
      }
      if (inputs_[i]->drained()) {
        done[i] = true;
        --remaining;
        progressed = true;
      }
    }
    if (!open) break;
    if (progressed) {
      MaybeFlush(/*input_idle=*/false);
      continue;
    }
    if (remaining > 0) {
      // Nothing available anywhere: flush what we buffered (don't sit on
      // tuples while parked), then block briefly on the first live input.
      FlushEmit();
      for (std::size_t i = 0; i < inputs_.size(); ++i) {
        if (!done[i]) {
          if (auto batch = inputs_[i]->PopBatchFor(kPollInterval, batch_size())) {
            CountIn(batch->size());
            obs::SpanScope span = BatchSpan("spe.union", name(), *batch);
            for (Tuple& tuple : *batch) {
              if (span.active()) tuple.trace = span.EmitContext();
              if (!(open = Emit(std::move(tuple)))) break;
            }
          }
          break;
        }
      }
    }
  }
  if (!open) CloseInputs();
  CloseOutputs();
}

// -------------------------------------------------------------------- Sink

void SinkOperator::Run() {
  while (auto batch = inputs_[0]->PopBatch(batch_size())) {
    CountIn(batch->size());
    // While the scope is live the thread's trace slot points at it, so kv
    // store() calls and log lines inside fn_ attach to this trace.
    obs::SpanScope span = BatchSpan("spe.sink", name(), *batch);
    for (Tuple& tuple : *batch) {
      latency_.Record(Now() - tuple.stimulus);
      if (fn_) {
        (void)Guarded([&] {
          fn_(tuple);
          return true;
        });
      }
    }
  }
  if (finish_hook_) finish_hook_();
  CloseOutputs();  // usually none
}

// --------------------------------------------------------------- Aggregate

AggregateOperator::AggregateOperator(std::string name, const Clock* clock,
                                     AggregateSpec spec)
    : Operator(std::move(name), clock), spec_(std::move(spec)) {
  if (!spec_.window.valid()) {
    throw std::invalid_argument("AggregateOperator: invalid window spec");
  }
  if (spec_.allowed_lateness < 0) {
    throw std::invalid_argument("AggregateOperator: negative lateness");
  }
  if (!spec_.init || !spec_.add || !spec_.result) {
    throw std::invalid_argument("AggregateOperator: missing functions");
  }
}

void AggregateOperator::CloseWindowsUpTo(Timestamp horizon) {
  // windows_ is keyed by (start, key): once start + size > horizon we can
  // stop, because later starts only end later.
  while (!windows_.empty()) {
    auto it = windows_.begin();
    const Timestamp window_start = it->first.first;
    const Timestamp window_end = window_start + spec_.window.size;
    if (window_end > horizon) break;

    Window& window = it->second;
    auto results = Guarded([&] {
      return spec_.result(window.accumulator, window_start, window_end);
    });
    if (results.has_value()) {
      for (Tuple& out : *results) {
        if (out.event_time == 0) out.event_time = window_end - 1;
        out.stimulus = CombineStimulus(out.stimulus, window.max_stimulus);
        if (window.trace.sampled()) {
          // The window keeps the first sampled contributor's identity; the
          // emitted result continues that trace (window residency shows up
          // as the next hop's queue wait).
          out.trace = window.trace;
        }
        (void)Emit(std::move(out));  // closed downstream counted as discarded
      }
    }
    closed_horizon_ = std::max(closed_horizon_, window_end);
    windows_.erase(it);
  }
}

void AggregateOperator::Process(const Tuple& tuple) {
  const Timestamp t = tuple.event_time;
  // The watermark trails the max event time by the allowed lateness, so
  // bounded disorder still lands in open windows.
  CloseWindowsUpTo(t == std::numeric_limits<Timestamp>::min()
                       ? t
                       : t - spec_.allowed_lateness);

  const Timestamp ws = spec_.window.size;
  const Timestamp wa = spec_.window.advance;
  // Windows [l*wa, l*wa + ws) containing t: (t - ws)/wa < l <= t/wa, l >= 0.
  std::int64_t l_max = t >= 0 ? t / wa : -1;
  std::int64_t l_min = 0;
  if (t - ws >= 0) {
    l_min = (t - ws) / wa + 1;
  }
  const std::string key = spec_.key ? spec_.key(tuple) : std::string();

  bool dropped_somewhere = false;
  for (std::int64_t l = l_min; l <= l_max; ++l) {
    const Timestamp window_start = l * wa;
    const Timestamp window_end = window_start + ws;
    if (window_end <= closed_horizon_) {
      dropped_somewhere = true;  // late: this window already closed
      continue;
    }
    auto [it, inserted] =
        windows_.try_emplace({window_start, key}, Window{});
    if (inserted) it->second.accumulator = spec_.init();
    if (tuple.trace.sampled() && !it->second.trace.sampled()) {
      it->second.trace = tuple.trace;
    }
    spec_.add(it->second.accumulator, tuple);
    it->second.max_stimulus =
        CombineStimulus(it->second.max_stimulus, tuple.stimulus);
    it->second.max_event_time = std::max(it->second.max_event_time, t);
  }
  if (dropped_somewhere) CountLateDrop();
}

void AggregateOperator::Run() {
  bool open = true;
  while (open) {
    auto batch = inputs_[0]->PopBatch(batch_size());
    if (!batch.has_value()) break;
    CountIn(batch->size());
    obs::SpanScope span = BatchSpan("spe.aggregate", name(), *batch);
    for (const Tuple& tuple : *batch) {
      (void)Guarded([&] {
        Process(tuple);
        return true;
      });
    }
    if (AllOutputsClosed()) {
      open = false;
      break;
    }
    MaybeFlush(inputs_[0]->depth() == 0);
  }
  if (open) {
    // End of stream: flush every open window.
    CloseWindowsUpTo(std::numeric_limits<Timestamp>::max());
  } else {
    CloseInputs();  // nobody downstream: skip the final flush
  }
  CloseOutputs();
}

// -------------------------------------------------------------------- Join

JoinOperator::JoinOperator(std::string name, const Clock* clock, JoinSpec spec)
    : Operator(std::move(name), clock), spec_(std::move(spec)), buffers_(2) {
  if (spec_.window < 0) {
    throw std::invalid_argument("JoinOperator: negative window");
  }
}

void JoinOperator::Evict() {
  // A buffered tuple on side S can only match future arrivals on the other
  // side, whose event times are >= max_time_[other] (ordered streams). So a
  // tuple with τ < max_time_[other] - window is dead.
  for (int side = 0; side < 2; ++side) {
    const Timestamp other_max = max_time_[1 - side];
    if (other_max == std::numeric_limits<Timestamp>::min()) continue;
    auto& buffer = buffers_[static_cast<std::size_t>(side)];
    while (!buffer.empty() &&
           buffer.front().second.event_time < other_max - spec_.window) {
      buffer.pop_front();
    }
  }
}

void JoinOperator::ProcessFrom(std::size_t side, Tuple tuple) {
  max_time_[side] = std::max(max_time_[side], tuple.event_time);

  const KeyFn& my_key_fn = side == 0 ? spec_.key_left : spec_.key_right;
  const auto guarded_key =
      Guarded([&] { return my_key_fn ? my_key_fn(tuple) : std::string(); });
  if (!guarded_key.has_value()) return;  // key fn threw: drop the tuple
  const std::string& key = *guarded_key;

  // Probe the opposite buffer.
  for (const auto& [other_key, other] : buffers_[1 - side]) {
    if (key != other_key) continue;
    const Timestamp dt = tuple.event_time - other.event_time;
    if (dt > spec_.window || dt < -spec_.window) continue;
    const Tuple& left = side == 0 ? tuple : other;
    const Tuple& right = side == 0 ? other : tuple;
    if (spec_.predicate) {
      const auto match = Guarded([&] { return spec_.predicate(left, right); });
      if (!match.value_or(false)) continue;
    }

    Tuple joined;
    joined.event_time = std::max(left.event_time, right.event_time);
    joined.job = left.job;
    joined.layer = left.layer;
    joined.specimen = left.specimen;
    joined.portion = left.portion;
    joined.stimulus = CombineStimulus(left.stimulus, right.stimulus);
    if (spec_.combine) {
      auto combined = Guarded([&] { return spec_.combine(left, right); });
      if (!combined.has_value()) continue;
      joined.payload = std::move(*combined);
    } else {
      joined.payload = left.payload;
      // Equal duplicate keys (e.g. shared group-by attributes) merge;
      // conflicting values violate fuse()'s uniqueness assumption -> drop.
      if (Status s = joined.payload.MergeCompatible(right.payload); !s.ok()) {
        CountLateDrop();
        continue;
      }
    }
    joined.trace = left.trace.sampled() ? left.trace : right.trace;
    if (joined.trace.sampled()) {
      // Parent the joined tuple under the active batch span when it belongs
      // to the same trace (the buffered side may carry an older context).
      const TraceContext& current = ThreadTraceSlot();
      if (current.trace_id == joined.trace.trace_id) {
        joined.trace.parent_span = current.parent_span;
      }
    }
    (void)Emit(std::move(joined));
  }

  buffers_[side].emplace_back(key, std::move(tuple));
  Evict();
}

void JoinOperator::Run() {
  bool done[2] = {false, false};
  bool open = true;
  while ((!done[0] || !done[1]) && open) {
    bool progressed = false;
    for (std::size_t side = 0; side < 2 && open; ++side) {
      if (done[side]) continue;
      while (auto batch = inputs_[side]->TryPopBatch(batch_size())) {
        CountIn(batch->size());
        obs::SpanScope span = BatchSpan("spe.join", name(), *batch);
        for (Tuple& tuple : *batch) ProcessFrom(side, std::move(tuple));
        progressed = true;
        if (AllOutputsClosed()) {
          open = false;
          break;
        }
      }
      if (inputs_[side]->drained()) {
        done[side] = true;
        progressed = true;
      }
    }
    if (!open) break;
    if (progressed) {
      MaybeFlush(/*input_idle=*/false);
      continue;
    }
    // Neither side had data: flush buffered output, then block briefly on
    // whichever side is still live.
    FlushEmit();
    const std::size_t side = done[0] ? 1 : 0;
    if (auto batch = inputs_[side]->PopBatchFor(kPollInterval, batch_size())) {
      CountIn(batch->size());
      obs::SpanScope span = BatchSpan("spe.join", name(), *batch);
      for (Tuple& tuple : *batch) ProcessFrom(side, std::move(tuple));
      if (AllOutputsClosed()) open = false;
    }
  }
  if (!open) CloseInputs();
  CloseOutputs();
}

}  // namespace strata::spe
