#include "spe/operator.hpp"

#include <functional>
#include <iterator>

#include "common/codec.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "spe/checkpoint.hpp"

namespace strata::spe {

namespace {
/// Poll interval for multi-input operators alternating between streams.
constexpr auto kPollInterval = std::chrono::microseconds(1000);

/// Span covering one drained batch: active iff tracing is on and the batch
/// carries a sampled tuple (the batch's trace is its first sampled tuple's
/// context — see tuple.hpp). Inactive scopes are free apart from the gate's
/// single relaxed load + branch.
obs::SpanScope BatchSpan(const char* category, const std::string& name,
                         const TupleBatch& batch) {
  if (!obs::TracingEnabled()) return {};
  for (const Tuple& tuple : batch) {
    if (tuple.trace.sampled()) {
      return obs::SpanScope(name.c_str(), category, tuple.trace, batch.size());
    }
  }
  return {};
}

/// Source-side tracing for a handed-over batch: continues the trace already
/// carried by a sampled tuple (e.g. decoded by a connector from the broker),
/// otherwise makes a fresh per-batch sampling decision. `t0` is when the
/// source function was entered, so the span covers the poll/produce call.
void TraceSourceBatch(const std::string& name, std::int64_t t0,
                      TupleBatch* batch) {
  obs::Tracer& tracer = obs::Tracer::Instance();
  const Tuple* carried = nullptr;
  for (const Tuple& tuple : *batch) {
    if (tuple.trace.sampled()) {
      carried = &tuple;
      break;
    }
  }
  TraceContext parent;
  if (carried != nullptr) {
    parent = carried->trace;
  } else {
    parent = tracer.MaybeStartTrace();
    if (!parent.sampled()) return;
  }
  obs::Span span;
  span.trace_id = parent.trace_id;
  span.span_id = tracer.NewSpanId();
  span.parent_span = parent.parent_span;
  span.start_us = t0;
  span.dur_us = obs::TraceNowUs() - t0;
  span.batch = batch->size();
  span.SetName(name.c_str());
  span.SetCategory("spe.source");
  tracer.Record(span);
  const TraceContext emit{parent.trace_id, span.span_id};
  for (Tuple& tuple : *batch) {
    // A fresh decision covers the whole batch; a carried trace re-stamps only
    // its own tuples (other concurrently-sampled traces keep their identity).
    if (carried == nullptr || tuple.trace.trace_id == parent.trace_id) {
      tuple.trace = emit;
    }
  }
}

/// Shared alignment-resolution loop for multi-input operators: completes
/// aligned epochs and replays tuples held behind barriers — which may
/// themselves contain the next barrier, hence the loop. `complete` must run
/// before the replay: held tuples sit after the barrier and belong to the
/// next epoch, so they must not be processed before the snapshot.
template <typename Ingest, typename Complete>
void SettleBarriers(BarrierAligner* aligner, std::size_t inputs,
                    const bool& open, Ingest&& ingest, Complete&& complete) {
  for (;;) {
    const std::uint64_t epoch = aligner->TryComplete();
    if (epoch != 0) complete(epoch);
    bool replayed = false;
    for (std::size_t i = 0; i < inputs && open; ++i) {
      if (aligner->blocked(i)) continue;
      TupleBatch held = aligner->TakeHeld(i);
      if (!held.empty()) {
        ingest(i, std::move(held));
        replayed = true;
      }
    }
    if (!open || (epoch == 0 && !replayed)) return;
  }
}

/// Splits off everything behind position `k` in `batch` (exclusive) — the
/// tuples a multi-input operator must hold back behind a barrier.
TupleBatch SplitHeld(TupleBatch* batch, std::size_t k) {
  TupleBatch held(std::make_move_iterator(batch->begin() + static_cast<std::ptrdiff_t>(k)),
                  std::make_move_iterator(batch->end()));
  return held;
}
}  // namespace

// ---------------------------------------------------------------- Operator

void Operator::LogUserError(const char* what) {
  LOG_ERROR << "operator '" << name() << "': user function threw: " << what;
}

void Operator::NotifyFinished() {
  if (checkpointer_ != nullptr) checkpointer_->OnOperatorFinished(name());
}

Status Operator::SnapshotState(std::uint64_t epoch, std::string* out) {
  if (snapshot_hook_) return snapshot_hook_(epoch, out);
  return Status::Ok();  // stateless: empty blob
}

Status Operator::RestoreState(std::string_view blob) {
  if (blob.empty()) return Status::Ok();  // fresh state, nothing to do
  if (restore_hook_) return restore_hook_(blob);
  return Status::InvalidArgument("operator '" + name() +
                                 "': non-empty snapshot but no restore path");
}

void Operator::CompleteBarrier(std::uint64_t epoch) {
  FlushEmit();  // no partial batch may straddle the epoch boundary
  if (checkpointer_ != nullptr) {
    std::string blob;
    const Status snapshot = SnapshotState(epoch, &blob);
    if (snapshot.ok()) {
      checkpointer_->ReportSnapshot(name(), epoch, std::move(blob));
    } else {
      checkpointer_->ReportSnapshotFailure(name(), epoch, snapshot);
    }
  }
  ForwardBarrier(epoch);
}

void Operator::ForwardBarrier(std::uint64_t epoch) {
  if (outputs_.empty()) return;
  EnsureEmitState();
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (output_closed_[i]) continue;
    if (!outputs_[i]->Push(Tuple::Barrier(epoch)).ok()) {
      output_closed_[i] = 1;
      --open_outputs_;
    }
  }
}

// ------------------------------------------------------------------ Source

void SourceOperator::Run() {
  if (batch_fn_) {
    RunBatchLoop();
  } else {
    RunTupleLoop();
  }
  CloseOutputs();
}

void SourceOperator::MaybeInjectBarrier() {
  Checkpointer* cp = checkpointer();
  if (cp == nullptr) return;
  const std::uint64_t pending = cp->PendingEpoch();
  if (pending > last_injected_epoch_) {
    // Injection latency is bounded by how long the source function blocks
    // per call (connector polls are a few ms); the coordinator's epoch
    // timeout covers a source stuck in a long produce call.
    last_injected_epoch_ = pending;
    CompleteBarrier(pending);
  }
}

void SourceOperator::RunTupleLoop() {
  // A source cannot flush while blocked inside fn_, so the flush policy
  // keys off the arrival gap: a source slower than the linger flushes every
  // tuple immediately (no added latency at low rates); a fast source buffers
  // up to batch_size / linger_us like any other operator.
  Timestamp last_arrival = 0;
  while (!StopRequested()) {
    MaybeInjectBarrier();
    const std::int64_t trace_t0 =
        obs::TracingEnabled() ? obs::TraceNowUs() : 0;
    auto guarded = Guarded([&] { return fn_(); });
    if (!guarded.has_value()) break;  // a throwing source ends its stream
    std::optional<Tuple>& tuple = *guarded;
    if (!tuple.has_value()) break;
    const Timestamp now = Now();
    if (tuple->stimulus == 0) tuple->stimulus = now;
    CountIn();
    if (trace_t0 != 0) {
      obs::Tracer& tracer = obs::Tracer::Instance();
      if (TraceContext ctx = tracer.MaybeStartTrace(); ctx.sampled()) {
        obs::Span span;
        span.trace_id = ctx.trace_id;
        span.span_id = tracer.NewSpanId();
        span.start_us = trace_t0;
        span.dur_us = obs::TraceNowUs() - trace_t0;
        span.batch = 1;
        span.SetName(name().c_str());
        span.SetCategory("spe.source");
        tracer.Record(span);
        tuple->trace = TraceContext{ctx.trace_id, span.span_id};
      }
    }
    if (!Emit(std::move(*tuple))) break;  // every consumer is gone
    const bool slow_source =
        last_arrival == 0 || now - last_arrival >= linger_us();
    last_arrival = now;
    if (slow_source) {
      FlushEmit();
    } else {
      MaybeFlush(/*input_idle=*/false);  // linger-bounded buffering
    }
  }
}

void SourceOperator::RunBatchLoop() {
  // Each batch the function hands over (e.g. one broker poll) is emitted
  // and flushed as a unit: upstream batch boundaries are natural flush
  // points.
  while (!StopRequested()) {
    MaybeInjectBarrier();
    const std::int64_t trace_t0 =
        obs::TracingEnabled() ? obs::TraceNowUs() : 0;
    auto guarded = Guarded([&] { return batch_fn_(); });
    if (!guarded.has_value()) break;
    std::optional<TupleBatch>& batch = *guarded;
    if (!batch.has_value()) break;
    if (trace_t0 != 0) TraceSourceBatch(name(), trace_t0, &*batch);
    const Timestamp now = Now();
    bool open = true;
    for (Tuple& tuple : *batch) {
      if (tuple.stimulus == 0) tuple.stimulus = now;
      CountIn();
      if (!(open = Emit(std::move(tuple)))) break;
    }
    if (!open) break;
    FlushEmit();
  }
}

// ----------------------------------------------------------------- FlatMap

void FlatMapOperator::Run() {
  bool open = true;
  while (open) {
    auto batch = inputs_[0]->PopBatch(batch_size());
    if (!batch.has_value()) break;  // input closed and drained
    CountIn(batch->size());
    obs::SpanScope span = BatchSpan("spe.flatmap", name(), *batch);
    for (Tuple& tuple : *batch) {
      if (tuple.IsBarrier()) {
        CompleteBarrier(tuple.barrier_epoch);
        continue;
      }
      auto results = Guarded([&] { return fn_(tuple); });
      if (!results.has_value()) continue;  // user error: drop this tuple
      for (Tuple& out : *results) {
        if (out.stimulus == 0) out.stimulus = tuple.stimulus;
        if (span.active()) out.trace = span.EmitContext();
        if (!(open = Emit(std::move(out)))) break;
      }
      if (!open) break;
    }
    if (open) MaybeFlush(inputs_[0]->depth() == 0);
  }
  if (!open) CloseInputs();  // early exit: downstream consumers are gone
  CloseOutputs();
}

// ------------------------------------------------------------------ Filter

void FilterOperator::Run() {
  bool open = true;
  while (open) {
    auto batch = inputs_[0]->PopBatch(batch_size());
    if (!batch.has_value()) break;
    CountIn(batch->size());
    obs::SpanScope span = BatchSpan("spe.filter", name(), *batch);
    for (Tuple& tuple : *batch) {
      if (tuple.IsBarrier()) {
        CompleteBarrier(tuple.barrier_epoch);
        continue;
      }
      const auto keep = Guarded([&] { return fn_(tuple); });
      if (!keep.value_or(false)) continue;
      if (span.active()) tuple.trace = span.EmitContext();
      if (!(open = Emit(std::move(tuple)))) break;
    }
    if (open) MaybeFlush(inputs_[0]->depth() == 0);
  }
  if (!open) CloseInputs();
  CloseOutputs();
}

// ------------------------------------------------------------------ Router

void RouterOperator::Run() {
  std::hash<std::string> hasher;
  const std::size_t n = outputs_.size();
  bool open = true;
  while (open) {
    auto batch = inputs_[0]->PopBatch(batch_size());
    if (!batch.has_value()) break;
    CountIn(batch->size());
    obs::SpanScope span = BatchSpan("spe.router", name(), *batch);
    for (Tuple& tuple : *batch) {
      if (tuple.IsBarrier()) {
        // Barriers broadcast to every parallel instance, not to one shard.
        CompleteBarrier(tuple.barrier_epoch);
        continue;
      }
      const auto key = Guarded([&] { return key_(tuple); });
      if (!key.has_value()) continue;
      if (span.active()) tuple.trace = span.EmitContext();
      if (!(open = EmitTo(hasher(*key) % n, std::move(tuple)))) break;
    }
    if (open) MaybeFlush(inputs_[0]->depth() == 0);
  }
  if (!open) CloseInputs();
  CloseOutputs();
}

// ------------------------------------------------------------------- Union

void UnionOperator::Run() {
  const std::size_t n = inputs_.size();
  BarrierAligner aligner(n);
  bool open = true;

  // Processes one drained batch from input `i`, stopping at a barrier: the
  // epoch and the tuples behind it go to the aligner, and the input is
  // blocked (not polled) until every live input aligns.
  auto ingest = [&](std::size_t i, TupleBatch batch) {
    obs::SpanScope span = BatchSpan("spe.union", name(), batch);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      Tuple& tuple = batch[k];
      if (tuple.IsBarrier()) {
        const std::uint64_t epoch = tuple.barrier_epoch;
        aligner.Arrive(i, epoch, SplitHeld(&batch, k + 1));
        return;
      }
      if (span.active()) tuple.trace = span.EmitContext();
      if (!(open = Emit(std::move(tuple)))) return;
    }
  };
  auto settle = [&] {
    SettleBarriers(&aligner, n, open, ingest,
                   [&](std::uint64_t epoch) { CompleteBarrier(epoch); });
  };

  while (!aligner.AllDone() && open) {
    bool progressed = false;
    for (std::size_t i = 0; i < n && open; ++i) {
      if (aligner.done(i) || aligner.blocked(i)) continue;
      // Drain whatever is immediately available from this input.
      while (open && !aligner.blocked(i)) {
        auto batch = inputs_[i]->TryPopBatch(batch_size());
        if (!batch.has_value()) break;
        CountIn(batch->size());
        ingest(i, std::move(*batch));
        progressed = true;
      }
      if (!aligner.blocked(i) && inputs_[i]->drained()) {
        // A blocked input is never marked done here: its barrier still
        // gates alignment, and it is re-examined once unblocked.
        aligner.MarkDone(i);
        progressed = true;
      }
    }
    settle();
    if (!open || aligner.AllDone()) break;
    if (progressed) {
      MaybeFlush(/*input_idle=*/false);
      continue;
    }
    // Nothing available anywhere: flush what we buffered (don't sit on
    // tuples while parked), then block briefly on the first live, unblocked
    // input. One exists — were every live input blocked, settle() would
    // have completed or skew-unblocked the alignment.
    FlushEmit();
    for (std::size_t i = 0; i < n; ++i) {
      if (aligner.done(i) || aligner.blocked(i)) continue;
      if (auto batch = inputs_[i]->PopBatchFor(kPollInterval, batch_size())) {
        CountIn(batch->size());
        ingest(i, std::move(*batch));
        settle();
      }
      break;
    }
  }
  if (!open) CloseInputs();
  CloseOutputs();
}

// -------------------------------------------------------------------- Sink

void SinkOperator::Run() {
  while (auto batch = inputs_[0]->PopBatch(batch_size())) {
    CountIn(batch->size());
    // While the scope is live the thread's trace slot points at it, so kv
    // store() calls and log lines inside fn_ attach to this trace.
    obs::SpanScope span = BatchSpan("spe.sink", name(), *batch);
    for (Tuple& tuple : *batch) {
      if (tuple.IsBarrier()) {
        CompleteBarrier(tuple.barrier_epoch);
        continue;
      }
      latency_.Record(Now() - tuple.stimulus);
      if (fn_) {
        (void)Guarded([&] {
          fn_(tuple);
          return true;
        });
      }
    }
  }
  if (finish_hook_) finish_hook_();
  CloseOutputs();  // usually none
}

// --------------------------------------------------------------- Aggregate

AggregateOperator::AggregateOperator(std::string name, const Clock* clock,
                                     AggregateSpec spec)
    : Operator(std::move(name), clock), spec_(std::move(spec)) {
  if (!spec_.window.valid()) {
    throw std::invalid_argument("AggregateOperator: invalid window spec");
  }
  if (spec_.allowed_lateness < 0) {
    throw std::invalid_argument("AggregateOperator: negative lateness");
  }
  if (!spec_.init || !spec_.add || !spec_.result) {
    throw std::invalid_argument("AggregateOperator: missing functions");
  }
}

void AggregateOperator::CloseWindowsUpTo(Timestamp horizon) {
  // windows_ is keyed by (start, key): once start + size > horizon we can
  // stop, because later starts only end later.
  while (!windows_.empty()) {
    auto it = windows_.begin();
    const Timestamp window_start = it->first.first;
    const Timestamp window_end = window_start + spec_.window.size;
    if (window_end > horizon) break;

    Window& window = it->second;
    auto results = Guarded([&] {
      return spec_.result(window.accumulator, window_start, window_end);
    });
    if (results.has_value()) {
      for (Tuple& out : *results) {
        if (out.event_time == 0) out.event_time = window_end - 1;
        out.stimulus = CombineStimulus(out.stimulus, window.max_stimulus);
        if (window.trace.sampled()) {
          // The window keeps the first sampled contributor's identity; the
          // emitted result continues that trace (window residency shows up
          // as the next hop's queue wait).
          out.trace = window.trace;
        }
        (void)Emit(std::move(out));  // closed downstream counted as discarded
      }
    }
    closed_horizon_ = std::max(closed_horizon_, window_end);
    windows_.erase(it);
  }
}

void AggregateOperator::Process(const Tuple& tuple) {
  const Timestamp t = tuple.event_time;
  // The watermark trails the max event time by the allowed lateness, so
  // bounded disorder still lands in open windows.
  CloseWindowsUpTo(t == std::numeric_limits<Timestamp>::min()
                       ? t
                       : t - spec_.allowed_lateness);

  const Timestamp ws = spec_.window.size;
  const Timestamp wa = spec_.window.advance;
  // Windows [l*wa, l*wa + ws) containing t: (t - ws)/wa < l <= t/wa, l >= 0.
  std::int64_t l_max = t >= 0 ? t / wa : -1;
  std::int64_t l_min = 0;
  if (t - ws >= 0) {
    l_min = (t - ws) / wa + 1;
  }
  const std::string key = spec_.key ? spec_.key(tuple) : std::string();

  bool dropped_somewhere = false;
  for (std::int64_t l = l_min; l <= l_max; ++l) {
    const Timestamp window_start = l * wa;
    const Timestamp window_end = window_start + ws;
    if (window_end <= closed_horizon_) {
      dropped_somewhere = true;  // late: this window already closed
      continue;
    }
    auto [it, inserted] =
        windows_.try_emplace({window_start, key}, Window{});
    if (inserted) it->second.accumulator = spec_.init();
    if (tuple.trace.sampled() && !it->second.trace.sampled()) {
      it->second.trace = tuple.trace;
    }
    spec_.add(it->second.accumulator, tuple);
    it->second.max_stimulus =
        CombineStimulus(it->second.max_stimulus, tuple.stimulus);
    it->second.max_event_time = std::max(it->second.max_event_time, t);
  }
  if (dropped_somewhere) CountLateDrop();
}

void AggregateOperator::Run() {
  bool open = true;
  while (open) {
    auto batch = inputs_[0]->PopBatch(batch_size());
    if (!batch.has_value()) break;
    CountIn(batch->size());
    obs::SpanScope span = BatchSpan("spe.aggregate", name(), *batch);
    for (const Tuple& tuple : *batch) {
      if (tuple.IsBarrier()) {
        CompleteBarrier(tuple.barrier_epoch);
        continue;
      }
      (void)Guarded([&] {
        Process(tuple);
        return true;
      });
    }
    if (AllOutputsClosed()) {
      open = false;
      break;
    }
    MaybeFlush(inputs_[0]->depth() == 0);
  }
  if (open) {
    // End of stream: flush every open window.
    CloseWindowsUpTo(std::numeric_limits<Timestamp>::max());
  } else {
    CloseInputs();  // nobody downstream: skip the final flush
  }
  CloseOutputs();
}

Status AggregateOperator::SnapshotState(std::uint64_t /*epoch*/,
                                        std::string* out) {
  if (!spec_.encode_acc || !spec_.decode_acc) {
    return Status::InvalidArgument(
        "aggregate '" + name() +
        "': AggregateSpec has no accumulator codec (set encode_acc/"
        "decode_acc to make this operator checkpointable)");
  }
  codec::PutVarint64Signed(out, closed_horizon_);
  codec::PutVarint64(out, windows_.size());
  for (const auto& [key, window] : windows_) {
    codec::PutVarint64Signed(out, key.first);
    codec::PutLengthPrefixed(out, key.second);
    codec::PutVarint64Signed(out, window.max_stimulus);
    codec::PutVarint64Signed(out, window.max_event_time);
    std::string acc;
    STRATA_RETURN_IF_ERROR(spec_.encode_acc(window.accumulator, &acc));
    codec::PutLengthPrefixed(out, acc);
  }
  return Status::Ok();
}

Status AggregateOperator::RestoreState(std::string_view blob) {
  if (blob.empty()) return Status::Ok();
  if (!spec_.decode_acc) {
    return Status::InvalidArgument("aggregate '" + name() +
                                   "': snapshot present but no decode_acc");
  }
  std::string_view in = blob;
  Timestamp horizon = 0;
  std::uint64_t count = 0;
  if (!codec::GetVarint64Signed(&in, &horizon) ||
      !codec::GetVarint64(&in, &count)) {
    return Status::Corruption("aggregate snapshot: truncated header");
  }
  std::map<std::pair<Timestamp, std::string>, Window> windows;
  for (std::uint64_t i = 0; i < count; ++i) {
    Timestamp start = 0;
    std::string_view key;
    Window window;
    std::string_view acc;
    if (!codec::GetVarint64Signed(&in, &start) ||
        !codec::GetLengthPrefixed(&in, &key) ||
        !codec::GetVarint64Signed(&in, &window.max_stimulus) ||
        !codec::GetVarint64Signed(&in, &window.max_event_time) ||
        !codec::GetLengthPrefixed(&in, &acc)) {
      return Status::Corruption("aggregate snapshot: truncated window");
    }
    auto decoded = spec_.decode_acc(acc);
    if (!decoded.ok()) return decoded.status();
    window.accumulator = std::move(*decoded);
    windows.emplace(std::make_pair(start, std::string(key)),
                    std::move(window));
  }
  if (!in.empty()) {
    return Status::Corruption("aggregate snapshot: trailing bytes");
  }
  windows_ = std::move(windows);
  closed_horizon_ = horizon;
  return Status::Ok();
}

// -------------------------------------------------------------------- Join

JoinOperator::JoinOperator(std::string name, const Clock* clock, JoinSpec spec)
    : Operator(std::move(name), clock), spec_(std::move(spec)), buffers_(2) {
  if (spec_.window < 0) {
    throw std::invalid_argument("JoinOperator: negative window");
  }
}

void JoinOperator::Evict() {
  // A buffered tuple on side S can only match future arrivals on the other
  // side, whose event times are >= max_time_[other] (ordered streams). So a
  // tuple with τ < max_time_[other] - window is dead.
  for (int side = 0; side < 2; ++side) {
    const Timestamp other_max = max_time_[1 - side];
    if (other_max == std::numeric_limits<Timestamp>::min()) continue;
    auto& buffer = buffers_[static_cast<std::size_t>(side)];
    while (!buffer.empty() &&
           buffer.front().second.event_time < other_max - spec_.window) {
      buffer.pop_front();
    }
  }
}

void JoinOperator::ProcessFrom(std::size_t side, Tuple tuple) {
  max_time_[side] = std::max(max_time_[side], tuple.event_time);

  const KeyFn& my_key_fn = side == 0 ? spec_.key_left : spec_.key_right;
  const auto guarded_key =
      Guarded([&] { return my_key_fn ? my_key_fn(tuple) : std::string(); });
  if (!guarded_key.has_value()) return;  // key fn threw: drop the tuple
  const std::string& key = *guarded_key;

  // Probe the opposite buffer.
  for (const auto& [other_key, other] : buffers_[1 - side]) {
    if (key != other_key) continue;
    const Timestamp dt = tuple.event_time - other.event_time;
    if (dt > spec_.window || dt < -spec_.window) continue;
    const Tuple& left = side == 0 ? tuple : other;
    const Tuple& right = side == 0 ? other : tuple;
    if (spec_.predicate) {
      const auto match = Guarded([&] { return spec_.predicate(left, right); });
      if (!match.value_or(false)) continue;
    }

    Tuple joined;
    joined.event_time = std::max(left.event_time, right.event_time);
    joined.job = left.job;
    joined.layer = left.layer;
    joined.specimen = left.specimen;
    joined.portion = left.portion;
    joined.stimulus = CombineStimulus(left.stimulus, right.stimulus);
    if (spec_.combine) {
      auto combined = Guarded([&] { return spec_.combine(left, right); });
      if (!combined.has_value()) continue;
      joined.payload = std::move(*combined);
    } else {
      joined.payload = left.payload;
      // Equal duplicate keys (e.g. shared group-by attributes) merge;
      // conflicting values violate fuse()'s uniqueness assumption -> drop.
      if (Status s = joined.payload.MergeCompatible(right.payload); !s.ok()) {
        CountLateDrop();
        continue;
      }
    }
    joined.trace = left.trace.sampled() ? left.trace : right.trace;
    if (joined.trace.sampled()) {
      // Parent the joined tuple under the active batch span when it belongs
      // to the same trace (the buffered side may carry an older context).
      const TraceContext& current = ThreadTraceSlot();
      if (current.trace_id == joined.trace.trace_id) {
        joined.trace.parent_span = current.parent_span;
      }
    }
    (void)Emit(std::move(joined));
  }

  buffers_[side].emplace_back(key, std::move(tuple));
  Evict();
}

void JoinOperator::Run() {
  BarrierAligner aligner(2);
  bool open = true;

  auto ingest = [&](std::size_t side, TupleBatch batch) {
    obs::SpanScope span = BatchSpan("spe.join", name(), batch);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      if (batch[k].IsBarrier()) {
        const std::uint64_t epoch = batch[k].barrier_epoch;
        aligner.Arrive(side, epoch, SplitHeld(&batch, k + 1));
        return;
      }
      ProcessFrom(side, std::move(batch[k]));
    }
    if (AllOutputsClosed()) open = false;
  };
  auto settle = [&] {
    SettleBarriers(&aligner, 2, open, ingest,
                   [&](std::uint64_t epoch) { CompleteBarrier(epoch); });
  };

  while (!aligner.AllDone() && open) {
    bool progressed = false;
    for (std::size_t side = 0; side < 2 && open; ++side) {
      if (aligner.done(side) || aligner.blocked(side)) continue;
      while (open && !aligner.blocked(side)) {
        auto batch = inputs_[side]->TryPopBatch(batch_size());
        if (!batch.has_value()) break;
        CountIn(batch->size());
        ingest(side, std::move(*batch));
        progressed = true;
      }
      if (!aligner.blocked(side) && inputs_[side]->drained()) {
        aligner.MarkDone(side);
        progressed = true;
      }
    }
    settle();
    if (!open || aligner.AllDone()) break;
    if (progressed) {
      MaybeFlush(/*input_idle=*/false);
      continue;
    }
    // Neither side had data: flush buffered output, then block briefly on
    // a side that is still live and not parked behind a barrier.
    FlushEmit();
    for (std::size_t side = 0; side < 2; ++side) {
      if (aligner.done(side) || aligner.blocked(side)) continue;
      if (auto batch = inputs_[side]->PopBatchFor(kPollInterval, batch_size())) {
        CountIn(batch->size());
        ingest(side, std::move(*batch));
        settle();
      }
      break;
    }
  }
  if (!open) CloseInputs();
  CloseOutputs();
}

Status JoinOperator::SnapshotState(std::uint64_t /*epoch*/, std::string* out) {
  for (std::size_t side = 0; side < 2; ++side) {
    codec::PutVarint64(out, buffers_[side].size());
    for (const auto& [key, tuple] : buffers_[side]) {
      codec::PutLengthPrefixed(out, key);
      STRATA_RETURN_IF_ERROR(EncodeTupleSnapshot(tuple, out));
    }
  }
  codec::PutVarint64Signed(out, max_time_[0]);
  codec::PutVarint64Signed(out, max_time_[1]);
  return Status::Ok();
}

Status JoinOperator::RestoreState(std::string_view blob) {
  if (blob.empty()) return Status::Ok();
  std::string_view in = blob;
  std::vector<std::deque<std::pair<std::string, Tuple>>> buffers(2);
  for (std::size_t side = 0; side < 2; ++side) {
    std::uint64_t count = 0;
    if (!codec::GetVarint64(&in, &count)) {
      return Status::Corruption("join snapshot: truncated buffer count");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string_view key;
      if (!codec::GetLengthPrefixed(&in, &key)) {
        return Status::Corruption("join snapshot: truncated key");
      }
      Tuple tuple;
      STRATA_RETURN_IF_ERROR(DecodeTupleSnapshot(&in, &tuple));
      buffers[side].emplace_back(std::string(key), std::move(tuple));
    }
  }
  Timestamp left_max = 0;
  Timestamp right_max = 0;
  if (!codec::GetVarint64Signed(&in, &left_max) ||
      !codec::GetVarint64Signed(&in, &right_max)) {
    return Status::Corruption("join snapshot: truncated watermarks");
  }
  if (!in.empty()) return Status::Corruption("join snapshot: trailing bytes");
  buffers_ = std::move(buffers);
  max_time_[0] = left_max;
  max_time_[1] = right_max;
  return Status::Ok();
}

}  // namespace strata::spe
