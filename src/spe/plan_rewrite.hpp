// Plan rewriting for the SPE data plane (ROADMAP item 3, after the stream
// fusion line of work — Kiselyov et al., "Complete Stream Fusion for
// Software-Defined Radio" / "Highest-performance Stream Processing").
//
// Two transforms, both applied by Query::Start and both plan-level only
// (builder code and operator semantics are untouched):
//
//  1. Operator fusion (QueryOptions::enable_fusion): maximal chains of
//     adjacent stateless operators (FlatMap/Filter, each 1-input/1-output,
//     linked by a stream with exactly one registered producer and one
//     registered consumer) collapse into a single FusedOperator that runs
//     the whole chain per tuple on one thread — the interior streams are
//     never touched, so a fused chain costs zero intermediate queue
//     synchronizations. The absorbed operators never run; the fused worker
//     executes their functions in order and attributes per-stage counts
//     (tuples in/out, user errors, discards) back to them, so
//     spe.operator.* metrics and OperatorStats keep per-stage identity.
//
//  2. Keyed data-parallel sharding (the `shards` argument of
//     Query::AddAggregate / Query::AddJoin): a stateful stage is
//     partitioned across K instances behind a hash router keyed on the
//     group-by key, with a union merging the shard outputs. Per-key order
//     is preserved (a key always hashes to the same shard, and the union
//     preserves per-input order); cross-key order is not. The helpers
//     below re-bucket checkpointed shard state so a run restored onto a
//     different shard count re-hashes every window / join buffer entry to
//     its new home shard.
//
// Checkpoint composition: a FusedOperator forwards an epoch barrier as a
// unit — it flushes the chain's emit buffers, reports one snapshot per
// constituent operator (under the constituent's registered name), then
// forwards the barrier once. Keyed shards rely on the existing
// router-broadcast / union-alignment barrier rules.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "spe/operator.hpp"

namespace strata::spe {

/// A single fused worker executing a chain of stateless stages per tuple.
/// Borrows the absorbed operators (owned by the Query): their user
/// functions drive the stages and their counters receive the per-stage
/// attribution. Created by FuseStatelessChains; never built directly.
class FusedOperator final : public Operator {
 public:
  /// One absorbed stage: exactly one of flatmap/filter is set, borrowed
  /// from `op` (which outlives the fused worker — both live on the Query).
  struct Stage {
    Operator* op = nullptr;
    const FlatMapFn* flatmap = nullptr;
    const FilterFn* filter = nullptr;
  };

  FusedOperator(std::string name, const Clock* clock,
                std::vector<Stage> stages);

  [[nodiscard]] const char* kind() const noexcept override { return "fused"; }
  void Run() override;

  [[nodiscard]] const std::vector<Stage>& stages() const noexcept {
    return stages_;
  }

 private:
  /// Barrier drained past the fused chain: flush the chain as a unit,
  /// snapshot every constituent under its own registered name, forward the
  /// barrier once.
  void CompleteChainBarrier(std::uint64_t epoch);
  /// The chain finished: every constituent is done for checkpoint purposes.
  void NotifyFinished() override;

  std::vector<Stage> stages_;
};

/// Result of the fusion pass: the fused workers to run instead of the
/// absorbed originals.
struct FusionPlan {
  std::vector<std::unique_ptr<FusedOperator>> fused;
  /// Operators absorbed into a fused worker (no thread is spawned for
  /// them; their counters are updated by the fused worker).
  std::vector<Operator*> absorbed;
};

/// Finds maximal fusable chains among `operators` (see file comment for
/// the eligibility rules) and builds one FusedOperator per chain of length
/// >= 2. Runs single-threaded before operator threads spawn.
[[nodiscard]] FusionPlan FuseStatelessChains(
    const std::vector<std::unique_ptr<Operator>>& operators,
    const Clock* clock);

// ------------------------------------------------------- shard re-hashing
//
// Both helpers parse the operators' snapshot wire format directly (keys and
// accumulator payloads stay opaque bytes), so re-sharding never needs the
// user codecs. The bucket function must match RouterOperator's:
// std::hash<std::string>{}(key) % shards.

/// Re-buckets AggregateOperator snapshots (any old shard count, including a
/// single unsharded blob) into `new_shards` blobs. Every output blob gets
/// the max closed-horizon of the inputs: re-opening a window some old shard
/// already closed and emitted would double-report, so the merged horizon
/// trades (bounded-lateness) late drops for no duplicates.
[[nodiscard]] Status ReshardAggregateSnapshots(
    const std::vector<std::string>& old_blobs, std::size_t new_shards,
    std::vector<std::string>* new_blobs);

/// Re-buckets JoinOperator snapshots into `new_shards` blobs. Per-side
/// buffers are merged in event-time order and every output blob gets the
/// min per-side watermark of the inputs: eviction is only an optimization
/// (the |τL-τR| <= window predicate still rejects stale pairs), so the
/// conservative watermark can never drop a matchable pair.
[[nodiscard]] Status ReshardJoinSnapshots(
    const std::vector<std::string>& old_blobs, std::size_t new_shards,
    std::vector<std::string>* new_blobs);

}  // namespace strata::spe
