// Deterministic failpoint framework (strata::fault).
//
// A failpoint is a named site in a risky code path (WAL append, segment
// roll, socket send, ...) where a test — or an operator chasing a bug in
// production — can inject a failure without touching the code around it.
// Sites are compiled in unconditionally; when no failpoint is armed the
// whole check is one relaxed atomic load, so hot paths pay (sub-)nanosecond
// cost (< 2% on bench_substrates, by contract).
//
// Actions:
//   error          the site returns Status::IoError
//   delay(ms)      the site sleeps, then proceeds normally
//   torn-write(n)  write sites persist only the first n bytes, then fail
//                  (emulates a crash mid-write; recovery must CRC-reject it)
//   disconnect     the site returns Status::Unavailable (transport paths)
//   crash          the process exits immediately (std::_Exit — no atexit,
//                  no flushing: the closest in-process stand-in for kill -9)
//
// Activation is programmatic (Activate/Deactivate) or via the environment:
//
//   STRATA_FAILPOINTS="site=action[@probability][:max_hits];site2=..."
//   STRATA_FAILPOINTS="wal.append=crash@0.01;segment.append=torn-write(5)@0.2:3"
//   STRATA_FAILPOINTS_SEED=42   # probability draws are deterministic per seed
//
// Entries are separated by ';' or ','. `probability` defaults to 1.0;
// `max_hits` bounds how many times the action fires (unlimited by default).
// The env spec is installed once at process start.
//
// Every armed-site evaluation counts a hit; every fired action counts a
// trigger. Counts survive Deactivate and are exported through strata::obs
// (`fault.site.hits{site=...}` / `fault.site.triggered{site=...}`) once
// BindMetrics is called — the Strata facade does this for its registry.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace strata::obs {
class MetricsRegistry;
}  // namespace strata::obs

namespace strata::fault {

enum class ActionKind : std::uint8_t {
  kError,
  kDelay,
  kTornWrite,
  kDisconnect,
  kCrash,
};

/// Human-readable action name ("error", "torn-write", ...).
[[nodiscard]] const char* ActionKindName(ActionKind kind) noexcept;

struct Action {
  ActionKind kind = ActionKind::kError;
  /// delay: milliseconds; torn-write: bytes that reach the file.
  std::int64_t arg = 0;
  /// Chance each hit fires, drawn from the deterministic process RNG.
  double probability = 1.0;
  /// Fire at most this many times; -1 = unlimited.
  std::int64_t max_hits = -1;
};

/// The action a Hit() actually fired (probability and max_hits applied).
struct Fired {
  ActionKind kind;
  std::int64_t arg;
};

/// Fast inactive check: one relaxed atomic load. Use to guard slow paths.
[[nodiscard]] bool AnyActive() noexcept;

/// Arm `site` with `action`, replacing any existing arming.
void Activate(std::string site, Action action);

/// Disarm `site`. Returns false when it was not armed. Counters persist.
bool Deactivate(std::string_view site);

/// Disarm every site (tests call this in teardown). Counters persist.
void DeactivateAll();

/// Arm sites from one env-style spec string (syntax above).
[[nodiscard]] Status ActivateFromSpec(std::string_view spec);

/// Re-seed the deterministic RNG used for probability draws.
void SeedRng(std::uint64_t seed);

/// Evaluate `site`: apply probability and max_hits, bump counters, and
/// return the action to perform — or nullopt when nothing fires. kDelay and
/// kCrash are executed here (sleep / _Exit); the other kinds are returned
/// for the caller to interpret.
std::optional<Fired> Hit(std::string_view site);

/// Generic site evaluation: kError -> IoError, kDisconnect -> Unavailable,
/// kTornWrite (meaningless outside a write site) -> IoError. Ok otherwise.
[[nodiscard]] Status Evaluate(std::string_view site);

/// Write-site evaluation. On kTornWrite, *len is clamped to the injected
/// byte count and an IoError is returned: the caller must still perform the
/// (now partial) write, then propagate the error. On kError/kDisconnect,
/// *len is zeroed (nothing reaches the file). Ok = no fault.
[[nodiscard]] Status InjectWrite(std::string_view site, std::size_t* len);

/// fs::WriteFileAtomic with failpoints on both risky steps: `write_site`
/// (torn-write-capable, applies to the tmp file) and `rename_site`.
[[nodiscard]] Status WriteFileAtomic(const std::filesystem::path& path,
                                     std::string_view contents,
                                     std::string_view write_site,
                                     std::string_view rename_site);

/// Times `site` fired since process start (survives Deactivate).
[[nodiscard]] std::uint64_t TriggerCount(std::string_view site);

/// All per-site (hits, triggers) counters, for tests and debugging.
[[nodiscard]] std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
Counters();

/// Export per-site counters on `registry` as a pull callback. Rebinding
/// replaces the previous registration; nullptr unbinds. The registry must
/// outlive the binding.
void BindMetrics(obs::MetricsRegistry* registry);

}  // namespace strata::fault

/// Evaluate a failpoint site; propagate an injected error to the caller.
/// Near-zero cost when no failpoint is armed (one relaxed atomic load).
#define STRATA_FAILPOINT(site)                                       \
  do {                                                               \
    if (::strata::fault::AnyActive()) {                              \
      ::strata::Status _fp_status = ::strata::fault::Evaluate(site); \
      if (!_fp_status.ok()) return _fp_status;                       \
    }                                                                \
  } while (false)
