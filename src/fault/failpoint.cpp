#include "fault/failpoint.hpp"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "common/fs.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace strata::fault {

namespace {

struct SiteState {
  std::optional<Action> action;  // nullopt = disarmed, counters retained
  std::uint64_t hits = 0;        // evaluations while armed
  std::uint64_t triggers = 0;    // actions actually fired
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState, std::less<>> sites;
  std::mt19937_64 rng{0x5374726174614621ull};  // "StrataF!"
  obs::MetricsRegistry* metrics = nullptr;
  obs::MetricsRegistry::CallbackId metrics_callback = 0;
};

/// Count of armed sites; the hot-path gate. Leaked-on-exit singletons so
/// failpoints are usable from static destructors.
std::atomic<int>& ActiveCount() {
  static std::atomic<int> count{0};
  return count;
}

Registry& GetRegistry() {
  static auto* registry = new Registry();
  return *registry;
}

Status ParseOneSpec(std::string_view entry) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("failpoint spec: missing '=' in '" +
                                   std::string(entry) + "'");
  }
  std::string site(entry.substr(0, eq));
  std::string_view rest = entry.substr(eq + 1);

  Action action;
  // Split off :max_hits then @probability (rightmost markers; the action
  // token itself never contains ':' or '@').
  if (const std::size_t colon = rest.rfind(':');
      colon != std::string_view::npos) {
    const std::string_view hits = rest.substr(colon + 1);
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(hits.data(), hits.data() + hits.size(), value);
    if (ec != std::errc{} || ptr != hits.data() + hits.size() || value < 0) {
      return Status::InvalidArgument("failpoint spec: bad max_hits in '" +
                                     std::string(entry) + "'");
    }
    action.max_hits = value;
    rest = rest.substr(0, colon);
  }
  if (const std::size_t at = rest.rfind('@'); at != std::string_view::npos) {
    const std::string prob(rest.substr(at + 1));
    char* end = nullptr;
    action.probability = std::strtod(prob.c_str(), &end);
    if (end != prob.c_str() + prob.size() || action.probability < 0.0 ||
        action.probability > 1.0) {
      return Status::InvalidArgument("failpoint spec: bad probability in '" +
                                     std::string(entry) + "'");
    }
    rest = rest.substr(0, at);
  }

  std::string_view name = rest;
  if (const std::size_t paren = rest.find('(');
      paren != std::string_view::npos) {
    if (rest.back() != ')') {
      return Status::InvalidArgument("failpoint spec: unbalanced '(' in '" +
                                     std::string(entry) + "'");
    }
    name = rest.substr(0, paren);
    const std::string_view arg =
        rest.substr(paren + 1, rest.size() - paren - 2);
    const auto [ptr, ec] =
        std::from_chars(arg.data(), arg.data() + arg.size(), action.arg);
    if (ec != std::errc{} || ptr != arg.data() + arg.size() ||
        action.arg < 0) {
      return Status::InvalidArgument("failpoint spec: bad argument in '" +
                                     std::string(entry) + "'");
    }
  }

  if (name == "error") {
    action.kind = ActionKind::kError;
  } else if (name == "delay") {
    action.kind = ActionKind::kDelay;
  } else if (name == "torn-write") {
    action.kind = ActionKind::kTornWrite;
  } else if (name == "disconnect") {
    action.kind = ActionKind::kDisconnect;
  } else if (name == "crash") {
    action.kind = ActionKind::kCrash;
  } else {
    return Status::InvalidArgument("failpoint spec: unknown action '" +
                                   std::string(name) + "'");
  }
  Activate(std::move(site), action);
  return Status::Ok();
}

/// Install STRATA_FAILPOINTS / STRATA_FAILPOINTS_SEED before main runs, so
/// env-armed sites are live for the whole process without any per-call cost.
const bool g_env_installed = [] {
  if (const char* seed = std::getenv("STRATA_FAILPOINTS_SEED");
      seed != nullptr) {
    SeedRng(std::strtoull(seed, nullptr, 10));
  }
  if (const char* spec = std::getenv("STRATA_FAILPOINTS"); spec != nullptr) {
    if (Status s = ActivateFromSpec(spec); !s.ok()) {
      LOG_ERROR << "STRATA_FAILPOINTS ignored: " << s.ToString();
    }
  }
  return true;
}();

}  // namespace

const char* ActionKindName(ActionKind kind) noexcept {
  switch (kind) {
    case ActionKind::kError:
      return "error";
    case ActionKind::kDelay:
      return "delay";
    case ActionKind::kTornWrite:
      return "torn-write";
    case ActionKind::kDisconnect:
      return "disconnect";
    case ActionKind::kCrash:
      return "crash";
  }
  return "unknown";
}

bool AnyActive() noexcept {
  return ActiveCount().load(std::memory_order_relaxed) != 0;
}

void Activate(std::string site, Action action) {
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mu);
  SiteState& state = registry.sites[std::move(site)];
  if (!state.action.has_value()) {
    ActiveCount().fetch_add(1, std::memory_order_relaxed);
  }
  state.action = action;
}

bool Deactivate(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mu);
  const auto it = registry.sites.find(site);
  if (it == registry.sites.end() || !it->second.action.has_value()) {
    return false;
  }
  it->second.action.reset();
  ActiveCount().fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void DeactivateAll() {
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mu);
  for (auto& [site, state] : registry.sites) {
    if (state.action.has_value()) {
      state.action.reset();
      ActiveCount().fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

Status ActivateFromSpec(std::string_view spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(begin, end - begin);
    if (!entry.empty()) STRATA_RETURN_IF_ERROR(ParseOneSpec(entry));
    begin = end + 1;
  }
  return Status::Ok();
}

void SeedRng(std::uint64_t seed) {
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mu);
  registry.rng.seed(seed);
}

std::optional<Fired> Hit(std::string_view site) {
  Registry& registry = GetRegistry();
  Fired fired{};
  {
    std::lock_guard lock(registry.mu);
    const auto it = registry.sites.find(site);
    if (it == registry.sites.end() || !it->second.action.has_value()) {
      return std::nullopt;
    }
    SiteState& state = it->second;
    ++state.hits;
    Action& action = *state.action;
    if (action.max_hits == 0) return std::nullopt;  // budget exhausted
    if (action.probability < 1.0) {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      if (uniform(registry.rng) >= action.probability) return std::nullopt;
    }
    if (action.max_hits > 0) --action.max_hits;
    ++state.triggers;
    fired = Fired{action.kind, action.arg};
  }
  // Execute process-level actions outside the registry lock.
  if (fired.kind == ActionKind::kCrash) {
    // _Exit: no atexit handlers, no stream flushing, no leak checker — the
    // closest in-process emulation of SIGKILL for crash-recovery tests.
    std::_Exit(134);
  }
  if (fired.kind == ActionKind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fired.arg));
  }
  return fired;
}

Status Evaluate(std::string_view site) {
  const auto fired = Hit(site);
  if (!fired.has_value()) return Status::Ok();
  switch (fired->kind) {
    case ActionKind::kDisconnect:
      return Status::Unavailable("failpoint " + std::string(site) +
                                 ": disconnect");
    case ActionKind::kError:
    case ActionKind::kTornWrite:  // no byte stream here: plain failure
      return Status::IoError("failpoint " + std::string(site) + ": error");
    case ActionKind::kDelay:
    case ActionKind::kCrash:  // executed inside Hit
      return Status::Ok();
  }
  return Status::Ok();
}

Status InjectWrite(std::string_view site, std::size_t* len) {
  const auto fired = Hit(site);
  if (!fired.has_value()) return Status::Ok();
  switch (fired->kind) {
    case ActionKind::kTornWrite:
      *len = std::min(*len, static_cast<std::size_t>(fired->arg));
      return Status::IoError("failpoint " + std::string(site) +
                             ": torn write after " + std::to_string(*len) +
                             " bytes");
    case ActionKind::kError:
      *len = 0;
      return Status::IoError("failpoint " + std::string(site) + ": error");
    case ActionKind::kDisconnect:
      *len = 0;
      return Status::Unavailable("failpoint " + std::string(site) +
                                 ": disconnect");
    case ActionKind::kDelay:
    case ActionKind::kCrash:
      return Status::Ok();
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::filesystem::path& path,
                       std::string_view contents, std::string_view write_site,
                       std::string_view rename_site) {
  std::size_t len = contents.size();
  Status injected = Status::Ok();
  if (AnyActive()) injected = InjectWrite(write_site, &len);
  const std::filesystem::path tmp = path.string() + ".tmp";
  STRATA_RETURN_IF_ERROR(strata::fs::WriteFile(tmp, contents.substr(0, len)));
  if (!injected.ok()) return injected;  // tmp holds the torn image; no rename
  STRATA_FAILPOINT(rename_site);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename failed: " + ec.message());
  return Status::Ok();
}

std::uint64_t TriggerCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mu);
  const auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.triggers;
}

std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> Counters() {
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mu);
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& [site, state] : registry.sites) {
    out.emplace(site, std::pair{state.hits, state.triggers});
  }
  return out;
}

void BindMetrics(obs::MetricsRegistry* registry) {
  Registry& fault_registry = GetRegistry();
  // Talk to the obs registry outside fault_registry.mu: snapshot callbacks
  // take that mutex (via Counters), so holding it across Register/Unregister
  // would order the locks both ways.
  obs::MetricsRegistry::CallbackId id = 0;
  if (registry != nullptr) {
    id = registry->RegisterCallback([](obs::MetricsSnapshot* snapshot) {
      for (const auto& [site, counts] : Counters()) {
        const obs::Labels labels{{"site", site}};
        snapshot->AddCounter("fault.site.hits", labels, counts.first);
        snapshot->AddCounter("fault.site.triggered", labels, counts.second);
      }
    });
  }
  obs::MetricsRegistry* previous = nullptr;
  obs::MetricsRegistry::CallbackId previous_id = 0;
  {
    std::lock_guard lock(fault_registry.mu);
    previous = fault_registry.metrics;
    previous_id = fault_registry.metrics_callback;
    fault_registry.metrics = registry;
    fault_registry.metrics_callback = id;
  }
  if (previous != nullptr) previous->Unregister(previous_id);
}

}  // namespace strata::fault
