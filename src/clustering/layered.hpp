// Incremental layer-windowed clustering: the engine behind correlateEvents.
//
// correlateEvents aggregates the events of each (layer, specimen) together
// with the events of the previous L layers (paper Table 1). This class
// maintains that sliding window of event points per specimen and re-clusters
// on demand with DBSCAN under the cylinder metric, reporting the clusters
// that exceed a minimum size (the use-case reports defect regions "bigger
// than a certain volume").
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "clustering/dbscan.hpp"

namespace strata::cluster {

struct LayeredClusterParams {
  /// In-plane neighborhood radius (mm).
  double eps_xy = 1.0;
  /// Layers a cluster may bridge between two member points.
  std::int64_t layer_reach = 2;
  /// Core-point threshold.
  std::size_t min_pts = 3;
  /// Window depth: cluster over the newest layer plus the previous L layers.
  std::int64_t window_layers = 20;
  /// Only clusters with at least this many points are reported.
  std::size_t min_report_points = 5;
};

struct LayeredClusterOutput {
  std::vector<Point> points;        // the clustered window contents
  std::vector<int> labels;          // parallel to points
  std::vector<ClusterSummary> reported;  // clusters >= min_report_points
  std::size_t noise_points = 0;
};

class LayeredClusterer {
 public:
  explicit LayeredClusterer(LayeredClusterParams params);

  /// Add the defect events detected on one layer. Layers must be added in
  /// non-decreasing order; layers older than (newest - window_layers) are
  /// evicted.
  void AddLayerEvents(std::int64_t layer, std::vector<Point> events);

  /// Cluster the current window.
  [[nodiscard]] LayeredClusterOutput Cluster() const;

  [[nodiscard]] std::size_t window_point_count() const noexcept {
    return total_points_;
  }
  [[nodiscard]] std::int64_t newest_layer() const noexcept {
    return newest_layer_;
  }

 private:
  void EvictOldLayers();

  LayeredClusterParams params_;
  std::deque<std::pair<std::int64_t, std::vector<Point>>> layers_;
  std::int64_t newest_layer_ = std::numeric_limits<std::int64_t>::min();
  std::size_t total_points_ = 0;
};

}  // namespace strata::cluster
