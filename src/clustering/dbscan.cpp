#include "clustering/dbscan.hpp"

#include <deque>

namespace strata::cluster {

namespace {

/// Shared BFS cluster expansion; `neighbors(i)` returns the eps-neighborhood
/// of point i (including i).
template <typename NeighborFn>
DbscanResult RunDbscan(const std::vector<Point>& points, std::size_t min_pts,
                       NeighborFn&& neighbors) {
  DbscanResult result;
  result.labels.assign(points.size(), kUnclassified);

  int next_cluster = 0;
  std::deque<std::size_t> frontier;

  for (std::size_t seed = 0; seed < points.size(); ++seed) {
    if (result.labels[seed] != kUnclassified) continue;

    const std::vector<std::size_t> seed_neighbors = neighbors(seed);
    if (seed_neighbors.size() < min_pts) {
      result.labels[seed] = kNoise;  // may be re-labeled as border later
      continue;
    }

    // New cluster: BFS from the core point.
    const int cluster = next_cluster++;
    result.labels[seed] = cluster;
    ++result.core_points;
    frontier.assign(seed_neighbors.begin(), seed_neighbors.end());

    while (!frontier.empty()) {
      const std::size_t current = frontier.front();
      frontier.pop_front();

      if (result.labels[current] == kNoise) {
        result.labels[current] = cluster;  // border point
        continue;
      }
      if (result.labels[current] != kUnclassified) continue;
      result.labels[current] = cluster;

      const std::vector<std::size_t> current_neighbors = neighbors(current);
      if (current_neighbors.size() >= min_pts) {
        ++result.core_points;
        for (const std::size_t n : current_neighbors) {
          if (result.labels[n] == kUnclassified || result.labels[n] == kNoise) {
            frontier.push_back(n);
          }
        }
      }
    }
  }

  result.cluster_count = next_cluster;
  for (const int label : result.labels) {
    if (label == kNoise) ++result.noise_points;
  }
  return result;
}

}  // namespace

DbscanResult Dbscan(const std::vector<Point>& points,
                    const DbscanParams& params) {
  const GridIndex index(points, params.metric);
  return RunDbscan(points, params.min_pts,
                   [&index](std::size_t i) { return index.Neighbors(i); });
}

DbscanResult DbscanBruteForce(const std::vector<Point>& points,
                              const DbscanParams& params) {
  return RunDbscan(points, params.min_pts, [&](std::size_t i) {
    std::vector<std::size_t> neighbors;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (params.metric.Near(points[i], points[j])) neighbors.push_back(j);
    }
    return neighbors;
  });
}

}  // namespace strata::cluster
