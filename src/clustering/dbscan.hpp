// DBSCAN (Ester, Kriegel, Sander, Xu — KDD'96), the clustering method the
// paper's use-case deploys in correlateEvents. Grid-index accelerated, with
// a brute-force reference implementation used by the property tests.
//
// Returned labels: labels[i] >= 0 is a cluster id (dense, starting at 0);
// kNoise for noise points. Border points are assigned to the first core
// cluster that reaches them (standard single-pass DBSCAN semantics).
#pragma once

#include <vector>

#include "clustering/grid_index.hpp"
#include "clustering/point.hpp"

namespace strata::cluster {

struct DbscanParams {
  CylinderMetric metric;
  /// Minimum neighborhood size (including the point itself) for a core point.
  std::size_t min_pts = 3;
};

struct DbscanResult {
  std::vector<int> labels;
  int cluster_count = 0;
  std::size_t core_points = 0;
  std::size_t noise_points = 0;
};

[[nodiscard]] DbscanResult Dbscan(const std::vector<Point>& points,
                                  const DbscanParams& params);

/// O(n^2) reference implementation (tests only).
[[nodiscard]] DbscanResult DbscanBruteForce(const std::vector<Point>& points,
                                            const DbscanParams& params);

}  // namespace strata::cluster
