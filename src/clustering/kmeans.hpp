// k-means with k-means++ seeding: the baseline clustering method from prior
// defect-detection work (Snell et al. 2020 [29]) that the paper's use-case
// replaces with DBSCAN. Implemented for the A1 ablation benchmark comparing
// runtime and cluster-recovery quality.
//
// Points are embedded in 3D as (x, y, layer * layer_scale) so the layer axis
// is commensurable with the in-plane axes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "clustering/point.hpp"

namespace strata::cluster {

struct KMeansParams {
  int k = 8;
  int max_iterations = 50;
  double layer_scale = 1.0;
  std::uint64_t seed = 42;
};

struct KMeansResult {
  std::vector<int> labels;  // every point gets a cluster (no noise concept)
  std::vector<std::array<double, 3>> centroids;
  int iterations = 0;
  double inertia = 0.0;  // sum of squared distances to assigned centroid
};

[[nodiscard]] KMeansResult KMeans(const std::vector<Point>& points,
                                  const KMeansParams& params);

}  // namespace strata::cluster
