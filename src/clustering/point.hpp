// Point types for defect-event clustering. Events produced by detectEvent
// are cell centroids on a layer: (x, y) in millimetres on the build plate
// plus the integer layer index (build height). correlateEvents clusters them
// with a cylindrical neighborhood: close in-plane AND within a bounded layer
// reach (paper §5: clusters expand through up to L previous layers).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace strata::cluster {

struct Point {
  double x = 0.0;
  double y = 0.0;
  std::int64_t layer = 0;
  /// Optional payload: event weight (e.g. cell energy deviation magnitude).
  double weight = 1.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Cylindrical proximity: in-plane Euclidean distance <= eps_xy and layer
/// distance <= layer_reach.
struct CylinderMetric {
  double eps_xy = 1.0;
  std::int64_t layer_reach = 1;

  [[nodiscard]] bool Near(const Point& a, const Point& b) const noexcept {
    const std::int64_t dl = a.layer - b.layer;
    if (dl > layer_reach || dl < -layer_reach) return false;
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return dx * dx + dy * dy <= eps_xy * eps_xy;
  }
};

/// Cluster label constants.
constexpr int kNoise = -1;
constexpr int kUnclassified = -2;

/// Summary of one cluster (used by correlateEvents to report defect regions
/// "bigger than a certain volume").
struct ClusterSummary {
  int cluster_id = 0;
  std::size_t point_count = 0;
  double total_weight = 0.0;
  double min_x = 0.0, max_x = 0.0;
  double min_y = 0.0, max_y = 0.0;
  std::int64_t min_layer = 0, max_layer = 0;
  double centroid_x = 0.0, centroid_y = 0.0;

  [[nodiscard]] std::int64_t layer_span() const noexcept {
    return max_layer - min_layer + 1;
  }
};

/// Compute per-cluster summaries from points + labels (noise excluded).
[[nodiscard]] std::vector<ClusterSummary> SummarizeClusters(
    const std::vector<Point>& points, const std::vector<int>& labels);

}  // namespace strata::cluster
