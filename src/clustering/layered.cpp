#include "clustering/layered.hpp"

#include <stdexcept>

namespace strata::cluster {

LayeredClusterer::LayeredClusterer(LayeredClusterParams params)
    : params_(params) {
  if (params_.eps_xy <= 0 || params_.window_layers < 0 ||
      params_.layer_reach < 0) {
    throw std::invalid_argument("LayeredClusterer: invalid parameters");
  }
}

void LayeredClusterer::AddLayerEvents(std::int64_t layer,
                                      std::vector<Point> events) {
  if (!layers_.empty() && layer < newest_layer_) {
    throw std::invalid_argument(
        "LayeredClusterer: layers must arrive in order (got " +
        std::to_string(layer) + " after " + std::to_string(newest_layer_) +
        ")");
  }
  for (Point& p : events) p.layer = layer;
  total_points_ += events.size();
  if (!layers_.empty() && layers_.back().first == layer) {
    auto& existing = layers_.back().second;
    existing.insert(existing.end(), events.begin(), events.end());
  } else {
    layers_.emplace_back(layer, std::move(events));
  }
  newest_layer_ = layer;
  EvictOldLayers();
}

void LayeredClusterer::EvictOldLayers() {
  const std::int64_t horizon = newest_layer_ - params_.window_layers;
  while (!layers_.empty() && layers_.front().first < horizon) {
    total_points_ -= layers_.front().second.size();
    layers_.pop_front();
  }
}

LayeredClusterOutput LayeredClusterer::Cluster() const {
  LayeredClusterOutput output;
  output.points.reserve(total_points_);
  for (const auto& [layer, events] : layers_) {
    output.points.insert(output.points.end(), events.begin(), events.end());
  }
  if (output.points.empty()) return output;

  DbscanParams params;
  params.metric = CylinderMetric{params_.eps_xy, params_.layer_reach};
  params.min_pts = params_.min_pts;
  DbscanResult result = Dbscan(output.points, params);

  output.labels = std::move(result.labels);
  output.noise_points = result.noise_points;
  for (ClusterSummary& summary :
       SummarizeClusters(output.points, output.labels)) {
    if (summary.point_count >= params_.min_report_points) {
      output.reported.push_back(summary);
    }
  }
  return output;
}

}  // namespace strata::cluster
