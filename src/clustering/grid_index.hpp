// Uniform grid index for fixed-radius neighbor queries under the cylinder
// metric: cells of size eps_xy in-plane and layer_reach along the build
// axis, so a query only inspects the 3x3x3 neighborhood of its cell. This
// gives DBSCAN its expected O(n) behaviour on bounded-density data (the
// paper cites grid/parallel DBSCAN work [16, 22, 23, 30]).
#pragma once

#include <unordered_map>
#include <vector>

#include "clustering/point.hpp"

namespace strata::cluster {

class GridIndex {
 public:
  GridIndex(const std::vector<Point>& points, CylinderMetric metric);

  /// Indices of all points within the metric's neighborhood of points[i]
  /// (including i itself, per the DBSCAN definition).
  [[nodiscard]] std::vector<std::size_t> Neighbors(std::size_t i) const;

  /// Neighbors of an arbitrary probe point.
  [[nodiscard]] std::vector<std::size_t> NeighborsOf(const Point& probe) const;

 private:
  struct CellKey {
    std::int64_t cx, cy, cz;
    friend bool operator==(const CellKey&, const CellKey&) = default;
  };
  struct CellHash {
    std::size_t operator()(const CellKey& key) const noexcept {
      std::size_t h = static_cast<std::size_t>(key.cx) * 0x9e3779b97f4a7c15ull;
      h ^= static_cast<std::size_t>(key.cy) * 0xc2b2ae3d27d4eb4full + (h << 6);
      h ^= static_cast<std::size_t>(key.cz) * 0x165667b19e3779f9ull + (h >> 3);
      return h;
    }
  };

  [[nodiscard]] CellKey KeyFor(const Point& point) const noexcept;

  const std::vector<Point>& points_;
  CylinderMetric metric_;
  std::unordered_map<CellKey, std::vector<std::size_t>, CellHash> cells_;
};

}  // namespace strata::cluster
