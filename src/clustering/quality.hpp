// Clustering quality metrics for the DBSCAN-vs-kmeans ablation: Adjusted
// Rand Index against a ground-truth labeling (noise treated as its own
// singleton-ish label unless excluded), plus purity.
#pragma once

#include <vector>

namespace strata::cluster {

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions, ~0 = random.
/// Labelings must be the same length. Negative labels are valid labels
/// (noise compares as one shared "noise" group).
[[nodiscard]] double AdjustedRandIndex(const std::vector<int>& a,
                                       const std::vector<int>& b);

/// Fraction of points whose predicted cluster's majority truth label matches
/// their own truth label. In [0, 1].
[[nodiscard]] double Purity(const std::vector<int>& truth,
                            const std::vector<int>& predicted);

}  // namespace strata::cluster
