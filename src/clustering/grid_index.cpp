#include "clustering/grid_index.hpp"

#include <cmath>

namespace strata::cluster {

GridIndex::GridIndex(const std::vector<Point>& points, CylinderMetric metric)
    : points_(points), metric_(metric) {
  cells_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    cells_[KeyFor(points[i])].push_back(i);
  }
}

GridIndex::CellKey GridIndex::KeyFor(const Point& point) const noexcept {
  // Cell size = eps_xy in-plane, layer_reach along the layer axis. Guard
  // against degenerate metrics.
  const double exy = metric_.eps_xy > 0 ? metric_.eps_xy : 1.0;
  const double ez =
      metric_.layer_reach > 0 ? static_cast<double>(metric_.layer_reach) : 1.0;
  return CellKey{
      static_cast<std::int64_t>(std::floor(point.x / exy)),
      static_cast<std::int64_t>(std::floor(point.y / exy)),
      static_cast<std::int64_t>(std::floor(static_cast<double>(point.layer) / ez)),
  };
}

std::vector<std::size_t> GridIndex::Neighbors(std::size_t i) const {
  return NeighborsOf(points_[i]);
}

std::vector<std::size_t> GridIndex::NeighborsOf(const Point& probe) const {
  std::vector<std::size_t> result;
  const CellKey center = KeyFor(probe);
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dz = -1; dz <= 1; ++dz) {
        const auto it =
            cells_.find(CellKey{center.cx + dx, center.cy + dy, center.cz + dz});
        if (it == cells_.end()) continue;
        for (const std::size_t j : it->second) {
          if (metric_.Near(probe, points_[j])) result.push_back(j);
        }
      }
    }
  }
  return result;
}

std::vector<ClusterSummary> SummarizeClusters(const std::vector<Point>& points,
                                              const std::vector<int>& labels) {
  std::vector<ClusterSummary> summaries;
  std::unordered_map<int, std::size_t> index_of;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int label = labels[i];
    if (label < 0) continue;  // noise / unclassified
    auto [it, inserted] = index_of.try_emplace(label, summaries.size());
    if (inserted) {
      ClusterSummary fresh;
      fresh.cluster_id = label;
      fresh.min_x = fresh.max_x = points[i].x;
      fresh.min_y = fresh.max_y = points[i].y;
      fresh.min_layer = fresh.max_layer = points[i].layer;
      summaries.push_back(fresh);
    }
    ClusterSummary& s = summaries[it->second];
    s.point_count += 1;
    s.total_weight += points[i].weight;
    s.min_x = std::min(s.min_x, points[i].x);
    s.max_x = std::max(s.max_x, points[i].x);
    s.min_y = std::min(s.min_y, points[i].y);
    s.max_y = std::max(s.max_y, points[i].y);
    s.min_layer = std::min(s.min_layer, points[i].layer);
    s.max_layer = std::max(s.max_layer, points[i].layer);
    s.centroid_x += points[i].x;
    s.centroid_y += points[i].y;
  }
  for (ClusterSummary& s : summaries) {
    if (s.point_count > 0) {
      s.centroid_x /= static_cast<double>(s.point_count);
      s.centroid_y /= static_cast<double>(s.point_count);
    }
  }
  return summaries;
}

}  // namespace strata::cluster
