#include "clustering/kmeans.hpp"

#include <array>
#include <limits>

#include "common/rng.hpp"

namespace strata::cluster {

namespace {

using Vec3 = std::array<double, 3>;

Vec3 Embed(const Point& p, double layer_scale) {
  return {p.x, p.y, static_cast<double>(p.layer) * layer_scale};
}

double SquaredDistance(const Vec3& a, const Vec3& b) {
  const double dx = a[0] - b[0];
  const double dy = a[1] - b[1];
  const double dz = a[2] - b[2];
  return dx * dx + dy * dy + dz * dz;
}

}  // namespace

KMeansResult KMeans(const std::vector<Point>& points,
                    const KMeansParams& params) {
  KMeansResult result;
  if (points.empty() || params.k < 1) return result;
  const int k = std::min<int>(params.k, static_cast<int>(points.size()));

  std::vector<Vec3> data;
  data.reserve(points.size());
  for (const Point& p : points) data.push_back(Embed(p, params.layer_scale));

  Rng rng(params.seed);

  // k-means++ seeding: first centroid uniform, then proportional to D^2.
  std::vector<Vec3> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  centroids.push_back(
      data[static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(data.size()) - 1))]);
  std::vector<double> min_dist(data.size(),
                               std::numeric_limits<double>::max());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      min_dist[i] =
          std::min(min_dist[i], SquaredDistance(data[i], centroids.back()));
      total += min_dist[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    double pick = rng.Uniform(0.0, total);
    std::size_t chosen = data.size() - 1;
    for (std::size_t i = 0; i < data.size(); ++i) {
      pick -= min_dist[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(data[chosen]);
  }

  // Lloyd iterations.
  result.labels.assign(data.size(), 0);
  for (result.iterations = 0; result.iterations < params.max_iterations;
       ++result.iterations) {
    bool changed = false;
    for (std::size_t i = 0; i < data.size(); ++i) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double d =
            SquaredDistance(data[i], centroids[static_cast<std::size_t>(c)]);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (result.labels[i] != best) {
        result.labels[i] = best;
        changed = true;
      }
    }
    if (!changed && result.iterations > 0) break;

    std::vector<Vec3> sums(static_cast<std::size_t>(k), Vec3{0, 0, 0});
    std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto c = static_cast<std::size_t>(result.labels[i]);
      sums[c][0] += data[i][0];
      sums[c][1] += data[i][1];
      sums[c][2] += data[i][2];
      ++counts[c];
    }
    for (int c = 0; c < k; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      if (counts[ci] == 0) continue;  // keep the empty centroid where it is
      centroids[ci] = {sums[ci][0] / static_cast<double>(counts[ci]),
                       sums[ci][1] / static_cast<double>(counts[ci]),
                       sums[ci][2] / static_cast<double>(counts[ci])};
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    result.inertia += SquaredDistance(
        data[i], centroids[static_cast<std::size_t>(result.labels[i])]);
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace strata::cluster
