#include "clustering/quality.hpp"

#include <map>
#include <stdexcept>

namespace strata::cluster {

namespace {
double Choose2(double n) { return n * (n - 1.0) / 2.0; }
}  // namespace

double AdjustedRandIndex(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("AdjustedRandIndex: size mismatch");
  }
  const std::size_t n = a.size();
  if (n < 2) return 1.0;

  std::map<std::pair<int, int>, std::size_t> contingency;
  std::map<int, std::size_t> rows;
  std::map<int, std::size_t> cols;
  for (std::size_t i = 0; i < n; ++i) {
    ++contingency[{a[i], b[i]}];
    ++rows[a[i]];
    ++cols[b[i]];
  }

  double sum_ij = 0.0;
  for (const auto& [key, count] : contingency) {
    sum_ij += Choose2(static_cast<double>(count));
  }
  double sum_a = 0.0;
  for (const auto& [label, count] : rows) {
    sum_a += Choose2(static_cast<double>(count));
  }
  double sum_b = 0.0;
  for (const auto& [label, count] : cols) {
    sum_b += Choose2(static_cast<double>(count));
  }

  const double total = Choose2(static_cast<double>(n));
  const double expected = sum_a * sum_b / total;
  const double max_index = (sum_a + sum_b) / 2.0;
  if (max_index == expected) return 1.0;  // both trivial partitions
  return (sum_ij - expected) / (max_index - expected);
}

double Purity(const std::vector<int>& truth, const std::vector<int>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("Purity: size mismatch");
  }
  if (truth.empty()) return 1.0;

  std::map<int, std::map<int, std::size_t>> by_cluster;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ++by_cluster[predicted[i]][truth[i]];
  }
  std::size_t correct = 0;
  for (const auto& [cluster, counts] : by_cluster) {
    std::size_t best = 0;
    for (const auto& [label, count] : counts) best = std::max(best, count);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace strata::cluster
