#include "pubsub/log.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "common/fs.hpp"
#include "common/logging.hpp"
#include "fault/failpoint.hpp"

namespace strata::ps {

void EncodeRecord(const Record& record, std::string* out) {
  codec::PutVarint64Signed(out, record.timestamp);
  codec::PutLengthPrefixed(out, record.key);
  codec::PutLengthPrefixed(out, record.value);
}

Status DecodeRecord(std::string_view* in, Record* out) {
  std::string_view key;
  std::string_view value;
  if (!codec::GetVarint64Signed(in, &out->timestamp) ||
      !codec::GetLengthPrefixed(in, &key) ||
      !codec::GetLengthPrefixed(in, &value)) {
    return Status::Corruption("DecodeRecord: truncated");
  }
  out->key.assign(key.data(), key.size());
  out->value.assign(value.data(), value.size());
  return Status::Ok();
}

namespace {

std::string SegmentFileName(std::int64_t base_offset) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012lld.seg",
                static_cast<long long>(base_offset));
  return buf;
}

}  // namespace

Result<std::unique_ptr<PartitionLog>> PartitionLog::Open(
    const LogOptions& options) {
  std::unique_ptr<PartitionLog> log(new PartitionLog(options));
  if (!options.dir.empty()) {
    STRATA_RETURN_IF_ERROR(strata::fs::CreateDirs(options.dir));
    STRATA_RETURN_IF_ERROR(log->LoadSegments());
  }
  return log;
}

PartitionLog::~PartitionLog() {
  Close();
  if (segment_ != nullptr) std::fclose(segment_);
}

Status PartitionLog::LoadSegments() {
  std::vector<std::filesystem::path> segments;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() == ".seg") segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());

  for (std::size_t seg_index = 0; seg_index < segments.size(); ++seg_index) {
    const auto& path = segments[seg_index];
    STRATA_FAILPOINT("segment.replay");
    auto contents = strata::fs::ReadFile(path);
    if (!contents.ok()) return contents.status();
    std::string_view in(contents.value());
    const std::size_t total = in.size();
    bool damaged = false;
    while (!in.empty()) {
      std::uint32_t masked = 0;
      std::uint32_t length = 0;
      std::string_view at = in;
      if (!codec::GetFixed32(&at, &masked) ||
          !codec::GetFixed32(&at, &length) || at.size() < length) {
        damaged = true;  // torn tail: record runs past EOF
        break;
      }
      const std::string_view body = at.substr(0, length);
      if (Crc32c(body) != UnmaskCrc(masked)) {
        damaged = true;  // CRC failure: treat like the WAL's torn tail
        break;
      }
      in = at.substr(length);

      Record record;
      std::string_view cursor = body;
      STRATA_RETURN_IF_ERROR(DecodeRecord(&cursor, &record));
      records_.push_back(std::move(record));
      ++next_offset_;
    }
    if (damaged) {
      // Physically truncate to the valid prefix (same contract as the
      // kvstore WAL), so a future replay never resurrects torn bytes, and
      // stop — anything in later segments was appended after the damage and
      // would be renumbered if replayed.
      const std::size_t valid = total - in.size();
      LOG_WARN << "pubsub recovery: truncating torn tail of " << path.string()
               << " at byte " << valid;
      std::error_code trunc_ec;
      std::filesystem::resize_file(path, valid, trunc_ec);
      if (trunc_ec) {
        return Status::IoError("segment truncate failed: " + path.string() +
                               ": " + trunc_ec.message());
      }
      // Later segments (rare: damage before the final segment) would be
      // renumbered if replayed past the cut; drop them rather than serve
      // records under the wrong offsets.
      for (std::size_t later = seg_index + 1; later < segments.size();
           ++later) {
        LOG_WARN << "pubsub recovery: removing post-damage segment "
                 << segments[later].string();
        std::error_code rm_ec;
        std::filesystem::remove(segments[later], rm_ec);
      }
      break;
    }
  }
  if (options_.retention_records > 0) {
    while (records_.size() > options_.retention_records) {
      records_.pop_front();
      ++base_;
    }
  }
  return Status::Ok();
}

Status PartitionLog::RollSegmentLocked() {
  STRATA_FAILPOINT("segment.roll");
  if (segment_ != nullptr) {
    if (options_.sync_on_roll && ::fsync(::fileno(segment_)) != 0) {
      std::fclose(segment_);
      segment_ = nullptr;
      return Status::IoError("segment fsync on roll failed: " +
                             std::string(std::strerror(errno)));
    }
    std::fclose(segment_);
    segment_ = nullptr;
  }
  const auto path = options_.dir / SegmentFileName(next_offset_);
  segment_ = std::fopen(path.c_str(), "ab");
  if (segment_ == nullptr) {
    return Status::IoError("segment open failed: " + path.string() + ": " +
                           std::strerror(errno));
  }
  segment_written_ = 0;
  // Make the new directory entry durable so a crash cannot lose the whole
  // segment file while keeping records acked against it.
  STRATA_RETURN_IF_ERROR(strata::fs::SyncDir(options_.dir));
  return Status::Ok();
}

Status PartitionLog::AppendToSegmentLocked(const Record& record) {
  if (segment_ == nullptr || segment_written_ >= options_.segment_bytes) {
    STRATA_RETURN_IF_ERROR(RollSegmentLocked());
  }
  std::string body;
  EncodeRecord(record, &body);
  std::string framed;
  codec::PutFixed32(&framed, MaskCrc(Crc32c(body)));
  codec::PutFixed32(&framed, static_cast<std::uint32_t>(body.size()));
  framed.append(body);

  // Failpoint "segment.append": error drops the frame, torn-write(n)
  // persists only the first n bytes; the injected error is returned after
  // the partial bytes land so recovery sees a genuine torn tail.
  std::size_t limit = framed.size();
  Status injected = Status::Ok();
  if (fault::AnyActive()) {
    injected = fault::InjectWrite("segment.append", &limit);
  }
  if (std::fwrite(framed.data(), 1, limit, segment_) != limit ||
      std::fflush(segment_) != 0) {
    return Status::IoError("segment append failed");
  }
  if (injected.ok() && options_.sync_each_append) {
    STRATA_FAILPOINT("segment.sync");
    if (::fsync(::fileno(segment_)) != 0) {
      return Status::IoError("segment fsync failed: " +
                             std::string(std::strerror(errno)));
    }
  }
  segment_written_ += limit;
  return injected;
}

Status PartitionLog::HandleDiskErrorLocked(Status error) {
  ++disk_errors_;
  if (options_.disk_failure_policy == DiskFailurePolicy::kDegrade) {
    if (!degraded_) {
      LOG_WARN << "pubsub log degrading to memory-only after disk error: "
               << error.ToString();
      degraded_ = true;
      if (segment_ != nullptr) {
        std::fclose(segment_);
        segment_ = nullptr;
      }
    }
    return Status::Ok();
  }
  if (!fail_stopped_) {
    LOG_ERROR << "pubsub log fail-stop after disk error: " << error.ToString();
    fail_stopped_ = true;
    fail_stop_error_ = error;
  }
  return error;
}

Result<std::int64_t> PartitionLog::Append(const Record& record) {
  std::unique_lock lock(mu_);
  if (closed_) return Status::Closed("log closed");
  if (fail_stopped_) return fail_stop_error_;

  if (!options_.dir.empty() && !degraded_) {
    Status disk = AppendToSegmentLocked(record);
    if (!disk.ok()) {
      STRATA_RETURN_IF_ERROR(HandleDiskErrorLocked(std::move(disk)));
    }
  }

  const std::int64_t offset = next_offset_++;
  records_.push_back(record);
  if (options_.retention_records > 0 &&
      records_.size() > options_.retention_records) {
    records_.pop_front();
    ++base_;
  }
  lock.unlock();
  data_cv_.notify_all();
  if (append_listener_) append_listener_();
  return offset;
}

Status PartitionLog::ReadFrom(std::int64_t offset, std::size_t max_records,
                              std::vector<Record>* out,
                              std::int64_t* next_offset) const {
  out->clear();
  std::lock_guard lock(mu_);
  if (offset < base_) {
    return Status::InvalidArgument(
        "offset " + std::to_string(offset) + " below retention horizon " +
        std::to_string(base_));
  }
  std::int64_t cursor = offset;
  while (cursor < next_offset_ && out->size() < max_records) {
    out->push_back(records_[static_cast<std::size_t>(cursor - base_)]);
    ++cursor;
  }
  *next_offset = cursor;
  return Status::Ok();
}

bool PartitionLog::WaitForData(std::int64_t offset,
                               std::chrono::microseconds timeout) const {
  std::unique_lock lock(mu_);
  return data_cv_.wait_for(
      lock, timeout, [&] { return closed_ || next_offset_ > offset; });
}

std::int64_t PartitionLog::EndOffset() const {
  std::lock_guard lock(mu_);
  return next_offset_;
}

std::int64_t PartitionLog::StartOffset() const {
  std::lock_guard lock(mu_);
  return base_;
}

Status PartitionLog::TruncateTo(std::int64_t offset) {
  std::lock_guard lock(mu_);
  if (closed_) return Status::Closed("log closed");
  if (offset < 0) return Status::InvalidArgument("negative truncate offset");
  if (offset >= next_offset_) return Status::Ok();

  if (offset > base_) {
    records_.resize(static_cast<std::size_t>(offset - base_));
  } else {
    records_.clear();
    base_ = offset;
  }
  next_offset_ = offset;

  if (options_.dir.empty() || degraded_ || fail_stopped_) return Status::Ok();

  // Rewrite the segments to the surviving prefix. Segment entries carry no
  // offsets (names + order define them), so partial file truncation is only
  // safe when we can rebuild from record 0; retention may have dropped that
  // prefix from memory, in which case rewriting would renumber records.
  if (segment_ != nullptr) {
    std::fclose(segment_);
    segment_ = nullptr;
    segment_written_ = 0;
  }
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() != ".seg") continue;
    std::error_code rm_ec;
    std::filesystem::remove(entry.path(), rm_ec);
    if (rm_ec) {
      return HandleDiskErrorLocked(Status::IoError(
          "truncate: segment remove failed: " + entry.path().string() + ": " +
          rm_ec.message()));
    }
  }
  if (base_ != 0) {
    LOG_WARN << "pubsub log truncate to " << offset
             << ": prefix below retention horizon " << base_
             << " is gone; degrading to memory-only";
    degraded_ = true;
    ++disk_errors_;
    return Status::Ok();
  }
  // Re-append the surviving records so segment naming (based on the offset
  // at roll time) stays consistent with LoadSegments' renumbering.
  const std::int64_t end = next_offset_;
  next_offset_ = 0;
  for (std::int64_t i = 0; i < end; ++i) {
    Status disk =
        AppendToSegmentLocked(records_[static_cast<std::size_t>(i)]);
    ++next_offset_;
    if (!disk.ok()) {
      next_offset_ = end;
      return HandleDiskErrorLocked(std::move(disk));
    }
  }
  next_offset_ = end;
  return Status::Ok();
}

bool PartitionLog::degraded() const {
  std::lock_guard lock(mu_);
  return degraded_;
}

bool PartitionLog::fail_stopped() const {
  std::lock_guard lock(mu_);
  return fail_stopped_;
}

std::uint64_t PartitionLog::disk_errors() const {
  std::lock_guard lock(mu_);
  return disk_errors_;
}

void PartitionLog::Close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    if (segment_ != nullptr) {
      std::fflush(segment_);
      if (options_.sync_on_roll) ::fsync(::fileno(segment_));
    }
  }
  data_cv_.notify_all();
}

}  // namespace strata::ps
