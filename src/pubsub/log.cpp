#include "pubsub/log.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "common/fs.hpp"

namespace strata::ps {

void EncodeRecord(const Record& record, std::string* out) {
  codec::PutVarint64Signed(out, record.timestamp);
  codec::PutLengthPrefixed(out, record.key);
  codec::PutLengthPrefixed(out, record.value);
}

Status DecodeRecord(std::string_view* in, Record* out) {
  std::string_view key;
  std::string_view value;
  if (!codec::GetVarint64Signed(in, &out->timestamp) ||
      !codec::GetLengthPrefixed(in, &key) ||
      !codec::GetLengthPrefixed(in, &value)) {
    return Status::Corruption("DecodeRecord: truncated");
  }
  out->key.assign(key.data(), key.size());
  out->value.assign(value.data(), value.size());
  return Status::Ok();
}

namespace {

std::string SegmentFileName(std::int64_t base_offset) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012lld.seg",
                static_cast<long long>(base_offset));
  return buf;
}

}  // namespace

Result<std::unique_ptr<PartitionLog>> PartitionLog::Open(
    const LogOptions& options) {
  std::unique_ptr<PartitionLog> log(new PartitionLog(options));
  if (!options.dir.empty()) {
    STRATA_RETURN_IF_ERROR(strata::fs::CreateDirs(options.dir));
    STRATA_RETURN_IF_ERROR(log->LoadSegments());
  }
  return log;
}

PartitionLog::~PartitionLog() {
  Close();
  if (segment_ != nullptr) std::fclose(segment_);
}

Status PartitionLog::LoadSegments() {
  std::vector<std::filesystem::path> segments;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() == ".seg") segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());

  for (const auto& path : segments) {
    auto contents = strata::fs::ReadFile(path);
    if (!contents.ok()) return contents.status();
    std::string_view in(contents.value());
    while (!in.empty()) {
      std::uint32_t masked = 0;
      std::uint32_t length = 0;
      if (!codec::GetFixed32(&in, &masked) ||
          !codec::GetFixed32(&in, &length) || in.size() < length) {
        break;  // torn tail: stop replaying this (final) segment
      }
      const std::string_view body = in.substr(0, length);
      if (Crc32c(body) != UnmaskCrc(masked)) break;
      in.remove_prefix(length);

      Record record;
      std::string_view cursor = body;
      STRATA_RETURN_IF_ERROR(DecodeRecord(&cursor, &record));
      records_.push_back(std::move(record));
      ++next_offset_;
    }
  }
  if (options_.retention_records > 0) {
    while (records_.size() > options_.retention_records) {
      records_.pop_front();
      ++base_;
    }
  }
  return Status::Ok();
}

Status PartitionLog::RollSegmentLocked() {
  if (segment_ != nullptr) {
    std::fclose(segment_);
    segment_ = nullptr;
  }
  const auto path = options_.dir / SegmentFileName(next_offset_);
  segment_ = std::fopen(path.c_str(), "ab");
  if (segment_ == nullptr) {
    return Status::IoError("segment open failed: " + path.string() + ": " +
                           std::strerror(errno));
  }
  segment_written_ = 0;
  return Status::Ok();
}

Result<std::int64_t> PartitionLog::Append(const Record& record) {
  std::unique_lock lock(mu_);
  if (closed_) return Status::Closed("log closed");

  if (!options_.dir.empty()) {
    if (segment_ == nullptr || segment_written_ >= options_.segment_bytes) {
      STRATA_RETURN_IF_ERROR(RollSegmentLocked());
    }
    std::string body;
    EncodeRecord(record, &body);
    std::string framed;
    codec::PutFixed32(&framed, MaskCrc(Crc32c(body)));
    codec::PutFixed32(&framed, static_cast<std::uint32_t>(body.size()));
    framed.append(body);
    if (std::fwrite(framed.data(), 1, framed.size(), segment_) !=
            framed.size() ||
        std::fflush(segment_) != 0) {
      return Status::IoError("segment append failed");
    }
    segment_written_ += framed.size();
  }

  const std::int64_t offset = next_offset_++;
  records_.push_back(record);
  if (options_.retention_records > 0 &&
      records_.size() > options_.retention_records) {
    records_.pop_front();
    ++base_;
  }
  lock.unlock();
  data_cv_.notify_all();
  if (append_listener_) append_listener_();
  return offset;
}

Status PartitionLog::ReadFrom(std::int64_t offset, std::size_t max_records,
                              std::vector<Record>* out,
                              std::int64_t* next_offset) const {
  out->clear();
  std::lock_guard lock(mu_);
  if (offset < base_) {
    return Status::InvalidArgument(
        "offset " + std::to_string(offset) + " below retention horizon " +
        std::to_string(base_));
  }
  std::int64_t cursor = offset;
  while (cursor < next_offset_ && out->size() < max_records) {
    out->push_back(records_[static_cast<std::size_t>(cursor - base_)]);
    ++cursor;
  }
  *next_offset = cursor;
  return Status::Ok();
}

bool PartitionLog::WaitForData(std::int64_t offset,
                               std::chrono::microseconds timeout) const {
  std::unique_lock lock(mu_);
  return data_cv_.wait_for(
      lock, timeout, [&] { return closed_ || next_offset_ > offset; });
}

std::int64_t PartitionLog::EndOffset() const {
  std::lock_guard lock(mu_);
  return next_offset_;
}

std::int64_t PartitionLog::StartOffset() const {
  std::lock_guard lock(mu_);
  return base_;
}

void PartitionLog::Close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    if (segment_ != nullptr) std::fflush(segment_);
  }
  data_cv_.notify_all();
}

}  // namespace strata::ps
