// Thin producer facade over the broker (synchronous acks: every Send is
// durable in the partition log before returning, matching acks=all).
#pragma once

#include <string>

#include "pubsub/broker.hpp"

namespace strata::ps {

class Producer {
 public:
  explicit Producer(Broker* broker) : broker_(broker) {}

  /// Returns (partition, offset) of the appended record.
  [[nodiscard]] Result<std::pair<int, std::int64_t>> Send(
      const std::string& topic, Record record) {
    return broker_->Produce(topic, record);
  }

  [[nodiscard]] Result<std::pair<int, std::int64_t>> Send(
      const std::string& topic, std::string key, std::string value,
      Timestamp timestamp) {
    Record record;
    record.key = std::move(key);
    record.value = std::move(value);
    record.timestamp = timestamp;
    return broker_->Produce(topic, record);
  }

 private:
  Broker* broker_;
};

}  // namespace strata::ps
