// Thin producer facade over the broker (synchronous acks: every Send is
// durable in the partition log before returning, matching acks=all).
#pragma once

#include <string>

#include "pubsub/broker.hpp"
#include "pubsub/client.hpp"

namespace strata::ps {

class Producer final : public ProducerClient {
 public:
  explicit Producer(Broker* broker) : broker_(broker) {}

  using ProducerClient::Send;

  /// Returns (partition, offset) of the appended record.
  [[nodiscard]] Result<std::pair<int, std::int64_t>> Send(
      const std::string& topic, Record record) override {
    return broker_->Produce(topic, record);
  }

 private:
  Broker* broker_;
};

}  // namespace strata::ps
